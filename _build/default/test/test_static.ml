(* Tests for the static analysis: points-to, taint propagation (Algorithms
   1-2), branch labelling, and the over-approximation invariant. *)

let link ?(libs = []) src = Minic.Program.of_sources ~app:src ~libs ()

let analyze ?(analyze_lib = true) src =
  let prog = link src in
  (prog, Staticanalysis.Static.analyze ~analyze_lib prog)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* label of the branch whose location line is [line] *)
let label_at (prog : Minic.Program.t) (r : Staticanalysis.Static.result) ~line =
  let found = ref None in
  Array.iter
    (fun (b : Minic.Number.info) ->
      if b.bloc.line = line then found := Some r.labels.(b.bid))
    prog.branches;
  match !found with
  | Some l -> l
  | None -> Alcotest.failf "no branch at line %d" line

let sym = Minic.Label.Symbolic
let conc = Minic.Label.Concrete

(* ------------------------------------------------------------------ *)

let test_argv_branch_symbolic () =
  let prog, r =
    analyze
      "int main() {\n\
      \  int buf[8];\n\
      \  arg(0, buf, 8);\n\
      \  if (buf[0] == 'a') { return 1; }\n\
      \  return 0;\n\
       }"
  in
  check_bool "buf branch symbolic" true (label_at prog r ~line:4 = sym)

let test_constant_branch_concrete () =
  let prog, r =
    analyze
      "int main() {\n\
      \  int i = 0;\n\
      \  int s = 0;\n\
      \  while (i < 10) { s = s + i; i = i + 1; }\n\
      \  if (s > 3) { return 1; }\n\
      \  return 0;\n\
       }"
  in
  check_bool "loop concrete" true (label_at prog r ~line:4 = conc);
  check_bool "sum concrete" true (label_at prog r ~line:5 = conc)

let test_read_result_symbolic () =
  let prog, r =
    analyze
      "int main() {\n\
      \  int buf[8];\n\
      \  int n = read(0, buf, 8);\n\
      \  if (n > 0) { return 1; }\n\
      \  if (buf[0] == 'x') { return 2; }\n\
      \  return 0;\n\
       }"
  in
  check_bool "read count symbolic" true (label_at prog r ~line:4 = sym);
  check_bool "read data symbolic" true (label_at prog r ~line:5 = sym)

let test_taint_through_assignment_chain () =
  let prog, r =
    analyze
      "int main() {\n\
      \  int buf[8];\n\
      \  arg(0, buf, 8);\n\
      \  int a = buf[0];\n\
      \  int b = a * 2 + 1;\n\
      \  if (b == 7) { return 1; }\n\
      \  return 0;\n\
       }"
  in
  check_bool "chained taint" true (label_at prog r ~line:6 = sym)

let test_strong_update_clears_local () =
  let prog, r =
    analyze
      "int main() {\n\
      \  int buf[8];\n\
      \  arg(0, buf, 8);\n\
      \  int a = buf[0];\n\
      \  a = 5;\n\
      \  if (a == 5) { return 1; }\n\
      \  return 0;\n\
       }"
  in
  check_bool "strong update makes branch concrete" true
    (label_at prog r ~line:6 = conc)

let test_taint_through_function_return () =
  let prog, r =
    analyze
      "int first(int *s) { return s[0]; }\n\
       int main() {\n\
      \  int buf[8];\n\
      \  arg(0, buf, 8);\n\
      \  int c = first(buf);\n\
      \  if (c == 'x') { return 1; }\n\
      \  return 0;\n\
       }"
  in
  check_bool "return taint" true (label_at prog r ~line:6 = sym)

let test_context_sensitivity () =
  (* f is called with both a concrete and a tainted argument; the branch in
     f must be symbolic (some context), but the caller branch on the
     concrete result must stay concrete *)
  let prog, r =
    analyze
      "int half(int x) {\n\
      \  if (x > 10) { return x / 2; }\n\
      \  return x;\n\
       }\n\
       int main() {\n\
      \  int buf[8];\n\
      \  arg(0, buf, 8);\n\
      \  int a = half(buf[0]);\n\
      \  int b = half(4);\n\
      \  if (a == 3) { return 1; }\n\
      \  if (b == 4) { return 2; }\n\
      \  return 0;\n\
       }"
  in
  check_bool "callee branch symbolic" true (label_at prog r ~line:2 = sym);
  check_bool "tainted-context result symbolic" true (label_at prog r ~line:10 = sym);
  check_bool "concrete-context result concrete" true (label_at prog r ~line:11 = conc)

let test_taint_through_pointer_write () =
  let prog, r =
    analyze
      "void put(int *dst, int v) { *dst = v; }\n\
       int main() {\n\
      \  int buf[8];\n\
      \  int x = 0;\n\
      \  arg(0, buf, 8);\n\
      \  put(&x, buf[1]);\n\
      \  if (x == 9) { return 1; }\n\
      \  return 0;\n\
       }"
  in
  check_bool "by-ref write taints caller var" true (label_at prog r ~line:7 = sym)

let test_taint_through_global () =
  let prog, r =
    analyze
      "int g;\n\
       void set_g(int v) { g = v; }\n\
       int main() {\n\
      \  int buf[8];\n\
      \  arg(0, buf, 8);\n\
      \  set_g(buf[0]);\n\
      \  if (g == 1) { return 1; }\n\
      \  return 0;\n\
       }"
  in
  check_bool "global taint" true (label_at prog r ~line:7 = sym)

let test_unreachable_function_concrete () =
  let prog, r =
    analyze
      "int dead(int x) { if (x) { return 1; } return 0; }\n\
       int main() { return 0; }"
  in
  check_bool "unreachable branch concrete" true (label_at prog r ~line:1 = conc)

let test_lib_conservative_mode () =
  let lib = "int lfun(int x) { if (x > 0) { return 1; } return 0; }" in
  let app = "int main() { if (lfun(3) == 1) { return 1; } return 0; }" in
  let prog = Minic.Program.of_sources ~app ~libs:[ lib ] () in
  let r = Staticanalysis.Static.analyze ~analyze_lib:false prog in
  (* all library branches symbolic in conservative mode (paper §5.3) *)
  List.iter
    (fun bid ->
      check_bool "lib branch symbolic" true (r.labels.(bid) = Minic.Label.Symbolic))
    (Minic.Program.lib_branch_ids prog)

(* ------------------------------------------------------------------ *)
(* The key soundness property: every branch dynamic analysis observes as
   symbolic must be labelled symbolic by static analysis. *)

let overapprox_sources =
  [
    ( "argv compare",
      "int main() { int b[16]; arg(0, b, 16); if (b[0] == 'x') { if (b[1] == 'y') { crash(); } } return 0; }",
      [ "xy" ] );
    ( "length loop",
      "int main() { int b[32]; arg(0, b, 32); int n = strlen(b); if (n > 3) { return 1; } return 0; }",
      [ "hello" ] );
    ( "mixed",
      "int main() { int b[16]; int i; int acc = 0; arg(0, b, 16);\n\
       for (i = 0; i < 4; i = i + 1) { if (b[i] == 'z') { acc = acc + 1; } }\n\
       if (acc == 2) { return 1; } return 0; }",
      [ "zaza" ] );
  ]

let test_static_overapproximates_dynamic () =
  List.iter
    (fun (name, src, args) ->
      let prog = Workloads.Runtime_lib.link ~name src in
      let sc = Concolic.Scenario.make ~name ~args prog in
      let dyn =
        Concolic.Dynamic.analyze
          ~budget:{ Concolic.Engine.max_runs = 100; max_time_s = 5.0 }
          sc
      in
      let sta = Staticanalysis.Static.analyze prog in
      Array.iteri
        (fun bid l ->
          if l = Minic.Label.Symbolic then
            check_bool
              (Printf.sprintf "%s: branch %d symbolic in static" name bid)
              true
              (sta.labels.(bid) = Minic.Label.Symbolic))
        dyn.labels)
    overapprox_sources

let test_workload_overapproximation () =
  (* same property on the real coreutils workloads *)
  List.iter
    (fun (e : Workloads.Coreutils.entry) ->
      let prog = Lazy.force e.prog in
      let sc = Workloads.Coreutils.analysis_scenario e in
      let dyn =
        Concolic.Dynamic.analyze
          ~budget:{ Concolic.Engine.max_runs = 80; max_time_s = 5.0 }
          sc
      in
      let sta = Staticanalysis.Static.analyze prog in
      Array.iteri
        (fun bid l ->
          if l = Minic.Label.Symbolic then
            check_bool
              (Printf.sprintf "%s: dyn-symbolic branch %d in static" e.util bid)
              true
              (sta.labels.(bid) = Minic.Label.Symbolic))
        dyn.labels)
    Workloads.Coreutils.catalog

let test_pointsto_basics () =
  let prog =
    link
      "int g;\n\
       int *p;\n\
       int main() { int x; p = &g; *p = 1; p = &x; return 0; }"
  in
  let pta = Staticanalysis.Pointsto.analyze prog in
  let pts =
    Staticanalysis.Pointsto.points_of pta ~fn:"main"
      (Minic.Ast.Lval (Minic.Ast.Var "p"))
  in
  check_int "p points to two cells" 2 (Staticanalysis.Aloc.Set.cardinal pts)

let () =
  Alcotest.run "staticanalysis"
    [
      ( "labelling",
        [
          Alcotest.test_case "argv branch symbolic" `Quick test_argv_branch_symbolic;
          Alcotest.test_case "constant branch concrete" `Quick
            test_constant_branch_concrete;
          Alcotest.test_case "read results symbolic" `Quick
            test_read_result_symbolic;
          Alcotest.test_case "assignment chain" `Quick
            test_taint_through_assignment_chain;
          Alcotest.test_case "strong update" `Quick test_strong_update_clears_local;
          Alcotest.test_case "function return" `Quick
            test_taint_through_function_return;
          Alcotest.test_case "context sensitivity" `Quick test_context_sensitivity;
          Alcotest.test_case "pointer write" `Quick test_taint_through_pointer_write;
          Alcotest.test_case "global variable" `Quick test_taint_through_global;
          Alcotest.test_case "unreachable concrete" `Quick
            test_unreachable_function_concrete;
          Alcotest.test_case "conservative library mode" `Quick
            test_lib_conservative_mode;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "static overapproximates dynamic" `Slow
            test_static_overapproximates_dynamic;
          Alcotest.test_case "workload overapproximation" `Slow
            test_workload_overapproximation;
        ] );
      ( "pointsto",
        [ Alcotest.test_case "basics" `Quick test_pointsto_basics ] );
    ]
