(* End-to-end integration tests: the full analyse → plan → field run →
   report → reproduce pipeline on every bundled workload, under each
   instrumentation method. *)

let check_bool = Alcotest.(check bool)

let dynamic_budget = { Concolic.Engine.max_runs = 60; max_time_s = 8.0 }
let replay_budget = { Concolic.Engine.max_runs = 3000; max_time_s = 30.0 }

(* analyse once per program, cached across methods *)
let analyses : (string, Bugrepro.Pipeline.analysis) Hashtbl.t = Hashtbl.create 8

let analysis_for ~key ~analyze_lib ~(test_scenario : Concolic.Scenario.t) prog =
  match Hashtbl.find_opt analyses key with
  | Some a -> a
  | None ->
      let a =
        Bugrepro.Pipeline.analyze ~dynamic_budget ~analyze_lib ~test_scenario prog
      in
      Hashtbl.replace analyses key a;
      a

let run_pipeline ?(analyze_lib = true) ~key ~(test_sc : Concolic.Scenario.t)
    ~(crash_sc : Concolic.Scenario.t) meth =
  let prog = crash_sc.prog in
  let analysis = analysis_for ~key ~analyze_lib ~test_scenario:test_sc prog in
  let plan = Bugrepro.Pipeline.plan analysis meth in
  let _, report = Bugrepro.Pipeline.field_run_report ~plan crash_sc in
  match report with
  | None -> Alcotest.failf "%s: field run did not crash" key
  | Some report ->
      let result, stats =
        Bugrepro.Pipeline.reproduce ~budget:replay_budget ~prog ~plan report
      in
      (result, stats, plan, report)

(* ------------------------------------------------------------------ *)
(* Coreutils: all four bugs reproduce under every method (Table 1: the
   programs are small enough that all configurations succeed) *)

let test_coreutils_all_methods () =
  List.iter
    (fun (e : Workloads.Coreutils.entry) ->
      List.iter
        (fun meth ->
          let result, _, _, _ =
            run_pipeline ~key:("core-" ^ e.util)
              ~test_sc:(Workloads.Coreutils.analysis_scenario e)
              ~crash_sc:(Workloads.Coreutils.crash_scenario e)
              meth
          in
          check_bool
            (Printf.sprintf "%s under %s" e.util (Instrument.Methods.to_string meth))
            true
            (Replay.Guided.reproduced result))
        Instrument.Methods.instrumented)
    Workloads.Coreutils.catalog

(* ------------------------------------------------------------------ *)
(* µServer: experiment 1 under every method; experiment 4 under the
   combined method (full Table 3 sweep lives in the bench harness) *)

let userver_test_sc () =
  Workloads.Userver.scenario ~name:"userver-test" (Workloads.Http_gen.workload 5)

let test_userver_exp1_all_methods () =
  let crash_sc =
    Workloads.Userver.experiment_scenario (Workloads.Userver.experiment 1)
  in
  List.iter
    (fun meth ->
      let result, _, _, _ =
        run_pipeline ~analyze_lib:false ~key:"userver" ~test_sc:(userver_test_sc ())
          ~crash_sc meth
      in
      check_bool
        (Printf.sprintf "userver exp1 under %s" (Instrument.Methods.to_string meth))
        true
        (Replay.Guided.reproduced result))
    Instrument.Methods.instrumented

let test_userver_exp4_combined () =
  let crash_sc =
    Workloads.Userver.experiment_scenario (Workloads.Userver.experiment 4)
  in
  let result, _, _, _ =
    run_pipeline ~analyze_lib:false ~key:"userver" ~test_sc:(userver_test_sc ())
      ~crash_sc Instrument.Methods.Dynamic_static
  in
  check_bool "userver exp4 dynamic+static" true (Replay.Guided.reproduced result)

(* ------------------------------------------------------------------ *)
(* diff: static and combined reproduce (Table 6: dynamic times out) *)

let test_diff_static_reproduces () =
  let crash_sc = Workloads.Diffutil.experiment_1 () in
  let result, _, _, _ =
    run_pipeline ~key:"diff" ~test_sc:crash_sc ~crash_sc Instrument.Methods.Static
  in
  check_bool "diff exp1 static" true (Replay.Guided.reproduced result)

let test_diff_combined_reproduces () =
  let crash_sc = Workloads.Diffutil.experiment_1 () in
  let result, _, _, _ =
    run_pipeline ~key:"diff" ~test_sc:crash_sc ~crash_sc
      Instrument.Methods.Dynamic_static
  in
  check_bool "diff exp1 dynamic+static" true (Replay.Guided.reproduced result)

(* ------------------------------------------------------------------ *)
(* Cross-cutting invariants *)

let test_overhead_ordering_invariant () =
  (* none <= dynamic <= dynamic+static <= static <= all on instrumented
     branch *count* for the µServer (§2.3's spectrum) *)
  let prog = Lazy.force Workloads.Userver.prog in
  let analysis =
    analysis_for ~key:"userver" ~analyze_lib:false ~test_scenario:(userver_test_sc ())
      prog
  in
  let count meth = (Bugrepro.Pipeline.plan analysis meth).n_instrumented in
  let d = count Instrument.Methods.Dynamic in
  let ds = count Instrument.Methods.Dynamic_static in
  let s = count Instrument.Methods.Static in
  let a = count Instrument.Methods.All_branches in
  check_bool "dynamic <= dynamic+static" true (d <= ds);
  check_bool "dynamic+static <= static" true (ds <= s);
  check_bool "static <= all" true (s <= a)

let test_plan_nesting () =
  (* soundness gives dynamic ⊆ dynamic+static ⊆ static ⊆ all as *sets*
     (not just counts), and therefore log sizes are monotone too *)
  let prog = Lazy.force Workloads.Userver.prog in
  let analysis =
    analysis_for ~key:"userver" ~analyze_lib:false ~test_scenario:(userver_test_sc ())
      prog
  in
  let plan m = Bugrepro.Pipeline.plan analysis m in
  let d = plan Instrument.Methods.Dynamic in
  let ds = plan Instrument.Methods.Dynamic_static in
  let st = plan Instrument.Methods.Static in
  let al = plan Instrument.Methods.All_branches in
  let subset a b =
    List.for_all (Instrument.Plan.is_instrumented b) (Instrument.Plan.instrumented_ids a)
  in
  check_bool "dynamic ⊆ dyn+static" true (subset d ds);
  check_bool "dyn+static ⊆ static" true (subset ds st);
  check_bool "static ⊆ all" true (subset st al);
  (* bits logged on the same run are monotone across nested plans *)
  let sc = Workloads.Userver.experiment_scenario (Workloads.Userver.experiment 1) in
  let bits p = (Instrument.Field_run.run ~plan:p sc).branch_log.nbits in
  let bd = bits d and bds = bits ds and bst = bits st and bal = bits al in
  check_bool "bit monotonicity" true (bd <= bds && bds <= bst && bst <= bal)

let test_reproduced_model_crashes_when_rerun () =
  (* the input synthesised by replay, when fed back through the replay
     kernel, reaches the same crash site: verified by reproduce itself, but
     re-check the crash site against the report *)
  let e = Workloads.Coreutils.find "mkdir" in
  let result, _, _, report =
    run_pipeline ~key:"core-mkdir"
      ~test_sc:(Workloads.Coreutils.analysis_scenario e)
      ~crash_sc:(Workloads.Coreutils.crash_scenario e)
      Instrument.Methods.Dynamic_static
  in
  match result with
  | Replay.Guided.Reproduced r ->
      check_bool "same crash site as report" true
        (Interp.Crash.equal_site r.crash report.crash)
  | Replay.Guided.Not_reproduced _ -> Alcotest.fail "not reproduced"

let () =
  Alcotest.run "e2e"
    [
      ( "coreutils",
        [ Alcotest.test_case "all bugs, all methods" `Slow test_coreutils_all_methods ]
      );
      ( "userver",
        [
          Alcotest.test_case "exp1 all methods" `Slow test_userver_exp1_all_methods;
          Alcotest.test_case "exp4 combined" `Slow test_userver_exp4_combined;
        ] );
      ( "diff",
        [
          Alcotest.test_case "exp1 static" `Slow test_diff_static_reproduces;
          Alcotest.test_case "exp1 combined" `Slow test_diff_combined_reproduces;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "plan size ordering" `Quick
            test_overhead_ordering_invariant;
          Alcotest.test_case "plan nesting and bit monotonicity" `Quick
            test_plan_nesting;
          Alcotest.test_case "reproduced model crash site" `Slow
            test_reproduced_model_crashes_when_rerun;
        ] );
    ]
