(* Tests for the §6/§4 extensions: branch-log compression, the rejected
   branch-prediction logging scheme, checkpointing for long-running
   applications, and cooperative multithreading with schedule logging. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Compression *)

let test_compress_roundtrip_biased () =
  (* loop-like log: long runs of identical bits *)
  let bits =
    List.concat_map (fun b -> List.init 200 (fun _ -> b)) [ true; false; true ]
  in
  let log = Instrument.Branch_log.of_bits bits in
  let c = Instrument.Compress.compress log in
  check_bool "rle chosen" true (c.encoding = `Rle);
  check_bool "shrinks a lot" true
    (Instrument.Compress.ratio log c > 5.0);
  let log' = Instrument.Compress.decompress c in
  Alcotest.(check (list bool)) "roundtrip" bits (Instrument.Branch_log.to_bits log')

let test_compress_adversarial_falls_back () =
  (* alternating bits: RLE can only expand, so raw must win *)
  let bits = List.init 512 (fun i -> i mod 2 = 0) in
  let log = Instrument.Branch_log.of_bits bits in
  let c = Instrument.Compress.compress log in
  check_bool "no expansion" true
    (Instrument.Compress.size_bytes c <= Instrument.Branch_log.size_bytes log);
  let log' = Instrument.Compress.decompress c in
  Alcotest.(check (list bool)) "roundtrip" bits (Instrument.Branch_log.to_bits log')

let test_compress_empty () =
  let log = Instrument.Branch_log.of_bits [] in
  let c = Instrument.Compress.compress log in
  check_int "empty" 0 (Instrument.Compress.size_bytes c);
  check_int "roundtrip empty" 0 (Instrument.Compress.decompress c).nbits

let prop_compress_roundtrip =
  QCheck.Test.make ~count:300 ~name:"compress/decompress identity"
    QCheck.(list bool)
    (fun bits ->
      let log = Instrument.Branch_log.of_bits bits in
      let c = Instrument.Compress.compress log in
      Instrument.Branch_log.to_bits (Instrument.Compress.decompress c) = bits)

let test_compress_real_log_ratio () =
  (* a real field-run log compresses well, like the paper's 10-20x gzip *)
  let sc = Workloads.Microbench.counter_loop ~iterations:20_000 () in
  let plan =
    Instrument.Plan.make
      ~nbranches:(Minic.Program.nbranches sc.prog)
      Instrument.Methods.All_branches
  in
  let r = Instrument.Field_run.run ~plan sc in
  let c = Instrument.Compress.compress r.branch_log in
  check_bool "ratio > 10x" true (Instrument.Compress.ratio r.branch_log c > 10.0)

(* ------------------------------------------------------------------ *)
(* Branch-prediction logging (the rejected alternative) *)

let test_predictor_perfect_on_constant_loop () =
  let p = Instrument.Predictor.create ~nbranches:1 Instrument.Predictor.Two_bit in
  (* a loop branch taken 100 times then not taken once *)
  for _ = 1 to 100 do
    ignore (Instrument.Predictor.observe p 0 ~taken:true)
  done;
  let mispredicted_exit = Instrument.Predictor.observe p 0 ~taken:false in
  check_bool "exit mispredicted" true mispredicted_exit;
  check_bool "almost no mispredictions" true (p.mispredictions <= 2)

let test_predictor_log_size_accounting () =
  let p =
    Instrument.Predictor.create ~nbranches:4 Instrument.Predictor.Last_direction
  in
  ignore (Instrument.Predictor.observe p 0 ~taken:false);
  (* initial state predicts taken: first observation mispredicts *)
  check_int "4 bytes per misprediction" (p.mispredictions * 4)
    (Instrument.Predictor.log_size_bytes p)

let test_predictor_alternating_is_worst_case () =
  let p = Instrument.Predictor.create ~nbranches:1 Instrument.Predictor.Last_direction in
  for i = 0 to 99 do
    ignore (Instrument.Predictor.observe p 0 ~taken:(i mod 2 = 0))
  done;
  check_bool "high misprediction rate" true
    (Instrument.Predictor.misprediction_rate p > 0.9)

(* ------------------------------------------------------------------ *)
(* Checkpointing *)

let ckpt_scenario () =
  let reqs =
    Workloads.Http_gen.workload ~seed:3 12
    @ (Workloads.Userver.experiment 1).requests
  in
  Workloads.Userver.checkpointed_scenario reqs

let ckpt_plan () =
  Instrument.Plan.make
    ~nbranches:(Minic.Program.nbranches (Lazy.force Workloads.Userver.checkpointed_prog))
    Instrument.Methods.All_branches

let test_checkpoint_discards_log () =
  let sc = ckpt_scenario () in
  let r = Checkpoint.Cfield.run ~plan:(ckpt_plan ()) sc in
  check_bool "crashed" true
    (match r.outcome with Interp.Crash.Crash _ -> true | _ -> false);
  check_bool "took checkpoints" true (r.epochs >= 1);
  check_bool "snapshot captured" true (r.snapshot <> None);
  check_bool "most bits discarded" true (r.discarded_bits > r.branch_log.nbits);
  check_int "bits accounted" r.total_bits (r.discarded_bits + r.branch_log.nbits)

let test_checkpoint_snapshot_structure_only () =
  let sc = ckpt_scenario () in
  let r = Checkpoint.Cfield.run ~plan:(ckpt_plan ()) sc in
  match r.snapshot with
  | None -> Alcotest.fail "no snapshot"
  | Some s ->
      (* the snapshot describes global structure; its size is tiny compared
         to the state contents it covers *)
      let cells =
        List.fold_left (fun acc (g : Checkpoint.Snapshot.global) -> acc + g.size) 0 s.globals
      in
      check_bool "has the server globals" true (cells > 8000);
      check_bool "ships structure, not content" true
        (Checkpoint.Snapshot.size_bytes s < cells)

let test_checkpoint_replay_reproduces () =
  let sc = ckpt_scenario () in
  let plan = ckpt_plan () in
  let r = Checkpoint.Cfield.run ~plan sc in
  match Checkpoint.Cfield.report_of ~sc ~plan r with
  | Some (report, Some snapshot) ->
      let result, _ =
        Checkpoint.Creplay.reproduce
          ~budget:{ Concolic.Engine.max_runs = 20_000; max_time_s = 30.0 }
          ~prog:(Lazy.force Workloads.Userver.checkpointed_prog)
          ~plan ~snapshot report
      in
      check_bool "reproduced from checkpoint" true (Replay.Guided.reproduced result)
  | _ -> Alcotest.fail "expected a report with a snapshot"

let test_checkpointed_server_still_serves () =
  (* checkpointing must not change observable behaviour *)
  let reqs = Workloads.Http_gen.workload ~seed:9 10 in
  let sc = Workloads.Userver.checkpointed_scenario reqs in
  let _w, handle = Osmodel.World.kernel sc.world in
  let r =
    Interp.Eval.run sc.prog
      {
        Interp.Eval.inputs = Interp.Inputs.of_strings sc.args;
        kernel = Interp.Kernel.of_world handle;
        hooks = Interp.Eval.no_hooks;
        max_steps = sc.max_steps;
      scheduler = None;
      }
  in
  check_bool "clean exit" true
    (match r.outcome with Interp.Crash.Exit _ -> true | _ -> false);
  check_bool "served all" true
    (List.exists
       (fun l -> l = "served 10")
       (String.split_on_char '\n' r.output))

(* ------------------------------------------------------------------ *)
(* Multithreading (~6) *)

let mt_compile src = Workloads.Runtime_lib.link ~name:"mt" src

let mt_run ?scheduler (src : string) =
  let prog = mt_compile src in
  let _w, handle = Osmodel.World.kernel Osmodel.World.default_config in
  Interp.Eval.run prog
    {
      Interp.Eval.inputs = Interp.Inputs.of_strings [];
      kernel = Interp.Kernel.of_world handle;
      hooks = Interp.Eval.no_hooks;
      max_steps = 1_000_000;
      scheduler;
    }

let test_threads_spawn_join () =
  let r =
    mt_run
      {|int worker(int x) { return x * 2; }
        int main() { int t = spawn("worker", 21); return join(t); }|}
  in
  check_bool "joined result" true (r.outcome = Interp.Crash.Exit 42)

let test_threads_interleave_shared_state () =
  let r =
    mt_run
      {|int c = 0;
        int w(int n) { int i; for (i = 0; i < n; i = i + 1) { c = c + 1; yield(); } return 0; }
        int main() { int a = spawn("w", 5); int b = spawn("w", 7); join(a); join(b); return c; }|}
  in
  check_bool "shared counter" true (r.outcome = Interp.Crash.Exit 12)

let test_threads_my_tid_distinct () =
  let r =
    mt_run
      {|int w(int x) { return my_tid(); }
        int main() {
          int a = spawn("w", 0);
          int b = spawn("w", 0);
          int ra = join(a);
          int rb = join(b);
          if (ra != rb) { return 1; }
          return 0;
        }|}
  in
  check_bool "distinct tids" true (r.outcome = Interp.Crash.Exit 1)

let test_threads_deadlock_detected () =
  let r = mt_run {|int main() { join(99); return 0; }|} in
  check_bool "deadlock reported" true
    (match r.outcome with Interp.Crash.Aborted _ -> true | _ -> false)

let mt_order_src =
  {|int order[4];
    int n = 0;
    int w(int x) {
      order[n] = x; n = n + 1;
      yield();
      order[n] = x; n = n + 1;
      return 0;
    }
    int main() {
      int a = spawn("w", 1);
      int b = spawn("w", 2);
      join(a);
      join(b);
      return order[0] * 1000 + order[1] * 100 + order[2] * 10 + order[3];
    }|}

let test_threads_schedule_controls_interleaving () =
  let rr = mt_run mt_order_src in
  (* round-robin: 1 2 1 2 *)
  check_bool "round robin" true (rr.outcome = Interp.Crash.Exit 1212);
  (* forced: always prefer the highest ready tid *)
  let hi = mt_run ~scheduler:(fun ready -> List.fold_left max 0 ready) mt_order_src in
  check_bool "highest-first differs" true (hi.outcome <> rr.outcome)

let test_mtrace_crashes_and_replays_with_schedule () =
  let sc = Workloads.Mtrace.scenario ~seed:3 () in
  let prog = sc.prog in
  let plan =
    Instrument.Plan.make ~nbranches:(Minic.Program.nbranches prog)
      Instrument.Methods.All_branches
  in
  let _, report = Bugrepro.Pipeline.field_run_report ~plan sc in
  match report with
  | None -> Alcotest.fail "race did not fire under the field scheduler"
  | Some report ->
      check_bool "schedule log shipped" true
        (match report.schedule_log with
        | Some l -> Instrument.Schedule_log.length l > 0
        | None -> false);
      let result, _ =
        Bugrepro.Pipeline.reproduce
          ~budget:{ Concolic.Engine.max_runs = 20_000; max_time_s = 20.0 }
          ~prog ~plan report
      in
      check_bool "reproduced with schedule" true (Replay.Guided.reproduced result)

let test_mtrace_fails_without_schedule () =
  (* ~6's claim: the branch trace alone cannot pin the interleaving *)
  let sc = Workloads.Mtrace.scenario ~seed:3 () in
  let prog = sc.prog in
  let plan =
    Instrument.Plan.make ~nbranches:(Minic.Program.nbranches prog)
      Instrument.Methods.All_branches
  in
  let _, report = Bugrepro.Pipeline.field_run_report ~plan sc in
  let report = Option.get report in
  let stripped = { report with Instrument.Report.schedule_log = None } in
  let result, _ =
    Bugrepro.Pipeline.reproduce
      ~budget:{ Concolic.Engine.max_runs = 600; max_time_s = 5.0 }
      ~prog ~plan stripped
  in
  check_bool "not reproduced without schedule" false
    (Replay.Guided.reproduced result)

let test_mtrace_benign_clean () =
  let sc = Workloads.Mtrace.benign_scenario () in
  let plan =
    Instrument.Plan.make ~nbranches:(Minic.Program.nbranches sc.prog)
      Instrument.Methods.All_branches
  in
  let r = Instrument.Field_run.run ~plan sc in
  check_bool "benign exits" true
    (match r.outcome with Interp.Crash.Exit _ -> true | _ -> false)

let () =
  Alcotest.run "extensions"
    [
      ( "compress",
        [
          Alcotest.test_case "biased roundtrip" `Quick test_compress_roundtrip_biased;
          Alcotest.test_case "adversarial fallback" `Quick
            test_compress_adversarial_falls_back;
          Alcotest.test_case "empty" `Quick test_compress_empty;
          Alcotest.test_case "real log ratio" `Quick test_compress_real_log_ratio;
          QCheck_alcotest.to_alcotest prop_compress_roundtrip;
        ] );
      ( "predictor",
        [
          Alcotest.test_case "constant loop" `Quick
            test_predictor_perfect_on_constant_loop;
          Alcotest.test_case "log size" `Quick test_predictor_log_size_accounting;
          Alcotest.test_case "alternating worst case" `Quick
            test_predictor_alternating_is_worst_case;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "discards log" `Quick test_checkpoint_discards_log;
          Alcotest.test_case "snapshot is structural" `Quick
            test_checkpoint_snapshot_structure_only;
          Alcotest.test_case "replay reproduces" `Slow
            test_checkpoint_replay_reproduces;
          Alcotest.test_case "server behaviour unchanged" `Quick
            test_checkpointed_server_still_serves;
        ] );
      ( "threads",
        [
          Alcotest.test_case "spawn/join" `Quick test_threads_spawn_join;
          Alcotest.test_case "interleaved shared state" `Quick
            test_threads_interleave_shared_state;
          Alcotest.test_case "distinct tids" `Quick test_threads_my_tid_distinct;
          Alcotest.test_case "deadlock detected" `Quick
            test_threads_deadlock_detected;
          Alcotest.test_case "schedule controls interleaving" `Quick
            test_threads_schedule_controls_interleaving;
          Alcotest.test_case "race replays with schedule" `Slow
            test_mtrace_crashes_and_replays_with_schedule;
          Alcotest.test_case "race needs the schedule" `Slow
            test_mtrace_fails_without_schedule;
          Alcotest.test_case "benign input clean" `Quick test_mtrace_benign_clean;
        ] );
    ]
