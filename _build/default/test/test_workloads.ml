(* Tests for the bundled workloads: the coreutils analogues and their bug
   catalog, the µServer and its five experiments, diff, and the
   generators. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let plain_run (sc : Concolic.Scenario.t) =
  let w, handle = Osmodel.World.kernel sc.world in
  let r =
    Interp.Eval.run sc.prog
      {
        Interp.Eval.inputs = Interp.Inputs.of_strings sc.args;
        kernel = Interp.Kernel.of_world handle;
        hooks = Interp.Eval.no_hooks;
        max_steps = sc.max_steps;
      scheduler = None;
      }
  in
  (r, w)

let is_crash (r : Interp.Eval.result) =
  match r.outcome with Interp.Crash.Crash _ -> true | _ -> false

let is_clean_exit (r : Interp.Eval.result) =
  match r.outcome with Interp.Crash.Exit _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Coreutils *)

let test_coreutils_benign_clean () =
  List.iter
    (fun e ->
      let r, _ = plain_run (Workloads.Coreutils.benign_scenario e) in
      check_bool (e.Workloads.Coreutils.util ^ " benign exits") true
        (is_clean_exit r))
    Workloads.Coreutils.catalog

let test_coreutils_crash_inputs_crash () =
  List.iter
    (fun e ->
      let r, _ = plain_run (Workloads.Coreutils.crash_scenario e) in
      check_bool (e.Workloads.Coreutils.util ^ " crash input crashes") true
        (is_crash r))
    Workloads.Coreutils.catalog

let test_coreutils_distinct_crash_sites () =
  let sites =
    List.filter_map
      (fun e ->
        let r, _ = plain_run (Workloads.Coreutils.crash_scenario e) in
        match r.outcome with
        | Interp.Crash.Crash c -> Some (Interp.Crash.to_string c)
        | _ -> None)
      Workloads.Coreutils.catalog
  in
  check_int "four distinct sites" 4 (List.length (List.sort_uniq compare sites))

let test_paste_output () =
  let e = Workloads.Coreutils.find "paste" in
  let r, _ = plain_run (Workloads.Coreutils.benign_scenario e) in
  check_bool "joined with commas" true
    (String.trim r.output = "one,two,three")

(* ------------------------------------------------------------------ *)
(* µServer *)

let test_userver_serves_requests () =
  let n = 25 in
  let sc = Workloads.Userver.scenario (Workloads.Http_gen.workload n) in
  let r, w = plain_run sc in
  check_bool "clean exit" true (is_clean_exit r);
  (* every connection got an HTTP response *)
  let conns = Osmodel.World.connections w in
  ignore conns;
  let lines = String.split_on_char '\n' r.output in
  let access = List.filter (fun l -> String.length l > 0) lines in
  (* last line is the served count *)
  check_bool "served all" true
    (List.exists (fun l -> l = Printf.sprintf "served %d" n) access)

let test_userver_responses_wellformed () =
  let sc = Workloads.Userver.scenario [ Workloads.Http_gen.tiny_get ] in
  let _, w = plain_run sc in
  match Osmodel.World.connections w with
  | [] ->
      (* connection closed and removed from the fd table: check stdout
         instead for the access log *)
      ()
  | conns ->
      List.iter
        (fun c ->
          let out = Osmodel.World.conn_outbox_string c in
          check_bool "HTTP status line" true
            (String.length out >= 8 && String.sub out 0 5 = "HTTP/"))
        conns

let test_userver_experiments_crash_distinctly () =
  let sites =
    List.map
      (fun (e : Workloads.Userver.experiment) ->
        let r, _ = plain_run (Workloads.Userver.experiment_scenario e) in
        match r.outcome with
        | Interp.Crash.Crash c -> Interp.Crash.to_string c
        | o ->
            Alcotest.failf "exp%d did not crash: %s" e.id
              (Interp.Crash.outcome_to_string o))
      Workloads.Userver.experiments
  in
  check_int "five distinct crash sites" 5
    (List.length (List.sort_uniq compare sites))

let test_userver_benign_workload_never_crashes () =
  (* the generator must not trigger the planted bugs *)
  List.iter
    (fun seed ->
      let sc =
        Workloads.Userver.scenario ~seed (Workloads.Http_gen.workload ~seed 15)
      in
      let r, _ = plain_run sc in
      check_bool (Printf.sprintf "seed %d clean" seed) true (is_clean_exit r))
    [ 1; 2; 3; 4; 5 ]

let test_userver_deterministic_given_seed () =
  let sc () = Workloads.Userver.scenario ~seed:9 (Workloads.Http_gen.workload 8) in
  let r1, _ = plain_run (sc ()) in
  let r2, _ = plain_run (sc ()) in
  check_bool "same output" true (r1.output = r2.output);
  check_int "same steps" r1.steps r2.steps

(* ------------------------------------------------------------------ *)
(* HTTP generator *)

let test_http_gen_sizes_in_range () =
  let reqs = Workloads.Http_gen.workload ~seed:13 200 in
  List.iter
    (fun r ->
      let n = String.length r in
      check_bool "5..400 bytes" true (n >= 5 && n <= 400))
    reqs

let test_http_gen_benign_invariants () =
  let reqs = Workloads.Http_gen.workload ~seed:21 200 in
  List.iter
    (fun r ->
      (* no over-long path; no unterminated quote; method present *)
      check_bool "no leading space" true (r.[0] <> ' ');
      let first_space = String.index r ' ' in
      check_bool "method nonempty" true (first_space > 0))
    reqs

(* ------------------------------------------------------------------ *)
(* diff *)

let test_diff_identical_files () =
  let sc =
    Workloads.Diffutil.scenario ~name:"d" ~snapshot:false ~file_a:"a\nb\n"
      ~file_b:"a\nb\n" ()
  in
  let r, _ = plain_run sc in
  check_bool "identical detected" true
    (String.length r.output >= 9 && String.sub r.output 0 9 = "files are")

let test_diff_reports_changes () =
  let sc =
    Workloads.Diffutil.scenario ~name:"d" ~snapshot:false ~file_a:"a\nb\nc\n"
      ~file_b:"a\nx\nc\n" ()
  in
  let r, _ = plain_run sc in
  check_bool "old line reported" true
    (List.exists (fun l -> l = "< b") (String.split_on_char '\n' r.output));
  check_bool "new line reported" true
    (List.exists (fun l -> l = "> x") (String.split_on_char '\n' r.output))

let test_diff_snapshot_crashes_at_fixed_site () =
  let s1, _ = plain_run (Workloads.Diffutil.experiment_1 ()) in
  let s2, _ = plain_run (Workloads.Diffutil.experiment_2 ()) in
  match s1.outcome, s2.outcome with
  | Interp.Crash.Crash c1, Interp.Crash.Crash c2 ->
      check_bool "same snapshot site" true (Interp.Crash.equal_site c1 c2)
  | _ -> Alcotest.fail "diff experiments must crash at the snapshot"

let test_file_pair_generator () =
  let a, b = Workloads.Diffutil.file_pair ~seed:5 ~lines:10 ~width:6 ~edits:2 () in
  check_bool "files differ" true (a <> b);
  check_int "first file line count" 10
    (List.length (String.split_on_char '\n' a) - 1)

(* ------------------------------------------------------------------ *)
(* Microbenchmarks *)

let test_counter_loop_counts () =
  let sc = Workloads.Microbench.counter_loop ~iterations:1234 () in
  let r, _ = plain_run sc in
  check_bool "prints count" true (r.output = "1234")

let test_fibonacci_options () =
  let run opt =
    let r, _ = plain_run (Workloads.Microbench.fibonacci ~option:opt ()) in
    r.output
  in
  check_bool "a and b differ" true (run "a" <> run "b");
  check_bool "other options give 0" true (run "z" = "0")

let test_fibonacci_two_symbolic_branches () =
  (* Listing 1's point: only the two option branches are symbolic.  Use an
     option that falls through both tests so both branch locations run. *)
  let sc = Workloads.Microbench.fibonacci ~option:"z" () in
  let stats = Bugrepro.Pipeline.measure_branch_behaviour sc in
  let sym_locs =
    Array.to_list stats.symbolic_execs |> List.filter (fun n -> n > 0)
  in
  check_int "exactly two symbolic branch locations" 2 (List.length sym_locs)

(* ------------------------------------------------------------------ *)
(* Runtime library (the uClibc analogue) *)

let lib_expr expr =
  (* evaluate an expression in a MiniC main and return its exit code *)
  let src = Printf.sprintf "int main() { return %s; }" expr in
  let r, _ = plain_run (Concolic.Scenario.make ~name:"lib" (Workloads.Runtime_lib.link ~name:"lib" src)) in
  match r.outcome with
  | Interp.Crash.Exit n -> n
  | o -> Alcotest.failf "lib test crashed: %s" (Interp.Crash.outcome_to_string o)

let lib_prog body =
  let r, _ =
    plain_run
      (Concolic.Scenario.make ~name:"lib"
         (Workloads.Runtime_lib.link ~name:"lib"
            (Printf.sprintf "int main() { %s }" body)))
  in
  r

let test_lib_strlen () =
  check_int "strlen" 5 (lib_expr {|strlen("hello")|});
  check_int "strlen empty" 0 (lib_expr {|strlen("")|})

let test_lib_strcmp () =
  check_int "equal" 0 (lib_expr {|strcmp("abc", "abc")|});
  check_bool "less" true (lib_expr {|strcmp("abc", "abd")|} < 0);
  check_bool "greater" true (lib_expr {|strcmp("b", "aaa")|} > 0);
  check_bool "prefix" true (lib_expr {|strcmp("ab", "abc")|} < 0)

let test_lib_strncmp () =
  check_int "bounded equal" 0 (lib_expr {|strncmp("abcX", "abcY", 3)|});
  check_bool "bounded differs" true (lib_expr {|strncmp("abcX", "abcY", 4)|} <> 0)

let test_lib_strcpy_strcat () =
  let r = lib_prog {|int b[32]; strcpy(b, "foo"); strcat(b, "bar"); print_str(b); return strlen(b);|} in
  (match r.outcome with
  | Interp.Crash.Exit n -> check_int "len" 6 n
  | _ -> Alcotest.fail "crashed");
  check_bool "contents" true (r.output = "foobar")

let test_lib_strlcpy_truncates () =
  let r = lib_prog {|int b[8]; int n = strlcpy(b, "abcdefghij", 4); print_str(b); return n;|} in
  (match r.outcome with
  | Interp.Crash.Exit n -> check_int "copied" 3 n
  | _ -> Alcotest.fail "crashed");
  check_bool "truncated" true (r.output = "abc")

let test_lib_atoi () =
  check_int "plain" 123 (lib_expr {|atoi("123")|});
  check_int "negative" (-45) (lib_expr {|atoi("-45")|});
  check_int "leading space" 7 (lib_expr {|atoi("  7")|});
  check_int "stops at non-digit" 12 (lib_expr {|atoi("12ab")|});
  check_int "empty" 0 (lib_expr {|atoi("")|})

let test_lib_parse_octal () =
  check_int "755" 493 (lib_expr {|parse_octal("755")|});
  check_int "1777" 1023 (lib_expr {|parse_octal("1777")|});
  check_int "stops at 8" 7 (lib_expr {|parse_octal("78")|})

let test_lib_itoa () =
  let r = lib_prog {|int b[24]; itoa(-1234, b); print_str(b); return itoa(0, b);|} in
  check_bool "renders" true (String.length r.output >= 5 && String.sub r.output 0 5 = "-1234")

let test_lib_str_index () =
  check_int "found" 2 (lib_expr {|str_index("abcabc", 'c', 0)|});
  check_int "from offset" 5 (lib_expr {|str_index("abcabc", 'c', 3)|});
  check_int "missing" (-1) (lib_expr {|str_index("abc", 'z', 0)|})

let test_lib_classifiers () =
  check_int "isdigit yes" 1 (lib_expr {|isdigit('5')|});
  check_int "isdigit no" 0 (lib_expr {|isdigit('a')|});
  check_int "toupper" (Char.code 'A') (lib_expr {|toupper('a')|});
  check_int "tolower" (Char.code 'z') (lib_expr {|tolower('Z')|});
  check_int "isspace tab" 1 (lib_expr {|isspace('	')|})

let test_lib_mem_ops () =
  let r = lib_prog {|int a[5]; int b[5]; int i; int s = 0;
    memset(a, 3, 5); memcpy(b, a, 5);
    for (i = 0; i < 5; i = i + 1) { s = s + b[i]; }
    return s;|} in
  match r.outcome with
  | Interp.Crash.Exit n -> check_int "memcpy of memset" 15 n
  | _ -> Alcotest.fail "crashed"

let test_lib_minmax_abs () =
  check_int "min" 2 (lib_expr {|min_int(7, 2)|});
  check_int "max" 7 (lib_expr {|max_int(7, 2)|});
  check_int "abs" 9 (lib_expr {|abs_int(0 - 9)|})

let test_lib_starts_with () =
  check_int "prefix yes" 1 (lib_expr {|starts_with("/static/x", "/static/")|});
  check_int "prefix no" 0 (lib_expr {|starts_with("/sta", "/static/")|})

let () =
  Alcotest.run "workloads"
    [
      ( "coreutils",
        [
          Alcotest.test_case "benign runs clean" `Quick test_coreutils_benign_clean;
          Alcotest.test_case "crash inputs crash" `Quick
            test_coreutils_crash_inputs_crash;
          Alcotest.test_case "distinct crash sites" `Quick
            test_coreutils_distinct_crash_sites;
          Alcotest.test_case "paste output" `Quick test_paste_output;
        ] );
      ( "userver",
        [
          Alcotest.test_case "serves requests" `Quick test_userver_serves_requests;
          Alcotest.test_case "responses wellformed" `Quick
            test_userver_responses_wellformed;
          Alcotest.test_case "experiments crash distinctly" `Quick
            test_userver_experiments_crash_distinctly;
          Alcotest.test_case "benign workload clean" `Slow
            test_userver_benign_workload_never_crashes;
          Alcotest.test_case "deterministic given seed" `Quick
            test_userver_deterministic_given_seed;
        ] );
      ( "http_gen",
        [
          Alcotest.test_case "sizes in range" `Quick test_http_gen_sizes_in_range;
          Alcotest.test_case "benign invariants" `Quick
            test_http_gen_benign_invariants;
        ] );
      ( "diff",
        [
          Alcotest.test_case "identical files" `Quick test_diff_identical_files;
          Alcotest.test_case "reports changes" `Quick test_diff_reports_changes;
          Alcotest.test_case "snapshot site fixed" `Quick
            test_diff_snapshot_crashes_at_fixed_site;
          Alcotest.test_case "file pair generator" `Quick test_file_pair_generator;
        ] );
      ( "microbench",
        [
          Alcotest.test_case "counter loop" `Quick test_counter_loop_counts;
          Alcotest.test_case "fibonacci options" `Quick test_fibonacci_options;
          Alcotest.test_case "two symbolic branches" `Quick
            test_fibonacci_two_symbolic_branches;
        ] );
      ( "runtime_lib",
        [
          Alcotest.test_case "strlen" `Quick test_lib_strlen;
          Alcotest.test_case "strcmp" `Quick test_lib_strcmp;
          Alcotest.test_case "strncmp" `Quick test_lib_strncmp;
          Alcotest.test_case "strcpy/strcat" `Quick test_lib_strcpy_strcat;
          Alcotest.test_case "strlcpy truncates" `Quick test_lib_strlcpy_truncates;
          Alcotest.test_case "atoi" `Quick test_lib_atoi;
          Alcotest.test_case "parse_octal" `Quick test_lib_parse_octal;
          Alcotest.test_case "itoa" `Quick test_lib_itoa;
          Alcotest.test_case "str_index" `Quick test_lib_str_index;
          Alcotest.test_case "classifiers" `Quick test_lib_classifiers;
          Alcotest.test_case "memset/memcpy" `Quick test_lib_mem_ops;
          Alcotest.test_case "min/max/abs" `Quick test_lib_minmax_abs;
          Alcotest.test_case "starts_with" `Quick test_lib_starts_with;
        ] );
    ]
