(* Tests for the simulated OS: filesystem, connections, select/accept
   semantics, seeded determinism and partial reads. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

open Osmodel

let world ?(conns = []) ?(files = []) ?(seed = 42) ?(max_chunk = 64) () =
  World.create { World.default_config with conns; files; seed; max_chunk }

let res_int = Sysreq.res_int

(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 5 and b = Rng.create 5 in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same stream" xs ys

let test_rng_range_bounds () =
  let r = Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Rng.range r 3 9 in
    check_bool "in range" true (v >= 3 && v <= 9)
  done

let test_open_read_file () =
  let w = world ~files:[ ("f.txt", "hello world") ] () in
  let fd = res_int (World.handle w (Sysreq.Open { path = "f.txt"; flags = 0 })) in
  check_bool "fd valid" true (fd >= 4);
  match World.handle w (Sysreq.Read { fd; count = 5 }) with
  | Sysreq.R_read { count; data } ->
      check_int "count" 5 count;
      Alcotest.(check string) "data" "hello" (World.string_of_bytes data)
  | Sysreq.R_int _ -> Alcotest.fail "expected R_read"

let test_file_read_to_eof () =
  let w = world ~files:[ ("f", "abc") ] () in
  let fd = res_int (World.handle w (Sysreq.Open { path = "f"; flags = 0 })) in
  let r1 = World.handle w (Sysreq.Read { fd; count = 10 }) in
  let r2 = World.handle w (Sysreq.Read { fd; count = 10 }) in
  check_int "first read gets all" 3 (res_int r1);
  check_int "eof" 0 (res_int r2)

let test_open_missing () =
  let w = world () in
  check_int "missing file" (-1)
    (res_int (World.handle w (Sysreq.Open { path = "no"; flags = 0 })))

let test_accept_lifecycle () =
  let w = world ~conns:[ "data" ] () in
  ignore (World.handle w (Sysreq.Listen { port = 80 }));
  (* before select, nothing has arrived *)
  check_int "no backlog yet" (-1) (res_int (World.handle w Sysreq.Accept));
  (* selects eventually deliver the connection *)
  let rec wait n =
    if n = 0 then Alcotest.fail "connection never arrived"
    else begin
      ignore (World.handle w Sysreq.Select);
      let fd = res_int (World.handle w Sysreq.Accept) in
      if fd >= 0 then fd else wait (n - 1)
    end
  in
  let fd = wait 50 in
  match World.handle w (Sysreq.Read { fd; count = 64 }) with
  | Sysreq.R_read { count; _ } -> check_bool "got bytes" true (count > 0)
  | Sysreq.R_int _ -> Alcotest.fail "expected data"

let test_partial_reads_bounded_by_chunk () =
  let w = world ~conns:[ String.make 100 'x' ] ~max_chunk:7 () in
  ignore (World.handle w (Sysreq.Listen { port = 80 }));
  let rec get_fd n =
    ignore (World.handle w Sysreq.Select);
    let fd = res_int (World.handle w Sysreq.Accept) in
    if fd >= 0 then fd else if n = 0 then Alcotest.fail "no conn" else get_fd (n - 1)
  in
  let fd = get_fd 50 in
  let total = ref 0 in
  let reads = ref 0 in
  while !total < 100 && !reads < 1000 do
    match World.handle w (Sysreq.Read { fd; count = 64 }) with
    | Sysreq.R_read { count; _ } ->
        check_bool "chunk bound" true (count <= 7);
        if count > 0 then total := !total + count;
        incr reads
    | Sysreq.R_int _ -> Alcotest.fail "read failed"
  done;
  check_int "all delivered" 100 !total

let test_select_reports_listener () =
  let w = world ~conns:[ "a" ] () in
  ignore (World.handle w (Sysreq.Listen { port = 80 }));
  let rec find_listener tries =
    if tries = 0 then Alcotest.fail "listener never ready"
    else
      let n = res_int (World.handle w Sysreq.Select) in
      let rec scan i =
        if i >= n then false
        else if res_int (World.handle w (Sysreq.Ready_fd { index = i })) = 3 then true
        else scan (i + 1)
      in
      if n > 0 && scan 0 then () else find_listener (tries - 1)
  in
  find_listener 50

let test_write_stdout_captured () =
  let w = world () in
  ignore (World.handle w (Sysreq.Write { fd = 1; data = [| 104; 105 |] }));
  Alcotest.(check string) "stdout" "hi" (World.stdout_string w)

let test_conn_outbox () =
  let w = world ~conns:[ "q" ] () in
  ignore (World.handle w (Sysreq.Listen { port = 80 }));
  let rec get_fd n =
    ignore (World.handle w Sysreq.Select);
    let fd = res_int (World.handle w Sysreq.Accept) in
    if fd >= 0 then fd else if n = 0 then Alcotest.fail "no conn" else get_fd (n - 1)
  in
  let fd = get_fd 50 in
  ignore (World.handle w (Sysreq.Write { fd; data = [| 111; 107 |] }));
  match World.connections w with
  | [ c ] -> Alcotest.(check string) "outbox" "ok" (World.conn_outbox_string c)
  | _ -> Alcotest.fail "expected one connection"

let test_read_provenance () =
  let w = world ~files:[ ("f", "abcdef") ] () in
  let fd = res_int (World.handle w (Sysreq.Open { path = "f"; flags = 0 })) in
  ignore (World.handle w (Sysreq.Read { fd; count = 2 }));
  check_bool "provenance" true (w.last_read = Some ("file:f", 0));
  ignore (World.handle w (Sysreq.Read { fd; count = 2 }));
  check_bool "offset advances" true (w.last_read = Some ("file:f", 2))

let test_close_invalidates () =
  let w = world ~files:[ ("f", "x") ] () in
  let fd = res_int (World.handle w (Sysreq.Open { path = "f"; flags = 0 })) in
  ignore (World.handle w (Sysreq.Close { fd }));
  check_int "read after close" (-1)
    (res_int (World.handle w (Sysreq.Read { fd; count = 1 })))

let test_determinism_across_worlds () =
  let script w =
    ignore (World.handle w (Sysreq.Listen { port = 80 }));
    List.init 30 (fun _ ->
        let n = res_int (World.handle w Sysreq.Select) in
        let a = res_int (World.handle w Sysreq.Accept) in
        (n, a))
  in
  let w1 = world ~conns:[ "aa"; "bb"; "cc" ] ~seed:7 () in
  let w2 = world ~conns:[ "aa"; "bb"; "cc" ] ~seed:7 () in
  check_bool "same trace" true (script w1 = script w2)

let () =
  Alcotest.run "osmodel"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "range bounds" `Quick test_rng_range_bounds;
        ] );
      ( "files",
        [
          Alcotest.test_case "open/read" `Quick test_open_read_file;
          Alcotest.test_case "read to eof" `Quick test_file_read_to_eof;
          Alcotest.test_case "open missing" `Quick test_open_missing;
          Alcotest.test_case "read provenance" `Quick test_read_provenance;
          Alcotest.test_case "close invalidates" `Quick test_close_invalidates;
        ] );
      ( "net",
        [
          Alcotest.test_case "accept lifecycle" `Quick test_accept_lifecycle;
          Alcotest.test_case "partial reads" `Quick test_partial_reads_bounded_by_chunk;
          Alcotest.test_case "select reports listener" `Quick
            test_select_reports_listener;
          Alcotest.test_case "stdout capture" `Quick test_write_stdout_captured;
          Alcotest.test_case "conn outbox" `Quick test_conn_outbox;
          Alcotest.test_case "determinism" `Quick test_determinism_across_worlds;
        ] );
    ]
