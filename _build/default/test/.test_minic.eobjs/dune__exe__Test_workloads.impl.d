test/test_workloads.ml: Alcotest Array Bugrepro Char Concolic Interp List Osmodel Printf String Workloads
