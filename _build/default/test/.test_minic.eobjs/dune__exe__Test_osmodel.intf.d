test/test_osmodel.mli:
