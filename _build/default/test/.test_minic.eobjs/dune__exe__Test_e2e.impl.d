test/test_e2e.ml: Alcotest Bugrepro Concolic Hashtbl Instrument Interp Lazy List Printf Replay Workloads
