test/test_osmodel.ml: Alcotest List Osmodel Rng String Sysreq World
