test/test_extensions.ml: Alcotest Bugrepro Checkpoint Concolic Instrument Interp Lazy List Minic Option Osmodel QCheck QCheck_alcotest Replay String Workloads
