test/test_replay.ml: Alcotest Bugrepro Concolic Fun Gen Instrument List Minic Option Osmodel Printf QCheck QCheck_alcotest Replay Solver String Workloads
