test/test_concolic.ml: Alcotest Array Concolic Fun Interp List Minic Option Osmodel Printf Solver Workloads
