test/test_static.ml: Alcotest Array Concolic Lazy List Minic Printf Staticanalysis Workloads
