test/test_minic.ml: Alcotest Array Interp List Minic Option Printf QCheck QCheck_alcotest String
