test/test_interp.ml: Alcotest Interp Minic Osmodel
