test/test_solver.ml: Alcotest Array Expr Gen Interval List Model Option Printf QCheck QCheck_alcotest Simplify Solve Solver Symvars
