test/test_instrument.ml: Alcotest Array Bugrepro Concolic Instrument Interp List Minic Option QCheck QCheck_alcotest Replay Str Workloads
