(** Replay from a checkpoint (§6).

    The shipped report covers only the final epoch (everything after the
    last [checkpoint()]).  Replay therefore runs the program from the start
    with the branch/syscall logs *gated off*; at the program's first
    [checkpoint()] call the snapshot is "restored": every non-pointer global
    cell is overwritten with a fresh symbolic variable, and the guided
    replay of the final epoch's log begins.  The engine then searches for
    both the post-checkpoint inputs *and* a consistent pre-checkpoint global
    state, exactly as the paper sketches ("a symbolic execution engine can
    treat their content as symbolic, and replay the branch log starting from
    there"). *)

let restore_of (snapshot : Snapshot.t) : Replay.Guided.restore_fn =
 fun ~vars ~model ~observe access ->
  let concrete_of gname off =
    let (_ : string) = Snapshot.var_name gname off in
    let name = Snapshot.var_name gname off in
    let id = Solver.Symvars.lookup vars ~name ~dom:Snapshot.restored_domain in
    match Solver.Model.find_opt id model with
    | Some v -> v
    | None ->
        (* default to zero (fresh-state-like): restored cells are indexed
           into buffers and tables, and the concretisations they pin must
           stay consistent with the log-forced constraints as often as
           possible *)
        0
  in
  Snapshot.restore snapshot ~vars ~concrete_of ~observe access

(** Reproduce a bug from a final-epoch report plus its snapshot. *)
let reproduce ?budget ?(seed = 1) ?max_steps ~(prog : Minic.Program.t)
    ~(plan : Instrument.Plan.t) ~(snapshot : Snapshot.t)
    (report : Instrument.Report.t) : Replay.Guided.result * Replay.Guided.stats =
  Replay.Guided.reproduce ?budget ~seed ?max_steps
    ~restore:(restore_of snapshot) ~prog ~plan report
