(** Checkpointed field runs (§6).

    Like {!Instrument.Field_run}, but every [checkpoint()] executed by the
    program discards the logs accumulated so far and snapshots the structure
    of global state.  A crash ships only the final epoch's logs plus the
    last snapshot, bounding both user-site storage and the replay horizon. *)

type result = {
  outcome : Interp.Crash.outcome;
  cost : Interp.Cost.t;
  output : string;
  branch_log : Instrument.Branch_log.log;  (** final epoch only *)
  syscall_log : Instrument.Syscall_log.log option;  (** final epoch only *)
  snapshot : Snapshot.t option;  (** at the last checkpoint, if any *)
  epochs : int;  (** checkpoints taken *)
  discarded_bits : int;  (** bits dropped at checkpoints *)
  total_bits : int;  (** bits a checkpoint-less run would have shipped *)
}

val run :
  ?log_syscalls:bool -> plan:Instrument.Plan.t -> Concolic.Scenario.t -> result

(** The bug report (final-epoch logs) plus the snapshot needed by
    {!Creplay.reproduce}; [None] if the run did not crash. *)
val report_of :
  sc:Concolic.Scenario.t ->
  plan:Instrument.Plan.t ->
  result ->
  (Instrument.Report.t * Snapshot.t option) option
