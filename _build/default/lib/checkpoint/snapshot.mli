(** Checkpoint snapshots (§6, "Long-running applications").

    A snapshot records the *structure* of the program's global state (names,
    sizes, pointer positions) "but not its content": at replay time every
    data cell is treated as symbolic, so no user data is shipped. *)

type global = {
  gname : string;
  size : int;
  ptr_mask : bool array;  (** true where the cell held a pointer *)
}

type t = {
  globals : global list;
  epoch : int;  (** how many checkpoints preceded this one *)
}

(** Capture a snapshot through the evaluator's global-access interface. *)
val capture : epoch:int -> Interp.Eval.global_access -> t

(** Shipped size of the snapshot in bytes (structure only). *)
val size_bytes : t -> int

(** Variable name for the symbolic content of a restored global cell. *)
val var_name : string -> int -> string

(** Domain of restored cells (counters, fds, buffer bytes). *)
val restored_domain : Solver.Symvars.domain

(** Overwrite every non-pointer global cell with a fresh symbolic value;
    concrete seeds come from [concrete_of]. *)
val restore :
  t ->
  vars:Solver.Symvars.t ->
  concrete_of:(string -> int -> int) ->
  observe:(int -> int -> unit) ->
  Interp.Eval.global_access ->
  unit
