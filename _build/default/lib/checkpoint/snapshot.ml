(** Checkpoint snapshots (§6, "Long-running applications").

    A snapshot records the *structure* of the program's global state — which
    globals exist, their sizes, and which cells hold pointers — "but not its
    content": at replay time every data cell is treated as symbolic, so no
    user data is shipped.  Pointer cells are structural and are left to the
    replay run's own initialisation (a pointer cannot be a symbolic byte). *)

type global = {
  gname : string;
  size : int;
  ptr_mask : bool array;  (** true where the cell held a pointer *)
}

type t = {
  globals : global list;
  epoch : int;  (** how many checkpoints preceded this one *)
}

(** Capture a snapshot through the evaluator's global-access interface. *)
let capture ~epoch (access : Interp.Eval.global_access) : t =
  let globals =
    List.map
      (fun (gname, size) ->
        let ptr_mask =
          Array.init size (fun off ->
              match access.Interp.Eval.read_global gname off with
              | Some { Interp.Value.conc = Interp.Value.Ptr _; _ } -> true
              | Some _ | None -> false)
        in
        { gname; size; ptr_mask })
      (access.Interp.Eval.list_globals ())
  in
  { globals; epoch }

(** Shipped size of the snapshot in bytes: per global, a name, a 16-bit
    size, and one bit per cell for the pointer mask. *)
let size_bytes (t : t) =
  List.fold_left
    (fun acc g -> acc + String.length g.gname + 2 + ((g.size + 7) / 8))
    0 t.globals

(** Variable name for the symbolic content of a restored global cell. *)
let var_name g off = Printf.sprintf "ckpt:%s[%d]" g off

(* Restored cells cover counters, fds and buffer bytes; a moderate domain
   keeps the solver's enumeration complete. *)
let restored_domain = { Solver.Symvars.lo = -1; hi = 1024 }

(** Overwrite every non-pointer global cell with a fresh symbolic value.
    Concrete seeds come from [concrete_of] (the current solver model or a
    seeded default). *)
let restore (t : t) ~(vars : Solver.Symvars.t)
    ~(concrete_of : string -> int -> int)
    ~(observe : int -> int -> unit)
    (access : Interp.Eval.global_access) : unit =
  List.iter
    (fun g ->
      for off = 0 to g.size - 1 do
        if not g.ptr_mask.(off) then begin
          let name = var_name g.gname off in
          let id = Solver.Symvars.lookup vars ~name ~dom:restored_domain in
          let conc = concrete_of g.gname off in
          observe id conc;
          let v =
            { Interp.Value.conc = Interp.Value.Int conc;
              sym = Some (Solver.Expr.Var id) }
          in
          ignore (access.Interp.Eval.write_global g.gname off v)
        end
      done)
    t.globals
