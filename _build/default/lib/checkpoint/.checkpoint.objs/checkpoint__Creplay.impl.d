lib/checkpoint/creplay.ml: Instrument Minic Replay Snapshot Solver
