lib/checkpoint/cfield.ml: Concolic Instrument Interp Option Osmodel Snapshot
