lib/checkpoint/creplay.mli: Concolic Instrument Minic Replay Snapshot
