lib/checkpoint/snapshot.ml: Array Interp List Printf Solver String
