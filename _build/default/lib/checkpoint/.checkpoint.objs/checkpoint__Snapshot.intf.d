lib/checkpoint/snapshot.mli: Interp Solver
