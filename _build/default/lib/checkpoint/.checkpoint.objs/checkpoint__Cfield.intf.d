lib/checkpoint/cfield.mli: Concolic Instrument Interp Snapshot
