(** Replay from a checkpoint (§6).

    Runs the program from the start with the shipped logs gated off; at the
    program's first [checkpoint()] the snapshot is restored — every
    non-pointer global cell becomes a fresh symbolic variable — and guided
    replay of the final epoch's log begins.  The engine then searches for
    both the post-checkpoint inputs and a consistent pre-checkpoint global
    state. *)

(** The restore function for {!Replay.Guided.reproduce}'s [?restore]. *)
val restore_of : Snapshot.t -> Replay.Guided.restore_fn

(** Reproduce a bug from a final-epoch report plus its snapshot. *)
val reproduce :
  ?budget:Concolic.Engine.budget ->
  ?seed:int ->
  ?max_steps:int ->
  prog:Minic.Program.t ->
  plan:Instrument.Plan.t ->
  snapshot:Snapshot.t ->
  Instrument.Report.t ->
  Replay.Guided.result * Replay.Guided.stats
