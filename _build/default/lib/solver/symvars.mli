(** Registry of symbolic input variables.

    Variables are identified by a stable string name derived from the input
    source — e.g. ["arg1[3]"] for byte 3 of argument 1, ["net0[17]"] for
    byte 17 of connection 0 — so that solver models are transferable across
    concolic runs. *)

type domain = { lo : int; hi : int }

(** [0, 255]: the domain of input bytes. *)
val byte_domain : domain

(** A wider domain for counters and lengths. *)
val int_domain : domain

type info = { id : int; name : string; dom : domain }

type t

val create : unit -> t

(** Number of registered variables. *)
val count : t -> int

(** [lookup t ~name ~dom] returns the id registered for [name], creating it
    with domain [dom] if new.  The domain of an existing variable is kept. *)
val lookup : t -> name:string -> dom:domain -> int

(** Metadata of a variable; raises [Invalid_argument] on an unknown id. *)
val info : t -> int -> info

val name : t -> int -> string
val domain : t -> int -> domain
val find_by_name : t -> string -> int option
val iter : t -> (info -> unit) -> unit
