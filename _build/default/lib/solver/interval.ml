(** Integer interval domain used for constraint propagation.

    Bounds are clamped to +-2^40 so interval arithmetic cannot overflow
    native integers; the clamp only ever widens intervals, preserving
    soundness (every concrete value remains inside its interval). *)

let clamp_lo = -(1 lsl 40)
let clamp_hi = 1 lsl 40

type t = { lo : int; hi : int }
(** inclusive; empty iff [lo > hi].  A bound equal to the clamp is a
    sentinel meaning "unbounded on that side": clamped arithmetic results
    may correspond to true values beyond the clamp. *)


let top = { lo = clamp_lo; hi = clamp_hi }
let empty = { lo = 1; hi = 0 }
let is_empty i = i.lo > i.hi
let of_const n = { lo = n; hi = n }
let of_bounds lo hi = { lo = max lo clamp_lo; hi = min hi clamp_hi }

let unbounded_lo i = i.lo <= clamp_lo
let unbounded_hi i = i.hi >= clamp_hi

(** Is the interval's lower/upper bound exact (not a clamp sentinel)? *)
let exact i = (not (unbounded_lo i)) && not (unbounded_hi i)

let mem n i =
  (n >= i.lo || unbounded_lo i) && (n <= i.hi || unbounded_hi i)
let size i = if is_empty i then 0 else i.hi - i.lo + 1

let meet a b =
  let r = { lo = max a.lo b.lo; hi = min a.hi b.hi } in
  if is_empty r then empty else r

let join a b =
  if is_empty a then b
  else if is_empty b then a
  else { lo = min a.lo b.lo; hi = max a.hi b.hi }

let equal a b = (is_empty a && is_empty b) || (a.lo = b.lo && a.hi = b.hi)

let clamp i = { lo = max i.lo clamp_lo; hi = min i.hi clamp_hi }

let add a b =
  if is_empty a || is_empty b then empty else clamp { lo = a.lo + b.lo; hi = a.hi + b.hi }

let neg a = if is_empty a then empty else clamp { lo = -a.hi; hi = -a.lo }

let sub a b = add a (neg b)

(* Saturating product: bounds are within +-2^40, whose squares overflow
   native ints, so saturate at the clamps instead of multiplying blindly. *)
let sat_mul x y =
  if x = 0 || y = 0 then 0
  else if abs x > clamp_hi / abs y then if (x > 0) = (y > 0) then clamp_hi else clamp_lo
  else x * y

let mul a b =
  if is_empty a || is_empty b then empty
  else
    let products =
      [ sat_mul a.lo b.lo; sat_mul a.lo b.hi; sat_mul a.hi b.lo; sat_mul a.hi b.hi ]
    in
    clamp
      {
        lo = List.fold_left min max_int products;
        hi = List.fold_left max min_int products;
      }

(* Sound but coarse division/modulo. *)
let div a b =
  if is_empty a || is_empty b then empty
  else if b.lo = 0 && b.hi = 0 then empty
  else
    let mags = [ abs a.lo; abs a.hi ] in
    let m = List.fold_left max 0 mags in
    clamp { lo = -m; hi = m }

let rem a b =
  if is_empty a || is_empty b then empty
  else
    let m = max (abs b.lo) (abs b.hi) in
    if m = 0 then empty
    else if a.lo >= 0 then { lo = 0; hi = min a.hi (m - 1) }
    else clamp { lo = -(m - 1); hi = m - 1 }

let pp fmt i =
  if is_empty i then Format.pp_print_string fmt "[]"
  else Format.fprintf fmt "[%d,%d]" i.lo i.hi

(** Abstract forward evaluation of an expression. *)
let rec eval (env : int -> t) (e : Expr.t) : t =
  match e with
  | Expr.Var v -> env v
  | Expr.Const n -> of_const n
  | Expr.Unop (op, a) -> (
      let ia = eval env a in
      match op with
      | Expr.Neg -> neg ia
      | Expr.Lognot | Expr.Bitnot ->
          if is_empty ia then empty
          else if op = Expr.Lognot then of_bounds 0 1
          else top)
  | Expr.Binop (op, a, b) -> (
      let ia = eval env a and ib = eval env b in
      if is_empty ia || is_empty ib then empty
      else
        match op with
        | Expr.Add -> add ia ib
        | Expr.Sub -> sub ia ib
        | Expr.Mul -> mul ia ib
        | Expr.Div -> div ia ib
        | Expr.Mod -> rem ia ib
        | Expr.Eq ->
            if ia.lo = ia.hi && equal ia ib && exact ia then of_const 1
            else if is_empty (meet ia ib) && exact ia && exact ib then of_const 0
            else of_bounds 0 1
        | Expr.Ne ->
            if is_empty (meet ia ib) && exact ia && exact ib then of_const 1
            else if ia.lo = ia.hi && equal ia ib && exact ia then of_const 0
            else of_bounds 0 1
        | Expr.Lt ->
            if ia.hi < ib.lo && (not (unbounded_hi ia)) && not (unbounded_lo ib)
            then of_const 1
            else if
              ia.lo >= ib.hi && (not (unbounded_lo ia)) && not (unbounded_hi ib)
            then of_const 0
            else of_bounds 0 1
        | Expr.Le ->
            if ia.hi <= ib.lo && (not (unbounded_hi ia)) && not (unbounded_lo ib)
            then of_const 1
            else if
              ia.lo > ib.hi && (not (unbounded_lo ia)) && not (unbounded_hi ib)
            then of_const 0
            else of_bounds 0 1
        | Expr.Gt ->
            if ia.lo > ib.hi && (not (unbounded_lo ia)) && not (unbounded_hi ib)
            then of_const 1
            else if
              ia.hi <= ib.lo && (not (unbounded_hi ia)) && not (unbounded_lo ib)
            then of_const 0
            else of_bounds 0 1
        | Expr.Ge ->
            if ia.lo >= ib.hi && (not (unbounded_lo ia)) && not (unbounded_hi ib)
            then of_const 1
            else if
              ia.hi < ib.lo && (not (unbounded_hi ia)) && not (unbounded_lo ib)
            then of_const 0
            else of_bounds 0 1
        | Expr.Land ->
            if (not (mem 0 ia)) && not (mem 0 ib) then of_const 1
            else if (ia.lo = 0 && ia.hi = 0) || (ib.lo = 0 && ib.hi = 0) then
              of_const 0
            else of_bounds 0 1
        | Expr.Lor ->
            if (not (mem 0 ia)) || not (mem 0 ib) then of_const 1
            else if ia.lo = 0 && ia.hi = 0 && ib.lo = 0 && ib.hi = 0 then
              of_const 0
            else of_bounds 0 1
        | Expr.Band | Expr.Bor | Expr.Bxor ->
            if ia.lo >= 0 && ib.lo >= 0 then
              (* nonneg bitops stay below the next power of two *)
              let m = max ia.hi ib.hi in
              let rec pow2 p = if p > m then p else pow2 (2 * p) in
              of_bounds 0 (pow2 1 - 1)
            else top
        | Expr.Shl | Expr.Shr -> top)
