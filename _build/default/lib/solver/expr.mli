(** Symbolic expressions over program-input variables.

    The concolic engine attaches one of these to every value that depends on
    program input; branch conditions over such values become path
    constraints.  Semantics are C-like machine integers (division truncates
    toward zero). *)

type unop = Neg | Lognot | Bitnot

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Land  (** strict logical and: both sides evaluated; nonzero = true *)
  | Lor  (** strict logical or *)
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr

type t =
  | Var of int  (** symbolic input variable, see {!Symvars} *)
  | Const of int
  | Unop of unop * t
  | Binop of binop * t * t

val var : int -> t
val const : int -> t

val equal : t -> t -> bool

(** Free variables of an expression (sorted, deduplicated). *)
val vars : t -> int list

(** Node count. *)
val size : t -> int

exception Undefined
(** Raised by {!eval} on division/modulo by zero or a shift out of range: an
    assignment making a constraint undefined cannot satisfy it. *)

val eval_unop : unop -> int -> int

(** May raise {!Undefined}. *)
val eval_binop : binop -> int -> int -> int

(** Evaluate under an environment.  Propagates the environment's exception
    for unbound variables and raises {!Undefined} for undefined
    arithmetic. *)
val eval : (int -> int) -> t -> int

val unop_to_string : unop -> string
val binop_to_string : binop -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Logical negation of a boolean expression, pushing through comparisons
    where possible so that interval propagation sees canonical shapes. *)
val negate : t -> t
