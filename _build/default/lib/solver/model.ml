(** Assignments of concrete values to symbolic variables.

    A model is both the solver's output and the concolic engine's input: the
    next run executes with the model's values substituted at each input
    byte. *)

module Imap = Map.Make (Int)

type t = int Imap.t

let empty : t = Imap.empty
let add id v (m : t) : t = Imap.add id v m
let find_opt id (m : t) = Imap.find_opt id m
let mem id (m : t) = Imap.mem id m
let bindings (m : t) = Imap.bindings m
let cardinal (m : t) = Imap.cardinal m
let of_list l : t = List.fold_left (fun m (id, v) -> Imap.add id v m) Imap.empty l

let union_prefer_left (a : t) (b : t) : t =
  Imap.union (fun _ va _ -> Some va) a b

(** Evaluate [e] under the model; unbound variables default to [default]. *)
let eval ?(default = 0) (m : t) (e : Expr.t) =
  Expr.eval (fun id -> match Imap.find_opt id m with Some v -> v | None -> default) e

(** True if [e] evaluates to nonzero under the model ([default] for unbound
    variables); undefined arithmetic counts as false. *)
let satisfies ?(default = 0) (m : t) (e : Expr.t) =
  match eval ~default m e with
  | n -> n <> 0
  | exception Expr.Undefined -> false

let satisfies_all ?(default = 0) (m : t) (cs : Expr.t list) =
  List.for_all (satisfies ~default m) cs

let pp vars fmt (m : t) =
  Format.fprintf fmt "@[<v>";
  Imap.iter
    (fun id v -> Format.fprintf fmt "%s = %d@," (Symvars.name vars id) v)
    m;
  Format.fprintf fmt "@]"
