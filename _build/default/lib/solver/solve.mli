(** Constraint solving: satisfiability and model construction.

    Pipeline: structural simplification and deduplication, interval
    propagation to a fixpoint, then backtracking search with forward
    checking.  The search tries the caller-supplied hint first — the
    concolic trick that makes most queries trivial, because the previous
    run's input already satisfies all but the negated constraint. *)

type outcome = Sat of Model.t | Unsat | Unknown

type budget = {
  max_nodes : int;  (** backtracking nodes before giving up *)
  max_enum : int;  (** largest domain enumerated exhaustively *)
}

val default_budget : budget

type stats = {
  mutable calls : int;
  mutable sat : int;
  mutable unsat : int;
  mutable unknown : int;
  mutable nodes : int;
}

(** Global counters, for benchmark reporting. *)
val stats : stats

val reset_stats : unit -> unit

(** Print a diagnostic to stderr whenever a solve returns [Unknown]. *)
val debug_unknown : bool ref

(** Find a model of the conjunction, [Unsat] if provably none exists, or
    [Unknown] when the budget ran out or a domain was too large to
    enumerate.  [hint] supplies preferred values per variable. *)
val solve :
  ?budget:budget ->
  vars:Symvars.t ->
  ?hint:(int -> int option) ->
  Expr.t list ->
  outcome
