(** Structural simplification of symbolic expressions.

    Constant folding plus the algebraic identities concolic traces produce
    constantly (additions of zero, double negations, comparison
    canonicalisation).  Semantics-preserving under every environment
    (checked by property tests). *)

(** Simplify one expression. *)
val simplify : Expr.t -> Expr.t

(** Coerce an arbitrary integer expression to the 0/1 shape of a C boolean
    (identity on expressions that are already boolean-shaped). *)
val bool_coerce : Expr.t -> Expr.t

(** Simplify a conjunction: split top-level [&&], drop trivially-true
    members, return [None] if any member is trivially false. *)
val conjuncts : Expr.t list -> Expr.t list option
