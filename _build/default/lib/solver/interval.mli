(** Integer interval domain used for constraint propagation.

    Bounds are clamped to +-2^40; a bound equal to the clamp is a sentinel
    meaning "unbounded on that side", which keeps every operation sound for
    values beyond the clamp (checked by property tests). *)

val clamp_lo : int
val clamp_hi : int

type t = { lo : int; hi : int }  (** inclusive; empty iff [lo > hi] *)

val top : t
val empty : t
val is_empty : t -> bool
val of_const : int -> t
val of_bounds : int -> int -> t

(** Is the bound a clamp sentinel (the true bound may lie beyond)? *)
val unbounded_lo : t -> bool

val unbounded_hi : t -> bool

(** Membership honouring clamp sentinels. *)
val mem : int -> t -> bool

val size : t -> int
val meet : t -> t -> t
val join : t -> t -> t
val equal : t -> t -> bool
val add : t -> t -> t
val neg : t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val rem : t -> t -> t
val pp : Format.formatter -> t -> unit

(** Abstract forward evaluation of an expression: the result interval
    contains every value the expression can take when each variable ranges
    over its environment interval. *)
val eval : (int -> t) -> Expr.t -> t
