lib/solver/expr.ml: Format Int List Stdlib
