lib/solver/simplify.ml: Expr List Option
