lib/solver/solve.ml: Array Expr Format Hashtbl Int Interval List Model Option Printf Simplify Symvars
