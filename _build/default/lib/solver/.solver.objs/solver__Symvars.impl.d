lib/solver/symvars.ml: Array Hashtbl
