lib/solver/interval.ml: Expr Format List
