lib/solver/interval.mli: Expr Format
