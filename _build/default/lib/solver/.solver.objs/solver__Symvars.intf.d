lib/solver/symvars.mli:
