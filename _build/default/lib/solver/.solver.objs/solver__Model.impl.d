lib/solver/model.ml: Expr Format Int List Map Symvars
