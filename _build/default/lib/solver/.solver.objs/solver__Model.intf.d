lib/solver/model.mli: Expr Format Symvars
