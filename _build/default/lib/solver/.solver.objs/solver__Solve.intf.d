lib/solver/solve.mli: Expr Model Symvars
