(** Structural simplification of symbolic expressions.

    Constant folding plus the algebraic identities that show up constantly in
    concolic traces (additions of zero from pointer arithmetic, double
    negations from branch flips, comparison canonicalisation).  Soundness —
    the simplified expression evaluates identically under every environment —
    is checked by property tests. *)

open Expr

let is_bool_shaped = function
  | Binop ((Eq | Ne | Lt | Le | Gt | Ge | Land | Lor), _, _) -> true
  | Unop (Lognot, _) -> true
  | Const (0 | 1) -> true
  | _ -> false

let rec simplify (e : t) : t =
  match e with
  | Var _ | Const _ -> e
  | Unop (op, a) -> simp_unop op (simplify a)
  | Binop (op, a, b) -> simp_binop op (simplify a) (simplify b)

and simp_unop op a =
  match op, a with
  | _, Const n -> (
      match eval_unop op n with
      | v -> Const v
      | exception Undefined -> Unop (op, a))
  | Neg, Unop (Neg, x) -> x
  | Bitnot, Unop (Bitnot, x) -> x
  | Lognot, Unop (Lognot, x) when is_bool_shaped x -> x
  | Lognot, Binop (Eq, x, y) -> Binop (Ne, x, y)
  | Lognot, Binop (Ne, x, y) -> Binop (Eq, x, y)
  | Lognot, Binop (Lt, x, y) -> Binop (Ge, x, y)
  | Lognot, Binop (Le, x, y) -> Binop (Gt, x, y)
  | Lognot, Binop (Gt, x, y) -> Binop (Le, x, y)
  | Lognot, Binop (Ge, x, y) -> Binop (Lt, x, y)
  | _, _ -> Unop (op, a)

and simp_binop op a b =
  match op, a, b with
  | _, Const x, Const y -> (
      match eval_binop op x y with
      | v -> Const v
      | exception Undefined -> Binop (op, a, b))
  (* additive/multiplicative identities *)
  | Add, x, Const 0 | Add, Const 0, x -> x
  | Sub, x, Const 0 -> x
  | Mul, x, Const 1 | Mul, Const 1, x -> x
  | Mul, _, Const 0 | Mul, Const 0, _ -> Const 0
  | Div, x, Const 1 -> x
  | Shl, x, Const 0 | Shr, x, Const 0 -> x
  | Band, _, Const 0 | Band, Const 0, _ -> Const 0
  | Bor, x, Const 0 | Bor, Const 0, x -> x
  | Bxor, x, Const 0 | Bxor, Const 0, x -> x
  (* x - x, x ^ x *)
  | Sub, x, y when equal x y -> Const 0
  | Bxor, x, y when equal x y -> Const 0
  (* constant right-association: (x + c1) + c2 -> x + (c1+c2) *)
  | Add, Binop (Add, x, Const c1), Const c2 -> simp_binop Add x (Const (c1 + c2))
  | Sub, Binop (Add, x, Const c1), Const c2 -> simp_binop Add x (Const (c1 - c2))
  | Add, Binop (Sub, x, Const c1), Const c2 -> simp_binop Add x (Const (c2 - c1))
  (* comparisons: move constants right across +/- : (x + c1) == c2 -> x == c2-c1 *)
  | (Eq | Ne | Lt | Le | Gt | Ge), Binop (Add, x, Const c1), Const c2 ->
      simp_binop op x (Const (c2 - c1))
  | (Eq | Ne | Lt | Le | Gt | Ge), Binop (Sub, x, Const c1), Const c2 ->
      simp_binop op x (Const (c2 + c1))
  (* shared offsets cancel: (x + c1) == (y + c2) -> x == y + (c2 - c1),
     exposing var-var (in)equalities to the solver's union-find *)
  | (Eq | Ne | Lt | Le | Gt | Ge), Binop (Add, x, Const c1), Binop (Add, y, Const c2)
    ->
      simp_binop op x (simp_binop Add y (Const (c2 - c1)))
  | (Eq | Ne | Lt | Le | Gt | Ge), Binop (Sub, x, Const c1), Binop (Sub, y, Const c2)
    ->
      simp_binop op x (simp_binop Add y (Const (c1 - c2)))
  (* x == x and friends *)
  | (Eq | Le | Ge), x, y when equal x y -> Const 1
  | (Ne | Lt | Gt), x, y when equal x y -> Const 0
  (* logical operators *)
  | Land, Const c, x | Land, x, Const c ->
      if c = 0 then Const 0 else bool_coerce x
  | Lor, Const c, x | Lor, x, Const c ->
      if c <> 0 then Const 1 else bool_coerce x
  | _, _, _ -> Binop (op, a, b)

(* Coerce an arbitrary int expression to the 0/1 result C's && / || produce. *)
and bool_coerce x =
  if is_bool_shaped x then x else Binop (Ne, x, Const 0)

(** Simplify a conjunction, splitting top-level [&&] into separate
    constraints, dropping trivially-true members, and short-circuiting to
    [None] (unsatisfiable) if any member is trivially false. *)
let conjuncts (cs : t list) : t list option =
  let rec add acc c =
    match acc with
    | None -> None
    | Some acc -> (
        match simplify c with
        | Const 0 -> None
        | Const _ -> Some acc
        | Binop (Land, a, b) -> add (add (Some acc) a) b
        | c -> Some (c :: acc))
  in
  Option.map List.rev (List.fold_left add (Some []) cs)
