(** Symbolic expressions.

    The concolic engine attaches one of these to every value that depends on
    program input; branch conditions over such values become path
    constraints.  Semantics are C-like machine integers (OCaml native ints;
    division truncates toward zero, like C99). *)

type unop = Neg | Lognot | Bitnot

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Land  (** strict: both sides evaluated; nonzero = true *)
  | Lor
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr

type t =
  | Var of int  (** symbolic input variable, see {!Symvars} *)
  | Const of int
  | Unop of unop * t
  | Binop of binop * t * t

let var v = Var v
let const n = Const n

let rec compare_t (a : t) (b : t) = Stdlib.compare a b
and equal a b = compare_t a b = 0

(** Free variables of an expression (sorted, deduplicated). *)
let vars e =
  let rec go acc = function
    | Var v -> v :: acc
    | Const _ -> acc
    | Unop (_, a) -> go acc a
    | Binop (_, a, b) -> go (go acc a) b
  in
  List.sort_uniq Int.compare (go [] e)

let rec size = function
  | Var _ | Const _ -> 1
  | Unop (_, a) -> 1 + size a
  | Binop (_, a, b) -> 1 + size a + size b

exception Undefined
(** Raised by {!eval} on division/modulo by zero or shift out of range:
    an assignment making a constraint undefined cannot satisfy it. *)

let bool_of_int n = n <> 0
let int_of_bool b = if b then 1 else 0

let eval_unop op a =
  match op with
  | Neg -> -a
  | Lognot -> int_of_bool (a = 0)
  | Bitnot -> lnot a

let eval_binop op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then raise Undefined else a / b
  | Mod -> if b = 0 then raise Undefined else a mod b
  | Eq -> int_of_bool (a = b)
  | Ne -> int_of_bool (a <> b)
  | Lt -> int_of_bool (a < b)
  | Le -> int_of_bool (a <= b)
  | Gt -> int_of_bool (a > b)
  | Ge -> int_of_bool (a >= b)
  | Land -> int_of_bool (bool_of_int a && bool_of_int b)
  | Lor -> int_of_bool (bool_of_int a || bool_of_int b)
  | Band -> a land b
  | Bor -> a lor b
  | Bxor -> a lxor b
  | Shl -> if b < 0 || b > 62 then raise Undefined else a lsl b
  | Shr -> if b < 0 || b > 62 then raise Undefined else a asr b

(** Evaluate under an environment.  Raises [Not_found] (from [env]) for
    unbound variables and {!Undefined} for undefined arithmetic. *)
let rec eval (env : int -> int) = function
  | Var v -> env v
  | Const n -> n
  | Unop (op, a) -> eval_unop op (eval env a)
  | Binop (op, a, b) -> eval_binop op (eval env a) (eval env b)

let unop_to_string = function Neg -> "-" | Lognot -> "!" | Bitnot -> "~"

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Land -> "&&"
  | Lor -> "||"
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"

let rec pp fmt = function
  | Var v -> Format.fprintf fmt "v%d" v
  | Const n -> Format.pp_print_int fmt n
  | Unop (op, a) -> Format.fprintf fmt "%s%a" (unop_to_string op) pp a
  | Binop (op, a, b) ->
      Format.fprintf fmt "(%a %s %a)" pp a (binop_to_string op) pp b

let to_string e = Format.asprintf "%a" pp e

(** Logical negation of a boolean expression, pushing through comparisons
    where possible so that interval propagation sees canonical shapes. *)
let negate = function
  | Binop (Eq, a, b) -> Binop (Ne, a, b)
  | Binop (Ne, a, b) -> Binop (Eq, a, b)
  | Binop (Lt, a, b) -> Binop (Ge, a, b)
  | Binop (Le, a, b) -> Binop (Gt, a, b)
  | Binop (Gt, a, b) -> Binop (Le, a, b)
  | Binop (Ge, a, b) -> Binop (Lt, a, b)
  | Unop (Lognot, a) -> Binop (Ne, a, Const 0)
  | e -> Binop (Eq, e, Const 0)
