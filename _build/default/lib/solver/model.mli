(** Assignments of concrete values to symbolic variables.

    A model is both the solver's output and the concolic engine's input: the
    next run executes with the model's values substituted at each input
    byte. *)

type t

val empty : t
val add : int -> int -> t -> t
val find_opt : int -> t -> int option
val mem : int -> t -> bool
val bindings : t -> (int * int) list
val cardinal : t -> int
val of_list : (int * int) list -> t

(** Union preferring the left operand's bindings on conflicts. *)
val union_prefer_left : t -> t -> t

(** Evaluate [e] under the model; unbound variables default to [default].
    May raise {!Expr.Undefined}. *)
val eval : ?default:int -> t -> Expr.t -> int

(** True if [e] evaluates to nonzero under the model; undefined arithmetic
    counts as false. *)
val satisfies : ?default:int -> t -> Expr.t -> bool

val satisfies_all : ?default:int -> t -> Expr.t list -> bool
val pp : Symvars.t -> Format.formatter -> t -> unit
