(** Multithreaded workload with an interleaving-dependent crash (§6).

    Two worker threads scan alternating positions of the input; alert
    characters (['!']) are appended to a shared, fixed-size alert log with
    an unguarded check-then-append — the classic race.  A worker can pass
    the bound check, lose the processor in the window, and perform its
    append after the other worker has filled the log, writing one past the
    end.

    The crash therefore depends on *both* the input (enough alert
    characters) and the thread schedule — exactly the §6 scenario where the
    branch log alone cannot reproduce a bug and "the ordering of thread
    execution needs to be recorded as well". *)

let source =
  {|
int input[128];
int input_len = 0;
int alerts[16];
int alert_n = 0;
int counts[2];

int worker(int which) {
  int i = which;
  while (i < input_len) {
    int c = input[i];
    counts[which] = counts[which] + 1;
    if (c == '!') {
      if (alert_n < 16) {
        // BUG: check-then-act race; the other worker can run in this
        // window and fill the alert log before our append lands
        yield();
        alerts[alert_n] = i;
        alert_n = alert_n + 1;
      }
    }
    i = i + 2;
  }
  return counts[which];
}

int main() {
  int tmp[128];
  int n;
  int i;
  arg(0, tmp, 128);
  n = strlen(tmp);
  for (i = 0; i < n; i = i + 1) { input[i] = tmp[i]; }
  input_len = n;
  int t1 = spawn("worker", 0);
  int t2 = spawn("worker", 1);
  int a = join(t1);
  int b = join(t2);
  print_str("scanned ");
  print_int(a + b);
  print_str(" cells, ");
  print_int(alert_n);
  print_str(" alerts\n");
  return 0;
}
|}

let prog : Minic.Program.t Lazy.t = lazy (Runtime_lib.link ~name:"mtrace" source)

(** A scenario over an input with [alerts] alert characters mixed into
    filler ([seed] drives the simulated kernel, including the field
    scheduler). *)
let scenario ?(seed = 42) ?(alerts = 60) ?(len = 120) () : Concolic.Scenario.t =
  let rng = Osmodel.Rng.create (seed * 31 + 5) in
  let input =
    String.init len (fun _ -> if Osmodel.Rng.int rng 2 = 0 then '!' else '.')
  in
  let input =
    if alerts > len then input
    else
      (* guarantee at least [alerts] alert characters *)
      String.mapi (fun i c -> if i mod 2 = 0 && i / 2 < alerts then '!' else c) input
  in
  let world = { Osmodel.World.default_config with seed } in
  Concolic.Scenario.make ~name:"mtrace" ~args:[ input ] ~world (Lazy.force prog)

(** A benign scenario: too few alerts to fill the log. *)
let benign_scenario ?(seed = 1) () : Concolic.Scenario.t =
  let world = { Osmodel.World.default_config with seed } in
  Concolic.Scenario.make ~name:"mtrace-benign"
    ~args:[ "..!....!...!....!.." ]
    ~world (Lazy.force prog)
