(** The diff analogue (§5.4): an input-intensive line differ in MiniC.

    Reads two files, splits them into lines, and computes an LCS table over
    line equality (byte-by-byte comparison, like diff's hash-then-verify
    path), then prints removed/added lines.  Nearly every branch depends on
    file contents, which is what made diff the paper's hardest case for
    dynamic analysis (20% coverage after an hour) and the generator of
    "very long constraint sets".

    With [-i], line comparison folds case inline — branch locations that
    pre-deployment testing plausibly never exercises, which is what starves
    the dynamic method on diff (Table 6).  When invoked with [-s] the
    program calls [crash()] after printing the diff — the analogue of the
    paper's practice of stopping the process with a signal at a fixed
    location so that replay has a crash site to reproduce. *)

let source =
  {|
// up to 32 lines of up to 1024 bytes total per file
int buf_a[1024];
int buf_b[1024];
int len_a = 0;
int len_b = 0;
int line_off_a[33];
int line_off_b[33];
int nlines_a = 0;
int nlines_b = 0;
int ignore_case = 0;
int lcs[1089]; // (32+1)^2 DP table

int read_file(int *path, int *buf) {
  int fd = open(path, 0);
  int total = 0;
  if (fd < 0) {
    print_str("diff: cannot open file\n");
    exit(2);
  }
  while (total < 1000) {
    int n = read(fd, buf + total, 128);
    if (n <= 0) { break; }
    total = total + n;
  }
  close(fd);
  return total;
}

// record line offsets; returns the number of lines (max 32)
int split_lines(int *buf, int len, int *off) {
  int n = 0;
  int i = 0;
  off[0] = 0;
  if (len == 0) { return 0; }
  n = 1;
  while (i < len) {
    if (buf[i] == '\n') {
      if (n < 32) {
        off[n] = i + 1;
        n = n + 1;
      }
    }
    i = i + 1;
  }
  return n;
}

int line_end(int *buf, int len, int *off, int nlines, int which) {
  if (which + 1 < nlines) { return off[which + 1] - 1; }
  return len;
}

// byte-by-byte equality of line i of file A and line j of file B
int line_eq(int i, int j) {
  int sa = line_off_a[i];
  int sb = line_off_b[j];
  int ea = line_end(buf_a, len_a, line_off_a, nlines_a, i);
  int eb = line_end(buf_b, len_b, line_off_b, nlines_b, j);
  if (ea - sa != eb - sb) { return 0; }
  while (sa < ea) {
    int ca = buf_a[sa];
    int cb = buf_b[sb];
    if (ignore_case == 1) {
      // inline case folding: these branch locations only execute under -i
      if (ca >= 'A') { if (ca <= 'Z') { ca = ca + 32; } }
      if (cb >= 'A') { if (cb <= 'Z') { cb = cb + 32; } }
    }
    if (ca != cb) { return 0; }
    sa = sa + 1;
    sb = sb + 1;
  }
  return 1;
}

int print_line(int *buf, int len, int *off, int nlines, int which) {
  int i = off[which];
  int e = line_end(buf, len, off, nlines, which);
  int out[256];
  int k = 0;
  while (i < e) {
    if (k < 255) {
      out[k] = buf[i];
      k = k + 1;
    }
    i = i + 1;
  }
  out[k] = 0;
  print_str(out);
  print_str("\n");
  return 0;
}

int build_lcs() {
  int i;
  int j;
  for (i = 0; i <= nlines_a; i = i + 1) {
    for (j = 0; j <= nlines_b; j = j + 1) {
      lcs[i * 33 + j] = 0;
    }
  }
  for (i = 1; i <= nlines_a; i = i + 1) {
    for (j = 1; j <= nlines_b; j = j + 1) {
      if (line_eq(i - 1, j - 1) == 1) {
        lcs[i * 33 + j] = lcs[(i - 1) * 33 + (j - 1)] + 1;
      }
      else {
        lcs[i * 33 + j] =
          max_int(lcs[(i - 1) * 33 + j], lcs[i * 33 + (j - 1)]);
      }
    }
  }
  return lcs[nlines_a * 33 + nlines_b];
}

// emit the diff by walking the DP table backwards; prints in reverse
// region order like classic diff's ed-script flavour
int emit_diff(int i, int j) {
  while (i > 0 || j > 0) {
    int take_a = 0;
    if (i > 0) {
      if (j > 0) {
        if (line_eq(i - 1, j - 1) == 1) {
          // common line: skip
          i = i - 1;
          j = j - 1;
          take_a = 2;
        }
      }
    }
    if (take_a == 0) {
      int del_score = -1;
      int add_score = -1;
      if (i > 0) { del_score = lcs[(i - 1) * 33 + j]; }
      if (j > 0) { add_score = lcs[i * 33 + (j - 1)]; }
      if (del_score >= add_score) {
        print_str("< ");
        print_line(buf_a, len_a, line_off_a, nlines_a, i - 1);
        i = i - 1;
      }
      else {
        print_str("> ");
        print_line(buf_b, len_b, line_off_b, nlines_b, j - 1);
        j = j - 1;
      }
    }
  }
  return 0;
}

int main() {
  int fa[64];
  int fb[64];
  int flag[8];
  int snapshot = 0;
  int argbase = 0;
  int more = 1;
  int common;
  if (argc() < 2) {
    print_str("usage: diff [-s] [-i] file1 file2\n");
    return 2;
  }
  while (more == 1) {
    arg(argbase, flag, 8);
    if (str_eq(flag, "-s")) {
      snapshot = 1;
      argbase = argbase + 1;
    }
    else if (str_eq(flag, "-i")) {
      ignore_case = 1;
      argbase = argbase + 1;
    }
    else { more = 0; }
  }
  arg(argbase, fa, 64);
  arg(argbase + 1, fb, 64);
  len_a = read_file(fa, buf_a);
  len_b = read_file(fb, buf_b);
  nlines_a = split_lines(buf_a, len_a, line_off_a);
  nlines_b = split_lines(buf_b, len_b, line_off_b);
  common = build_lcs();
  if (common == min_int(nlines_a, nlines_b)) {
    if (nlines_a == nlines_b) {
      print_str("files are identical\n");
      if (snapshot == 1) { crash(); }
      return 0;
    }
  }
  emit_diff(nlines_a, nlines_b);
  if (snapshot == 1) { crash(); }
  return 1;
}
|}

let prog : Minic.Program.t Lazy.t = lazy (Runtime_lib.link ~name:"diff" source)

(** Scenario comparing two in-memory files.  [snapshot] adds [-s] so the
    run ends in a crash at a fixed site (the replay target); [ignore_case]
    adds [-i]. *)
let scenario ?(name = "diff") ?(snapshot = true) ?(ignore_case = false)
    ?(max_steps = 20_000_000) ~(file_a : string) ~(file_b : string) () :
    Concolic.Scenario.t =
  let args =
    (if snapshot then [ "-s" ] else [])
    @ (if ignore_case then [ "-i" ] else [])
    @ [ "a.txt"; "b.txt" ]
  in
  let world =
    {
      Osmodel.World.default_config with
      files = [ ("a.txt", file_a); ("b.txt", file_b) ];
    }
  in
  Concolic.Scenario.make ~name ~args ~world ~max_steps (Lazy.force prog)

(* ------------------------------------------------------------------ *)
(* Text-pair generator for the two diff experiments *)

let random_line rng len =
  (* mixed case, so that -i comparisons are meaningful *)
  String.init len (fun _ ->
      let c = Char.chr (Char.code 'a' + Osmodel.Rng.int rng 26) in
      if Osmodel.Rng.int rng 4 = 0 then Char.uppercase_ascii c else c)

(** A pair of files: [lines] lines of [width] chars, with [edits] random
    line replacements and one insertion in the second file. *)
let file_pair ?(seed = 3) ~lines ~width ~edits () : string * string =
  let rng = Osmodel.Rng.create seed in
  let base = Array.init lines (fun _ -> random_line rng width) in
  let second = Array.copy base in
  for _ = 1 to edits do
    let i = Osmodel.Rng.int rng lines in
    second.(i) <- random_line rng width
  done;
  let a = String.concat "\n" (Array.to_list base) ^ "\n" in
  let insert_at = Osmodel.Rng.int rng lines in
  let b =
    Array.to_list second
    |> List.mapi (fun i l ->
           if i = insert_at then l ^ "\n" ^ random_line rng width else l)
    |> String.concat "\n"
  in
  (a, b ^ "\n")

(** The two experiments of Table 6.  Both use [-i], whose inline
    case-folding branches pre-deployment dynamic analysis never visited. *)
let experiment_1 () : Concolic.Scenario.t =
  let a, b = file_pair ~seed:11 ~lines:6 ~width:8 ~edits:1 () in
  scenario ~name:"diff-exp1" ~ignore_case:true ~file_a:a ~file_b:b ()

let experiment_2 () : Concolic.Scenario.t =
  let a, b = file_pair ~seed:23 ~lines:12 ~width:10 ~edits:3 () in
  scenario ~name:"diff-exp2" ~ignore_case:true ~file_a:a ~file_b:b ()
