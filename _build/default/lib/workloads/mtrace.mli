(** Multithreaded workload with an interleaving-dependent crash (§6).

    Two worker threads append to a shared, fixed-size alert log with an
    unguarded check-then-append; with enough alert characters in the input
    and an adversarial schedule, an append lands one past the end.  The
    crash depends on both the input and the thread schedule — the scenario
    that §6's schedule recording makes reproducible. *)

val source : string
val prog : Minic.Program.t Lazy.t

(** A scenario whose input carries [alerts] alert characters; [seed] drives
    the simulated kernel and the field scheduler. *)
val scenario : ?seed:int -> ?alerts:int -> ?len:int -> unit -> Concolic.Scenario.t

(** Too few alerts to fill the log: never crashes. *)
val benign_scenario : ?seed:int -> unit -> Concolic.Scenario.t
