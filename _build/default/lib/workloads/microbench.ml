(** The two microbenchmarks of §5.1.

    The first is a counter loop whose only branch is the loop bound check —
    used to measure the per-branch instrumentation cost in isolation.  The
    second is the paper's Listing 1: a program that computes a Fibonacci
    number for one of two values selected by the input option; only the two
    option branches are symbolic.  (The Fibonacci computation is iterative
    so the interpreted iteration counts stay proportional to the paper's
    native ones.) *)

(** Counter loop: one branch location executed [iterations]+1 times. *)
let counter_loop_source ~iterations =
  Printf.sprintf
    {|
int main() {
  int i = 0;
  int c = 0;
  while (i < %d) {
    c = c + 1;
    i = i + 1;
  }
  print_int(c);
  return 0;
}
|}
    iterations

let counter_loop ?(iterations = 100_000) () : Concolic.Scenario.t =
  let prog =
    Runtime_lib.link ~name:"counter_loop" (counter_loop_source ~iterations)
  in
  Concolic.Scenario.make ~name:"counter_loop" ~max_steps:max_int prog

(** Listing 1: Fibonacci selected by an option argument. *)
let fibonacci_source =
  {|
int fibonacci(int n) {
  int a = 0;
  int b = 1;
  int i = 0;
  while (i < n) {
    int t = a + b;
    a = b;
    b = t;
    i = i + 1;
  }
  return a;
}

int main() {
  int buf[8];
  int result = 0;
  arg(0, buf, 8);
  int option = buf[0];
  if (option == 'a') {
    result = fibonacci(2000);
  }
  else if (option == 'b') {
    result = fibonacci(4000);
  }
  print_int(result);
  return 0;
}
|}

let fibonacci_prog : Minic.Program.t Lazy.t =
  lazy (Runtime_lib.link ~name:"fibonacci" fibonacci_source)

let fibonacci ?(option = "a") () : Concolic.Scenario.t =
  Concolic.Scenario.make ~name:"fibonacci" ~args:[ option ]
    ~max_steps:50_000_000
    (Lazy.force fibonacci_prog)
