(** The µServer analogue (§5.3): an event-driven web server in MiniC.

    Select/accept/read event loop, per-connection buffers, an HTTP parser
    (method, path, version, Content-Length, Cookie), static responses and a
    stdout access log.  Five crash bugs are planted in *different areas of
    the HTTP parser*, mirroring the paper's five input scenarios:

    + Exp 1 — request paths longer than 63 bytes overflow the path buffer;
    + Exp 2 — POST with 0 < Content-Length < 64 divides by a zero chunk
      count in the body-chunking computation;
    + Exp 3 — an unterminated quote in a Cookie value makes the scanner run
      past the connection-buffer array;
    + Exp 4 — an empty method (request starting with a space) makes method
      canonicalisation read index -1;
    + Exp 5 — an HTTP minor version above 1 indexes past the
      supported-version table. *)

let source =
  {|
// 16 connection slots, 512 bytes of buffered request each
int conn_fd[16];
int conn_len[16];
int conn_buf[8192];
int vtab[2];
int served = 0;
int target = 1;

int match_at(int *buf, int p, int *lit) {
  int i = 0;
  while (lit[i] != 0) {
    if (buf[p + i] != lit[i]) { return 0; }
    i = i + 1;
  }
  return 1;
}

int atoi_at(int *buf, int p) {
  int v = 0;
  while (buf[p] == ' ') { p = p + 1; }
  while (isdigit(buf[p])) {
    v = v * 10 + (buf[p] - '0');
    p = p + 1;
  }
  return v;
}

int find_slot(int fd) {
  int s;
  for (s = 0; s < 16; s = s + 1) {
    if (conn_fd[s] == fd) { return s; }
  }
  return -1;
}

int alloc_slot(int fd) {
  int s;
  for (s = 0; s < 16; s = s + 1) {
    if (conn_fd[s] == -1) {
      conn_fd[s] = fd;
      conn_len[s] = 0;
      // clear the slot buffer (library call, concrete data)
      memset(conn_buf + s * 512, 0, 512);
      return s;
    }
  }
  return -1;
}

int drop_conn(int slot, int fd) {
  conn_fd[slot] = -1;
  conn_len[slot] = 0;
  close(fd);
  return 0;
}

int respond(int fd, int code, int head_only) {
  // build the response through the string library, like a real server
  int resp[160];
  int nb[16];
  if (code == 200) {
    strcpy(resp, "HTTP/1.0 200 OK\r\nContent-Length: ");
    itoa(5, nb);
    strcat(resp, nb);
    strcat(resp, "\r\n\r\n");
    if (head_only == 0) { strcat(resp, "Hello"); }
  }
  else if (code == 404) {
    strcpy(resp, "HTTP/1.0 404 Not Found\r\n\r\n");
  }
  else {
    strcpy(resp, "HTTP/1.0 400 Bad Request\r\n\r\n");
  }
  write_str(fd, resp);
  return 0;
}

int access_log(int *method, int *path, int code) {
  // one access-log line per request, written to stdout
  int line[160];
  int nb[16];
  strcpy(line, method);
  strcat(line, " ");
  strcat(line, path);
  strcat(line, " -> ");
  itoa(code, nb);
  strcat(line, nb);
  strcat(line, "\n");
  print_str(line);
  return 0;
}

// scan a cookie header value; values may be quoted
int parse_cookie(int start, int hend) {
  int j = start;
  int pairs = 0;
  while (j < hend) {
    if (conn_buf[j] == ';') { pairs = pairs + 1; }
    if (conn_buf[j] == '"') {
      // BUG 3: no bounds check while looking for the closing quote
      int k = j + 1;
      while (conn_buf[k] != '"') { k = k + 1; }
      j = k + 1;
    }
    else { j = j + 1; }
  }
  return pairs;
}

// parse and answer the request buffered in [slot]; returns 1 when a
// response was sent, 0 if the request is not complete yet
int handle_request(int slot, int fd) {
  int base = slot * 512;
  int len = conn_len[slot];
  int mbuf[16];
  int pbuf[64];
  int mlen = 0;
  int hend = -1;
  int q = base;
  int p;
  int code = 200;
  // locate end of headers
  while (q + 3 < base + len) {
    if (conn_buf[q] == '\r') {
      if (match_at(conn_buf, q, "\r\n\r\n") == 1) { hend = q; break; }
    }
    q = q + 1;
  }
  if (hend < 0) { return 0; }

  // ---- method ----
  p = base;
  while (conn_buf[p] != ' ') {
    if (conn_buf[p] == '\r') { break; }
    if (mlen < 15) {
      mbuf[mlen] = conn_buf[p];
      mlen = mlen + 1;
    }
    p = p + 1;
  }
  mbuf[mlen] = 0;
  // BUG 4: canonicalisation peeks at the last method byte (mlen may be 0)
  int last = toupper(mbuf[mlen - 1]);
  if (last == 0) { last = 'X'; }
  int is_get = str_eq(mbuf, "GET");
  int is_post = str_eq(mbuf, "POST");
  int is_head = str_eq(mbuf, "HEAD");

  // ---- path ----
  int k = 0;
  p = p + 1;
  while (conn_buf[p] != ' ') {
    if (conn_buf[p] == '\r') { break; }
    if (conn_buf[p] == 0) { break; }
    // BUG 1: no bound check against the 64-byte path buffer
    pbuf[k] = conn_buf[p];
    k = k + 1;
    p = p + 1;
  }
  pbuf[k] = 0;

  // ---- version ----
  p = p + 1;
  if (match_at(conn_buf, p, "HTTP/") == 0) {
    respond(fd, 400, 0);
    access_log(mbuf, pbuf, 400);
    served = served + 1;
    drop_conn(slot, fd);
    return 1;
  }
  int minor = conn_buf[p + 7] - '0';
  if (minor < 0) { minor = 0; }
  int vsupported = 0;
  if (minor > 1) {
    // BUG 5: the forward-compatibility check indexes the version table
    // with the unvalidated minor version
    vsupported = vtab[minor];
  }
  else { vsupported = vtab[minor]; }
  if (vsupported == 0) { code = 400; }

  // ---- headers ----
  int clen = -1;
  int lp = base;
  // advance to the second line
  while (conn_buf[lp] != '\r') { lp = lp + 1; }
  lp = lp + 2;
  while (lp < hend) {
    if (match_at(conn_buf, lp, "Content-Length:") == 1) {
      clen = atoi_at(conn_buf, lp + 15);
    }
    if (match_at(conn_buf, lp, "Cookie:") == 1) {
      int lend = lp;
      while (conn_buf[lend] != '\r') { lend = lend + 1; }
      parse_cookie(lp + 7, lend);
    }
    while (conn_buf[lp] != '\r') { lp = lp + 1; }
    lp = lp + 2;
  }

  // ---- body (POST) ----
  if (is_post == 1) {
    if (clen > 0) {
      int have = len - (hend + 4 - base);
      if (have < clen) { return 0; }
      int nchunk = clen / 64;
      if (nchunk == 0) {
        // BUG 2: padding for short bodies divides by the zero chunk count
        int pad = 64 % nchunk;
        nchunk = pad;
      }
    }
  }

  // ---- routing ----
  if (is_get == 0) { if (is_post == 0) { if (is_head == 0) { code = 400; } } }
  if (code == 200) {
    if (pbuf[0] != '/') { code = 400; }
    else if (str_eq(pbuf, "/")) { code = 200; }
    else if (starts_with(pbuf, "/static/")) { code = 200; }
    else if (str_eq(pbuf, "/index.html")) { code = 200; }
    else { code = 404; }
  }
  respond(fd, code, is_head);
  access_log(mbuf, pbuf, code);
  served = served + 1;
  drop_conn(slot, fd);
  return 1;
}

int main() {
  int nbuf[12];
  int tmp[128];
  int rounds = 0;
  int s;
  arg(0, nbuf, 12);
  target = atoi(nbuf);
  if (target <= 0) { target = 1; }
  for (s = 0; s < 16; s = s + 1) { conn_fd[s] = -1; }
  vtab[0] = 1;
  vtab[1] = 1;
  listen(80);
  while (served < target) {
    rounds = rounds + 1;
    if (rounds > target * 50 + 1000) { break; }
    int nr = select();
    int i = 0;
    while (i < nr) {
      int fd = ready_fd(i);
      if (fd == 3) {
        int c = accept();
        if (c >= 0) {
          if (alloc_slot(c) < 0) { close(c); }
        }
      }
      else if (fd > 3) {
        int slot = find_slot(fd);
        if (slot >= 0) {
          int n = read(fd, tmp, 128);
          if (n > 0) {
            if (conn_len[slot] + n > 500) {
              respond(fd, 400, 0);
              served = served + 1;
              drop_conn(slot, fd);
            }
            else {
              int j = 0;
              int base = slot * 512;
              while (j < n) {
                conn_buf[base + conn_len[slot] + j] = tmp[j];
                j = j + 1;
              }
              conn_len[slot] = conn_len[slot] + n;
              handle_request(slot, fd);
            }
          }
          else if (n == 0) {
            // peer done sending; request will never complete
            drop_conn(slot, fd);
          }
        }
      }
      i = i + 1;
    }
  }
  print_str("served ");
  print_int(served);
  print_str("\n");
  return 0;
}
|}

let prog : Minic.Program.t Lazy.t = lazy (Runtime_lib.link ~name:"userver" source)

(* ------------------------------------------------------------------ *)
(* Checkpointed variant (§6, long-running applications): identical server,
   but the event loop checkpoints every 64 select rounds, discarding the
   branch log accumulated so far.  A separate program so branch ids of the
   baseline server are unaffected. *)

let checkpointed_source =
  let cadence =
    "    if (rounds - last_ckpt >= 16) {\n      checkpoint();\n      last_ckpt = rounds;\n    }\n    int nr = select();"
  in
  let s = source in
  let s =
    Str.global_replace (Str.regexp_string "    int nr = select();") cadence s
  in
  Str.global_replace
    (Str.regexp_string "int target = 1;")
    "int target = 1;\nint last_ckpt = 0;" s

let checkpointed_prog : Minic.Program.t Lazy.t =
  lazy (Runtime_lib.link ~name:"userver-ckpt" checkpointed_source)

(** Server scenario on the checkpointed build. *)
let checkpointed_scenario ?(name = "userver-ckpt") ?(seed = 42) ?(max_chunk = 64)
    ?(max_steps = 50_000_000) (requests : string list) : Concolic.Scenario.t =
  let world =
    {
      Osmodel.World.default_config with
      seed;
      conns = requests;
      max_chunk;
      arrivals_per_select = 2;
    }
  in
  Concolic.Scenario.make ~name
    ~args:[ string_of_int (List.length requests) ]
    ~world ~max_steps
    (Lazy.force checkpointed_prog)

(** Build a server scenario from a list of client request payloads. *)
let scenario ?(name = "userver") ?(seed = 42) ?(max_chunk = 64)
    ?(max_steps = 50_000_000) (requests : string list) : Concolic.Scenario.t =
  let world =
    {
      Osmodel.World.default_config with
      seed;
      conns = requests;
      max_chunk;
      arrivals_per_select = 2;
    }
  in
  Concolic.Scenario.make ~name
    ~args:[ string_of_int (List.length requests) ]
    ~world ~max_steps
    (Lazy.force prog)

(* ------------------------------------------------------------------ *)
(* The five crash experiments (§5.3, Table 3) *)

type experiment = {
  id : int;
  description : string;
  requests : string list;  (** last one triggers the crash *)
}

let crlf = "\r\n"

let get path = Printf.sprintf "GET %s HTTP/1.0%sHost: x%s%s" path crlf crlf crlf

let experiments : experiment list =
  [
    {
      id = 1;
      description = "long URL overflows the path buffer (64 bytes)";
      requests = [ get ("/" ^ String.make 80 'a') ];
    }
    ;
    {
      id = 2;
      description = "POST with 0 < Content-Length < 64 divides by zero chunk count";
      requests =
        [
          get "/index.html";
          Printf.sprintf
            "POST /form HTTP/1.0%sHost: x%sContent-Length: 10%s%s0123456789"
            crlf crlf crlf crlf;
        ];
    }
    ;
    {
      id = 3;
      description = "unterminated quote in a Cookie value scans out of bounds";
      requests =
        [
          Printf.sprintf
            "GET /index.html HTTP/1.0%sHost: x%sCookie: session=\"abcdef%s%s"
            crlf crlf crlf crlf;
        ];
    }
    ;
    {
      id = 4;
      description = "empty method (leading space) reads method buffer at -1";
      requests = [ " GET / HTTP/1.0" ^ crlf ^ "Host: x" ^ crlf ^ crlf ];
    }
    ;
    {
      id = 5;
      description = "HTTP minor version above 1 indexes past the version table";
      requests =
        [
          get "/static/logo.png";
          "GET / HTTP/1.7" ^ crlf ^ "Host: x" ^ crlf ^ crlf;
        ];
    }
    ;
  ]

let experiment id =
  match List.find_opt (fun e -> e.id = id) experiments with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "userver experiment %d" id)

(** Scenario for one crash experiment. *)
let experiment_scenario ?(seed = 42) (e : experiment) : Concolic.Scenario.t =
  scenario ~name:(Printf.sprintf "userver-exp%d" e.id) ~seed e.requests
