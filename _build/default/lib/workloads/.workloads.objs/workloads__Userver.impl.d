lib/workloads/userver.ml: Concolic Lazy List Minic Osmodel Printf Runtime_lib Str String
