lib/workloads/mtrace.mli: Concolic Lazy Minic
