lib/workloads/diffutil.mli: Concolic Lazy Minic
