lib/workloads/coreutils.ml: Concolic Lazy List Minic Runtime_lib String
