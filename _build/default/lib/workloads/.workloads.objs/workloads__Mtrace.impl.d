lib/workloads/mtrace.ml: Concolic Lazy Minic Osmodel Runtime_lib String
