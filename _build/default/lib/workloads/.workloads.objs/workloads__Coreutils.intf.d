lib/workloads/coreutils.mli: Concolic Lazy Minic
