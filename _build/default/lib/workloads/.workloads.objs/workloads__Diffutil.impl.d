lib/workloads/diffutil.ml: Array Char Concolic Lazy List Minic Osmodel Runtime_lib String
