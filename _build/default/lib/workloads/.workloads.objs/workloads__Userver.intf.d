lib/workloads/userver.mli: Concolic Lazy Minic
