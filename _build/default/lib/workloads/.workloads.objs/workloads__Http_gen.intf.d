lib/workloads/http_gen.mli: Osmodel
