lib/workloads/http_gen.ml: Array Buffer Char List Osmodel Printf String
