lib/workloads/microbench.ml: Concolic Lazy Minic Printf Runtime_lib
