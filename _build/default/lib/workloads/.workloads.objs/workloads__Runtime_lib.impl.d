lib/workloads/runtime_lib.ml: Lazy Minic
