lib/workloads/runtime_lib.mli: Lazy Minic
