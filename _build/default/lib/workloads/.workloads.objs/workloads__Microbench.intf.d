lib/workloads/microbench.mli: Concolic Lazy Minic
