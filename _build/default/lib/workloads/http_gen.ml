(** HTTP workload generator — the httperf analogue (§4).

    Produces benign request streams with varying methods (GET, POST, HEAD),
    paths, Cookie headers and Content-Lengths, with total request sizes in
    the paper's 5-400 byte range.  Benign means: path < 64 bytes, POST
    bodies of 64+ bytes, no unterminated quotes, well-formed method and
    version — the planted µServer bugs stay dormant. *)

let crlf = "\r\n"

type spec = {
  meth : string;
  path : string;
  version : string;
  cookies : (string * string) list;
  body : string option;
}

let render (s : spec) =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "%s %s HTTP/%s%s" s.meth s.path s.version crlf);
  Buffer.add_string b ("Host: bench.example" ^ crlf);
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "Cookie: %s=%s%s" k v crlf))
    s.cookies;
  (match s.body with
  | Some body ->
      Buffer.add_string b
        (Printf.sprintf "Content-Length: %d%s%s%s" (String.length body) crlf crlf
           body)
  | None -> Buffer.add_string b crlf);
  Buffer.contents b

let words =
  [| "index"; "about"; "static"; "img"; "api"; "posts"; "a"; "data"; "v1"; "x" |]

let random_path rng =
  let depth = Osmodel.Rng.range rng 0 3 in
  let parts =
    List.init depth (fun _ -> words.(Osmodel.Rng.int rng (Array.length words)))
  in
  let base = "/" ^ String.concat "/" parts in
  let base = if String.length base > 1 then base ^ ".html" else base in
  if String.length base > 50 then "/" else base

let random_cookie rng =
  let n = Osmodel.Rng.range rng 4 12 in
  let v = String.init n (fun _ -> Char.chr (Char.code 'a' + Osmodel.Rng.int rng 26)) in
  ("session", v)

(** One random benign request. *)
let random_request rng : string =
  let meth =
    match Osmodel.Rng.int rng 10 with
    | 0 | 1 -> "POST"
    | 2 -> "HEAD"
    | _ -> "GET"
  in
  let version = if Osmodel.Rng.bool rng then "1.0" else "1.1" in
  let cookies =
    if Osmodel.Rng.int rng 3 = 0 then [ random_cookie rng ] else []
  in
  let body =
    if String.equal meth "POST" then
      let n = Osmodel.Rng.range rng 64 300 in
      Some (String.init n (fun i -> Char.chr (Char.code '0' + (i mod 10))))
    else None
  in
  render { meth; path = random_path rng; version; cookies; body }

(** A stream of [n] benign requests (seeded, deterministic). *)
let workload ?(seed = 7) n : string list =
  let rng = Osmodel.Rng.create seed in
  List.init n (fun _ -> random_request rng)

(** The short fixed requests used for quick overhead measurements. *)
let tiny_get = render { meth = "GET"; path = "/"; version = "1.0"; cookies = []; body = None }
