(** The two microbenchmarks of §5.1. *)

(** Counter loop: one branch location executed [iterations]+1 times. *)
val counter_loop_source : iterations:int -> string

val counter_loop : ?iterations:int -> unit -> Concolic.Scenario.t

(** Listing 1: Fibonacci selected by an option argument; only the two
    option branches are symbolic. *)
val fibonacci_source : string

val fibonacci_prog : Minic.Program.t Lazy.t
val fibonacci : ?option:string -> unit -> Concolic.Scenario.t
