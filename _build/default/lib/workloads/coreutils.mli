(** Coreutils analogues with real, input-dependent crash bugs (§5.2).

    Four argv-driven programs modelled on mkdir, mknod, mkfifo and paste;
    each contains a crash that manifests only for a specific combination of
    arguments (the paste bug is shaped after the historical
    [paste -d\ ...] delimiter-list bug the paper used).  Every bug is
    branch-determined: any input satisfying its branch-guarded path
    crashes, which is what guided replay reconstructs. *)

type entry = {
  util : string;
  prog : Minic.Program.t Lazy.t;
  crashing_args : string list;  (** the specific combination that crashes *)
  benign_args : string list;  (** a normal invocation *)
  bug_description : string;
}

val catalog : entry list

(** Raises [Invalid_argument] for an unknown name. *)
val find : string -> entry

(** Scenario that triggers the bug. *)
val crash_scenario : entry -> Concolic.Scenario.t

(** Normal (non-crashing) scenario. *)
val benign_scenario : entry -> Concolic.Scenario.t

(** Pre-deployment dynamic-analysis scenario: a generic argv shape (the
    paper ran the coreutils "with up to 10 arguments, each 100 bytes
    long"), not the unknown crashing input. *)
val analysis_scenario : entry -> Concolic.Scenario.t
