(** The MiniC runtime library — the uClibc analogue.

    Every workload links against this source (marked [is_lib]), reproducing
    the paper's setup where programs are linked with uClibc (§4): library
    branches dominate execution counts (Figure 3), most are concrete, and
    string functions called on input buffers execute with symbolic
    conditions.

    MiniC note: [&&]/[||] are strict, so bounds guards must be nested [if]s
    rather than short-circuit conjunctions. *)

let source =
  {|
// ------------------------------------------------------------------
// string functions
// ------------------------------------------------------------------

int strlen(int *s) {
  int n = 0;
  while (s[n] != 0) { n = n + 1; }
  return n;
}

int strcmp(int *a, int *b) {
  int i = 0;
  // bytes equal and nonzero: advance.  i never exceeds min(len a, len b).
  while (a[i] != 0 && a[i] == b[i]) { i = i + 1; }
  return a[i] - b[i];
}

int strncmp(int *a, int *b, int n) {
  int i = 0;
  while (i < n) {
    if (a[i] != b[i]) { return a[i] - b[i]; }
    if (a[i] == 0) { return 0; }
    i = i + 1;
  }
  return 0;
}

int str_eq(int *a, int *b) {
  if (strcmp(a, b) == 0) { return 1; }
  return 0;
}

int starts_with(int *s, int *prefix) {
  int i = 0;
  while (prefix[i] != 0) {
    if (s[i] != prefix[i]) { return 0; }
    i = i + 1;
  }
  return 1;
}

int strcpy(int *dst, int *src) {
  int i = 0;
  while (src[i] != 0) {
    dst[i] = src[i];
    i = i + 1;
  }
  dst[i] = 0;
  return i;
}

// copy at most n-1 bytes and NUL-terminate; returns bytes copied
int strlcpy(int *dst, int *src, int n) {
  int i = 0;
  while (i < n - 1) {
    if (src[i] == 0) { break; }
    dst[i] = src[i];
    i = i + 1;
  }
  dst[i] = 0;
  return i;
}

int strcat(int *dst, int *src) {
  int n = strlen(dst);
  int i = 0;
  while (src[i] != 0) {
    dst[n + i] = src[i];
    i = i + 1;
  }
  dst[n + i] = 0;
  return n + i;
}

// index of first occurrence of c in s starting at from, or -1
int str_index(int *s, int c, int from) {
  int i = from;
  while (s[i] != 0) {
    if (s[i] == c) { return i; }
    i = i + 1;
  }
  if (c == 0) { return i; }
  return -1;
}

// ------------------------------------------------------------------
// character classification
// ------------------------------------------------------------------

int isdigit(int c) {
  if (c >= '0') { if (c <= '9') { return 1; } }
  return 0;
}

int isalpha(int c) {
  if (c >= 'a') { if (c <= 'z') { return 1; } }
  if (c >= 'A') { if (c <= 'Z') { return 1; } }
  return 0;
}

int isspace(int c) {
  if (c == ' ') { return 1; }
  if (c == '\t') { return 1; }
  if (c == '\r') { return 1; }
  if (c == '\n') { return 1; }
  return 0;
}

int toupper(int c) {
  if (c >= 'a') { if (c <= 'z') { return c - 32; } }
  return c;
}

int tolower(int c) {
  if (c >= 'A') { if (c <= 'Z') { return c + 32; } }
  return c;
}

// ------------------------------------------------------------------
// conversions
// ------------------------------------------------------------------

int atoi(int *s) {
  int i = 0;
  int sign = 1;
  int v = 0;
  while (isspace(s[i])) { i = i + 1; }
  if (s[i] == '-') { sign = -1; i = i + 1; }
  else if (s[i] == '+') { i = i + 1; }
  while (isdigit(s[i])) {
    v = v * 10 + (s[i] - '0');
    i = i + 1;
  }
  return sign * v;
}

// parse an octal mode string; stops at the first non-octal character
int parse_octal(int *s) {
  int i = 0;
  int v = 0;
  while (s[i] >= '0') {
    if (s[i] > '7') { break; }
    v = v * 8 + (s[i] - '0');
    i = i + 1;
  }
  return v;
}

// write the decimal representation of v into dst; returns its length
int itoa(int v, int *dst) {
  int tmp[24];
  int n = 0;
  int i = 0;
  int neg = 0;
  if (v < 0) { neg = 1; v = 0 - v; }
  if (v == 0) { tmp[0] = '0'; n = 1; }
  while (v > 0) {
    tmp[n] = '0' + (v % 10);
    v = v / 10;
    n = n + 1;
  }
  if (neg == 1) { dst[i] = '-'; i = i + 1; }
  while (n > 0) {
    n = n - 1;
    dst[i] = tmp[n];
    i = i + 1;
  }
  dst[i] = 0;
  return i;
}

// ------------------------------------------------------------------
// memory
// ------------------------------------------------------------------

int memset(int *p, int v, int n) {
  int i;
  for (i = 0; i < n; i = i + 1) { p[i] = v; }
  return n;
}

int memcpy(int *dst, int *src, int n) {
  int i;
  for (i = 0; i < n; i = i + 1) { dst[i] = src[i]; }
  return n;
}

// ------------------------------------------------------------------
// misc
// ------------------------------------------------------------------

int abs_int(int x) {
  if (x < 0) { return 0 - x; }
  return x;
}

int min_int(int a, int b) {
  if (a < b) { return a; }
  return b;
}

int max_int(int a, int b) {
  if (a > b) { return a; }
  return b;
}

// djb2-style string hash, used by diff for line identity
int hash_str(int *s, int from, int to) {
  int h = 5381;
  int i = from;
  while (i < to) {
    h = (h * 33 + s[i]) % 1000003;
    i = i + 1;
  }
  return h;
}

// write a NUL-terminated string to fd
int write_str(int fd, int *s) {
  return write(fd, s, strlen(s));
}
|}

(** Parse the runtime library once (the unit is immutable; linking copies). *)
let unit_ : Minic.Ast.unit_ Lazy.t =
  lazy (Minic.Parser.parse_unit ~is_lib:true ~file:"runtime.c" source)

(** Link an application source against the runtime library. *)
let link ?(name = "program") app_source : Minic.Program.t =
  let app = Minic.Parser.parse_unit ~file:(name ^ ".c") app_source in
  Minic.Program.link ~name ~app ~libs:[ Lazy.force unit_ ] ()
