(** The MiniC runtime library — the uClibc analogue.

    String/memory/conversion functions written in MiniC itself and linked
    (marked [is_lib]) into every workload, reproducing the paper's
    app-vs-library branch split. *)

val source : string

(** The parsed library unit (linking copies it, so sharing is safe). *)
val unit_ : Minic.Ast.unit_ Lazy.t

(** Parse [app_source] and link it against the runtime library. *)
val link : ?name:string -> string -> Minic.Program.t
