(** HTTP workload generator — the httperf analogue (§4).

    Benign request streams with varying methods, paths, Cookie headers and
    Content-Lengths, sized within the paper's 5-400 byte range; benign
    means the planted µServer bugs stay dormant. *)

type spec = {
  meth : string;
  path : string;
  version : string;
  cookies : (string * string) list;
  body : string option;
}

val render : spec -> string

(** One random benign request. *)
val random_request : Osmodel.Rng.t -> string

(** A stream of [n] benign requests (seeded, deterministic). *)
val workload : ?seed:int -> int -> string list

(** A minimal fixed GET request. *)
val tiny_get : string
