(** The µServer analogue (§5.3): an event-driven web server in MiniC.

    Select/accept/read event loop, per-connection buffers, an HTTP parser
    (method, path, version, Content-Length, Cookie), responses and access
    log built through the runtime library.  Five crash bugs are planted in
    different areas of the parser, mirroring the paper's five input
    scenarios.  A checkpointed build (§6) is also provided. *)

val source : string
val prog : Minic.Program.t Lazy.t

(** Build a server scenario from client request payloads (argv carries the
    request-count target). *)
val scenario :
  ?name:string ->
  ?seed:int ->
  ?max_chunk:int ->
  ?max_steps:int ->
  string list ->
  Concolic.Scenario.t

type experiment = {
  id : int;
  description : string;
  requests : string list;  (** the last one triggers the crash *)
}

(** The five crash experiments of Table 3. *)
val experiments : experiment list

(** Raises [Invalid_argument] for an unknown id. *)
val experiment : int -> experiment

val experiment_scenario : ?seed:int -> experiment -> Concolic.Scenario.t

(** {1 Checkpointed variant (§6)} *)

val checkpointed_source : string
val checkpointed_prog : Minic.Program.t Lazy.t

val checkpointed_scenario :
  ?name:string ->
  ?seed:int ->
  ?max_chunk:int ->
  ?max_steps:int ->
  string list ->
  Concolic.Scenario.t
