(** Coreutils analogues with real, input-dependent crash bugs (§5.2).

    Four small argv-driven programs modelled on mkdir, mknod, mkfifo and
    paste, each containing a crash that only manifests for a specific
    combination of arguments — the paste bug is shaped after the historical
    [paste -d\\ ...] read-past-end-of-delimiter-list bug the paper (and
    KLEE) used.  "Filesystem effects" are simulated by printing the actions
    the program would take. *)

(* ------------------------------------------------------------------ *)
(* mkdir [-p] [-m MODE] dir...

   Bug: 4-digit octal modes (setuid/sticky bits, e.g. `-m 1777`) take the
   special-bits path, whose bookkeeping table has a single entry and is
   written at index 1 — one past the end, for every such mode. *)
let mkdir_source =
  {|
int perm_name[512];
int special_bits[1];

int apply_mode(int mode) {
  if (mode > 511) {
    // BUG: the special-bits counter table has one entry, not two
    special_bits[1] = special_bits[1] + 1;
    return 1;
  }
  perm_name[mode] = perm_name[mode] + 1;
  return perm_name[mode];
}

int main() {
  int opt[128];
  int dir[128];
  int i = 0;
  int parents = 0;
  int mode = 493; // 0755
  int made = 0;
  int n = argc();
  while (i < n) {
    arg(i, opt, 128);
    if (str_eq(opt, "-p")) {
      parents = 1;
      i = i + 1;
    }
    else if (str_eq(opt, "-m")) {
      if (i + 1 >= n) {
        print_str("mkdir: option requires an argument -- m\n");
        return 1;
      }
      arg(i + 1, opt, 128);
      mode = parse_octal(opt);
      i = i + 2;
    }
    else {
      arg(i, dir, 128);
      if (strlen(dir) == 0) {
        print_str("mkdir: cannot create directory ''\n");
        return 1;
      }
      apply_mode(mode);
      if (parents == 1) {
        // report each missing parent component
        int j = 0;
        while (dir[j] != 0) {
          if (dir[j] == '/') { print_str("mkdir: created parent\n"); }
          j = j + 1;
        }
      }
      print_str("mkdir: created directory '");
      print_str(dir);
      print_str("'\n");
      made = made + 1;
      i = i + 1;
    }
  }
  if (made == 0) {
    print_str("mkdir: missing operand\n");
    return 1;
  }
  return 0;
}
|}

(* ------------------------------------------------------------------ *)
(* mknod name type [major minor]

   Bug: the device registry holds majors 0-255; the large-major code path
   forgets to reject out-of-range majors, so any major above 255 (with a
   valid minor) writes past the registry. *)
let mknod_source =
  {|
int devtab[2048];

int register_dev(int major, int minor) {
  if (major <= 255) {
    devtab[major * 8 + minor] = 1;
    return major * 8 + minor;
  }
  // BUG: extended majors were never given their own registry
  devtab[major * 8 + minor] = 1;
  return major * 8 + minor;
}

int main() {
  int name[128];
  int type[16];
  int numbuf[32];
  int n = argc();
  if (n < 2) {
    print_str("mknod: missing operand\n");
    return 1;
  }
  arg(0, name, 128);
  arg(1, type, 16);
  if (strlen(type) != 1) {
    print_str("mknod: invalid device type\n");
    return 1;
  }
  switch (type[0]) {
    case 'p':
      print_str("mknod: created fifo '");
      print_str(name);
      print_str("'\n");
      return 0;
    case 'b':
    case 'c': {
      int major = 0;
      int minor = 0;
      if (n < 4) {
        print_str("mknod: special files require major and minor numbers\n");
        return 1;
      }
      arg(2, numbuf, 32);
      major = atoi(numbuf);
      arg(3, numbuf, 32);
      minor = atoi(numbuf);
      if (minor < 0) {
        print_str("mknod: invalid minor\n");
        return 1;
      }
      if (minor > 7) {
        print_str("mknod: invalid minor\n");
        return 1;
      }
      register_dev(major, minor);
      print_str("mknod: created device '");
      print_str(name);
      print_str("'\n");
      return 0;
    }
    default:
      print_str("mknod: invalid device type\n");
      return 1;
  }
  return 1;
}
|}

(* ------------------------------------------------------------------ *)
(* mkfifo [-m MODE] name...

   Bug: paths are split into at most 16 components but the splitter does
   not bound the component counter, so a name with 17+ slashes writes past
   the component-offset table. *)
let mkfifo_source =
  {|
int comp_off[16];

int split_components(int *path) {
  int ncomp = 0;
  int i = 0;
  comp_off[0] = 0;
  ncomp = 1;
  while (path[i] != 0) {
    if (path[i] == '/') {
      comp_off[ncomp] = i + 1;
      ncomp = ncomp + 1;
    }
    i = i + 1;
  }
  return ncomp;
}

int main() {
  int opt[160];
  int mode = 420; // 0644
  int i = 0;
  int made = 0;
  int n = argc();
  while (i < n) {
    arg(i, opt, 160);
    if (str_eq(opt, "-m")) {
      if (i + 1 >= n) {
        print_str("mkfifo: option requires an argument -- m\n");
        return 1;
      }
      arg(i + 1, opt, 160);
      mode = parse_octal(opt);
      if (mode > 511) {
        print_str("mkfifo: invalid mode\n");
        return 1;
      }
      i = i + 2;
    }
    else {
      int ncomp = split_components(opt);
      print_str("mkfifo: created fifo '");
      print_str(opt);
      print_str("' with ");
      print_int(ncomp);
      print_str(" components\n");
      made = made + 1;
      i = i + 1;
    }
  }
  if (made == 0) {
    print_str("mkfifo: missing operand\n");
    return 1;
  }
  return 0;
}
|}

(* ------------------------------------------------------------------ *)
(* paste -d LIST column...

   Bug (after the real coreutils one): a backslash at the end of the
   delimiter list makes the escape decoder read the byte after the
   terminator and index the escape table with NUL - 'a' = -97. *)
let paste_source =
  {|
int esc_table[26];

int init_esc() {
  int i;
  for (i = 0; i < 26; i = i + 1) { esc_table[i] = i; }
  esc_table['n' - 'a'] = '\n';
  esc_table['t' - 'a'] = '\t';
  esc_table[0] = 0; // \a and friends collapse to NUL
  return 0;
}

// decode the delimiter at position j of the list; advances are handled by
// the caller via the returned consumed count encoded as decoded*256+used
int decode_delim(int *delims, int j) {
  if (delims[j] == '\\') {
    // BUG: no check that a character follows the backslash
    int c = delims[j + 1];
    int decoded = esc_table[c - 'a'];
    return decoded * 256 + 2;
  }
  return delims[j] * 256 + 1;
}

int main() {
  int delims[64];
  int col[128];
  int out[512];
  int i = 0;
  int outn = 0;
  int dlen;
  int dpos = 0;
  int n = argc();
  init_esc();
  strcpy(delims, "\t");
  arg(0, col, 128);
  if (str_eq(col, "-d")) {
    if (n < 2) {
      print_str("paste: option requires an argument -- d\n");
      return 1;
    }
    arg(1, delims, 64);
    i = 2;
  }
  dlen = strlen(delims);
  if (dlen == 0) {
    print_str("paste: empty delimiter list\n");
    return 1;
  }
  while (i < n) {
    int k = 0;
    arg(i, col, 128);
    while (col[k] != 0) {
      if (outn < 500) {
        out[outn] = col[k];
        outn = outn + 1;
      }
      k = k + 1;
    }
    if (i + 1 < n) {
      int packed = decode_delim(delims, dpos);
      int d = packed / 256;
      int used = packed - d * 256;
      dpos = dpos + used;
      if (dpos >= dlen) { dpos = 0; }
      if (d != 0) {
        if (outn < 500) {
          out[outn] = d;
          outn = outn + 1;
        }
      }
    }
    i = i + 1;
  }
  out[outn] = 0;
  print_str(out);
  print_str("\n");
  return 0;
}
|}

(* ------------------------------------------------------------------ *)
(* Programs and bug scenarios *)

type entry = {
  util : string;
  prog : Minic.Program.t Lazy.t;
  crashing_args : string list;  (** the specific combination that crashes *)
  benign_args : string list;  (** a normal invocation *)
  bug_description : string;
}

let catalog : entry list =
  [
    {
      util = "mkdir";
      prog = lazy (Runtime_lib.link ~name:"mkdir" mkdir_source);
      crashing_args = [ "-m"; "1777"; "newdir" ];
      benign_args = [ "-p"; "a/b/c" ];
      bug_description =
        "special-bits table written one past the end for 4-digit octal modes (mkdir -m 1777 d)";
    };
    {
      util = "mknod";
      prog = lazy (Runtime_lib.link ~name:"mknod" mknod_source);
      crashing_args = [ "dev0"; "b"; "300"; "0" ];
      benign_args = [ "fifo0"; "p" ];
      bug_description = "device registry overflows for major numbers above 255";
    };
    {
      util = "mkfifo";
      prog = lazy (Runtime_lib.link ~name:"mkfifo" mkfifo_source);
      crashing_args = [ "a/b/c/d/e/f/g/h/i/j/k/l/m/n/o/p/q/r" ];
      benign_args = [ "-m"; "644"; "pipe0" ];
      bug_description = "component-offset table overflows for paths with 16+ slashes";
    };
    {
      util = "paste";
      prog = lazy (Runtime_lib.link ~name:"paste" paste_source);
      crashing_args = [ "-d"; "\\"; "abc"; "def" ];
      benign_args = [ "-d"; ","; "one"; "two"; "three" ];
      bug_description =
        "backslash at end of delimiter list reads past the terminator (paste -d\\\\)";
    };
  ]

let find util =
  match List.find_opt (fun e -> String.equal e.util util) catalog with
  | Some e -> e
  | None -> invalid_arg ("unknown coreutils workload: " ^ util)

(** Scenario that triggers the bug. *)
let crash_scenario (e : entry) : Concolic.Scenario.t =
  Concolic.Scenario.make ~name:e.util ~args:e.crashing_args (Lazy.force e.prog)

(** Normal (non-crashing) scenario. *)
let benign_scenario (e : entry) : Concolic.Scenario.t =
  Concolic.Scenario.make ~name:e.util ~args:e.benign_args (Lazy.force e.prog)

(** Test scenario used for pre-deployment dynamic analysis.  The paper runs
    the coreutils "with up to 10 arguments, each 100 bytes long" — a generic
    argv shape, not the bug-triggering input (which the developer does not
    know).  Four 8-byte placeholder arguments keep exploration tractable at
    our scale. *)
let analysis_scenario (e : entry) : Concolic.Scenario.t =
  Concolic.Scenario.make ~name:(e.util ^ "-analysis")
    ~args:[ "aaaaaaaa"; "aaaaaaaa"; "aaaaaaaa"; "aaaaaaaa" ]
    (Lazy.force e.prog)
