(** The diff analogue (§5.4): an input-intensive line differ in MiniC.

    LCS over byte-wise line equality; [-i] folds case inline (branch
    locations pre-deployment testing plausibly never exercises — what
    starves the dynamic method in Table 6); [-s] ends the run with
    [crash()], the analogue of the paper stopping the process with a signal
    so replay has a crash site. *)

val source : string
val prog : Minic.Program.t Lazy.t

(** Scenario comparing two in-memory files. *)
val scenario :
  ?name:string ->
  ?snapshot:bool ->
  ?ignore_case:bool ->
  ?max_steps:int ->
  file_a:string ->
  file_b:string ->
  unit ->
  Concolic.Scenario.t

(** A pair of similar random files ([lines] lines of [width] chars, [edits]
    replacements plus one insertion). *)
val file_pair :
  ?seed:int -> lines:int -> width:int -> edits:int -> unit -> string * string

(** The two experiments of Table 6 (both use [-i]). *)
val experiment_1 : unit -> Concolic.Scenario.t

val experiment_2 : unit -> Concolic.Scenario.t
