(** The developer-site kernel used during replay.

    There is no real environment behind it: system-call results come either
    from the shipped syscall log (replayed verbatim, §3.3) or from symbolic
    models (a fresh symbolic variable per call occurrence, constrained to
    the call's feasible result range), and all input data bytes are
    symbolic variables whose concrete values come from the current solver
    model, falling back to a per-variable deterministic pseudo-random
    default (the paper's "initial run with random inputs"). *)

type stream = { name : string; cap : int; mutable pos : int }

type t = {
  vars : Solver.Symvars.t;
  model : Solver.Model.t;
  shape : Concolic.Scenario.shape;
  sys_reader : Instrument.Syscall_log.Reader.t option;
  seed : int;
  counters : (string, int) Hashtbl.t;
  fd_table : (int, stream) Hashtbl.t;
  mutable next_fd : int;
  mutable accepted : int;
  mutable listening : bool;
  mutable active : bool;
      (** checkpointed replay: before the first [checkpoint()] the shipped
          logs do not apply, so syscalls answer with plain defaults and no
          symbolic variables are created *)
  observe : int -> int -> unit;  (** effective value of each created variable *)
}

let create ?(observe = fun (_ : int) (_ : int) -> ()) ?(active = true) ~vars
    ~model ~(shape : Concolic.Scenario.shape)
    ~(syscall_log : Instrument.Syscall_log.log option) ~seed () : t =
  {
    vars;
    model;
    shape;
    sys_reader = Option.map Instrument.Syscall_log.Reader.create syscall_log;
    seed;
    counters = Hashtbl.create 8;
    fd_table = Hashtbl.create 8;
    next_fd = 4;
    accepted = 0;
    listening = false;
    active;
    observe;
  }

let activate t = t.active <- true

(* Deterministic per-name default byte: stable across runs, varies with the
   replay seed (the "random initial input"). *)
let default_for t name range_lo range_hi =
  let h = Hashtbl.hash (name, t.seed) in
  if range_hi <= range_lo then range_lo else range_lo + (h mod (range_hi - range_lo + 1))

let next_index t kind =
  let i = match Hashtbl.find_opt t.counters kind with Some i -> i | None -> 0 in
  Hashtbl.replace t.counters kind (i + 1);
  i

exception Log_mismatch of string

(* Result of a loggable syscall: logged value if a log is present, else a
   symbolic variable with a model/default concrete value. *)
let syscall_result t ~kind ~lo ~hi ~default : int * Solver.Expr.t option =
  if not t.active then (max lo (min hi default), None)
  else
  match t.sys_reader with
  | Some reader -> (
      match Instrument.Syscall_log.Reader.next reader ~kind with
      | Ok (Some v) -> (v, None)
      | Ok None ->
          (* log exhausted (crash truncated it): fall back to the model *)
          let index = next_index t kind in
          let id =
            Concolic.Names.sys_var t.vars ~kind ~index ~dom:{ Solver.Symvars.lo; hi }
          in
          let conc =
            match Solver.Model.find_opt id t.model with
            | Some v -> v
            | None -> default
          in
          t.observe id conc;
          (conc, Some (Solver.Expr.Var id))
      | Error msg -> raise (Log_mismatch msg))
  | None ->
      let index = next_index t kind in
      let id =
        Concolic.Names.sys_var t.vars ~kind ~index ~dom:{ Solver.Symvars.lo; hi }
      in
      let conc =
        match Solver.Model.find_opt id t.model with Some v -> v | None -> default
      in
      let conc = max lo (min hi conc) in
      t.observe id conc;
      (conc, Some (Solver.Expr.Var id))

let alloc_fd t stream =
  let fd = t.next_fd in
  t.next_fd <- fd + 1;
  Hashtbl.replace t.fd_table fd stream;
  fd

(* Symbolic data bytes for [count] bytes of [stream] starting at its current
   position. *)
let stream_bytes t (s : stream) count =
  if not t.active then begin
    let data =
      Array.init count (fun j ->
          default_for t (Concolic.Names.stream_byte ~stream:s.name ~pos:(s.pos + j)) 0 255)
    in
    s.pos <- s.pos + count;
    (data, [||])
  end
  else
  let data =
    Array.init count (fun j ->
        let pos = s.pos + j in
        let name = Concolic.Names.stream_byte ~stream:s.name ~pos in
        let id = Concolic.Names.stream_var t.vars ~stream:s.name ~pos in
        let v =
          match Solver.Model.find_opt id t.model with
          | Some v -> v land 0xff
          | None -> default_for t name 0 255
        in
        t.observe id v;
        v)
  in
  let data_sym =
    Array.init count (fun j ->
        Some
          (Solver.Expr.Var
             (Concolic.Names.stream_var t.vars ~stream:s.name ~pos:(s.pos + j))))
  in
  s.pos <- s.pos + count;
  (data, data_sym)

let do_read t fd requested : Interp.Kernel.reply =
  (* the program may read an fd the replay kernel has not seen allocated —
     e.g. a connection accepted before a checkpoint, whose fd number comes
     from the syscall log.  Conjure a stream for it: its contents are
     symbolic input like any other. *)
  (if fd >= 4 && not (Hashtbl.mem t.fd_table fd) then begin
     Hashtbl.replace t.fd_table fd
       { name = Printf.sprintf "fd%d" fd; cap = t.shape.conn_cap; pos = 0 };
     t.next_fd <- max t.next_fd (fd + 1)
   end);
  match Hashtbl.find_opt t.fd_table fd with
  | None -> Interp.Kernel.concrete_reply (Osmodel.Sysreq.R_int (-1))
  | Some s ->
      let room = max 0 (s.cap - s.pos) in
      let feasible = min requested room in
      let count, ret_sym =
        syscall_result t ~kind:"read" ~lo:(-1) ~hi:feasible ~default:feasible
      in
      let count = max (-1) (min count feasible) in
      if count <= 0 then
        { Interp.Kernel.res = Osmodel.Sysreq.R_read { count = max count 0; data = [||] };
          ret_sym; data_sym = [||] }
      else
        let data, data_sym = stream_bytes t s count in
        { Interp.Kernel.res = Osmodel.Sysreq.R_read { count; data }; ret_sym; data_sym }

let do_accept t : Interp.Kernel.reply =
  let can_accept = t.accepted < t.shape.n_conns in
  let default = if can_accept then t.next_fd else -1 in
  let v, ret_sym = syscall_result t ~kind:"accept" ~lo:(-1) ~hi:1024 ~default in
  let fd =
    if v < 0 then -1
    else if can_accept then begin
      let stream =
        { name = Printf.sprintf "net%d" t.accepted; cap = t.shape.conn_cap; pos = 0 }
      in
      t.accepted <- t.accepted + 1;
      (* honour the logged fd number if present, else allocate *)
      if Hashtbl.mem t.fd_table v || v <= 3 then alloc_fd t stream
      else begin
        Hashtbl.replace t.fd_table v stream;
        t.next_fd <- max t.next_fd (v + 1);
        v
      end
    end
    else -1
  in
  { Interp.Kernel.res = Osmodel.Sysreq.R_int fd; ret_sym; data_sym = [||] }

let do_ready_fd t index : Interp.Kernel.reply =
  (* default: report connection fds round-robin, then the listener *)
  let known = Hashtbl.fold (fun fd _ acc -> fd :: acc) t.fd_table [] in
  let known = List.sort Int.compare known in
  let default =
    match List.nth_opt known index with
    | Some fd -> fd
    | None -> if t.listening && t.accepted < t.shape.n_conns then 3 else -1
  in
  let v, ret_sym = syscall_result t ~kind:"ready_fd" ~lo:(-1) ~hi:1024 ~default in
  { Interp.Kernel.res = Osmodel.Sysreq.R_int v; ret_sym; data_sym = [||] }

let do_select t : Interp.Kernel.reply =
  let remaining =
    Hashtbl.fold (fun _ (s : stream) n -> if s.pos < s.cap then n + 1 else n)
      t.fd_table 0
  in
  let backlog = if t.accepted < t.shape.n_conns then 1 else 0 in
  let default = min (remaining + backlog) (max 1 backlog) in
  let v, ret_sym =
    syscall_result t ~kind:"select" ~lo:0 ~hi:(t.shape.n_conns + 1) ~default
  in
  { Interp.Kernel.res = Osmodel.Sysreq.R_int v; ret_sym; data_sym = [||] }

(** The kernel function handed to the evaluator during replay runs. *)
let kernel (t : t) : Interp.Kernel.t =
 fun req ->
  match req with
  | Osmodel.Sysreq.Listen _ ->
      t.listening <- true;
      Interp.Kernel.concrete_reply (Osmodel.Sysreq.R_int 3)
  | Osmodel.Sysreq.Open { path; _ } ->
      let fd =
        alloc_fd t { name = "file:" ^ path; cap = t.shape.file_cap; pos = 0 }
      in
      Interp.Kernel.concrete_reply (Osmodel.Sysreq.R_int fd)
  | Osmodel.Sysreq.Close { fd } ->
      Hashtbl.remove t.fd_table fd;
      Interp.Kernel.concrete_reply (Osmodel.Sysreq.R_int 0)
  | Osmodel.Sysreq.Write { data; _ } ->
      Interp.Kernel.concrete_reply (Osmodel.Sysreq.R_int (Array.length data))
  | Osmodel.Sysreq.Read { fd; count } -> do_read t fd count
  | Osmodel.Sysreq.Accept -> do_accept t
  | Osmodel.Sysreq.Ready_fd { index } -> do_ready_fd t index
  | Osmodel.Sysreq.Select -> do_select t

(** Symbolic argv for replay: capacities come from the report's shape;
    concrete bytes from the model, else seeded defaults. *)
let symbolic_args (t : t) : Interp.Inputs.t =
  let concrete_byte ~arg ~pos =
    let name = Concolic.Names.arg_byte ~arg ~pos in
    let id = Concolic.Names.arg_var t.vars ~arg ~pos in
    match Solver.Model.find_opt id t.model with
    | Some v -> v land 0xff
    | None -> default_for t name 0 255
  in
  Interp.Inputs.symbolic ~observe:t.observe ~vars:t.vars ~caps:t.shape.arg_caps
    ~concrete_byte ()
