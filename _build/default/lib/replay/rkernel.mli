(** The developer-site kernel used during replay.

    No real environment stands behind it: system-call results come either
    from the shipped syscall log (replayed verbatim, §3.3) or from symbolic
    models (a fresh variable per call occurrence, constrained to the call's
    feasible range), and all input data bytes are symbolic variables whose
    concrete values come from the current solver model, falling back to
    seeded per-variable defaults (the paper's "initial run with random
    inputs"). *)

type t

exception Log_mismatch of string
(** Record/replay divergence detected through the syscall log. *)

(** [active = false] starts the kernel gated (checkpointed replay): before
    {!activate}, loggable syscalls answer with plain defaults and no
    symbolic variables are created. *)
val create :
  ?observe:(int -> int -> unit) ->
  ?active:bool ->
  vars:Solver.Symvars.t ->
  model:Solver.Model.t ->
  shape:Concolic.Scenario.shape ->
  syscall_log:Instrument.Syscall_log.log option ->
  seed:int ->
  unit ->
  t

val activate : t -> unit

(** The kernel function handed to the evaluator during replay runs. *)
val kernel : t -> Interp.Kernel.t

(** Symbolic argv for replay: capacities from the report's shape; concrete
    bytes from the model, else seeded defaults. *)
val symbolic_args : t -> Interp.Inputs.t
