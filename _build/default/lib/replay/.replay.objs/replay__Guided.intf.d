lib/replay/guided.mli: Concolic Instrument Interp Minic Solver
