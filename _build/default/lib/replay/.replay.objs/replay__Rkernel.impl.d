lib/replay/rkernel.ml: Array Concolic Hashtbl Instrument Int Interp List Option Osmodel Printf Solver
