lib/replay/rkernel.mli: Concolic Instrument Interp Solver
