lib/replay/guided.ml: Branch_log Concolic Instrument Interp Minic Plan Report Rkernel Solver Unix
