(** Branch-log compression for transfer.

    §5.3: "Compression can be used to reduce the transfer time.  We observe a
    compression ratio of 10-20x using gzip."  Branch logs are extremely
    biased (loop branches repeat the same direction thousands of times), so
    even simple schemes do well.  We implement two stages:

    - run-length encoding over the bit stream (Elias-gamma-coded run
      lengths), which captures loop repetition;
    - an LZSS stage over the packed bytes (13-bit window offsets, 3-34 byte
      matches), which captures the cross-request repetition gzip exploits in
      the paper's measurement (one HTTP request's branch pattern closely
      resembles the previous request's);
    - a trivial fallback to the raw bytes when both would expand
      (adversarial logs).

    The best of the three encodings is chosen per log.

    The codec is used only for the *transfer-size* accounting (the paper
    compresses at report time, never online — online compression would add
    CPU overhead at the user site, §4). *)

(* Bit-stream writer/reader over Buffer/string. *)
module Bits = struct
  type writer = { buf : Buffer.t; mutable cur : int; mutable n : int }

  let writer () = { buf = Buffer.create 64; cur = 0; n = 0 }

  let put w bit =
    if bit then w.cur <- w.cur lor (1 lsl w.n);
    w.n <- w.n + 1;
    if w.n = 8 then begin
      Buffer.add_char w.buf (Char.chr w.cur);
      w.cur <- 0;
      w.n <- 0
    end

  let finish w =
    if w.n > 0 then Buffer.add_char w.buf (Char.chr w.cur);
    Buffer.contents w.buf

  type reader = { s : string; mutable pos : int }

  let reader s = { s; pos = 0 }

  let get r =
    let byte = Char.code r.s.[r.pos / 8] in
    let bit = byte land (1 lsl (r.pos mod 8)) <> 0 in
    r.pos <- r.pos + 1;
    bit
end

(* Elias gamma code for positive integers: unary length prefix + binary. *)
let put_gamma w n =
  assert (n >= 1);
  let nbits =
    let rec go k = if n lsr k = 0 then k else go (k + 1) in
    go 0
  in
  for _ = 1 to nbits - 1 do
    Bits.put w false
  done;
  for i = nbits - 1 downto 0 do
    Bits.put w (n land (1 lsl i) <> 0)
  done

let get_gamma r =
  let zeros = ref 0 in
  while not (Bits.get r) do
    incr zeros
  done;
  let n = ref 1 in
  for _ = 1 to !zeros do
    n := (!n lsl 1) lor if Bits.get r then 1 else 0
  done;
  !n

(* ------------------------------------------------------------------ *)
(* LZSS over the packed byte string *)

module Lzss = struct
  let min_match = 3
  let max_match = 34 (* 5-bit length field: 3 + 0..31 *)
  let window = 8191 (* 13-bit offset field *)

  let put_bits w v n =
    for i = n - 1 downto 0 do
      Bits.put w (v land (1 lsl i) <> 0)
    done

  let get_bits r n =
    let v = ref 0 in
    for _ = 1 to n do
      v := (!v lsl 1) lor if Bits.get r then 1 else 0
    done;
    !v

  (* hash chains over 3-byte prefixes; bounded probe depth *)
  let encode (s : string) : string =
    let n = String.length s in
    let w = Bits.writer () in
    let chains : (int, int list) Hashtbl.t = Hashtbl.create 1024 in
    let key i =
      Char.code s.[i]
      lor (Char.code s.[i + 1] lsl 8)
      lor (Char.code s.[i + 2] lsl 16)
    in
    let probe_depth = 32 in
    let find_match i =
      if i + min_match > n then None
      else
        let candidates =
          match Hashtbl.find_opt chains (key i) with Some l -> l | None -> []
        in
        let best = ref None in
        List.iteri
          (fun d j ->
            if d < probe_depth && i - j <= window then begin
              let len = ref 0 in
              while
                !len < max_match && i + !len < n && s.[j + !len] = s.[i + !len]
              do
                incr len
              done;
              match !best with
              | Some (blen, _) when blen >= !len -> ()
              | _ -> if !len >= min_match then best := Some (!len, i - j)
            end)
          candidates;
        !best
    in
    let add_pos i =
      if i + 2 < n then
        let k = key i in
        let cur = match Hashtbl.find_opt chains k with Some l -> l | None -> [] in
        Hashtbl.replace chains k (i :: cur)
    in
    let i = ref 0 in
    while !i < n do
      (match find_match !i with
      | Some (len, dist) ->
          Bits.put w true;
          put_bits w dist 13;
          put_bits w (len - min_match) 5;
          for k = !i to !i + len - 1 do
            add_pos k
          done;
          i := !i + len
      | None ->
          Bits.put w false;
          put_bits w (Char.code s.[!i]) 8;
          add_pos !i;
          incr i)
    done;
    Bits.finish w

  let decode (data : string) (nbytes : int) : string =
    let r = Bits.reader data in
    let out = Buffer.create nbytes in
    while Buffer.length out < nbytes do
      if Bits.get r then begin
        let dist = get_bits r 13 in
        let len = get_bits r 5 + min_match in
        let start = Buffer.length out - dist in
        for k = 0 to len - 1 do
          Buffer.add_char out (Buffer.nth out (start + k))
        done
      end
      else Buffer.add_char out (Char.chr (get_bits r 8))
    done;
    Buffer.contents out
end

type compressed = {
  data : string;
  nbits : int;  (** original bit count *)
  encoding : [ `Rle | `Lzss | `Raw ];
}

(** Compress a finished branch log. *)
let compress (log : Branch_log.log) : compressed =
  if log.nbits = 0 then { data = ""; nbits = 0; encoding = `Raw }
  else begin
    let w = Bits.writer () in
    (* first bit of the stream, then gamma-coded run lengths *)
    let first = Branch_log.get_bit log 0 in
    Bits.put w first;
    let run = ref 1 in
    for i = 1 to log.nbits - 1 do
      if Branch_log.get_bit log i = Branch_log.get_bit log (i - 1) then incr run
      else begin
        put_gamma w !run;
        run := 1
      end
    done;
    put_gamma w !run;
    let rle = Bits.finish w in
    let lz = Lzss.encode log.bytes in
    let candidates =
      [ (`Rle, rle); (`Lzss, lz); (`Raw, log.bytes) ]
    in
    let encoding, data =
      List.fold_left
        (fun (be, bd) (e, d) ->
          if String.length d < String.length bd then (e, d) else (be, bd))
        (List.hd candidates) (List.tl candidates)
    in
    { data; nbits = log.nbits; encoding }
  end

(** Decompress back to a branch log (identity round trip). *)
let decompress (c : compressed) : Branch_log.log =
  match c.encoding with
  | `Raw -> { Branch_log.bytes = c.data; nbits = c.nbits; flushes = 0 }
  | `Lzss ->
      {
        Branch_log.bytes = Lzss.decode c.data ((c.nbits + 7) / 8);
        nbits = c.nbits;
        flushes = 0;
      }
  | `Rle ->
      let r = Bits.reader c.data in
      let first = Bits.get r in
      let bits : bool list ref = ref [] in
      let produced = ref 0 in
      let cur = ref first in
      while !produced < c.nbits do
        let run = get_gamma r in
        for _ = 1 to run do
          bits := !cur :: !bits;
          incr produced
        done;
        cur := not !cur
      done;
      Branch_log.of_bits (List.rev !bits)

let size_bytes (c : compressed) = String.length c.data

(** Compression ratio (original/compressed); 1.0 for incompressible logs. *)
let ratio (log : Branch_log.log) (c : compressed) =
  if size_bytes c = 0 then 1.0
  else float_of_int (Branch_log.size_bytes log) /. float_of_int (size_bytes c)
