(** The branch log: one bit per executed instrumented branch.

    Matches the paper's implementation (§4): bits are packed into a 4 KB
    buffer "flushed to disk" when full (flushes are counted — their cost is
    part of the 17-instruction overhead figure), with no compression and no
    per-branch location data.  Replay therefore consumes bits strictly in
    execution order. *)

val default_buffer_bytes : int

module Writer : sig
  type t

  val create : ?buffer_bytes:int -> unit -> t
  val add_bit : t -> bool -> unit
  val nbits : t -> int
end

(** A finished log: the artifact shipped in a bug report. *)
type log = { bytes : string; nbits : int; flushes : int }

val finish : Writer.t -> log

(** Storage size in bytes of the shipped log. *)
val size_bytes : log -> int

(** Raises [Invalid_argument] when out of range. *)
val get_bit : log -> int -> bool

module Reader : sig
  type t

  val create : log -> t

  (** Next bit, or [None] when the log is exhausted (e.g. the crash happened
      mid-buffer and the tail was truncated). *)
  val next : t -> bool option

  val pos : t -> int
  val remaining : t -> int
end

(** Build a log directly from booleans (tests, synthetic logs). *)
val of_bits : ?buffer_bytes:int -> bool list -> log

val to_bits : log -> bool list
