lib/instrument/wire.ml: Array Branch_log Buffer Char Concolic Interp List Methods Minic Printf Report Result Schedule_log String Syscall_log
