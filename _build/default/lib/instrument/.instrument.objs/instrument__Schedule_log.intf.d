lib/instrument/schedule_log.mli: Osmodel
