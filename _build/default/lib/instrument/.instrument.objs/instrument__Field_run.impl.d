lib/instrument/field_run.ml: Branch_log Concolic Interp Option Osmodel Plan Schedule_log Syscall_log
