lib/instrument/branch_log.ml: Buffer Char List String
