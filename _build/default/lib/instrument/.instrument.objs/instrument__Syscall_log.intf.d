lib/instrument/syscall_log.mli:
