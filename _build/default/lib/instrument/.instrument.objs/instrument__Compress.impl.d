lib/instrument/compress.ml: Branch_log Buffer Char Hashtbl List String
