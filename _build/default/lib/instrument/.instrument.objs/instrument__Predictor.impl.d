lib/instrument/predictor.ml: Array Interp Plan
