lib/instrument/field_run.mli: Branch_log Concolic Interp Osmodel Plan Schedule_log Syscall_log
