lib/instrument/report.ml: Branch_log Concolic Field_run Interp Methods Plan Printf Schedule_log Syscall_log
