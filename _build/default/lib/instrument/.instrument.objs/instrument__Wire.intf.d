lib/instrument/wire.mli: Report
