lib/instrument/predictor.mli: Interp Plan
