lib/instrument/plan.mli: Methods Minic
