lib/instrument/syscall_log.ml: Array List Printf String
