lib/instrument/report.mli: Branch_log Concolic Field_run Interp Methods Plan Schedule_log Syscall_log
