lib/instrument/methods.mli:
