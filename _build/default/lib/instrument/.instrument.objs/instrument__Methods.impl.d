lib/instrument/methods.ml:
