lib/instrument/branch_log.mli:
