lib/instrument/schedule_log.ml: Array Interp List Osmodel
