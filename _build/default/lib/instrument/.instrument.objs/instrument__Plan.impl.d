lib/instrument/plan.ml: Array Label List Methods Minic Printf
