lib/instrument/compress.mli: Branch_log
