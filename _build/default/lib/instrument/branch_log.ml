(** The branch log: one bit per executed instrumented branch.

    Matches the paper's implementation (§4): bits are packed into a buffer
    of 4 KB which is "flushed to disk" when full (we count flushes — the
    flush cost is part of the 17-instruction overhead figure), with no
    compression and no per-branch location data. *)

let default_buffer_bytes = 4096

type t = {
  data : Buffer.t;  (** flushed, packed bytes *)
  mutable cur : int;  (** byte being filled *)
  mutable cur_bits : int;  (** bits in [cur] *)
  mutable nbits : int;
  mutable flushes : int;
  buffer_bytes : int;
  mutable pending_bytes : int;  (** bytes in the in-memory buffer *)
}

module Writer = struct
  type nonrec t = t

  let create ?(buffer_bytes = default_buffer_bytes) () =
    {
      data = Buffer.create 1024;
      cur = 0;
      cur_bits = 0;
      nbits = 0;
      flushes = 0;
      buffer_bytes;
      pending_bytes = 0;
    }

  let add_bit t (bit : bool) =
    if bit then t.cur <- t.cur lor (1 lsl t.cur_bits);
    t.cur_bits <- t.cur_bits + 1;
    t.nbits <- t.nbits + 1;
    if t.cur_bits = 8 then begin
      Buffer.add_char t.data (Char.chr t.cur);
      t.cur <- 0;
      t.cur_bits <- 0;
      t.pending_bytes <- t.pending_bytes + 1;
      if t.pending_bytes >= t.buffer_bytes then begin
        t.flushes <- t.flushes + 1;
        t.pending_bytes <- 0
      end
    end

  let nbits t = t.nbits
end

(** A finished log: the artifact shipped in a bug report. *)
type log = { bytes : string; nbits : int; flushes : int }

let finish (t : t) : log =
  if t.cur_bits > 0 then Buffer.add_char t.data (Char.chr t.cur);
  let flushes = t.flushes + if t.pending_bytes > 0 || t.cur_bits > 0 then 1 else 0 in
  { bytes = Buffer.contents t.data; nbits = t.nbits; flushes }

(** Storage size in bytes of the shipped log. *)
let size_bytes (l : log) = String.length l.bytes

let get_bit (l : log) i =
  if i < 0 || i >= l.nbits then invalid_arg "Branch_log.get_bit"
  else Char.code l.bytes.[i / 8] land (1 lsl (i mod 8)) <> 0

module Reader = struct
  type t = { log : log; mutable pos : int }

  let create log = { log; pos = 0 }

  (** Next bit, or [None] when the log is exhausted (e.g. the crash happened
      mid-buffer and the tail was truncated). *)
  let next t =
    if t.pos >= t.log.nbits then None
    else begin
      let b = get_bit t.log t.pos in
      t.pos <- t.pos + 1;
      Some b
    end

  let pos t = t.pos
  let remaining t = t.log.nbits - t.pos
end

(** Build a log directly from a list of booleans (tests, synthetic logs). *)
let of_bits ?(buffer_bytes = default_buffer_bytes) bits =
  let w = Writer.create ~buffer_bytes () in
  List.iter (Writer.add_bit w) bits;
  finish w

let to_bits (l : log) = List.init l.nbits (get_bit l)
