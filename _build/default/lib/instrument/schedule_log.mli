(** Thread-schedule logging — the second half of the paper's §6
    multithreading sketch ("the ordering of thread execution needs to be
    recorded as well").

    Decisions are only taken (and logged) when two or more threads are
    ready, so single-threaded programs ship an empty schedule log.  With
    cooperative scheduling points, a single interleaved branch bitvector
    plus the schedule carries the same information as per-thread traces. *)

type t

val create : unit -> t
val record : t -> int -> unit

type log = { tids : int array }

val finish : t -> log
val length : log -> int

(** Shipped size: one byte per decision. *)
val size_bytes : log -> int

(** Field-run scheduler: seeded random choice among the ready threads,
    recorded into [t]. *)
val recording_scheduler : rng:Osmodel.Rng.t -> t -> int list -> int

(** Replay scheduler: replays the logged decisions; raises
    {!Interp.Eval.Abort_run} when the logged thread is not ready (schedule
    divergence); falls back to round-robin when the log is exhausted. *)
val replaying_scheduler : log -> int list -> int
