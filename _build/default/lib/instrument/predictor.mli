(** The branch-prediction logging alternative the paper rejects (§4).

    Logging only mispredicted branches requires recording the branch
    location with each entry ("at least another 32 bits of storage per
    branch, probably ruining any savings").  This module implements two
    classic predictors over a branch-execution stream so the benchmark
    harness can quantify that argument. *)

type scheme =
  | Last_direction  (** predict the direction taken last time *)
  | Two_bit  (** 2-bit saturating counter per branch location *)

val scheme_to_string : scheme -> string

type t = {
  scheme : scheme;
  state : int array;
  mutable executions : int;
  mutable mispredictions : int;
}

val create : nbranches:int -> scheme -> t

(** Feed one branch execution; true if it was mispredicted (and would be
    logged under this scheme). *)
val observe : t -> int -> taken:bool -> bool

(** Log size under the misprediction scheme: 32 bits per entry. *)
val log_size_bytes : t -> int

val misprediction_rate : t -> float

(** Observation-only hooks running the predictor alongside a field run. *)
val hooks : ?inner:Interp.Eval.hooks -> t -> plan:Plan.t -> Interp.Eval.hooks
