(** The instrumentation methods compared in the paper (§2.3). *)

type t =
  | No_instrumentation  (** the [none] baseline configuration *)
  | Dynamic  (** branches labelled symbolic by dynamic analysis *)
  | Static  (** branches labelled symbolic by static analysis *)
  | Dynamic_static  (** the combined method *)
  | All_branches

let to_string = function
  | No_instrumentation -> "none"
  | Dynamic -> "dynamic"
  | Static -> "static"
  | Dynamic_static -> "dynamic+static"
  | All_branches -> "all branches"

let all = [ No_instrumentation; Dynamic; Static; Dynamic_static; All_branches ]

(** The four instrumented configurations (everything but [none]). *)
let instrumented = [ Dynamic; Static; Dynamic_static; All_branches ]
