(** Branch-log compression for transfer (§5.3: the paper observes 10-20x
    with gzip).

    Three encodings, best chosen per log: run-length over the bit stream
    (loop repetition), LZSS over the packed bytes (cross-request
    repetition, what gzip exploits), and raw fallback.  Transfer-size
    accounting only — the paper never compresses online. *)

type compressed = {
  data : string;
  nbits : int;  (** original bit count *)
  encoding : [ `Rle | `Lzss | `Raw ];
}

val compress : Branch_log.log -> compressed

(** Exact inverse of {!compress} (property-tested). *)
val decompress : compressed -> Branch_log.log

val size_bytes : compressed -> int

(** Original size / compressed size. *)
val ratio : Branch_log.log -> compressed -> float
