(** Wire format for bug reports.

    Line-oriented text with hex-encoded log bytes; everything in it is
    shippable by design (branch bits, numeric syscall results, schedule
    decisions, crash site, input shape — no input content exists to leak).
    Round-trip identity is property-tested. *)

val magic : string
val serialize : Report.t -> string

(** Tolerates unknown trailing fields; fails with a message on anything
    malformed (bad magic, bad hex, bit counts exceeding the log). *)
val deserialize : string -> (Report.t, string) result
