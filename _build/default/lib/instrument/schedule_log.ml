(** Thread-schedule logging — the second half of the paper's §6
    multithreading sketch ("the ordering of thread execution needs to be
    recorded as well").

    The field run's scheduler picks the next thread pseudo-randomly at each
    scheduling point (yield, join, system call) and records the choice; the
    replay scheduler replays those choices, aborting the run on divergence.
    Decisions are only taken (and logged) when two or more threads are
    ready, so single-threaded programs ship an empty schedule log.

    Note that with a recorded schedule a *single* interleaved branch
    bitvector suffices: between scheduling points execution is sequential,
    so bits attribute deterministically to the running thread.  (The paper
    proposes one trace per thread; with cooperative scheduling points the
    interleaved log carries the same information.) *)

type t = { mutable rev : int list; mutable n : int }

let create () = { rev = []; n = 0 }

let record t tid =
  t.rev <- tid :: t.rev;
  t.n <- t.n + 1

type log = { tids : int array }

let finish (t : t) : log = { tids = Array.of_list (List.rev t.rev) }

let length (l : log) = Array.length l.tids

(** Shipped size: one byte per decision (up to 256 threads). *)
let size_bytes (l : log) = Array.length l.tids

(** Field-run scheduler: seeded random choice among the ready threads,
    recorded into [t]. *)
let recording_scheduler ~(rng : Osmodel.Rng.t) (t : t) : int list -> int =
 fun ready ->
  let tid = List.nth ready (Osmodel.Rng.int rng (List.length ready)) in
  record t tid;
  tid

(** Replay scheduler: replays the logged decisions; raises
    {!Interp.Eval.Abort_run} when the logged thread is not ready (schedule
    divergence caused by a wrong input guess); falls back to round-robin
    when the log is exhausted (the crash truncated it). *)
let replaying_scheduler (l : log) : int list -> int =
  let pos = ref 0 in
  fun ready ->
    if !pos >= Array.length l.tids then List.hd ready
    else begin
      let tid = l.tids.(!pos) in
      incr pos;
      if List.mem tid ready then tid
      else raise (Interp.Eval.Abort_run "schedule divergence")
    end
