(** The instrumentation methods compared in the paper (§2.3). *)

type t =
  | No_instrumentation  (** the [none] baseline configuration *)
  | Dynamic  (** branches labelled symbolic by dynamic analysis *)
  | Static  (** branches labelled symbolic by static analysis *)
  | Dynamic_static  (** the combined method — the paper's winner *)
  | All_branches

val to_string : t -> string

(** All five configurations. *)
val all : t list

(** The four instrumented configurations (everything but [none]). *)
val instrumented : t list
