(** Selective system-call result logging (§2.3).

    Records the numeric results of the system calls whose outcomes would
    otherwise force the replay engine to search (read counts, select ready
    sets, accept results).  Input data itself is never logged. *)

type entry = { kind : string; value : int }

type t

val create : unit -> t
val record : t -> kind:string -> value:int -> unit

type log = { entries : entry array }

val finish : t -> log
val length : log -> int

(** Approximate shipped size: one tag byte + two value bytes per entry. *)
val size_bytes : log -> int

module Reader : sig
  type t

  val create : log -> t

  (** Next logged result for a call of [kind]; [Ok None] when exhausted; an
      [Error] on a kind mismatch (record/replay divergence). *)
  val next : t -> kind:string -> (int option, string) result

  val pos : t -> int
end
