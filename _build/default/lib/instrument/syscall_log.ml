(** Selective system-call result logging (§2.3).

    Records the *numeric results* of the system calls whose outcomes would
    otherwise force the replay engine to search (read counts, select ready
    sets, accept results).  Input data itself is never logged — privacy is
    the point of the whole design. *)

type entry = { kind : string; value : int }

type t = { mutable rev_entries : entry list; mutable n : int }

let create () = { rev_entries = []; n = 0 }

let record t ~kind ~value =
  t.rev_entries <- { kind; value } :: t.rev_entries;
  t.n <- t.n + 1

type log = { entries : entry array }

let finish (t : t) : log = { entries = Array.of_list (List.rev t.rev_entries) }

let length (l : log) = Array.length l.entries

(** Approximate shipped size: one byte of tag + two bytes of value. *)
let size_bytes (l : log) = 3 * Array.length l.entries

module Reader = struct
  type t = { log : log; mutable pos : int }

  let create log = { log; pos = 0 }

  (** Next logged result for a call of [kind]; [None] when exhausted.
      A kind mismatch means record/replay divergence: surfaced as an error
      so the replay engine can abort the run. *)
  let next t ~kind : (int option, string) result =
    if t.pos >= Array.length t.log.entries then Ok None
    else
      let e = t.log.entries.(t.pos) in
      if String.equal e.kind kind then begin
        t.pos <- t.pos + 1;
        Ok (Some e.value)
      end
      else
        Error
          (Printf.sprintf "syscall log mismatch: log has %s, replay called %s"
             e.kind kind)

  let pos t = t.pos
end
