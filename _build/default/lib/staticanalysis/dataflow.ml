(** Generic forward dataflow over structured MiniC ASTs.

    MiniC control flow is fully structured (if / while / break / continue /
    return), so instead of a CFG the framework interprets the tree
    abstractly: branch arms are joined, loop bodies iterate to a fixpoint
    (the "fixed-point dataflow algorithm" of the paper's Algorithm 1), and
    escaping paths (break/continue/return) are collected and joined where
    they land.

    The state type is supplied by the client as a join-semilattice; the
    framework guarantees termination whenever the client's lattice has
    finite height (joins eventually stop changing). *)

open Minic

module type DOMAIN = sig
  type t

  val join : t -> t -> t
  val equal : t -> t -> bool
end

module Make (D : DOMAIN) = struct
  type client = {
    transfer : D.t -> Ast.stmt -> D.t;
        (** straight-line statements only: [Sassign] and [Scall] *)
    on_branch : D.t -> Ast.branch -> Ast.expr -> unit;
        (** called with the state reaching a branch condition *)
    on_return : D.t -> Ast.expr option -> unit;
  }

  (* [None] = unreachable *)
  let join_opt a b =
    match a, b with
    | None, x | x, None -> x
    | Some a, Some b -> Some (D.join a b)

  let equal_opt a b =
    match a, b with
    | None, None -> true
    | Some a, Some b -> D.equal a b
    | None, Some _ | Some _, None -> false

  type loop_ctx = { mutable breaks : D.t option; mutable continues : D.t option }

  let rec stmt client (loop : loop_ctx option) (state : D.t option) (s : Ast.stmt)
      : D.t option =
    match state with
    | None -> None
    | Some st -> (
        match s.sdesc with
        | Sassign _ | Scall _ -> Some (client.transfer st s)
        | Sreturn e ->
            client.on_return st e;
            None
        | Sbreak ->
            (match loop with
            | Some l -> l.breaks <- join_opt l.breaks (Some st)
            | None -> ());
            None
        | Scontinue ->
            (match loop with
            | Some l -> l.continues <- join_opt l.continues (Some st)
            | None -> ());
            None
        | Sblock b -> block client loop state b
        | Sif (br, cond, then_b, else_b) ->
            client.on_branch st br cond;
            let t_out = block client loop (Some st) then_b in
            let e_out = block client loop (Some st) else_b in
            join_opt t_out e_out
        | Swhile (br, cond, body) ->
            let rec fix head iters =
              let ctx = { breaks = None; continues = None } in
              client.on_branch head br cond;
              let body_out = block client (Some ctx) (Some head) body in
              let next_head =
                match join_opt (Some head) (join_opt body_out ctx.continues) with
                | Some h -> h
                | None -> head
              in
              if D.equal next_head head || iters > 200 then
                (* exit state: condition-false path from the stable head,
                   joined with any break states *)
                join_opt (Some head) ctx.breaks
              else fix next_head (iters + 1)
            in
            fix st 0)

  and block client loop state (b : Ast.block) : D.t option =
    List.fold_left (fun st s -> stmt client loop st s) state b

  (** Analyze a function body from an entry state; returns the fall-through
      exit state ([None] if all paths return). *)
  let func client (entry : D.t) (body : Ast.block) : D.t option =
    block client None (Some entry) body

  let _ = equal_opt
end
