(** Static branch labelling: the paper's "static analysis" instrumentation
    input (§2.2).

    Combines {!Pointsto} and {!Taint} and produces a total labelling: every
    branch is either [Symbolic] or [Concrete] (static analysis leaves no
    branch unvisited).  Guarantee: every truly symbolic branch is labelled
    [Symbolic]; imprecision only ever adds spurious [Symbolic] labels. *)

open Minic

type result = {
  labels : Label.map;
  n_symbolic : int;
  n_concrete : int;
  contexts : int;  (** (function, context) pairs analysed *)
}

(** Analyze [prog].  [analyze_lib = false] reproduces the paper's uServer
    setup: library code is not analysed and all its branches are
    conservatively labelled symbolic. *)
let analyze ?(analyze_lib = true) (prog : Program.t) : result =
  let pta = Pointsto.analyze prog in
  let taint = Taint.analyze ~cfg:{ Taint.analyze_lib } prog pta in
  let n = Program.nbranches prog in
  let labels = Label.make ~nbranches:n Label.Concrete in
  for bid = 0 to n - 1 do
    if Taint.is_branch_symbolic taint bid then labels.(bid) <- Label.Symbolic
  done;
  {
    labels;
    n_symbolic = Label.count labels Label.Symbolic;
    n_concrete = Label.count labels Label.Concrete;
    contexts = Taint.contexts_analyzed taint;
  }
