(** Abstract locations for the static analyses.

    Arrays collapse to a single abstract cell and locals are
    context-insensitive (one location per function/variable pair) — the two
    standard Andersen-style coarsenings.  They are also the deliberate
    sources of over-approximation that make the paper's [static] method mark
    some concrete branches symbolic (§2.2). *)

type t =
  | Global of string
  | Local of string * string  (** function name, variable name *)
  | Strlit of string  (** a string literal *)
  | Ret of string  (** the return cell of a function *)

let compare = Stdlib.compare

let to_string = function
  | Global g -> "g:" ^ g
  | Local (f, v) -> Printf.sprintf "l:%s.%s" f v
  | Strlit s -> Printf.sprintf "s:%S" s
  | Ret f -> "r:" ^ f

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)

let set_to_string s =
  Set.elements s |> List.map to_string |> String.concat ", "
