(** Interprocedural symbolic-variable propagation (the paper's Algorithms 1
    and 2).

    Identifies the sources of input (argv via [arg], I/O via [read], and
    the return values of input-returning builtins), propagates "symbolic"
    taint through assignments, calls and memory via the {!Pointsto} results,
    and labels every branch whose condition may read tainted data.

    Structure follows the paper:
    - a worklist of (function, context) pairs, where a context records which
      parameters hold symbolic *values* (the footnote's "particular
      combination of symbolic and concrete parameters");
    - per-(function, context) summaries recording whether the return value
      is symbolic;
    - memory reached through pointers/arrays and globals is tracked in a
      single monotone tainted-location set, resolved with points-to
      information (weak updates only — one of the imprecision sources the
      paper attributes to its static method).

    When [analyze_lib] is false, library functions are not analysed: calls
    into them get a conservative summary and all their branches are labelled
    symbolic, reproducing §5.3's treatment of uClibc. *)

open Minic

type ctx = bool list  (** value-taint of each parameter *)

module Summary_key = struct
  type t = string * ctx

  let compare = Stdlib.compare
end

module Smap = Map.Make (Summary_key)

type config = { analyze_lib : bool }

let default_config = { analyze_lib = true }

type t = {
  prog : Program.t;
  pta : Pointsto.t;
  cfg : config;
  mutable tainted : Aloc.Set.t;  (** monotone: arrays, pointees, globals *)
  mutable summaries : bool Smap.t;  (** (f, ctx) -> return value tainted *)
  mutable dependents : Summary_key.t list Smap.t;  (** callee -> callers *)
  mutable queued : Summary_key.t list;
  mutable in_queue : unit Smap.t;
  symbolic_branches : bool array;  (** by branch id *)
}

(* ------------------------------------------------------------------ *)
(* Local state domain: tainted scalar locals of the function under
   analysis.  Everything else lives in [t.tainted]. *)

module Dom = struct
  type t = Aloc.Set.t

  let join = Aloc.Set.union
  let equal = Aloc.Set.equal
end

module Flow = Dataflow.Make (Dom)

let global_tainted t a = Aloc.Set.mem a t.tainted

let mark_global t a =
  if not (Aloc.Set.mem a t.tainted) then t.tainted <- Aloc.Set.add a t.tainted

(* Taint cells reached through pointers, arrays or globals: these must be
   visible to every function (a callee reads a caller's buffer through its
   points-to set), so they go into the monotone global set. *)
let taint_globally t cells = Aloc.Set.iter (mark_global t) cells

(* Taint the target of a direct assignment.  Only a scalar local of the
   current function stays in the flow-sensitive state; everything reached
   through memory goes global. *)
let taint_lval t ~fn (state : Dom.t) (lv : Ast.lval) : Dom.t =
  match lv with
  | Ast.Var x -> (
      match Pointsto.aloc_of t.pta ~fn x with
      | Aloc.Local (f, _) as a when String.equal f fn -> Aloc.Set.add a state
      | a ->
          mark_global t a;
          state)
  | Ast.Index _ | Ast.Star _ ->
      taint_globally t (Pointsto.denotes_of t.pta ~fn lv);
      state

let cell_tainted t state a = Aloc.Set.mem a state || global_tainted t a

(* Value-taint of an expression: true if evaluating it may read symbolic
   data.  Addresses themselves are never symbolic. *)
let rec expr_tainted t ~fn state (e : Ast.expr) : bool =
  match e with
  | Cint _ | Cstr _ | Addr _ -> false
  | Lval lv ->
      Aloc.Set.exists (cell_tainted t state) (Pointsto.denotes_of t.pta ~fn lv)
  | Unop (_, a) -> expr_tainted t ~fn state a
  | Binop (_, a, b) -> expr_tainted t ~fn state a || expr_tainted t ~fn state b
  | Ecall _ -> true (* normalised ASTs have no expression calls; be safe *)

(* Argument taint as used for contexts: symbolic value. *)
let arg_bits t ~fn state args = List.map (expr_tainted t ~fn state) args

(* Does any argument carry taint either by value or through its pointees?
   Used for conservative (library / unknown) summaries. *)
let arg_reaches_taint t ~fn state arg =
  expr_tainted t ~fn state arg
  || Aloc.Set.exists (cell_tainted t state) (Pointsto.points_of t.pta ~fn arg)

(* ------------------------------------------------------------------ *)
(* Worklist *)

let enqueue t key =
  if not (Smap.mem key t.in_queue) then begin
    t.in_queue <- Smap.add key () t.in_queue;
    t.queued <- key :: t.queued
  end

let add_dependent t ~callee ~caller =
  let cur = match Smap.find_opt callee t.dependents with Some l -> l | None -> [] in
  if not (List.mem caller cur) then
    t.dependents <- Smap.add callee (caller :: cur) t.dependents

let summary t key = match Smap.find_opt key t.summaries with Some b -> b | None -> false

let set_summary t key v =
  let old = summary t key in
  if v && not old then begin
    t.summaries <- Smap.add key true t.summaries;
    (* return value became symbolic: recompute callers *)
    match Smap.find_opt key t.dependents with
    | Some callers -> List.iter (enqueue t) callers
    | None -> ()
  end
  else if not (Smap.mem key t.summaries) then
    t.summaries <- Smap.add key v t.summaries

(* ------------------------------------------------------------------ *)
(* Transfer functions *)

let apply_builtin t ~fn state lvo name args =
  match Builtin.find name with
  | None -> state
  | Some b ->
      (* pointer arguments receiving input: taint their pointees *)
      List.iter
        (fun i ->
          match List.nth_opt args i with
          | Some arg -> taint_globally t (Pointsto.points_of t.pta ~fn arg)
          | None -> ())
        b.taints_args;
      (* input-returning builtins taint their result *)
      match lvo, b.returns_input with
      | Some lv, true -> taint_lval t ~fn state lv
      | _ -> state

let conservative_lib_call t ~fn state lvo args =
  let any = List.exists (arg_reaches_taint t ~fn state) args in
  if not any then state
  else begin
    (* assume the callee may copy input anywhere reachable from its
       pointer arguments (strcpy-style) and return input *)
    List.iter
      (fun arg -> taint_globally t (Pointsto.points_of t.pta ~fn arg))
      args;
    match lvo with
    | Some lv -> taint_lval t ~fn state lv
    | None -> state
  end

let apply_call t ~fn ~caller_key state lvo callee args =
  if Builtin.is_builtin callee then apply_builtin t ~fn state lvo callee args
  else
    match Program.find_func t.prog callee with
    | None -> state
    | Some g when g.fis_lib && not t.cfg.analyze_lib ->
        conservative_lib_call t ~fn state lvo args
    | Some _ ->
        let bits = arg_bits t ~fn state args in
        let key = (callee, bits) in
        add_dependent t ~callee:key ~caller:caller_key;
        if not (Smap.mem key t.summaries) then begin
          t.summaries <- Smap.add key false t.summaries;
          enqueue t key
        end;
        if summary t key then
          match lvo with
          | Some lv -> taint_lval t ~fn state lv
          | None -> state
        else state

let transfer t ~fn ~caller_key (state : Dom.t) (s : Ast.stmt) : Dom.t =
  match s.sdesc with
  | Sassign (lv, e) ->
      if expr_tainted t ~fn state e then taint_lval t ~fn state lv
      else begin
        (* strong update only for a direct local scalar assignment *)
        match lv with
        | Ast.Var x -> (
            match Pointsto.aloc_of t.pta ~fn x with
            | Aloc.Local (f, _) as a
              when String.equal f fn && not (global_tainted t a) ->
                Aloc.Set.remove a state
            | _ -> state)
        | Ast.Index _ | Ast.Star _ -> state
      end
  | Scall (lvo, callee, args) -> apply_call t ~fn ~caller_key state lvo callee args
  | Sif _ | Swhile _ | Sreturn _ | Sbreak | Scontinue | Sblock _ -> state

(* ------------------------------------------------------------------ *)
(* Per-(function, context) analysis *)

let analyze_one t ((fname, bits) as key) =
  match Program.find_func t.prog fname with
  | None -> ()
  | Some f ->
      let entry =
        List.fold_left2
          (fun st (p, _) bit ->
            if bit then Aloc.Set.add (Aloc.Local (fname, p)) st else st)
          Aloc.Set.empty f.fparams
          (if List.length bits = List.length f.fparams then bits
           else List.map (fun _ -> false) f.fparams)
      in
      let ret_tainted = ref (summary t key) in
      let client =
        {
          Flow.transfer = (fun st s -> transfer t ~fn:fname ~caller_key:key st s);
          on_branch =
            (fun st br cond ->
              if br.bid >= 0 && expr_tainted t ~fn:fname st cond then
                t.symbolic_branches.(br.bid) <- true);
          on_return =
            (fun st e ->
              match e with
              | Some e when expr_tainted t ~fn:fname st e -> ret_tainted := true
              | _ -> ());
        }
      in
      ignore (Flow.func client entry f.fbody);
      set_summary t key !ret_tainted

(** Run the whole-program taint analysis from [main]. *)
let analyze ?(cfg = default_config) (prog : Program.t) (pta : Pointsto.t) : t =
  let t =
    {
      prog;
      pta;
      cfg;
      tainted = Aloc.Set.empty;
      summaries = Smap.empty;
      dependents = Smap.empty;
      queued = [];
      in_queue = Smap.empty;
      symbolic_branches = Array.make (Program.nbranches prog) false;
    }
  in
  let main_key = ("main", []) in
  t.summaries <- Smap.add main_key false t.summaries;
  enqueue t main_key;
  let iterations = ref 0 in
  let rec drain last_tainted =
    match t.queued with
    | [] ->
        (* the global tainted set may have grown during the last sweep;
           if so, re-analyse everything once more *)
        if
          not (Aloc.Set.equal last_tainted t.tainted)
          && !iterations < 10_000
        then begin
          let snapshot = t.tainted in
          Smap.iter (fun key _ -> enqueue t key) t.summaries;
          drain snapshot
        end
    | key :: rest ->
        t.queued <- rest;
        t.in_queue <- Smap.remove key t.in_queue;
        incr iterations;
        if !iterations < 10_000 then begin
          analyze_one t key;
          drain last_tainted
        end
  in
  drain t.tainted;
  (* §5.3: with analyze_lib = false every library branch is treated as
     symbolic by the static analysis *)
  if not t.cfg.analyze_lib then
    Array.iter
      (fun (b : Number.info) ->
        if b.bis_lib then t.symbolic_branches.(b.bid) <- true)
      prog.branches;
  t

let is_branch_symbolic t bid = t.symbolic_branches.(bid)

let contexts_analyzed t = Smap.cardinal t.summaries
