(** Static branch labelling: the paper's "static analysis" instrumentation
    input (§2.2).

    Combines Andersen points-to analysis with interprocedural taint
    propagation (Algorithms 1-2) and produces a total labelling: every
    branch is [Symbolic] or [Concrete].  Guarantee: every truly symbolic
    branch is labelled [Symbolic]; imprecision only ever adds spurious
    [Symbolic] labels (the over-approximation is property-tested against
    dynamic analysis). *)

type result = {
  labels : Minic.Label.map;
  n_symbolic : int;
  n_concrete : int;
  contexts : int;  (** (function, context) pairs analysed *)
}

(** Analyze [prog].  [analyze_lib = false] reproduces the paper's uServer
    setup (§5.3): library code is not analysed and all its branches are
    conservatively labelled symbolic. *)
val analyze : ?analyze_lib:bool -> Minic.Program.t -> result
