(** Interprocedural symbolic-variable propagation (the paper's Algorithms 1
    and 2).

    A worklist of (function, context) pairs — a context records which
    parameters hold symbolic values (the paper's footnote about revisiting
    functions per combination of symbolic/concrete parameters) — with
    per-context return summaries; memory reached through pointers, arrays
    and globals is tracked in a monotone tainted-location set resolved with
    {!Pointsto} (weak updates: one of the paper's imprecision sources).

    With [analyze_lib = false], library functions get a conservative
    summary and all their branches are labelled symbolic (§5.3). *)

type ctx = bool list  (** value-taint of each parameter *)

type config = { analyze_lib : bool }

val default_config : config

type t

(** Run the whole-program analysis from [main] to a fixpoint. *)
val analyze : ?cfg:config -> Minic.Program.t -> Pointsto.t -> t

(** May the branch's condition read input-derived data? *)
val is_branch_symbolic : t -> int -> bool

(** Number of (function, context) pairs analysed. *)
val contexts_analyzed : t -> int
