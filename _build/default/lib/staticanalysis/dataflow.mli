(** Generic forward dataflow over structured MiniC ASTs.

    MiniC control flow is fully structured, so instead of a CFG the
    framework interprets the tree abstractly: branch arms are joined, loop
    bodies iterate to a fixpoint (the paper's "fixed-point dataflow
    algorithm"), and escaping paths (break/continue/return) are collected
    where they land.  Termination is guaranteed for finite-height client
    lattices. *)

module type DOMAIN = sig
  type t

  val join : t -> t -> t
  val equal : t -> t -> bool
end

module Make (D : DOMAIN) : sig
  type client = {
    transfer : D.t -> Minic.Ast.stmt -> D.t;
        (** straight-line statements only ([Sassign] and [Scall]) *)
    on_branch : D.t -> Minic.Ast.branch -> Minic.Ast.expr -> unit;
        (** called with the state reaching a branch condition *)
    on_return : D.t -> Minic.Ast.expr option -> unit;
  }

  (** Analyze a function body from an entry state; returns the fall-through
      exit state ([None] if no path falls through). *)
  val func : client -> D.t -> Minic.Ast.block -> D.t option
end
