lib/staticanalysis/aloc.mli: Map Set
