lib/staticanalysis/static.mli: Minic
