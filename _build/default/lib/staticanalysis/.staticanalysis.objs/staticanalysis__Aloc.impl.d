lib/staticanalysis/aloc.ml: List Map Printf Set Stdlib String
