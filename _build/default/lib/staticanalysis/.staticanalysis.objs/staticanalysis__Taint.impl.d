lib/staticanalysis/taint.ml: Aloc Array Ast Builtin Dataflow List Map Minic Number Pointsto Program Stdlib String
