lib/staticanalysis/taint.mli: Minic Pointsto
