lib/staticanalysis/pointsto.ml: Aloc Ast Hashtbl List Minic Program String Types
