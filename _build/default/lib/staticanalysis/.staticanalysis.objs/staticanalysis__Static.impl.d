lib/staticanalysis/static.ml: Array Label Minic Pointsto Program Taint
