lib/staticanalysis/dataflow.mli: Minic
