lib/staticanalysis/pointsto.mli: Aloc Minic
