lib/staticanalysis/dataflow.ml: Ast List Minic
