(** Abstract locations for the static analyses.

    Arrays collapse to a single abstract cell and locals are
    context-insensitive — the standard Andersen coarsenings, and the
    deliberate sources of over-approximation that make the paper's [static]
    method mark some concrete branches symbolic (§2.2). *)

type t =
  | Global of string
  | Local of string * string  (** function name, variable name *)
  | Strlit of string  (** a string literal *)
  | Ret of string  (** the return cell of a function *)

val compare : t -> t -> int
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val set_to_string : Set.t -> string
