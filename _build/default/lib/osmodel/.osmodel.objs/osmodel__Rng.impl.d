lib/osmodel/rng.ml: Array Int64
