lib/osmodel/sysreq.ml: Array Format
