lib/osmodel/world.ml: Array Char Hashtbl Int List Printf Rng String Sysreq
