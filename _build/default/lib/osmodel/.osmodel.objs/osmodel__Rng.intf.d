lib/osmodel/rng.mli:
