lib/osmodel/sysreq.mli: Format
