lib/osmodel/world.mli: Hashtbl Rng Sysreq
