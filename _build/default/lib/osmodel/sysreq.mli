(** System-call requests and results exchanged between the interpreter and
    a kernel implementation.

    Data payloads are byte arrays (values 0-255).  A kernel is any
    [req -> res] function: the simulated OS, a log-replaying kernel, or the
    symbolic models used during replay (§3.3). *)

type req =
  | Read of { fd : int; count : int }
  | Write of { fd : int; data : int array }
  | Open of { path : string; flags : int }
  | Close of { fd : int }
  | Select
  | Ready_fd of { index : int }
  | Accept
  | Listen of { port : int }

type res =
  | R_int of int  (** plain numeric result (-1 for error) *)
  | R_read of { count : int; data : int array }

val req_name : req -> string

(** The numeric outcome a C program sees as return value. *)
val res_int : res -> int

(** Whether results of this request kind are worth logging for replay
    (read counts, select ready sets, accept results — §2.3). *)
val loggable : req -> bool

val pp_req : Format.formatter -> req -> unit
