(** System-call requests and results exchanged between the interpreter and a
    kernel implementation.

    Data payloads are byte arrays ([int array] with values 0-255).  A kernel
    is any [req -> res] function: the simulated OS ({!World}), a
    log-replaying kernel, or the symbolic models used during replay without
    system-call logs (§3.3). *)

type req =
  | Read of { fd : int; count : int }
  | Write of { fd : int; data : int array }
  | Open of { path : string; flags : int }
  | Close of { fd : int }
  | Select
  | Ready_fd of { index : int }
  | Accept
  | Listen of { port : int }

type res =
  | R_int of int  (** plain numeric result (or -1 for error) *)
  | R_read of { count : int; data : int array }
      (** result of [Read]: [count] bytes actually transferred *)

let req_name = function
  | Read _ -> "read"
  | Write _ -> "write"
  | Open _ -> "open"
  | Close _ -> "close"
  | Select -> "select"
  | Ready_fd _ -> "ready_fd"
  | Accept -> "accept"
  | Listen _ -> "listen"

(** The numeric outcome of a result: what a C program sees as return value. *)
let res_int = function R_int n -> n | R_read r -> r.count

(** Whether results of this request kind are worth logging for replay (the
    paper logs "system calls that can produce a large number of possible
    outcomes during replay": read counts, select ready sets, accept). *)
let loggable = function
  | Read _ | Select | Ready_fd _ | Accept -> true
  | Write _ | Open _ | Close _ | Listen _ -> false

let pp_req fmt r =
  match r with
  | Read { fd; count } -> Format.fprintf fmt "read(fd=%d, n=%d)" fd count
  | Write { fd; data } -> Format.fprintf fmt "write(fd=%d, n=%d)" fd (Array.length data)
  | Open { path; flags } -> Format.fprintf fmt "open(%S, %d)" path flags
  | Close { fd } -> Format.fprintf fmt "close(%d)" fd
  | Select -> Format.fprintf fmt "select()"
  | Ready_fd { index } -> Format.fprintf fmt "ready_fd(%d)" index
  | Accept -> Format.fprintf fmt "accept()"
  | Listen { port } -> Format.fprintf fmt "listen(%d)" port
