(** The simulated operating system.

    An in-memory filesystem plus a connection model with seeded
    non-determinism, standing in for the Linux kernel the paper's programs
    run on.  The non-determinism the paper cares about is faithfully
    exposed: [read] on a socket returns a *random partial* byte count,
    [select] returns ready descriptors in a *random order*, and connections
    *arrive over time* so [accept] may return -1.

    Everything is driven by {!Rng}, so a (config, seed) pair fully
    determines kernel behaviour — which is what makes recorded field runs
    replayable in tests. *)

let bytes_of_string s = Array.init (String.length s) (fun i -> Char.code s.[i])

let string_of_bytes a =
  String.init (Array.length a) (fun i -> Char.chr (a.(i) land 0xff))

type conn = {
  conn_id : int;
  payload : int array;  (** bytes the client will send *)
  mutable sent : int;  (** bytes already delivered to the server *)
  mutable outbox : int list;  (** bytes written by the server (reversed) *)
  mutable closed : bool;
}

type fd_state =
  | Fd_file of { name : string; mutable pos : int }
  | Fd_conn of conn
  | Fd_listener
  | Fd_stdout

type config = {
  seed : int;
  files : (string * string) list;  (** path → contents *)
  conns : string list;  (** payload of each client connection, arrival order *)
  max_chunk : int;  (** max bytes a socket [read] delivers at once *)
  arrivals_per_select : int;  (** max new connections becoming ready per select *)
}

let default_config =
  { seed = 42; files = []; conns = []; max_chunk = 64; arrivals_per_select = 2 }

type t = {
  cfg : config;
  rng : Rng.t;
  files : (string, int array) Hashtbl.t;
  fds : (int, fd_state) Hashtbl.t;
  mutable next_fd : int;
  mutable pending : conn list;  (** connections not yet arrived *)
  mutable backlog : conn list;  (** arrived, not yet accepted (FIFO) *)
  mutable ready : int list;  (** fds returned by the last select *)
  mutable stdout : int list;  (** bytes written to fd 1 (reversed) *)
  mutable syscall_count : int;
  mutable last_read : (string * int) option;
      (** provenance of the last successful [Read]: stream name and starting
          offset within it.  Streams are named ["file:<path>"] and
          ["net<conn_id>"]; concolic stages use these names to attach stable
          symbolic variables to input bytes. *)
}

let create (cfg : config) : t =
  let files = Hashtbl.create 16 in
  List.iter (fun (p, c) -> Hashtbl.replace files p (bytes_of_string c)) cfg.files;
  let pending =
    List.mapi
      (fun i payload ->
        { conn_id = i; payload = bytes_of_string payload; sent = 0; outbox = [];
          closed = false })
      cfg.conns
  in
  let fds = Hashtbl.create 16 in
  Hashtbl.replace fds 1 Fd_stdout;
  { cfg; rng = Rng.create cfg.seed; files; fds; next_fd = 4; pending;
    backlog = []; ready = []; stdout = []; syscall_count = 0; last_read = None }

let stdout_string t = string_of_bytes (Array.of_list (List.rev t.stdout))

let conn_outbox_string (c : conn) =
  string_of_bytes (Array.of_list (List.rev c.outbox))

(** All connections (for inspecting server responses in tests/benches). *)
let connections t =
  Hashtbl.fold
    (fun _ st acc -> match st with Fd_conn c -> c :: acc | _ -> acc)
    t.fds []
  |> List.sort (fun a b -> Int.compare a.conn_id b.conn_id)

let alloc_fd t st =
  let fd = t.next_fd in
  t.next_fd <- fd + 1;
  Hashtbl.replace t.fds fd st;
  fd

(* Move 0..arrivals_per_select pending connections into the backlog. *)
let arrive t =
  let n =
    match t.pending with
    | [] -> 0
    | _ -> Rng.range t.rng 0 t.cfg.arrivals_per_select
  in
  for _ = 1 to n do
    match t.pending with
    | [] -> ()
    | c :: rest ->
        t.pending <- rest;
        t.backlog <- t.backlog @ [ c ]
  done

let do_select t =
  arrive t;
  (* Ready: any accepted connection with undelivered payload; plus the
     listener (fd 3) if the backlog is non-empty. *)
  let conn_fds =
    Hashtbl.fold
      (fun fd st acc ->
        match st with
        | Fd_conn c when (not c.closed) && c.sent < Array.length c.payload ->
            fd :: acc
        | _ -> acc)
      t.fds []
  in
  let arr = Array.of_list conn_fds in
  Rng.shuffle t.rng arr;
  let ready = Array.to_list arr in
  let ready = if t.backlog <> [] then ready @ [ 3 ] else ready in
  t.ready <- ready;
  Sysreq.R_int (List.length ready)

let do_read t fd count =
  match Hashtbl.find_opt t.fds fd with
  | None -> Sysreq.R_int (-1)
  | Some Fd_stdout | Some Fd_listener -> Sysreq.R_int (-1)
  | Some (Fd_file f) -> (
      match Hashtbl.find_opt t.files f.name with
      | None -> Sysreq.R_int (-1)
      | Some data ->
          let avail = Array.length data - f.pos in
          let n = max 0 (min count avail) in
          let chunk = Array.sub data f.pos n in
          t.last_read <- Some ("file:" ^ f.name, f.pos);
          f.pos <- f.pos + n;
          Sysreq.R_read { count = n; data = chunk })
  | Some (Fd_conn c) ->
      if c.closed then Sysreq.R_int (-1)
      else
        let avail = Array.length c.payload - c.sent in
        if avail = 0 then Sysreq.R_read { count = 0; data = [||] }
        else
          (* partial read: the kernel delivers a random chunk *)
          let cap = min (min count avail) t.cfg.max_chunk in
          let n = if cap <= 1 then cap else Rng.range t.rng 1 cap in
          let chunk = Array.sub c.payload c.sent n in
          t.last_read <- Some (Printf.sprintf "net%d" c.conn_id, c.sent);
          c.sent <- c.sent + n;
          Sysreq.R_read { count = n; data = chunk }

let do_write t fd data =
  match Hashtbl.find_opt t.fds fd with
  | Some Fd_stdout ->
      Array.iter (fun b -> t.stdout <- b :: t.stdout) data;
      Sysreq.R_int (Array.length data)
  | Some (Fd_conn c) when not c.closed ->
      Array.iter (fun b -> c.outbox <- b :: c.outbox) data;
      Sysreq.R_int (Array.length data)
  | Some (Fd_file f) ->
      (* append semantics for simplicity *)
      let old =
        match Hashtbl.find_opt t.files f.name with Some d -> d | None -> [||]
      in
      Hashtbl.replace t.files f.name (Array.append old data);
      Sysreq.R_int (Array.length data)
  | Some Fd_listener | Some Fd_conn _ | None -> Sysreq.R_int (-1)

let handle (t : t) (req : Sysreq.req) : Sysreq.res =
  t.syscall_count <- t.syscall_count + 1;
  match req with
  | Listen { port = _ } ->
      Hashtbl.replace t.fds 3 Fd_listener;
      Sysreq.R_int 3
  | Select -> do_select t
  | Ready_fd { index } -> (
      match List.nth_opt t.ready index with
      | Some fd -> Sysreq.R_int fd
      | None -> Sysreq.R_int (-1))
  | Accept -> (
      match t.backlog with
      | [] -> Sysreq.R_int (-1)
      | c :: rest ->
          t.backlog <- rest;
          Sysreq.R_int (alloc_fd t (Fd_conn c)))
  | Open { path; flags = _ } ->
      if Hashtbl.mem t.files path then
        Sysreq.R_int (alloc_fd t (Fd_file { name = path; pos = 0 }))
      else Sysreq.R_int (-1)
  | Close { fd } -> (
      match Hashtbl.find_opt t.fds fd with
      | Some (Fd_conn c) ->
          c.closed <- true;
          Hashtbl.remove t.fds fd;
          Sysreq.R_int 0
      | Some _ ->
          Hashtbl.remove t.fds fd;
          Sysreq.R_int 0
      | None -> Sysreq.R_int (-1))
  | Read { fd; count } -> do_read t fd count
  | Write { fd; data } -> do_write t fd data

(** A kernel function backed by a fresh world. *)
let kernel (cfg : config) : t * (Sysreq.req -> Sysreq.res) =
  let t = create cfg in
  (t, handle t)
