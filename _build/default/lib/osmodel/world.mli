(** The simulated operating system.

    An in-memory filesystem plus a connection model with seeded
    non-determinism, standing in for the kernel the paper's programs run
    on.  The non-determinism the paper cares about is faithfully exposed:
    [read] on a socket returns a random partial byte count, [select]
    returns ready descriptors in a random order, and connections arrive
    over time so [accept] may return -1.  A (config, seed) pair fully
    determines kernel behaviour. *)

val bytes_of_string : string -> int array
val string_of_bytes : int array -> string

type conn = {
  conn_id : int;
  payload : int array;  (** bytes the client will send *)
  mutable sent : int;
  mutable outbox : int list;  (** bytes written by the server (reversed) *)
  mutable closed : bool;
}

type config = {
  seed : int;
  files : (string * string) list;  (** path → contents *)
  conns : string list;  (** payload of each client connection, arrival order *)
  max_chunk : int;  (** max bytes a socket [read] delivers at once *)
  arrivals_per_select : int;  (** max new connections becoming ready per select *)
}

val default_config : config

type fd_state =
  | Fd_file of { name : string; mutable pos : int }
  | Fd_conn of conn
  | Fd_listener
  | Fd_stdout

type t = {
  cfg : config;
  rng : Rng.t;
  files : (string, int array) Hashtbl.t;
  fds : (int, fd_state) Hashtbl.t;
  mutable next_fd : int;
  mutable pending : conn list;
  mutable backlog : conn list;
  mutable ready : int list;
  mutable stdout : int list;
  mutable syscall_count : int;
  mutable last_read : (string * int) option;
      (** provenance of the last successful [Read]: stream name
          (["file:<path>"] or ["net<conn_id>"]) and starting offset —
          concolic stages use these to attach stable symbolic variables to
          input bytes *)
}

val create : config -> t

(** Text written to fd 1. *)
val stdout_string : t -> string

val conn_outbox_string : conn -> string

(** All connections, by id (for inspecting server responses). *)
val connections : t -> conn list

(** Handle one system call. *)
val handle : t -> Sysreq.req -> Sysreq.res

(** A fresh world plus its handler function. *)
val kernel : config -> t * (Sysreq.req -> Sysreq.res)
