(** Deterministic pseudo-random number generator (64-bit LCG).

    Drives every source of simulated-kernel non-determinism (partial read
    sizes, ready-set ordering, connection arrival, the field thread
    scheduler) so that a (config, seed) pair fully determines behaviour. *)

type t

val create : int -> t

(** Uniform int in [0, bound); raises [Invalid_argument] on bound <= 0. *)
val int : t -> int -> int

(** Uniform int in [lo, hi] inclusive. *)
val range : t -> int -> int -> int

val bool : t -> bool

(** Fisher-Yates shuffle (in place). *)
val shuffle : t -> 'a array -> unit
