(** A run environment: program, arguments and simulated-OS configuration.

    A scenario describes everything outside the program itself — for a field
    run it is the user's actual input; for pre-deployment dynamic analysis
    it is a developer-chosen test environment; for replay it provides only
    the input *shape* (argument count and buffer caps, connection count),
    because the user's input contents are private and never leave the user
    site. *)

type t = {
  name : string;
  prog : Minic.Program.t;
  args : string list;  (** concrete argv *)
  world : Osmodel.World.config;
  max_steps : int;
}

let make ?(name = "scenario") ?(args = []) ?(world = Osmodel.World.default_config)
    ?(max_steps = 5_000_000) prog =
  { name; prog; args; world; max_steps }

(** The input shape a bug report may disclose (paper §1: no user input
    contents are ever shipped): argument buffer capacities and the number
    and size bound of input streams. *)
type shape = {
  arg_caps : int list;  (** per-argument buffer capacity (bytes) *)
  n_conns : int;
  conn_cap : int;  (** max bytes per connection payload *)
  file_names : string list;
  file_cap : int;
}

let shape_of ?(slack = 1) t : shape =
  {
    arg_caps = List.map (fun a -> String.length a + slack) t.args;
    n_conns = List.length t.world.conns;
    conn_cap =
      List.fold_left (fun m c -> max m (String.length c)) 0 t.world.conns + slack;
    file_names = List.map fst t.world.files;
    file_cap =
      List.fold_left (fun m (_, c) -> max m (String.length c)) 0 t.world.files
      + slack;
  }
