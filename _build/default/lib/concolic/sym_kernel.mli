(** Kernel wrapper used during concolic execution (dynamic analysis).

    Wraps the simulated OS so that every byte delivered by [read] carries a
    symbolic shadow named after its stream position (concrete value
    overridable by the current solver model), and — with [sym_results] —
    the numeric results of the non-deterministic system calls carry shadows
    too, so branches testing them are labelled symbolic (§2.3). *)

type t

val create :
  ?observe:(int -> int -> unit) ->
  vars:Solver.Symvars.t ->
  model:Solver.Model.t ->
  world:Osmodel.World.t ->
  handle:(Osmodel.Sysreq.req -> Osmodel.Sysreq.res) ->
  sym_results:bool ->
  unit ->
  t

(** The kernel function to pass to the evaluator. *)
val kernel : t -> Interp.Kernel.t

(** Symbolic arguments for a scenario: every argv byte becomes a variable;
    concrete values come from the model when present, else from the
    scenario's actual argument strings. *)
val symbolic_args :
  ?observe:(int -> int -> unit) ->
  vars:Solver.Symvars.t ->
  model:Solver.Model.t ->
  Scenario.t ->
  caps:int list ->
  Interp.Inputs.t
