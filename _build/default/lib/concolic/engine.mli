(** The concolic exploration engine.

    Implements the paper's §2.1 search: execute with concrete inputs,
    collect the path's branch constraints, negate one, solve for a new
    input, re-execute.  Alternative paths wait on a pending list of
    constraint sets — exactly the structure reused by guided replay (§3.1).

    The engine is generic over the run function, so dynamic analysis and
    bug replay share it. *)

type budget = {
  max_runs : int;
  max_time_s : float;  (** wall-clock cut-off for the whole exploration *)
}

val default_budget : budget

type strategy =
  | Dfs  (** deepest pending first: follows a forced chain (guided replay) *)
  | Bfs
      (** oldest/shallowest pending first: generational search, best for
          coverage (dynamic analysis) *)

type run_result = {
  outcome : Interp.Crash.outcome;
  trace : Path.entry list;  (** in execution order *)
  observed : Solver.Model.t;
      (** effective concrete value of every symbolic input variable the run
          touched; seeds the solver for child pendings *)
}

type stats = {
  mutable runs : int;
  mutable sat : int;
  mutable unsat : int;
  mutable unknown : int;
  mutable pending_peak : int;
  mutable elapsed_s : float;
  mutable timed_out : bool;
}

(** Print solver failures on pendings to stderr. *)
val debug_solver : bool ref

(** Explore paths until the budget is exhausted or [should_stop] returns
    true for a run.  Returns the statistics and, if stopped early, the
    model and result of the stopping run. *)
val explore :
  vars:Solver.Symvars.t ->
  ?budget:budget ->
  ?strategy:strategy ->
  run:(Solver.Model.t -> run_result) ->
  ?should_stop:(Solver.Model.t -> run_result -> bool) ->
  ?on_run:(Solver.Model.t -> run_result -> unit) ->
  unit ->
  stats * (Solver.Model.t * run_result) option
