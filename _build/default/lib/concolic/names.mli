(** Stable names for symbolic input variables.

    Variable identity must survive across concolic runs (a solver model
    from run N parameterises run N+1), so names derive from the input
    source, never from runtime ids:

    - ["arg<i>[<j>]"]: byte [j] of argument [i];
    - ["<stream>[<j>]"]: byte [j] of stream ["file:<path>"] / ["net<k>"];
    - ["sys:<kind>#<n>"]: result of the [n]-th system call of that kind. *)

val arg_byte : arg:int -> pos:int -> string
val stream_byte : stream:string -> pos:int -> string
val sys_result : kind:string -> index:int -> string

(** Register (or find) the variable for a stream byte. *)
val stream_var : Solver.Symvars.t -> stream:string -> pos:int -> int

val arg_var : Solver.Symvars.t -> arg:int -> pos:int -> int

val sys_var :
  Solver.Symvars.t -> kind:string -> index:int -> dom:Solver.Symvars.domain -> int
