(** A run environment: program, arguments and simulated-OS configuration.

    For a field run this is the user's actual input; for pre-deployment
    dynamic analysis a developer-chosen test environment; for replay only
    the input {!shape} is disclosed (buffer capacities and stream counts —
    never contents). *)

type t = {
  name : string;
  prog : Minic.Program.t;
  args : string list;  (** concrete argv *)
  world : Osmodel.World.config;
  max_steps : int;
}

val make :
  ?name:string ->
  ?args:string list ->
  ?world:Osmodel.World.config ->
  ?max_steps:int ->
  Minic.Program.t ->
  t

(** The input shape a bug report may disclose (paper §1: no user input
    contents are ever shipped). *)
type shape = {
  arg_caps : int list;  (** per-argument buffer capacity (bytes) *)
  n_conns : int;
  conn_cap : int;  (** max bytes per connection payload *)
  file_names : string list;
  file_cap : int;
}

val shape_of : ?slack:int -> t -> shape
