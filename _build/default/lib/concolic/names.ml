(** Stable names for symbolic input variables.

    Variable identity must survive across concolic runs (a solver model
    produced from run N parameterises run N+1), so names are derived from
    the input source, never from runtime ids:

    - ["arg<i>[<j>]"]: byte [j] of argument [i];
    - ["<stream>[<j>]"]: byte [j] of stream ["file:<path>"] or ["net<k>"];
    - ["sys:<kind>#<n>"]: result of the [n]-th system call of that kind. *)

let arg_byte ~arg ~pos = Interp.Inputs.var_name ~arg ~pos

let stream_byte ~stream ~pos = Printf.sprintf "%s[%d]" stream pos

let sys_result ~kind ~index = Printf.sprintf "sys:%s#%d" kind index

(** Register (or find) the variable for a stream byte. *)
let stream_var vars ~stream ~pos =
  Solver.Symvars.lookup vars
    ~name:(stream_byte ~stream ~pos)
    ~dom:Solver.Symvars.byte_domain

let arg_var vars ~arg ~pos =
  Solver.Symvars.lookup vars ~name:(arg_byte ~arg ~pos)
    ~dom:Solver.Symvars.byte_domain

let sys_var vars ~kind ~index ~dom =
  Solver.Symvars.lookup vars ~name:(sys_result ~kind ~index) ~dom
