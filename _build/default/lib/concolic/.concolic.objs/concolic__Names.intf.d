lib/concolic/names.mli: Solver
