lib/concolic/sym_kernel.mli: Interp Osmodel Scenario Solver
