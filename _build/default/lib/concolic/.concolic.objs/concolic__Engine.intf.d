lib/concolic/engine.mli: Interp Path Solver
