lib/concolic/dynamic.ml: Engine Interp Label Minic Osmodel Path Program Scenario Solver Sym_kernel
