lib/concolic/sym_kernel.ml: Array Char Hashtbl Interp Names Osmodel Scenario Solver String
