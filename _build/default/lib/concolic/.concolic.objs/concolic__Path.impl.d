lib/concolic/path.ml: Interp List Solver
