lib/concolic/engine.ml: Array Interp List Option Path Printf Queue Solver Stack Unix
