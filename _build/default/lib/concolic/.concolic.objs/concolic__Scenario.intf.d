lib/concolic/scenario.mli: Minic Osmodel
