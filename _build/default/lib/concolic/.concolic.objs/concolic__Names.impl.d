lib/concolic/names.ml: Interp Printf Solver
