lib/concolic/dynamic.mli: Engine Minic Scenario Solver
