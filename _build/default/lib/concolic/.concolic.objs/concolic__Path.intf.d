lib/concolic/path.mli: Interp Solver
