lib/concolic/scenario.ml: List Minic Osmodel String
