(** Kernel wrapper used during concolic execution (dynamic analysis).

    Wraps the simulated OS so that
    - every byte delivered by [read] carries a symbolic shadow named after
      its stream position, with its concrete value overridable by the
      current solver model (this is how a negated path constraint about an
      input byte takes effect on the next run);
    - the numeric results of the non-deterministic system calls ([read]
      count, [select] count, [ready_fd], [accept]) carry symbolic shadows
      too, so branches that test them are correctly labelled symbolic — they
      cannot be predicted at the developer site without logging (§2.3). *)

type t = {
  vars : Solver.Symvars.t;
  model : Solver.Model.t;  (** concrete overrides for input bytes *)
  world : Osmodel.World.t;
  handle : Osmodel.Sysreq.req -> Osmodel.Sysreq.res;
  sym_results : bool;  (** shadow syscall results (not just data)? *)
  counters : (string, int) Hashtbl.t;  (** per-kind syscall indices *)
  observe : int -> int -> unit;  (** effective value of each created variable *)
}

let create ?(observe = fun (_ : int) (_ : int) -> ()) ~vars ~model
    ~(world : Osmodel.World.t)
    ~(handle : Osmodel.Sysreq.req -> Osmodel.Sysreq.res) ~sym_results () : t =
  { vars; model; world; handle; sym_results; counters = Hashtbl.create 8; observe }

let next_index t kind =
  let i = match Hashtbl.find_opt t.counters kind with Some i -> i | None -> 0 in
  Hashtbl.replace t.counters kind (i + 1);
  i

let result_shadow t ~kind ~lo ~hi ~conc : Solver.Expr.t option =
  if not t.sym_results then None
  else
    let index = next_index t kind in
    let id = Names.sys_var t.vars ~kind ~index ~dom:{ Solver.Symvars.lo; hi } in
    t.observe id conc;
    Some (Solver.Expr.Var id)

(** The kernel function to pass to the evaluator. *)
let kernel (t : t) : Interp.Kernel.t =
 fun req ->
  let res = t.handle req in
  match req, res with
  | Osmodel.Sysreq.Read { count = requested; _ }, Osmodel.Sysreq.R_read { count; data }
    ->
      let stream = Osmodel.World.(t.world.last_read) in
      let data, data_sym =
        match stream with
        | Some (stream, start) ->
            let data =
              Array.mapi
                (fun j b ->
                  let id = Names.stream_var t.vars ~stream ~pos:(start + j) in
                  let v =
                    match Solver.Model.find_opt id t.model with
                    | Some v -> v land 0xff
                    | None -> b
                  in
                  t.observe id v;
                  v)
                data
            in
            let data_sym =
              Array.init count (fun j ->
                  Some
                    (Solver.Expr.Var
                       (Names.stream_var t.vars ~stream ~pos:(start + j))))
            in
            (data, data_sym)
        | None -> (data, [||])
      in
      let ret_sym =
        result_shadow t ~kind:"read" ~lo:(-1) ~hi:(max requested 0) ~conc:count
      in
      { Interp.Kernel.res = Osmodel.Sysreq.R_read { count; data }; ret_sym; data_sym }
  | (Osmodel.Sysreq.Select | Osmodel.Sysreq.Ready_fd _ | Osmodel.Sysreq.Accept), _ ->
      let kind = Osmodel.Sysreq.req_name req in
      let ret_sym =
        result_shadow t ~kind ~lo:(-1) ~hi:256 ~conc:(Osmodel.Sysreq.res_int res)
      in
      { Interp.Kernel.res; ret_sym; data_sym = [||] }
  | ( ( Osmodel.Sysreq.Read _ | Osmodel.Sysreq.Write _ | Osmodel.Sysreq.Open _
      | Osmodel.Sysreq.Close _ | Osmodel.Sysreq.Listen _ ),
      _ ) ->
      Interp.Kernel.concrete_reply res

(** Symbolic arguments for a scenario: every argv byte becomes a variable;
    concrete values come from the model when present, else from the
    scenario's actual argument strings (padded buffers use NUL). *)
let symbolic_args ?observe ~vars ~model (sc : Scenario.t) ~(caps : int list) :
    Interp.Inputs.t =
  let base = Array.of_list sc.args in
  let concrete_byte ~arg ~pos =
    let id = Names.arg_var vars ~arg ~pos in
    match Solver.Model.find_opt id model with
    | Some v -> v land 0xff
    | None ->
        if arg < Array.length base && pos < String.length base.(arg) then
          Char.code base.(arg).[pos]
        else 0
  in
  Interp.Inputs.symbolic ?observe ~vars ~caps ~concrete_byte ()
