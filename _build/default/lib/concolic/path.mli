(** Path recording for concolic runs.

    A trace is the ordered list of constraints implied by a run: one per
    symbolic branch execution (oriented by the direction actually taken)
    plus one equality per concretisation. *)

type entry = {
  bid : int option;  (** branch id; [None] for concretisation constraints *)
  taken : bool;
  cons : Solver.Expr.t;  (** constraint asserted by this step *)
  negatable : bool;
      (** may the engine fork an alternative here?  False for branches whose
          direction is pinned by a branch log (replay case 2a). *)
}

type t

val create : unit -> t

(** Constraint asserted by taking (or not taking) a branch whose condition
    has symbolic shadow [sym]. *)
val branch_constraint : taken:bool -> Solver.Expr.t -> Solver.Expr.t

val record_branch : ?negatable:bool -> t -> bid:int -> taken:bool -> Solver.Expr.t -> unit
val record_concretize : ?negatable:bool -> t -> Solver.Expr.t -> int -> unit

(** Entries in execution order. *)
val entries : t -> entry list

val length : t -> int

(** Evaluator hooks that record the path into [t] (chaining to [inner]). *)
val hooks : ?inner:Interp.Eval.hooks -> t -> Interp.Eval.hooks
