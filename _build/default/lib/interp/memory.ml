(** Block-based memory.

    Every variable owns a block (scalars have size 1, arrays their declared
    size); pointers are (block, offset) pairs.  Out-of-bounds offsets,
    dangling blocks (frame popped) and unknown blocks fault — giving MiniC
    programs memory-safety crashes at well-defined source locations, which
    is exactly the crash behaviour the paper reproduces. *)

type fault = Oob | Dead_block | Unknown_block

type block = {
  bid : int;
  bname : string;
  cells : Value.t array;
  mutable alive : bool;
}

type t = { tbl : (int, block) Hashtbl.t; mutable next : int }

let create () = { tbl = Hashtbl.create 256; next = 1 }

(** Allocate a zero-initialised block; returns its id. *)
let alloc t ~name ~size =
  let bid = t.next in
  t.next <- bid + 1;
  Hashtbl.replace t.tbl bid
    { bid; bname = name; cells = Array.make (max size 0) Value.zero; alive = true };
  bid

(** Mark a block dead (its id is never reused, so later accesses fault with
    [Dead_block] — a use-after-free detector for free). *)
let kill t bid =
  match Hashtbl.find_opt t.tbl bid with
  | Some b ->
      b.alive <- false;
      Hashtbl.remove t.tbl bid
  | None -> ()

let size t bid =
  match Hashtbl.find_opt t.tbl bid with
  | Some b -> Some (Array.length b.cells)
  | None -> None

let load t ~base ~off : (Value.t, fault) result =
  match Hashtbl.find_opt t.tbl base with
  | None -> Error (if base < t.next then Dead_block else Unknown_block)
  | Some b ->
      if not b.alive then Error Dead_block
      else if off < 0 || off >= Array.length b.cells then Error Oob
      else Ok b.cells.(off)

let store t ~base ~off (v : Value.t) : (unit, fault) result =
  match Hashtbl.find_opt t.tbl base with
  | None -> Error (if base < t.next then Dead_block else Unknown_block)
  | Some b ->
      if not b.alive then Error Dead_block
      else if off < 0 || off >= Array.length b.cells then Error Oob
      else begin
        b.cells.(off) <- v;
        Ok ()
      end

let fault_to_crash_kind = function
  | Oob -> Crash.Out_of_bounds
  | Dead_block -> Crash.Use_after_free
  | Unknown_block -> Crash.Invalid_pointer
