(** The kernel interface seen by the evaluator.

    A kernel reply carries the concrete system-call result plus optional
    symbolic shadows.  Different pipeline stages wrap different kernels: the
    simulated OS (field run), the simulated OS with symbolic data (dynamic
    analysis), logged results (replay with a syscall log) or fully symbolic
    models (replay without one, §3.3). *)

type reply = {
  res : Osmodel.Sysreq.res;
  ret_sym : Solver.Expr.t option;  (** shadow of the numeric return value *)
  data_sym : Solver.Expr.t option array;
      (** per-byte shadows for an [R_read] payload; may be empty *)
}

type t = Osmodel.Sysreq.req -> reply

val concrete_reply : Osmodel.Sysreq.res -> reply

(** Kernel backed directly by a simulated world: concrete results, no
    shadows.  This is the user-site (field run) kernel. *)
val of_world : (Osmodel.Sysreq.req -> Osmodel.Sysreq.res) -> t
