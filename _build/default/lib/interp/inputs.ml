(** Program arguments presented to the evaluator.

    Each argument is a byte string with an optional symbolic shadow per
    byte.  The field run uses plain concrete arguments; concolic stages
    shadow every byte with a {!Solver.Expr.Var} whose concrete value comes
    from the current solver model. *)

type arg = { bytes : int array; syms : Solver.Expr.t option array }

type t = { args : arg array }

let of_strings (ss : string list) : t =
  let mk s =
    {
      bytes = Array.init (String.length s) (fun i -> Char.code s.[i]);
      syms = Array.make (String.length s) None;
    }
  in
  { args = Array.of_list (List.map mk ss) }

let arg_count t = Array.length t.args

(** Naming scheme for argument input bytes; shared with the concolic layer
    so that variable identities stay stable across runs. *)
let var_name ~arg ~pos = Printf.sprintf "arg%d[%d]" arg pos

(** Build symbolic arguments: each has [cap] fully symbolic bytes whose
    concrete values are taken from [concrete_byte ~arg ~pos] (typically the
    previous model or a seeded random source).  [observe] is told the
    effective concrete value of every variable created, so the exploration
    engine can seed the next solver call with the full input (not only the
    bytes an earlier model happened to mention). *)
let symbolic ?(observe = fun (_ : int) (_ : int) -> ()) ~(vars : Solver.Symvars.t)
    ~(caps : int list) ~(concrete_byte : arg:int -> pos:int -> int) () : t =
  let mk argi cap =
    let bytes = Array.init cap (fun pos -> concrete_byte ~arg:argi ~pos) in
    {
      bytes;
      syms =
        Array.init cap (fun pos ->
            let name = var_name ~arg:argi ~pos in
            let id =
              Solver.Symvars.lookup vars ~name ~dom:Solver.Symvars.byte_domain
            in
            observe id bytes.(pos);
            Some (Solver.Expr.Var id));
    }
  in
  { args = Array.of_list (List.mapi mk caps) }
