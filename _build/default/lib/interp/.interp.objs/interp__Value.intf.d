lib/interp/value.mli: Solver
