lib/interp/memory.mli: Crash Value
