lib/interp/cost.ml:
