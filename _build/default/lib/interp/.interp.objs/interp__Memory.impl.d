lib/interp/memory.ml: Array Crash Hashtbl Value
