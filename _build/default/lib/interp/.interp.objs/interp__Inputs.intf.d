lib/interp/inputs.mli: Solver
