lib/interp/inputs.ml: Array Char List Printf Solver String
