lib/interp/kernel.ml: Osmodel Solver
