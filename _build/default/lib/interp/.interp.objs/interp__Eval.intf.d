lib/interp/eval.mli: Cost Crash Inputs Kernel Minic Solver Value
