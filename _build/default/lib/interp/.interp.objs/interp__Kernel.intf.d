lib/interp/kernel.mli: Osmodel Solver
