lib/interp/crash.mli: Minic
