lib/interp/crash.ml: Minic Printf String
