lib/interp/value.ml: Option Printf Solver
