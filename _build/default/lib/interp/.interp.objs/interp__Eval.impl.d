lib/interp/eval.ml: Array Ast Buffer Char Cost Crash Effect Hashtbl Inputs Kernel List Loc Memory Minic Option Osmodel Printf Program Solver String Types Value
