lib/interp/cost.mli:
