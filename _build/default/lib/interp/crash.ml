(** Crash classification and run outcomes.

    A crash site (kind + location) is the identity of a bug: the paper's
    replay succeeds when it finds an input whose execution crashes at the
    same location as the user's execution. *)

type kind =
  | Out_of_bounds
  | Null_deref
  | Use_after_free
  | Div_by_zero
  | Assert_failure
  | Explicit_crash  (** the [crash()] builtin (SIGSEGV analogue) *)
  | Stack_overflow
  | Invalid_pointer  (** dereferencing a non-pointer value *)

let kind_to_string = function
  | Out_of_bounds -> "out-of-bounds"
  | Null_deref -> "null-deref"
  | Use_after_free -> "use-after-free"
  | Div_by_zero -> "div-by-zero"
  | Assert_failure -> "assert-failure"
  | Explicit_crash -> "crash"
  | Stack_overflow -> "stack-overflow"
  | Invalid_pointer -> "invalid-pointer"

type t = { kind : kind; loc : Minic.Loc.t; in_func : string }

let equal_site (a : t) (b : t) =
  a.kind = b.kind && Minic.Loc.equal a.loc b.loc && String.equal a.in_func b.in_func

let to_string c =
  Printf.sprintf "%s at %s (in %s)" (kind_to_string c.kind)
    (Minic.Loc.to_string c.loc) c.in_func

type outcome =
  | Exit of int
  | Crash of t
  | Budget_exhausted  (** step limit hit *)
  | Aborted of string  (** a hook aborted the run (replay divergence) *)

let outcome_to_string = function
  | Exit n -> Printf.sprintf "exit(%d)" n
  | Crash c -> Printf.sprintf "CRASH: %s" (to_string c)
  | Budget_exhausted -> "budget exhausted"
  | Aborted why -> Printf.sprintf "aborted: %s" why
