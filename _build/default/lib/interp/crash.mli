(** Crash classification and run outcomes.

    A crash site (kind + location + function) is the identity of a bug: the
    paper's replay succeeds when it finds an input whose execution crashes
    at the same location as the user's execution. *)

type kind =
  | Out_of_bounds
  | Null_deref
  | Use_after_free
  | Div_by_zero
  | Assert_failure
  | Explicit_crash  (** the [crash()] builtin (SIGSEGV analogue) *)
  | Stack_overflow
  | Invalid_pointer  (** dereferencing a non-pointer value *)

val kind_to_string : kind -> string

type t = { kind : kind; loc : Minic.Loc.t; in_func : string }

val equal_site : t -> t -> bool
val to_string : t -> string

type outcome =
  | Exit of int
  | Crash of t
  | Budget_exhausted  (** step limit hit *)
  | Aborted of string  (** a hook abandoned the run (replay divergence) *)

val outcome_to_string : outcome -> string
