(** Block-based memory.

    Every variable owns a block (scalars have size 1, arrays their declared
    size); pointers are (block, offset) pairs.  Out-of-bounds offsets,
    dangling blocks and unknown blocks fault, giving MiniC programs
    memory-safety crashes at well-defined source locations. *)

type fault = Oob | Dead_block | Unknown_block

type t

val create : unit -> t

(** Allocate a zero-initialised block; returns its id. *)
val alloc : t -> name:string -> size:int -> int

(** Mark a block dead; ids are never reused, so later accesses fault with
    [Dead_block] — a use-after-free detector for free. *)
val kill : t -> int -> unit

(** Cell count of a live block. *)
val size : t -> int -> int option

val load : t -> base:int -> off:int -> (Value.t, fault) result
val store : t -> base:int -> off:int -> Value.t -> (unit, fault) result
val fault_to_crash_kind : fault -> Crash.kind
