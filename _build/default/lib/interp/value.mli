(** Runtime values: a concrete part plus an optional symbolic shadow.

    One evaluator serves every stage of the paper's pipeline because the
    shadow is optional: a plain field run carries no shadows; dynamic
    analysis and replay shadow each input-derived value with a
    {!Solver.Expr.t}.  Pointers are never symbolic — program input consists
    of bytes. *)

type conc =
  | Int of int
  | Ptr of { base : int; off : int }  (** block id and cell offset *)

type t = { conc : conc; sym : Solver.Expr.t option }

val int_ : int -> t
val ptr : base:int -> off:int -> t
val with_sym : t -> Solver.Expr.t option -> t
val zero : t
val one : t
val is_symbolic : t -> bool

(** Concrete truth value (C semantics: nonzero / non-null). *)
val truthy : t -> bool

(** The symbolic shadow of [v], or the constant embedding of its concrete
    value; [None] if the value is a pointer. *)
val sym_or_const : t -> Solver.Expr.t option

val to_string : t -> string
