(** Instruction-cost accounting.

    The paper reports instrumentation overhead as relative CPU time measured
    with hardware counters; our substrate is an interpreter, so we charge a
    deterministic instruction budget per operation instead.  The
    [logged_branch] charge of 17 instructions is the figure the paper
    measured with perf for its one-bit branch instrumentation (§5.1). *)

type t = {
  mutable instr : int;  (** total "instructions" charged *)
  mutable branches : int;  (** branch executions *)
  mutable logged_branches : int;
  mutable syscalls : int;
  mutable logged_syscalls : int;
}

(* Per-operation charges. *)
let expr_node = 1
let stmt = 1
let call_overhead = 5
let branch = 2
let syscall = 50
let logged_branch = 17
let logged_syscall = 10

let create () =
  { instr = 0; branches = 0; logged_branches = 0; syscalls = 0; logged_syscalls = 0 }

let charge t n = t.instr <- t.instr + n

let charge_branch t =
  t.branches <- t.branches + 1;
  t.instr <- t.instr + branch

let charge_logged_branch t =
  t.logged_branches <- t.logged_branches + 1;
  t.instr <- t.instr + logged_branch

let charge_syscall t =
  t.syscalls <- t.syscalls + 1;
  t.instr <- t.instr + syscall

let charge_logged_syscall t =
  t.logged_syscalls <- t.logged_syscalls + 1;
  t.instr <- t.instr + logged_syscall

(** Relative CPU time of [t] against a baseline, in percent (100.0 = equal). *)
let relative_percent ~baseline t =
  if baseline.instr = 0 then 0.0
  else 100.0 *. float_of_int t.instr /. float_of_int baseline.instr
