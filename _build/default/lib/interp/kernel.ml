(** The kernel interface seen by the evaluator.

    A kernel reply carries the concrete system-call result plus optional
    symbolic shadows: the numeric return value's shadow ([ret_sym]) and a
    per-byte shadow for transferred data ([data_sym]).  Different pipeline
    stages wrap different kernels:

    - field run: the simulated OS, no shadows, optional result logging;
    - dynamic analysis: the simulated OS with symbolic data bytes;
    - replay with a syscall log: logged results, symbolic data bytes;
    - replay without a log: fully symbolic models (§3.3). *)

type reply = {
  res : Osmodel.Sysreq.res;
  ret_sym : Solver.Expr.t option;
  data_sym : Solver.Expr.t option array;
      (** shadows for the bytes of an [R_read] payload; length must be >= the
          payload's [count] or empty for "no shadows" *)
}

type t = Osmodel.Sysreq.req -> reply

let concrete_reply res = { res; ret_sym = None; data_sym = [||] }

(** Kernel backed directly by a simulated world: concrete results, no
    symbolic shadows.  This is the user-site (field run) kernel. *)
let of_world (handle : Osmodel.Sysreq.req -> Osmodel.Sysreq.res) : t =
 fun req -> concrete_reply (handle req)
