(** Instruction-cost accounting.

    The paper reports instrumentation overhead as relative CPU time measured
    with hardware counters; our substrate is an interpreter, so every
    operation is charged a deterministic instruction budget instead.  The
    {!logged_branch} charge of 17 instructions is the figure the paper
    measured with perf for its one-bit branch instrumentation (§5.1). *)

type t = {
  mutable instr : int;  (** total "instructions" charged *)
  mutable branches : int;  (** branch executions *)
  mutable logged_branches : int;
  mutable syscalls : int;
  mutable logged_syscalls : int;
}

(** Per-operation charges. *)

val expr_node : int
val stmt : int
val call_overhead : int
val branch : int
val syscall : int
val logged_branch : int
val logged_syscall : int

val create : unit -> t
val charge : t -> int -> unit
val charge_branch : t -> unit
val charge_logged_branch : t -> unit
val charge_syscall : t -> unit
val charge_logged_syscall : t -> unit

(** Relative CPU time of [t] against a baseline, in percent (100.0 =
    equal). *)
val relative_percent : baseline:t -> t -> float
