(** Program arguments presented to the evaluator.

    Each argument is a byte string with an optional symbolic shadow per
    byte.  The field run uses plain concrete arguments; concolic stages
    shadow every byte with a {!Solver.Expr.Var} whose concrete value comes
    from the current solver model. *)

type arg = { bytes : int array; syms : Solver.Expr.t option array }

type t = { args : arg array }

val of_strings : string list -> t
val arg_count : t -> int

(** Naming scheme for argument input bytes; shared with the concolic layer
    so variable identities stay stable across runs. *)
val var_name : arg:int -> pos:int -> string

(** Build symbolic arguments: each has [cap] fully symbolic bytes whose
    concrete values come from [concrete_byte].  [observe] is told the
    effective concrete value of every variable created, so the exploration
    engine can seed the next solver call with the full input. *)
val symbolic :
  ?observe:(int -> int -> unit) ->
  vars:Solver.Symvars.t ->
  caps:int list ->
  concrete_byte:(arg:int -> pos:int -> int) ->
  unit ->
  t
