(** Runtime values: a concrete part plus an optional symbolic shadow.

    This is what makes one evaluator serve every stage of the paper's
    pipeline: a plain field run carries no shadows; dynamic analysis, replay
    and any other concolic run shadow each input-derived value with a
    {!Solver.Expr.t}.  Pointers are never symbolic — program input consists
    of bytes, and pointer-typed computations are concretised. *)

type conc =
  | Int of int
  | Ptr of { base : int; off : int }  (** block id and cell offset *)

type t = { conc : conc; sym : Solver.Expr.t option }

let int_ n = { conc = Int n; sym = None }
let ptr ~base ~off = { conc = Ptr { base; off }; sym = None }
let with_sym v sym = { v with sym }
let zero = int_ 0
let one = int_ 1

let is_symbolic v = Option.is_some v.sym

(** Concrete truth value (C semantics: nonzero / non-null). *)
let truthy v = match v.conc with Int 0 -> false | Int _ -> true | Ptr _ -> true

(** The symbolic shadow of [v], or the constant embedding of its concrete
    value; [None] if the value is a pointer. *)
let sym_or_const v =
  match v.sym with
  | Some e -> Some e
  | None -> ( match v.conc with Int n -> Some (Solver.Expr.Const n) | Ptr _ -> None)

let to_string v =
  let c =
    match v.conc with
    | Int n -> string_of_int n
    | Ptr { base; off } -> Printf.sprintf "&%d[%d]" base off
  in
  match v.sym with
  | None -> c
  | Some e -> Printf.sprintf "%s{%s}" c (Solver.Expr.to_string e)
