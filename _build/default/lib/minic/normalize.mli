(** CIL-style normalisation: lift calls out of expression position.

    After this pass, calls occur only as [Scall] statements — the program
    shape the paper's Algorithm 1 analyses.  A call in a [while] condition
    forces the CIL loop transformation
    [while (c) b  ==>  while (1) { pre; if (c') b else break; }]. *)

(** Does any call remain in expression position? *)
val has_call : Ast.expr -> bool

(** Normalise a function in place (appends fresh temporaries to its
    locals). *)
val func : Ast.func -> unit

(** The normalisation invariant, used by tests and the linker. *)
val block_is_normalised : Ast.block -> bool
