(** MiniC types.

    MiniC is deliberately small: machine integers, pointers and
    statically-sized arrays.  This is the fragment CIL-normalised C programs
    use in the paper's analyses (byte buffers, pointers into them, integer
    scalars). *)

type t =
  | Tvoid
  | Tint
  | Tptr of t
  | Tarr of t * int  (** element type and static size *)

let rec equal a b =
  match a, b with
  | Tvoid, Tvoid | Tint, Tint -> true
  | Tptr a, Tptr b -> equal a b
  | Tarr (a, n), Tarr (b, m) -> n = m && equal a b
  | (Tvoid | Tint | Tptr _ | Tarr _), _ -> false

let rec pp fmt = function
  | Tvoid -> Format.pp_print_string fmt "void"
  | Tint -> Format.pp_print_string fmt "int"
  | Tptr t -> Format.fprintf fmt "%a*" pp t
  | Tarr (t, n) -> Format.fprintf fmt "%a[%d]" pp t n

let to_string t = Format.asprintf "%a" pp t

(** [decay t] is the type of [t] when used in an expression: arrays decay to
    pointers to their element type, as in C. *)
let decay = function Tarr (t, _) -> Tptr t | t -> t

let is_pointer t =
  match decay t with Tptr _ | Tarr _ -> true | Tvoid | Tint -> false

(** Element type of a pointer or array, if any. *)
let element = function
  | Tptr t | Tarr (t, _) -> Some t
  | Tvoid | Tint -> None
