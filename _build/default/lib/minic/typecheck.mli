(** Light-weight type checker for linked MiniC programs.

    Follows C's laissez-faire attitude (pointer/integer comparison against
    0, array decay) but catches the errors that bite when authoring
    workloads: unknown variables and functions, wrong arity, indexing a
    scalar, dereferencing a non-pointer, assigning to an array, and
    [break]/[continue] outside a loop. *)

exception Error of string * Loc.t

(** Check a linked set of globals and functions; raises {!Error}. *)
val check : globals:Ast.var_decl list -> funcs:Ast.func list -> unit
