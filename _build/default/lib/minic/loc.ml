(** Source locations for MiniC programs.

    Every statement and branch carries a location so that crash sites and
    branch locations can be reported the way the paper reports them (file,
    line). *)

type t = { file : string; line : int; col : int }

let none = { file = "<builtin>"; line = 0; col = 0 }

let make ~file ~line ~col = { file; line; col }

let equal a b = String.equal a.file b.file && a.line = b.line && a.col = b.col

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c else Int.compare a.col b.col

let pp fmt l = Format.fprintf fmt "%s:%d:%d" l.file l.line l.col

let to_string l = Format.asprintf "%a" pp l
