(** Built-in functions of the MiniC runtime.

    These are the primitives the interpreter implements natively; everything
    else (strlen, atoi, ...) is written in MiniC itself and linked as the
    runtime library, mirroring the paper's use of uClibc.

    The table also records the information the static analysis needs: which
    pointer arguments receive input bytes ([taints_args]) and whether the
    return value is itself program input ([returns_input]) — the paper marks
    "the return values of any functions that return input" symbolic. *)

type t = {
  name : string;
  ret : Types.t;
  params : Types.t list;
  taints_args : int list;
      (** indices (0-based) of pointer parameters whose pointees become input *)
  returns_input : bool;
  is_syscall : bool;  (** result is produced by the simulated kernel *)
}

let ptr_int = Types.Tptr Types.Tint

let all : t list =
  [
    (* program arguments: argv is input (paper §2.1) *)
    { name = "argc"; ret = Types.Tint; params = []; taints_args = [];
      returns_input = false; is_syscall = false };
    { name = "arg"; ret = Types.Tint; params = [ Types.Tint; ptr_int; Types.Tint ];
      taints_args = [ 1 ]; returns_input = true; is_syscall = false };
    (* file and socket I/O: data is input; results are non-deterministic *)
    { name = "read"; ret = Types.Tint; params = [ Types.Tint; ptr_int; Types.Tint ];
      taints_args = [ 1 ]; returns_input = true; is_syscall = true };
    { name = "write"; ret = Types.Tint; params = [ Types.Tint; ptr_int; Types.Tint ];
      taints_args = []; returns_input = false; is_syscall = true };
    { name = "open"; ret = Types.Tint; params = [ ptr_int; Types.Tint ];
      taints_args = []; returns_input = false; is_syscall = true };
    { name = "close"; ret = Types.Tint; params = [ Types.Tint ];
      taints_args = []; returns_input = false; is_syscall = true };
    { name = "select"; ret = Types.Tint; params = [];
      taints_args = []; returns_input = true; is_syscall = true };
    { name = "ready_fd"; ret = Types.Tint; params = [ Types.Tint ];
      taints_args = []; returns_input = true; is_syscall = true };
    { name = "accept"; ret = Types.Tint; params = [];
      taints_args = []; returns_input = true; is_syscall = true };
    { name = "listen"; ret = Types.Tint; params = [ Types.Tint ];
      taints_args = []; returns_input = false; is_syscall = true };
    (* diagnostics and termination *)
    { name = "print_int"; ret = Types.Tvoid; params = [ Types.Tint ];
      taints_args = []; returns_input = false; is_syscall = false };
    { name = "print_str"; ret = Types.Tvoid; params = [ ptr_int ];
      taints_args = []; returns_input = false; is_syscall = false };
    { name = "exit"; ret = Types.Tvoid; params = [ Types.Tint ];
      taints_args = []; returns_input = false; is_syscall = false };
    { name = "crash"; ret = Types.Tvoid; params = [];
      taints_args = []; returns_input = false; is_syscall = false };
    { name = "assert"; ret = Types.Tvoid; params = [ Types.Tint ];
      taints_args = []; returns_input = false; is_syscall = false };
    (* checkpoint support (§6 long-running applications): discards the
       branch log collected so far; invisible to the program (returns 0) *)
    { name = "checkpoint"; ret = Types.Tint; params = [];
      taints_args = []; returns_input = false; is_syscall = false };
    (* cooperative threads (§6 multithreading): spawn a named function with
       one integer argument, yield the processor, join a thread, query the
       current thread id *)
    { name = "spawn"; ret = Types.Tint; params = [ ptr_int; Types.Tint ];
      taints_args = []; returns_input = false; is_syscall = false };
    { name = "yield"; ret = Types.Tvoid; params = [];
      taints_args = []; returns_input = false; is_syscall = false };
    { name = "join"; ret = Types.Tint; params = [ Types.Tint ];
      taints_args = []; returns_input = false; is_syscall = false };
    { name = "my_tid"; ret = Types.Tint; params = [];
      taints_args = []; returns_input = false; is_syscall = false };
  ]

let tbl : (string, t) Hashtbl.t =
  let h = Hashtbl.create 32 in
  List.iter (fun b -> Hashtbl.replace h b.name b) all;
  h

let find name = Hashtbl.find_opt tbl name
let is_builtin name = Hashtbl.mem tbl name
