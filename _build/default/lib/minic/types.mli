(** MiniC types: machine integers, pointers and statically-sized arrays —
    the fragment CIL-normalised C programs use in the paper's analyses. *)

type t =
  | Tvoid
  | Tint
  | Tptr of t
  | Tarr of t * int  (** element type and static size *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Array-to-pointer decay, as in C expressions. *)
val decay : t -> t

val is_pointer : t -> bool

(** Element type of a pointer or array. *)
val element : t -> t option
