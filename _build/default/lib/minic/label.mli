(** Branch labels produced by the paper's analyses.

    Dynamic analysis labels branches [Symbolic], [Concrete] or leaves them
    [Unvisited]; static analysis labels every branch [Symbolic] or
    [Concrete].  The instrumentation methods of §2.3 combine these maps. *)

type t = Symbolic | Concrete | Unvisited

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

(** A labelling of all branch locations of a program: index = branch id. *)
type map = t array

val make : nbranches:int -> t -> map

(** Sticky upgrade used by dynamic analysis (§2.1): once symbolic, always
    symbolic; concrete may be upgraded to symbolic on a later visit. *)
val observe : map -> int -> symbolic:bool -> unit

val count : map -> t -> int
