(** Pretty-printer for MiniC.

    Prints a parseable program; expressions are conservatively parenthesised
    so that [parse (print (parse src))] yields a structurally identical AST
    (a property checked by the test suite). *)

open Format

let pp_escaped fmt s =
  pp_print_char fmt '"';
  String.iter
    (fun c ->
      match c with
      | '\n' -> pp_print_string fmt "\\n"
      | '\t' -> pp_print_string fmt "\\t"
      | '\r' -> pp_print_string fmt "\\r"
      | '\000' -> pp_print_string fmt "\\0"
      | '\\' -> pp_print_string fmt "\\\\"
      | '"' -> pp_print_string fmt "\\\""
      | c -> pp_print_char fmt c)
    s;
  pp_print_char fmt '"'

let rec pp_expr fmt (e : Ast.expr) =
  match e with
  | Cint n -> pp_print_int fmt n
  | Cstr s -> pp_escaped fmt s
  | Lval lv -> pp_lval fmt lv
  | Addr lv -> fprintf fmt "(&%a)" pp_lval lv
  | Unop (op, a) -> fprintf fmt "(%s%a)" (Ast.unop_to_string op) pp_expr a
  | Binop (op, a, b) ->
      fprintf fmt "(%a %s %a)" pp_expr a (Ast.binop_to_string op) pp_expr b
  | Ecall (f, args) -> fprintf fmt "%s(%a)" f pp_args args

and pp_args fmt args =
  pp_print_list ~pp_sep:(fun fmt () -> pp_print_string fmt ", ") pp_expr fmt args

and pp_lval fmt (lv : Ast.lval) =
  match lv with
  | Var x -> pp_print_string fmt x
  | Index (b, i) -> fprintf fmt "%a[%a]" pp_lval b pp_expr i
  | Star e -> fprintf fmt "(*%a)" pp_expr e

(* A declaration "ty name" with C array syntax. *)
let rec type_prefix = function
  | Types.Tvoid -> "void"
  | Types.Tint -> "int"
  | Types.Tptr t -> type_prefix t ^ "*"
  | Types.Tarr (t, _) -> type_prefix t

let pp_decl fmt (name, ty) =
  match ty with
  | Types.Tarr (t, n) -> fprintf fmt "%s %s[%d]" (type_prefix t) name n
  | t -> fprintf fmt "%s %s" (type_prefix t) name

let rec pp_stmt fmt (s : Ast.stmt) =
  match s.sdesc with
  | Sassign (lv, e) -> fprintf fmt "@[<h>%a = %a;@]" pp_lval lv pp_expr e
  | Scall (None, f, args) -> fprintf fmt "@[<h>%s(%a);@]" f pp_args args
  | Scall (Some lv, f, args) ->
      fprintf fmt "@[<h>%a = %s(%a);@]" pp_lval lv f pp_args args
  | Sif (_, c, t, []) ->
      fprintf fmt "@[<v 2>if (%a) {@,%a@]@,}" pp_expr c pp_block t
  | Sif (_, c, t, e) ->
      fprintf fmt "@[<v 2>if (%a) {@,%a@]@,@[<v 2>} else {@,%a@]@,}" pp_expr c
        pp_block t pp_block e
  | Swhile (_, c, b) ->
      fprintf fmt "@[<v 2>while (%a) {@,%a@]@,}" pp_expr c pp_block b
  | Sreturn None -> pp_print_string fmt "return;"
  | Sreturn (Some e) -> fprintf fmt "@[<h>return %a;@]" pp_expr e
  | Sbreak -> pp_print_string fmt "break;"
  | Scontinue -> pp_print_string fmt "continue;"
  | Sblock b -> fprintf fmt "@[<v 2>{@,%a@]@,}" pp_block b

and pp_block fmt (b : Ast.block) =
  pp_print_list ~pp_sep:pp_print_cut pp_stmt fmt b

let pp_var_decl fmt (d : Ast.var_decl) =
  match d.vinit with
  | None -> fprintf fmt "%a;" pp_decl (d.vname, d.vtyp)
  | Some e -> fprintf fmt "%a = %a;" pp_decl (d.vname, d.vtyp) pp_expr e

let pp_func fmt (f : Ast.func) =
  let pp_param fmt (name, ty) = pp_decl fmt (name, ty) in
  fprintf fmt "@[<v 2>%a(%a) {@,"
    pp_decl
    (f.fname, f.fret)
    (pp_print_list ~pp_sep:(fun fmt () -> pp_print_string fmt ", ") pp_param)
    f.fparams;
  List.iter (fun d -> fprintf fmt "%a@," pp_var_decl d) f.flocals;
  fprintf fmt "%a@]@,}" pp_block f.fbody

let pp_unit fmt (u : Ast.unit_) =
  fprintf fmt "@[<v>";
  List.iter (fun d -> fprintf fmt "%a@," pp_var_decl d) u.u_globals;
  pp_print_list ~pp_sep:(fun fmt () -> fprintf fmt "@,@,") pp_func fmt u.u_funcs;
  fprintf fmt "@]"

let unit_to_string u = asprintf "%a" pp_unit u
let expr_to_string e = asprintf "%a" pp_expr e
let stmt_to_string s = asprintf "@[<v>%a@]" pp_stmt s
