(** CIL-style normalisation: lift calls out of expression position.

    After this pass, calls occur only as [Scall] statements, which is the
    program shape the paper's Algorithm 1 analyses.  A call in a [while]
    condition forces the CIL loop transformation:

    {v while (c) b   ==>   while (1) { pre; if (c') { b } else break; } v}

    where [pre] re-evaluates the lifted calls on every iteration. *)

type state = { mutable counter : int; func : Ast.func }

let fresh st =
  let name = Printf.sprintf "__t%d" st.counter in
  st.counter <- st.counter + 1;
  st.func.flocals <-
    st.func.flocals
    @ [ { Ast.vname = name; vtyp = Types.Tint; vinit = None; vloc = Loc.none } ];
  name

let rec has_call (e : Ast.expr) =
  match e with
  | Cint _ | Cstr _ -> false
  | Ecall _ -> true
  | Lval lv | Addr lv -> lval_has_call lv
  | Unop (_, a) -> has_call a
  | Binop (_, a, b) -> has_call a || has_call b

and lval_has_call = function
  | Ast.Var _ -> false
  | Ast.Index (lv, e) -> lval_has_call lv || has_call e
  | Ast.Star e -> has_call e

(* Rewrite [e], emitting lifted calls through [emit]. *)
let rec norm_expr st ~loc ~emit (e : Ast.expr) : Ast.expr =
  match e with
  | Cint _ | Cstr _ -> e
  | Lval lv -> Lval (norm_lval st ~loc ~emit lv)
  | Addr lv -> Addr (norm_lval st ~loc ~emit lv)
  | Unop (op, a) -> Unop (op, norm_expr st ~loc ~emit a)
  | Binop (op, a, b) ->
      let a = norm_expr st ~loc ~emit a in
      let b = norm_expr st ~loc ~emit b in
      Binop (op, a, b)
  | Ecall (f, args) ->
      let args = List.map (norm_expr st ~loc ~emit) args in
      let tmp = fresh st in
      emit (Ast.mk_stmt ~loc (Ast.Scall (Some (Ast.Var tmp), f, args)));
      Lval (Var tmp)

and norm_lval st ~loc ~emit (lv : Ast.lval) : Ast.lval =
  match lv with
  | Var _ -> lv
  | Index (b, i) -> Index (norm_lval st ~loc ~emit b, norm_expr st ~loc ~emit i)
  | Star e -> Star (norm_expr st ~loc ~emit e)

let rec norm_stmt st (s : Ast.stmt) : Ast.stmt list =
  let loc = s.sloc in
  let pre = ref [] in
  let emit x = pre := x :: !pre in
  let finish desc = List.rev !pre @ [ Ast.mk_stmt ~loc desc ] in
  match s.sdesc with
  | Sassign (lv, Ecall (f, args)) ->
      let args = List.map (norm_expr st ~loc ~emit) args in
      let lv = norm_lval st ~loc ~emit lv in
      finish (Scall (Some lv, f, args))
  | Sassign (lv, e) ->
      let lv = norm_lval st ~loc ~emit lv in
      let e = norm_expr st ~loc ~emit e in
      finish (Sassign (lv, e))
  | Scall (lvo, f, args) ->
      let args = List.map (norm_expr st ~loc ~emit) args in
      let lvo = Option.map (norm_lval st ~loc ~emit) lvo in
      finish (Scall (lvo, f, args))
  | Sif (br, c, t, e) ->
      let c = norm_expr st ~loc ~emit c in
      let t = norm_block st t in
      let e = norm_block st e in
      finish (Sif (br, c, t, e))
  | Swhile (br, c, body) when has_call c ->
      (* CIL loop transformation: the loop head becomes an unconditional
         branch; the symbolic test moves to a fresh [if] inside. *)
      let body = norm_block st body in
      let c = norm_expr st ~loc ~emit c in
      let inner =
        Ast.mk_stmt ~loc
          (Ast.Sif
             ( Ast.mk_branch ~loc (),
               c,
               body,
               [ Ast.mk_stmt ~loc Ast.Sbreak ] ))
      in
      [ Ast.mk_stmt ~loc (Ast.Swhile (br, Ast.Cint 1, List.rev !pre @ [ inner ])) ]
  | Swhile (br, c, body) -> [ Ast.mk_stmt ~loc (Swhile (br, c, norm_block st body)) ]
  | Sreturn (Some e) ->
      let e = norm_expr st ~loc ~emit e in
      finish (Sreturn (Some e))
  | Sreturn None | Sbreak | Scontinue -> [ s ]
  | Sblock b -> [ Ast.mk_stmt ~loc (Sblock (norm_block st b)) ]

and norm_block st (b : Ast.block) : Ast.block =
  List.concat_map (norm_stmt st) b

(** Normalise a function in place. *)
let func (f : Ast.func) =
  let st = { counter = 0; func = f } in
  f.fbody <- norm_block st f.fbody

(** [block_is_normalised b] checks the invariant that no call remains in
    expression position (used by tests and as a linker sanity check). *)
let block_is_normalised (b : Ast.block) =
  (* fold_exprs visits call statements' arguments, not the statement call
     itself, so any Ecall seen here is in expression position. *)
  Ast.fold_exprs
    (fun ok e -> ok && (match e with Ast.Ecall _ -> false | _ -> true))
    true b
