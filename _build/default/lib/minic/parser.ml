(** Recursive-descent parser for MiniC.

    The surface syntax is a small C subset.  Local variables may be declared
    in any block; they are hoisted to function scope (duplicate names within
    one function are rejected).  [for] loops are desugared to [while] loops.
    Calls may appear in expression position; {!Normalize} lifts them out
    afterwards so that the final AST is CIL-shaped. *)

exception Error of string * Loc.t

type t = {
  mutable toks : (Token.t * Loc.t) list;
  mutable locals : Ast.var_decl list;  (** locals of the function being parsed *)
  mutable switch_count : int;  (** fresh temporaries for switch scrutinees *)
}

let error p msg =
  let loc = match p.toks with (_, l) :: _ -> l | [] -> Loc.none in
  raise (Error (msg, loc))

let peek p = match p.toks with (t, _) :: _ -> t | [] -> Token.EOF
let peek_loc p = match p.toks with (_, l) :: _ -> l | [] -> Loc.none

let junk p = match p.toks with _ :: rest -> p.toks <- rest | [] -> ()

let eat p tok =
  if peek p = tok then junk p
  else
    error p
      (Printf.sprintf "expected '%s' but found '%s'" (Token.to_string tok)
         (Token.to_string (peek p)))

let eat_ident p =
  match peek p with
  | Token.IDENT s ->
      junk p;
      s
  | t -> error p (Printf.sprintf "expected identifier, found '%s'" (Token.to_string t))

(* ------------------------------------------------------------------ *)
(* Types *)

let is_type_start = function Token.KW_INT | Token.KW_VOID -> true | _ -> false

let parse_base_type p =
  match peek p with
  | Token.KW_INT ->
      junk p;
      Types.Tint
  | Token.KW_VOID ->
      junk p;
      Types.Tvoid
  | t -> error p (Printf.sprintf "expected type, found '%s'" (Token.to_string t))

let rec parse_stars p ty =
  if peek p = Token.STAR then (
    junk p;
    parse_stars p (Types.Tptr ty))
  else ty

(* ------------------------------------------------------------------ *)
(* Expressions: precedence climbing *)

let as_lval p (e : Ast.expr) : Ast.lval =
  match e with
  | Ast.Lval lv -> lv
  | Ast.Cint _ | Ast.Cstr _ | Ast.Addr _ | Ast.Unop _ | Ast.Binop _ | Ast.Ecall _ ->
      error p "expression is not assignable"

let rec parse_expr p = parse_binary p 0

and binop_of_token lvl tok =
  (* Precedence levels, loosest first. *)
  match lvl, tok with
  | 0, Token.OROR -> Some Ast.Lor
  | 1, Token.ANDAND -> Some Ast.Land
  | 2, Token.PIPE -> Some Ast.Bor
  | 3, Token.CARET -> Some Ast.Bxor
  | 4, Token.AMP -> Some Ast.Band
  | 5, Token.EQ -> Some Ast.Eq
  | 5, Token.NE -> Some Ast.Ne
  | 6, Token.LT -> Some Ast.Lt
  | 6, Token.LE -> Some Ast.Le
  | 6, Token.GT -> Some Ast.Gt
  | 6, Token.GE -> Some Ast.Ge
  | 7, Token.SHL -> Some Ast.Shl
  | 7, Token.SHR -> Some Ast.Shr
  | 8, Token.PLUS -> Some Ast.Add
  | 8, Token.MINUS -> Some Ast.Sub
  | 9, Token.STAR -> Some Ast.Mul
  | 9, Token.SLASH -> Some Ast.Div
  | 9, Token.PERCENT -> Some Ast.Mod
  | _ -> None

and parse_binary p lvl =
  if lvl > 9 then parse_unary p
  else
    let rec loop lhs =
      match binop_of_token lvl (peek p) with
      | Some op ->
          junk p;
          let rhs = parse_binary p (lvl + 1) in
          loop (Ast.Binop (op, lhs, rhs))
      | None -> lhs
    in
    loop (parse_binary p (lvl + 1))

and parse_unary p =
  match peek p with
  | Token.MINUS -> (
      junk p;
      (* fold negated literals so that -5 round-trips as a constant *)
      match parse_unary p with
      | Ast.Cint n -> Ast.Cint (-n)
      | e -> Ast.Unop (Ast.Neg, e))
  | Token.NOT ->
      junk p;
      Ast.Unop (Ast.Lognot, parse_unary p)
  | Token.TILDE ->
      junk p;
      Ast.Unop (Ast.Bitnot, parse_unary p)
  | Token.STAR ->
      junk p;
      Ast.Lval (Ast.Star (parse_unary p))
  | Token.AMP ->
      junk p;
      let e = parse_unary p in
      Ast.Addr (as_lval p e)
  | _ -> parse_postfix p

and parse_postfix p =
  let e = parse_primary p in
  let rec loop e =
    match peek p with
    | Token.LBRACKET ->
        junk p;
        let idx = parse_expr p in
        eat p Token.RBRACKET;
        loop (Ast.Lval (Ast.Index (as_lval p e, idx)))
    | _ -> e
  in
  loop e

and parse_primary p =
  match peek p with
  | Token.INT n ->
      junk p;
      Ast.Cint n
  | Token.STR s ->
      junk p;
      Ast.Cstr s
  | Token.LPAREN ->
      junk p;
      let e = parse_expr p in
      eat p Token.RPAREN;
      e
  | Token.IDENT name ->
      junk p;
      if peek p = Token.LPAREN then (
        junk p;
        let args = parse_args p in
        Ast.Ecall (name, args))
      else Ast.Lval (Ast.Var name)
  | t -> error p (Printf.sprintf "unexpected token '%s'" (Token.to_string t))

and parse_args p =
  if peek p = Token.RPAREN then (
    junk p;
    [])
  else
    let rec loop acc =
      let e = parse_expr p in
      match peek p with
      | Token.COMMA ->
          junk p;
          loop (e :: acc)
      | Token.RPAREN ->
          junk p;
          List.rev (e :: acc)
      | t ->
          error p
            (Printf.sprintf "expected ',' or ')' in arguments, found '%s'"
               (Token.to_string t))
    in
    loop []

(* ------------------------------------------------------------------ *)
(* Statements *)

let add_local p (d : Ast.var_decl) =
  if List.exists (fun (x : Ast.var_decl) -> String.equal x.vname d.vname) p.locals
  then error p (Printf.sprintf "duplicate local variable '%s'" d.vname)
  else p.locals <- d :: p.locals

(* An assignment-or-call "simple statement" (used in statements and in the
   init/step slots of a for loop).  No trailing semicolon consumed.
   [x += e], [x -= e], [x++] and [x--] are sugar for plain assignments
   (note: the lvalue is duplicated, so keep such targets side-effect
   free — C compound assignment has the same single-evaluation caveat in
   reverse). *)
let parse_simple p : Ast.stmt =
  let loc = peek_loc p in
  let e = parse_expr p in
  match peek p with
  | Token.ASSIGN -> (
      let lv = as_lval p e in
      junk p;
      let rhs = parse_expr p in
      match rhs with
      | Ast.Ecall (f, args) -> Ast.mk_stmt ~loc (Ast.Scall (Some lv, f, args))
      | _ -> Ast.mk_stmt ~loc (Ast.Sassign (lv, rhs)))
  | Token.PLUSEQ | Token.MINUSEQ ->
      let op = if peek p = Token.PLUSEQ then Ast.Add else Ast.Sub in
      let lv = as_lval p e in
      junk p;
      let rhs = parse_expr p in
      Ast.mk_stmt ~loc (Ast.Sassign (lv, Ast.Binop (op, Ast.Lval lv, rhs)))
  | Token.PLUSPLUS | Token.MINUSMINUS ->
      let op = if peek p = Token.PLUSPLUS then Ast.Add else Ast.Sub in
      let lv = as_lval p e in
      junk p;
      Ast.mk_stmt ~loc (Ast.Sassign (lv, Ast.Binop (op, Ast.Lval lv, Ast.Cint 1)))
  | _ -> (
      match e with
      | Ast.Ecall (f, args) -> Ast.mk_stmt ~loc (Ast.Scall (None, f, args))
      | _ -> error p "expression statement must be a call or an assignment")

let rec parse_stmt p : Ast.stmt =
  let loc = peek_loc p in
  match peek p with
  | Token.LBRACE -> Ast.mk_stmt ~loc (Ast.Sblock (parse_block p))
  | Token.KW_IF ->
      junk p;
      eat p Token.LPAREN;
      let cond = parse_expr p in
      eat p Token.RPAREN;
      let then_b = parse_arm p in
      let else_b =
        if peek p = Token.KW_ELSE then (
          junk p;
          parse_arm p)
        else []
      in
      Ast.mk_stmt ~loc (Ast.Sif (Ast.mk_branch ~loc (), cond, then_b, else_b))
  | Token.KW_WHILE ->
      junk p;
      eat p Token.LPAREN;
      let cond = parse_expr p in
      eat p Token.RPAREN;
      let body = parse_arm p in
      Ast.mk_stmt ~loc (Ast.Swhile (Ast.mk_branch ~loc (), cond, body))
  | Token.KW_FOR ->
      junk p;
      eat p Token.LPAREN;
      let init = if peek p = Token.SEMI then None else Some (parse_simple p) in
      eat p Token.SEMI;
      let cond = if peek p = Token.SEMI then Ast.Cint 1 else parse_expr p in
      eat p Token.SEMI;
      let step = if peek p = Token.RPAREN then None else Some (parse_simple p) in
      eat p Token.RPAREN;
      let body = parse_arm p in
      (* for (i; c; s) b  ==>  { i; while (c) { b; s } }.
         [continue] inside a for body is rejected by {!Typecheck} because the
         desugaring would skip the step expression. *)
      let while_body = body @ Option.to_list step in
      let w =
        Ast.mk_stmt ~loc (Ast.Swhile (Ast.mk_branch ~loc (), cond, while_body))
      in
      Ast.mk_stmt ~loc (Ast.Sblock (Option.to_list init @ [ w ]))
  | Token.KW_SWITCH -> parse_switch p loc
  | Token.KW_RETURN ->
      junk p;
      if peek p = Token.SEMI then (
        junk p;
        Ast.mk_stmt ~loc (Ast.Sreturn None))
      else
        let e = parse_expr p in
        eat p Token.SEMI;
        Ast.mk_stmt ~loc (Ast.Sreturn (Some e))
  | Token.KW_BREAK ->
      junk p;
      eat p Token.SEMI;
      Ast.mk_stmt ~loc Ast.Sbreak
  | Token.KW_CONTINUE ->
      junk p;
      eat p Token.SEMI;
      Ast.mk_stmt ~loc Ast.Scontinue
  | Token.SEMI ->
      junk p;
      Ast.mk_stmt ~loc (Ast.Sblock [])
  | _ ->
      let s = parse_simple p in
      eat p Token.SEMI;
      s

(* switch (e) { case C1: case C2: stmts ... default: stmts }

   MiniC switch has no fallthrough: a case's body extends to the next
   [case]/[default] label (stacked labels share one body).  It desugars to
   an if/else-if chain over a fresh scrutinee temporary, which is exactly
   how CIL lowers small switches — every case test is an ordinary branch
   location for the analyses.  [break] inside a switch is not supported
   (it would bind to the enclosing loop). *)
and parse_switch p loc : Ast.stmt =
  junk p (* switch *);
  eat p Token.LPAREN;
  let scrutinee = parse_expr p in
  eat p Token.RPAREN;
  eat p Token.LBRACE;
  let parse_case_labels () =
    (* one or more stacked labels *)
    let rec labels acc =
      match peek p with
      | Token.KW_CASE ->
          junk p;
          let v =
            match peek p with
            | Token.INT n ->
                junk p;
                n
            | Token.MINUS -> (
                junk p;
                match peek p with
                | Token.INT n ->
                    junk p;
                    -n
                | _ -> error p "expected integer after 'case -'")
            | _ -> error p "case label must be an integer or character literal"
          in
          eat p Token.COLON;
          labels (`Case v :: acc)
      | Token.KW_DEFAULT ->
          junk p;
          eat p Token.COLON;
          labels (`Default :: acc)
      | _ -> List.rev acc
    in
    labels []
  in
  let parse_case_body () =
    let rec body acc =
      match peek p with
      | Token.KW_CASE | Token.KW_DEFAULT | Token.RBRACE -> List.rev acc
      | t when is_type_start t ->
          let stmts = parse_local_decl p in
          body (List.rev_append stmts acc)
      | _ -> body (parse_stmt p :: acc)
    in
    body []
  in
  let rec parse_cases acc =
    match peek p with
    | Token.RBRACE ->
        junk p;
        List.rev acc
    | Token.KW_CASE | Token.KW_DEFAULT ->
        let labels = parse_case_labels () in
        let body = parse_case_body () in
        parse_cases ((labels, body) :: acc)
    | t -> error p (Printf.sprintf "expected 'case' or 'default', found '%s'" (Token.to_string t))
  in
  let cases = parse_cases [] in
  (* fresh scrutinee temporary, hoisted like any local *)
  let tmp = Printf.sprintf "__sw%d" p.switch_count in
  p.switch_count <- p.switch_count + 1;
  add_local p { Ast.vname = tmp; vtyp = Types.Tint; vinit = None; vloc = loc };
  let assign =
    match scrutinee with
    | Ast.Ecall (f, args) -> Ast.mk_stmt ~loc (Ast.Scall (Some (Ast.Var tmp), f, args))
    | _ -> Ast.mk_stmt ~loc (Ast.Sassign (Ast.Var tmp, scrutinee))
  in
  let test_of labels =
    let consts =
      List.filter_map (function `Case v -> Some v | `Default -> None) labels
    in
    match consts with
    | [] -> None (* pure default *)
    | c0 :: rest ->
        Some
          (List.fold_left
             (fun acc c ->
               Ast.Binop
                 ( Ast.Lor,
                   acc,
                   Ast.Binop (Ast.Eq, Ast.Lval (Ast.Var tmp), Ast.Cint c) ))
             (Ast.Binop (Ast.Eq, Ast.Lval (Ast.Var tmp), Ast.Cint c0))
             rest)
  in
  let default_body =
    match
      List.find_opt
        (fun (labels, _) -> List.exists (fun l -> l = `Default) labels)
        cases
    with
    | Some (_, body) -> body
    | None -> []
  in
  let chain =
    List.fold_right
      (fun (labels, body) else_b ->
        match test_of labels with
        | None -> else_b (* the default arm is attached at the tail *)
        | Some cond ->
            [ Ast.mk_stmt ~loc (Ast.Sif (Ast.mk_branch ~loc (), cond, body, else_b)) ])
      cases default_body
  in
  Ast.mk_stmt ~loc (Ast.Sblock (assign :: chain))

(* A statement used as a branch arm or loop body: normalised to a block. *)
and parse_arm p : Ast.block =
  let s = parse_stmt p in
  match s.sdesc with Ast.Sblock b -> b | _ -> [ s ]

and parse_block p : Ast.block =
  eat p Token.LBRACE;
  let rec loop acc =
    match peek p with
    | Token.RBRACE ->
        junk p;
        List.rev acc
    | t when is_type_start t ->
        let stmts = parse_local_decl p in
        loop (List.rev_append stmts acc)
    | _ -> loop (parse_stmt p :: acc)
  in
  loop []

(* Local declaration: hoisted to function scope; an initialiser becomes an
   assignment statement in place. *)
and parse_local_decl p : Ast.stmt list =
  let loc = peek_loc p in
  let base = parse_base_type p in
  let rec one acc =
    let ty = parse_stars p base in
    let name = eat_ident p in
    let ty =
      if peek p = Token.LBRACKET then (
        junk p;
        let n =
          match peek p with
          | Token.INT n ->
              junk p;
              n
          | _ -> error p "array size must be an integer literal"
        in
        eat p Token.RBRACKET;
        Types.Tarr (ty, n))
      else ty
    in
    add_local p { Ast.vname = name; vtyp = ty; vinit = None; vloc = loc };
    let acc =
      if peek p = Token.ASSIGN then (
        junk p;
        let rhs = parse_expr p in
        let stmt =
          match rhs with
          | Ast.Ecall (f, args) ->
              Ast.mk_stmt ~loc (Ast.Scall (Some (Ast.Var name), f, args))
          | _ -> Ast.mk_stmt ~loc (Ast.Sassign (Ast.Var name, rhs))
        in
        stmt :: acc)
      else acc
    in
    match peek p with
    | Token.COMMA ->
        junk p;
        one acc
    | Token.SEMI ->
        junk p;
        List.rev acc
    | t ->
        error p
          (Printf.sprintf "expected ',' or ';' in declaration, found '%s'"
             (Token.to_string t))
  in
  one []

(* ------------------------------------------------------------------ *)
(* Top-level declarations *)

let parse_params p : (string * Types.t) list =
  eat p Token.LPAREN;
  match peek p with
  | Token.RPAREN ->
      junk p;
      []
  | Token.KW_VOID when (match p.toks with _ :: (Token.RPAREN, _) :: _ -> true | _ -> false)
    ->
      junk p;
      junk p;
      []
  | _ ->
      let rec loop acc =
        let base = parse_base_type p in
        let ty = parse_stars p base in
        let name = eat_ident p in
        let ty =
          if peek p = Token.LBRACKET then (
            junk p;
            eat p Token.RBRACKET;
            Types.Tptr ty)
          else ty
        in
        let acc = (name, ty) :: acc in
        match peek p with
        | Token.COMMA ->
            junk p;
            loop acc
        | Token.RPAREN ->
            junk p;
            List.rev acc
        | t ->
            error p
              (Printf.sprintf "expected ',' or ')' in parameters, found '%s'"
                 (Token.to_string t))
      in
      loop []

let parse_global_init p : Ast.expr option =
  if peek p = Token.ASSIGN then (
    junk p;
    let e = parse_expr p in
    match e with
    | Ast.Cint _ | Ast.Cstr _ | Ast.Unop (Ast.Neg, Ast.Cint _) -> Some e
    | _ -> error p "global initialiser must be a constant")
  else None

let parse_decl p ~is_lib (globals, funcs) =
  let loc = peek_loc p in
  let base = parse_base_type p in
  let ty = parse_stars p base in
  let name = eat_ident p in
  if peek p = Token.LPAREN then (
    p.locals <- [];
    p.switch_count <- 0;
    let params = parse_params p in
    let body = parse_block p in
    let f =
      {
        Ast.fname = name;
        fret = ty;
        fparams = params;
        flocals = List.rev p.locals;
        fbody = body;
        floc = loc;
        fis_lib = is_lib;
      }
    in
    (globals, f :: funcs))
  else
    let ty =
      if peek p = Token.LBRACKET then (
        junk p;
        let n =
          match peek p with
          | Token.INT n ->
              junk p;
              n
          | _ -> error p "array size must be an integer literal"
        in
        eat p Token.RBRACKET;
        Types.Tarr (ty, n))
      else ty
    in
    let init = parse_global_init p in
    eat p Token.SEMI;
    ({ Ast.vname = name; vtyp = ty; vinit = init; vloc = loc } :: globals, funcs)

(** Parse a full translation unit.  [is_lib] marks every parsed function as a
    runtime-library function (the paper's uClibc analogue). *)
let parse_unit ?(is_lib = false) ~file src : Ast.unit_ =
  let p = { toks = Lexer.tokenize ~file src; locals = []; switch_count = 0 } in
  let rec loop acc =
    match peek p with
    | Token.EOF ->
        let globals, funcs = acc in
        { Ast.u_globals = List.rev globals; u_funcs = List.rev funcs }
    | _ -> loop (parse_decl p ~is_lib acc)
  in
  loop ([], [])
