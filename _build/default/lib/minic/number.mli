(** Program-wide branch numbering.

    Every [if] and [while] in the linked program receives a unique branch
    id, assigned in deterministic program order (application functions
    first, then library functions).  The paper's analyses, instrumentation
    plans and branch logs are all keyed on these ids. *)

type kind = If_branch | While_branch

type info = {
  bid : int;
  bloc : Loc.t;
  bfunc : string;  (** enclosing function *)
  bis_lib : bool;  (** true for runtime-library branches *)
  bkind : kind;
}

val kind_to_string : kind -> string

(** Assign ids to all branches of the functions (mutating their [branch]
    records) and return the info table indexed by branch id. *)
val number : Ast.func list -> info array
