(** Hand-written lexer for MiniC.

    Supports line ([//]) and block ([/* */]) comments, decimal and hex
    integer literals, character literals (['a'], ['\n'], ...), and string
    literals with the usual escapes. *)

exception Error of string * Loc.t

type t = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (** offset of beginning of current line *)
}

let create ~file src = { src; file; pos = 0; line = 1; bol = 0 }

let loc lx = Loc.make ~file:lx.file ~line:lx.line ~col:(lx.pos - lx.bol + 1)

let error lx msg = raise (Error (msg, loc lx))

let peek lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let peek2 lx =
  if lx.pos + 1 < String.length lx.src then Some lx.src.[lx.pos + 1] else None

let advance lx =
  (match peek lx with
  | Some '\n' ->
      lx.line <- lx.line + 1;
      lx.bol <- lx.pos + 1
  | Some _ | None -> ());
  lx.pos <- lx.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || is_digit c

let rec skip_ws lx =
  match peek lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance lx;
      skip_ws lx
  | Some '/' when peek2 lx = Some '/' ->
      let rec to_eol () =
        match peek lx with
        | Some '\n' | None -> ()
        | Some _ ->
            advance lx;
            to_eol ()
      in
      to_eol ();
      skip_ws lx
  | Some '/' when peek2 lx = Some '*' ->
      advance lx;
      advance lx;
      let rec to_close () =
        match peek lx with
        | None -> error lx "unterminated block comment"
        | Some '*' when peek2 lx = Some '/' ->
            advance lx;
            advance lx
        | Some _ ->
            advance lx;
            to_close ()
      in
      to_close ();
      skip_ws lx
  | Some _ | None -> ()

let lex_escape lx =
  match peek lx with
  | None -> error lx "unterminated escape"
  | Some c ->
      advance lx;
      (match c with
      | 'n' -> '\n'
      | 't' -> '\t'
      | 'r' -> '\r'
      | '0' -> '\000'
      | '\\' -> '\\'
      | '\'' -> '\''
      | '"' -> '"'
      | c -> error lx (Printf.sprintf "unknown escape '\\%c'" c))

let lex_number lx =
  let start = lx.pos in
  let hex =
    peek lx = Some '0' && (peek2 lx = Some 'x' || peek2 lx = Some 'X')
  in
  if hex then (
    advance lx;
    advance lx;
    while (match peek lx with Some c -> is_hex c | None -> false) do
      advance lx
    done)
  else
    while (match peek lx with Some c -> is_digit c | None -> false) do
      advance lx
    done;
  let s = String.sub lx.src start (lx.pos - start) in
  match int_of_string_opt s with
  | Some n -> Token.INT n
  | None -> error lx (Printf.sprintf "bad integer literal %s" s)

let keyword_of_string = function
  | "int" -> Some Token.KW_INT
  | "void" -> Some Token.KW_VOID
  | "if" -> Some Token.KW_IF
  | "else" -> Some Token.KW_ELSE
  | "while" -> Some Token.KW_WHILE
  | "for" -> Some Token.KW_FOR
  | "return" -> Some Token.KW_RETURN
  | "break" -> Some Token.KW_BREAK
  | "continue" -> Some Token.KW_CONTINUE
  | "switch" -> Some Token.KW_SWITCH
  | "case" -> Some Token.KW_CASE
  | "default" -> Some Token.KW_DEFAULT
  | _ -> None

let lex_ident lx =
  let start = lx.pos in
  while (match peek lx with Some c -> is_ident c | None -> false) do
    advance lx
  done;
  let s = String.sub lx.src start (lx.pos - start) in
  match keyword_of_string s with Some kw -> kw | None -> Token.IDENT s

let lex_string lx =
  advance lx;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek lx with
    | None -> error lx "unterminated string literal"
    | Some '"' -> advance lx
    | Some '\\' ->
        advance lx;
        Buffer.add_char buf (lex_escape lx);
        go ()
    | Some c ->
        advance lx;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Token.STR (Buffer.contents buf)

let lex_char lx =
  advance lx;
  let c =
    match peek lx with
    | None -> error lx "unterminated character literal"
    | Some '\\' ->
        advance lx;
        lex_escape lx
    | Some c ->
        advance lx;
        c
  in
  (match peek lx with
  | Some '\'' -> advance lx
  | Some _ | None -> error lx "unterminated character literal");
  Token.INT (Char.code c)

(** Next token together with its start location. *)
let next lx : Token.t * Loc.t =
  skip_ws lx;
  let l = loc lx in
  let two tok =
    advance lx;
    advance lx;
    tok
  in
  let one tok =
    advance lx;
    tok
  in
  let tok =
    match peek lx with
    | None -> Token.EOF
    | Some c when is_digit c -> lex_number lx
    | Some c when is_ident_start c -> lex_ident lx
    | Some '"' -> lex_string lx
    | Some '\'' -> lex_char lx
    | Some '(' -> one Token.LPAREN
    | Some ')' -> one Token.RPAREN
    | Some '{' -> one Token.LBRACE
    | Some '}' -> one Token.RBRACE
    | Some '[' -> one Token.LBRACKET
    | Some ']' -> one Token.RBRACKET
    | Some ';' -> one Token.SEMI
    | Some ',' -> one Token.COMMA
    | Some ':' -> one Token.COLON
    | Some '+' ->
        if peek2 lx = Some '=' then two Token.PLUSEQ
        else if peek2 lx = Some '+' then two Token.PLUSPLUS
        else one Token.PLUS
    | Some '-' ->
        if peek2 lx = Some '=' then two Token.MINUSEQ
        else if peek2 lx = Some '-' then two Token.MINUSMINUS
        else one Token.MINUS
    | Some '*' -> one Token.STAR
    | Some '/' -> one Token.SLASH
    | Some '%' -> one Token.PERCENT
    | Some '~' -> one Token.TILDE
    | Some '^' -> one Token.CARET
    | Some '=' -> if peek2 lx = Some '=' then two Token.EQ else one Token.ASSIGN
    | Some '!' -> if peek2 lx = Some '=' then two Token.NE else one Token.NOT
    | Some '<' ->
        if peek2 lx = Some '=' then two Token.LE
        else if peek2 lx = Some '<' then two Token.SHL
        else one Token.LT
    | Some '>' ->
        if peek2 lx = Some '=' then two Token.GE
        else if peek2 lx = Some '>' then two Token.SHR
        else one Token.GT
    | Some '&' -> if peek2 lx = Some '&' then two Token.ANDAND else one Token.AMP
    | Some '|' -> if peek2 lx = Some '|' then two Token.OROR else one Token.PIPE
    | Some c -> error lx (Printf.sprintf "unexpected character %C" c)
  in
  (tok, l)

(** Lex an entire source string. *)
let tokenize ~file src : (Token.t * Loc.t) list =
  let lx = create ~file src in
  let rec go acc =
    let t, l = next lx in
    if t = Token.EOF then List.rev ((t, l) :: acc) else go ((t, l) :: acc)
  in
  go []
