(** Source locations.  Crash sites and branch locations are reported the
    way the paper reports them: file and line. *)

type t = { file : string; line : int; col : int }

val none : t
val make : file:string -> line:int -> col:int -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
