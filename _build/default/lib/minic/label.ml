(** Branch labels produced by the paper's analyses.

    Dynamic analysis labels branches [Symbolic], [Concrete] or leaves them
    [Unvisited]; static analysis labels every branch [Symbolic] or
    [Concrete].  The instrumentation methods of §2.3 combine these maps. *)

type t = Symbolic | Concrete | Unvisited

let to_string = function
  | Symbolic -> "symbolic"
  | Concrete -> "concrete"
  | Unvisited -> "unvisited"

let pp fmt l = Format.pp_print_string fmt (to_string l)

let equal (a : t) b = a = b

(** A labelling of all branch locations of a program: index = branch id. *)
type map = t array

let make ~nbranches init : map = Array.make nbranches init

(** Sticky upgrade used by dynamic analysis (§2.1): once symbolic, always
    symbolic; concrete may be upgraded to symbolic on a later visit. *)
let observe (m : map) bid ~symbolic =
  match m.(bid) with
  | Symbolic -> ()
  | Concrete | Unvisited -> if symbolic then m.(bid) <- Symbolic else m.(bid) <- Concrete

let count (m : map) l =
  Array.fold_left (fun n x -> if equal x l then n + 1 else n) 0 m
