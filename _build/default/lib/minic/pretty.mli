(** Pretty-printer for MiniC.

    Prints a parseable program; expressions are conservatively parenthesised
    so that [parse (print (parse src))] yields a structurally identical AST
    (property-tested). *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_lval : Format.formatter -> Ast.lval -> unit
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_block : Format.formatter -> Ast.block -> unit
val pp_var_decl : Format.formatter -> Ast.var_decl -> unit
val pp_func : Format.formatter -> Ast.func -> unit
val pp_unit : Format.formatter -> Ast.unit_ -> unit
val unit_to_string : Ast.unit_ -> string
val expr_to_string : Ast.expr -> string
val stmt_to_string : Ast.stmt -> string
