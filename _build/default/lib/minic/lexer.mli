(** Hand-written lexer for MiniC.

    Supports line ([//]) and block ([/* */]) comments, decimal and hex
    integer literals, character literals, and string literals with the
    usual escapes. *)

exception Error of string * Loc.t

type t

val create : file:string -> string -> t

(** Next token with its start location; returns {!Token.EOF} at the end. *)
val next : t -> Token.t * Loc.t

(** Lex an entire source string (ends with an [EOF] token). *)
val tokenize : file:string -> string -> (Token.t * Loc.t) list
