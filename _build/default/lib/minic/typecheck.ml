(** Light-weight type checker for linked MiniC programs.

    MiniC deliberately follows C's laissez-faire attitude (pointers compare
    against integer 0, array decay, no implicit-conversion diagnostics), but
    catches the errors that actually bite when authoring workloads: unknown
    variables and functions, wrong arity, indexing a scalar, dereferencing a
    non-pointer, assigning to an array, and [break]/[continue] outside a
    loop. *)

exception Error of string * Loc.t

type env = {
  globals : (string, Types.t) Hashtbl.t;
  funcs : (string, Ast.func) Hashtbl.t;
  mutable vars : (string * Types.t) list;  (** params + locals of current fn *)
}

let err loc fmt = Format.kasprintf (fun m -> raise (Error (m, loc))) fmt

let lookup_var env loc x =
  match List.assoc_opt x env.vars with
  | Some t -> t
  | None -> (
      match Hashtbl.find_opt env.globals x with
      | Some t -> t
      | None -> err loc "unknown variable '%s'" x)

let rec check_lval env loc (lv : Ast.lval) : Types.t =
  match lv with
  | Var x -> lookup_var env loc x
  | Index (b, i) -> (
      let bt = check_lval env loc b in
      let (_ : Types.t) = check_expr env loc i in
      match Types.element bt with
      | Some t -> t
      | None -> err loc "indexing a non-array, non-pointer value")
  | Star e -> (
      let t = check_expr env loc e in
      match Types.element t with
      | Some t -> t
      | None -> err loc "dereferencing a non-pointer value")

and check_expr env loc (e : Ast.expr) : Types.t =
  match e with
  | Cint _ -> Types.Tint
  | Cstr _ -> Types.Tptr Types.Tint
  | Lval lv -> Types.decay (check_lval env loc lv)
  | Addr lv -> Types.Tptr (check_lval env loc lv)
  | Unop (_, a) ->
      let (_ : Types.t) = check_expr env loc a in
      Types.Tint
  | Binop (op, a, b) -> (
      let ta = check_expr env loc a in
      let tb = check_expr env loc b in
      match op with
      | Add | Sub -> (
          (* pointer arithmetic: ptr +/- int is a pointer *)
          match ta, tb with
          | Types.Tptr _, _ -> ta
          | _, Types.Tptr _ -> tb
          | _ -> Types.Tint)
      | Mul | Div | Mod | Eq | Ne | Lt | Le | Gt | Ge | Land | Lor | Band | Bor
      | Bxor | Shl | Shr ->
          Types.Tint)
  | Ecall (f, _) -> err loc "internal: call '%s' in expression position" f

let check_call env loc lvo fname args =
  let ret, nparams =
    match Builtin.find fname with
    | Some b -> (b.ret, List.length b.params)
    | None -> (
        match Hashtbl.find_opt env.funcs fname with
        | Some f -> (f.fret, List.length f.fparams)
        | None -> err loc "unknown function '%s'" fname)
  in
  if List.length args <> nparams then
    err loc "function '%s' expects %d argument(s), got %d" fname nparams
      (List.length args);
  List.iter (fun a -> ignore (check_expr env loc a)) args;
  match lvo with
  | None -> ()
  | Some lv ->
      if Types.equal ret Types.Tvoid then
        err loc "void function '%s' used in assignment" fname
      else ignore (check_lval env loc lv)

let rec check_stmt env ~in_loop (s : Ast.stmt) =
  let loc = s.sloc in
  match s.sdesc with
  | Sassign (lv, e) -> (
      let tl = check_lval env loc lv in
      let (_ : Types.t) = check_expr env loc e in
      match tl with
      | Types.Tarr _ -> err loc "cannot assign to an array"
      | Types.Tvoid | Types.Tint | Types.Tptr _ -> ())
  | Scall (lvo, f, args) -> check_call env loc lvo f args
  | Sif (_, c, t, e) ->
      ignore (check_expr env loc c);
      check_block env ~in_loop t;
      check_block env ~in_loop e
  | Swhile (_, c, b) ->
      ignore (check_expr env loc c);
      check_block env ~in_loop:true b
  | Sreturn (Some e) -> ignore (check_expr env loc e)
  | Sreturn None -> ()
  | Sbreak -> if not in_loop then err loc "break outside of a loop"
  | Scontinue -> if not in_loop then err loc "continue outside of a loop"
  | Sblock b -> check_block env ~in_loop b

and check_block env ~in_loop b = List.iter (check_stmt env ~in_loop) b

let check_func env (f : Ast.func) =
  env.vars <-
    f.fparams @ List.map (fun (d : Ast.var_decl) -> (d.vname, d.vtyp)) f.flocals;
  (* duplicate parameter/local detection *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (x, _) ->
      if Hashtbl.mem seen x then err f.floc "duplicate variable '%s' in '%s'" x f.fname
      else Hashtbl.replace seen x ())
    env.vars;
  check_block env ~in_loop:false f.fbody

(** Check a linked set of globals and functions.  Raises {!Error}. *)
let check ~(globals : Ast.var_decl list) ~(funcs : Ast.func list) =
  let env =
    { globals = Hashtbl.create 64; funcs = Hashtbl.create 64; vars = [] }
  in
  List.iter
    (fun (d : Ast.var_decl) ->
      if Hashtbl.mem env.globals d.vname then
        err d.vloc "duplicate global '%s'" d.vname;
      Hashtbl.replace env.globals d.vname d.vtyp)
    globals;
  List.iter
    (fun (f : Ast.func) ->
      if Hashtbl.mem env.funcs f.fname then
        err f.floc "duplicate function '%s'" f.fname;
      if Builtin.is_builtin f.fname then
        err f.floc "function '%s' shadows a builtin" f.fname;
      Hashtbl.replace env.funcs f.fname f)
    funcs;
  List.iter (check_func env) funcs
