(** Structural AST equality, ignoring source locations and branch ids.
    Used by the parser/pretty-printer round-trip property tests. *)

val equal_expr : Ast.expr -> Ast.expr -> bool
val equal_lval : Ast.lval -> Ast.lval -> bool
val equal_stmt : Ast.stmt -> Ast.stmt -> bool
val equal_block : Ast.block -> Ast.block -> bool
val equal_var_decl : Ast.var_decl -> Ast.var_decl -> bool
val equal_func : Ast.func -> Ast.func -> bool
val equal_unit : Ast.unit_ -> Ast.unit_ -> bool
