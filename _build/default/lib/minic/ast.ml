(** Abstract syntax of MiniC.

    The AST mirrors CIL-normalised C: function calls appear only in statement
    position ([Scall]), every conditional is an explicit two-way branch, and
    loops are [while] loops ([for] is desugared by the parser).  This is the
    program shape on which the paper's Algorithms 1 and 2 operate.

    Logical [&&] and [||] are strict in MiniC (both operands are evaluated);
    this keeps "one [if] = one branch location", which is what the branch
    numbering, instrumentation and replay all rely on. *)

type unop =
  | Neg  (** arithmetic negation *)
  | Lognot  (** logical not: [!e] is 1 when [e = 0], else 0 *)
  | Bitnot  (** bitwise complement *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Land  (** strict logical and *)
  | Lor  (** strict logical or *)
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr

type expr =
  | Cint of int
  | Cstr of string  (** string literal; evaluates to a pointer to interned bytes *)
  | Lval of lval
  | Addr of lval  (** [&lv] *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Ecall of string * expr list
      (** call in expression position; removed by {!Normalize} *)

and lval =
  | Var of string
  | Index of lval * expr  (** [a[i]]; also pointer indexing [p[i]] *)
  | Star of expr  (** [*e] *)

(** A branch site.  Ids are assigned program-wide by {!Number} after linking;
    [-1] means "not yet numbered". *)
type branch = { mutable bid : int; bloc : Loc.t }

type stmt = { sloc : Loc.t; sdesc : stmt_desc }

and stmt_desc =
  | Sassign of lval * expr
  | Scall of lval option * string * expr list
  | Sif of branch * expr * block * block
  | Swhile of branch * expr * block
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sblock of block

and block = stmt list

type var_decl = {
  vname : string;
  vtyp : Types.t;
  vinit : expr option;  (** globals: constant only; locals: arbitrary *)
  vloc : Loc.t;
}

type func = {
  fname : string;
  fret : Types.t;
  fparams : (string * Types.t) list;
  mutable flocals : var_decl list;
  mutable fbody : block;
  floc : Loc.t;
  fis_lib : bool;  (** true for runtime-library functions (the uClibc analogue) *)
}

(** A translation unit as produced by the parser (before linking). *)
type unit_ = { u_globals : var_decl list; u_funcs : func list }

let mk_stmt ?(loc = Loc.none) sdesc = { sloc = loc; sdesc }

let mk_branch ?(loc = Loc.none) () = { bid = -1; bloc = loc }

let unop_to_string = function Neg -> "-" | Lognot -> "!" | Bitnot -> "~"

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Land -> "&&"
  | Lor -> "||"
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"

(** Iterate over every statement of a block, recursing into nested blocks and
    branch arms, in source order. *)
let rec iter_stmts f (b : block) =
  List.iter
    (fun s ->
      f s;
      match s.sdesc with
      | Sif (_, _, t, e) ->
          iter_stmts f t;
          iter_stmts f e
      | Swhile (_, _, body) -> iter_stmts f body
      | Sblock body -> iter_stmts f body
      | Sassign _ | Scall _ | Sreturn _ | Sbreak | Scontinue -> ())
    b

(** Fold over every expression occurring in a block (conditions, right-hand
    sides, call arguments, lvalue indices). *)
let fold_exprs f acc (b : block) =
  let acc = ref acc in
  let rec on_expr e =
    acc := f !acc e;
    match e with
    | Cint _ | Cstr _ -> ()
    | Lval lv | Addr lv -> on_lval lv
    | Unop (_, a) -> on_expr a
    | Binop (_, a, b) ->
        on_expr a;
        on_expr b
    | Ecall (_, args) -> List.iter on_expr args
  and on_lval = function
    | Var _ -> ()
    | Index (lv, e) ->
        on_lval lv;
        on_expr e
    | Star e -> on_expr e
  in
  iter_stmts
    (fun s ->
      match s.sdesc with
      | Sassign (lv, e) ->
          on_lval lv;
          on_expr e
      | Scall (lvo, _, args) ->
          Option.iter on_lval lvo;
          List.iter on_expr args
      | Sif (_, c, _, _) | Swhile (_, c, _) -> on_expr c
      | Sreturn (Some e) -> on_expr e
      | Sreturn None | Sbreak | Scontinue | Sblock _ -> ())
    b;
  !acc
