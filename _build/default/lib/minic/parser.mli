(** Recursive-descent parser for MiniC (a small C subset).

    Local variables may be declared in any block and are hoisted to function
    scope; [for] loops desugar to [while]; negated integer literals fold to
    constants.  Calls may appear in expression position in the parsed unit;
    {!Normalize} (run by {!Program.link}) lifts them out afterwards. *)

exception Error of string * Loc.t

(** Parse a translation unit.  [is_lib] marks every parsed function as a
    runtime-library function (the paper's uClibc analogue).  Raises
    {!Error} or {!Lexer.Error}. *)
val parse_unit : ?is_lib:bool -> file:string -> string -> Ast.unit_
