(** Tokens of the MiniC surface syntax. *)

type t =
  | INT of int
  | STR of string
  | IDENT of string
  | KW_INT
  | KW_VOID
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_FOR
  | KW_RETURN
  | KW_BREAK
  | KW_CONTINUE
  | KW_SWITCH
  | KW_CASE
  | KW_DEFAULT
  | COLON
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | ASSIGN
  | PLUSEQ
  | MINUSEQ
  | PLUSPLUS
  | MINUSMINUS
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | ANDAND
  | OROR
  | NOT
  | AMP
  | PIPE
  | CARET
  | TILDE
  | SHL
  | SHR
  | EOF

let to_string = function
  | INT n -> string_of_int n
  | STR s -> Printf.sprintf "%S" s
  | IDENT s -> s
  | KW_INT -> "int"
  | KW_VOID -> "void"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_WHILE -> "while"
  | KW_FOR -> "for"
  | KW_RETURN -> "return"
  | KW_BREAK -> "break"
  | KW_CONTINUE -> "continue"
  | KW_SWITCH -> "switch"
  | KW_CASE -> "case"
  | KW_DEFAULT -> "default"
  | COLON -> ":"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | SEMI -> ";"
  | COMMA -> ","
  | ASSIGN -> "="
  | PLUSEQ -> "+="
  | MINUSEQ -> "-="
  | PLUSPLUS -> "++"
  | MINUSMINUS -> "--"
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | EQ -> "=="
  | NE -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | ANDAND -> "&&"
  | OROR -> "||"
  | NOT -> "!"
  | AMP -> "&"
  | PIPE -> "|"
  | CARET -> "^"
  | TILDE -> "~"
  | SHL -> "<<"
  | SHR -> ">>"
  | EOF -> "<eof>"
