(** Program-wide branch numbering.

    Every [if] and [while] in the linked program receives a unique branch id,
    assigned in deterministic program order (application functions first,
    then library functions, in declaration order).  The paper's analyses,
    instrumentation plans and branch logs are all keyed on these ids. *)

type kind = If_branch | While_branch

type info = {
  bid : int;
  bloc : Loc.t;
  bfunc : string;  (** enclosing function *)
  bis_lib : bool;  (** true for runtime-library branches *)
  bkind : kind;
}

let kind_to_string = function If_branch -> "if" | While_branch -> "while"

(** Assign ids to all branches of [funcs] (in place) and return the branch
    info table, indexed by branch id. *)
let number (funcs : Ast.func list) : info array =
  let infos = ref [] in
  let next = ref 0 in
  let assign (br : Ast.branch) ~bfunc ~bis_lib ~bkind =
    br.bid <- !next;
    infos := { bid = !next; bloc = br.bloc; bfunc; bis_lib; bkind } :: !infos;
    incr next
  in
  let app, lib = List.partition (fun (f : Ast.func) -> not f.fis_lib) funcs in
  List.iter
    (fun (f : Ast.func) ->
      Ast.iter_stmts
        (fun s ->
          match s.sdesc with
          | Sif (br, _, _, _) ->
              assign br ~bfunc:f.fname ~bis_lib:f.fis_lib ~bkind:If_branch
          | Swhile (br, _, _) ->
              assign br ~bfunc:f.fname ~bis_lib:f.fis_lib ~bkind:While_branch
          | Sassign _ | Scall _ | Sreturn _ | Sbreak | Scontinue | Sblock _ -> ())
        f.fbody)
    (app @ lib);
  let arr = Array.of_list (List.rev !infos) in
  Array.iteri (fun i b -> assert (b.bid = i)) arr;
  arr
