lib/minic/types.ml: Format
