lib/minic/ast.ml: List Loc Option Types
