lib/minic/builtin.mli: Types
