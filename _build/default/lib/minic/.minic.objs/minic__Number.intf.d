lib/minic/number.mli: Ast Loc
