lib/minic/parser.ml: Ast Lexer List Loc Option Printf String Token Types
