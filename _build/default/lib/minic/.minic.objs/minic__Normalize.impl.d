lib/minic/normalize.ml: Ast List Loc Option Printf Types
