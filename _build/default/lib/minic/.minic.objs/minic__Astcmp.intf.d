lib/minic/astcmp.mli: Ast
