lib/minic/label.mli: Format
