lib/minic/program.ml: Array Ast Hashtbl List Loc Normalize Number Parser Printf String Typecheck
