lib/minic/label.ml: Array Format
