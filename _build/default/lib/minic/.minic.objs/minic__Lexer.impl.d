lib/minic/lexer.ml: Buffer Char List Loc Printf String Token
