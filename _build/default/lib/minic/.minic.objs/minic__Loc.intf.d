lib/minic/loc.mli: Format
