lib/minic/normalize.mli: Ast
