lib/minic/builtin.ml: Hashtbl List Types
