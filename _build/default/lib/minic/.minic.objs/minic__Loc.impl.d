lib/minic/loc.ml: Format Int String
