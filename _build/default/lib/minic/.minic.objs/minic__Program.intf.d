lib/minic/program.mli: Ast Hashtbl Number
