lib/minic/number.ml: Array Ast List Loc
