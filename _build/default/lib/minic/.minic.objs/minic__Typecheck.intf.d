lib/minic/typecheck.mli: Ast Loc
