lib/minic/astcmp.ml: Ast List Option String Types
