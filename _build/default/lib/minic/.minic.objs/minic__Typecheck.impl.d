lib/minic/typecheck.ml: Ast Builtin Format Hashtbl List Loc Types
