(** Built-in functions of the MiniC runtime.

    The primitives the interpreter implements natively; everything else
    (strlen, atoi, ...) is written in MiniC itself and linked as the
    runtime library, mirroring the paper's use of uClibc.  The table also
    records what static analysis needs: which pointer arguments receive
    input bytes and whether the return value is itself program input. *)

type t = {
  name : string;
  ret : Types.t;
  params : Types.t list;
  taints_args : int list;
      (** indices (0-based) of pointer parameters whose pointees become
          input *)
  returns_input : bool;
  is_syscall : bool;  (** result produced by the simulated kernel *)
}

val all : t list
val find : string -> t option
val is_builtin : string -> bool
