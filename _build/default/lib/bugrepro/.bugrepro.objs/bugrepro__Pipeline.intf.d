lib/bugrepro/pipeline.mli: Concolic Instrument Minic Replay Staticanalysis
