lib/bugrepro/pipeline.ml: Array Concolic Instrument Interp Minic Option Osmodel Program Replay Solver Staticanalysis
