bin/bugrepro_cli.mli:
