bin/bugrepro_cli.ml: Arg Bugrepro Cmd Cmdliner Concolic Instrument Interp Lazy List Minic Osmodel Printf Replay String Term Workloads
