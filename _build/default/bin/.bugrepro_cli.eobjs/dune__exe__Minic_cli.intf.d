bin/minic_cli.mli:
