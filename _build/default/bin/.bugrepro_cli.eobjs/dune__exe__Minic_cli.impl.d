bin/minic_cli.ml: Array Concolic Filename Interp List Minic Osmodel Printf Staticanalysis String Sys Workloads
