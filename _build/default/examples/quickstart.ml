(* Quickstart: the full bug-reporting pipeline on a 20-line program.

   Run with:  dune exec examples/quickstart.exe

   A MiniC program crashes when its argument spells a particular word.  We
   play both roles: the developer analyses and instruments the program
   before shipping; the "user" hits the bug; the developer reproduces it
   from the shipped bit log — without ever seeing the user's input. *)

let source =
  {|
int check(int *password) {
  if (password[0] == 'o') {
    if (password[1] == 'c') {
      if (password[2] == 'a') {
        if (password[3] == 'm') {
          if (password[4] == 'l') {
            crash(); // the bug: a missing length check, say
          }
        }
      }
    }
  }
  return 0;
}

int main() {
  int buf[16];
  arg(0, buf, 16);
  check(buf);
  print_str("ok\n");
  return 0;
}
|}

let () =
  print_endline "== 1. developer: compile and analyse the program ==";
  let prog = Workloads.Runtime_lib.link ~name:"quickstart" source in
  Printf.printf "linked: %d branch locations (%d in the runtime library)\n"
    (Minic.Program.nbranches prog)
    (Minic.Program.lib_branch_count prog);

  (* pre-deployment analysis: concolic execution on a harmless test input,
     plus static dataflow analysis *)
  let test_scenario =
    Concolic.Scenario.make ~name:"quickstart-test" ~args:[ "hello" ] prog
  in
  let analysis =
    Bugrepro.Pipeline.analyze
      ~dynamic_budget:{ Concolic.Engine.max_runs = 50; max_time_s = 5.0 }
      ~test_scenario prog
  in
  (match analysis.dynamic with
  | Some d ->
      Printf.printf "dynamic analysis: %d runs, %.0f%% branch coverage\n" d.runs
        (100.0 *. d.coverage)
  | None -> ());

  print_endline "\n== 2. developer: choose a method and instrument ==";
  let plan = Bugrepro.Pipeline.plan analysis Instrument.Methods.Dynamic_static in
  Printf.printf "dynamic+static instruments %d of %d branch locations\n"
    plan.n_instrumented
    (Minic.Program.nbranches prog);

  print_endline "\n== 3. user site: the program crashes on private input ==";
  let user_scenario =
    Concolic.Scenario.make ~name:"quickstart" ~args:[ "ocaml" ] prog
  in
  let field, report = Bugrepro.Pipeline.field_run_report ~plan user_scenario in
  Printf.printf "user run: %s\n" (Interp.Crash.outcome_to_string field.outcome);
  let report = Option.get report in
  Printf.printf "bug report shipped to the developer: %s\n"
    (Instrument.Report.describe report);
  Printf.printf "(the report is %d bytes and contains no input content)\n"
    (Instrument.Report.transfer_bytes report);

  print_endline "\n== 4. developer: reproduce the bug from the report ==";
  let result, stats =
    Bugrepro.Pipeline.reproduce
      ~budget:{ Concolic.Engine.max_runs = 2000; max_time_s = 10.0 }
      ~prog ~plan report
  in
  (match result with
  | Replay.Guided.Reproduced r ->
      Printf.printf "reproduced after %d guided runs in %.3fs at %s\n" r.runs
        r.elapsed_s
        (Interp.Crash.to_string r.crash);
      (* decode the synthesised input from the model *)
      let bytes =
        List.filter_map
          (fun pos ->
            let name = Concolic.Names.arg_byte ~arg:0 ~pos in
            match Solver.Symvars.find_by_name stats.vars name with
            | Some id -> Solver.Model.find_opt id r.model
            | None -> None)
          [ 0; 1; 2; 3; 4 ]
      in
      Printf.printf "synthesised crashing input prefix: %S\n"
        (String.concat ""
           (List.map (fun b -> String.make 1 (Char.chr (b land 0xff))) bytes))
  | Replay.Guided.Not_reproduced _ -> print_endline "not reproduced (unexpected)");
  Printf.printf "replay case counts: %d pinned by the log, %d forced corrections\n"
    stats.cases.case2a stats.cases.case2b
