(* Checkpointing a long-running server (§6).

   Run with:  dune exec examples/longrunning_checkpoint.exe

   A server that has been up for a while would ship an enormous branch log.
   The checkpointed build discards the log at every checkpoint and snapshots
   only the *structure* of its global state; a crash ships the final epoch.
   Replay starts from the checkpoint with fully symbolic state. *)

let () =
  let reqs =
    Workloads.Http_gen.workload ~seed:3 12
    @ (Workloads.Userver.experiment 1).requests
  in
  let sc = Workloads.Userver.checkpointed_scenario reqs in
  let prog = Lazy.force Workloads.Userver.checkpointed_prog in
  let plan =
    Instrument.Plan.make
      ~nbranches:(Minic.Program.nbranches prog)
      Instrument.Methods.All_branches
  in

  Printf.printf "serving %d requests on the checkpointed µServer...\n"
    (List.length reqs);
  let r = Checkpoint.Cfield.run ~plan sc in
  Printf.printf "outcome: %s\n" (Interp.Crash.outcome_to_string r.outcome);
  Printf.printf
    "checkpoints: %d; bits discarded at checkpoints: %d; final epoch: %d bits\n"
    r.epochs r.discarded_bits r.branch_log.nbits;
  Printf.printf "=> %.0f%% of the log never left the user site\n"
    (100.0 *. float_of_int r.discarded_bits /. float_of_int (max r.total_bits 1));

  match Checkpoint.Cfield.report_of ~sc ~plan r with
  | Some (report, Some snapshot) -> (
      Printf.printf "snapshot: %d globals, %d bytes (structure only)\n"
        (List.length snapshot.globals)
        (Checkpoint.Snapshot.size_bytes snapshot);
      print_endline "\n-- replay from the checkpoint --";
      let result, stats =
        Checkpoint.Creplay.reproduce
          ~budget:{ Concolic.Engine.max_runs = 50_000; max_time_s = 60.0 }
          ~prog ~plan ~snapshot report
      in
      match result with
      | Replay.Guided.Reproduced rr ->
          Printf.printf
            "reproduced in %.1fs after %d runs — the engine synthesised both\n\
             the post-checkpoint requests and a consistent pre-checkpoint\n\
             server state (%d log-pinned decisions, %d forced corrections).\n"
            rr.elapsed_s rr.runs stats.cases.case2a stats.cases.case2b
      | Replay.Guided.Not_reproduced rr ->
          Printf.printf "not reproduced (%d runs; raise the budget)\n" rr.runs)
  | _ -> print_endline "no crash or no checkpoint taken (tune the request count)"
