examples/webserver_debugging.ml: Buffer Bugrepro Char Concolic Instrument Interp Lazy List Minic Option Printf Replay Solver String Workloads
