examples/privacy_audit.ml: Buffer Bugrepro Char Concolic Instrument Interp List Minic Option Printf Replay Solver String Workloads
