examples/coreutils_bugs.mli:
