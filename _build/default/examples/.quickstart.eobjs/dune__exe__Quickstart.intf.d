examples/quickstart.mli:
