examples/longrunning_checkpoint.ml: Checkpoint Concolic Instrument Interp Lazy List Minic Printf Replay Workloads
