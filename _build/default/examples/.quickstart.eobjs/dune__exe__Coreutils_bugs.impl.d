examples/coreutils_bugs.ml: Bugrepro Concolic Instrument Lazy List Printf Replay String Workloads
