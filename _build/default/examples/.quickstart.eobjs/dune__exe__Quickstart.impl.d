examples/quickstart.ml: Bugrepro Char Concolic Instrument Interp List Minic Option Printf Replay Solver String Workloads
