examples/longrunning_checkpoint.mli:
