examples/race_debugging.ml: Bugrepro Concolic Instrument Interp List Minic Option Printf Replay String Workloads
