examples/webserver_debugging.mli:
