(* Debugging a web-server crash from a partial branch log.

   Run with:  dune exec examples/webserver_debugging.exe

   The µServer (the paper's uServer analogue) crashes while parsing a
   malicious Cookie header.  The operator's instrumented build logged one
   bit per instrumented branch plus selected system-call results; we replay
   that log to synthesise a request that reaches the same crash — the
   request itself never left the user's machine. *)

let () =
  let prog = Lazy.force Workloads.Userver.prog in
  Printf.printf "µServer: %d branch locations (%d app, %d library)\n"
    (Minic.Program.nbranches prog)
    (Minic.Program.app_branch_count prog)
    (Minic.Program.lib_branch_count prog);

  (* 1. pre-deployment: dynamic analysis on a benign test workload, static
     analysis with the library treated conservatively (§5.3) *)
  print_endline "\n-- pre-deployment analysis --";
  let test_sc =
    Workloads.Userver.scenario ~name:"userver-test" (Workloads.Http_gen.workload 10)
  in
  let analysis =
    Bugrepro.Pipeline.analyze
      ~dynamic_budget:{ Concolic.Engine.max_runs = 120; max_time_s = 20.0 }
      ~analyze_lib:false ~test_scenario:test_sc prog
  in
  (match analysis.dynamic, analysis.static with
  | Some d, Some s ->
      Printf.printf "dynamic: %.0f%% coverage after %d runs; static: %d symbolic\n"
        (100.0 *. d.coverage) d.runs s.n_symbolic
  | _ -> ());
  let plan = Bugrepro.Pipeline.plan analysis Instrument.Methods.Dynamic_static in
  Printf.printf "shipping with dynamic+static: %d instrumented locations\n"
    plan.n_instrumented;

  (* 2. production: benign traffic, then the killer request *)
  print_endline "\n-- production crash --";
  let exp = Workloads.Userver.experiment 3 in
  Printf.printf "scenario: %s\n" exp.description;
  let crash_sc = Workloads.Userver.experiment_scenario exp in
  let field, report = Bugrepro.Pipeline.field_run_report ~plan crash_sc in
  Printf.printf "server: %s\n" (Interp.Crash.outcome_to_string field.outcome);
  Printf.printf "access log before the crash:\n%s"
    (String.concat "\n"
       (List.filteri (fun i _ -> i < 3) (String.split_on_char '\n' field.output)));
  let report = Option.get report in
  Printf.printf "\nreport: %s\n" (Instrument.Report.describe report);

  (* 3. developer site: guided replay *)
  print_endline "\n-- guided replay at the developer site --";
  let result, stats =
    Bugrepro.Pipeline.reproduce
      ~budget:{ Concolic.Engine.max_runs = 20_000; max_time_s = 30.0 }
      ~prog ~plan report
  in
  (match result with
  | Replay.Guided.Reproduced r ->
      Printf.printf "reproduced in %.2fs after %d runs: %s\n" r.elapsed_s r.runs
        (Interp.Crash.to_string r.crash);
      (* reconstruct the synthesised request from the model *)
      let buf = Buffer.create 64 in
      (try
         for pos = 0 to 200 do
           let name = Concolic.Names.stream_byte ~stream:"net0" ~pos in
           match Solver.Symvars.find_by_name stats.vars name with
           | Some id -> (
               match Solver.Model.find_opt id r.model with
               | Some b when b > 0 ->
                   Buffer.add_char buf
                     (if b >= 32 && b < 127 then Char.chr b else '.')
               | _ -> Buffer.add_char buf '?')
           | None -> raise Exit
         done
       with Exit -> ());
      Printf.printf "synthesised request prefix (model bytes):\n%s\n"
        (Buffer.contents buf)
  | Replay.Guided.Not_reproduced r ->
      Printf.printf "not reproduced (%d runs, timed out: %b)\n" r.runs r.timed_out);
  Printf.printf
    "replay cases: %d log-pinned, %d forced corrections, %d free symbolic\n"
    stats.cases.case2a stats.cases.case2b stats.cases.case1
