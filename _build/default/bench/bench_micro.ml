(* E1/E2 — the §5.1 microbenchmarks.

   E1: counter loop, none vs all-branches; reports the cost-model overhead
   (the paper measured 107% and 17 instructions per instrumented branch)
   plus bechamel wall-clock timings of the interpreter.

   E2: Listing 1 (fibonacci): the analysis-based methods instrument only
   the two symbolic option branches and show no noticeable overhead. *)

let field ~plan sc = Instrument.Field_run.run ~plan sc

let plan_of_nbranches n meth = Instrument.Plan.make ~nbranches:n meth

let e1 (c : Ctx.t) =
  Util.section ~id:"E1" ~paper:"§5.1 microbenchmark 1"
    "Counter-loop branch-logging overhead (none vs all branches)";
  let sc = Workloads.Microbench.counter_loop ~iterations:c.loop_iterations () in
  let n = Minic.Program.nbranches sc.prog in
  let none = field ~plan:(plan_of_nbranches n Instrument.Methods.No_instrumentation) sc in
  let all = field ~plan:(plan_of_nbranches n Instrument.Methods.All_branches) sc in
  let per_branch =
    if all.cost.logged_branches = 0 then 0.0
    else
      float_of_int (all.cost.instr - none.cost.instr)
      /. float_of_int all.cost.logged_branches
  in
  Util.table
    [
      [ "config"; "instructions"; "logged branches"; "cpu time (norm.)" ];
      [ "none"; string_of_int none.cost.instr; "0"; "100%" ];
      [
        "all branches";
        string_of_int all.cost.instr;
        string_of_int all.cost.logged_branches;
        Util.pct ~baseline:none.cost.instr all.cost.instr;
      ];
    ];
  Printf.printf
    "instrumentation cost: %.1f instructions per logged branch (paper: 17)\n"
    per_branch;
  Printf.printf "branch log: %d bytes, %d flush(es) of the 4 KB buffer\n"
    (Instrument.Branch_log.size_bytes all.branch_log)
    all.branch_log.flushes;
  (* wall-clock comparison with bechamel (smaller loop: bechamel repeats it) *)
  if not c.quick then begin
    let small = Workloads.Microbench.counter_loop ~iterations:5_000 () in
    let sn = Minic.Program.nbranches small.prog in
    let run plan () = ignore (field ~plan small) in
    let times =
      Bech.measure_ns
        [
          ("none", run (plan_of_nbranches sn Instrument.Methods.No_instrumentation));
          ("all", run (plan_of_nbranches sn Instrument.Methods.All_branches));
        ]
    in
    match List.assoc_opt "none" times, List.assoc_opt "all" times with
    | Some tn, Some ta ->
        Printf.printf
          "wall clock (bechamel, 5k iterations): none %.2f ms, all %.2f ms (%.0f%%)\n"
          (tn /. 1e6) (ta /. 1e6)
          (100.0 *. ta /. tn)
    | _ -> ()
  end

let e2 (c : Ctx.t) =
  ignore c;
  Util.section ~id:"E2" ~paper:"§5.1 microbenchmark 2"
    "Listing 1 (fibonacci): only the two option branches are symbolic";
  let sc = Workloads.Microbench.fibonacci ~option:"a" () in
  let prog = sc.prog in
  let analysis =
    Bugrepro.Pipeline.analyze
      ~dynamic_budget:{ Concolic.Engine.max_runs = 30; max_time_s = 10.0 }
      ~test_scenario:sc prog
  in
  let baseline =
    (Instrument.Field_run.run
       ~plan:
         (Instrument.Plan.make
            ~nbranches:(Minic.Program.nbranches prog)
            Instrument.Methods.No_instrumentation)
       sc)
      .cost
      .instr
  in
  let rows =
    List.map
      (fun meth ->
        let plan = Bugrepro.Pipeline.plan analysis meth in
        let r = Instrument.Field_run.run ~plan sc in
        [
          Instrument.Methods.to_string meth;
          string_of_int plan.n_instrumented;
          string_of_int r.branch_log.nbits;
          Util.pct ~baseline r.cost.instr;
        ])
      Instrument.Methods.instrumented
  in
  Util.table
    ([ "config"; "instrumented locations"; "bits logged"; "cpu time (norm.)" ]
    :: rows);
  print_endline
    "expected shape: the three analysis methods instrument 2 branch locations\n\
     and log 2 bits; only all-branches pays a visible overhead."
