(* Thin wrapper over Bechamel: run a list of named thunks and return the
   estimated wall-clock nanoseconds per run for each. *)

open Bechamel

let measure_ns ?(quota_s = 1.0) (cases : (string * (unit -> unit)) list) :
    (string * float) list =
  let tests =
    List.map (fun (name, f) -> Test.make ~name (Staged.stage f)) cases
  in
  let grouped = Test.make_grouped ~name:"bench" ~fmt:"%s:%s" tests in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second quota_s) () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  List.filter_map
    (fun (name, _) ->
      let key = "bench:" ^ name in
      match Hashtbl.find_opt results key with
      | Some o -> (
          match Analyze.OLS.estimates o with
          | Some (t :: _) -> Some (name, t)
          | _ -> None)
      | None -> None)
    cases
