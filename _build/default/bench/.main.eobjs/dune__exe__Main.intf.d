bench/main.mli:
