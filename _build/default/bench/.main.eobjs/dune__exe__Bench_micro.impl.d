bench/bench_micro.ml: Bech Bugrepro Concolic Ctx Instrument List Minic Printf Util Workloads
