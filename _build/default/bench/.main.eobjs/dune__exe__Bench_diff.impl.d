bench/bench_diff.ml: Bugrepro Concolic Ctx Instrument Lazy List Minic Printf Staticanalysis Util Workloads
