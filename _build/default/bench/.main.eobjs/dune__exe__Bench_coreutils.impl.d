bench/bench_coreutils.ml: Array Bugrepro Concolic Ctx Hashtbl Instrument Lazy List Minic Printf Util Workloads
