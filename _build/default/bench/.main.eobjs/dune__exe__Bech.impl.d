bench/bech.ml: Analyze Bechamel Benchmark Hashtbl List Measure Staged Test Time Toolkit
