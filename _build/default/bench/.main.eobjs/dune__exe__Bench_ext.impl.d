bench/bench_ext.ml: Bugrepro Checkpoint Concolic Ctx Instrument Interp Lazy List Minic Osmodel Printf Replay Util Workloads
