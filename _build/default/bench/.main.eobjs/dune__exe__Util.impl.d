bench/util.ml: Concolic Float List Printf Replay String Unix
