bench/main.ml: Array Bench_coreutils Bench_diff Bench_ext Bench_micro Bench_userver Ctx List Printf String Sys Unix Util
