bench/ctx.ml: Concolic List
