bench/bench_userver.ml: Array Bugrepro Concolic Ctx Instrument Lazy List Minic Printf Staticanalysis Util Workloads
