(* Debugging a multithreaded race from a schedule log (§6).

   Run with:  dune exec examples/race_debugging.exe

   Two worker threads share an alert log with an unguarded check-then-append.
   Under the production scheduler the race fires; the bug report carries the
   branch bits *and* the recorded thread schedule.  Replay with the schedule
   reproduces the crash immediately; replay without it shows why the paper
   says thread ordering must be recorded. *)

let () =
  let sc = Workloads.Mtrace.scenario ~seed:3 () in
  let prog = sc.prog in
  Printf.printf "mtrace: %d branch locations; input of %d bytes\n"
    (Minic.Program.nbranches prog)
    (String.length (List.hd sc.args));

  let plan =
    Instrument.Plan.make
      ~nbranches:(Minic.Program.nbranches prog)
      Instrument.Methods.All_branches
  in

  print_endline "\n-- production run (pseudo-random scheduler) --";
  let field, report = Bugrepro.Pipeline.field_run_report ~plan sc in
  Printf.printf "outcome: %s\n" (Interp.Crash.outcome_to_string field.outcome);
  let report = Option.get report in
  let sched =
    match report.schedule_log with
    | Some l -> Instrument.Schedule_log.length l
    | None -> 0
  in
  Printf.printf "report: %d branch bits + %d schedule decisions (%d bytes total)\n"
    (Instrument.Report.nbits report)
    sched
    (Instrument.Report.transfer_bytes report);

  let budget = { Concolic.Engine.max_runs = 20_000; max_time_s = 15.0 } in

  print_endline "\n-- replay WITH the recorded schedule --";
  (let result, _ = Bugrepro.Pipeline.reproduce ~budget ~prog ~plan report in
   match result with
   | Replay.Guided.Reproduced r ->
       Printf.printf "reproduced in %.3fs after %d runs at %s\n" r.elapsed_s r.runs
         (Interp.Crash.to_string r.crash)
   | Replay.Guided.Not_reproduced _ -> print_endline "not reproduced (unexpected)");

  print_endline "\n-- replay WITHOUT the schedule (what a branch-only log gives you) --";
  let stripped = { report with Instrument.Report.schedule_log = None } in
  let result, _ =
    Bugrepro.Pipeline.reproduce
      ~budget:{ budget with max_time_s = 5.0 }
      ~prog ~plan stripped
  in
  match result with
  | Replay.Guided.Reproduced r ->
      Printf.printf "reproduced anyway after %d runs (lucky interleaving)\n" r.runs
  | Replay.Guided.Not_reproduced r ->
      Printf.printf
        "NOT reproduced after %d runs — the interleaving cannot be pinned\n\
         without the schedule, exactly as §6 predicts.\n"
        r.runs
