(* Privacy audit: what leaves the user's machine?

   Run with:  dune exec examples/privacy_audit.exe

   The paper's motivation is that neither raw inputs (BBR) nor memory dumps
   (WER) should be shipped.  This example crashes a program on a "secret"
   input and then exhaustively checks that the secret's bytes appear nowhere
   in the shipped report — while replay still reproduces the crash. *)

let secret = "swordfish-1234"

let source =
  {|
int main() {
  int buf[32];
  int n;
  arg(0, buf, 32);
  n = strlen(buf);
  // the bug: any secret longer than 8 bytes overruns an internal table
  if (n > 8) {
    int tab[8];
    tab[n] = 1;
  }
  print_str("accepted\n");
  return 0;
}
|}

let contains_substring ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n > 0 && go 0

let () =
  let prog = Workloads.Runtime_lib.link ~name:"vault" source in
  let plan =
    Instrument.Plan.make
      ~nbranches:(Minic.Program.nbranches prog)
      Instrument.Methods.All_branches
  in
  let sc = Concolic.Scenario.make ~name:"vault" ~args:[ secret ] prog in
  let _, report = Bugrepro.Pipeline.field_run_report ~plan sc in
  let report = Option.get report in

  Printf.printf "user input (never shipped): %S\n" secret;
  Printf.printf "shipped report: %s\n" (Instrument.Report.describe report);

  (* audit every byte sequence in the report *)
  let log_bytes = Instrument.Report.payload_data report in
  Printf.printf "branch log bytes: %d; secret appears in log: %b\n"
    (String.length log_bytes)
    (contains_substring ~needle:secret log_bytes);
  assert (not (contains_substring ~needle:secret log_bytes));
  (match report.syscall_log with
  | Some l ->
      Printf.printf "syscall log entries: %d (numeric results only)\n"
        (Instrument.Syscall_log.length l)
  | None -> ());
  Printf.printf "shape disclosed: %d argument(s) of capacity %s bytes\n"
    (List.length report.shape.arg_caps)
    (String.concat ", " (List.map string_of_int report.shape.arg_caps));

  (* the developer can still reproduce the crash *)
  let result, stats =
    Bugrepro.Pipeline.reproduce
      ~budget:{ Concolic.Engine.max_runs = 3000; max_time_s = 15.0 }
      ~prog ~plan report
  in
  match result with
  | Replay.Guided.Reproduced r ->
      let synth = Buffer.create 16 in
      (try
         for pos = 0 to 31 do
           match
             Solver.Symvars.find_by_name stats.vars
               (Concolic.Names.arg_byte ~arg:0 ~pos)
           with
           | Some id -> (
               match Solver.Model.find_opt id r.model with
               | Some 0 -> raise Exit
               | Some b when b >= 32 && b < 127 ->
                   Buffer.add_char synth (Char.chr b)
               | Some _ -> Buffer.add_char synth '.'
               | None -> raise Exit)
           | None -> raise Exit
         done
       with Exit -> ());
      Printf.printf
        "reproduced at %s with synthesised input %S — same length class,\n\
         different bytes: the developer learns the path, not the secret.\n"
        (Interp.Crash.to_string r.crash)
        (Buffer.contents synth)
  | Replay.Guided.Not_reproduced _ -> print_endline "not reproduced (unexpected)"
