(* The §5.2 coreutils study as a runnable example: four real argv-dependent
   crash bugs, reproduced under all four instrumentation methods.

   Run with:  dune exec examples/coreutils_bugs.exe *)

let () =
  List.iter
    (fun (e : Workloads.Coreutils.entry) ->
      Printf.printf "== %s ==\n%s\n" e.util e.bug_description;
      let prog = Lazy.force e.prog in
      (* the developer's analysis uses a generic argv shape, not the
         (unknown) crashing input *)
      let analysis =
        Bugrepro.Pipeline.analyze
          ~dynamic_budget:{ Concolic.Engine.max_runs = 120; max_time_s = 10.0 }
          ~test_scenario:(Workloads.Coreutils.analysis_scenario e)
          prog
      in
      let crash_sc = Workloads.Coreutils.crash_scenario e in
      Printf.printf "crashing invocation: %s %s\n" e.util
        (String.concat " " e.crashing_args);
      List.iter
        (fun meth ->
          let plan = Bugrepro.Pipeline.plan analysis meth in
          let _, report = Bugrepro.Pipeline.field_run_report ~plan crash_sc in
          match report with
          | None -> Printf.printf "  %-16s field run did not crash?!\n"
                      (Instrument.Methods.to_string meth)
          | Some report ->
              let result, _ =
                Bugrepro.Pipeline.reproduce
                  ~budget:{ Concolic.Engine.max_runs = 5000; max_time_s = 15.0 }
                  ~prog ~plan report
              in
              let verdict =
                match result with
                | Replay.Guided.Reproduced r ->
                    Printf.sprintf "reproduced in %.3fs (%d runs)" r.elapsed_s r.runs
                | Replay.Guided.Not_reproduced _ -> "NOT reproduced"
              in
              Printf.printf "  %-16s %d instrumented, %d bits logged -> %s\n"
                (Instrument.Methods.to_string meth)
                plan.n_instrumented
                (Instrument.Report.nbits report)
                verdict)
        Instrument.Methods.instrumented;
      print_newline ())
    Workloads.Coreutils.catalog
