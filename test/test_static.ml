(* Tests for the static analysis: points-to, taint propagation (Algorithms
   1-2), branch labelling, and the over-approximation invariant. *)

let link ?(libs = []) src = Minic.Program.of_sources ~app:src ~libs ()

let analyze ?(analyze_lib = true) src =
  let prog = link src in
  (prog, Staticanalysis.Static.analyze ~analyze_lib prog)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* label of the branch whose location line is [line] *)
let label_at (prog : Minic.Program.t) (r : Staticanalysis.Static.result) ~line =
  let found = ref None in
  Array.iter
    (fun (b : Minic.Number.info) ->
      if b.bloc.line = line then found := Some r.labels.(b.bid))
    prog.branches;
  match !found with
  | Some l -> l
  | None -> Alcotest.failf "no branch at line %d" line

let sym = Minic.Label.Symbolic
let conc = Minic.Label.Concrete

(* ------------------------------------------------------------------ *)

let test_argv_branch_symbolic () =
  let prog, r =
    analyze
      "int main() {\n\
      \  int buf[8];\n\
      \  arg(0, buf, 8);\n\
      \  if (buf[0] == 'a') { return 1; }\n\
      \  return 0;\n\
       }"
  in
  check_bool "buf branch symbolic" true (label_at prog r ~line:4 = sym)

let test_constant_branch_concrete () =
  let prog, r =
    analyze
      "int main() {\n\
      \  int i = 0;\n\
      \  int s = 0;\n\
      \  while (i < 10) { s = s + i; i = i + 1; }\n\
      \  if (s > 3) { return 1; }\n\
      \  return 0;\n\
       }"
  in
  check_bool "loop concrete" true (label_at prog r ~line:4 = conc);
  check_bool "sum concrete" true (label_at prog r ~line:5 = conc)

let test_read_result_symbolic () =
  let prog, r =
    analyze
      "int main() {\n\
      \  int buf[8];\n\
      \  int n = read(0, buf, 8);\n\
      \  if (n > 0) { return 1; }\n\
      \  if (buf[0] == 'x') { return 2; }\n\
      \  return 0;\n\
       }"
  in
  check_bool "read count symbolic" true (label_at prog r ~line:4 = sym);
  check_bool "read data symbolic" true (label_at prog r ~line:5 = sym)

let test_taint_through_assignment_chain () =
  let prog, r =
    analyze
      "int main() {\n\
      \  int buf[8];\n\
      \  arg(0, buf, 8);\n\
      \  int a = buf[0];\n\
      \  int b = a * 2 + 1;\n\
      \  if (b == 7) { return 1; }\n\
      \  return 0;\n\
       }"
  in
  check_bool "chained taint" true (label_at prog r ~line:6 = sym)

let test_strong_update_clears_local () =
  let prog, r =
    analyze
      "int main() {\n\
      \  int buf[8];\n\
      \  arg(0, buf, 8);\n\
      \  int a = buf[0];\n\
      \  a = 5;\n\
      \  if (a == 5) { return 1; }\n\
      \  return 0;\n\
       }"
  in
  check_bool "strong update makes branch concrete" true
    (label_at prog r ~line:6 = conc)

let test_taint_through_function_return () =
  let prog, r =
    analyze
      "int first(int *s) { return s[0]; }\n\
       int main() {\n\
      \  int buf[8];\n\
      \  arg(0, buf, 8);\n\
      \  int c = first(buf);\n\
      \  if (c == 'x') { return 1; }\n\
      \  return 0;\n\
       }"
  in
  check_bool "return taint" true (label_at prog r ~line:6 = sym)

let test_context_sensitivity () =
  (* f is called with both a concrete and a tainted argument; the branch in
     f must be symbolic (some context), but the caller branch on the
     concrete result must stay concrete *)
  let prog, r =
    analyze
      "int half(int x) {\n\
      \  if (x > 10) { return x / 2; }\n\
      \  return x;\n\
       }\n\
       int main() {\n\
      \  int buf[8];\n\
      \  arg(0, buf, 8);\n\
      \  int a = half(buf[0]);\n\
      \  int b = half(4);\n\
      \  if (a == 3) { return 1; }\n\
      \  if (b == 4) { return 2; }\n\
      \  return 0;\n\
       }"
  in
  check_bool "callee branch symbolic" true (label_at prog r ~line:2 = sym);
  check_bool "tainted-context result symbolic" true (label_at prog r ~line:10 = sym);
  check_bool "concrete-context result concrete" true (label_at prog r ~line:11 = conc)

let test_taint_through_pointer_write () =
  let prog, r =
    analyze
      "void put(int *dst, int v) { *dst = v; }\n\
       int main() {\n\
      \  int buf[8];\n\
      \  int x = 0;\n\
      \  arg(0, buf, 8);\n\
      \  put(&x, buf[1]);\n\
      \  if (x == 9) { return 1; }\n\
      \  return 0;\n\
       }"
  in
  check_bool "by-ref write taints caller var" true (label_at prog r ~line:7 = sym)

let test_taint_through_global () =
  let prog, r =
    analyze
      "int g;\n\
       void set_g(int v) { g = v; }\n\
       int main() {\n\
      \  int buf[8];\n\
      \  arg(0, buf, 8);\n\
      \  set_g(buf[0]);\n\
      \  if (g == 1) { return 1; }\n\
      \  return 0;\n\
       }"
  in
  check_bool "global taint" true (label_at prog r ~line:7 = sym)

let test_unreachable_function_concrete () =
  let prog, r =
    analyze
      "int dead(int x) { if (x) { return 1; } return 0; }\n\
       int main() { return 0; }"
  in
  check_bool "unreachable branch concrete" true (label_at prog r ~line:1 = conc)

let test_lib_conservative_mode () =
  let lib = "int lfun(int x) { if (x > 0) { return 1; } return 0; }" in
  let app = "int main() { if (lfun(3) == 1) { return 1; } return 0; }" in
  let prog = Minic.Program.of_sources ~app ~libs:[ lib ] () in
  let r = Staticanalysis.Static.analyze ~analyze_lib:false prog in
  (* all library branches symbolic in conservative mode (paper §5.3) *)
  List.iter
    (fun bid ->
      check_bool "lib branch symbolic" true (r.labels.(bid) = Minic.Label.Symbolic))
    (Minic.Program.lib_branch_ids prog)

(* ------------------------------------------------------------------ *)
(* The key soundness property: every branch dynamic analysis observes as
   symbolic must be labelled symbolic by static analysis. *)

let overapprox_sources =
  [
    ( "argv compare",
      "int main() { int b[16]; arg(0, b, 16); if (b[0] == 'x') { if (b[1] == 'y') { crash(); } } return 0; }",
      [ "xy" ] );
    ( "length loop",
      "int main() { int b[32]; arg(0, b, 32); int n = strlen(b); if (n > 3) { return 1; } return 0; }",
      [ "hello" ] );
    ( "mixed",
      "int main() { int b[16]; int i; int acc = 0; arg(0, b, 16);\n\
       for (i = 0; i < 4; i = i + 1) { if (b[i] == 'z') { acc = acc + 1; } }\n\
       if (acc == 2) { return 1; } return 0; }",
      [ "zaza" ] );
    ( "password check",
      (* the examples/quickstart.ml program: nested input comparisons
         across a call boundary, with a crashing arm *)
      "int check(int *password) {\n\
       if (password[0] == 'o') {\n\
       if (password[1] == 'c') {\n\
       if (password[2] == 'a') { crash(); } } }\n\
       return 0; }\n\
       int main() { int buf[16]; arg(0, buf, 16); check(buf); return 0; }",
      [ "hello" ] );
    ( "refined features",
      (* dead arm + strong updates + constant branch, all in one program:
         the refined pipeline must stay sound while pruning *)
      "int main() { int b[8]; int x = 0; int t = 0; arg(0, b, 8);\n\
       if (0) { if (b[0] == 'x') { t = 1; } }\n\
       x = b[1]; x = 5;\n\
       if (x == 5) { if (b[2] == 'y') { t = 2; } }\n\
       if (6 / 4 == 1) { t = t + 1; }\n\
       return t; }",
      [ "xyz" ] );
  ]

let test_static_overapproximates_dynamic () =
  List.iter
    (fun (name, src, args) ->
      let prog = Workloads.Runtime_lib.link ~name src in
      let sc = Concolic.Scenario.make ~name ~args prog in
      let dyn =
        Concolic.Dynamic.analyze
          ~budget:{ Concolic.Engine.max_runs = 100; max_time_s = 5.0 }
          sc
      in
      let sta = Staticanalysis.Static.analyze prog in
      Array.iteri
        (fun bid l ->
          if l = Minic.Label.Symbolic then
            check_bool
              (Printf.sprintf "%s: branch %d symbolic in static" name bid)
              true
              (sta.labels.(bid) = Minic.Label.Symbolic))
        dyn.labels)
    overapprox_sources

let test_workload_overapproximation () =
  (* same property on the real coreutils workloads *)
  List.iter
    (fun (e : Workloads.Coreutils.entry) ->
      let prog = Lazy.force e.prog in
      let sc = Workloads.Coreutils.analysis_scenario e in
      let dyn =
        Concolic.Dynamic.analyze
          ~budget:{ Concolic.Engine.max_runs = 80; max_time_s = 5.0 }
          sc
      in
      let sta = Staticanalysis.Static.analyze prog in
      Array.iteri
        (fun bid l ->
          if l = Minic.Label.Symbolic then
            check_bool
              (Printf.sprintf "%s: dyn-symbolic branch %d in static" e.util bid)
              true
              (sta.labels.(bid) = Minic.Label.Symbolic))
        dyn.labels)
    Workloads.Coreutils.catalog

(* ------------------------------------------------------------------ *)
(* Constant propagation (Constprop): folding edge cases and deadness *)

let constprop_of src =
  let prog = link src in
  let pta = Staticanalysis.Pointsto.analyze prog in
  (prog, Staticanalysis.Constprop.analyze prog pta)

(* bid of the app branch whose location line is [line] (library sources are
   separate files whose line numbers can collide) *)
let bid_at (prog : Minic.Program.t) ~line =
  let found = ref None in
  Array.iter
    (fun (b : Minic.Number.info) ->
      if b.bloc.line = line && not b.bis_lib then found := Some b.bid)
    prog.branches;
  match !found with
  | Some b -> b
  | None -> Alcotest.failf "no branch at line %d" line

let const_at prog cp ~line =
  Staticanalysis.Constprop.branch_const_value cp (bid_at prog ~line)

let check_const prog cp ~line expect =
  Alcotest.(check (option int))
    (Printf.sprintf "const at line %d" line)
    expect (const_at prog cp ~line)

let test_constprop_folding () =
  (* interpreter-exact folding: division truncates; division by zero and
     out-of-range shifts crash at runtime so they never fold; arithmetic
     wraps around at native-int width *)
  let prog, cp =
    constprop_of
      "int main() {\n\
      \  int t = 0;\n\
      \  if (6 / 4 == 1) { t = 1; }\n\
      \  if (5 / 0 == 0) { t = 2; }\n\
      \  if (((1 << 62) - 1) + 1 < 0) { t = 3; }\n\
      \  if ((1 << 63) == 0) { t = 4; }\n\
      \  if ((1 << 62) < 0) { t = 5; }\n\
       \  return t;\n\
       }"
  in
  check_const prog cp ~line:3 (Some 1);
  (* 6 / 4 = 1 *)
  check_const prog cp ~line:4 None;
  (* division by zero: runtime crash, not a value *)
  check_const prog cp ~line:5 (Some 1);
  (* max_int + 1 wraps negative *)
  check_const prog cp ~line:6 None;
  (* shift past the native width: runtime crash *)
  check_const prog cp ~line:7 (Some 1) (* 1 << 62 wraps negative *)

let test_constprop_interprocedural () =
  (* constants flow through summaries (rising from Bot) and contexts *)
  let prog, cp =
    constprop_of
      "int three() { return 3; }\n\
       int twice(int x) { return x * 2; }\n\
       int main() {\n\
      \  int a = three();\n\
      \  int b = twice(a);\n\
      \  if (b == 6) { return 1; }\n\
      \  return 0;\n\
       }"
  in
  check_const prog cp ~line:6 (Some 1);
  check_bool "at least one const branch" true
    (Staticanalysis.Constprop.n_const cp >= 1)

let test_constprop_strict_shortcircuit () =
  (* MiniC's && is strict: [0 && (1/0)] crashes at runtime, so the
     apparently-constant condition must NOT fold — no absorbing rules *)
  let prog, cp =
    constprop_of
      "int main() {\n\
      \  int b[8];\n\
      \  arg(0, b, 8);\n\
      \  int t = 0;\n\
      \  if (0 && (1 / 0)) { t = 1; }\n\
      \  if (0 && b[0]) { t = 2; }\n\
      \  return t;\n\
       }"
  in
  check_const prog cp ~line:5 None;
  check_const prog cp ~line:6 None;
  (* and the input-reading side stays Symbolic end to end: the condition's
     *value* never varies, but dynamic analysis tracks value *taint* *)
  let prog2, r = analyze
      "int main() {\n\
      \  int b[8];\n\
      \  arg(0, b, 8);\n\
      \  int t = 0;\n\
      \  if (0 && b[0]) { t = 2; }\n\
      \  return t;\n\
       }"
  in
  check_bool "strict && on input stays symbolic" true
    (label_at prog2 r ~line:5 = sym)

(* ------------------------------------------------------------------ *)
(* Refinement wins: programs where the refined pipeline (constprop +
   strong updates) proves strictly fewer branches Symbolic than the seed
   pipeline, without losing soundness. *)

let seed_vs_refined src =
  let prog = link src in
  let seed = Staticanalysis.Static.analyze ~refine:false prog in
  let refined = Staticanalysis.Static.analyze prog in
  (prog, seed, refined)

let check_refinement_win ~name prog (seed : Staticanalysis.Static.result)
    (refined : Staticanalysis.Static.result) ~line =
  check_bool (name ^ ": seed symbolic") true
    (seed.labels.(bid_at prog ~line) = sym);
  check_bool (name ^ ": refined concrete") true
    (refined.labels.(bid_at prog ~line) = conc);
  check_bool (name ^ ": strictly fewer symbolic") true
    (refined.n_symbolic < seed.n_symbolic)

let test_refine_kill_after_byref () =
  (* x is tainted through &x, then overwritten with a constant; the seed
     never kills globally-tainted cells, the refined pipeline does *)
  let prog, seed, refined =
    seed_vs_refined
      "void put(int *dst, int v) { *dst = v; }\n\
       int main() {\n\
      \  int buf[8];\n\
      \  int x = 0;\n\
      \  arg(0, buf, 8);\n\
      \  put(&x, buf[1]);\n\
      \  x = 5;\n\
      \  if (x == 5) { return 1; }\n\
      \  return 0;\n\
       }"
  in
  check_refinement_win ~name:"kill after by-ref" prog seed refined ~line:8

let test_refine_dead_arm () =
  (* the input-reading branch sits in the arm of an always-false branch:
     constprop prunes the arm and proves the inner branch dead *)
  let prog, seed, refined =
    seed_vs_refined
      "int main() {\n\
      \  int buf[8];\n\
      \  arg(0, buf, 8);\n\
      \  if (0) {\n\
      \    if (buf[0] == 'x') { return 1; }\n\
      \  }\n\
      \  return 0;\n\
       }"
  in
  check_refinement_win ~name:"dead arm" prog seed refined ~line:5;
  match refined.constprop with
  | Some cp ->
      check_bool "inner branch proved dead" true
        (Staticanalysis.Constprop.is_dead cp (bid_at prog ~line:5))
  | None -> Alcotest.fail "refined pipeline has no constprop result"

let test_refine_singleton_pointer () =
  (* *p provably denotes exactly {x}: the refined pipeline performs a
     strong update through the pointer and kills x's taint *)
  let prog, seed, refined =
    seed_vs_refined
      "int main() {\n\
      \  int buf[8];\n\
      \  int x;\n\
      \  int *p;\n\
      \  arg(0, buf, 8);\n\
      \  x = buf[0];\n\
      \  p = &x;\n\
      \  *p = 5;\n\
      \  if (x == 5) { return 1; }\n\
      \  return 0;\n\
       }"
  in
  check_refinement_win ~name:"singleton pointer" prog seed refined ~line:9

(* refinement wins must not cost soundness: replay each win program
   dynamically and diff the labels — zero Missed verdicts *)
let test_refinement_soundness () =
  List.iter
    (fun (name, src, args) ->
      let prog = Workloads.Runtime_lib.link ~name src in
      let sc = Concolic.Scenario.make ~name ~args prog in
      let dyn =
        Concolic.Dynamic.analyze
          ~budget:{ Concolic.Engine.max_runs = 100; max_time_s = 5.0 }
          sc
      in
      let sta = Staticanalysis.Static.analyze prog in
      let rep = Staticanalysis.Static.precision sta prog ~dynamic:dyn.labels in
      check_int (name ^ ": no missed branches") 0 rep.n_missed)
    [
      ( "kill after by-ref",
        "void put(int *dst, int v) { *dst = v; }\n\
         int main() { int buf[8]; int x = 0; arg(0, buf, 8);\n\
         put(&x, buf[1]); x = 5; if (x == 5) { return 1; } return 0; }",
        [ "ab" ] );
      ( "dead arm",
        "int main() { int buf[8]; arg(0, buf, 8);\n\
         if (0) { if (buf[0] == 'x') { return 1; } } return 0; }",
        [ "x" ] );
      ( "singleton pointer",
        "int main() { int buf[8]; int x; int *p; arg(0, buf, 8);\n\
         x = buf[0]; p = &x; *p = 5; if (x == 5) { return 1; } return 0; }",
        [ "q" ] );
    ]

(* ------------------------------------------------------------------ *)
(* Precision report and provenance witnesses *)

let test_precision_report () =
  let name = "precision" in
  let src =
    (* the first branch must not return unconditionally, or everything after
       it is (correctly!) proved dead — x is known to be 5 there *)
    "int main() {\n\
    \  int b[8];\n\
    \  int t = 0;\n\
    \  arg(0, b, 8);\n\
    \  int x = b[0];\n\
    \  x = 5;\n\
    \  if (x == 5) { t = 1; }\n\
    \  if (b[1] == 'q') { t = 2; }\n\
    \  return t;\n\
     }"
  in
  let prog = Workloads.Runtime_lib.link ~name src in
  let sc = Concolic.Scenario.make ~name ~args:[ "hi" ] prog in
  let dyn =
    Concolic.Dynamic.analyze
      ~budget:{ Concolic.Engine.max_runs = 50; max_time_s = 5.0 }
      sc
  in
  let sta = Staticanalysis.Static.analyze prog in
  let rep = Staticanalysis.Static.precision sta prog ~dynamic:dyn.labels in
  check_int "no soundness violations" 0 rep.n_missed;
  check_bool "refined kills the overwritten local" true
    (sta.labels.(bid_at prog ~line:7) = conc);
  let sym_bid = bid_at prog ~line:8 in
  check_bool "input branch symbolic" true (sta.labels.(sym_bid) = sym);
  (* the symbolic label carries a witness chain back to the input source *)
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  (match Staticanalysis.Provenance.explain_branch sta.provenance sym_bid with
  | Some line ->
      check_bool "witness mentions the arg source" true (contains line "arg")
  | None -> Alcotest.fail "symbolic branch has no provenance witness");
  (* JSON rendering carries the headline numbers *)
  let json = Staticanalysis.Precision.to_json rep in
  check_bool "json has summary" true (contains json "\"summary\"");
  check_bool "json has branches" true (contains json "\"branches\"")

let test_pointsto_basics () =
  let prog =
    link
      "int g;\n\
       int *p;\n\
       int main() { int x; p = &g; *p = 1; p = &x; return 0; }"
  in
  let pta = Staticanalysis.Pointsto.analyze prog in
  let pts =
    Staticanalysis.Pointsto.points_of pta ~fn:"main"
      (Minic.Ast.Lval (Minic.Ast.Var "p"))
  in
  check_int "p points to two cells" 2 (Staticanalysis.Aloc.Set.cardinal pts)

let () =
  Alcotest.run "staticanalysis"
    [
      ( "labelling",
        [
          Alcotest.test_case "argv branch symbolic" `Quick test_argv_branch_symbolic;
          Alcotest.test_case "constant branch concrete" `Quick
            test_constant_branch_concrete;
          Alcotest.test_case "read results symbolic" `Quick
            test_read_result_symbolic;
          Alcotest.test_case "assignment chain" `Quick
            test_taint_through_assignment_chain;
          Alcotest.test_case "strong update" `Quick test_strong_update_clears_local;
          Alcotest.test_case "function return" `Quick
            test_taint_through_function_return;
          Alcotest.test_case "context sensitivity" `Quick test_context_sensitivity;
          Alcotest.test_case "pointer write" `Quick test_taint_through_pointer_write;
          Alcotest.test_case "global variable" `Quick test_taint_through_global;
          Alcotest.test_case "unreachable concrete" `Quick
            test_unreachable_function_concrete;
          Alcotest.test_case "conservative library mode" `Quick
            test_lib_conservative_mode;
        ] );
      ( "constprop",
        [
          Alcotest.test_case "folding edge cases" `Quick test_constprop_folding;
          Alcotest.test_case "interprocedural constants" `Quick
            test_constprop_interprocedural;
          Alcotest.test_case "strict short-circuit" `Quick
            test_constprop_strict_shortcircuit;
        ] );
      ( "refinement",
        [
          Alcotest.test_case "kill after by-ref taint" `Quick
            test_refine_kill_after_byref;
          Alcotest.test_case "dead arm pruned" `Quick test_refine_dead_arm;
          Alcotest.test_case "singleton pointer strong update" `Quick
            test_refine_singleton_pointer;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "static overapproximates dynamic" `Slow
            test_static_overapproximates_dynamic;
          Alcotest.test_case "workload overapproximation" `Slow
            test_workload_overapproximation;
          Alcotest.test_case "refinement wins stay sound" `Slow
            test_refinement_soundness;
          Alcotest.test_case "precision report" `Slow test_precision_report;
        ] );
      ( "pointsto",
        [ Alcotest.test_case "basics" `Quick test_pointsto_basics ] );
    ]
