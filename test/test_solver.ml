(* Tests for the constraint solver: expressions, simplifier, intervals,
   model search — including soundness properties under QCheck. *)

open Solver

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mk_vars n =
  let vars = Symvars.create () in
  let ids =
    List.init n (fun i ->
        Symvars.lookup vars ~name:(Printf.sprintf "b%d" i) ~dom:Symvars.byte_domain)
  in
  (vars, ids)

let v i = Expr.Var i
let c n = Expr.Const n
let ( ==. ) a b = Expr.Binop (Expr.Eq, a, b)
let ( <>. ) a b = Expr.Binop (Expr.Ne, a, b)
let ( <. ) a b = Expr.Binop (Expr.Lt, a, b)
let ( >. ) a b = Expr.Binop (Expr.Gt, a, b)
let ( +. ) a b = Expr.Binop (Expr.Add, a, b)

(* ------------------------------------------------------------------ *)
(* Expr *)

let test_expr_eval () =
  let e = Expr.Binop (Expr.Mul, c 3, Expr.Binop (Expr.Add, v 0, c 1)) in
  check_int "3*(x+1) at x=4" 15 (Expr.eval (fun _ -> 4) e)

let test_expr_eval_undefined () =
  let e = Expr.Binop (Expr.Div, c 1, v 0) in
  match Expr.eval (fun _ -> 0) e with
  | exception Expr.Undefined -> ()
  | _ -> Alcotest.fail "expected Undefined"

let test_expr_vars () =
  let e = (v 3 +. v 1) ==. (v 3 +. c 2) in
  Alcotest.(check (list int)) "vars" [ 1; 3 ] (Expr.vars e)

let test_expr_negate_involution_semantics () =
  let e = v 0 <. c 5 in
  let ne = Expr.negate e in
  check_bool "negation flips truth" true
    (Expr.eval (fun _ -> 3) e <> 0 && Expr.eval (fun _ -> 3) ne = 0)

(* ------------------------------------------------------------------ *)
(* Simplify *)

let test_simplify_folds () =
  let e = Expr.Binop (Expr.Add, c 2, c 3) in
  check_bool "2+3 -> 5" true (Simplify.simplify e = c 5)

let test_simplify_identities () =
  check_bool "x+0" true (Simplify.simplify (v 0 +. c 0) = v 0);
  check_bool "x-x" true
    (Simplify.simplify (Expr.Binop (Expr.Sub, v 0, v 0)) = c 0);
  check_bool "(x+2)==5 -> x==3" true
    (Simplify.simplify ((v 0 +. c 2) ==. c 5) = (v 0 ==. c 3))

let test_simplify_lognot_pushes () =
  let e = Expr.Unop (Expr.Lognot, v 0 <. c 5) in
  check_bool "!(x<5) -> x>=5" true
    (Simplify.simplify e = Expr.Binop (Expr.Ge, v 0, c 5))

let test_conjuncts () =
  match Simplify.conjuncts [ Expr.Binop (Expr.Land, v 0 <. c 5, v 1 >. c 2); c 1 ] with
  | Some cs -> check_int "two conjuncts" 2 (List.length cs)
  | None -> Alcotest.fail "should be satisfiable"

let test_conjuncts_false () =
  check_bool "0 conjunct -> None" true (Simplify.conjuncts [ c 0 ] = None)

(* ------------------------------------------------------------------ *)
(* Interval *)

let test_interval_ops () =
  let open Interval in
  let i = add (of_bounds 1 3) (of_bounds 10 20) in
  check_int "add lo" 11 i.lo;
  check_int "add hi" 23 i.hi;
  let m = mul (of_bounds (-2) 3) (of_bounds 4 5) in
  check_int "mul lo" (-10) m.lo;
  check_int "mul hi" 15 m.hi;
  check_bool "meet empty" true (is_empty (meet (of_bounds 0 1) (of_bounds 5 9)))

let test_interval_eval_decides () =
  let env _ = Interval.of_bounds 0 255 in
  let e = v 0 <. c 300 in
  let r = Interval.eval env e in
  check_int "always true" 1 r.lo;
  let e2 = v 0 >. c 300 in
  let r2 = Interval.eval env e2 in
  check_int "always false" 0 r2.hi

(* ------------------------------------------------------------------ *)
(* Solve *)

let solve ?hint vars cs = Solve.solve ~vars ?hint cs

let test_solve_simple_eq () =
  let vars, ids = mk_vars 1 in
  let x = List.nth ids 0 in
  match solve vars [ v x ==. c 47 ] with
  | Solve.Sat m -> check_int "x=47" 47 (Option.get (Model.find_opt x m))
  | _ -> Alcotest.fail "expected sat"

let test_solve_conjunction () =
  let vars, ids = mk_vars 2 in
  let x = List.nth ids 0 and y = List.nth ids 1 in
  let cs = [ v x >. c 10; v x <. c 13; v y ==. (v x +. c 1) ] in
  match solve vars cs with
  | Solve.Sat m ->
      let xv = Option.get (Model.find_opt x m) in
      let yv = Option.get (Model.find_opt y m) in
      check_bool "x in range" true (xv > 10 && xv < 13);
      check_int "y = x+1" (xv + 1) yv
  | _ -> Alcotest.fail "expected sat"

let test_solve_unsat () =
  let vars, ids = mk_vars 1 in
  let x = List.nth ids 0 in
  match solve vars [ v x <. c 5; v x >. c 10 ] with
  | Solve.Unsat -> ()
  | _ -> Alcotest.fail "expected unsat"

let test_solve_unsat_byte_domain () =
  let vars, ids = mk_vars 1 in
  let x = List.nth ids 0 in
  (* no byte is 300 *)
  match solve vars [ v x ==. c 300 ] with
  | Solve.Unsat -> ()
  | _ -> Alcotest.fail "expected unsat"

let test_solve_ne_chain () =
  let vars, ids = mk_vars 1 in
  let x = List.nth ids 0 in
  let cs = List.init 255 (fun i -> v x <>. c i) in
  match solve vars cs with
  | Solve.Sat m -> check_int "only 255 left" 255 (Option.get (Model.find_opt x m))
  | _ -> Alcotest.fail "expected sat"

let test_solve_hint_preferred () =
  let vars, ids = mk_vars 1 in
  let x = List.nth ids 0 in
  let hint id = if id = x then Some 99 else None in
  match solve ~hint vars [ v x >. c 50 ] with
  | Solve.Sat m -> check_int "hint kept" 99 (Option.get (Model.find_opt x m))
  | _ -> Alcotest.fail "expected sat"

let test_solve_string_match () =
  (* the classic concolic benchmark: make bytes spell "GET " *)
  let vars, ids = mk_vars 4 in
  let target = [ 71; 69; 84; 32 ] in
  let cs = List.map2 (fun id ch -> v id ==. c ch) ids target in
  match solve vars cs with
  | Solve.Sat m ->
      List.iter2
        (fun id ch -> check_int "byte" ch (Option.get (Model.find_opt id m)))
        ids target
  | _ -> Alcotest.fail "expected sat"

let test_solve_empty () =
  let vars, _ = mk_vars 0 in
  match solve vars [] with
  | Solve.Sat m -> check_int "empty model" 0 (Model.cardinal m)
  | _ -> Alcotest.fail "expected sat"

let test_solve_strict_logic () =
  let vars, ids = mk_vars 2 in
  let x = List.nth ids 0 and y = List.nth ids 1 in
  let cs = [ Expr.Binop (Expr.Lor, v x ==. c 1, v y ==. c 2); v x <>. c 1 ] in
  match solve vars cs with
  | Solve.Sat m -> check_int "y forced" 2 (Option.get (Model.find_opt y m))
  | _ -> Alcotest.fail "expected sat"

(* ------------------------------------------------------------------ *)
(* Equality propagation, backjumping, structural unsat detection *)

let test_solve_equality_chain () =
  let vars, ids = mk_vars 4 in
  let a = List.nth ids 0 and b = List.nth ids 1 and c2 = List.nth ids 2
  and d = List.nth ids 3 in
  let cs = [ v a ==. v b; v b ==. v c2; v c2 ==. v d; v d ==. c 77 ] in
  match solve vars cs with
  | Solve.Sat m ->
      List.iter
        (fun id -> check_int "chained equality" 77 (Option.get (Model.find_opt id m)))
        [ a; b; c2; d ]
  | _ -> Alcotest.fail "expected sat"

let test_solve_equality_contradiction () =
  let vars, ids = mk_vars 2 in
  let x = List.nth ids 0 and y = List.nth ids 1 in
  match solve vars [ v x ==. v y; v x <>. v y ] with
  | Solve.Unsat -> ()
  | _ -> Alcotest.fail "expected unsat (x==y && x!=y)"

let test_solve_offset_cancellation () =
  (* (x+32) == (y+32) must merge x and y via the simplifier *)
  let vars, ids = mk_vars 2 in
  let x = List.nth ids 0 and y = List.nth ids 1 in
  let cs = [ (v x +. c 32) ==. (v y +. c 32); v x ==. c 9 ] in
  match solve vars cs with
  | Solve.Sat m -> check_int "y follows x" 9 (Option.get (Model.find_opt y m))
  | _ -> Alcotest.fail "expected sat"

let test_solve_negation_pair_unsat () =
  (* a complex shared subexpression bounded both ways: e <= 5 and e > 9 *)
  let vars, ids = mk_vars 2 in
  let x = List.nth ids 0 and y = List.nth ids 1 in
  let e = Expr.Binop (Expr.Add, Expr.Binop (Expr.Mul, v x, c 10), v y) in
  let cs = [ Expr.Binop (Expr.Le, e, c 5); Expr.Binop (Expr.Gt, e, c 9) ] in
  match solve vars cs with
  | Solve.Unsat -> ()
  | Solve.Unknown -> Alcotest.fail "should be detected, not Unknown"
  | Solve.Sat _ -> Alcotest.fail "expected unsat"

let test_solve_backjump_over_unconstrained () =
  (* many unconstrained variables sit between the two coupled ones; without
     backjumping the search enumerates their cross product *)
  let vars, ids = mk_vars 12 in
  let first = List.hd ids and last = List.nth ids 11 in
  (* touch every var so they all enter the search *)
  let touch = List.map (fun id -> Expr.Binop (Expr.Ge, v id, c 0)) ids in
  let cs = touch @ [ (v first +. v last) ==. c 510 ] in
  Solve.reset_stats ();
  (match solve vars cs with
  | Solve.Sat m ->
      check_int "coupled sum" 510
        (Option.get (Model.find_opt first m) + Option.get (Model.find_opt last m))
  | _ -> Alcotest.fail "expected sat");
  check_bool "no node blow-up" true (Solve.stats.nodes < 100_000)

(* ------------------------------------------------------------------ *)
(* QCheck properties *)

let gen_sexpr nvars : Expr.t QCheck.Gen.t =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof
              [
                map (fun i -> Expr.Var i) (int_range 0 (nvars - 1));
                map (fun i -> Expr.Const i) (int_range (-20) 260);
              ]
          else
            let sub = self (n / 2) in
            oneof
              [
                map (fun i -> Expr.Const i) (int_range (-20) 260);
                map2
                  (fun op (a, b) -> Expr.Binop (op, a, b))
                  (oneofl
                     Expr.
                       [
                         Add; Sub; Mul; Div; Mod; Eq; Ne; Lt; Le; Gt; Ge; Land;
                         Lor; Band; Bor; Bxor;
                       ])
                  (pair sub sub);
                map2
                  (fun op a -> Expr.Unop (op, a))
                  (oneofl Expr.[ Neg; Lognot; Bitnot ])
                  sub;
              ])
        n)

let eval_opt env e = match Expr.eval env e with x -> Some x | exception Expr.Undefined -> None

let prop_simplify_sound =
  QCheck.Test.make ~count:500 ~name:"simplify preserves semantics"
    QCheck.(make (Gen.pair (gen_sexpr 3) (Gen.array_size (Gen.return 3) (Gen.int_range 0 255))))
    (fun (e, env_arr) ->
      let env i = env_arr.(i) in
      let s = Simplify.simplify e in
      eval_opt env e = eval_opt env s
      || eval_opt env e = None (* undefined may simplify to defined *))

let prop_negate_flips =
  QCheck.Test.make ~count:500 ~name:"negate flips truthiness"
    QCheck.(make (Gen.pair (gen_sexpr 3) (Gen.array_size (Gen.return 3) (Gen.int_range 0 255))))
    (fun (e, env_arr) ->
      let env i = env_arr.(i) in
      match eval_opt env e, eval_opt env (Expr.negate e) with
      | Some a, Some b -> (a <> 0) = (b = 0)
      | None, _ | _, None -> true)

let prop_interval_sound =
  QCheck.Test.make ~count:500 ~name:"interval eval contains concrete eval"
    QCheck.(make (Gen.pair (gen_sexpr 3) (Gen.array_size (Gen.return 3) (Gen.int_range 0 255))))
    (fun (e, env_arr) ->
      let cenv i = env_arr.(i) in
      let ienv _ = Interval.of_bounds 0 255 in
      match eval_opt cenv e with
      | None -> true
      | Some x ->
          let i = Interval.eval ienv e in
          Interval.mem x i)

(* comparison-only constraints: solver must find a model that satisfies them *)
let gen_cmp_constraint nvars : Expr.t QCheck.Gen.t =
  let open QCheck.Gen in
  let atom =
    oneof
      [
        map (fun i -> Expr.Var i) (int_range 0 (nvars - 1));
        map (fun i -> Expr.Const i) (int_range 0 255);
      ]
  in
  map2
    (fun op (a, b) -> Expr.Binop (op, a, b))
    (oneofl Expr.[ Eq; Ne; Lt; Le; Gt; Ge ])
    (pair atom atom)

let prop_solver_models_satisfy =
  QCheck.Test.make ~count:200 ~name:"Sat models satisfy all constraints"
    QCheck.(make (Gen.list_size (Gen.int_range 1 6) (gen_cmp_constraint 4)))
    (fun cs ->
      let vars, _ = mk_vars 4 in
      match Solve.solve ~vars cs with
      | Solve.Sat m -> Model.satisfies_all m cs
      | Solve.Unsat | Solve.Unknown -> true)

let prop_solver_unsat_really_unsat =
  (* for 2 byte vars we can exhaustively verify a reported Unsat *)
  QCheck.Test.make ~count:60 ~name:"Unsat verified exhaustively (2 vars)"
    QCheck.(make (Gen.list_size (Gen.int_range 1 4) (gen_cmp_constraint 2)))
    (fun cs ->
      let vars, ids = mk_vars 2 in
      match Solve.solve ~vars cs with
      | Solve.Sat _ | Solve.Unknown -> true
      | Solve.Unsat ->
          let x = List.nth ids 0 and y = List.nth ids 1 in
          let found = ref false in
          for a = 0 to 255 do
            for b = 0 to 255 do
              if not !found then
                if
                  Model.satisfies_all (Model.of_list [ (x, a); (y, b) ]) cs
                then found := true
            done
          done;
          not !found)

(* ------------------------------------------------------------------ *)
(* Cache: memoization, canonicalization, slicing *)

let test_cache_hit_miss_accounting () =
  let t = Cache.create () in
  let vars, ids = mk_vars 2 in
  let x = List.nth ids 0 in
  let cs = [ v x ==. c 47 ] in
  (match Cache.solve t ~vars cs with
  | Solve.Sat m -> check_int "x=47" 47 (Option.get (Model.find_opt x m))
  | _ -> Alcotest.fail "expected sat");
  (match Cache.solve t ~vars cs with
  | Solve.Sat m -> check_int "cached x=47" 47 (Option.get (Model.find_opt x m))
  | _ -> Alcotest.fail "expected cached sat");
  let s = Cache.snapshot t in
  check_int "one miss" 1 s.misses;
  check_int "one hit" 1 s.hits;
  check_int "one store" 1 s.stores;
  check_int "one entry" 1 (Cache.length t);
  (* an unsat set is cached too *)
  (match Cache.solve t ~vars [ v x <. c 5; v x >. c 10 ] with
  | Solve.Unsat -> ()
  | _ -> Alcotest.fail "expected unsat");
  (match Cache.solve t ~vars [ v x <. c 5; v x >. c 10 ] with
  | Solve.Unsat -> ()
  | _ -> Alcotest.fail "expected cached unsat");
  let s = Cache.snapshot t in
  check_int "two hits total" 2 s.hits;
  check_int "two misses total" 2 s.misses

let test_cache_alpha_equivalence () =
  (* same structure over different variable ids — e.g. a replay restart's
     fresh registry — must hit the same entry *)
  let t = Cache.create () in
  let vars, ids = mk_vars 4 in
  let x = List.nth ids 0 and y = List.nth ids 1 in
  let x' = List.nth ids 2 and y' = List.nth ids 3 in
  (match Cache.solve t ~vars [ v x >. c 10; v y ==. (v x +. c 1) ] with
  | Solve.Sat _ -> ()
  | _ -> Alcotest.fail "expected sat");
  (match Cache.solve t ~vars [ v x' >. c 10; v y' ==. (v x' +. c 1) ] with
  | Solve.Sat m ->
      (* the cached model must come back renamed to the new variables *)
      let xv = Option.get (Model.find_opt x' m) in
      let yv = Option.get (Model.find_opt y' m) in
      check_bool "renamed model satisfies" true (xv > 10 && yv = xv + 1)
  | _ -> Alcotest.fail "expected sat");
  let s = Cache.snapshot t in
  check_int "alpha-equivalent query hits" 1 s.hits;
  check_int "single entry for both" 1 (Cache.length t)

let test_cache_dedupe_multiplicity () =
  (* repeated constraints (loop-heavy traces) must not change the key *)
  let t = Cache.create () in
  let vars, ids = mk_vars 1 in
  let x = List.nth ids 0 in
  ignore (Cache.solve t ~vars [ v x >. c 10; v x >. c 10; v x <. c 20 ]);
  ignore (Cache.solve t ~vars [ v x >. c 10; v x <. c 20 ]);
  let s = Cache.snapshot t in
  check_int "deduped query hits" 1 s.hits

let test_cache_eviction () =
  let t = Cache.create ~capacity:2 () in
  let vars, ids = mk_vars 1 in
  let x = List.nth ids 0 in
  List.iter
    (fun n -> ignore (Cache.solve t ~vars [ v x ==. c n ]))
    [ 1; 2; 3; 4 ];
  let s = Cache.snapshot t in
  check_bool "evictions happened" true (s.evictions >= 2);
  check_bool "table stays bounded" true (Cache.length t <= 2)

let test_slice_focus_keeps_component () =
  (* x-constraints are independent of the y-component that the focus (last
     constraint) belongs to: the slice must keep y's and drop x's *)
  let sliced =
    Cache.slice_focus [ v 0 ==. c 1; v 1 >. c 5; v 1 <. c 9 ]
  in
  check_bool "slice = y component" true
    (sliced = [ v 1 >. c 5; v 1 <. c 9 ]);
  (* transitive connection through a shared variable is kept *)
  let sliced2 =
    Cache.slice_focus
      [ v 0 ==. c 1; v 1 ==. (v 2 +. c 1); v 2 >. c 5; v 1 <. c 9 ]
  in
  check_bool "transitive component kept" true
    (sliced2 = [ v 1 ==. (v 2 +. c 1); v 2 >. c 5; v 1 <. c 9 ])

let test_sliced_unsat_is_sound () =
  (* an unsat focus component decides the whole set, whatever was dropped *)
  let t = Cache.create () in
  let vars, ids = mk_vars 2 in
  let x = List.nth ids 0 and y = List.nth ids 1 in
  match
    Cache.solve t ~vars ~slice:true [ v x ==. c 1; v y <. c 5; v y >. c 10 ]
  with
  | Solve.Unsat -> ()
  | _ -> Alcotest.fail "expected unsat from the sliced component"

(* ------------------------------------------------------------------ *)
(* Scope: push/pop frames with trail undo *)

let test_scope_push_pop_restores_domains () =
  let vars, ids = mk_vars 2 in
  let x = List.nth ids 0 in
  let scope = Scope.create ~vars () in
  Scope.push scope (v x <. c 10);
  (match Scope.solve scope [ v x <. c 10 ] with
  | Solve.Sat m -> check_bool "model under scope" true
      (Option.get (Model.find_opt x m) < 10)
  | _ -> Alcotest.fail "expected sat under x<10");
  (* the narrowed domain excludes 200 while the frame is live... *)
  (match Scope.solve scope [ v x ==. c 200 ] with
  | Solve.Unsat -> ()
  | _ -> Alcotest.fail "x=200 must be unsat under the pushed x<10");
  Scope.pop scope;
  check_int "depth restored" 0 (Scope.depth scope);
  (* ...and popping undoes exactly that narrowing *)
  match Scope.solve scope [ v x ==. c 200 ] with
  | Solve.Sat _ -> ()
  | _ -> Alcotest.fail "trail undo must restore the base domain"

let test_scope_negation_pair_core () =
  let vars, ids = mk_vars 1 in
  let x = List.nth ids 0 in
  let scope = Scope.create ~vars () in
  let a = v x <. c 5 in
  Scope.push scope a;
  Scope.push scope (Expr.negate a);
  check_bool "negation pair contradicts" true (Scope.contradiction scope);
  (match Scope.contra_core scope with
  | Some core ->
      check_int "two-constraint certified core" 2 (List.length core);
      check_bool "core contains the partner" true (List.mem a core)
  | None -> Alcotest.fail "negation pair must carry a certified core");
  check_bool "contradicted scope answers unsat" true
    (Scope.solve scope [ a; Expr.negate a ] = Solve.Unsat);
  Scope.pop scope;
  check_bool "pop clears the contradiction" false (Scope.contradiction scope)

let test_scope_propagation_contradiction () =
  (* no structural witness: the emptied interval is found by worklist
     propagation, and the contradiction carries no small core *)
  let vars, ids = mk_vars 1 in
  let x = List.nth ids 0 in
  let scope = Scope.create ~vars () in
  Scope.push scope (v x <. c 3);
  Scope.push scope (v x >. c 5);
  check_bool "propagation finds the empty domain" true
    (Scope.contradiction scope);
  check_bool "no certified core for propagation contras" true
    (Scope.contra_core scope = None);
  Scope.pop scope;
  check_bool "still sat after popping the contradicting frame" true
    (match Scope.solve scope [ v x <. c 3 ] with
    | Solve.Sat _ -> true
    | _ -> false)

let test_scope_enum_strategy_verdict_parity () =
  let vars, ids = mk_vars 2 in
  let x = List.nth ids 0 and y = List.nth ids 1 in
  let cat = function
    | Solve.Sat _ -> "sat"
    | Solve.Unsat -> "unsat"
    | Solve.Unknown -> "unknown"
  in
  List.iter
    (fun cs ->
      let fresh = Solve.solve ~vars cs in
      let scope = Scope.create ~vars () in
      List.iter (Scope.push scope) cs;
      let enum = Scope.solve ~order:`Smallest_dom ~prop_rounds:4 scope cs in
      Alcotest.(check string)
        "enum-first scope verdict = fresh verdict" (cat fresh) (cat enum))
    [
      [ v x <. c 3; v x >. c 5 ];
      [ v x >. c 10; v x <. c 13; v y ==. (v x +. c 1) ];
      [ v x ==. c 47 ];
    ]

(* ------------------------------------------------------------------ *)
(* Incr: learned cores, subsumption pruning, scope re-sync *)

let test_incr_learns_and_prunes () =
  let vars, ids = mk_vars 2 in
  let x = List.nth ids 0 and y = List.nth ids 1 in
  let t = Incr.create () in
  let s = Incr.session t ~vars in
  let unsat_cs = [ v x <. c 3; v x >. c 5 ] in
  check_bool "unsat query answers unsat" true
    (Incr.solve s unsat_cs = Solve.Unsat);
  let snap1 = Incr.snapshot t in
  check_bool "unsat learned a core" true (snap1.Incr.cores_learned >= 1);
  (* a superset of the learned core is pruned without a solver call *)
  let superset = [ v x <. c 3; v x >. c 5; v y ==. c 1 ] in
  check_bool "superset pruned to unsat" true
    (Incr.solve s superset = Solve.Unsat);
  let snap2 = Incr.snapshot t in
  check_int "pruned exactly once" (snap1.Incr.core_pruned + 1)
    snap2.Incr.core_pruned;
  check_int "no solver call for the pruned query" snap1.Incr.solver_calls
    snap2.Incr.solver_calls

let test_incr_never_prunes_sat_sibling () =
  (* regression: a sibling sharing only part of a learned core must still
     be solved — and found Sat *)
  let vars, ids = mk_vars 2 in
  let x = List.nth ids 0 and y = List.nth ids 1 in
  let t = Incr.create () in
  let s = Incr.session t ~vars in
  ignore (Incr.solve s [ v x <. c 3; v x >. c 5 ]);
  let before = (Incr.snapshot t).Incr.core_pruned in
  let sibling = [ v x <. c 3; v y >. c 5 ] in
  (match Incr.solve s sibling with
  | Solve.Sat m -> check_bool "model satisfies" true (Model.satisfies_all m sibling)
  | _ -> Alcotest.fail "sat sibling must not be pruned by the core");
  check_int "no prune recorded for the sat sibling" before
    (Incr.snapshot t).Incr.core_pruned

let test_incr_resync_after_divergence () =
  (* a deeply divergent query bypasses scope sync at first, but repeating
     it re-anchors the scope so the new region becomes the cheap prefix *)
  let vars, ids = mk_vars 1 in
  let x = List.nth ids 0 in
  let t = Incr.create () in
  let s = Incr.session t ~vars in
  let big = List.init 70 (fun k -> v x <>. c k) in
  let synced = ref false in
  for _ = 1 to 32 do
    (match Incr.solve s big with
    | Solve.Sat m ->
        check_bool "big conjunction model ok" true (Model.satisfies_all m big)
    | _ -> Alcotest.fail "70 exclusions over a byte must stay sat");
    if Scope.depth (Incr.scope s) > 0 then synced := true
  done;
  check_bool "scope eventually re-anchors onto the hot region" true !synced;
  (* sibling reuse after the re-anchor: shared prefix, one new constraint *)
  let sibling = big @ [ v x <>. c 200 ] in
  let calls_before = (Incr.snapshot t).Incr.incremental in
  (match Incr.solve s sibling with
  | Solve.Sat m -> check_bool "sibling model ok" true (Model.satisfies_all m sibling)
  | _ -> Alcotest.fail "sibling must stay sat");
  check_bool "sibling solve counted as incremental" true
    ((Incr.snapshot t).Incr.incremental > calls_before)

let test_incr_verdict_parity_on_fixtures () =
  let vars, ids = mk_vars 2 in
  let x = List.nth ids 0 and y = List.nth ids 1 in
  let t = Incr.create () in
  let s = Incr.session t ~vars in
  let cat = function
    | Solve.Sat _ -> "sat"
    | Solve.Unsat -> "unsat"
    | Solve.Unknown -> "unknown"
  in
  List.iter
    (fun cs ->
      let fresh = Solve.solve ~vars cs in
      (* twice: the second pass runs against learned cores *)
      Alcotest.(check string) "incr pass 1" (cat fresh) (cat (Incr.solve s cs));
      Alcotest.(check string) "incr pass 2" (cat fresh) (cat (Incr.solve s cs)))
    [
      [ v x ==. c 47 ];
      [ v x <. c 3; v x >. c 5 ];
      [ v x >. c 10; v x <. c 13; v y ==. (v x +. c 1) ];
      [ v x <. c 3; v x >. c 5; v y ==. c 9 ];
      [ v y ==. c 9; v x <>. c 0 ];
    ]

(* cached and uncached solves agree on Sat/Unsat/Unknown, and a cached Sat
   model (possibly replayed from an earlier alpha-equivalent entry) still
   satisfies the query *)
let prop_cache_agrees_with_solver =
  let cache = Cache.create () in
  QCheck.Test.make ~count:300 ~name:"cached solve = uncached solve"
    QCheck.(make (Gen.list_size (Gen.int_range 1 6) (gen_cmp_constraint 4)))
    (fun cs ->
      let vars, _ = mk_vars 4 in
      let direct = Solve.solve ~vars cs in
      let cached = Cache.solve cache ~vars cs in
      match direct, cached with
      | Solve.Sat _, Solve.Sat m -> Model.satisfies_all m cs
      | Solve.Unsat, Solve.Unsat -> true
      | Solve.Unknown, Solve.Unknown -> true
      | _ -> false)

let () =
  Alcotest.run "solver"
    [
      ( "expr",
        [
          Alcotest.test_case "eval" `Quick test_expr_eval;
          Alcotest.test_case "eval undefined" `Quick test_expr_eval_undefined;
          Alcotest.test_case "vars" `Quick test_expr_vars;
          Alcotest.test_case "negate semantics" `Quick
            test_expr_negate_involution_semantics;
        ] );
      ( "simplify",
        [
          Alcotest.test_case "constant folding" `Quick test_simplify_folds;
          Alcotest.test_case "identities" `Quick test_simplify_identities;
          Alcotest.test_case "lognot pushed" `Quick test_simplify_lognot_pushes;
          Alcotest.test_case "conjuncts split" `Quick test_conjuncts;
          Alcotest.test_case "conjuncts false" `Quick test_conjuncts_false;
          QCheck_alcotest.to_alcotest prop_simplify_sound;
          QCheck_alcotest.to_alcotest prop_negate_flips;
        ] );
      ( "interval",
        [
          Alcotest.test_case "arithmetic" `Quick test_interval_ops;
          Alcotest.test_case "decides comparisons" `Quick
            test_interval_eval_decides;
          QCheck_alcotest.to_alcotest prop_interval_sound;
        ] );
      ( "solve",
        [
          Alcotest.test_case "simple equality" `Quick test_solve_simple_eq;
          Alcotest.test_case "conjunction" `Quick test_solve_conjunction;
          Alcotest.test_case "unsat" `Quick test_solve_unsat;
          Alcotest.test_case "unsat via domain" `Quick test_solve_unsat_byte_domain;
          Alcotest.test_case "ne chain" `Quick test_solve_ne_chain;
          Alcotest.test_case "hint preferred" `Quick test_solve_hint_preferred;
          Alcotest.test_case "string match" `Quick test_solve_string_match;
          Alcotest.test_case "empty constraints" `Quick test_solve_empty;
          Alcotest.test_case "strict logic ops" `Quick test_solve_strict_logic;
          Alcotest.test_case "equality chain" `Quick test_solve_equality_chain;
          Alcotest.test_case "equality contradiction" `Quick
            test_solve_equality_contradiction;
          Alcotest.test_case "offset cancellation" `Quick
            test_solve_offset_cancellation;
          Alcotest.test_case "negation-pair unsat" `Quick
            test_solve_negation_pair_unsat;
          Alcotest.test_case "backjump over unconstrained" `Quick
            test_solve_backjump_over_unconstrained;
          QCheck_alcotest.to_alcotest prop_solver_models_satisfy;
          QCheck_alcotest.to_alcotest prop_solver_unsat_really_unsat;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit/miss accounting" `Quick
            test_cache_hit_miss_accounting;
          Alcotest.test_case "alpha equivalence" `Quick
            test_cache_alpha_equivalence;
          Alcotest.test_case "dedupe multiplicity" `Quick
            test_cache_dedupe_multiplicity;
          Alcotest.test_case "bounded eviction" `Quick test_cache_eviction;
          Alcotest.test_case "slice keeps focus component" `Quick
            test_slice_focus_keeps_component;
          Alcotest.test_case "sliced unsat sound" `Quick
            test_sliced_unsat_is_sound;
          QCheck_alcotest.to_alcotest prop_cache_agrees_with_solver;
        ] );
      ( "scope",
        [
          Alcotest.test_case "push/pop restores domains" `Quick
            test_scope_push_pop_restores_domains;
          Alcotest.test_case "negation-pair certified core" `Quick
            test_scope_negation_pair_core;
          Alcotest.test_case "propagation contradiction" `Quick
            test_scope_propagation_contradiction;
          Alcotest.test_case "enum strategy verdict parity" `Quick
            test_scope_enum_strategy_verdict_parity;
        ] );
      ( "incr",
        [
          Alcotest.test_case "learns and prunes supersets" `Quick
            test_incr_learns_and_prunes;
          Alcotest.test_case "never prunes a sat sibling" `Quick
            test_incr_never_prunes_sat_sibling;
          Alcotest.test_case "re-anchors after divergence" `Quick
            test_incr_resync_after_divergence;
          Alcotest.test_case "verdict parity on fixtures" `Quick
            test_incr_verdict_parity_on_fixtures;
        ] );
    ]
