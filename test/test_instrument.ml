(* Tests for instrumentation: plan combination rules (§2.3), the branch-log
   bitvector, the syscall log, field runs and bug reports. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

open Minic.Label

let map_of (l : t list) : map = Array.of_list l

(* ------------------------------------------------------------------ *)
(* Plan combination *)

let dyn = map_of [ Symbolic; Concrete; Unvisited; Unvisited; Symbolic; Concrete ]
let sta = map_of [ Symbolic; Symbolic; Symbolic; Concrete; Symbolic; Concrete ]

let ids plan = Instrument.Plan.instrumented_ids plan

let test_plan_dynamic () =
  let p = Instrument.Plan.make ~nbranches:6 ~dynamic:dyn Instrument.Methods.Dynamic in
  Alcotest.(check (list int)) "only dyn-symbolic" [ 0; 4 ] (ids p)

let test_plan_static () =
  let p = Instrument.Plan.make ~nbranches:6 ~static:sta Instrument.Methods.Static in
  Alcotest.(check (list int)) "static-symbolic" [ 0; 1; 2; 4 ] (ids p)

let test_plan_combined () =
  let p =
    Instrument.Plan.make ~nbranches:6 ~dynamic:dyn ~static:sta
      Instrument.Methods.Dynamic_static
  in
  (* 0: dyn sym -> yes; 1: dyn concrete OVERRIDES static symbolic -> no;
     2: unvisited -> static symbolic -> yes; 3: unvisited -> static concrete
     -> no; 4: both symbolic -> yes; 5: both concrete -> no *)
  Alcotest.(check (list int)) "combination rule" [ 0; 2; 4 ] (ids p)

let test_plan_all_and_none () =
  let all = Instrument.Plan.make ~nbranches:6 Instrument.Methods.All_branches in
  let none = Instrument.Plan.make ~nbranches:6 Instrument.Methods.No_instrumentation in
  check_int "all" 6 all.n_instrumented;
  check_int "none" 0 none.n_instrumented

let test_plan_missing_labels_rejected () =
  match Instrument.Plan.make ~nbranches:6 Instrument.Methods.Dynamic with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* ------------------------------------------------------------------ *)
(* Branch log *)

let test_branch_log_roundtrip () =
  let bits = List.init 77 (fun i -> i mod 3 = 0) in
  let log = Instrument.Branch_log.of_bits bits in
  check_int "nbits" 77 log.nbits;
  Alcotest.(check (list bool)) "roundtrip" bits (Instrument.Branch_log.to_bits log)

let test_branch_log_reader_exhaustion () =
  let log = Instrument.Branch_log.of_bits [ true; false ] in
  let r = Instrument.Branch_log.Reader.create log in
  check_bool "bit 0" true (Instrument.Branch_log.Reader.next r = Some true);
  check_bool "bit 1" true (Instrument.Branch_log.Reader.next r = Some false);
  check_bool "exhausted" true (Instrument.Branch_log.Reader.next r = None)

let test_branch_log_flushes () =
  (* tiny 2-byte buffer: 32 bits -> 4 bytes -> 2 full flushes *)
  let w = Instrument.Branch_log.Writer.create ~buffer_bytes:2 () in
  for _ = 1 to 32 do
    Instrument.Branch_log.Writer.add_bit w true
  done;
  let log = Instrument.Branch_log.finish w in
  check_int "flushes" 2 log.flushes;
  check_int "bytes" 4 (Instrument.Branch_log.size_bytes log)

let test_branch_log_size () =
  let log = Instrument.Branch_log.of_bits (List.init 9 (fun _ -> true)) in
  check_int "9 bits -> 2 bytes" 2 (Instrument.Branch_log.size_bytes log)

let prop_branch_log_roundtrip =
  QCheck.Test.make ~count:200 ~name:"bit log write/read identity"
    QCheck.(list bool)
    (fun bits ->
      let log = Instrument.Branch_log.of_bits bits in
      Instrument.Branch_log.to_bits log = bits)

(* ------------------------------------------------------------------ *)
(* Streaming codec (wire v4 payload) *)

module Codec = Instrument.Codec

(* A bit stream with every regime the encoder handles: long runs (P=1
   matches), alternating and period-3 stretches (P>1 matches), and a
   pseudo-random tail (literal path). *)
let mixed_bits n =
  List.init n (fun i ->
      if i < n / 4 then true (* run *)
      else if i < n / 2 then i mod 2 = 0 (* period 2 *)
      else if i < 3 * n / 4 then i mod 3 = 0 (* period 3 *)
      else (i * 2654435761) land 64 <> 0 (* incompressible-ish *))

let encode_bits ?buffer_bytes bits =
  let e = Codec.Encoder.create ?buffer_bytes () in
  List.iter (Codec.Encoder.add_bit e) bits;
  Codec.finish e

let decoded_bits (e : Codec.encoded) =
  match Codec.decode e with
  | Error m -> Alcotest.fail ("decode failed: " ^ m)
  | Ok log -> Instrument.Branch_log.to_bits log

let test_codec_empty () =
  let e = encode_bits [] in
  check_int "no bytes" 0 (Codec.size_bytes e);
  check_int "no bits" 0 e.nbits;
  check_int "no flushes" 0 e.flushes;
  Alcotest.(check (list bool)) "decodes to nothing" [] (decoded_bits e);
  check_bool "empty stream validates" true (Codec.count_bits "" = Ok 0)

(* Satellite: encode/decode identity for EVERY prefix length of the
   generated log (0..n bits). *)
let test_codec_prefix_identity_all_lengths () =
  let n = 160 in
  let bits = mixed_bits n in
  for k = 0 to n do
    let prefix = List.filteri (fun i _ -> i < k) bits in
    let got = decoded_bits (encode_bits prefix) in
    if got <> prefix then Alcotest.failf "identity broke at prefix length %d" k
  done

(* Satellite: a flush at every bit boundary never changes the decoded
   stream, and after each flush the bytes so far decode to the bits so
   far (the torn-log guarantee). *)
let test_codec_flush_every_boundary () =
  let bits = mixed_bits 120 in
  let e = Codec.Encoder.create () in
  List.iteri
    (fun i b ->
      Codec.Encoder.add_bit e b;
      Codec.Encoder.flush e;
      if Codec.Encoder.nbits e <> i + 1 then
        Alcotest.failf "nbits drifted at %d" i)
    bits;
  Alcotest.(check (list bool)) "flush-per-bit identity" bits
    (decoded_bits (Codec.finish e))

let test_codec_flush_at_one_boundary_each () =
  (* one stream per flush position: add k bits, flush, add the rest *)
  let n = 96 in
  let bits = mixed_bits n in
  for k = 0 to n do
    let e = Codec.Encoder.create () in
    List.iteri
      (fun i b ->
        if i = k then Codec.Encoder.flush e;
        Codec.Encoder.add_bit e b)
      bits;
    if decoded_bits (Codec.finish e) <> bits then
      Alcotest.failf "flush at boundary %d changed the stream" k
  done

let test_codec_cut_prefix_total () =
  (* cutting the encoded bytes at ANY position yields a valid prefix that
     decodes to a prefix of the original bits *)
  let bits = mixed_bits 300 in
  let e = encode_bits bits in
  let arr = Array.of_list bits in
  for cut = 0 to String.length e.data do
    let torn = String.sub e.data 0 cut in
    let kept, kbits = Codec.cut_prefix torn in
    (match Codec.count_bits kept with
    | Ok b when b = kbits -> ()
    | Ok b -> Alcotest.failf "cut %d: count %d <> cut bits %d" cut b kbits
    | Error m -> Alcotest.failf "cut %d: invalid prefix: %s" cut m);
    if kbits > e.nbits then Alcotest.failf "cut %d: bits grew" cut;
    let got =
      decoded_bits { Codec.data = kept; nbits = kbits; flushes = 0 }
    in
    List.iteri
      (fun i b ->
        if b <> arr.(i) then Alcotest.failf "cut %d: bit %d differs" cut i)
      got
  done

let test_codec_cut_recovers_partial_literal () =
  (* an incompressible log encodes as one literal token; tearing inside
     its payload must still salvage every complete payload byte (8 bits
     each), not drop the whole token *)
  let bits = List.init 36 (fun i -> Hashtbl.hash (i * 7919) land 1 = 1) in
  let e = encode_bits bits in
  check_int "single literal token" (1 + ((36 + 7) / 8)) (Codec.size_bytes e);
  let arr = Array.of_list bits in
  for have = 1 to 4 do
    let kept, kbits = Codec.cut_prefix (String.sub e.data 0 (1 + have)) in
    check_int (Printf.sprintf "bytes %d salvage bits" have) (8 * have) kbits;
    (match Codec.count_bits kept with
    | Ok b -> check_int "salvaged stream validates" kbits b
    | Error m -> Alcotest.failf "salvaged stream invalid: %s" m);
    List.iteri
      (fun i b ->
        if b <> arr.(i) then Alcotest.failf "have %d: bit %d differs" have i)
      (decoded_bits { Codec.data = kept; nbits = kbits; flushes = 0 })
  done;
  (* header alone carries nothing *)
  check_int "bare header salvages 0" 0
    (snd (Codec.cut_prefix (String.sub e.data 0 1)))

let test_codec_truncation_fails_closed () =
  let bits = mixed_bits 300 in
  let e = encode_bits bits in
  let len = String.length e.data in
  check_bool "nonempty payload" true (len > 1);
  for cut = 0 to len - 1 do
    match Codec.decode { e with data = String.sub e.data 0 cut } with
    | Ok _ -> Alcotest.failf "decode accepted a %d-byte truncation" cut
    | Error _ -> ()
  done

let test_codec_corruption_fails_closed () =
  (* reserved literal header bit (0xC0) and the empty literal (0x80) are
     both malformed, never silently decoded *)
  List.iter
    (fun byte ->
      match Codec.count_bits (String.make 1 (Char.chr byte)) with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed header 0x%02x" byte)
    [ 0xc0; 0xc1; 0xff; 0x80 ];
  (* a MATCH token referencing history that does not exist *)
  match Codec.count_bits "\x70" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a match with no history"

let test_codec_reader_streams () =
  let bits = mixed_bits 500 in
  let e = encode_bits bits in
  let r = Codec.Reader.create e in
  List.iteri
    (fun i b ->
      check_int "pos tracks" i (Codec.Reader.pos r);
      match Codec.Reader.next r with
      | Some g when g = b -> ()
      | Some _ -> Alcotest.failf "bit %d differs" i
      | None -> Alcotest.failf "reader exhausted at %d" i)
    bits;
  check_bool "exhausted" true (Codec.Reader.next r = None)

let test_codec_compresses_loops () =
  (* 10k-bit all-true run and a 10k-bit alternating pattern: both collapse
     to a handful of bytes; raw packing needs 1250 *)
  let run = List.init 10_000 (fun _ -> true) in
  let alt = List.init 10_000 (fun i -> i mod 2 = 0) in
  List.iter
    (fun bits ->
      let e = encode_bits bits in
      check_bool "loop-heavy stream collapses" true (Codec.size_bytes e < 16))
    [ run; alt ]

let test_codec_flush_accounting () =
  (* tiny 2-byte buffer over an incompressible stream: encoded output
     exceeds 2 bytes repeatedly, so flushes must be counted like
     Branch_log's writer counts raw-buffer fills *)
  let bits = mixed_bits 512 in
  let e = encode_bits ~buffer_bytes:2 bits in
  check_bool "flushes counted" true (e.flushes > 0);
  check_bool "decode keeps flushes" true
    ((match Codec.decode e with
     | Ok l -> l.Instrument.Branch_log.flushes
     | Error _ -> -1)
    = e.flushes)

let test_codec_offline_matches_online () =
  (* Codec.encode over a finished raw log = the same token stream the
     online encoder emits *)
  let bits = mixed_bits 400 in
  let online = encode_bits bits in
  let offline = Codec.encode (Instrument.Branch_log.of_bits bits) in
  check_bool "same bytes" true (online.data = offline.data);
  check_int "same bits" online.nbits offline.nbits

let prop_codec_roundtrip =
  QCheck.Test.make ~count:300 ~name:"codec encode/decode identity"
    QCheck.(list bool)
    (fun bits ->
      let e = encode_bits bits in
      e.nbits = List.length bits && decoded_bits e = bits)

let prop_codec_flushed_prefix =
  (* random flush positions never perturb the decoded stream *)
  QCheck.Test.make ~count:200 ~name:"codec flush positions are invisible"
    QCheck.(pair (list bool) (small_list small_nat))
    (fun (bits, flush_at) ->
      let e = Codec.Encoder.create () in
      List.iteri
        (fun i b ->
          if List.mem i flush_at then Codec.Encoder.flush e;
          Codec.Encoder.add_bit e b)
        bits;
      decoded_bits (Codec.finish e) = bits)

let prop_codec_cut_prefix =
  QCheck.Test.make ~count:200 ~name:"codec any byte cut decodes to a bit prefix"
    QCheck.(pair (list bool) small_nat)
    (fun (bits, cut) ->
      let e = encode_bits bits in
      let cut = min cut (String.length e.data) in
      let kept, kbits = Codec.cut_prefix (String.sub e.data 0 cut) in
      Codec.count_bits kept = Ok kbits
      && kbits <= e.nbits
      && decoded_bits { Codec.data = kept; nbits = kbits; flushes = 0 }
         = List.filteri (fun i _ -> i < kbits) bits)

(* ------------------------------------------------------------------ *)
(* Offline compression (transfer accounting) *)

module Compress = Instrument.Compress

let corpus_logs () =
  let of_bits = Instrument.Branch_log.of_bits in
  let noise n = List.init n (fun i -> Hashtbl.hash (i * 7919) land 1 = 1) in
  (* one aperiodic 128-bit block repeated: byte-level repetition for LZSS,
     runs too short for RLE, clearly smaller than raw *)
  let repeated_block =
    List.concat (List.init 20 (fun _ -> noise 128))
  in
  [
    of_bits [];
    of_bits [ true ];
    of_bits (List.init 4096 (fun _ -> false));
    of_bits (mixed_bits 2048);
    of_bits repeated_block;
    of_bits (noise 777);
  ]

let test_compress_ratio_floor () =
  (* raw is always a candidate encoding, so the chosen one never loses *)
  List.iter
    (fun log ->
      let c = Compress.compress log in
      check_bool "ratio >= 1.0" true (Compress.ratio log c >= 1.0))
    (corpus_logs ())

let test_compress_size_matches_payload () =
  (* size_bytes is the serialized payload length, whatever the encoding *)
  let seen = Hashtbl.create 4 in
  List.iter
    (fun log ->
      let c = Compress.compress log in
      Hashtbl.replace seen c.Compress.encoding ();
      check_int "size_bytes = payload length" (String.length c.Compress.data)
        (Compress.size_bytes c))
    (corpus_logs ());
  (* the corpus above must exercise all three encodings, or the check
     proves less than it claims *)
  check_int "all three encodings exercised" 3 (Hashtbl.length seen)

(* ------------------------------------------------------------------ *)
(* Syscall log *)

let test_syscall_log_roundtrip () =
  let t = Instrument.Syscall_log.create () in
  Instrument.Syscall_log.record t ~kind:"read" ~value:17;
  Instrument.Syscall_log.record t ~kind:"select" ~value:2;
  let log = Instrument.Syscall_log.finish t in
  let r = Instrument.Syscall_log.Reader.create log in
  check_bool "read" true (Instrument.Syscall_log.Reader.next r ~kind:"read" = Ok (Some 17));
  check_bool "select" true
    (Instrument.Syscall_log.Reader.next r ~kind:"select" = Ok (Some 2));
  check_bool "exhausted" true (Instrument.Syscall_log.Reader.next r ~kind:"read" = Ok None)

let test_syscall_log_kind_mismatch () =
  let t = Instrument.Syscall_log.create () in
  Instrument.Syscall_log.record t ~kind:"read" ~value:1;
  let log = Instrument.Syscall_log.finish t in
  let r = Instrument.Syscall_log.Reader.create log in
  match Instrument.Syscall_log.Reader.next r ~kind:"accept" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected kind mismatch"

(* ------------------------------------------------------------------ *)
(* Field runs *)

let field_run ?(meth = Instrument.Methods.All_branches) ?analysis_sc sc =
  let prog = (sc : Concolic.Scenario.t).prog in
  let analysis =
    Bugrepro.Pipeline.analyze
      ~dynamic_budget:{ Concolic.Engine.max_runs = 40; max_time_s = 5.0 }
      ?test_scenario:analysis_sc prog
  in
  let plan = Bugrepro.Pipeline.plan analysis meth in
  (plan, Instrument.Field_run.run ~plan sc)

let paste = Workloads.Coreutils.find "paste"

let test_field_run_counts_bits () =
  let sc = Workloads.Coreutils.benign_scenario paste in
  let plan, r = field_run sc in
  (* every executed branch logs exactly one bit under all-branches *)
  check_int "bits = branch executions" r.cost.branches r.branch_log.nbits;
  check_int "plan covers program" (Minic.Program.nbranches sc.prog)
    plan.n_instrumented

let test_field_run_cost_ordering () =
  let sc = Workloads.Coreutils.benign_scenario paste in
  let none =
    Instrument.Field_run.run
      ~plan:
        (Instrument.Plan.make
           ~nbranches:(Minic.Program.nbranches sc.prog)
           Instrument.Methods.No_instrumentation)
      sc
  in
  let _, all = field_run sc in
  check_bool "all branches costs more than none" true
    (all.cost.instr > none.cost.instr);
  check_int "none logs nothing" 0 none.branch_log.nbits

let test_field_run_report_only_on_crash () =
  let benign = Workloads.Coreutils.benign_scenario paste in
  let crash = Workloads.Coreutils.crash_scenario paste in
  let plan =
    Instrument.Plan.make
      ~nbranches:(Minic.Program.nbranches benign.prog)
      Instrument.Methods.All_branches
  in
  let _, rep_ok = Bugrepro.Pipeline.field_run_report ~plan benign in
  let _, rep_crash = Bugrepro.Pipeline.field_run_report ~plan crash in
  check_bool "no report for clean run" true (rep_ok = None);
  check_bool "report for crash" true (rep_crash <> None)

let test_report_has_no_input_content () =
  (* the report must not contain the argv strings (privacy) *)
  let crash = Workloads.Coreutils.crash_scenario paste in
  let plan =
    Instrument.Plan.make
      ~nbranches:(Minic.Program.nbranches crash.prog)
      Instrument.Methods.All_branches
  in
  let _, rep = Bugrepro.Pipeline.field_run_report ~plan crash in
  match rep with
  | None -> Alcotest.fail "expected a report"
  | Some rep ->
      check_int "shape has arg caps only" (List.length crash.args)
        (List.length rep.shape.arg_caps)

let test_syscall_logging_marginal_overhead () =
  (* §5.3: logging syscall results adds only marginal overhead *)
  let reqs = Workloads.Http_gen.workload 10 in
  let sc = Workloads.Userver.scenario ~name:"u" reqs in
  let plan =
    Instrument.Plan.make
      ~nbranches:(Minic.Program.nbranches sc.prog)
      Instrument.Methods.All_branches
  in
  let with_log = Instrument.Field_run.run ~log_syscalls:true ~plan sc in
  let without = Instrument.Field_run.run ~log_syscalls:false ~plan sc in
  let overhead =
    float_of_int (with_log.cost.instr - without.cost.instr)
    /. float_of_int without.cost.instr
  in
  check_bool "syscall results recorded" true (with_log.syscall_log <> None);
  check_bool "marginal (< 5%)" true (overhead < 0.05)

let test_deterministic_field_runs () =
  (* same scenario, same seed: identical logs *)
  let sc = Workloads.Userver.scenario ~name:"u" (Workloads.Http_gen.workload 5) in
  let plan =
    Instrument.Plan.make
      ~nbranches:(Minic.Program.nbranches sc.prog)
      Instrument.Methods.All_branches
  in
  let r1 = Instrument.Field_run.run ~plan sc in
  let r2 = Instrument.Field_run.run ~plan sc in
  check_bool "identical bit logs" true (r1.branch_log.bytes = r2.branch_log.bytes);
  check_int "identical bit counts" r1.branch_log.nbits r2.branch_log.nbits

(* ------------------------------------------------------------------ *)
(* Wire format *)

let real_report () =
  let crash = Workloads.Coreutils.crash_scenario paste in
  let plan =
    Instrument.Plan.make
      ~nbranches:(Minic.Program.nbranches crash.prog)
      Instrument.Methods.All_branches
  in
  let _, rep = Bugrepro.Pipeline.field_run_report ~plan crash in
  Option.get rep

(* The full bit sequence a report's payload streams, raw or encoded. *)
let report_bits (r : Instrument.Report.t) =
  let rd = Instrument.Report.reader r in
  let rec go acc =
    match Instrument.Report.read_next rd with
    | None -> List.rev acc
    | Some b -> go (b :: acc)
  in
  go []

(* A report's payload downgraded to the raw encoding (wire v1-v3 shape). *)
let raw_twin (r : Instrument.Report.t) =
  { r with branch_log = Instrument.Report.Raw (Instrument.Report.raw_log r) }

let report_equal (a : Instrument.Report.t) (b : Instrument.Report.t) =
  a.program = b.program
  && a.method_used = b.method_used
  && report_bits a = report_bits b
  && Instrument.Report.nbits a = Instrument.Report.nbits b
  && Interp.Crash.equal_site a.crash b.crash
  && a.shape = b.shape
  && (match a.syscall_log, b.syscall_log with
     | Some x, Some y -> x.entries = y.entries
     | None, None -> true
     | _ -> false)
  &&
  match a.schedule_log, b.schedule_log with
  | Some x, Some y -> x.tids = y.tids
  | None, None -> true
  | Some x, None | None, Some x -> Instrument.Schedule_log.length x = 0

let test_wire_roundtrip () =
  let rep = real_report () in
  match Instrument.Wire.deserialize (Instrument.Wire.serialize rep) with
  | Ok rep' -> check_bool "roundtrip" true (report_equal rep rep')
  | Error e -> Alcotest.fail ("deserialize failed: " ^ e)

let test_wire_roundtrip_mt () =
  (* a report with a schedule log *)
  let sc = Workloads.Mtrace.scenario ~seed:3 () in
  let plan =
    Instrument.Plan.make
      ~nbranches:(Minic.Program.nbranches sc.prog)
      Instrument.Methods.All_branches
  in
  let _, rep = Bugrepro.Pipeline.field_run_report ~plan sc in
  let rep = Option.get rep in
  match Instrument.Wire.deserialize (Instrument.Wire.serialize rep) with
  | Ok rep' ->
      check_bool "schedule preserved" true (report_equal rep rep');
      check_bool "has schedule" true (rep'.schedule_log <> None)
  | Error e -> Alcotest.fail ("deserialize failed: " ^ e)

let test_wire_rejects_garbage () =
  List.iter
    (fun s ->
      match Instrument.Wire.deserialize s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted garbage %S" s)
    [
      "";
      "hello";
      "bugrepro-report/1\nprogram: x";
      (* bad magic *)
      "bugrepro-report/2\nprogram: x";
    ]

let test_wire_rejects_bit_overrun () =
  let rep = real_report () in
  let s = Instrument.Wire.serialize rep in
  (* inflate the claimed bit count beyond the log bytes *)
  let s =
    Str.global_replace
      (Str.regexp "branch-bits: [0-9]+")
      "branch-bits: 999999" s
  in
  match Instrument.Wire.deserialize s with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted overrun bit count"

let test_wire_version_header () =
  check_int "current version" 4 Instrument.Wire.version;
  let s = Instrument.Wire.serialize (real_report ()) in
  check_bool "header is magic_prefix ^ version" true
    (String.length s > String.length Instrument.Wire.magic
    && String.sub s 0 (String.length Instrument.Wire.magic)
       = Instrument.Wire.magic)

let test_wire_version_roundtrip () =
  (* the v2/v3 fields (branch-flushes, suppression) survive the round trip *)
  let rep = real_report () in
  match Instrument.Wire.deserialize_v (Instrument.Wire.serialize rep) with
  | Ok rep' ->
      check_bool "roundtrip" true (report_equal rep rep');
      check_int "flushes preserved"
        (Instrument.Report.flushes rep)
        (Instrument.Report.flushes rep')
  | Error e -> Alcotest.fail ("deserialize failed: " ^ Instrument.Wire.error_to_string e)

let test_wire_accepts_v1 () =
  (* a v1 report: old header, raw log, no branch-flushes field; reads back
     with flushes = 0 *)
  let s = Instrument.Wire.serialize (raw_twin (real_report ())) in
  let s =
    Str.global_replace (Str.regexp "^bugrepro-report/4$") "bugrepro-report/1" s
    |> Str.global_replace (Str.regexp "branch-flushes: [0-9]+\n") ""
  in
  match Instrument.Wire.deserialize_v s with
  | Ok rep -> check_int "v1 flushes default" 0 (Instrument.Report.flushes rep)
  | Error e ->
      Alcotest.fail ("v1 rejected: " ^ Instrument.Wire.error_to_string e)

let test_wire_unknown_version_distinct () =
  let s = Instrument.Wire.serialize (raw_twin (real_report ())) in
  let bump v =
    Str.global_replace (Str.regexp "^bugrepro-report/4$")
      ("bugrepro-report/" ^ v) s
  in
  (match Instrument.Wire.deserialize_v (bump "99") with
  | Error (Instrument.Wire.Unknown_version 99) -> ()
  | Error e ->
      Alcotest.failf "expected Unknown_version 99, got %s"
        (Instrument.Wire.error_to_string e)
  | Ok _ -> Alcotest.fail "accepted version 99");
  (match Instrument.Wire.deserialize_v (bump "0") with
  | Error (Instrument.Wire.Unknown_version 0) -> ()
  | _ -> Alcotest.fail "expected Unknown_version 0");
  (* a malformed version is corruption, not a version mismatch *)
  (match Instrument.Wire.deserialize_v (bump "x") with
  | Error (Instrument.Wire.Malformed _) -> ()
  | _ -> Alcotest.fail "expected Malformed on non-integer version");
  (* the string interface reports the mismatch readably *)
  match Instrument.Wire.deserialize (bump "99") with
  | Error msg ->
      check_bool "string error mentions version" true
        (Str.string_match (Str.regexp ".*version.*") msg 0)
  | Ok _ -> Alcotest.fail "accepted version 99"

let prop_wire_roundtrip_synthetic =
  QCheck.Test.make ~count:100 ~name:"wire roundtrip on synthetic reports"
    QCheck.(
      triple (list bool)
        (list (pair (oneofl [ "read"; "select"; "accept"; "ready_fd" ]) small_nat))
        (list small_nat))
    (fun (bits, syscalls, tids) ->
      let rep =
        {
          Instrument.Report.program = "synthetic";
          method_used = Instrument.Methods.Dynamic_static;
          cohort = None;
          branch_log = Instrument.Report.Raw (Instrument.Branch_log.of_bits bits);
          syscall_log =
            Some
              {
                Instrument.Syscall_log.entries =
                  Array.of_list
                    (List.map
                       (fun (kind, value) -> { Instrument.Syscall_log.kind; value })
                       syscalls);
              };
          schedule_log = Some { Instrument.Schedule_log.tids = Array.of_list tids };
          crash =
            {
              Interp.Crash.kind = Interp.Crash.Out_of_bounds;
              loc = Minic.Loc.make ~file:"x.c" ~line:3 ~col:7;
              in_func = "main";
            };
          shape =
            {
              Concolic.Scenario.arg_caps = [ 4; 9 ];
              n_conns = 2;
              conn_cap = 64;
              file_names = [ "a.txt" ];
              file_cap = 32;
            };
          suppression = [];
        }
      in
      match Instrument.Wire.deserialize (Instrument.Wire.serialize rep) with
      | Ok rep' -> report_equal rep rep'
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Cross-version matrix: hand-authored fixtures for every wire version.
   The body lines below are the frozen v1-v3 grammar; a reader change
   that breaks any historical version breaks these strings. *)

let fixture_body =
  String.concat "\n"
    [
      "program: fixture";
      "method: all";
      "crash: crash|f.c|3|7|main";
      "shape-args: 4,9";
      "shape-conns: 2,64";
      "shape-files: a.txt";
      "shape-filecap: 32";
      "branch-bits: 12";
      "branch-log: b505";
      "branch-flushes: 0";
      "syscalls: read:17,select:2";
      "schedule: 0,1,0";
      "";
    ]

let fixture_v v = Printf.sprintf "bugrepro-report/%d\n%s" v fixture_body

(* the canonical serialization order differs from the historical field
   order above (the branch payload now serializes last, so a tail tear
   costs bits rather than the syscall log); readers accept both, the
   writer emits only this one *)
let canonical_body ~payload =
  String.concat "\n"
    [
      "program: fixture";
      "method: all";
      "crash: crash|f.c|3|7|main";
      "shape-args: 4,9";
      "shape-conns: 2,64";
      "shape-files: a.txt";
      "shape-filecap: 32";
      "syscalls: read:17,select:2";
      "schedule: 0,1,0";
      "branch-bits: 12";
      "branch-flushes: 0";
      payload;
      "";
    ]

let canonical_v4 =
  "bugrepro-report/4\n" ^ canonical_body ~payload:"branch-log: b505"

(* the same 12 bits as one LITERAL codec token (header 0x80|12, then the
   packed payload bytes) *)
let fixture_v4_encoded =
  "bugrepro-report/4\n"
  ^ Str.global_replace
      (Str.regexp_string "branch-log: b505")
      "branch-enc: 8cb505" fixture_body

let canonical_v4_encoded =
  "bugrepro-report/4\n" ^ canonical_body ~payload:"branch-enc: 8cb505"

let fixture_bits =
  [
    true; false; true; false; true; true; false; true; true; false; true;
    false;
  ]

let test_wire_cross_version_fixtures () =
  (* v1, v2, v3 and v4-raw deserialize to byte-identical reports: each
     re-serializes to exactly the current (v4) fixture string *)
  List.iter
    (fun v ->
      match Instrument.Wire.deserialize_v (fixture_v v) with
      | Error e ->
          Alcotest.failf "v%d fixture rejected: %s" v
            (Instrument.Wire.error_to_string e)
      | Ok rep ->
          Alcotest.(check string)
            (Printf.sprintf "v%d normalizes to the v4 wire form" v)
            canonical_v4
            (Instrument.Wire.serialize rep);
          Alcotest.(check (list bool))
            (Printf.sprintf "v%d fixture bits" v)
            fixture_bits (report_bits rep))
    [ 1; 2; 3; 4 ]

let test_wire_v4_encoded_fixture () =
  match Instrument.Wire.deserialize_v fixture_v4_encoded with
  | Error e ->
      Alcotest.failf "v4 encoded fixture rejected: %s"
        (Instrument.Wire.error_to_string e)
  | Ok rep ->
      Alcotest.(check (list bool)) "encoded fixture bits" fixture_bits
        (report_bits rep);
      check_bool "payload stays encoded" true
        (match rep.branch_log with
        | Instrument.Report.Encoded _ -> true
        | Instrument.Report.Raw _ -> false);
      Alcotest.(check string) "encoded fixture re-serializes canonically"
        canonical_v4_encoded
        (Instrument.Wire.serialize rep);
      (* the raw and encoded fixtures are the same logical report *)
      match Instrument.Wire.deserialize_v (fixture_v 4) with
      | Ok raw -> check_bool "equal to the raw twin" true (report_equal rep raw)
      | Error _ -> Alcotest.fail "raw fixture rejected"

let test_wire_enc_rejected_below_v4 () =
  List.iter
    (fun v ->
      let s =
        Str.global_replace
          (Str.regexp "^bugrepro-report/4$")
          (Printf.sprintf "bugrepro-report/%d" v)
          fixture_v4_encoded
      in
      match Instrument.Wire.deserialize_v s with
      | Error (Instrument.Wire.Malformed _) -> ()
      | Error e ->
          Alcotest.failf "v%d: wrong error %s" v
            (Instrument.Wire.error_to_string e)
      | Ok _ -> Alcotest.failf "v%d accepted a branch-enc payload" v)
    [ 1; 2; 3 ]

let test_wire_both_payloads_rejected () =
  let s =
    "bugrepro-report/4\n"
    ^ Str.global_replace
        (Str.regexp_string "branch-log: b505")
        "branch-log: b505\nbranch-enc: 8cb505" fixture_body
  in
  match Instrument.Wire.deserialize_v s with
  | Error (Instrument.Wire.Malformed _) -> ()
  | _ -> Alcotest.fail "accepted a report with both payload kinds"

let test_wire_enc_bit_count_strict () =
  (* claimed bits must match the decoded stream exactly, both directions *)
  List.iter
    (fun claim ->
      let s =
        Str.global_replace
          (Str.regexp "branch-bits: 12")
          ("branch-bits: " ^ claim) fixture_v4_encoded
      in
      match Instrument.Wire.deserialize_v s with
      | Error (Instrument.Wire.Malformed _) -> ()
      | _ -> Alcotest.failf "accepted branch-bits %s over a 12-bit stream" claim)
    [ "11"; "13"; "0" ]

let test_wire_v4_encoded_equals_raw_run () =
  (* the same deterministic run, encode on vs off: the two reports stream
     identical bits and both reproduce the crash from their wire forms *)
  let crash = Workloads.Coreutils.crash_scenario paste in
  let plan =
    Instrument.Plan.make
      ~nbranches:(Minic.Program.nbranches crash.prog)
      Instrument.Methods.All_branches
  in
  let run encode =
    let r = Instrument.Field_run.run ~encode ~plan crash in
    Option.get (Instrument.Report.of_field_run ~sc:crash ~plan r)
  in
  let enc = run true and raw = run false in
  check_bool "encoded report ships an encoded payload" true
    (match enc.branch_log with Instrument.Report.Encoded _ -> true | _ -> false);
  check_bool "raw report ships a raw payload" true
    (match raw.branch_log with Instrument.Report.Raw _ -> true | _ -> false);
  Alcotest.(check (list bool))
    "bit-for-bit equal logs" (report_bits raw) (report_bits enc);
  List.iter
    (fun rep ->
      match Instrument.Wire.deserialize_v (Instrument.Wire.serialize rep) with
      | Error e ->
          Alcotest.fail
            ("wire roundtrip failed: " ^ Instrument.Wire.error_to_string e)
      | Ok rep' ->
          let result, _ =
            Bugrepro.Pipeline.reproduce
              ~budget:{ Concolic.Engine.max_runs = 2000; max_time_s = 15.0 }
              ~prog:crash.prog ~plan rep'
          in
          check_bool "reproduced" true (Replay.Guided.reproduced result))
    [ enc; raw ]

let test_wire_replay_from_deserialized () =
  (* the full loop: serialize at the user site, parse at the developer
     site, reproduce *)
  let crash = Workloads.Coreutils.crash_scenario paste in
  let prog = crash.prog in
  let plan =
    Instrument.Plan.make
      ~nbranches:(Minic.Program.nbranches prog)
      Instrument.Methods.All_branches
  in
  let _, rep = Bugrepro.Pipeline.field_run_report ~plan crash in
  let wire = Instrument.Wire.serialize (Option.get rep) in
  match Instrument.Wire.deserialize wire with
  | Error e -> Alcotest.fail e
  | Ok rep ->
      let result, _ =
        Bugrepro.Pipeline.reproduce
          ~budget:{ Concolic.Engine.max_runs = 2000; max_time_s = 15.0 }
          ~prog ~plan rep
      in
      check_bool "reproduced from wire form" true (Replay.Guided.reproduced result)

let () =
  Alcotest.run "instrument"
    [
      ( "plan",
        [
          Alcotest.test_case "dynamic" `Quick test_plan_dynamic;
          Alcotest.test_case "static" `Quick test_plan_static;
          Alcotest.test_case "dynamic+static combination" `Quick test_plan_combined;
          Alcotest.test_case "all/none" `Quick test_plan_all_and_none;
          Alcotest.test_case "missing labels rejected" `Quick
            test_plan_missing_labels_rejected;
        ] );
      ( "branch_log",
        [
          Alcotest.test_case "roundtrip" `Quick test_branch_log_roundtrip;
          Alcotest.test_case "reader exhaustion" `Quick
            test_branch_log_reader_exhaustion;
          Alcotest.test_case "flushes" `Quick test_branch_log_flushes;
          Alcotest.test_case "size" `Quick test_branch_log_size;
          QCheck_alcotest.to_alcotest prop_branch_log_roundtrip;
        ] );
      ( "codec",
        [
          Alcotest.test_case "empty log" `Quick test_codec_empty;
          Alcotest.test_case "identity at every prefix length" `Quick
            test_codec_prefix_identity_all_lengths;
          Alcotest.test_case "flush at every bit" `Quick
            test_codec_flush_every_boundary;
          Alcotest.test_case "flush at each boundary once" `Quick
            test_codec_flush_at_one_boundary_each;
          Alcotest.test_case "cut_prefix is total" `Quick
            test_codec_cut_prefix_total;
          Alcotest.test_case "cut_prefix recovers partial literal" `Quick
            test_codec_cut_recovers_partial_literal;
          Alcotest.test_case "truncation fails closed" `Quick
            test_codec_truncation_fails_closed;
          Alcotest.test_case "corruption fails closed" `Quick
            test_codec_corruption_fails_closed;
          Alcotest.test_case "reader streams" `Quick test_codec_reader_streams;
          Alcotest.test_case "loop-heavy streams collapse" `Quick
            test_codec_compresses_loops;
          Alcotest.test_case "flush accounting" `Quick
            test_codec_flush_accounting;
          Alcotest.test_case "offline = online" `Quick
            test_codec_offline_matches_online;
          QCheck_alcotest.to_alcotest prop_codec_roundtrip;
          QCheck_alcotest.to_alcotest prop_codec_flushed_prefix;
          QCheck_alcotest.to_alcotest prop_codec_cut_prefix;
        ] );
      ( "compress",
        [
          Alcotest.test_case "ratio floor" `Quick test_compress_ratio_floor;
          Alcotest.test_case "size matches payload" `Quick
            test_compress_size_matches_payload;
        ] );
      ( "syscall_log",
        [
          Alcotest.test_case "roundtrip" `Quick test_syscall_log_roundtrip;
          Alcotest.test_case "kind mismatch" `Quick test_syscall_log_kind_mismatch;
        ] );
      ( "wire",
        [
          Alcotest.test_case "roundtrip" `Quick test_wire_roundtrip;
          Alcotest.test_case "roundtrip with schedule" `Quick test_wire_roundtrip_mt;
          Alcotest.test_case "rejects garbage" `Quick test_wire_rejects_garbage;
          Alcotest.test_case "rejects bit overrun" `Quick test_wire_rejects_bit_overrun;
          Alcotest.test_case "version header" `Quick test_wire_version_header;
          Alcotest.test_case "version roundtrip" `Quick test_wire_version_roundtrip;
          Alcotest.test_case "accepts v1" `Quick test_wire_accepts_v1;
          Alcotest.test_case "unknown version distinct" `Quick
            test_wire_unknown_version_distinct;
          Alcotest.test_case "cross-version fixtures" `Quick
            test_wire_cross_version_fixtures;
          Alcotest.test_case "v4 encoded fixture" `Quick
            test_wire_v4_encoded_fixture;
          Alcotest.test_case "branch-enc rejected below v4" `Quick
            test_wire_enc_rejected_below_v4;
          Alcotest.test_case "both payloads rejected" `Quick
            test_wire_both_payloads_rejected;
          Alcotest.test_case "encoded bit count strict" `Quick
            test_wire_enc_bit_count_strict;
          Alcotest.test_case "encoded run equals raw run" `Quick
            test_wire_v4_encoded_equals_raw_run;
          Alcotest.test_case "replay from wire form" `Quick
            test_wire_replay_from_deserialized;
          QCheck_alcotest.to_alcotest prop_wire_roundtrip_synthetic;
        ] );
      ( "field_run",
        [
          Alcotest.test_case "bit accounting" `Quick test_field_run_counts_bits;
          Alcotest.test_case "cost ordering" `Quick test_field_run_cost_ordering;
          Alcotest.test_case "report only on crash" `Quick
            test_field_run_report_only_on_crash;
          Alcotest.test_case "report carries shape, not content" `Quick
            test_report_has_no_input_content;
          Alcotest.test_case "syscall logging marginal" `Slow
            test_syscall_logging_marginal_overhead;
          Alcotest.test_case "deterministic runs" `Quick
            test_deterministic_field_runs;
        ] );
    ]
