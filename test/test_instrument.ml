(* Tests for instrumentation: plan combination rules (§2.3), the branch-log
   bitvector, the syscall log, field runs and bug reports. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

open Minic.Label

let map_of (l : t list) : map = Array.of_list l

(* ------------------------------------------------------------------ *)
(* Plan combination *)

let dyn = map_of [ Symbolic; Concrete; Unvisited; Unvisited; Symbolic; Concrete ]
let sta = map_of [ Symbolic; Symbolic; Symbolic; Concrete; Symbolic; Concrete ]

let ids plan = Instrument.Plan.instrumented_ids plan

let test_plan_dynamic () =
  let p = Instrument.Plan.make ~nbranches:6 ~dynamic:dyn Instrument.Methods.Dynamic in
  Alcotest.(check (list int)) "only dyn-symbolic" [ 0; 4 ] (ids p)

let test_plan_static () =
  let p = Instrument.Plan.make ~nbranches:6 ~static:sta Instrument.Methods.Static in
  Alcotest.(check (list int)) "static-symbolic" [ 0; 1; 2; 4 ] (ids p)

let test_plan_combined () =
  let p =
    Instrument.Plan.make ~nbranches:6 ~dynamic:dyn ~static:sta
      Instrument.Methods.Dynamic_static
  in
  (* 0: dyn sym -> yes; 1: dyn concrete OVERRIDES static symbolic -> no;
     2: unvisited -> static symbolic -> yes; 3: unvisited -> static concrete
     -> no; 4: both symbolic -> yes; 5: both concrete -> no *)
  Alcotest.(check (list int)) "combination rule" [ 0; 2; 4 ] (ids p)

let test_plan_all_and_none () =
  let all = Instrument.Plan.make ~nbranches:6 Instrument.Methods.All_branches in
  let none = Instrument.Plan.make ~nbranches:6 Instrument.Methods.No_instrumentation in
  check_int "all" 6 all.n_instrumented;
  check_int "none" 0 none.n_instrumented

let test_plan_missing_labels_rejected () =
  match Instrument.Plan.make ~nbranches:6 Instrument.Methods.Dynamic with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* ------------------------------------------------------------------ *)
(* Branch log *)

let test_branch_log_roundtrip () =
  let bits = List.init 77 (fun i -> i mod 3 = 0) in
  let log = Instrument.Branch_log.of_bits bits in
  check_int "nbits" 77 log.nbits;
  Alcotest.(check (list bool)) "roundtrip" bits (Instrument.Branch_log.to_bits log)

let test_branch_log_reader_exhaustion () =
  let log = Instrument.Branch_log.of_bits [ true; false ] in
  let r = Instrument.Branch_log.Reader.create log in
  check_bool "bit 0" true (Instrument.Branch_log.Reader.next r = Some true);
  check_bool "bit 1" true (Instrument.Branch_log.Reader.next r = Some false);
  check_bool "exhausted" true (Instrument.Branch_log.Reader.next r = None)

let test_branch_log_flushes () =
  (* tiny 2-byte buffer: 32 bits -> 4 bytes -> 2 full flushes *)
  let w = Instrument.Branch_log.Writer.create ~buffer_bytes:2 () in
  for _ = 1 to 32 do
    Instrument.Branch_log.Writer.add_bit w true
  done;
  let log = Instrument.Branch_log.finish w in
  check_int "flushes" 2 log.flushes;
  check_int "bytes" 4 (Instrument.Branch_log.size_bytes log)

let test_branch_log_size () =
  let log = Instrument.Branch_log.of_bits (List.init 9 (fun _ -> true)) in
  check_int "9 bits -> 2 bytes" 2 (Instrument.Branch_log.size_bytes log)

let prop_branch_log_roundtrip =
  QCheck.Test.make ~count:200 ~name:"bit log write/read identity"
    QCheck.(list bool)
    (fun bits ->
      let log = Instrument.Branch_log.of_bits bits in
      Instrument.Branch_log.to_bits log = bits)

(* ------------------------------------------------------------------ *)
(* Syscall log *)

let test_syscall_log_roundtrip () =
  let t = Instrument.Syscall_log.create () in
  Instrument.Syscall_log.record t ~kind:"read" ~value:17;
  Instrument.Syscall_log.record t ~kind:"select" ~value:2;
  let log = Instrument.Syscall_log.finish t in
  let r = Instrument.Syscall_log.Reader.create log in
  check_bool "read" true (Instrument.Syscall_log.Reader.next r ~kind:"read" = Ok (Some 17));
  check_bool "select" true
    (Instrument.Syscall_log.Reader.next r ~kind:"select" = Ok (Some 2));
  check_bool "exhausted" true (Instrument.Syscall_log.Reader.next r ~kind:"read" = Ok None)

let test_syscall_log_kind_mismatch () =
  let t = Instrument.Syscall_log.create () in
  Instrument.Syscall_log.record t ~kind:"read" ~value:1;
  let log = Instrument.Syscall_log.finish t in
  let r = Instrument.Syscall_log.Reader.create log in
  match Instrument.Syscall_log.Reader.next r ~kind:"accept" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected kind mismatch"

(* ------------------------------------------------------------------ *)
(* Field runs *)

let field_run ?(meth = Instrument.Methods.All_branches) ?analysis_sc sc =
  let prog = (sc : Concolic.Scenario.t).prog in
  let analysis =
    Bugrepro.Pipeline.analyze
      ~dynamic_budget:{ Concolic.Engine.max_runs = 40; max_time_s = 5.0 }
      ?test_scenario:analysis_sc prog
  in
  let plan = Bugrepro.Pipeline.plan analysis meth in
  (plan, Instrument.Field_run.run ~plan sc)

let paste = Workloads.Coreutils.find "paste"

let test_field_run_counts_bits () =
  let sc = Workloads.Coreutils.benign_scenario paste in
  let plan, r = field_run sc in
  (* every executed branch logs exactly one bit under all-branches *)
  check_int "bits = branch executions" r.cost.branches r.branch_log.nbits;
  check_int "plan covers program" (Minic.Program.nbranches sc.prog)
    plan.n_instrumented

let test_field_run_cost_ordering () =
  let sc = Workloads.Coreutils.benign_scenario paste in
  let none =
    Instrument.Field_run.run
      ~plan:
        (Instrument.Plan.make
           ~nbranches:(Minic.Program.nbranches sc.prog)
           Instrument.Methods.No_instrumentation)
      sc
  in
  let _, all = field_run sc in
  check_bool "all branches costs more than none" true
    (all.cost.instr > none.cost.instr);
  check_int "none logs nothing" 0 none.branch_log.nbits

let test_field_run_report_only_on_crash () =
  let benign = Workloads.Coreutils.benign_scenario paste in
  let crash = Workloads.Coreutils.crash_scenario paste in
  let plan =
    Instrument.Plan.make
      ~nbranches:(Minic.Program.nbranches benign.prog)
      Instrument.Methods.All_branches
  in
  let _, rep_ok = Bugrepro.Pipeline.field_run_report ~plan benign in
  let _, rep_crash = Bugrepro.Pipeline.field_run_report ~plan crash in
  check_bool "no report for clean run" true (rep_ok = None);
  check_bool "report for crash" true (rep_crash <> None)

let test_report_has_no_input_content () =
  (* the report must not contain the argv strings (privacy) *)
  let crash = Workloads.Coreutils.crash_scenario paste in
  let plan =
    Instrument.Plan.make
      ~nbranches:(Minic.Program.nbranches crash.prog)
      Instrument.Methods.All_branches
  in
  let _, rep = Bugrepro.Pipeline.field_run_report ~plan crash in
  match rep with
  | None -> Alcotest.fail "expected a report"
  | Some rep ->
      check_int "shape has arg caps only" (List.length crash.args)
        (List.length rep.shape.arg_caps)

let test_syscall_logging_marginal_overhead () =
  (* §5.3: logging syscall results adds only marginal overhead *)
  let reqs = Workloads.Http_gen.workload 10 in
  let sc = Workloads.Userver.scenario ~name:"u" reqs in
  let plan =
    Instrument.Plan.make
      ~nbranches:(Minic.Program.nbranches sc.prog)
      Instrument.Methods.All_branches
  in
  let with_log = Instrument.Field_run.run ~log_syscalls:true ~plan sc in
  let without = Instrument.Field_run.run ~log_syscalls:false ~plan sc in
  let overhead =
    float_of_int (with_log.cost.instr - without.cost.instr)
    /. float_of_int without.cost.instr
  in
  check_bool "syscall results recorded" true (with_log.syscall_log <> None);
  check_bool "marginal (< 5%)" true (overhead < 0.05)

let test_deterministic_field_runs () =
  (* same scenario, same seed: identical logs *)
  let sc = Workloads.Userver.scenario ~name:"u" (Workloads.Http_gen.workload 5) in
  let plan =
    Instrument.Plan.make
      ~nbranches:(Minic.Program.nbranches sc.prog)
      Instrument.Methods.All_branches
  in
  let r1 = Instrument.Field_run.run ~plan sc in
  let r2 = Instrument.Field_run.run ~plan sc in
  check_bool "identical bit logs" true (r1.branch_log.bytes = r2.branch_log.bytes);
  check_int "identical bit counts" r1.branch_log.nbits r2.branch_log.nbits

(* ------------------------------------------------------------------ *)
(* Wire format *)

let real_report () =
  let crash = Workloads.Coreutils.crash_scenario paste in
  let plan =
    Instrument.Plan.make
      ~nbranches:(Minic.Program.nbranches crash.prog)
      Instrument.Methods.All_branches
  in
  let _, rep = Bugrepro.Pipeline.field_run_report ~plan crash in
  Option.get rep

let report_equal (a : Instrument.Report.t) (b : Instrument.Report.t) =
  a.program = b.program
  && a.method_used = b.method_used
  && a.branch_log.bytes = b.branch_log.bytes
  && a.branch_log.nbits = b.branch_log.nbits
  && Interp.Crash.equal_site a.crash b.crash
  && a.shape = b.shape
  && (match a.syscall_log, b.syscall_log with
     | Some x, Some y -> x.entries = y.entries
     | None, None -> true
     | _ -> false)
  &&
  match a.schedule_log, b.schedule_log with
  | Some x, Some y -> x.tids = y.tids
  | None, None -> true
  | Some x, None | None, Some x -> Instrument.Schedule_log.length x = 0

let test_wire_roundtrip () =
  let rep = real_report () in
  match Instrument.Wire.deserialize (Instrument.Wire.serialize rep) with
  | Ok rep' -> check_bool "roundtrip" true (report_equal rep rep')
  | Error e -> Alcotest.fail ("deserialize failed: " ^ e)

let test_wire_roundtrip_mt () =
  (* a report with a schedule log *)
  let sc = Workloads.Mtrace.scenario ~seed:3 () in
  let plan =
    Instrument.Plan.make
      ~nbranches:(Minic.Program.nbranches sc.prog)
      Instrument.Methods.All_branches
  in
  let _, rep = Bugrepro.Pipeline.field_run_report ~plan sc in
  let rep = Option.get rep in
  match Instrument.Wire.deserialize (Instrument.Wire.serialize rep) with
  | Ok rep' ->
      check_bool "schedule preserved" true (report_equal rep rep');
      check_bool "has schedule" true (rep'.schedule_log <> None)
  | Error e -> Alcotest.fail ("deserialize failed: " ^ e)

let test_wire_rejects_garbage () =
  List.iter
    (fun s ->
      match Instrument.Wire.deserialize s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted garbage %S" s)
    [
      "";
      "hello";
      "bugrepro-report/1\nprogram: x";
      (* bad magic *)
      "bugrepro-report/2\nprogram: x";
    ]

let test_wire_rejects_bit_overrun () =
  let rep = real_report () in
  let s = Instrument.Wire.serialize rep in
  (* inflate the claimed bit count beyond the log bytes *)
  let s =
    Str.global_replace
      (Str.regexp "branch-bits: [0-9]+")
      "branch-bits: 999999" s
  in
  match Instrument.Wire.deserialize s with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted overrun bit count"

let test_wire_version_header () =
  check_int "current version" 3 Instrument.Wire.version;
  let s = Instrument.Wire.serialize (real_report ()) in
  check_bool "header is magic_prefix ^ version" true
    (String.length s > String.length Instrument.Wire.magic
    && String.sub s 0 (String.length Instrument.Wire.magic)
       = Instrument.Wire.magic)

let test_wire_version_roundtrip () =
  (* the v2/v3 fields (branch-flushes, suppression) survive the round trip *)
  let rep = real_report () in
  match Instrument.Wire.deserialize_v (Instrument.Wire.serialize rep) with
  | Ok rep' ->
      check_bool "roundtrip" true (report_equal rep rep');
      check_int "flushes preserved" rep.branch_log.flushes
        rep'.branch_log.flushes
  | Error e -> Alcotest.fail ("deserialize failed: " ^ Instrument.Wire.error_to_string e)

let test_wire_accepts_v1 () =
  (* a v1 report: old header, no branch-flushes field; reads back with
     flushes = 0 *)
  let s = Instrument.Wire.serialize (real_report ()) in
  let s =
    Str.global_replace (Str.regexp "^bugrepro-report/3$") "bugrepro-report/1" s
    |> Str.global_replace (Str.regexp "branch-flushes: [0-9]+\n") ""
  in
  match Instrument.Wire.deserialize_v s with
  | Ok rep -> check_int "v1 flushes default" 0 rep.branch_log.flushes
  | Error e ->
      Alcotest.fail ("v1 rejected: " ^ Instrument.Wire.error_to_string e)

let test_wire_unknown_version_distinct () =
  let s = Instrument.Wire.serialize (real_report ()) in
  let bump v =
    Str.global_replace (Str.regexp "^bugrepro-report/3$")
      ("bugrepro-report/" ^ v) s
  in
  (match Instrument.Wire.deserialize_v (bump "99") with
  | Error (Instrument.Wire.Unknown_version 99) -> ()
  | Error e ->
      Alcotest.failf "expected Unknown_version 99, got %s"
        (Instrument.Wire.error_to_string e)
  | Ok _ -> Alcotest.fail "accepted version 99");
  (match Instrument.Wire.deserialize_v (bump "0") with
  | Error (Instrument.Wire.Unknown_version 0) -> ()
  | _ -> Alcotest.fail "expected Unknown_version 0");
  (* a malformed version is corruption, not a version mismatch *)
  (match Instrument.Wire.deserialize_v (bump "x") with
  | Error (Instrument.Wire.Malformed _) -> ()
  | _ -> Alcotest.fail "expected Malformed on non-integer version");
  (* the string interface reports the mismatch readably *)
  match Instrument.Wire.deserialize (bump "99") with
  | Error msg ->
      check_bool "string error mentions version" true
        (Str.string_match (Str.regexp ".*version.*") msg 0)
  | Ok _ -> Alcotest.fail "accepted version 99"

let prop_wire_roundtrip_synthetic =
  QCheck.Test.make ~count:100 ~name:"wire roundtrip on synthetic reports"
    QCheck.(
      triple (list bool)
        (list (pair (oneofl [ "read"; "select"; "accept"; "ready_fd" ]) small_nat))
        (list small_nat))
    (fun (bits, syscalls, tids) ->
      let rep =
        {
          Instrument.Report.program = "synthetic";
          method_used = Instrument.Methods.Dynamic_static;
          branch_log = Instrument.Branch_log.of_bits bits;
          syscall_log =
            Some
              {
                Instrument.Syscall_log.entries =
                  Array.of_list
                    (List.map
                       (fun (kind, value) -> { Instrument.Syscall_log.kind; value })
                       syscalls);
              };
          schedule_log = Some { Instrument.Schedule_log.tids = Array.of_list tids };
          crash =
            {
              Interp.Crash.kind = Interp.Crash.Out_of_bounds;
              loc = Minic.Loc.make ~file:"x.c" ~line:3 ~col:7;
              in_func = "main";
            };
          shape =
            {
              Concolic.Scenario.arg_caps = [ 4; 9 ];
              n_conns = 2;
              conn_cap = 64;
              file_names = [ "a.txt" ];
              file_cap = 32;
            };
          suppression = [];
        }
      in
      match Instrument.Wire.deserialize (Instrument.Wire.serialize rep) with
      | Ok rep' -> report_equal rep rep'
      | Error _ -> false)

let test_wire_replay_from_deserialized () =
  (* the full loop: serialize at the user site, parse at the developer
     site, reproduce *)
  let crash = Workloads.Coreutils.crash_scenario paste in
  let prog = crash.prog in
  let plan =
    Instrument.Plan.make
      ~nbranches:(Minic.Program.nbranches prog)
      Instrument.Methods.All_branches
  in
  let _, rep = Bugrepro.Pipeline.field_run_report ~plan crash in
  let wire = Instrument.Wire.serialize (Option.get rep) in
  match Instrument.Wire.deserialize wire with
  | Error e -> Alcotest.fail e
  | Ok rep ->
      let result, _ =
        Bugrepro.Pipeline.reproduce
          ~budget:{ Concolic.Engine.max_runs = 2000; max_time_s = 15.0 }
          ~prog ~plan rep
      in
      check_bool "reproduced from wire form" true (Replay.Guided.reproduced result)

let () =
  Alcotest.run "instrument"
    [
      ( "plan",
        [
          Alcotest.test_case "dynamic" `Quick test_plan_dynamic;
          Alcotest.test_case "static" `Quick test_plan_static;
          Alcotest.test_case "dynamic+static combination" `Quick test_plan_combined;
          Alcotest.test_case "all/none" `Quick test_plan_all_and_none;
          Alcotest.test_case "missing labels rejected" `Quick
            test_plan_missing_labels_rejected;
        ] );
      ( "branch_log",
        [
          Alcotest.test_case "roundtrip" `Quick test_branch_log_roundtrip;
          Alcotest.test_case "reader exhaustion" `Quick
            test_branch_log_reader_exhaustion;
          Alcotest.test_case "flushes" `Quick test_branch_log_flushes;
          Alcotest.test_case "size" `Quick test_branch_log_size;
          QCheck_alcotest.to_alcotest prop_branch_log_roundtrip;
        ] );
      ( "syscall_log",
        [
          Alcotest.test_case "roundtrip" `Quick test_syscall_log_roundtrip;
          Alcotest.test_case "kind mismatch" `Quick test_syscall_log_kind_mismatch;
        ] );
      ( "wire",
        [
          Alcotest.test_case "roundtrip" `Quick test_wire_roundtrip;
          Alcotest.test_case "roundtrip with schedule" `Quick test_wire_roundtrip_mt;
          Alcotest.test_case "rejects garbage" `Quick test_wire_rejects_garbage;
          Alcotest.test_case "rejects bit overrun" `Quick test_wire_rejects_bit_overrun;
          Alcotest.test_case "version header" `Quick test_wire_version_header;
          Alcotest.test_case "version roundtrip" `Quick test_wire_version_roundtrip;
          Alcotest.test_case "accepts v1" `Quick test_wire_accepts_v1;
          Alcotest.test_case "unknown version distinct" `Quick
            test_wire_unknown_version_distinct;
          Alcotest.test_case "replay from wire form" `Quick
            test_wire_replay_from_deserialized;
          QCheck_alcotest.to_alcotest prop_wire_roundtrip_synthetic;
        ] );
      ( "field_run",
        [
          Alcotest.test_case "bit accounting" `Quick test_field_run_counts_bits;
          Alcotest.test_case "cost ordering" `Quick test_field_run_cost_ordering;
          Alcotest.test_case "report only on crash" `Quick
            test_field_run_report_only_on_crash;
          Alcotest.test_case "report carries shape, not content" `Quick
            test_report_has_no_input_content;
          Alcotest.test_case "syscall logging marginal" `Slow
            test_syscall_logging_marginal_overhead;
          Alcotest.test_case "deterministic runs" `Quick
            test_deterministic_field_runs;
        ] );
    ]
