(* Tests for guided replay (§3): the four branch cases, log truncation,
   corrupted logs, syscall replay and the end-to-end reproduce loop on
   small programs. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let compile src = Workloads.Runtime_lib.link ~name:"t" src

let budget = { Concolic.Engine.max_runs = 400; max_time_s = 15.0 }

(* full pipeline on a small program: returns (plan, report, prog) *)
let record ?(meth = Instrument.Methods.All_branches) ?(args = []) ?world src =
  let prog = compile src in
  let sc =
    Concolic.Scenario.make ~name:"t" ~args
      ?world:(Option.map Fun.id world)
      prog
  in
  let analysis =
    Bugrepro.Pipeline.analyze
      ~dynamic_budget:{ Concolic.Engine.max_runs = 40; max_time_s = 5.0 }
      ~test_scenario:sc prog
  in
  let plan = Bugrepro.Pipeline.plan analysis meth in
  let _, report = Bugrepro.Pipeline.field_run_report ~plan sc in
  (prog, plan, report)

let reproduce ?(budget = budget) prog plan report =
  Bugrepro.Pipeline.reproduce ~budget ~prog ~plan report

(* ------------------------------------------------------------------ *)

let magic_src =
  "int main() {\n\
  \  int b[8];\n\
  \  arg(0, b, 8);\n\
  \  if (b[0] == 'B') {\n\
  \    if (b[1] == 'U') {\n\
  \      if (b[2] == 'G') { crash(); }\n\
  \    }\n\
  \  }\n\
  \  return 0;\n\
   }"

let test_reproduce_magic_word () =
  let prog, plan, report = record ~args:[ "BUG" ] magic_src in
  match report with
  | None -> Alcotest.fail "field run did not crash"
  | Some report -> (
      let result, _ = reproduce prog plan report in
      match result with
      | Replay.Guided.Reproduced r ->
          (* the synthesised input must spell out the magic word *)
          let vars = Solver.Symvars.create () in
          let byte i =
            let id = Concolic.Names.arg_var vars ~arg:0 ~pos:i in
            Solver.Model.find_opt id r.model
          in
          ignore byte;
          check_bool "crash site matches" true
            (r.crash.in_func = "main")
      | Replay.Guided.Not_reproduced _ -> Alcotest.fail "not reproduced")

let test_reproduce_under_each_method () =
  List.iter
    (fun meth ->
      let prog, plan, report = record ~meth ~args:[ "BUG" ] magic_src in
      match report with
      | None -> Alcotest.fail "no crash"
      | Some report ->
          let result, _ = reproduce prog plan report in
          check_bool
            (Printf.sprintf "reproduced under %s" (Instrument.Methods.to_string meth))
            true
            (Replay.Guided.reproduced result))
    Instrument.Methods.instrumented

let test_reproduce_without_any_instrumentation () =
  (* plan = none: pure symbolic search, still finds this shallow bug *)
  let prog, _, _ = record ~args:[ "BUG" ] magic_src in
  let none_plan =
    Instrument.Plan.make ~nbranches:(Minic.Program.nbranches prog)
      Instrument.Methods.No_instrumentation
  in
  let sc = Concolic.Scenario.make ~name:"t" ~args:[ "BUG" ] prog in
  let _, report = Bugrepro.Pipeline.field_run_report ~plan:none_plan sc in
  match report with
  | None -> Alcotest.fail "no crash"
  | Some report ->
      let result, stats = reproduce prog none_plan report in
      check_bool "reproduced with empty log" true (Replay.Guided.reproduced result);
      check_bool "explored symbolic branches freely" true (stats.cases.case1 > 0)

let test_case2a_dominates_with_full_log () =
  let prog, plan, report = record ~args:[ "BUG" ] magic_src in
  let report = Option.get report in
  let _, stats = reproduce prog plan report in
  check_bool "2a happened" true (stats.cases.case2a > 0);
  check_int "no unlogged symbolic branches" 0 stats.cases.case1

let test_truncated_log_still_reproduces () =
  (* drop the last bits of the log: the engine treats missing bits as
     unlogged and searches *)
  let prog, plan, report = record ~args:[ "BUG" ] magic_src in
  let report = Option.get report in
  let bits = Instrument.Branch_log.to_bits (Instrument.Report.raw_log report) in
  let keep = List.filteri (fun i _ -> i < List.length bits / 2) bits in
  let truncated =
    {
      report with
      branch_log = Instrument.Report.Raw (Instrument.Branch_log.of_bits keep);
    }
  in
  let result, _ = reproduce prog plan truncated in
  check_bool "reproduced despite truncation" true (Replay.Guided.reproduced result)

let test_corrupted_log_does_not_crash_engine () =
  let prog, plan, report = record ~args:[ "BUG" ] magic_src in
  let report = Option.get report in
  let flipped =
    List.map not (Instrument.Branch_log.to_bits (Instrument.Report.raw_log report))
  in
  let bad =
    {
      report with
      branch_log = Instrument.Report.Raw (Instrument.Branch_log.of_bits flipped);
    }
  in
  (* engine must terminate cleanly either way *)
  let result, _ =
    reproduce ~budget:{ Concolic.Engine.max_runs = 50; max_time_s = 5.0 } prog plan
      bad
  in
  ignore (Replay.Guided.reproduced result)

let test_wrong_plan_fails_cleanly () =
  (* replay with a plan disjoint from the recording plan must not raise *)
  let prog, _, report = record ~args:[ "BUG" ] magic_src in
  let report = Option.get report in
  let wrong =
    Instrument.Plan.make ~nbranches:(Minic.Program.nbranches prog)
      Instrument.Methods.No_instrumentation
  in
  let result, _ =
    reproduce ~budget:{ Concolic.Engine.max_runs = 100; max_time_s = 5.0 } prog
      wrong report
  in
  ignore (Replay.Guided.reproduced result)

(* ------------------------------------------------------------------ *)
(* Replay with file input and syscall logs *)

let file_src =
  "int main() {\n\
  \  int b[16];\n\
  \  int fd = open(\"data\", 0);\n\
  \  int n = read(fd, b, 16);\n\
  \  if (n > 2) {\n\
  \    if (b[0] == 'X') { crash(); }\n\
  \  }\n\
  \  return 0;\n\
   }"

let file_world contents =
  { Osmodel.World.default_config with files = [ ("data", contents) ] }

let test_reproduce_file_input_with_syscall_log () =
  let prog, plan, report =
    record ~world:(file_world "Xyz") file_src
  in
  let report = Option.get report in
  check_bool "syscall log present" true (report.syscall_log <> None);
  let result, _ = reproduce prog plan report in
  check_bool "reproduced" true (Replay.Guided.reproduced result)

let test_reproduce_file_input_without_syscall_log () =
  (* without logged read counts, the count becomes a symbolic model
     variable; the engine must still find the crash *)
  let prog = compile file_src in
  let sc =
    Concolic.Scenario.make ~name:"t" ~world:(file_world "Xyz") prog
  in
  let plan =
    Instrument.Plan.make ~nbranches:(Minic.Program.nbranches prog)
      Instrument.Methods.All_branches
  in
  let _, report = Bugrepro.Pipeline.field_run_report ~log_syscalls:false ~plan sc in
  let report = Option.get report in
  check_bool "no syscall log" true (report.syscall_log = None);
  let result, _ = reproduce prog plan report in
  check_bool "reproduced via symbolic syscall models" true
    (Replay.Guided.reproduced result)

(* ------------------------------------------------------------------ *)
(* Property: for fully-logged crashing runs on random magic words, replay
   reproduces the crash. *)

let prop_full_log_reproduces =
  QCheck.Test.make ~count:8 ~name:"full log => reproduced (random magic)"
    QCheck.(make Gen.(string_size ~gen:(char_range 'A' 'Z') (return 3)))
    (fun magic ->
      let src =
        Printf.sprintf
          "int main() { int b[8]; arg(0, b, 8);\n\
           if (b[0] == '%c') { if (b[1] == '%c') { if (b[2] == '%c') { crash(); } } }\n\
           return 0; }"
          magic.[0] magic.[1] magic.[2]
      in
      let prog = compile src in
      let sc = Concolic.Scenario.make ~name:"t" ~args:[ magic ] prog in
      let plan =
        Instrument.Plan.make ~nbranches:(Minic.Program.nbranches prog)
          Instrument.Methods.All_branches
      in
      let _, report = Bugrepro.Pipeline.field_run_report ~plan sc in
      match report with
      | None -> false
      | Some report ->
          let result, _ = Bugrepro.Pipeline.reproduce ~budget ~prog ~plan report in
          Replay.Guided.reproduced result)

(* ------------------------------------------------------------------ *)
(* Parallel replay: whatever the worker count or cache setting, the
   verdict (reproduced at the recorded site) must match the sequential
   engine's, and the model shipped back must actually crash. *)

let test_reproduce_parallel_matches_sequential () =
  let prog, plan, report = record ~args:[ "BUG" ] magic_src in
  match report with
  | None -> Alcotest.fail "field run did not crash"
  | Some report ->
      let verdicts =
        List.map
          (fun (jobs, cache) ->
            let result, stats =
              Bugrepro.Pipeline.reproduce ~budget ~jobs ~solver_cache:cache
                ~prog ~plan report
            in
            (match cache, stats.cache with
            | true, None -> Alcotest.fail "cache stats missing"
            | false, Some _ -> Alcotest.fail "cache stats despite --no-cache"
            | _ -> ());
            Replay.Guided.reproduced result)
          [ (1, false); (1, true); (4, true); (4, false) ]
      in
      check_bool "all configurations reproduce" true
        (List.for_all Fun.id verdicts)

let test_reproduce_parallel_no_log_search () =
  (* the widest frontier: no branch log at all, drained by 4 workers with
     the memoizing cache on *)
  let prog, _, _ = record ~args:[ "BUG" ] magic_src in
  let none =
    Instrument.Plan.make
      ~nbranches:(Minic.Program.nbranches prog)
      Instrument.Methods.No_instrumentation
  in
  let sc = Concolic.Scenario.make ~name:"t" ~args:[ "BUG" ] prog in
  let _, report = Bugrepro.Pipeline.field_run_report ~plan:none sc in
  match report with
  | None -> Alcotest.fail "field run did not crash"
  | Some report ->
      let result, stats =
        Bugrepro.Pipeline.reproduce ~budget ~jobs:4 ~prog ~plan:none report
      in
      check_bool "reproduced by parallel search" true
        (Replay.Guided.reproduced result);
      check_bool "cache was consulted" true
        (match stats.cache with
        | Some s -> s.hits + s.misses > 0
        | None -> false)

let test_parallel_case_totals_match_sequential () =
  (* point the report at a site no input reaches: every worker count must
     drain the same frontier, stop cleanly, and — because the §3.1 case
     counters are accumulated with atomic adds — report identical totals *)
  let prog, _, report = record ~args:[ "BUG" ] magic_src in
  let report = Option.get report in
  let none =
    Instrument.Plan.make ~nbranches:(Minic.Program.nbranches prog)
      Instrument.Methods.No_instrumentation
  in
  let unreachable =
    { report.Instrument.Report.crash with
      Interp.Crash.loc = Minic.Loc.make ~file:"nowhere.mc" ~line:999 ~col:1 }
  in
  let report = { report with Instrument.Report.crash = unreachable } in
  let run jobs =
    let result, stats =
      Replay.Guided.reproduce ~budget ~jobs ~max_attempts:1 ~prog ~plan:none
        report
    in
    (match result with
    | Replay.Guided.Not_reproduced { timed_out; _ } ->
        check_bool
          (Printf.sprintf "jobs=%d exhausted the frontier cleanly" jobs)
          false timed_out
    | Replay.Guided.Reproduced _ ->
        Alcotest.fail "reproduced an unreachable site");
    stats.Replay.Guided.cases
  in
  let tup (c : Replay.Guided.case_stats) =
    (c.case1, c.case2a, c.case2b, c.case3a, c.case3b, c.case4, c.log_exhausted)
  in
  let seq = run 1 and par = run 4 in
  check_bool "the frontier was actually explored" true (seq.case1 > 0);
  check_bool "case totals match across 4 domains" true (tup seq = tup par)

let test_parallel_engine_counters_reconcile () =
  (* the Atomic frontier accumulators must agree with the totals whatever
     the worker count or frontier discipline *)
  let prog, _, report = record ~args:[ "BUG" ] magic_src in
  let report = Option.get report in
  let none =
    Instrument.Plan.make ~nbranches:(Minic.Program.nbranches prog)
      Instrument.Methods.No_instrumentation
  in
  List.iter
    (fun (jobs, steal) ->
      let _, stats =
        Replay.Guided.reproduce ~budget ~jobs ~steal ~max_attempts:1 ~prog
          ~plan:none report
      in
      let e = stats.Replay.Guided.engine in
      let tag = Printf.sprintf "jobs=%d steal=%b" jobs steal in
      check_bool (tag ^ " worker_runs length") true
        (Array.length e.worker_runs = jobs);
      check_bool (tag ^ " worker_runs sums to runs") true
        (Array.fold_left ( + ) 0 e.worker_runs = e.runs);
      check_bool (tag ^ " pending peak recorded") true (e.pending_peak >= 1);
      if jobs = 1 || not steal then
        check_bool (tag ^ " no steals possible") true (e.steals = 0))
    [ (1, true); (4, true); (4, false) ]

let () =
  Alcotest.run "replay"
    [
      ( "guided",
        [
          Alcotest.test_case "magic word" `Quick test_reproduce_magic_word;
          Alcotest.test_case "each method" `Quick test_reproduce_under_each_method;
          Alcotest.test_case "no instrumentation" `Quick
            test_reproduce_without_any_instrumentation;
          Alcotest.test_case "case 2a with full log" `Quick
            test_case2a_dominates_with_full_log;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "truncated log" `Quick test_truncated_log_still_reproduces;
          Alcotest.test_case "corrupted log" `Quick
            test_corrupted_log_does_not_crash_engine;
          Alcotest.test_case "wrong plan" `Quick test_wrong_plan_fails_cleanly;
        ] );
      ( "syscalls",
        [
          Alcotest.test_case "with syscall log" `Quick
            test_reproduce_file_input_with_syscall_log;
          Alcotest.test_case "without syscall log" `Quick
            test_reproduce_file_input_without_syscall_log;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "matches sequential verdict" `Quick
            test_reproduce_parallel_matches_sequential;
          Alcotest.test_case "no-log search with 4 workers" `Quick
            test_reproduce_parallel_no_log_search;
          Alcotest.test_case "case totals match sequential" `Quick
            test_parallel_case_totals_match_sequential;
          Alcotest.test_case "engine counters reconcile" `Quick
            test_parallel_engine_counters_reconcile;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_full_log_reproduces ] );
    ]
