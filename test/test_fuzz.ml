(* Tests for the differential fuzzing subsystem: the generator's frontend
   round-trip property (500 seeds), wire-format fuzz negatives (truncation
   and byte corruption must fail closed, never raise), PRNG determinism of
   the split/derive stream, the shrinking minimizer's reduction guarantee,
   corpus save/load, the checked-in corpus replays, and the minimized
   case3b witness (a concretized-store contradiction that guided replay
   must backtrack through and still reproduce). *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Generator: the frontend round trip holds on every generated program.
   [Gen.elaborate] is the property — print, re-parse, [Astcmp]-compare,
   link — so a clean elaboration of 500 distinct seeds is 500 instances
   of the print/parse identity plus well-typedness by construction. *)

let test_roundtrip_500 () =
  let rng = Osmodel.Rng.create 7 in
  for index = 0 to 499 do
    let seed = Osmodel.Rng.derive rng ~index in
    let g = Fuzz.Gen.generate ~seed () in
    match Fuzz.Gen.elaborate g with
    | Ok case ->
        check_bool
          (Printf.sprintf "seed %d: parsed AST equals generated AST" seed)
          true
          (Minic.Astcmp.equal_unit g.Fuzz.Gen.ast case.Fuzz.Gen.parsed)
    | Error e ->
        Alcotest.failf "seed %d: %s\n%s" seed
          (Fuzz.Gen.error_to_string e)
          g.Fuzz.Gen.src
  done

let test_generate_deterministic () =
  let g1 = Fuzz.Gen.generate ~seed:12345 () in
  let g2 = Fuzz.Gen.generate ~seed:12345 () in
  check_bool "same seed, same source" true (String.equal g1.src g2.src);
  check_bool "same seed, same args" true (g1.args = g2.args);
  check_bool "same seed, same files" true (g1.files = g2.files)

(* ------------------------------------------------------------------ *)
(* PRNG hygiene: one splittable stream, deterministic derivation *)

let test_rng_derive_deterministic () =
  let a = Osmodel.Rng.create 99 and b = Osmodel.Rng.create 99 in
  for index = 0 to 31 do
    check_int
      (Printf.sprintf "derive %d" index)
      (Osmodel.Rng.derive a ~index)
      (Osmodel.Rng.derive b ~index)
  done;
  (* derivation is positional, not stateful: order doesn't matter *)
  check_int "derive 3 after 31" (Osmodel.Rng.derive a ~index:3)
    (Osmodel.Rng.derive b ~index:3)

let test_rng_split_independent () =
  let parent = Osmodel.Rng.create 5 in
  let c1 = Osmodel.Rng.split parent in
  let c2 = Osmodel.Rng.split parent in
  let draw n rng = List.init n (fun _ -> Osmodel.Rng.int rng 1_000_000) in
  check_bool "sibling streams differ" false (draw 16 c1 = draw 16 c2)

(* ------------------------------------------------------------------ *)
(* Wire fuzz negatives: a report that crashed the field run, serialized,
   then truncated at every byte and corrupted at every byte — decoding
   must return [Error] or a decoded report, never raise. *)

let crashing_report () =
  (* first seed whose field run crashes under full instrumentation *)
  let rng = Osmodel.Rng.create 11 in
  let rec find index =
    if index > 50 then Alcotest.fail "no crashing case in 50 seeds"
    else
      let seed = Osmodel.Rng.derive rng ~index in
      match Fuzz.Gen.elaborate (Fuzz.Gen.generate ~seed ()) with
      | Error _ -> find (index + 1)
      | Ok case -> (
          let plan =
            Instrument.Plan.make
              ~nbranches:(Minic.Program.nbranches case.prog)
              Instrument.Methods.All_branches
          in
          let sc = Fuzz.Gen.scenario case in
          let _run, report =
            Bugrepro.Pipeline.Run.field_run_report
              Fuzz.Oracle.default_cfg.Fuzz.Oracle.config ~plan sc
          in
          match report with None -> find (index + 1) | Some r -> r)
  in
  find 0

let test_wire_truncation_fails_closed () =
  let wire = Instrument.Wire.serialize (crashing_report ()) in
  let n = String.length wire in
  for len = 0 to n - 1 do
    match Instrument.Wire.deserialize_v (String.sub wire 0 len) with
    | Ok _ ->
        (* a prefix that still decodes must at least keep the header *)
        check_bool "decoded prefix keeps magic" true
          (len >= String.length Instrument.Wire.magic)
    | Error (Instrument.Wire.Malformed _ | Instrument.Wire.Unknown_version _)
      ->
        ()
    | exception e ->
        Alcotest.failf "truncation at %d raised %s" len (Printexc.to_string e)
  done

let test_wire_corruption_fails_closed () =
  let wire = Instrument.Wire.serialize (crashing_report ()) in
  let n = String.length wire in
  for pos = 0 to n - 1 do
    let b = Bytes.of_string wire in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x2a));
    match Instrument.Wire.deserialize_v (Bytes.to_string b) with
    | Ok _ | Error _ -> ()
    | exception e ->
        Alcotest.failf "corruption at %d raised %s" pos (Printexc.to_string e)
  done

(* v3 suppression-line negatives: damage to the reconstruction table must
   fail closed in BOTH readers — a salvaged log without its table (or with
   a misread one) would replay with wrong bit alignment. *)

let suppressed_report () =
  let prog =
    Minic.Program.of_sources
      ~app:
        "int main() {\n\
        \  int buf[8];\n\
        \  int x;\n\
        \  arg(0, buf, 8);\n\
        \  x = buf[0];\n\
        \  if (x > 0) { print_int(1); }\n\
        \  if (x > 0) { print_int(2); }\n\
        \  crash();\n\
        \  return 0;\n\
         }"
      ~libs:[] ()
  in
  let instrumented = Array.make (Minic.Program.nbranches prog) true in
  let sup = Staticanalysis.Suppression.analyze ~instrumented prog in
  let plan =
    Instrument.Plan.with_suppression
      (Instrument.Plan.make
         ~nbranches:(Minic.Program.nbranches prog)
         Instrument.Methods.All_branches)
      sup
  in
  let sc =
    Concolic.Scenario.make ~name:"wire-sup" ~args:[ "q" ]
      ~world:Osmodel.World.default_config prog
  in
  let _run, report = Bugrepro.Pipeline.field_run_report ~plan sc in
  match report with
  | Some r when r.Instrument.Report.suppression <> [] -> r
  | Some _ -> Alcotest.fail "report carries no suppression table"
  | None -> Alcotest.fail "field run did not crash"

let test_wire_suppression_truncation_fails_closed () =
  let wire = Instrument.Wire.serialize (suppressed_report ()) in
  let key = "suppression: " in
  let pos = Str.search_forward (Str.regexp_string key) wire 0 in
  let line_end = String.index_from wire pos '\n' in
  for cut = pos + 1 to line_end - 1 do
    let prefix = String.sub wire 0 cut in
    (match Instrument.Wire.deserialize_v prefix with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "strict reader accepted a cut at %d" cut);
    match Instrument.Wire.deserialize_salvage prefix with
    | Error _ -> ()
    | Ok (r, _) ->
        (* before the key is complete the line reads as generic damage;
           fail-closed then means no table AND no log bits (the layout
           puts every log line after the table) *)
        check_bool "salvaged without table has no table" true
          (r.Instrument.Report.suppression = []);
        check_int "salvaged without table has no bits" 0
          (Instrument.Report.nbits r);
        if cut >= pos + String.length key then
          Alcotest.failf "salvage kept a report with a torn table (cut %d)" cut
  done;
  (* a tear exactly at the newline leaves a complete, count-consistent
     table: salvage may keep it, but then with zero log bits *)
  match Instrument.Wire.deserialize_salvage (String.sub wire 0 line_end) with
  | Error _ -> ()
  | Ok (r, _) ->
      check_bool "boundary tear keeps the whole table" true
        (r.Instrument.Report.suppression <> []);
      check_int "boundary tear ships no bits" 0 (Instrument.Report.nbits r)

let tamper wire pos c =
  let b = Bytes.of_string wire in
  Bytes.set b pos c;
  Bytes.to_string b

let test_wire_suppression_unknown_rule_fails_closed () =
  let wire = Instrument.Wire.serialize (suppressed_report ()) in
  let pos = Str.search_forward (Str.regexp_string "suppression: ") wire 0 in
  (* first rule code sits right after the first '=' of the table *)
  let eq = String.index_from wire pos '=' in
  let bad = tamper wire (eq + 1) 'z' in
  (match Instrument.Wire.deserialize_v bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "strict reader accepted an unknown rule code");
  (match Instrument.Wire.deserialize_salvage bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "salvage accepted an unknown rule code");
  (* entry-count mismatch is equally fatal *)
  let count_pos = pos + String.length "suppression: " in
  let digit = wire.[count_pos] in
  let bumped = tamper wire count_pos (if digit = '7' then '8' else '7') in
  (match Instrument.Wire.deserialize_v bumped with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "strict reader accepted a count mismatch");
  match Instrument.Wire.deserialize_salvage bumped with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "salvage accepted a count mismatch"

let test_wire_version_negative () =
  let wire = Instrument.Wire.serialize (crashing_report ()) in
  let bumped =
    Instrument.Wire.magic_prefix
    ^ string_of_int (Instrument.Wire.version + 1)
    ^ String.sub wire
        (String.length Instrument.Wire.magic)
        (String.length wire - String.length Instrument.Wire.magic)
  in
  match Instrument.Wire.deserialize_v bumped with
  | Error (Instrument.Wire.Unknown_version v) ->
      check_int "reports the alien version" (Instrument.Wire.version + 1) v
  | Ok _ -> Alcotest.fail "future version accepted"
  | Error (Instrument.Wire.Malformed m) ->
      Alcotest.failf "future version misreported as Malformed: %s" m

(* ------------------------------------------------------------------ *)
(* Shrinker: on a crashing generated program, minimizing under "still
   crashes with the same kind" must reduce the AST to <= 25% of its
   original node count (the acceptance bound of the subsystem). *)

let crash_kind (case : Fuzz.Gen.case) : string option =
  let plan =
    Instrument.Plan.make
      ~nbranches:(Minic.Program.nbranches case.prog)
      Instrument.Methods.No_instrumentation
  in
  let sc = Fuzz.Gen.scenario case in
  let run, _ =
    Bugrepro.Pipeline.Run.field_run_report
      Fuzz.Oracle.default_cfg.Fuzz.Oracle.config ~plan sc
  in
  match run.Instrument.Field_run.outcome with
  | Interp.Crash.Crash c -> Some (Interp.Crash.kind_to_string c.kind)
  | _ -> None

let test_shrink_to_quarter () =
  let rng = Osmodel.Rng.create 21 in
  let rec find index =
    if index > 50 then Alcotest.fail "no crashing case in 50 seeds"
    else
      let seed = Osmodel.Rng.derive rng ~index in
      let g = Fuzz.Gen.generate ~seed () in
      match Fuzz.Gen.elaborate g with
      | Error _ -> find (index + 1)
      | Ok case -> (
          match crash_kind case with
          | None -> find (index + 1)
          | Some kind -> (g, kind))
  in
  let g, kind = find 0 in
  let pred g' =
    match Fuzz.Gen.elaborate g' with
    | Error _ -> false
    | Ok case' -> crash_kind case' = Some kind
  in
  let original = Minic.Astcmp.size_unit g.Fuzz.Gen.ast in
  let shrunk, steps = Fuzz.Shrink.minimize ~pred g in
  let final = Minic.Astcmp.size_unit shrunk.Fuzz.Gen.ast in
  check_bool "took at least one step" true (steps > 0);
  check_bool "shrunk program still fails" true (pred shrunk);
  check_bool
    (Printf.sprintf "reduced %d -> %d nodes (<= 25%%)" original final)
    true
    (final * 4 <= original)

(* ------------------------------------------------------------------ *)
(* Corpus: save/load identity on directives and source *)

let test_corpus_save_load () =
  let g = Fuzz.Gen.generate ~seed:424242 () in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "fuzz-corpus-test" in
  let path = Fuzz.Corpus.save ~dir g in
  match Fuzz.Corpus.load path with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok g' ->
      check_int "seed survives" g.seed g'.Fuzz.Gen.seed;
      check_int "world seed survives" g.world_seed g'.Fuzz.Gen.world_seed;
      check_bool "args survive" true (g.args = g'.Fuzz.Gen.args);
      check_bool "files survive" true (g.files = g'.Fuzz.Gen.files);
      check_bool "AST survives the comment prefix" true
        (Minic.Astcmp.equal_unit g.ast g'.Fuzz.Gen.ast);
      (match Fuzz.Gen.elaborate g' with
      | Ok _ -> ()
      | Error e ->
          Alcotest.failf "loaded case does not elaborate: %s"
            (Fuzz.Gen.error_to_string e));
      Sys.remove path

(* ------------------------------------------------------------------ *)
(* Campaign smoke: a small driver run ends green *)

let test_driver_smoke () =
  let opts = { Fuzz.Driver.default_opts with count = 12 } in
  let s = Fuzz.Driver.run opts in
  check_int "all cases ran" 12 s.Fuzz.Driver.cases;
  check_int "no generator errors" 0 s.Fuzz.Driver.gen_errors;
  check_bool "at least one crashing case" true (s.Fuzz.Driver.crashed_cases > 0);
  check_bool "no violations" true (Fuzz.Driver.ok s)

(* ------------------------------------------------------------------ *)
(* Checked-in corpus: every repro file replays through all oracles *)

(* [dune runtest] runs with cwd [_build/default/test] (where the [deps]
   glob places the corpus); [dune exec test/test_fuzz.exe] runs from the
   project root. *)
let corpus_path rel =
  if Sys.file_exists rel then rel else Filename.concat "test" rel

let replay_corpus rel () =
  let dir = corpus_path rel in
  if not (Sys.file_exists dir) then
    Alcotest.skip ()
  else
    let opts = { Fuzz.Driver.default_opts with thorough = true } in
    let s = Fuzz.Driver.replay_dir opts dir in
    check_bool "corpus not empty" true (s.Fuzz.Driver.cases > 0);
    if not (Fuzz.Driver.ok s) then
      Alcotest.failf "corpus violations:\n%s" (Fuzz.Driver.summary_to_string s)

(* The minimized witness for the one violation the first fuzz campaign
   found (seed 3953598749136852661, shrunk 233 -> 56 nodes): a store
   through a concretized symbolic index ([fbuf[(t0 & 3)] = 118]) turns a
   branch that was symbolic in the field run ([fbuf[2] == 53]) concrete in
   a replay run, contradicting its logged bit even under [All_branches].
   Guided replay must treat that dead end as backtrackable (§3.1 case 3b)
   and still reproduce the crash.  This test locks both halves: the
   contradiction fires, and reproduction succeeds anyway. *)
let test_known_case3b_witness () =
  let path = corpus_path "corpus/known/case3b-concretized-store.mc" in
  match Fuzz.Corpus.load path with
  | Error e -> Alcotest.failf "cannot load witness: %s" e
  | Ok g -> (
      match Fuzz.Gen.elaborate g with
      | Error e ->
          Alcotest.failf "witness does not elaborate: %s"
            (Fuzz.Gen.error_to_string e)
      | Ok case -> (
          let cfg = Fuzz.Oracle.default_cfg.Fuzz.Oracle.config in
          let plan =
            Instrument.Plan.make
              ~nbranches:(Minic.Program.nbranches case.prog)
              Instrument.Methods.All_branches
          in
          let sc = Fuzz.Gen.scenario case in
          let _run, report = Bugrepro.Pipeline.Run.field_run_report cfg ~plan sc in
          match report with
          | None -> Alcotest.fail "witness no longer crashes in the field run"
          | Some report ->
              let result, stats =
                Bugrepro.Pipeline.Run.reproduce cfg ~prog:case.prog ~plan report
              in
              check_bool "hits a concrete-log contradiction" true
                (stats.Replay.Guided.cases.case3b > 0);
              check_bool "no uninstrumented symbolic branch" true
                (stats.Replay.Guided.cases.case1 = 0);
              check_bool "still reproduced" true
                (Replay.Guided.reproduced result)))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "fuzz"
    [
      ( "gen",
        [
          Alcotest.test_case "500-seed frontend round trip" `Quick
            test_roundtrip_500;
          Alcotest.test_case "generation is deterministic" `Quick
            test_generate_deterministic;
        ] );
      ( "rng",
        [
          Alcotest.test_case "derive is positional and deterministic" `Quick
            test_rng_derive_deterministic;
          Alcotest.test_case "split streams are independent" `Quick
            test_rng_split_independent;
        ] );
      ( "wire-negative",
        [
          Alcotest.test_case "truncation fails closed" `Quick
            test_wire_truncation_fails_closed;
          Alcotest.test_case "byte corruption fails closed" `Quick
            test_wire_corruption_fails_closed;
          Alcotest.test_case "suppression truncation fails closed" `Quick
            test_wire_suppression_truncation_fails_closed;
          Alcotest.test_case "unknown suppression rule fails closed" `Quick
            test_wire_suppression_unknown_rule_fails_closed;
          Alcotest.test_case "future version rejected" `Quick
            test_wire_version_negative;
        ] );
      ( "shrink",
        [ Alcotest.test_case "reduces to <= 25%" `Quick test_shrink_to_quarter ] );
      ( "corpus",
        [
          Alcotest.test_case "save/load identity" `Quick test_corpus_save_load;
          Alcotest.test_case "seed corpus replays green" `Slow
            (replay_corpus "corpus");
          Alcotest.test_case "known case3b witness backtracks and reproduces"
            `Quick test_known_case3b_witness;
        ] );
      ( "driver",
        [ Alcotest.test_case "12-case campaign smoke" `Slow test_driver_smoke ] );
    ]
