(* Tests for the telemetry layer: span nesting, counter monotonicity, the
   disabled-handle/null-sink no-op guarantees, JSONL round trips, the trace
   validator's negative cases, the unified counter view, and the
   end-to-end acceptance trace of the demo pipeline (analyze -> plan ->
   field_run -> reproduce with the four §3.1 replay-case counters). *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let memory_handle () =
  let sink, events = Telemetry.Sink.memory () in
  (Telemetry.create ~sink (), events)

(* ------------------------------------------------------------------ *)
(* Spans *)

let test_span_nesting () =
  let tel, events = memory_handle () in
  let r =
    Telemetry.Span.with_ tel ~name:"outer" (fun _ ->
        Telemetry.Span.with_ tel ~name:"inner" (fun _ -> ())
        ; Telemetry.Span.with_ tel ~name:"inner2" (fun _ -> 41 + 1))
  in
  check_int "body result" 42 r;
  let roots = Telemetry.Trace.tree (events ()) in
  match roots with
  | [ outer ] ->
      check_string "root" "outer" outer.Telemetry.Trace.name;
      Alcotest.(check (list string))
        "children in start order" [ "inner"; "inner2" ]
        (List.map (fun n -> n.Telemetry.Trace.name) outer.children)
  | l -> Alcotest.failf "expected one root, got %d" (List.length l)

let test_span_end_attrs_and_exceptions () =
  let tel, events = memory_handle () in
  (try
     Telemetry.Span.with_ tel ~name:"boom" (fun sp ->
         Telemetry.Span.addi sp "k" 7;
         failwith "expected")
   with Failure _ -> ());
  match Telemetry.Trace.tree (events ()) with
  | [ n ] ->
      check_bool "end attr present" true
        (List.mem_assoc "k" n.Telemetry.Trace.end_attrs);
      (* a raising body still closes the span and marks the error *)
      check_bool "error attr present" true
        (List.mem_assoc "error" n.Telemetry.Trace.end_attrs)
  | _ -> Alcotest.fail "span not closed after exception"

let test_span_explicit_parent () =
  (* the cross-domain pattern: parent passed explicitly *)
  let tel, events = memory_handle () in
  Telemetry.Span.with_ tel ~name:"root" (fun root ->
      let d =
        Domain.spawn (fun () ->
            Telemetry.Span.with_ tel ~parent:root ~name:"worker" (fun _ -> ()))
      in
      Domain.join d);
  match Telemetry.Trace.tree (events ()) with
  | [ n ] ->
      Alcotest.(check (list string))
        "worker nested under root" [ "worker" ]
        (List.map (fun c -> c.Telemetry.Trace.name) n.children)
  | _ -> Alcotest.fail "expected single root"

(* ------------------------------------------------------------------ *)
(* Counters and histograms *)

let test_counter_monotonic () =
  let tel, _ = memory_handle () in
  let c = Telemetry.Metrics.counter tel "c" in
  Telemetry.Metrics.incr c;
  Telemetry.Metrics.incr ~by:4 c;
  Telemetry.Metrics.incr ~by:0 c;
  check_int "accumulated" 5 (Telemetry.Metrics.counter_value tel "c");
  (* counters are monotonic by contract: negative increments are bugs *)
  (match Telemetry.Metrics.incr ~by:(-1) c with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "negative increment accepted");
  check_int "unchanged after rejection" 5
    (Telemetry.Metrics.counter_value tel "c")

let test_counter_concurrent () =
  let tel, _ = memory_handle () in
  let c = Telemetry.Metrics.counter tel "par" in
  let ds =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 1000 do
              Telemetry.Metrics.incr c
            done))
  in
  List.iter Domain.join ds;
  check_int "atomic across domains" 4000
    (Telemetry.Metrics.counter_value tel "par")

let test_publish_emits_counters () =
  let tel, events = memory_handle () in
  Telemetry.Metrics.incr_named tel "a" ~by:3;
  Telemetry.Metrics.observe tel "h" 1.5;
  Telemetry.Metrics.publish tel;
  let evs = events () in
  let counters =
    List.filter_map
      (function Telemetry.Event.Counter { name; value; _ } -> Some (name, value) | _ -> None)
      evs
  in
  check_bool "counter published" true (List.mem ("a", 3) counters);
  let samples =
    List.filter_map
      (function Telemetry.Event.Sample { name; _ } -> Some name | _ -> None)
      evs
  in
  check_bool "hist summary published" true (List.mem "h.count" samples)

(* ------------------------------------------------------------------ *)
(* Disabled handle / null sink *)

let test_disabled_is_noop () =
  let tel = Telemetry.disabled in
  check_bool "disabled" false (Telemetry.enabled tel);
  let r =
    Telemetry.Span.with_ tel ~name:"x" (fun sp ->
        check_bool "noop span" true (Telemetry.Span.id sp = None);
        Telemetry.Span.addi sp "k" 1;
        Telemetry.Metrics.incr_named tel "c" ~by:10;
        Telemetry.Metrics.observe tel "h" 1.0;
        Telemetry.Metrics.sample tel "s" 2.0;
        Telemetry.Metrics.incr ~by:5 (Telemetry.Metrics.counter tel "c2");
        "ok")
  in
  check_string "body runs" "ok" r;
  check_int "no registry" 0 (Telemetry.Metrics.counter_value tel "c");
  Telemetry.Metrics.publish tel;
  Telemetry.flush tel

let test_null_sink_registry_still_counts () =
  (* a handle over the null sink emits nothing but still accumulates its
     registry (the pull model) *)
  let tel = Telemetry.create () in
  Telemetry.Metrics.incr_named tel "c" ~by:2;
  check_int "registry counts" 2 (Telemetry.Metrics.counter_value tel "c")

(* ------------------------------------------------------------------ *)
(* JSONL round trip and the validator *)

let to_jsonl evs =
  String.concat "" (List.map (fun e -> Telemetry.Event.to_json e ^ "\n") evs)

let test_jsonl_roundtrip () =
  let tel, events = memory_handle () in
  Telemetry.Span.with_ tel ~name:{|we"ird `name\|}
    ~attrs:
      [
        ("s", Telemetry.Event.Str "v\n\"x");
        ("i", Telemetry.Event.Int (-3));
        ("f", Telemetry.Event.Float 1.25);
        ("b", Telemetry.Event.Bool true);
      ]
    (fun _ -> Telemetry.Metrics.sample tel "depth" 3.5);
  Telemetry.Metrics.incr_named tel "n" ~by:7;
  Telemetry.Metrics.publish tel;
  let evs = events () in
  match Telemetry.Trace.of_jsonl (to_jsonl evs) with
  | Error e -> Alcotest.fail ("reparse failed: " ^ e)
  | Ok evs' ->
      check_int "event count" (List.length evs) (List.length evs');
      check_bool "events identical" true (evs = evs')

let test_validator_accepts_good_trace () =
  let tel, events = memory_handle () in
  Telemetry.Span.with_ tel ~name:"a" (fun _ ->
      Telemetry.Span.with_ tel ~name:"b" (fun _ -> ()));
  Telemetry.Span.with_ tel ~name:"c" (fun _ -> ());
  match Telemetry.Trace.validate (events ()) with
  | Ok s ->
      check_int "spans" 3 s.Telemetry.Trace.spans;
      check_int "roots" 2 s.Telemetry.Trace.roots
  | Error e -> Alcotest.fail e

let test_validator_negative_cases () =
  let open Telemetry.Event in
  let beg ?parent id name t = Span_begin { id; parent; name; t; attrs = [] } in
  let fin id name t = Span_end { id; name; t; attrs = [] } in
  let expect_invalid what evs =
    match Telemetry.Trace.validate evs with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "validator accepted %s" what
  in
  expect_invalid "unclosed span" [ beg 1 "a" 0.0 ];
  expect_invalid "end without begin" [ fin 1 "a" 0.0 ];
  expect_invalid "double begin"
    [ beg 1 "a" 0.0; fin 1 "a" 1.0; beg 1 "a" 2.0; fin 1 "a" 3.0 ];
  expect_invalid "double end" [ beg 1 "a" 0.0; fin 1 "a" 1.0; fin 1 "a" 2.0 ];
  expect_invalid "end before begin" [ beg 1 "a" 5.0; fin 1 "a" 1.0 ];
  expect_invalid "unresolved parent"
    [ beg ~parent:42 1 "a" 0.0; fin 1 "a" 1.0 ];
  expect_invalid "parent already closed"
    [ beg 1 "p" 0.0; fin 1 "p" 1.0; beg ~parent:1 2 "c" 2.0; fin 2 "c" 3.0 ]

(* ------------------------------------------------------------------ *)
(* Unified counter view *)

let test_counters_merge_union () =
  let a =
    Telemetry.Counters.make ~scope:"x" ~gauges:[ ("g", 1.0) ]
      [ ("n", 1); ("m", 2) ]
  in
  let b =
    Telemetry.Counters.make ~scope:"y" ~gauges:[ ("g", 3.0) ] [ ("n", 10) ]
  in
  let m = Telemetry.Counters.merge a b in
  check_int "pointwise sum" 11 (Option.get (Telemetry.Counters.find m "n"));
  check_int "union of names" 2 (Option.get (Telemetry.Counters.find m "m"));
  Alcotest.(check (float 0.0))
    "right-biased gauge" 3.0
    (Option.get (Telemetry.Counters.gauge m "g"));
  let u = Telemetry.Counters.union ~scope:"all" [ a; b ] in
  check_int "scope-prefixed" 1
    (Option.get (Telemetry.Counters.find u "x.n"));
  check_int "scope-prefixed 2" 10
    (Option.get (Telemetry.Counters.find u "y.n"))

let test_stats_conversions () =
  (* Engine.stats / Cache.snapshot / Guided.stats share one snapshot view *)
  let es =
    {
      Concolic.Engine.runs = 3; sat = 2; unsat = 1; unknown = 0;
      pending_peak = 5; elapsed_s = 0.25; timed_out = false; forks = 3;
      core_pruned = 0; solved_incremental = 0; solver_calls = 0; steals = 0;
      worker_runs = [| 3 |];
    }
  in
  let ec = Concolic.Engine.counters es in
  check_string "engine scope" "engine" ec.Telemetry.Counters.scope;
  check_int "runs" 3 (Option.get (Telemetry.Counters.find ec "runs"));
  let cs =
    { Solver.Cache.hits = 3; misses = 1; evictions = 0; stores = 1;
      uncacheable = 0 }
  in
  let cc = Solver.Cache.counters cs in
  check_string "cache scope" "solver.cache" cc.Telemetry.Counters.scope;
  check_int "hits" 3 (Option.get (Telemetry.Counters.find cc "hits"));
  Alcotest.(check (float 1e-9))
    "hit rate gauge" 0.75
    (Option.get (Telemetry.Counters.gauge cc "hit_rate"))

(* ------------------------------------------------------------------ *)
(* End-to-end: the demo pipeline's acceptance trace *)

let test_demo_pipeline_trace () =
  (* the ISSUE's acceptance criterion: the demo pipeline over --trace
     emits a well-formed span tree covering analyze, plan, field_run and
     reproduce, with the four §3.1 replay-case counters *)
  let path = Filename.temp_file "bugrepro-trace" ".jsonl" in
  let oc = open_out path in
  let tel = Telemetry.create ~sink:(Telemetry.Sink.jsonl oc) () in
  let e = Workloads.Coreutils.find "paste" in
  let prog = Lazy.force e.prog in
  let cfg =
    Bugrepro.Pipeline.Config.(
      default
      |> with_budget
           ~dynamic:{ Concolic.Engine.max_runs = 40; max_time_s = 10.0 }
           ~replay:{ Concolic.Engine.max_runs = 20_000; max_time_s = 20.0 }
      |> with_telemetry tel)
  in
  let analysis =
    Bugrepro.Pipeline.Run.analyze cfg
      ~test_scenario:(Workloads.Coreutils.analysis_scenario e)
      prog
  in
  let plan =
    Bugrepro.Pipeline.Run.plan cfg analysis Instrument.Methods.Dynamic_static
  in
  let crash_sc = Workloads.Coreutils.crash_scenario e in
  let _, report = Bugrepro.Pipeline.Run.field_run_report cfg ~plan crash_sc in
  let report = Option.get report in
  let result, stats = Bugrepro.Pipeline.Run.reproduce cfg ~prog ~plan report in
  check_bool "bug reproduced" true (Replay.Guided.reproduced result);
  Telemetry.Metrics.publish tel;
  Telemetry.flush tel;
  close_out oc;
  (* the artifact passes the CI validator *)
  (match Telemetry.Trace.validate_file path with
  | Ok s -> check_bool "has spans" true (s.Telemetry.Trace.spans >= 4)
  | Error e -> Alcotest.failf "trace invalid: %s" e);
  let events =
    match Telemetry.Trace.of_jsonl (In_channel.with_open_text path In_channel.input_all) with
    | Ok evs -> evs
    | Error e -> Alcotest.fail e
  in
  Sys.remove path;
  (* the tree covers every pipeline stage *)
  let rec names (n : Telemetry.Trace.node) =
    n.name :: List.concat_map names n.children
  in
  let all_names = List.concat_map names (Telemetry.Trace.tree events) in
  List.iter
    (fun stage ->
      check_bool ("span " ^ stage) true (List.mem stage all_names))
    [
      "analyze"; "analyze.dynamic"; "analyze.static"; "plan"; "field_run";
      "reproduce"; "replay.attempt"; "engine.explore";
    ];
  (* the four §3.1 replay-case counters are published... *)
  let counters =
    List.filter_map
      (function
        | Telemetry.Event.Counter { name; value; _ } -> Some (name, value)
        | _ -> None)
      events
  in
  List.iter
    (fun k ->
      check_bool ("counter " ^ k) true
        (List.mem_assoc ("replay.case." ^ k) counters))
    [ "forked"; "completed"; "forced"; "aborted_contradiction" ];
  (* ... and agree with the record-typed stats via the unified view *)
  let snap = Replay.Guided.counters stats in
  check_int "forked = case1" stats.cases.case1
    (Option.get (Telemetry.Counters.find snap "replay.forked"));
  check_int "published forked matches" stats.cases.case1
    (List.assoc "replay.case.forked" counters)

let () =
  Alcotest.run "telemetry"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting via DLS" `Quick test_span_nesting;
          Alcotest.test_case "end attrs + exception close" `Quick
            test_span_end_attrs_and_exceptions;
          Alcotest.test_case "explicit parent across domains" `Quick
            test_span_explicit_parent;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter monotonicity" `Quick
            test_counter_monotonic;
          Alcotest.test_case "concurrent increments" `Quick
            test_counter_concurrent;
          Alcotest.test_case "publish" `Quick test_publish_emits_counters;
        ] );
      ( "disabled",
        [
          Alcotest.test_case "disabled handle is a no-op" `Quick
            test_disabled_is_noop;
          Alcotest.test_case "null sink keeps registry" `Quick
            test_null_sink_registry_still_counts;
        ] );
      ( "trace",
        [
          Alcotest.test_case "jsonl roundtrip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "validator accepts good" `Quick
            test_validator_accepts_good_trace;
          Alcotest.test_case "validator negative cases" `Quick
            test_validator_negative_cases;
        ] );
      ( "counters",
        [
          Alcotest.test_case "merge/union" `Quick test_counters_merge_union;
          Alcotest.test_case "stats conversions" `Quick test_stats_conversions;
        ] );
      ( "e2e",
        [
          Alcotest.test_case "demo pipeline acceptance trace" `Slow
            test_demo_pipeline_trace;
        ] );
    ]
