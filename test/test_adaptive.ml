(* Tests for the closed adaptive deployment loop (lib/adaptive):
   multi-round determinism, the three refinement rules, and the
   fail-closed policy verifier. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

module Policy = Adaptive.Policy
module Loop = Adaptive.Loop
module Methods = Instrument.Methods

(* ------------------------------------------------------------------ *)
(* Policy levels *)

let test_level_ladder () =
  check_int "slice rank" 0 (Policy.level_rank Policy.Slice);
  check_int "full rank" 3 (Policy.level_rank Policy.Full);
  check_bool "escalate climbs" true
    (Policy.escalate Policy.Slice = Policy.Coarse);
  check_bool "escalate clamps" true
    (Policy.escalate Policy.Full = Policy.Full);
  check_bool "de-escalate descends" true
    (Policy.de_escalate Policy.Focused = Policy.Coarse);
  check_bool "de-escalate clamps" true
    (Policy.de_escalate Policy.Slice = Policy.Slice);
  List.iter
    (fun l ->
      match Policy.level_of_string (Policy.level_to_string l) with
      | Ok l' -> check_bool "roundtrip" true (l = l')
      | Error e -> Alcotest.fail e)
    [ Policy.Slice; Policy.Coarse; Policy.Focused; Policy.Full ];
  check_bool "of_string rejects junk" true
    (Result.is_error (Policy.level_of_string "maximal"))

(* A real analyzed base to compile policies over. *)
let mkdir_base =
  lazy
    (let cfg = Bugrepro.Pipeline.Config.default in
     let gen = Workloads.Report_gen.make ~quick:true ~config:cfg () in
     match
       Workloads.Report_gen.crash_base gen ~program:"mkdir"
         ~meth:Methods.Static
     with
     | Ok (prog, plan, _) -> (prog, plan)
     | Error e -> failwith e)

let crash_fns = [ "main" ]

let test_expected_ids_nested () =
  let prog, base_plan = Lazy.force mkdir_base in
  let ids l = Policy.expected_ids ~prog ~base_plan ~crash_fns l in
  let subset a b = List.for_all (fun x -> List.mem x b) a in
  let slice = ids Policy.Slice
  and coarse = ids Policy.Coarse
  and focused = ids Policy.Focused
  and full = ids Policy.Full in
  check_bool "slice within coarse" true (subset slice coarse);
  check_bool "coarse within focused" true (subset coarse focused);
  check_bool "focused within full" true (subset focused full);
  check_int "full instruments every branch"
    (Array.length prog.Minic.Program.branches)
    (List.length full);
  check_bool "each level sorted ascending" true
    (List.for_all
       (fun l -> List.sort_uniq compare l = l)
       [ slice; coarse; focused; full ])

let test_compile_verifies () =
  let prog, base_plan = Lazy.force mkdir_base in
  List.iter
    (fun level ->
      let p =
        Policy.make ~prog ~base_plan ~cohort:"canary" ~crash_fns level
      in
      let plan = Policy.compile ~prog ~base_plan p in
      match Policy.verify ~prog ~base_plan p plan with
      | Ok () -> ()
      | Error e ->
          Alcotest.fail (Policy.level_to_string level ^ ": " ^ e))
    [ Policy.Slice; Policy.Coarse; Policy.Focused; Policy.Full ]

(* Forged policies and tampered plans must be rejected before any field
   run — the deployment loop's fail-closed gate. *)
let test_verify_rejects_forged_policy () =
  let prog, base_plan = Lazy.force mkdir_base in
  let p = Policy.make ~prog ~base_plan ~cohort:"canary" ~crash_fns Policy.Slice in
  let full = Policy.expected_ids ~prog ~base_plan ~crash_fns Policy.Full in
  let extra =
    List.find (fun id -> not (List.mem id p.Policy.branches)) full
  in
  let forged =
    { p with Policy.branches = List.sort compare (extra :: p.Policy.branches) }
  in
  let plan = Policy.compile ~prog ~base_plan forged in
  check_bool "non-subset branch set rejected" true
    (Result.is_error (Policy.verify ~prog ~base_plan forged plan))

let test_verify_rejects_tampered_plan () =
  let prog, base_plan = Lazy.force mkdir_base in
  let p = Policy.make ~prog ~base_plan ~cohort:"canary" ~crash_fns Policy.Coarse in
  let plan = Policy.compile ~prog ~base_plan p in
  let idx =
    (* flip one instrumented bit the declared set does not cover *)
    let rec find i =
      if plan.Instrument.Plan.instrumented.(i) then find (i + 1) else i
    in
    find 0
  in
  let tampered =
    let a = Array.copy plan.Instrument.Plan.instrumented in
    a.(idx) <- true;
    { plan with Instrument.Plan.instrumented = a }
  in
  check_bool "tampered instrumented array rejected" true
    (Result.is_error (Policy.verify ~prog ~base_plan p tampered));
  let untagged = { plan with Instrument.Plan.cohort = None } in
  check_bool "missing cohort tag rejected" true
    (Result.is_error (Policy.verify ~prog ~base_plan p untagged));
  let wrong_ids = { p with Policy.branches = List.tl p.Policy.branches } in
  check_bool "declared/derived disagreement rejected" true
    (Result.is_error (Policy.verify ~prog ~base_plan wrong_ids plan))

(* ------------------------------------------------------------------ *)
(* The deployment loop *)

let run_loop ?(rounds = 3) ?(seed = 1) () =
  Loop.run { Loop.default_config with Loop.rounds; seed }

let loop_result = lazy (run_loop ())

let test_loop_deterministic () =
  let a = Lazy.force loop_result and b = run_loop () in
  check_string "same seed, byte-identical summaries"
    (Loop.result_to_json a) (Loop.result_to_json b)

let cohort name (r : Loop.round_summary) =
  List.find (fun c -> c.Loop.cr_name = name) r.Loop.cohorts

let test_loop_converges_with_all_rules () =
  let res = Lazy.force loop_result in
  check_int "three rounds simulated" 3 (List.length res.Loop.rounds);
  check_bool "converged" true res.Loop.converged;
  let r1 = List.hd res.Loop.rounds in
  let final = List.nth res.Loop.rounds 2 in
  check_bool "round 1 refines the fleet" true (r1.Loop.cohorts_refined > 0);
  check_bool "round 2 ships fewer bits than round 1" true
    ((List.nth res.Loop.rounds 1).Loop.total_bits < r1.Loop.total_bits);
  check_int "final round refines nothing" 0 final.Loop.cohorts_refined;
  (* escalate: the uninstrumented canary climbs to full detail and is
     only then reproduced *)
  check_bool "canary starts coarse and fails" true
    (let c = cohort "mkdir-canary" r1 in
     c.Loop.cr_level = Policy.Coarse && c.Loop.cr_reproduced = 0);
  check_bool "canary rescued at full" true
    (let c = cohort "mkdir-canary" final in
     c.Loop.cr_level = Policy.Full && c.Loop.cr_reproduced = c.Loop.cr_clusters);
  (* de-escalate: the healthy paste cohort settles on its crash slice *)
  check_bool "paste settles on slice" true
    (let c = cohort "paste-stable" final in
     c.Loop.cr_level = Policy.Slice && c.Loop.cr_next = Policy.Slice);
  (* hold: the torn cohort reproduces off the salvaged prefix but ran
     out of log bits, so it keeps its coarse level *)
  check_bool "torn cohort holds coarse with exhausted bits" true
    (let c = cohort "userver-torn" final in
     c.Loop.cr_level = Policy.Coarse
     && c.Loop.cr_next = Policy.Coarse
     && c.Loop.cr_log_exhausted > 0
     && c.Loop.cr_reproduced = c.Loop.cr_clusters);
  (* floor: mkdir-stable overshot to a failing slice in round 2 and must
     be pinned back at coarse, not oscillate *)
  check_bool "floored cohort holds coarse" true
    (let c = cohort "mkdir-stable" final in
     c.Loop.cr_level = Policy.Coarse && c.Loop.cr_next = Policy.Coarse);
  (* every cluster of the converged round reproduced *)
  List.iter
    (fun (c : Loop.cohort_round) ->
      check_int (c.Loop.cr_name ^ " reproduced") c.Loop.cr_clusters
        c.Loop.cr_reproduced)
    final.Loop.cohorts

let test_loop_seed_changes_stream () =
  (* a different seed still converges to the same levels (the fleet's
     bugs don't change), so the JSON may coincide; what must differ is
     nothing structural — just assert the run is well-formed *)
  let res = run_loop ~seed:7 () in
  check_bool "seed 7 converges" true res.Loop.converged

let test_json_is_strict () =
  let res = Lazy.force loop_result in
  let js = Loop.result_to_json res in
  check_bool "parses as strict JSON" true
    (match
       let ic = Unix.open_process_out "python3 -c 'import sys,json; json.load(sys.stdin)'" in
       output_string ic js;
       Unix.close_process_out ic
     with
    | Unix.WEXITED 0 -> true
    | _ -> false
    | exception _ -> false)

let () =
  Alcotest.run "adaptive"
    [
      ( "policy",
        [
          Alcotest.test_case "level ladder" `Quick test_level_ladder;
          Alcotest.test_case "expected ids nested" `Quick
            test_expected_ids_nested;
          Alcotest.test_case "compile verifies at every level" `Quick
            test_compile_verifies;
          Alcotest.test_case "forged policy rejected" `Quick
            test_verify_rejects_forged_policy;
          Alcotest.test_case "tampered plan rejected" `Quick
            test_verify_rejects_tampered_plan;
        ] );
      ( "loop",
        [
          Alcotest.test_case "deterministic across runs" `Quick
            test_loop_deterministic;
          Alcotest.test_case "converges, all three rules" `Quick
            test_loop_converges_with_all_rules;
          Alcotest.test_case "other seeds converge" `Quick
            test_loop_seed_changes_stream;
          Alcotest.test_case "round JSON is strict" `Quick test_json_is_strict;
        ] );
    ]
