(* Tests for the probe-elision analysis: CFG/dominator edge cases, the
   proof checker, the wire codec and the reconstruction state machine —
   including the field/replay parity the whole scheme rests on. *)

module Sup = Staticanalysis.Suppression

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let link src = Minic.Program.of_sources ~app:src ~libs:[] ()

let bid_at (prog : Minic.Program.t) ~line =
  let found = ref None in
  Array.iter
    (fun (b : Minic.Number.info) ->
      if b.bloc.line = line && !found = None then found := Some b.bid)
    prog.branches;
  match !found with
  | Some bid -> bid
  | None -> Alcotest.failf "no branch at line %d" line

(* analyze with every branch instrumented — elision decisions then depend
   only on the proofs, not on the labelling *)
let analyze_all src =
  let prog = link src in
  let instrumented = Array.make (Minic.Program.nbranches prog) true in
  (prog, instrumented, Sup.analyze ~instrumented prog)

let rule_at sup prog ~line = Sup.rule_of sup (bid_at prog ~line)

(* ------------------------------------------------------------------ *)
(* Rule derivation over CFG/dominator edge cases *)

let test_arm_forced_nested () =
  let prog, _, sup =
    analyze_all
      "int main() {\n\
      \  int buf[8];\n\
      \  int x;\n\
      \  arg(0, buf, 8);\n\
      \  x = buf[0];\n\
      \  if (x > 0) {\n\
      \    if (x > 0) { print_int(1); }\n\
      \  } else {\n\
      \    if (x > 0) { print_int(2); }\n\
      \  }\n\
      \  return 0;\n\
       }"
  in
  check_bool "then-arm forced true" true
    (rule_at sup prog ~line:7 = Some (Sup.Forced { polarity = true }));
  check_bool "else-arm forced false" true
    (rule_at sup prog ~line:9 = Some (Sup.Forced { polarity = false }))

let test_implied_by_dominator () =
  let prog, _, sup =
    analyze_all
      "int main() {\n\
      \  int buf[8];\n\
      \  int x;\n\
      \  arg(0, buf, 8);\n\
      \  x = buf[0];\n\
      \  if (x > 0) { print_int(1); }\n\
      \  if (x > 0) { print_int(2); }\n\
      \  if (!(x > 0)) { print_int(3); }\n\
      \  return 0;\n\
       }"
  in
  let dom = bid_at prog ~line:6 in
  check_bool "repeat implied, same polarity" true
    (rule_at sup prog ~line:7 = Some (Sup.Implied_by { dom; polarity = true }));
  check_bool "negated condition implied, complement polarity" true
    (rule_at sup prog ~line:8 = Some (Sup.Implied_by { dom; polarity = false }))

let test_early_return_in_nested_branches () =
  (* both paths of the first branch's then-arm return, so the CFG has no
     after-join there; the later repeat is still dominated and kill-free *)
  let prog, _, sup =
    analyze_all
      "int main() {\n\
      \  int buf[8];\n\
      \  int x;\n\
      \  arg(0, buf, 8);\n\
      \  x = buf[0];\n\
      \  if (x > 0) {\n\
      \    if (x > 3) { return 1; }\n\
      \    return 2;\n\
      \  }\n\
      \  if (x > 0) { return 3; }\n\
      \  return 0;\n\
       }"
  in
  let dom = bid_at prog ~line:6 in
  check_bool "repeat after returning arm still implied" true
    (rule_at sup prog ~line:10
    = Some (Sup.Implied_by { dom; polarity = true }))

let test_empty_arms () =
  let prog, _, sup =
    analyze_all
      "int main() {\n\
      \  int buf[8];\n\
      \  int x;\n\
      \  arg(0, buf, 8);\n\
      \  x = buf[0];\n\
      \  if (x > 0) { } else { }\n\
      \  if (x > 0) { }\n\
      \  return 0;\n\
       }"
  in
  let dom = bid_at prog ~line:6 in
  check_bool "empty-armed dominator still implies" true
    (rule_at sup prog ~line:7 = Some (Sup.Implied_by { dom; polarity = true }))

let test_kill_breaks_implication () =
  let prog, _, sup =
    analyze_all
      "int main() {\n\
      \  int buf[8];\n\
      \  int x;\n\
      \  arg(0, buf, 8);\n\
      \  x = buf[0];\n\
      \  if (x > 0) { print_int(1); }\n\
      \  x = x - 1;\n\
      \  if (x > 0) { print_int(2); }\n\
      \  return 0;\n\
       }"
  in
  check_bool "kill on the path blocks the rule" true
    (rule_at sup prog ~line:8 = None)

let test_call_kills_global_operand () =
  (* bump() writes the global the condition reads: the call on the path
     kills the implication; the same shape on a pure local survives *)
  let prog, _, sup =
    analyze_all
      "int g;\n\
       void bump() { g = g + 1; }\n\
       int main() {\n\
      \  int buf[8];\n\
      \  int x;\n\
      \  arg(0, buf, 8);\n\
      \  g = buf[0];\n\
      \  x = buf[1];\n\
      \  if (g > 0) { print_int(1); }\n\
      \  bump();\n\
      \  if (g > 0) { print_int(2); }\n\
      \  if (x > 0) { print_int(3); }\n\
      \  bump();\n\
      \  if (x > 0) { print_int(4); }\n\
      \  return 0;\n\
       }"
  in
  check_bool "call kills global operand" true (rule_at sup prog ~line:11 = None);
  let dom = bid_at prog ~line:12 in
  check_bool "pure local survives the call" true
    (rule_at sup prog ~line:14
    = Some (Sup.Implied_by { dom; polarity = true }))

let test_pointer_write_kills_invariance () =
  (* the loop reads through an int* global; a store through an aliasing
     pointer kills invariance (points-to), a disjoint one does not *)
  (* no calls in the loop body: an unmodelled call (checkpoint, spawn)
     would kill the non-local operand regardless of aliasing; modelled
     calls kill only what their write summary reaches *)
  let src q_target =
    "int g0;\n\
     int g1;\n\
     int* p;\n\
     int* q;\n\
     int main() {\n\
    \  int buf[8];\n\
    \  int n;\n\
    \  int i;\n\
    \  int t;\n\
    \  n = arg(0, buf, 8);\n\
    \  g0 = buf[0];\n\
    \  p = (&g0);\n\
    \  q = (&" ^ q_target
    ^ ");\n\
      \  i = 0;\n\
      \  t = 0;\n\
      \  while (i < n) {\n\
      \    if ((*p) > 0) { t = t + 1; }\n\
      \    (*q) = 5;\n\
      \    i = i + 1;\n\
      \  }\n\
      \  return t;\n\
       }"
  in
  let prog, _, sup = analyze_all (src "g0") in
  check_bool "aliasing store kills invariance" true
    (rule_at sup prog ~line:17 = None);
  let prog, _, sup = analyze_all (src "g1") in
  let loop = bid_at prog ~line:16 in
  check_bool "disjoint store keeps invariance" true
    (rule_at sup prog ~line:17 = Some (Sup.Invariant_of { loop }))

let test_widening_length_loop () =
  (* Gen-style counted loop with an input-dependent bound: the loop
     condition reads its own induction variable (killed every iteration)
     and must stay logged; an inner branch on untouched state is
     loop-invariant *)
  let prog, _, sup =
    analyze_all
      "int main() {\n\
      \  int buf[8];\n\
      \  int n;\n\
      \  int x;\n\
      \  int i;\n\
      \  n = arg(0, buf, 8);\n\
      \  x = buf[0];\n\
      \  i = 0;\n\
      \  while (i < n) {\n\
      \    if (x == 7) { print_int(1); }\n\
      \    i = i + 1;\n\
      \  }\n\
      \  return 0;\n\
       }"
  in
  check_bool "widening-length loop condition stays logged" true
    (rule_at sup prog ~line:9 = None);
  let loop = bid_at prog ~line:9 in
  check_bool "inner branch invariant of the loop" true
    (rule_at sup prog ~line:10 = Some (Sup.Invariant_of { loop }))

(* ------------------------------------------------------------------ *)
(* Proof checker *)

let progs_for_verify =
  [
    "int main() {\n\
    \  int buf[8];\n\
    \  int x;\n\
    \  arg(0, buf, 8);\n\
    \  x = buf[0];\n\
    \  if (x > 0) {\n\
    \    if (x > 0) { print_int(1); }\n\
    \  }\n\
    \  if (x > 0) { print_int(2); }\n\
    \  return 0;\n\
     }";
    "int main() {\n\
    \  int buf[8];\n\
    \  int n;\n\
    \  int x;\n\
    \  int i;\n\
    \  n = arg(0, buf, 8);\n\
    \  x = buf[0];\n\
    \  i = 0;\n\
    \  while (i < n) {\n\
    \    if (x > 0) { print_int(1); }\n\
    \    i = i + 1;\n\
    \  }\n\
    \  return 0;\n\
     }";
  ]

let test_verify_accepts_analysis () =
  List.iter
    (fun src ->
      let prog, instrumented, sup = analyze_all src in
      check_bool "analysis output verifies" true
        (Sup.verify ~instrumented prog (Sup.to_table sup) = Ok ());
      check_bool "analysis found something to elide" true (Sup.n_elided sup > 0))
    progs_for_verify

let test_verify_rejects_forged () =
  let prog, instrumented, sup = analyze_all (List.hd progs_for_verify) in
  let reject name table =
    match Sup.verify ~instrumented prog table with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "%s: forged table accepted" name
  in
  let b_dom = bid_at prog ~line:6 in
  let b_rep = bid_at prog ~line:9 in
  reject "wrong polarity"
    [ (b_rep, Sup.Implied_by { dom = b_dom; polarity = false }) ];
  reject "dominator after the branch"
    [ (b_dom, Sup.Implied_by { dom = b_rep; polarity = true }) ];
  reject "forced on a data-dependent branch"
    [ (b_dom, Sup.Forced { polarity = true }) ];
  reject "invariant without a loop" [ (b_rep, Sup.Invariant_of { loop = b_dom }) ];
  (* a rule on a branch the plan does not instrument is rejected *)
  let partial = Array.copy instrumented in
  partial.(b_rep) <- false;
  (match
     Sup.verify ~instrumented:partial prog
       [ (b_rep, Sup.Implied_by { dom = b_dom; polarity = true }) ]
   with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "rule on uninstrumented branch accepted");
  (* the analysis' own table still passes with the original plan *)
  check_bool "control: real table passes" true
    (Sup.verify ~instrumented prog (Sup.to_table sup) = Ok ())

let test_of_table_fail_closed () =
  let bad n table =
    match Sup.of_table ~nbranches:n table with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "table with %d branches accepted" n
  in
  bad 2 [ (5, Sup.Forced { polarity = true }) ];
  bad 4
    [
      (1, Sup.Forced { polarity = true }); (1, Sup.Forced { polarity = false });
    ];
  bad 4 [ (1, Sup.Implied_by { dom = 9; polarity = true }) ];
  (* implied-by a dominator that is itself elided *)
  bad 4
    [
      (1, Sup.Forced { polarity = true });
      (2, Sup.Implied_by { dom = 1; polarity = true });
    ];
  match
    Sup.of_table ~nbranches:4
      [ (2, Sup.Implied_by { dom = 1; polarity = true }) ]
  with
  | Ok rules -> check_int "dense decode" 4 (Array.length rules)
  | Error e -> Alcotest.failf "well-formed table rejected: %s" e

let test_codec_roundtrip () =
  let table =
    [
      (1, Sup.Forced { polarity = true });
      (3, Sup.Forced { polarity = false });
      (7, Sup.Implied_by { dom = 2; polarity = true });
      (9, Sup.Implied_by { dom = 2; polarity = false });
      (12, Sup.Invariant_of { loop = 11 });
    ]
  in
  (match Sup.table_of_string (Sup.table_to_string table) with
  | Ok t -> check_bool "roundtrip" true (t = table)
  | Error e -> Alcotest.failf "roundtrip failed: %s" e);
  List.iter
    (fun code ->
      match Sup.rule_of_code code with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "bad code %S accepted" code)
    [ ""; "f"; "f2"; "x5"; "d+"; "d-1+"; "d01+"; "d3"; "i"; "i 3"; "iff" ]

(* ------------------------------------------------------------------ *)
(* Reconstruction state machine *)

let test_recon_invariant_per_entry () =
  (* bid 0 = the loop branch (logged), bid 1 = invariant inner branch:
     first execution per loop entry consumes, later ones replay the
     branch's own last bit; a fresh entry (iter = 0 at the loop) resets *)
  let rules = Array.make 2 None in
  rules.(1) <- Some (Sup.Invariant_of { loop = 0 });
  let rc = Sup.Recon.create rules in
  let loop_iter i =
    check_bool "loop branch consumes" true
      (Sup.Recon.on_branch rc ~bid:0 ~iter:i = Sup.Recon.Consume);
    Sup.Recon.record rc ~bid:0 (i < 2)
  in
  loop_iter 0;
  check_bool "first exec consumes" true
    (Sup.Recon.on_branch rc ~bid:1 ~iter:0 = Sup.Recon.Consume);
  Sup.Recon.record rc ~bid:1 true;
  loop_iter 1;
  check_bool "second exec elides last bit" true
    (Sup.Recon.on_branch rc ~bid:1 ~iter:0 = Sup.Recon.Elide true);
  loop_iter 2;
  check_bool "third exec still elides" true
    (Sup.Recon.on_branch rc ~bid:1 ~iter:0 = Sup.Recon.Elide true);
  (* the loop is re-entered: freshness resets, the branch consumes again *)
  loop_iter 0;
  check_bool "re-entry consumes afresh" true
    (Sup.Recon.on_branch rc ~bid:1 ~iter:0 = Sup.Recon.Consume);
  Sup.Recon.record rc ~bid:1 false;
  loop_iter 1;
  check_bool "and elides the new bit" true
    (Sup.Recon.on_branch rc ~bid:1 ~iter:0 = Sup.Recon.Elide false)

let test_recon_implied_tracks_consumed () =
  (* bid 1 repeats bid 0's consumed bit, bid 2 its complement; before any
     consume the referenced bit is unavailable *)
  let rules = Array.make 3 None in
  rules.(1) <- Some (Sup.Implied_by { dom = 0; polarity = true });
  rules.(2) <- Some (Sup.Implied_by { dom = 0; polarity = false });
  let rc = Sup.Recon.create rules in
  check_bool "unavailable before any consume" true
    (Sup.Recon.on_branch rc ~bid:1 ~iter:0 = Sup.Recon.Elide_unknown);
  check_bool "dom consumes" true
    (Sup.Recon.on_branch rc ~bid:0 ~iter:0 = Sup.Recon.Consume);
  Sup.Recon.record rc ~bid:0 true;
  check_bool "same polarity" true
    (Sup.Recon.on_branch rc ~bid:1 ~iter:0 = Sup.Recon.Elide true);
  check_bool "complement polarity" true
    (Sup.Recon.on_branch rc ~bid:2 ~iter:0 = Sup.Recon.Elide false);
  Sup.Recon.record rc ~bid:0 false;
  check_bool "tracks the latest consumed bit" true
    (Sup.Recon.on_branch rc ~bid:1 ~iter:0 = Sup.Recon.Elide false)

(* ------------------------------------------------------------------ *)
(* Field/replay parity end to end *)

let scenario ?(args = [ "abcd" ]) src =
  let prog = link src in
  Concolic.Scenario.make ~name:"suppression-test" ~args
    ~world:Osmodel.World.default_config prog

let parity_src =
  "int main() {\n\
  \  int buf[8];\n\
  \  int n;\n\
  \  int x;\n\
  \  int i;\n\
  \  n = arg(0, buf, 8);\n\
  \  x = buf[0];\n\
  \  if (x > 0) {\n\
  \    if (x > 0) { print_int(1); }\n\
  \  }\n\
  \  if (x > 0) { print_int(2); }\n\
  \  i = 0;\n\
  \  while (i < n) {\n\
  \    if (x > 0) { print_int(3); }\n\
  \    i = i + 1;\n\
  \  }\n\
  \  return 0;\n\
   }"

let test_field_shadow_parity () =
  let sc = scenario parity_src in
  let prog = sc.Concolic.Scenario.prog in
  let instrumented = Array.make (Minic.Program.nbranches prog) true in
  let sup = Sup.analyze ~instrumented prog in
  check_bool "something elided" true (Sup.n_elided sup > 0);
  let plan =
    Instrument.Plan.make
      ~nbranches:(Minic.Program.nbranches prog)
      Instrument.Methods.All_branches
  in
  let full = Instrument.Field_run.run ~plan sc in
  let elided =
    Instrument.Field_run.run ~shadow:true
      ~plan:(Instrument.Plan.with_suppression plan sup)
      sc
  in
  check_bool "bits saved" true
    (elided.branch_log.nbits < full.branch_log.nbits);
  check_int "no reconstruction mismatches" 0 elided.shadow_mismatches;
  check_bool "elided executions counted" true (elided.n_elided > 0);
  match elided.shadow_log with
  | None -> Alcotest.fail "no shadow log"
  | Some sh ->
      check_int "shadow bit count" full.branch_log.nbits sh.nbits;
      check_bool "shadow bits equal raw bits" true
        (String.equal sh.bytes full.branch_log.bytes)

let crash_src =
  "int main() {\n\
  \  int buf[8];\n\
  \  int x;\n\
  \  arg(0, buf, 8);\n\
  \  x = buf[0];\n\
  \  if (x > 0) {\n\
  \    if (x > 0) { print_int(1); }\n\
  \  }\n\
  \  if (x > 0) {\n\
  \    if (buf[1] == 'k') { crash(); }\n\
  \  }\n\
  \  return 0;\n\
   }"

let test_replay_parity_end_to_end () =
  (* the pipeline with Config.suppression on: the suppressed report must
     reproduce the crash with the same §3.1 counters as the raw one *)
  let sc = scenario ~args:[ "zk" ] crash_src in
  let prog = sc.Concolic.Scenario.prog in
  let cfg =
    Bugrepro.Pipeline.Config.(
      default
      |> with_budget
           ~dynamic:{ Concolic.Engine.max_runs = 60; max_time_s = 5.0 }
           ~replay:{ Concolic.Engine.max_runs = 2_000; max_time_s = 20.0 })
  in
  let analysis = Bugrepro.Pipeline.Run.analyze cfg ~test_scenario:sc prog in
  let raw_plan =
    Bugrepro.Pipeline.Run.plan cfg analysis Instrument.Methods.Dynamic_static
  in
  let sup_plan =
    Bugrepro.Pipeline.Run.plan
      (Bugrepro.Pipeline.Config.with_suppression true cfg)
      analysis Instrument.Methods.Dynamic_static
  in
  check_bool "plan carries a suppression table" true
    (sup_plan.Instrument.Plan.suppression <> None);
  let _, raw_report =
    Bugrepro.Pipeline.Run.field_run_report cfg ~plan:raw_plan sc
  in
  let _, sup_report =
    Bugrepro.Pipeline.Run.field_run_report cfg ~plan:sup_plan sc
  in
  match raw_report, sup_report with
  | Some raw_report, Some sup_report ->
      check_bool "suppressed report ships fewer bits" true
        (Instrument.Report.nbits sup_report
        < Instrument.Report.nbits raw_report);
      check_bool "table shipped" true
        (sup_report.Instrument.Report.suppression <> []);
      let raw_result, raw_stats =
        Bugrepro.Pipeline.Run.reproduce cfg ~prog ~plan:raw_plan raw_report
      in
      let sup_result, sup_stats =
        Bugrepro.Pipeline.Run.reproduce cfg ~prog ~plan:sup_plan sup_report
      in
      check_bool "raw reproduces" true (Replay.Guided.reproduced raw_result);
      check_bool "suppressed reproduces" true
        (Replay.Guided.reproduced sup_result);
      let rc = raw_stats.Replay.Guided.cases
      and sc_ = sup_stats.Replay.Guided.cases in
      check_int "case2a parity" rc.case2a sc_.case2a;
      check_int "case2b parity" rc.case2b sc_.case2b;
      check_int "case3a parity" rc.case3a sc_.case3a;
      check_int "case3b parity" rc.case3b sc_.case3b;
      check_int "log_exhausted parity" rc.log_exhausted sc_.log_exhausted
  | _ -> Alcotest.fail "field run did not crash"

let test_replay_rejects_forged_table () =
  (* a report whose table claims an unprovable rule must be rejected
     before replay, not silently reconstructed from *)
  let sc = scenario ~args:[ "zk" ] crash_src in
  let prog = sc.Concolic.Scenario.prog in
  let plan =
    Instrument.Plan.make
      ~nbranches:(Minic.Program.nbranches prog)
      Instrument.Methods.All_branches
  in
  let _, report = Bugrepro.Pipeline.field_run_report ~plan sc in
  match report with
  | None -> Alcotest.fail "field run did not crash"
  | Some report ->
      let forged =
        {
          report with
          Instrument.Report.suppression =
            [ (bid_at prog ~line:6, Sup.Forced { polarity = true }) ];
        }
      in
      let raised =
        try
          let _ = Bugrepro.Pipeline.reproduce ~prog ~plan forged in
          false
        with Invalid_argument _ -> true
      in
      check_bool "forged table rejected" true raised

let () =
  Alcotest.run "suppression"
    [
      ( "rules",
        [
          Alcotest.test_case "arm-forced in nested branches" `Quick
            test_arm_forced_nested;
          Alcotest.test_case "dominator-implied repeats" `Quick
            test_implied_by_dominator;
          Alcotest.test_case "early return in nested branches" `Quick
            test_early_return_in_nested_branches;
          Alcotest.test_case "empty arms" `Quick test_empty_arms;
          Alcotest.test_case "kill breaks implication" `Quick
            test_kill_breaks_implication;
          Alcotest.test_case "call kills global operand" `Quick
            test_call_kills_global_operand;
          Alcotest.test_case "pointer write kills invariance" `Quick
            test_pointer_write_kills_invariance;
          Alcotest.test_case "widening-length loop" `Quick
            test_widening_length_loop;
        ] );
      ( "verify",
        [
          Alcotest.test_case "accepts analysis output" `Quick
            test_verify_accepts_analysis;
          Alcotest.test_case "rejects forged rules" `Quick
            test_verify_rejects_forged;
          Alcotest.test_case "of_table fail-closed" `Quick
            test_of_table_fail_closed;
          Alcotest.test_case "codec roundtrip" `Quick test_codec_roundtrip;
        ] );
      ( "recon",
        [
          Alcotest.test_case "invariant once per loop entry" `Quick
            test_recon_invariant_per_entry;
          Alcotest.test_case "implied tracks consumed bits" `Quick
            test_recon_implied_tracks_consumed;
        ] );
      ( "parity",
        [
          Alcotest.test_case "field shadow parity" `Quick
            test_field_shadow_parity;
          Alcotest.test_case "replay parity end to end" `Slow
            test_replay_parity_end_to_end;
          Alcotest.test_case "forged table rejected at replay" `Quick
            test_replay_rejects_forged_table;
        ] );
    ]
