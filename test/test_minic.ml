(* Tests for the MiniC front end: lexer, parser, pretty-printer round trip,
   normalisation, type checking, branch numbering. *)

let parse ?(file = "t.c") src = Minic.Parser.parse_unit ~file src

let link ?(libs = []) src = Minic.Program.of_sources ~app:src ~libs ()

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Lexer *)

let test_lexer_basic () =
  let toks = Minic.Lexer.tokenize ~file:"t.c" "int x = 0x1f + 'a'; // cmt" in
  let kinds = List.map fst toks in
  Alcotest.(check (list string))
    "tokens"
    [ "int"; "x"; "="; "31"; "+"; "97"; ";"; "<eof>" ]
    (List.map Minic.Token.to_string kinds)

let test_lexer_string_escapes () =
  match Minic.Lexer.tokenize ~file:"t.c" {|"a\n\t\0\\\"b"|} with
  | [ (Minic.Token.STR s, _); (Minic.Token.EOF, _) ] ->
      Alcotest.(check string) "escapes" "a\n\t\000\\\"b" s
  | _ -> Alcotest.fail "expected single string token"

let test_lexer_comments () =
  let toks =
    Minic.Lexer.tokenize ~file:"t.c" "/* multi\nline */ x // trailing\n y"
  in
  check_int "two idents + eof" 3 (List.length toks)

let test_lexer_error_pos () =
  match Minic.Lexer.tokenize ~file:"t.c" "x\n  @" with
  | exception Minic.Lexer.Error (_, loc) ->
      check_int "line" 2 loc.line;
      check_int "col" 3 loc.col
  | _ -> Alcotest.fail "expected lexer error"

(* ------------------------------------------------------------------ *)
(* Parser *)

let test_parse_precedence () =
  let u = parse "int f() { return 1 + 2 * 3 == 7 && 4 < 5; }" in
  let f = List.hd u.u_funcs in
  match f.fbody with
  | [ { sdesc = Minic.Ast.Sreturn (Some e); _ } ] ->
      let s = Minic.Pretty.expr_to_string e in
      Alcotest.(check string) "prec" "(((1 + (2 * 3)) == 7) && (4 < 5))" s
  | _ -> Alcotest.fail "expected single return"

let test_parse_for_desugar () =
  let u = parse "int f() { int i; for (i = 0; i < 3; i = i + 1) { } return i; }" in
  let f = List.hd u.u_funcs in
  let has_while = ref false in
  Minic.Ast.iter_stmts
    (fun s -> match s.sdesc with Minic.Ast.Swhile _ -> has_while := true | _ -> ())
    f.fbody;
  check_bool "for became while" true !has_while

let test_parse_locals_hoisted () =
  let u = parse "int f() { int a; { int b = 2; } return a; }" in
  let f = List.hd u.u_funcs in
  check_int "two locals" 2 (List.length f.flocals)

let test_parse_duplicate_local_rejected () =
  match parse "int f() { int a; int a; return 0; }" with
  | exception Minic.Parser.Error _ -> ()
  | _ -> Alcotest.fail "expected duplicate-local error"

let test_parse_pointer_syntax () =
  let u = parse "int g(int *p, int buf[]) { *p = buf[1]; return p[0]; }" in
  let f = List.hd u.u_funcs in
  check_int "two params" 2 (List.length f.fparams);
  let _, t1 = List.nth f.fparams 0 in
  let _, t2 = List.nth f.fparams 1 in
  check_bool "p is ptr" true (Minic.Types.is_pointer t1);
  check_bool "buf decays to ptr" true (Minic.Types.is_pointer t2)

let test_parse_else_if_chain () =
  let u =
    parse
      "int f(int x) { if (x == 1) return 1; else if (x == 2) return 2; else return 3; }"
  in
  let f = List.hd u.u_funcs in
  let count = ref 0 in
  Minic.Ast.iter_stmts
    (fun s -> match s.sdesc with Minic.Ast.Sif _ -> incr count | _ -> ())
    f.fbody;
  check_int "two ifs" 2 !count

let test_parse_switch_desugars () =
  let u =
    parse
      "int f(int x) { switch (x) { case 1: return 10; case 2: case 3: return 23; default: return 0; } return -1; }"
  in
  let f = List.hd u.u_funcs in
  (* two case tests -> two if branches; scrutinee temp hoisted *)
  let ifs = ref 0 in
  Minic.Ast.iter_stmts
    (fun s -> match s.sdesc with Minic.Ast.Sif _ -> incr ifs | _ -> ())
    f.fbody;
  check_int "two case tests" 2 !ifs;
  check_bool "scrutinee temp" true
    (List.exists (fun (d : Minic.Ast.var_decl) -> d.vname = "__sw0") f.flocals)

let test_switch_semantics () =
  let run x =
    let src =
      Printf.sprintf
        "int main() { switch (%d) { case 1: return 10; case 2: case 3: return 23; default: return 99; } return -1; }"
        x
    in
    let prog = Minic.Program.of_sources ~app:src ~libs:[] () in
    let r =
      Interp.Eval.run prog
        { Interp.Eval.default_config with max_steps = 10_000 }
    in
    match r.outcome with Interp.Crash.Exit n -> n | _ -> -1
  in
  check_int "case 1" 10 (run 1);
  check_int "stacked case 2" 23 (run 2);
  check_int "stacked case 3" 23 (run 3);
  check_int "default" 99 (run 7)

let test_switch_negative_and_char_labels () =
  let src =
    "int main() { int x = -4; switch (x) { case -4: return 1; case 'a': return 2; default: return 0; } return -1; }"
  in
  let prog = Minic.Program.of_sources ~app:src ~libs:[] () in
  let r =
    Interp.Eval.run prog { Interp.Eval.default_config with max_steps = 10_000 }
  in
  check_bool "negative label" true (r.outcome = Interp.Crash.Exit 1)

let test_compound_assignment_sugar () =
  let src =
    "int main() { int i = 10; int a[3]; i += 5; i -= 2; i++; a[0] = 0; a[0]--; return i + a[0]; }"
  in
  let prog = Minic.Program.of_sources ~app:src ~libs:[] () in
  let r =
    Interp.Eval.run prog { Interp.Eval.default_config with max_steps = 10_000 }
  in
  check_bool "sugar evaluates" true (r.outcome = Interp.Crash.Exit 13)

let test_for_with_increment_sugar () =
  let src =
    "int main() { int s = 0; int i; for (i = 0; i < 5; i++) { s += i; } return s; }"
  in
  let prog = Minic.Program.of_sources ~app:src ~libs:[] () in
  let r =
    Interp.Eval.run prog { Interp.Eval.default_config with max_steps = 10_000 }
  in
  check_bool "for with ++" true (r.outcome = Interp.Crash.Exit 10)

(* ------------------------------------------------------------------ *)
(* Pretty round trip *)

let sample_sources =
  [
    "int g = 3; int main() { print_int(g); return 0; }";
    "int a[10]; int main() { int i; for (i = 0; i < 10; i = i + 1) a[i] = i * i; return a[9]; }";
    "int *p; int main() { int x; p = &x; *p = 5; return x; }";
    "int f(int n) { if (n <= 1) return 1; return n * f(n - 1); }\n\
     int main() { return f(5); }";
    "int main() { int buf[4]; int n = read(0, buf, 4); while (n > 0) { n = n - 1; } return n; }";
    "int main() { int s = 0; int i = 0; while (i < 5 || s < 3) { i = i + 1; s = s + (i & 1); } return s; }";
  ]

let test_pretty_roundtrip () =
  List.iter
    (fun src ->
      let u1 = parse src in
      let printed = Minic.Pretty.unit_to_string u1 in
      let u2 = parse ~file:"rt.c" printed in
      check_bool (Printf.sprintf "roundtrip %s" src) true
        (Minic.Astcmp.equal_unit u1 u2))
    sample_sources

(* ------------------------------------------------------------------ *)
(* Normalisation *)

let test_normalize_lifts_calls () =
  let p =
    link
      "int f(int x) { return x + 1; }\nint main() { int y = f(1) + f(2); return y; }"
  in
  List.iter
    (fun (f : Minic.Ast.func) ->
      check_bool (f.fname ^ " normalised") true
        (Minic.Normalize.block_is_normalised f.fbody))
    p.funcs

let test_normalize_while_condition_call () =
  (* strlen-style loop condition: must be re-evaluated each iteration *)
  let p =
    link
      "int dec(int x) { return x - 1; }\n\
       int main() { int n = 3; int c = 0; while (dec(n) > 0) { n = n - 1; c = c + 1; } return c; }"
  in
  let main = Option.get (Minic.Program.find_func p "main") in
  check_bool "normalised" true (Minic.Normalize.block_is_normalised main.fbody);
  let found_while_1 = ref false in
  Minic.Ast.iter_stmts
    (fun s ->
      match s.sdesc with
      | Minic.Ast.Swhile (_, Minic.Ast.Cint 1, _) -> found_while_1 := true
      | _ -> ())
    main.fbody;
  check_bool "while(1) form" true !found_while_1

(* ------------------------------------------------------------------ *)
(* Typecheck *)

(* type errors surface as Typecheck.Error (distinct from Link_error, so
   the CLI can exit differently for the two) *)
let expect_type_error src =
  match link src with
  | exception Minic.Typecheck.Error _ -> ()
  | _ -> Alcotest.fail ("expected type error for: " ^ src)

let test_typecheck_unknown_var () = expect_type_error "int main() { return zz; }"

let test_typecheck_unknown_fun () =
  expect_type_error "int main() { return nope(1); }"

let test_typecheck_arity () =
  expect_type_error "int f(int a) { return a; }\nint main() { return f(1, 2); }"

let test_typecheck_index_scalar () =
  expect_type_error "int main() { int x; return x[0]; }"

let test_typecheck_deref_int () =
  expect_type_error "int main() { int x; return *x; }"

let test_typecheck_break_outside_loop () =
  expect_type_error "int main() { break; return 0; }"

let test_typecheck_assign_array () =
  expect_type_error "int main() { int a[3]; int b[3]; a = b; return 0; }"

let test_typecheck_void_assign () =
  expect_type_error "int main() { int x = print_int(3); return x; }"

let test_typecheck_builtin_shadow () =
  expect_type_error "int read(int x) { return x; }\nint main() { return 0; }"

let test_typecheck_no_main () =
  match Minic.Program.of_sources ~app:"int f() { return 0; }" ~libs:[] () with
  | exception Minic.Program.Link_error _ -> ()
  | _ -> Alcotest.fail "expected no-main error"

(* ------------------------------------------------------------------ *)
(* Branch numbering *)

let test_numbering_dense_and_ordered () =
  let p =
    link
      "int main() { int i; if (i) { } while (i) { if (i > 1) { } break; } return 0; }"
  in
  check_int "three branches" 3 (Minic.Program.nbranches p);
  Array.iteri
    (fun i (b : Minic.Number.info) -> check_int "dense ids" i b.bid)
    p.branches

let test_numbering_app_before_lib () =
  let lib = "int lib_f(int x) { if (x) return 1; return 0; }" in
  let app = "int main() { if (argc()) return lib_f(1); return 0; }" in
  let p = Minic.Program.of_sources ~app ~libs:[ lib ] () in
  check_int "app branches" 1 (Minic.Program.app_branch_count p);
  check_int "lib branches" 1 (Minic.Program.lib_branch_count p);
  let b0 = Minic.Program.branch_info p 0 in
  let b1 = Minic.Program.branch_info p 1 in
  check_bool "b0 is app" false b0.bis_lib;
  check_bool "b1 is lib" true b1.bis_lib

(* ------------------------------------------------------------------ *)
(* Label maps *)

let test_label_sticky () =
  let m = Minic.Label.make ~nbranches:3 Minic.Label.Unvisited in
  Minic.Label.observe m 0 ~symbolic:false;
  check_bool "concrete" true (Minic.Label.equal m.(0) Minic.Label.Concrete);
  Minic.Label.observe m 0 ~symbolic:true;
  check_bool "upgraded" true (Minic.Label.equal m.(0) Minic.Label.Symbolic);
  Minic.Label.observe m 0 ~symbolic:false;
  check_bool "sticky" true (Minic.Label.equal m.(0) Minic.Label.Symbolic);
  check_int "unvisited count" 2 (Minic.Label.count m Minic.Label.Unvisited)

(* ------------------------------------------------------------------ *)
(* QCheck: generated expressions round-trip through the pretty printer *)

let gen_expr : Minic.Ast.expr QCheck.Gen.t =
  let open QCheck.Gen in
  let ident = oneofl [ "a"; "b"; "c" ] in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof
              [
                map (fun i -> Minic.Ast.Cint i) (int_range (-100) 100);
                map (fun x -> Minic.Ast.Lval (Minic.Ast.Var x)) ident;
              ]
          else
            let sub = self (n / 2) in
            oneof
              [
                map (fun i -> Minic.Ast.Cint i) (int_range (-100) 100);
                map2
                  (fun op (a, b) -> Minic.Ast.Binop (op, a, b))
                  (oneofl
                     Minic.Ast.
                       [ Add; Sub; Mul; Div; Eq; Ne; Lt; Le; Gt; Ge; Land; Lor ])
                  (pair sub sub);
                map (fun a -> Minic.Ast.Unop (Minic.Ast.Lognot, a)) sub;
                map2
                  (fun x i -> Minic.Ast.Lval (Minic.Ast.Index (Minic.Ast.Var x, i)))
                  ident sub;
              ])
        n)

(* random statement generator for whole-function round trips *)
let gen_stmt_src : string QCheck.Gen.t =
  let open QCheck.Gen in
  let var = oneofl [ "a"; "b"; "c" ] in
  let expr =
    oneof
      [
        map string_of_int (int_range 0 99);
        var;
        map2 (fun x y -> Printf.sprintf "(%s + %s)" x y) var var;
        map2 (fun x y -> Printf.sprintf "(%s < %s)" x y) var var;
      ]
  in
  let rec stmt depth =
    if depth <= 0 then
      oneof
        [
          map2 (Printf.sprintf "%s = %s;") var expr;
          map (Printf.sprintf "print_int(%s);") expr;
        ]
    else
      let sub = stmt (depth - 1) in
      oneof
        [
          map2 (Printf.sprintf "%s = %s;") var expr;
          map2 (Printf.sprintf "if (%s) { %s }") expr sub;
          map3 (Printf.sprintf "if (%s) { %s } else { %s }") expr sub sub;
          map2
            (fun e s -> Printf.sprintf "while (%s) { %s break; }" e s)
            expr sub;
          map (Printf.sprintf "{ %s }") sub;
        ]
  in
  let body = list_size (int_range 1 5) (stmt 2) in
  map
    (fun stmts ->
      Printf.sprintf "int f(int a, int b, int c) { %s return a; }"
        (String.concat " " stmts))
    body

let prop_stmt_roundtrip =
  QCheck.Test.make ~count:200 ~name:"pretty/parse function round trip"
    (QCheck.make gen_stmt_src)
    (fun src ->
      (* 'break' outside a loop parses fine; only check parse/print/parse *)
      let u1 = parse src in
      let u2 = parse ~file:"rt.c" (Minic.Pretty.unit_to_string u1) in
      Minic.Astcmp.equal_unit u1 u2)

let prop_normalize_idempotent =
  QCheck.Test.make ~count:100 ~name:"normalisation is idempotent"
    (QCheck.make gen_stmt_src)
    (fun src ->
      let src = src ^ "\nint main() { return f(1, 2, 3); }" in
      let p1 = Minic.Program.of_sources ~app:src ~libs:[] () in
      (* re-normalising the already-normalised body must not change it *)
      List.for_all
        (fun (f : Minic.Ast.func) -> Minic.Normalize.block_is_normalised f.fbody)
        p1.funcs)

let prop_expr_roundtrip =
  QCheck.Test.make ~count:300 ~name:"pretty/parse expression round trip"
    (QCheck.make gen_expr)
    (fun e ->
      let src =
        Printf.sprintf "int f(int a, int b, int c) { return %s; }"
          (Minic.Pretty.expr_to_string e)
      in
      let u = parse src in
      match (List.hd u.u_funcs).fbody with
      | [ { sdesc = Minic.Ast.Sreturn (Some e2); _ } ] ->
          Minic.Astcmp.equal_expr e e2
      | _ -> false)

let () =
  Alcotest.run "minic"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic tokens" `Quick test_lexer_basic;
          Alcotest.test_case "string escapes" `Quick test_lexer_string_escapes;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "error position" `Quick test_lexer_error_pos;
        ] );
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "for desugars to while" `Quick test_parse_for_desugar;
          Alcotest.test_case "locals hoisted" `Quick test_parse_locals_hoisted;
          Alcotest.test_case "duplicate local rejected" `Quick
            test_parse_duplicate_local_rejected;
          Alcotest.test_case "pointer syntax" `Quick test_parse_pointer_syntax;
          Alcotest.test_case "else-if chain" `Quick test_parse_else_if_chain;
          Alcotest.test_case "switch desugars" `Quick test_parse_switch_desugars;
          Alcotest.test_case "switch semantics" `Quick test_switch_semantics;
          Alcotest.test_case "switch negative/char labels" `Quick
            test_switch_negative_and_char_labels;
          Alcotest.test_case "compound assignment sugar" `Quick
            test_compound_assignment_sugar;
          Alcotest.test_case "for with ++" `Quick test_for_with_increment_sugar;
        ] );
      ( "pretty",
        [
          Alcotest.test_case "sample round trips" `Quick test_pretty_roundtrip;
          QCheck_alcotest.to_alcotest prop_expr_roundtrip;
          QCheck_alcotest.to_alcotest prop_stmt_roundtrip;
          QCheck_alcotest.to_alcotest prop_normalize_idempotent;
        ] );
      ( "normalize",
        [
          Alcotest.test_case "calls lifted" `Quick test_normalize_lifts_calls;
          Alcotest.test_case "call in while condition" `Quick
            test_normalize_while_condition_call;
        ] );
      ( "typecheck",
        [
          Alcotest.test_case "unknown variable" `Quick test_typecheck_unknown_var;
          Alcotest.test_case "unknown function" `Quick test_typecheck_unknown_fun;
          Alcotest.test_case "arity" `Quick test_typecheck_arity;
          Alcotest.test_case "index scalar" `Quick test_typecheck_index_scalar;
          Alcotest.test_case "deref int" `Quick test_typecheck_deref_int;
          Alcotest.test_case "break outside loop" `Quick
            test_typecheck_break_outside_loop;
          Alcotest.test_case "assign to array" `Quick test_typecheck_assign_array;
          Alcotest.test_case "void assignment" `Quick test_typecheck_void_assign;
          Alcotest.test_case "builtin shadow" `Quick test_typecheck_builtin_shadow;
          Alcotest.test_case "missing main" `Quick test_typecheck_no_main;
        ] );
      ( "numbering",
        [
          Alcotest.test_case "dense ordered ids" `Quick
            test_numbering_dense_and_ordered;
          Alcotest.test_case "app before lib" `Quick test_numbering_app_before_lib;
        ] );
      ( "labels",
        [ Alcotest.test_case "sticky symbolic" `Quick test_label_sticky ] );
    ]
