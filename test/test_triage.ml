(* Tests for the triage subsystem (§5f): torn-report salvage, fingerprint
   dedup, escalating-budget scheduling with honest elapsed-time accounting,
   and the deterministic summary (jobs=1 vs jobs=4). *)

module Wire = Instrument.Wire
module Report = Instrument.Report
module Ingest = Triage.Ingest
module Cluster = Triage.Cluster
module Fingerprint = Triage.Fingerprint
module Sched = Triage.Sched
module Summary = Triage.Summary

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* batch wrapper, unwrapped: none of these tests pass an index_dir, so an
   [Error] is a test failure, not a condition to handle *)
let run_items ?policy ~resolve ?rejected items =
  match Triage.run_items ?policy ~resolve ?rejected items with
  | Ok s -> s
  | Error e -> Alcotest.failf "run_items: %s" (Triage.Index.error_to_string e)

(* full pipeline on a small program: returns (prog, plan, report) *)
let record ?(name = "t") ?(meth = Instrument.Methods.All_branches)
    ?(args = []) ?world src =
  let prog = Workloads.Runtime_lib.link ~name:"t" src in
  let sc = Concolic.Scenario.make ~name ~args ?world prog in
  let analysis =
    Bugrepro.Pipeline.analyze
      ~dynamic_budget:{ Concolic.Engine.max_runs = 40; max_time_s = 5.0 }
      ~test_scenario:sc prog
  in
  let plan = Bugrepro.Pipeline.plan analysis meth in
  let _, report = Bugrepro.Pipeline.field_run_report ~plan sc in
  (prog, plan, Option.get report)

let magic_src =
  "int main() {\n\
  \  int b[8];\n\
  \  arg(0, b, 8);\n\
  \  if (b[0] == 'B') {\n\
  \    if (b[1] == 'U') {\n\
  \      if (b[2] == 'G') { crash(); }\n\
  \    }\n\
  \  }\n\
  \  return 0;\n\
   }"

let file_src =
  "int main() {\n\
  \  int b[16];\n\
  \  int fd = open(\"data\", 0);\n\
  \  int n = read(fd, b, 16);\n\
  \  if (n > 2) {\n\
  \    if (b[0] == 'X') { crash(); }\n\
  \  }\n\
  \  return 0;\n\
   }"

let file_world contents =
  { Osmodel.World.default_config with files = [ ("data", contents) ] }

let find_sub hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i =
    if i + nl > hl then None
    else if String.sub hay i nl = needle then Some i
    else go (i + 1)
  in
  go 0

(* Start of the hex payload: v4 encoded reports carry "branch-enc: ",
   raw ones "branch-log: ". *)
let payload_hex_start wire =
  match find_sub wire "branch-enc: " with
  | Some pos -> pos + String.length "branch-enc: "
  | None ->
      Option.get (find_sub wire "branch-log: ")
      + String.length "branch-log: "

(* ------------------------------------------------------------------ *)
(* Salvage: the lenient reader on every truncation and on corruption *)

let test_salvage_truncation_sweep () =
  let _, _, report = record ~args:[ "BUG" ] magic_src in
  let wire = Wire.serialize report in
  let n = String.length wire in
  let prev_bits = ref (-1) in
  let torn_ok = ref 0 in
  for cut = 0 to n do
    let s = String.sub wire 0 cut in
    match Wire.deserialize_salvage s with
    | exception e ->
        Alcotest.failf "cut %d raised %s" cut (Printexc.to_string e)
    | Error (Wire.Unknown_version v) ->
        Alcotest.failf "cut %d misread a truncation as version %d" cut v
    | Error (Wire.Malformed _) -> ()
    | Ok (r, diag) ->
        check_bool "program preserved" true
          (r.Report.program = report.Report.program);
        check_bool "crash site preserved" true
          (Interp.Crash.equal_site r.Report.crash report.Report.crash);
        let bits = Report.nbits r in
        check_bool "salvaged bits monotone in the cut" true (bits >= !prev_bits);
        prev_bits := bits;
        if not diag.Wire.complete then incr torn_ok;
        (* a salvaged report must re-serialize past the strict reader *)
        (match Wire.deserialize_v (Wire.serialize r) with
        | Ok _ -> ()
        | Error e ->
            Alcotest.failf "cut %d: re-serialized salvage rejected: %s" cut
              (Wire.error_to_string e))
  done;
  (match Wire.deserialize_salvage wire with
  | Ok (_, diag) ->
      check_bool "the untorn input salvages as complete" true diag.Wire.complete
  | Error e -> Alcotest.failf "untorn input rejected: %s" (Wire.error_to_string e));
  check_bool "some torn prefixes were salvaged" true (!torn_ok > 0)

let test_salvage_corrupted_hex () =
  let _, _, report = record ~args:[ "BUG" ] magic_src in
  let wire = Wire.serialize report in
  let pos = payload_hex_start wire in
  let bad = Bytes.of_string wire in
  Bytes.set bad pos 'z';
  let bad = Bytes.to_string bad in
  (match Wire.deserialize_v bad with
  | Error (Wire.Malformed _) -> ()
  | Ok _ -> Alcotest.fail "strict reader accepted corrupted hex"
  | Error (Wire.Unknown_version _) -> Alcotest.fail "wrong strict error");
  match Wire.deserialize_salvage bad with
  | Ok (r, diag) ->
      check_bool "crash site survives hex corruption" true
        (Interp.Crash.equal_site r.Report.crash report.Report.crash);
      check_bool "lost bits are accounted" true (diag.Wire.lost_log_bits > 0)
  | Error e -> Alcotest.failf "salvage rejected: %s" (Wire.error_to_string e)

let test_salvage_unknown_version_fail_closed () =
  let _, _, report = record ~args:[ "BUG" ] magic_src in
  let wire = Wire.serialize report in
  let nl = String.index wire '\n' in
  let future =
    Wire.magic_prefix ^ "9" ^ String.sub wire nl (String.length wire - nl)
  in
  match Wire.deserialize_salvage future with
  | Error (Wire.Unknown_version 9) -> ()
  | Ok _ -> Alcotest.fail "salvage laundered an unknown version into a report"
  | Error e -> Alcotest.failf "wrong error: %s" (Wire.error_to_string e)

let test_ingest_strict_first () =
  let _, _, report = record ~args:[ "BUG" ] magic_src in
  let wire = Wire.serialize report in
  (match Ingest.of_string ~path:"a" wire with
  | Ok item -> check_bool "intact report is not salvaged" false (Ingest.salvaged item)
  | Error _ -> Alcotest.fail "intact report rejected");
  let torn =
    (* cut mid-hex: the claimed bit count now exceeds the log, which the
       strict reader rejects and salvage recovers *)
    String.sub wire 0 (payload_hex_start wire + 1)
  in
  (match Ingest.of_string ~path:"b" torn with
  | Ok item -> check_bool "torn report comes through salvage" true (Ingest.salvaged item)
  | Error _ -> Alcotest.fail "torn report rejected");
  match Ingest.of_string ~path:"c" "not a report" with
  | Error { Ingest.error = Wire.Malformed _; _ } -> ()
  | _ -> Alcotest.fail "garbage must be rejected"

(* ------------------------------------------------------------------ *)
(* Fingerprints and clustering *)

let test_fingerprint_dedup () =
  let _, _, ra = record ~name:"alpha" ~args:[ "BUG" ] magic_src in
  let _, _, rb = record ~name:"beta" ~world:(file_world "Xyz") file_src in
  let fa = Fingerprint.of_report ra and fb = Fingerprint.of_report rb in
  check_string "identical reports share a key" (Fingerprint.key fa)
    (Fingerprint.key (Fingerprint.of_report ra));
  check_bool "distinct crashes keep distinct keys" false
    (Fingerprint.equal fa fb);
  let wa = Wire.serialize ra and wb = Wire.serialize rb in
  let item p s =
    match Ingest.of_string ~path:p s with
    | Ok i -> i
    | Error _ -> Alcotest.failf "ingest %s failed" p
  in
  let clusters =
    Cluster.group [ item "r0" wa; item "r1" wa; item "r2" wb; item "r3" wa ]
  in
  check_int "two clusters" 2 (List.length clusters);
  let find prog =
    List.find (fun (c : Cluster.t) -> c.fp.Fingerprint.program = prog) clusters
  in
  check_int "alpha duplicates collapsed" 3 (Cluster.size (find "alpha"));
  check_int "beta alone" 1 (Cluster.size (find "beta"))

let test_cluster_prefers_intact_representative () =
  (* damage only the payload's tail: a dangling token header appended to
     the encoded stream is cut away by salvage, so every real bit (and
     hence the fingerprint sketch) survives — the torn copy lands in the
     intact copy's cluster, and must not be elected *)
  let _, _, rb = record ~name:"beta" ~world:(file_world "Xyz") file_src in
  let wb = Wire.serialize rb in
  let torn = String.sub wb 0 (String.length wb - 1) ^ "8c\n" in
  let item p s =
    match Ingest.of_string ~path:p s with
    | Ok i -> i
    | Error _ -> Alcotest.failf "ingest %s failed" p
  in
  (* the torn path sorts first: election must not be by path here *)
  match Cluster.group [ item "a-torn" torn; item "b-intact" wb ] with
  | [ c ] ->
      check_int "same fingerprint" 2 (Cluster.size c);
      check_string "intact member elected" "b-intact"
        c.Cluster.representative.Ingest.path;
      check_bool "cluster not counted as salvaged" false (Cluster.salvaged c)
  | cs -> Alcotest.failf "expected one cluster, got %d" (List.length cs)

(* ------------------------------------------------------------------ *)
(* S4: replaying a salvaged report is sound at every log truncation *)

let test_truncated_log_replay_sound () =
  let prog, plan, report = record ~args:[ "BUG" ] magic_src in
  let wire = Wire.serialize report in
  let start = payload_hex_start wire in
  let stop = String.index_from wire start '\n' in
  let exhausted = ref 0 in
  for cut = start to stop do
    let s = String.sub wire 0 cut in
    match Wire.deserialize_salvage s with
    | Error e -> Alcotest.failf "cut %d rejected: %s" cut (Wire.error_to_string e)
    | Ok (r, _) -> (
        match
          Replay.Guided.reproduce
            ~budget:{ Concolic.Engine.max_runs = 200; max_time_s = 10.0 }
            ~prog ~plan r
        with
        | exception e ->
            Alcotest.failf "cut %d: replay raised %s" cut (Printexc.to_string e)
        | Replay.Guided.Reproduced rr, stats ->
            check_bool "reproduced at the recorded site" true
              (Interp.Crash.equal_site rr.crash report.Report.crash);
            exhausted := !exhausted + stats.Replay.Guided.cases.log_exhausted
        | Replay.Guided.Not_reproduced _, stats ->
            exhausted := !exhausted + stats.Replay.Guided.cases.log_exhausted)
  done;
  check_bool "truncation exercised log-exhausted forking" true (!exhausted > 0)

(* ------------------------------------------------------------------ *)
(* S3: escalating budgets accumulate elapsed time honestly *)

let test_escalation_accumulates_elapsed () =
  let prog, _, _ = record ~args:[ "BUG" ] magic_src in
  let none =
    Instrument.Plan.make ~nbranches:(Minic.Program.nbranches prog)
      Instrument.Methods.No_instrumentation
  in
  let sc = Concolic.Scenario.make ~name:"t" ~args:[ "BUG" ] prog in
  let _, report = Bugrepro.Pipeline.field_run_report ~plan:none sc in
  let report = Option.get report in
  let item =
    match Ingest.of_string ~path:"r0" (Wire.serialize report) with
    | Ok i -> i
    | Error _ -> Alcotest.fail "ingest failed"
  in
  (* first rung: one run, guaranteed to come up empty on a pure search —
     the bug needs the second rung *)
  let policy =
    {
      Sched.default_policy with
      ladder =
        [
          { Concolic.Engine.max_runs = 1; max_time_s = 5.0 };
          { Concolic.Engine.max_runs = 400; max_time_s = 15.0 };
        ];
      deadline_s = 120.0;
    }
  in
  match
    Sched.run ~policy ~resolve:(fun _ -> Ok (prog, none)) (Cluster.group [ item ])
  with
  | [ r ] ->
      check_bool "reproduced on the second rung" true
        (match r.Sched.status with Sched.Reproduced _ -> true | _ -> false);
      check_int "both rungs tried" 2 r.Sched.rungs;
      check_int "per-rung breakdown matches" 2 (List.length r.Sched.rung_elapsed_s);
      let sum = List.fold_left ( +. ) 0.0 r.Sched.rung_elapsed_s in
      check_bool "cumulative elapsed sums every rung" true
        (Float.abs (r.Sched.elapsed_s -. sum) < 1e-6);
      check_bool "a retry never reports less than its predecessors" true
        (r.Sched.elapsed_s >= List.hd r.Sched.rung_elapsed_s);
      check_bool "runs accumulate across rungs" true (r.Sched.runs > 1)
  | rs -> Alcotest.failf "expected one cluster result, got %d" (List.length rs)

(* ------------------------------------------------------------------ *)
(* Worker count must not change the summary (timing fields aside) *)

let test_jobs_invariant_summary () =
  let progA, planA, ra = record ~name:"alpha" ~args:[ "BUG" ] magic_src in
  let progB, planB, rb = record ~name:"beta" ~world:(file_world "Xyz") file_src in
  let wa = Wire.serialize ra and wb = Wire.serialize rb in
  let torn = String.sub wb 0 (Option.get (find_sub wb "syscalls: ") + 12) in
  let texts =
    [ ("r0.report", wa); ("r1.report", wa); ("r2.report", wb);
      ("r3.report", torn); ("r4.report", wa) ]
  in
  let items =
    List.map
      (fun (p, s) ->
        match Ingest.of_string ~path:p s with
        | Ok i -> i
        | Error _ -> Alcotest.failf "ingest %s failed" p)
      texts
  in
  let resolve (c : Cluster.t) =
    match c.Cluster.fp.Fingerprint.program with
    | "alpha" -> Ok (progA, planA)
    | "beta" -> Ok (progB, planB)
    | p -> Error ("unknown program " ^ p)
  in
  let summarize jobs =
    let policy = { Sched.default_policy with jobs; deadline_s = 120.0 } in
    run_items ~policy ~resolve items
  in
  let s1 = summarize 1 in
  check_bool "duplicates collapsed" true (s1.Summary.dedup_ratio < 1.0);
  check_bool "salvage path used" true (s1.Summary.salvaged > 0);
  check_int "every cluster reproduced"
    (List.length s1.Summary.clusters)
    (s1.Summary.reproduced + s1.Summary.salvaged_reproduced);
  let s4 = summarize 4 in
  check_string "jobs=1 and jobs=4 summaries agree"
    (Summary.to_json ~timing:false s1)
    (Summary.to_json ~timing:false s4)

(* A mixed-version batch — v4 encoded reports alongside v1/v2/v3 raw
   downgrades of the same crashes — must triage to exactly the summary an
   all-raw batch produces: the wire reader normalizes every accepted
   version to the same report, and raw/encoded twins fingerprint
   identically. *)

let test_mixed_version_batch_matches_all_raw () =
  let progA, planA, ra = record ~name:"alpha" ~args:[ "BUG" ] magic_src in
  let progB, planB, rb = record ~name:"beta" ~world:(file_world "Xyz") file_src in
  let raw_wire r =
    Wire.serialize
      { r with Report.branch_log = Report.Raw (Report.raw_log r) }
  in
  let with_version v wire =
    let nl = String.index wire '\n' in
    Printf.sprintf "bugrepro-report/%d%s" v
      (String.sub wire nl (String.length wire - nl))
  in
  let enc_a = Wire.serialize ra and enc_b = Wire.serialize rb in
  check_bool "fixture ships encoded payloads" true
    (find_sub enc_a "branch-enc: " <> None);
  let mixed =
    [ enc_a; with_version 3 (raw_wire ra); with_version 1 (raw_wire ra);
      enc_b; with_version 2 (raw_wire rb) ]
  in
  let all_raw =
    [ raw_wire ra; raw_wire ra; raw_wire ra; raw_wire rb; raw_wire rb ]
  in
  let items texts =
    List.mapi
      (fun i s ->
        match Ingest.of_string ~path:(Printf.sprintf "r%d.report" i) s with
        | Ok it -> it
        | Error _ -> Alcotest.failf "ingest r%d failed" i)
      texts
  in
  let resolve (c : Cluster.t) =
    match c.Cluster.fp.Fingerprint.program with
    | "alpha" -> Ok (progA, planA)
    | "beta" -> Ok (progB, planB)
    | p -> Error ("unknown program " ^ p)
  in
  let policy = { Sched.default_policy with Sched.deadline_s = 120.0 } in
  let sm = run_items ~policy ~resolve (items mixed) in
  let sr = run_items ~policy ~resolve (items all_raw) in
  check_int "two clusters" 2 (List.length sm.Summary.clusters);
  check_string "mixed-version batch summarizes like all-raw"
    (Summary.to_json ~timing:false sr)
    (Summary.to_json ~timing:false sm)

(* ------------------------------------------------------------------ *)
(* Streaming service: arrival-order invariance, restart survival,
   bounded overload with deterministic shedding, incremental ingestion *)

module Service = Triage.Service

let service_policy = { Sched.default_policy with Sched.deadline_s = 120.0 }

(* the jobs-invariant fixture, shared by the service tests: five reports
   over two distinct crashes, one torn *)
let service_fixture () =
  let progA, planA, ra = record ~name:"alpha" ~args:[ "BUG" ] magic_src in
  let progB, planB, rb = record ~name:"beta" ~world:(file_world "Xyz") file_src in
  let wa = Wire.serialize ra and wb = Wire.serialize rb in
  let torn = String.sub wb 0 (Option.get (find_sub wb "syscalls: ") + 12) in
  let texts =
    [ ("r0.report", wa); ("r1.report", wa); ("r2.report", wb);
      ("r3.report", torn); ("r4.report", wa) ]
  in
  let items =
    List.map
      (fun (p, s) ->
        match Ingest.of_string ~path:p s with
        | Ok i -> i
        | Error _ -> Alcotest.failf "ingest %s failed" p)
      texts
  in
  let resolve (c : Cluster.t) =
    match c.Cluster.fp.Fingerprint.program with
    | "alpha" -> Ok (progA, planA)
    | "beta" -> Ok (progB, planB)
    | p -> Error ("unknown program " ^ p)
  in
  (items, wa, resolve)

let open_service ?telemetry ~config resolve =
  match Service.open_ ?telemetry ~config ~resolve () with
  | Ok svc -> svc
  | Error e -> Alcotest.failf "open: %s" (Triage.Index.error_to_string e)

(* a scratch directory under the system temp dir; one flat level *)
let fresh_dir () =
  let f = Filename.temp_file "triage-test" "" in
  Sys.remove f;
  f

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let test_service_matches_batch () =
  let items, _, resolve = service_fixture () in
  let batch = run_items ~policy:service_policy ~resolve items in
  let shuffled = Array.of_list items in
  Osmodel.Rng.shuffle (Osmodel.Rng.create 7) shuffled;
  let config =
    {
      Service.default_config with
      Service.policy = service_policy;
      queue_capacity = 8;
      burst = 1;
      window = 16;
      eager = true;
    }
  in
  let svc = open_service ~config resolve in
  Array.iter
    (fun it ->
      match Service.submit_item svc it with
      | Service.Queued -> ()
      | _ -> Alcotest.fail "in-capacity submission refused")
    shuffled;
  while Service.queue_depth svc > 0 do
    ignore (Service.tick svc)
  done;
  let snap = Service.snapshot svc in
  check_int "every report clustered" (List.length items) snap.Service.processed;
  check_bool "duplicates collapsed" true (snap.Service.dedup_ratio < 1.0);
  let streamed = Service.drain svc in
  Service.close svc;
  check_string "shuffled one-at-a-time streaming equals batch"
    (Summary.to_json ~timing:false batch)
    (Summary.to_json ~timing:false streamed)

let test_service_restart_survival () =
  let items, _, resolve = service_fixture () in
  let batch = run_items ~policy:service_policy ~resolve items in
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let config =
        {
          Service.default_config with
          Service.policy = service_policy;
          queue_capacity = 8;
          eager = false;
          index_dir = Some dir;
          index_shards = 4;
        }
      in
      (* first incarnation: ingest three reports, then die without drain *)
      let first, rest =
        match items with
        | a :: b :: c :: rest -> ([ a; b; c ], rest)
        | _ -> Alcotest.fail "fixture too small"
      in
      let svc1 = open_service ~config resolve in
      List.iter (fun it -> ignore (Service.submit_item svc1 it)) first;
      while Service.queue_depth svc1 > 0 do
        ignore (Service.tick svc1)
      done;
      Service.close svc1;
      (* second incarnation: buckets rebuild from the index *)
      let tel = Telemetry.create () in
      let svc2 = open_service ~telemetry:tel ~config resolve in
      let snap = Service.snapshot svc2 in
      check_int "reloaded reports recluster" 3 snap.Service.processed;
      check_int "recovery is counted" 3
        (Telemetry.Metrics.counter_value tel "triage.service.recovered");
      List.iter (fun it -> ignore (Service.submit_item svc2 it)) rest;
      while Service.queue_depth svc2 > 0 do
        ignore (Service.tick svc2)
      done;
      let streamed = Service.drain svc2 in
      Service.close svc2;
      check_string "summary survives a mid-stream restart"
        (Summary.to_json ~timing:false batch)
        (Summary.to_json ~timing:false streamed))

let test_service_overload_determinism () =
  let items, _, resolve = service_fixture () in
  (* 40 submissions over a capacity-4 queue with no ticks: overload is
     guaranteed; the same stream must shed the same reports every time *)
  let stream = List.concat (List.init 8 (fun _ -> items)) in
  let run drop =
    let tel = Telemetry.create () in
    let config =
      {
        Service.default_config with
        Service.policy = service_policy;
        queue_capacity = 4;
        drop;
        eager = false;
      }
    in
    let svc = open_service ~telemetry:tel ~config resolve in
    let outcomes =
      List.map
        (fun it ->
          match Service.submit_item svc it with
          | Service.Queued -> 'q'
          | Service.Dropped _ -> 'd'
          | Service.Rejected _ -> 'r')
        stream
      |> List.to_seq |> String.of_seq
    in
    let snap = Service.snapshot svc in
    check_bool "the queue never exceeds its capacity" true
      (snap.Service.queued <= 4);
    check_int "drops are counted in telemetry" snap.Service.dropped
      (Telemetry.Metrics.counter_value tel "triage.service.dropped");
    Service.close svc;
    (outcomes, snap.Service.dropped)
  in
  let oc1, d1 = run Service.Reject_new in
  check_string "reject-new fills the queue then refuses"
    ("qqqq" ^ String.make 36 'd') oc1;
  check_int "reject-new counts every refusal" 36 d1;
  let oc2, d2 = run Service.Drop_oldest in
  check_string "drop-oldest always admits (evicting)" (String.make 40 'q') oc2;
  check_int "drop-oldest counts every eviction" 36 d2;
  let oc3, d3 = run (Service.Sample 0.5) in
  let oc3', d3' = run (Service.Sample 0.5) in
  check_string "seeded sampling is deterministic" oc3 oc3';
  check_int "and so is its drop count" d3 d3';
  check_bool "sampling actually shed something" true (d3 > 0)

let test_ingest_of_file_unreadable () =
  let path = Filename.concat (fresh_dir ()) "r0.report" in
  match Ingest.of_file path with
  | Error { Ingest.path = p; error = Wire.Malformed msg } ->
      check_string "provenance preserved" path p;
      check_bool "marked unreadable" true (find_sub msg "unreadable: " = Some 0);
      check_bool "carries the OS error text" true
        (find_sub msg "No such file" <> None)
  | Error _ -> Alcotest.fail "unreadable file must reject as Malformed"
  | Ok _ -> Alcotest.fail "unreadable file must be rejected"

let test_ingest_scanner_poll () =
  let _, wa, _ = service_fixture () in
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let sc = Ingest.scanner dir in
      (* polls before the directory exists return nothing *)
      (match Ingest.poll sc with
      | [], [] -> ()
      | _ -> Alcotest.fail "missing directory must yield nothing");
      Sys.mkdir dir 0o755;
      write_file (Filename.concat dir "a.report") wa;
      write_file (Filename.concat dir "b.report") "not a report";
      write_file (Filename.concat dir "skipped.txt") wa;
      let is1, rj1 = Ingest.poll sc in
      check_int "one new report ingested" 1 (List.length is1);
      check_string "in sorted order" "a.report"
        (Filename.basename (List.hd is1).Ingest.path);
      check_int "the damaged file is rejected" 1 (List.length rj1);
      (* a damaged file is rejected once, not on every poll *)
      (match Ingest.poll sc with
      | [], [] -> ()
      | _ -> Alcotest.fail "a quiet directory must yield nothing");
      write_file (Filename.concat dir "c.report") wa;
      let is2, rj2 = Ingest.poll sc in
      check_int "only the new arrival is offered" 1 (List.length is2);
      check_string "and it is the new file" "c.report"
        (Filename.basename (List.hd is2).Ingest.path);
      check_int "no fresh rejections" 0 (List.length rj2);
      Alcotest.(check (list string))
        "seen remembers every offered name"
        [ "a.report"; "b.report"; "c.report" ]
        (Ingest.seen sc))

(* A file scanned mid-write is salvaged, then re-offered once the writer
   finishes: the intact version must flow through and supersede the torn
   one (the pre-fix scanner marked the name seen forever on first sight,
   burying the settled file). *)
let test_ingest_scanner_rescans_settled_write () =
  let _, wa, _ = service_fixture () in
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      Sys.mkdir dir 0o755;
      let path = Filename.concat dir "r.report" in
      (* the writer has flushed half the report when the scanner polls *)
      write_file path (String.sub wa 0 (payload_hex_start wa + 1));
      let sc = Ingest.scanner dir in
      let is1, rj1 = Ingest.poll sc in
      check_int "torn file ingested" 1 (List.length is1);
      check_int "not rejected" 0 (List.length rj1);
      let torn_item = List.hd is1 in
      check_bool "through the salvage path" true (Ingest.salvaged torn_item);
      (* stat unchanged: the damaged verdict stands without a re-read *)
      (match Ingest.poll sc with
      | [], [] -> ()
      | _ -> Alcotest.fail "an unchanged torn file must not be re-offered");
      (* the writer finishes *)
      write_file path wa;
      let is2, rj2 = Ingest.poll sc in
      check_int "settled file re-offered" 1 (List.length is2);
      check_int "still not rejected" 0 (List.length rj2);
      let intact_item = List.hd is2 in
      check_bool "second ingest is the intact version" false
        (Ingest.salvaged intact_item);
      check_bool "the intact version supersedes the torn head" true
        (Cluster.better intact_item torn_item);
      (* an intact ingest is settled: never offered again *)
      (match Ingest.poll sc with
      | [], [] -> ()
      | _ -> Alcotest.fail "a settled file must not be re-offered"))

(* A rejected (garbage) file is also re-offered once its content moves —
   and a damaged persistent index is an [Error] from the batch wrapper,
   not an assertion failure. *)
let test_run_items_damaged_index_error () =
  let items, _, resolve = service_fixture () in
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      Sys.mkdir dir 0o755;
      write_file (Filename.concat dir "shard-000.idx") "not an index\n";
      match
        Triage.run_items ~policy:service_policy ~index_dir:dir ~resolve items
      with
      | Error (Triage.Index.Malformed _) -> ()
      | Error (Triage.Index.Unknown_version _) ->
          Alcotest.fail "bad magic must be Malformed, not Unknown_version"
      | Ok _ -> Alcotest.fail "a damaged index must not open")

(* Run-bounded rungs (the service default): a policy whose wall-clock
   window has already expired still reproduces every cluster, because
   only run budgets bound the climb; the wall-clock opt-in flips the
   same clusters to timed_out.  This is the borderline-cluster flap the
   wall-clock ladder suffered on a shared core, pinned at its extreme. *)
let test_service_rungs_run_bounded () =
  let items, _, resolve = service_fixture () in
  let starved = { service_policy with Sched.deadline_s = 0.0 } in
  let run wall_rungs =
    let config =
      {
        Service.default_config with
        Service.policy = starved;
        queue_capacity = 8;
        eager = false;
        wall_rungs;
      }
    in
    let svc = open_service ~config resolve in
    List.iter (fun it -> ignore (Service.submit_item svc it)) items;
    let s = Service.drain svc in
    let results = Service.cluster_results svc in
    Service.close svc;
    (s, results)
  in
  let bounded, results = run false in
  check_int "run-bounded rungs reproduce every cluster"
    (List.length bounded.Summary.clusters)
    (bounded.Summary.reproduced + bounded.Summary.salvaged_reproduced);
  check_int "no wall-clock flap" 0 bounded.Summary.timed_out;
  check_int "cluster_results covers every cluster after drain"
    (List.length bounded.Summary.clusters)
    (List.length results);
  let wall, _ = run true in
  check_bool "the wall-clock ladder starves under the same rung" true
    (wall.Summary.timed_out > 0)

(* Under run-bounded rungs the worker count cannot flip a verdict: the
   same stream drained at jobs=1 and jobs=4 renders byte-identical
   timing-stripped summaries, eager climbing included. *)
let test_service_rungs_jobs_invariant () =
  let items, _, resolve = service_fixture () in
  let summarize jobs =
    let policy = { service_policy with Sched.jobs } in
    let config =
      {
        Service.default_config with
        Service.policy = policy;
        queue_capacity = 8;
        burst = 1;
        eager = true;
      }
    in
    let svc = open_service ~config resolve in
    List.iter (fun it -> ignore (Service.submit_item svc it)) items;
    while Service.queue_depth svc > 0 do
      ignore (Service.tick svc)
    done;
    let s = Service.drain svc in
    Service.close svc;
    s
  in
  let s1 = summarize 1 and s4 = summarize 4 in
  check_string "run-bounded service summaries are jobs-invariant"
    (Summary.to_json ~timing:false s1)
    (Summary.to_json ~timing:false s4)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "triage"
    [
      ( "salvage",
        [
          Alcotest.test_case "truncation sweep" `Quick test_salvage_truncation_sweep;
          Alcotest.test_case "corrupted hex" `Quick test_salvage_corrupted_hex;
          Alcotest.test_case "unknown version stays closed" `Quick
            test_salvage_unknown_version_fail_closed;
          Alcotest.test_case "strict first" `Quick test_ingest_strict_first;
        ] );
      ( "dedup",
        [
          Alcotest.test_case "fingerprint clustering" `Quick test_fingerprint_dedup;
          Alcotest.test_case "intact representative wins" `Quick
            test_cluster_prefers_intact_representative;
        ] );
      ( "replay",
        [
          Alcotest.test_case "salvaged log replay is sound" `Quick
            test_truncated_log_replay_sound;
          Alcotest.test_case "escalation accounting" `Quick
            test_escalation_accumulates_elapsed;
          Alcotest.test_case "jobs-invariant summary" `Quick
            test_jobs_invariant_summary;
          Alcotest.test_case "mixed wire versions summarize like all-raw"
            `Quick test_mixed_version_batch_matches_all_raw;
        ] );
      ( "service",
        [
          Alcotest.test_case "streaming equals batch" `Quick
            test_service_matches_batch;
          Alcotest.test_case "restart survival" `Quick
            test_service_restart_survival;
          Alcotest.test_case "overload shedding is deterministic" `Quick
            test_service_overload_determinism;
          Alcotest.test_case "damaged index is an error, not an assert"
            `Quick test_run_items_damaged_index_error;
          Alcotest.test_case "rungs are run-bounded by default" `Quick
            test_service_rungs_run_bounded;
          Alcotest.test_case "run-bounded rungs are jobs-invariant" `Quick
            test_service_rungs_jobs_invariant;
        ] );
      ( "ingest",
        [
          Alcotest.test_case "unreadable file carries the OS error" `Quick
            test_ingest_of_file_unreadable;
          Alcotest.test_case "scanner polls incrementally" `Quick
            test_ingest_scanner_poll;
          Alcotest.test_case "scanner re-offers a settled mid-write file"
            `Quick test_ingest_scanner_rescans_settled_write;
        ] );
    ]
