(* Tests for the triage subsystem (§5f): torn-report salvage, fingerprint
   dedup, escalating-budget scheduling with honest elapsed-time accounting,
   and the deterministic summary (jobs=1 vs jobs=4). *)

module Wire = Instrument.Wire
module Report = Instrument.Report
module Ingest = Triage.Ingest
module Cluster = Triage.Cluster
module Fingerprint = Triage.Fingerprint
module Sched = Triage.Sched
module Summary = Triage.Summary

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* full pipeline on a small program: returns (prog, plan, report) *)
let record ?(name = "t") ?(meth = Instrument.Methods.All_branches)
    ?(args = []) ?world src =
  let prog = Workloads.Runtime_lib.link ~name:"t" src in
  let sc = Concolic.Scenario.make ~name ~args ?world prog in
  let analysis =
    Bugrepro.Pipeline.analyze
      ~dynamic_budget:{ Concolic.Engine.max_runs = 40; max_time_s = 5.0 }
      ~test_scenario:sc prog
  in
  let plan = Bugrepro.Pipeline.plan analysis meth in
  let _, report = Bugrepro.Pipeline.field_run_report ~plan sc in
  (prog, plan, Option.get report)

let magic_src =
  "int main() {\n\
  \  int b[8];\n\
  \  arg(0, b, 8);\n\
  \  if (b[0] == 'B') {\n\
  \    if (b[1] == 'U') {\n\
  \      if (b[2] == 'G') { crash(); }\n\
  \    }\n\
  \  }\n\
  \  return 0;\n\
   }"

let file_src =
  "int main() {\n\
  \  int b[16];\n\
  \  int fd = open(\"data\", 0);\n\
  \  int n = read(fd, b, 16);\n\
  \  if (n > 2) {\n\
  \    if (b[0] == 'X') { crash(); }\n\
  \  }\n\
  \  return 0;\n\
   }"

let file_world contents =
  { Osmodel.World.default_config with files = [ ("data", contents) ] }

let find_sub hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i =
    if i + nl > hl then None
    else if String.sub hay i nl = needle then Some i
    else go (i + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Salvage: the lenient reader on every truncation and on corruption *)

let test_salvage_truncation_sweep () =
  let _, _, report = record ~args:[ "BUG" ] magic_src in
  let wire = Wire.serialize report in
  let n = String.length wire in
  let prev_bits = ref (-1) in
  let torn_ok = ref 0 in
  for cut = 0 to n do
    let s = String.sub wire 0 cut in
    match Wire.deserialize_salvage s with
    | exception e ->
        Alcotest.failf "cut %d raised %s" cut (Printexc.to_string e)
    | Error (Wire.Unknown_version v) ->
        Alcotest.failf "cut %d misread a truncation as version %d" cut v
    | Error (Wire.Malformed _) -> ()
    | Ok (r, diag) ->
        check_bool "program preserved" true
          (r.Report.program = report.Report.program);
        check_bool "crash site preserved" true
          (Interp.Crash.equal_site r.Report.crash report.Report.crash);
        let bits = r.Report.branch_log.Instrument.Branch_log.nbits in
        check_bool "salvaged bits monotone in the cut" true (bits >= !prev_bits);
        prev_bits := bits;
        if not diag.Wire.complete then incr torn_ok;
        (* a salvaged report must re-serialize past the strict reader *)
        (match Wire.deserialize_v (Wire.serialize r) with
        | Ok _ -> ()
        | Error e ->
            Alcotest.failf "cut %d: re-serialized salvage rejected: %s" cut
              (Wire.error_to_string e))
  done;
  (match Wire.deserialize_salvage wire with
  | Ok (_, diag) ->
      check_bool "the untorn input salvages as complete" true diag.Wire.complete
  | Error e -> Alcotest.failf "untorn input rejected: %s" (Wire.error_to_string e));
  check_bool "some torn prefixes were salvaged" true (!torn_ok > 0)

let test_salvage_corrupted_hex () =
  let _, _, report = record ~args:[ "BUG" ] magic_src in
  let wire = Wire.serialize report in
  let pos = Option.get (find_sub wire "branch-log: ") + String.length "branch-log: " in
  let bad = Bytes.of_string wire in
  Bytes.set bad pos 'z';
  let bad = Bytes.to_string bad in
  (match Wire.deserialize_v bad with
  | Error (Wire.Malformed _) -> ()
  | Ok _ -> Alcotest.fail "strict reader accepted corrupted hex"
  | Error (Wire.Unknown_version _) -> Alcotest.fail "wrong strict error");
  match Wire.deserialize_salvage bad with
  | Ok (r, diag) ->
      check_bool "crash site survives hex corruption" true
        (Interp.Crash.equal_site r.Report.crash report.Report.crash);
      check_bool "lost bits are accounted" true (diag.Wire.lost_log_bits > 0)
  | Error e -> Alcotest.failf "salvage rejected: %s" (Wire.error_to_string e)

let test_salvage_unknown_version_fail_closed () =
  let _, _, report = record ~args:[ "BUG" ] magic_src in
  let wire = Wire.serialize report in
  let nl = String.index wire '\n' in
  let future =
    Wire.magic_prefix ^ "9" ^ String.sub wire nl (String.length wire - nl)
  in
  match Wire.deserialize_salvage future with
  | Error (Wire.Unknown_version 9) -> ()
  | Ok _ -> Alcotest.fail "salvage laundered an unknown version into a report"
  | Error e -> Alcotest.failf "wrong error: %s" (Wire.error_to_string e)

let test_ingest_strict_first () =
  let _, _, report = record ~args:[ "BUG" ] magic_src in
  let wire = Wire.serialize report in
  (match Ingest.of_string ~path:"a" wire with
  | Ok item -> check_bool "intact report is not salvaged" false (Ingest.salvaged item)
  | Error _ -> Alcotest.fail "intact report rejected");
  let torn =
    (* cut mid-hex: the claimed bit count now exceeds the log, which the
       strict reader rejects and salvage recovers *)
    String.sub wire 0
      (Option.get (find_sub wire "branch-log: ") + String.length "branch-log: " + 1)
  in
  (match Ingest.of_string ~path:"b" torn with
  | Ok item -> check_bool "torn report comes through salvage" true (Ingest.salvaged item)
  | Error _ -> Alcotest.fail "torn report rejected");
  match Ingest.of_string ~path:"c" "not a report" with
  | Error { Ingest.error = Wire.Malformed _; _ } -> ()
  | _ -> Alcotest.fail "garbage must be rejected"

(* ------------------------------------------------------------------ *)
(* Fingerprints and clustering *)

let test_fingerprint_dedup () =
  let _, _, ra = record ~name:"alpha" ~args:[ "BUG" ] magic_src in
  let _, _, rb = record ~name:"beta" ~world:(file_world "Xyz") file_src in
  let fa = Fingerprint.of_report ra and fb = Fingerprint.of_report rb in
  check_string "identical reports share a key" (Fingerprint.key fa)
    (Fingerprint.key (Fingerprint.of_report ra));
  check_bool "distinct crashes keep distinct keys" false
    (Fingerprint.equal fa fb);
  let wa = Wire.serialize ra and wb = Wire.serialize rb in
  let item p s =
    match Ingest.of_string ~path:p s with
    | Ok i -> i
    | Error _ -> Alcotest.failf "ingest %s failed" p
  in
  let clusters =
    Cluster.group [ item "r0" wa; item "r1" wa; item "r2" wb; item "r3" wa ]
  in
  check_int "two clusters" 2 (List.length clusters);
  let find prog =
    List.find (fun (c : Cluster.t) -> c.fp.Fingerprint.program = prog) clusters
  in
  check_int "alpha duplicates collapsed" 3 (Cluster.size (find "alpha"));
  check_int "beta alone" 1 (Cluster.size (find "beta"))

let test_cluster_prefers_intact_representative () =
  (* tear only the syscall tail: the branch log survives, so the torn copy
     lands in the intact copy's cluster — and must not be elected *)
  let _, _, rb = record ~name:"beta" ~world:(file_world "Xyz") file_src in
  let wb = Wire.serialize rb in
  let torn = String.sub wb 0 (Option.get (find_sub wb "syscalls: ") + 12) in
  let item p s =
    match Ingest.of_string ~path:p s with
    | Ok i -> i
    | Error _ -> Alcotest.failf "ingest %s failed" p
  in
  (* the torn path sorts first: election must not be by path here *)
  match Cluster.group [ item "a-torn" torn; item "b-intact" wb ] with
  | [ c ] ->
      check_int "same fingerprint" 2 (Cluster.size c);
      check_string "intact member elected" "b-intact"
        c.Cluster.representative.Ingest.path;
      check_bool "cluster not counted as salvaged" false (Cluster.salvaged c)
  | cs -> Alcotest.failf "expected one cluster, got %d" (List.length cs)

(* ------------------------------------------------------------------ *)
(* S4: replaying a salvaged report is sound at every log truncation *)

let test_truncated_log_replay_sound () =
  let prog, plan, report = record ~args:[ "BUG" ] magic_src in
  let wire = Wire.serialize report in
  let start =
    Option.get (find_sub wire "branch-log: ") + String.length "branch-log: "
  in
  let stop = String.index_from wire start '\n' in
  let exhausted = ref 0 in
  for cut = start to stop do
    let s = String.sub wire 0 cut in
    match Wire.deserialize_salvage s with
    | Error e -> Alcotest.failf "cut %d rejected: %s" cut (Wire.error_to_string e)
    | Ok (r, _) -> (
        match
          Replay.Guided.reproduce
            ~budget:{ Concolic.Engine.max_runs = 200; max_time_s = 10.0 }
            ~prog ~plan r
        with
        | exception e ->
            Alcotest.failf "cut %d: replay raised %s" cut (Printexc.to_string e)
        | Replay.Guided.Reproduced rr, stats ->
            check_bool "reproduced at the recorded site" true
              (Interp.Crash.equal_site rr.crash report.Report.crash);
            exhausted := !exhausted + stats.Replay.Guided.cases.log_exhausted
        | Replay.Guided.Not_reproduced _, stats ->
            exhausted := !exhausted + stats.Replay.Guided.cases.log_exhausted)
  done;
  check_bool "truncation exercised log-exhausted forking" true (!exhausted > 0)

(* ------------------------------------------------------------------ *)
(* S3: escalating budgets accumulate elapsed time honestly *)

let test_escalation_accumulates_elapsed () =
  let prog, _, _ = record ~args:[ "BUG" ] magic_src in
  let none =
    Instrument.Plan.make ~nbranches:(Minic.Program.nbranches prog)
      Instrument.Methods.No_instrumentation
  in
  let sc = Concolic.Scenario.make ~name:"t" ~args:[ "BUG" ] prog in
  let _, report = Bugrepro.Pipeline.field_run_report ~plan:none sc in
  let report = Option.get report in
  let item =
    match Ingest.of_string ~path:"r0" (Wire.serialize report) with
    | Ok i -> i
    | Error _ -> Alcotest.fail "ingest failed"
  in
  (* first rung: one run, guaranteed to come up empty on a pure search —
     the bug needs the second rung *)
  let policy =
    {
      Sched.default_policy with
      ladder =
        [
          { Concolic.Engine.max_runs = 1; max_time_s = 5.0 };
          { Concolic.Engine.max_runs = 400; max_time_s = 15.0 };
        ];
      deadline_s = 120.0;
    }
  in
  match
    Sched.run ~policy ~resolve:(fun _ -> Ok (prog, none)) (Cluster.group [ item ])
  with
  | [ r ] ->
      check_bool "reproduced on the second rung" true
        (match r.Sched.status with Sched.Reproduced _ -> true | _ -> false);
      check_int "both rungs tried" 2 r.Sched.rungs;
      check_int "per-rung breakdown matches" 2 (List.length r.Sched.rung_elapsed_s);
      let sum = List.fold_left ( +. ) 0.0 r.Sched.rung_elapsed_s in
      check_bool "cumulative elapsed sums every rung" true
        (Float.abs (r.Sched.elapsed_s -. sum) < 1e-6);
      check_bool "a retry never reports less than its predecessors" true
        (r.Sched.elapsed_s >= List.hd r.Sched.rung_elapsed_s);
      check_bool "runs accumulate across rungs" true (r.Sched.runs > 1)
  | rs -> Alcotest.failf "expected one cluster result, got %d" (List.length rs)

(* ------------------------------------------------------------------ *)
(* Worker count must not change the summary (timing fields aside) *)

let test_jobs_invariant_summary () =
  let progA, planA, ra = record ~name:"alpha" ~args:[ "BUG" ] magic_src in
  let progB, planB, rb = record ~name:"beta" ~world:(file_world "Xyz") file_src in
  let wa = Wire.serialize ra and wb = Wire.serialize rb in
  let torn = String.sub wb 0 (Option.get (find_sub wb "syscalls: ") + 12) in
  let texts =
    [ ("r0.report", wa); ("r1.report", wa); ("r2.report", wb);
      ("r3.report", torn); ("r4.report", wa) ]
  in
  let items =
    List.map
      (fun (p, s) ->
        match Ingest.of_string ~path:p s with
        | Ok i -> i
        | Error _ -> Alcotest.failf "ingest %s failed" p)
      texts
  in
  let resolve (c : Cluster.t) =
    match c.Cluster.fp.Fingerprint.program with
    | "alpha" -> Ok (progA, planA)
    | "beta" -> Ok (progB, planB)
    | p -> Error ("unknown program " ^ p)
  in
  let summarize jobs =
    let policy = { Sched.default_policy with jobs; deadline_s = 120.0 } in
    Triage.run_items ~policy ~resolve items
  in
  let s1 = summarize 1 in
  check_bool "duplicates collapsed" true (s1.Summary.dedup_ratio < 1.0);
  check_bool "salvage path used" true (s1.Summary.salvaged > 0);
  check_int "every cluster reproduced"
    (List.length s1.Summary.clusters)
    (s1.Summary.reproduced + s1.Summary.salvaged_reproduced);
  let s4 = summarize 4 in
  check_string "jobs=1 and jobs=4 summaries agree"
    (Summary.to_json ~timing:false s1)
    (Summary.to_json ~timing:false s4)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "triage"
    [
      ( "salvage",
        [
          Alcotest.test_case "truncation sweep" `Quick test_salvage_truncation_sweep;
          Alcotest.test_case "corrupted hex" `Quick test_salvage_corrupted_hex;
          Alcotest.test_case "unknown version stays closed" `Quick
            test_salvage_unknown_version_fail_closed;
          Alcotest.test_case "strict first" `Quick test_ingest_strict_first;
        ] );
      ( "dedup",
        [
          Alcotest.test_case "fingerprint clustering" `Quick test_fingerprint_dedup;
          Alcotest.test_case "intact representative wins" `Quick
            test_cluster_prefers_intact_representative;
        ] );
      ( "replay",
        [
          Alcotest.test_case "salvaged log replay is sound" `Quick
            test_truncated_log_replay_sound;
          Alcotest.test_case "escalation accounting" `Quick
            test_escalation_accumulates_elapsed;
          Alcotest.test_case "jobs-invariant summary" `Quick
            test_jobs_invariant_summary;
        ] );
    ]
