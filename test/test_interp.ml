(* Tests for the evaluator and the simulated OS: semantics, crashes,
   builtins, I/O, cost accounting, hooks. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let compile ?(libs = []) src = Minic.Program.of_sources ~app:src ~libs ()

let run ?(args = []) ?(world = Osmodel.World.default_config) ?(max_steps = 1_000_000)
    ?(hooks = Interp.Eval.no_hooks) src =
  let prog = compile src in
  let _w, handle = Osmodel.World.kernel world in
  let cfg =
    {
      Interp.Eval.inputs = Interp.Inputs.of_strings args;
      kernel = Interp.Kernel.of_world handle;
      hooks;
      max_steps;
      scheduler = None;
    }
  in
  Interp.Eval.run prog cfg

let exit_code (r : Interp.Eval.result) =
  match r.outcome with
  | Interp.Crash.Exit n -> n
  | o -> Alcotest.failf "expected exit, got %s" (Interp.Crash.outcome_to_string o)

let crash_kind (r : Interp.Eval.result) =
  match r.outcome with
  | Interp.Crash.Crash c -> c.kind
  | o -> Alcotest.failf "expected crash, got %s" (Interp.Crash.outcome_to_string o)

(* ------------------------------------------------------------------ *)
(* Basic semantics *)

let test_arith () =
  check_int "17 % 5 + 3 * 4" 14 (exit_code (run "int main() { return 17 % 5 + 3 * 4; }"))

let test_division_truncates_toward_zero () =
  check_int "-7/2" (-3) (exit_code (run "int main() { return -7 / 2; }"));
  check_int "-7%2" (-1) (exit_code (run "int main() { return -7 % 2; }"))

let test_logical_strictness_result () =
  check_int "0 && x -> 0" 0 (exit_code (run "int main() { return 0 && 9; }"));
  check_int "nonzero coerced" 1 (exit_code (run "int main() { return 5 && 9; }"));
  check_int "or" 1 (exit_code (run "int main() { return 0 || 3; }"))

let test_while_loop () =
  check_int "sum 1..10" 55
    (exit_code
       (run
          "int main() { int s = 0; int i = 1; while (i <= 10) { s = s + i; i = i + 1; } return s; }"))

let test_break_continue () =
  check_int "break" 5
    (exit_code
       (run
          "int main() { int i = 0; while (1) { if (i == 5) break; i = i + 1; } return i; }"));
  check_int "continue skips" 25
    (exit_code
       (run
          "int main() { int i = 0; int s = 0; while (i < 10) { i = i + 1; if (i % 2 == 0) continue; s = s + i; } return s; }"))

let test_recursion () =
  check_int "fib 10" 89
    (exit_code
       (run
          "int fib(int n) { if (n <= 1) return 1; return fib(n - 1) + fib(n - 2); }\n\
           int main() { return fib(10); }"))

let test_arrays_and_pointers () =
  check_int "ptr writes" 42
    (exit_code
       (run
          "int main() { int a[5]; int *p; p = &a[2]; *p = 40; p[1] = 2; return a[2] + a[3]; }"));
  check_int "pointer arith" 7
    (exit_code
       (run
          "int main() { int a[3]; int *p = a; *(p + 1) = 7; return a[1]; }"))

let test_globals () =
  check_int "global init and update" 11
    (exit_code (run "int g = 4; int main() { g = g + 7; return g; }"))

let test_string_literal () =
  let r = run "int main() { print_str(\"hi there\"); return 0; }" in
  check_str "output" "hi there" r.output

let test_string_literal_bytes () =
  check_int "literal byte" 105
    (exit_code (run "int main() { int *s = \"hi\"; return s[1]; }"))

let test_by_reference_param () =
  check_int "out param" 9
    (exit_code
       (run
          "void set(int *out, int v) { *out = v; }\n\
           int main() { int x = 0; set(&x, 9); return x; }"))

let test_array_param () =
  check_int "array passed as pointer" 6
    (exit_code
       (run
          "int sum(int a[], int n) { int s = 0; int i; for (i = 0; i < n; i = i + 1) s = s + a[i]; return s; }\n\
           int main() { int a[3]; a[0] = 1; a[1] = 2; a[2] = 3; return sum(a, 3); }"))

(* ------------------------------------------------------------------ *)
(* Crashes *)

let test_crash_oob () =
  check_bool "oob" true
    (crash_kind (run "int main() { int a[3]; return a[3]; }") = Interp.Crash.Out_of_bounds)

let test_crash_null () =
  check_bool "null" true
    (crash_kind (run "int main() { int *p; return *p; }") = Interp.Crash.Null_deref)

let test_crash_div0 () =
  check_bool "div0" true
    (crash_kind (run "int main() { int z = 0; return 1 / z; }") = Interp.Crash.Div_by_zero)

let test_crash_explicit () =
  check_bool "crash()" true
    (crash_kind (run "int main() { crash(); return 0; }") = Interp.Crash.Explicit_crash)

let test_crash_assert () =
  check_bool "assert" true
    (crash_kind (run "int main() { assert(1 == 2); return 0; }")
    = Interp.Crash.Assert_failure)

let test_crash_use_after_free () =
  let src =
    "int *leak() { int x = 3; return &x; }\n\
     int main() { int *p = leak(); return *p; }"
  in
  check_bool "uaf" true (crash_kind (run src) = Interp.Crash.Use_after_free)

let test_crash_stack_overflow () =
  let src = "int f(int n) { return f(n + 1); }\nint main() { return f(0); }" in
  check_bool "stack overflow" true
    (crash_kind (run src) = Interp.Crash.Stack_overflow)

let test_crash_site_location () =
  let r = run "int main() {\n  int a[2];\n  return a[9];\n}" in
  match r.outcome with
  | Interp.Crash.Crash c ->
      check_int "crash line" 3 c.loc.line;
      check_str "crash func" "main" c.in_func
  | _ -> Alcotest.fail "expected crash"

let test_budget_exhaustion () =
  let r = run ~max_steps:1000 "int main() { while (1) { } return 0; }" in
  check_bool "budget" true (r.outcome = Interp.Crash.Budget_exhausted)

(* ------------------------------------------------------------------ *)
(* Builtins and I/O *)

let test_exit_builtin () =
  check_int "exit(3)" 3 (exit_code (run "int main() { exit(3); return 0; }"))

let test_args () =
  let src =
    "int main() { int buf[32]; int n = arg(0, buf, 32); if (buf[0] == 'x') return n; return 99; }"
  in
  check_int "arg copied" 3 (exit_code (run ~args:[ "xyz" ] src))

let test_argc () =
  check_int "argc" 2 (exit_code (run ~args:[ "a"; "b" ] "int main() { return argc(); }"))

let test_read_file () =
  let world =
    { Osmodel.World.default_config with files = [ ("data.txt", "hello") ] }
  in
  let src =
    "int main() { int buf[16]; int fd = open(\"data.txt\", 0); if (fd < 0) return 1; \
     int n = read(fd, buf, 16); close(fd); if (buf[0] != 'h') return 2; return n; }"
  in
  check_int "read 5 bytes" 5 (exit_code (run ~world src))

let test_open_missing_file () =
  let src = "int main() { return open(\"nope\", 0); }" in
  check_int "missing file" (-1) (exit_code (run src))

let test_write_stdout () =
  let world = Osmodel.World.default_config in
  let prog =
    compile
      "int main() { int b[3]; b[0] = 'o'; b[1] = 'k'; b[2] = '\\n'; write(1, b, 3); return 0; }"
  in
  let w, handle = Osmodel.World.kernel world in
  let cfg =
    {
      Interp.Eval.inputs = Interp.Inputs.of_strings [];
      kernel = Interp.Kernel.of_world handle;
      hooks = Interp.Eval.no_hooks;
      max_steps = 100000;
      scheduler = None;
    }
  in
  let r = Interp.Eval.run prog cfg in
  check_int "exit" 0 (exit_code r);
  check_str "stdout" "ok\n" (Osmodel.World.stdout_string w)

let test_server_accept_read () =
  (* one connection sending "PING"; server accepts after select and echoes *)
  let world =
    {
      Osmodel.World.default_config with
      conns = [ "PING" ];
      arrivals_per_select = 2;
      max_chunk = 64;
    }
  in
  let src =
    "int main() {\n\
     int buf[64]; int got = 0; int fd = -1; int tries = 0;\n\
     listen(80);\n\
     while (got < 4 && tries < 100) {\n\
     tries = tries + 1;\n\
     int nready = select();\n\
     if (fd < 0) { fd = accept(); }\n\
     if (fd >= 0) { int n = read(fd, buf, 64); if (n > 0) got = got + n; }\n\
     }\n\
     return got;\n\
     }"
  in
  check_int "received 4 bytes" 4 (exit_code (run ~world src))

let test_world_partial_reads () =
  (* with max_chunk 2, a 6-byte payload takes >= 3 reads *)
  let world =
    { Osmodel.World.default_config with conns = [ "abcdef" ]; max_chunk = 2 }
  in
  let src =
    "int main() {\n\
     int buf[8]; int reads = 0; int got = 0; int fd = -1; int tries = 0;\n\
     listen(80);\n\
     while (got < 6 && tries < 200) {\n\
     tries = tries + 1;\n\
     select();\n\
     if (fd < 0) fd = accept();\n\
     if (fd >= 0) { int n = read(fd, buf, 8); if (n > 0) { got = got + n; reads = reads + 1; } }\n\
     }\n\
     return reads;\n\
     }"
  in
  check_bool "at least 3 reads" true (exit_code (run ~world src) >= 3)

(* ------------------------------------------------------------------ *)
(* Hooks and cost *)

let test_branch_hook_fires_per_execution () =
  let count = ref 0 in
  let hooks =
    {
      Interp.Eval.no_hooks with
      Interp.Eval.on_branch = (fun ~bid:_ ~iter:_ ~taken:_ ~cond:_ -> incr count);
    }
  in
  let _ =
    run ~hooks
      "int main() { int i; for (i = 0; i < 10; i = i + 1) { if (i > 100) { } } return 0; }"
  in
  (* while executes 11 times (10 taken + 1 exit), if 10 times *)
  check_int "branch executions" 21 !count

let test_branch_hook_taken_direction () =
  let dirs = ref [] in
  let hooks =
    {
      Interp.Eval.no_hooks with
      Interp.Eval.on_branch = (fun ~bid:_ ~iter:_ ~taken ~cond:_ -> dirs := taken :: !dirs);
    }
  in
  let _ = run ~hooks "int main() { if (1) { } if (0) { } return 0; }" in
  Alcotest.(check (list bool)) "directions" [ false; true ] !dirs

let test_cost_monotone_in_work () =
  let r1 = run "int main() { int i; for (i = 0; i < 10; i = i + 1) { } return 0; }" in
  let r2 = run "int main() { int i; for (i = 0; i < 1000; i = i + 1) { } return 0; }" in
  check_bool "more iterations cost more" true (r2.cost.instr > r1.cost.instr)

let test_abort_hook () =
  let hooks =
    {
      Interp.Eval.no_hooks with
      Interp.Eval.on_branch =
        (fun ~bid:_ ~iter:_ ~taken:_ ~cond:_ -> raise (Interp.Eval.Abort_run "test"));
    }
  in
  let r = run ~hooks "int main() { if (1) { } return 0; }" in
  check_bool "aborted" true
    (match r.outcome with Interp.Crash.Aborted _ -> true | _ -> false)

let () =
  Alcotest.run "interp"
    [
      ( "semantics",
        [
          Alcotest.test_case "arith" `Quick test_arith;
          Alcotest.test_case "C division" `Quick test_division_truncates_toward_zero;
          Alcotest.test_case "logical ops" `Quick test_logical_strictness_result;
          Alcotest.test_case "while" `Quick test_while_loop;
          Alcotest.test_case "break/continue" `Quick test_break_continue;
          Alcotest.test_case "recursion" `Quick test_recursion;
          Alcotest.test_case "arrays and pointers" `Quick test_arrays_and_pointers;
          Alcotest.test_case "globals" `Quick test_globals;
          Alcotest.test_case "string literal output" `Quick test_string_literal;
          Alcotest.test_case "string literal bytes" `Quick test_string_literal_bytes;
          Alcotest.test_case "by-reference param" `Quick test_by_reference_param;
          Alcotest.test_case "array param" `Quick test_array_param;
        ] );
      ( "crashes",
        [
          Alcotest.test_case "out of bounds" `Quick test_crash_oob;
          Alcotest.test_case "null deref" `Quick test_crash_null;
          Alcotest.test_case "div by zero" `Quick test_crash_div0;
          Alcotest.test_case "explicit crash" `Quick test_crash_explicit;
          Alcotest.test_case "assert failure" `Quick test_crash_assert;
          Alcotest.test_case "use after free" `Quick test_crash_use_after_free;
          Alcotest.test_case "stack overflow" `Quick test_crash_stack_overflow;
          Alcotest.test_case "crash site location" `Quick test_crash_site_location;
          Alcotest.test_case "budget exhaustion" `Quick test_budget_exhaustion;
        ] );
      ( "io",
        [
          Alcotest.test_case "exit" `Quick test_exit_builtin;
          Alcotest.test_case "arg" `Quick test_args;
          Alcotest.test_case "argc" `Quick test_argc;
          Alcotest.test_case "read file" `Quick test_read_file;
          Alcotest.test_case "open missing" `Quick test_open_missing_file;
          Alcotest.test_case "write stdout" `Quick test_write_stdout;
          Alcotest.test_case "server accept/read" `Quick test_server_accept_read;
          Alcotest.test_case "partial reads" `Quick test_world_partial_reads;
        ] );
      ( "hooks",
        [
          Alcotest.test_case "branch hook count" `Quick
            test_branch_hook_fires_per_execution;
          Alcotest.test_case "branch directions" `Quick
            test_branch_hook_taken_direction;
          Alcotest.test_case "cost monotone" `Quick test_cost_monotone_in_work;
          Alcotest.test_case "abort hook" `Quick test_abort_hook;
        ] );
    ]
