(* Tests for the concolic machinery: path recording, the exploration
   engine, dynamic labelling, and symbolic-input plumbing. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let compile src = Workloads.Runtime_lib.link ~name:"t" src

let scenario ?(args = []) ?world src =
  let prog = compile src in
  Concolic.Scenario.make ~name:"t" ~args
    ?world:(Option.map Fun.id world)
    prog

let budget runs = { Concolic.Engine.max_runs = runs; max_time_s = 10.0 }

(* ------------------------------------------------------------------ *)
(* Path recording *)

let test_path_branch_constraints () =
  let t = Concolic.Path.create () in
  let sym = Solver.Expr.(Binop (Lt, Var 0, Const 5)) in
  Concolic.Path.record_branch t ~bid:3 ~taken:true sym;
  Concolic.Path.record_branch t ~bid:4 ~taken:false sym;
  match Concolic.Path.entries t with
  | [ e1; e2 ] ->
      check_bool "taken keeps shape" true
        (e1.cons = Solver.Expr.(Binop (Lt, Var 0, Const 5)));
      check_bool "not-taken negates" true
        (e2.cons = Solver.Expr.(Binop (Ge, Var 0, Const 5)));
      check_bool "bids recorded" true (e1.bid = Some 3 && e2.bid = Some 4)
  | _ -> Alcotest.fail "expected two entries"

let test_path_concretize_entry () =
  let t = Concolic.Path.create () in
  Concolic.Path.record_concretize t (Solver.Expr.Var 7) 42;
  match Concolic.Path.entries t with
  | [ e ] ->
      check_bool "not negatable" false e.negatable;
      check_bool "no bid" true (e.bid = None)
  | _ -> Alcotest.fail "expected one entry"

(* ------------------------------------------------------------------ *)
(* Dynamic labelling *)

let test_dynamic_labels_simple () =
  let sc =
    scenario ~args:[ "x" ]
      "int main() {\n\
      \  int b[8];\n\
      \  arg(0, b, 8);\n\
      \  if (b[0] == 'k') { return 1; }\n\
      \  if (3 < 5) { return 2; }\n\
      \  return 0;\n\
       }"
  in
  let r = Concolic.Dynamic.analyze ~budget:(budget 50) sc in
  let prog = sc.prog in
  let label_line line =
    let l = ref Minic.Label.Unvisited in
    Array.iter
      (fun (b : Minic.Number.info) -> if b.bloc.line = line then l := r.labels.(b.bid))
      prog.branches;
    !l
  in
  check_bool "input branch symbolic" true (label_line 4 = Minic.Label.Symbolic);
  check_bool "const branch concrete" true (label_line 5 = Minic.Label.Concrete)

let test_dynamic_explores_both_sides () =
  (* exploration must find the rare 'Z' path and thereby visit the nested
     branch *)
  let sc =
    scenario ~args:[ "a" ]
      "int main() {\n\
      \  int b[8];\n\
      \  arg(0, b, 8);\n\
      \  if (b[0] == 'Z') {\n\
      \    if (b[1] == 'Q') { return 9; }\n\
      \  }\n\
      \  return 0;\n\
       }"
  in
  let r = Concolic.Dynamic.analyze ~budget:(budget 50) sc in
  (* the linked runtime library has branches this program never calls, so
     count only application branch locations *)
  let unvisited_app =
    List.length
      (List.filter
         (fun bid -> r.labels.(bid) = Minic.Label.Unvisited)
         (Minic.Program.app_branch_ids sc.prog))
  in
  check_int "all app branches visited" 0 unvisited_app

let test_dynamic_unvisited_with_tiny_budget () =
  let sc =
    scenario ~args:[ "a" ]
      "int main() {\n\
      \  int b[8];\n\
      \  arg(0, b, 8);\n\
      \  if (b[0] == 'Z') {\n\
      \    if (b[1] == 'Q') {\n\
      \      if (b[2] == 'W') { return 9; }\n\
      \    }\n\
      \  }\n\
      \  return 0;\n\
       }"
  in
  (* a single run cannot see the nested branches *)
  let r = Concolic.Dynamic.analyze ~budget:(budget 1) sc in
  check_bool "some branches unvisited" true
    (Minic.Label.count r.labels Minic.Label.Unvisited > 0)

let test_dynamic_coverage_monotone_in_budget () =
  let e = Workloads.Coreutils.find "mkdir" in
  let sc = Workloads.Coreutils.analysis_scenario e in
  let r1 = Concolic.Dynamic.analyze ~budget:(budget 1) sc in
  let r2 = Concolic.Dynamic.analyze ~budget:(budget 120) sc in
  check_bool "higher budget, >= coverage" true (r2.coverage >= r1.coverage);
  check_bool "higher budget finds more symbolic branches" true
    (Minic.Label.count r2.labels Minic.Label.Symbolic
    >= Minic.Label.count r1.labels Minic.Label.Symbolic)

(* ------------------------------------------------------------------ *)
(* Engine behaviour *)

let test_engine_finds_deep_crash () =
  (* engine must synthesise the 3-byte magic word *)
  let sc =
    scenario ~args:[ "aaa" ]
      "int main() {\n\
      \  int b[8];\n\
      \  arg(0, b, 8);\n\
      \  if (b[0] == 'B') {\n\
      \    if (b[1] == 'U') {\n\
      \      if (b[2] == 'G') { crash(); }\n\
      \    }\n\
      \  }\n\
      \  return 0;\n\
       }"
  in
  let vars = Solver.Symvars.create () in
  let run =
    Concolic.Dynamic.make_run sc ~vars ~on_branch_observed:(fun _ _ -> ())
  in
  let stats, found =
    Concolic.Engine.explore ~vars ~budget:(budget 100) ~run
      ~should_stop:(fun _ r ->
        match r.outcome with Interp.Crash.Crash _ -> true | _ -> false)
      ()
  in
  check_bool "crash found" true (found <> None);
  check_bool "took a few runs" true (stats.runs > 1)

let test_engine_respects_run_budget () =
  let sc =
    scenario ~args:[ "aaaa" ]
      "int main() {\n\
      \  int b[8];\n\
      \  int i;\n\
      \  int n = 0;\n\
      \  arg(0, b, 8);\n\
      \  for (i = 0; i < 4; i = i + 1) { if (b[i] == 'q') { n = n + 1; } }\n\
      \  return n;\n\
       }"
  in
  let vars = Solver.Symvars.create () in
  let run =
    Concolic.Dynamic.make_run sc ~vars ~on_branch_observed:(fun _ _ -> ())
  in
  let stats, _ = Concolic.Engine.explore ~vars ~budget:(budget 5) ~run () in
  check_bool "run budget respected" true (stats.runs <= 5)

let test_engine_model_drives_next_run () =
  (* the model produced by negating b[0] == 'x' must actually flip the
     branch in the next run: verify via observed outcomes *)
  let sc =
    scenario ~args:[ "x" ]
      "int main() { int b[4]; arg(0, b, 4); if (b[0] == 'x') { return 1; } return 2; }"
  in
  let vars = Solver.Symvars.create () in
  let outcomes = ref [] in
  let run =
    Concolic.Dynamic.make_run sc ~vars ~on_branch_observed:(fun _ _ -> ())
  in
  let on_run _ (r : Concolic.Engine.run_result) =
    outcomes := r.outcome :: !outcomes
  in
  let _ = Concolic.Engine.explore ~vars ~budget:(budget 10) ~run ~on_run () in
  let exits =
    List.filter_map
      (function Interp.Crash.Exit n -> Some n | _ -> None)
      !outcomes
  in
  check_bool "both paths executed" true (List.mem 1 exits && List.mem 2 exits)

let test_engine_drained_frontier_terminates () =
  (* a branch-free program seeds nothing into the frontier: the engine
     must retire after its single initial run — a drained frontier is a
     clean stop (the pop is matched, not [Option.get]-ed), never a crash *)
  let sc = scenario ~args:[ "a" ] "int main() { return 0; }" in
  let vars = Solver.Symvars.create () in
  let run =
    Concolic.Dynamic.make_run sc ~vars ~on_branch_observed:(fun _ _ -> ())
  in
  let stats, found = Concolic.Engine.explore ~vars ~budget:(budget 100) ~run () in
  check_bool "nothing to find" true (found = None);
  check_int "exactly the initial run" 1 stats.runs;
  check_bool "clean exhaustion, not a timeout" false stats.timed_out

(* ------------------------------------------------------------------ *)
(* Stream data symbolication *)

let test_stream_bytes_symbolic () =
  let world =
    { Osmodel.World.default_config with files = [ ("f", "AB") ] }
  in
  let sc =
    scenario ~world
      "int main() {\n\
      \  int b[8];\n\
      \  int fd = open(\"f\", 0);\n\
      \  read(fd, b, 8);\n\
      \  if (b[0] == 'A') { crash(); }\n\
      \  return 0;\n\
       }"
  in
  let r = Concolic.Dynamic.analyze ~budget:(budget 20) sc in
  let prog = sc.prog in
  let ok = ref false in
  Array.iter
    (fun (b : Minic.Number.info) ->
      if b.bloc.line = 5 && r.labels.(b.bid) = Minic.Label.Symbolic then ok := true)
    prog.branches;
  check_bool "file byte branch symbolic" true !ok;
  (* and the registry knows the stream variable by name *)
  check_bool "stream var registered" true
    (Solver.Symvars.find_by_name r.vars "file:f[0]" <> None)

(* ------------------------------------------------------------------ *)
(* Concrete/concolic agreement: shadowing values symbolically must never
   change concrete semantics *)

let agreement_sources =
  [
    ("arith", "int main() { int b[8]; arg(0, b, 8); return (b[0] * 7 + b[1]) % 100; }", [ "Kx" ]);
    ( "loops",
      "int main() { int b[16]; int i; int s = 0; arg(0, b, 16);\n\
       for (i = 0; i < 8; i = i + 1) { if (b[i] > 'm') { s = s + i; } } return s; }",
      [ "azbycxdw" ] );
    ( "lib",
      "int main() { int b[32]; arg(0, b, 32); if (str_eq(b, \"magic\")) { return 42; } return strlen(b); }",
      [ "magic" ] );
    ( "io",
      "int main() { int b[16]; int fd = open(\"f\", 0); int n = read(fd, b, 16); return n + b[0]; }",
      [] );
  ]

let test_concrete_concolic_agreement () =
  List.iter
    (fun (name, src, args) ->
      let prog = Workloads.Runtime_lib.link ~name src in
      let world =
        { Osmodel.World.default_config with files = [ ("f", "QRS") ] }
      in
      let sc = Concolic.Scenario.make ~name ~args ~world prog in
      (* concrete run *)
      let _w, handle = Osmodel.World.kernel world in
      let concrete =
        Interp.Eval.run prog
          {
            Interp.Eval.inputs = Interp.Inputs.of_strings args;
            kernel = Interp.Kernel.of_world handle;
            hooks = Interp.Eval.no_hooks;
            max_steps = 1_000_000;
            scheduler = None;
          }
      in
      (* concolic run with an empty model: same concrete inputs, with
         symbolic shadows riding along *)
      let vars = Solver.Symvars.create () in
      let run =
        Concolic.Dynamic.make_run sc ~vars ~on_branch_observed:(fun _ _ -> ())
      in
      let concolic = run Solver.Model.empty in
      check_bool
        (Printf.sprintf "%s: same outcome" name)
        true
        (Interp.Crash.outcome_to_string concrete.outcome
        = Interp.Crash.outcome_to_string concolic.outcome))
    agreement_sources

(* path constraints of the concolic run are satisfied by the inputs used *)
let test_path_constraints_hold_on_own_input () =
  let src =
    "int main() { int b[8]; arg(0, b, 8); if (b[0] == 'q') { if (b[1] < 'm') { return 1; } } return 0; }"
  in
  let prog = Workloads.Runtime_lib.link ~name:"t" src in
  let sc = Concolic.Scenario.make ~name:"t" ~args:[ "qa" ] prog in
  let vars = Solver.Symvars.create () in
  let observed = ref Solver.Model.empty in
  let run = Concolic.Dynamic.make_run sc ~vars ~on_branch_observed:(fun _ _ -> ()) in
  let r = run Solver.Model.empty in
  observed := r.observed;
  List.iter
    (fun (e : Concolic.Path.entry) ->
      check_bool "constraint holds on own input" true
        (Solver.Model.satisfies !observed e.cons))
    r.trace

let test_engine_strategies_explore_same_space () =
  (* DFS and BFS must both find the magic-word crash on a small program *)
  let src =
    "int main() { int b[4]; arg(0, b, 4); if (b[0] == 'Z') { if (b[1] == 'Q') { crash(); } } return 0; }"
  in
  let prog = Workloads.Runtime_lib.link ~name:"t" src in
  let sc = Concolic.Scenario.make ~name:"t" ~args:[ "ab" ] prog in
  List.iter
    (fun strategy ->
      let vars = Solver.Symvars.create () in
      let run =
        Concolic.Dynamic.make_run sc ~vars ~on_branch_observed:(fun _ _ -> ())
      in
      let _, found =
        Concolic.Engine.explore ~vars ~budget:(budget 100) ~strategy ~run
          ~should_stop:(fun _ r ->
            match r.outcome with Interp.Crash.Crash _ -> true | _ -> false)
          ()
      in
      check_bool "strategy finds the crash" true (found <> None))
    [ Concolic.Engine.Dfs; Concolic.Engine.Bfs ]

(* ------------------------------------------------------------------ *)
(* Parallel exploration determinism: an exhaustive exploration (no
   should_stop, generous budget) of a program whose crash sites are guarded
   purely by input branch constraints is confluent — the *set* of crash
   outcomes cannot depend on worker scheduling, only the discovery order
   can.  Run the same seed corpus at jobs=1 and jobs=4 and compare sets. *)

let crash_corpus_src =
  "int main() {\n\
  \  int b[8];\n\
  \  arg(0, b, 8);\n\
  \  if (b[0] == 'A') { if (b[1] == 'x') { crash(); } return 1; }\n\
  \  if (b[0] == 'B') { if (b[2] > 'm') { crash(); } return 2; }\n\
  \  if (b[0] == 'C') { crash(); }\n\
  \  return 0;\n\
   }"

let explore_crashes ?(steal = true) ?incr ~jobs src =
  let prog = Workloads.Runtime_lib.link ~name:"t" src in
  let sc = Concolic.Scenario.make ~name:"t" ~args:[ "aaa" ] prog in
  let vars = Solver.Symvars.create () in
  let run = Concolic.Dynamic.make_run sc ~vars ~on_branch_observed:(fun _ _ -> ()) in
  (* on_run is called with the frontier lock held, so a plain ref is fine *)
  let crashes = ref [] in
  let on_run _ (r : Concolic.Engine.run_result) =
    match r.outcome with
    | Interp.Crash.Crash c ->
        let s = Interp.Crash.to_string c in
        if not (List.mem s !crashes) then crashes := s :: !crashes
    | _ -> ()
  in
  let cache = Solver.Cache.create () in
  let stats, _ =
    Concolic.Engine.explore ~vars ~budget:(budget 400) ~jobs ~cache ?incr
      ~steal ~run ~on_run ()
  in
  (List.sort compare !crashes, stats)

let test_parallel_determinism () =
  let seq, _ = explore_crashes ~jobs:1 crash_corpus_src in
  let par, _ = explore_crashes ~jobs:4 crash_corpus_src in
  check_bool "found some crash sites" true (List.length seq >= 3);
  Alcotest.(check (list string)) "jobs=1 and jobs=4 find the same crash set" seq par

let test_parallel_determinism_steal_matrix () =
  (* the exhausted frontier's crash set is invariant across the frontier
     discipline (sharded deques + stealing vs single queue) and the
     incremental solver, at any worker count *)
  let seq, _ = explore_crashes ~jobs:1 crash_corpus_src in
  check_bool "found some crash sites" true (List.length seq >= 3);
  List.iter
    (fun (jobs, steal, incremental) ->
      let incr = if incremental then Some (Solver.Incr.create ()) else None in
      let found, stats = explore_crashes ~jobs ~steal ?incr crash_corpus_src in
      let tag =
        Printf.sprintf "jobs=%d steal=%b incr=%b" jobs steal incremental
      in
      Alcotest.(check (list string)) (tag ^ " crash set") seq found;
      check_bool (tag ^ " frontier accounting") true
        (stats.sat + stats.unsat + stats.unknown + stats.core_pruned
        = stats.forks))
    [
      (1, true, true);
      (4, true, false);
      (4, false, false);
      (4, true, true);
      (4, false, true);
    ]

let test_steal_counters_and_worker_runs () =
  (* 4-domain stress on the widest frontier: the Atomic accumulators must
     reconcile — per-worker run counts sum to the total, steals only ever
     counted when the sharded frontier is on *)
  List.iter
    (fun (jobs, steal) ->
      let _, stats = explore_crashes ~jobs ~steal crash_corpus_src in
      let tag = Printf.sprintf "jobs=%d steal=%b" jobs steal in
      check_int (tag ^ " worker_runs length") jobs
        (Array.length stats.worker_runs);
      check_int (tag ^ " worker_runs sums to runs") stats.runs
        (Array.fold_left ( + ) 0 stats.worker_runs);
      check_bool (tag ^ " pending_peak positive") true (stats.pending_peak >= 1);
      if jobs = 1 || not steal then
        check_int (tag ^ " no steals without sharded deques") 0 stats.steals
      else check_bool (tag ^ " steal counter sane") true (stats.steals >= 0))
    [ (1, true); (4, true); (4, false) ]

let test_core_pruning_spares_sat_siblings () =
  (* with the incremental solver on, every pending is accounted for
     (sat + unsat + unknown + core_pruned = forks on an exhausted
     frontier) and pruning never loses a crash the plain engine finds *)
  let plain, pstats = explore_crashes ~jobs:1 crash_corpus_src in
  let incr = Solver.Incr.create () in
  let pruned, stats = explore_crashes ~jobs:1 ~incr crash_corpus_src in
  check_bool "frontier exhausted" true (pstats.runs < 400 && stats.runs < 400);
  Alcotest.(check (list string))
    "crash set unchanged by core pruning" plain pruned;
  check_int "pruned + solved = forks"
    stats.forks
    (stats.sat + stats.unsat + stats.unknown + stats.core_pruned)

let test_parallel_respects_run_budget () =
  let sc =
    scenario ~args:[ "aaaa" ]
      "int main() {\n\
      \  int b[8];\n\
      \  int i;\n\
      \  int n = 0;\n\
      \  arg(0, b, 8);\n\
      \  for (i = 0; i < 4; i = i + 1) { if (b[i] == 'q') { n = n + 1; } }\n\
      \  return n;\n\
       }"
  in
  let vars = Solver.Symvars.create () in
  let run =
    Concolic.Dynamic.make_run sc ~vars ~on_branch_observed:(fun _ _ -> ())
  in
  let stats, _ =
    Concolic.Engine.explore ~vars ~budget:(budget 5) ~jobs:4 ~run ()
  in
  check_bool "run budget exact under parallel pool" true (stats.runs <= 5)

let () =
  Alcotest.run "concolic"
    [
      ( "path",
        [
          Alcotest.test_case "branch constraints" `Quick test_path_branch_constraints;
          Alcotest.test_case "concretize entry" `Quick test_path_concretize_entry;
        ] );
      ( "dynamic",
        [
          Alcotest.test_case "labels simple" `Quick test_dynamic_labels_simple;
          Alcotest.test_case "explores both sides" `Quick
            test_dynamic_explores_both_sides;
          Alcotest.test_case "unvisited with tiny budget" `Quick
            test_dynamic_unvisited_with_tiny_budget;
          Alcotest.test_case "coverage monotone" `Slow
            test_dynamic_coverage_monotone_in_budget;
        ] );
      ( "engine",
        [
          Alcotest.test_case "finds deep crash" `Quick test_engine_finds_deep_crash;
          Alcotest.test_case "respects budget" `Quick test_engine_respects_run_budget;
          Alcotest.test_case "drained frontier terminates" `Quick
            test_engine_drained_frontier_terminates;
          Alcotest.test_case "model drives next run" `Quick
            test_engine_model_drives_next_run;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "jobs=1 = jobs=4 crash set" `Quick
            test_parallel_determinism;
          Alcotest.test_case "steal/incr matrix determinism" `Quick
            test_parallel_determinism_steal_matrix;
          Alcotest.test_case "steal counters and worker runs" `Quick
            test_steal_counters_and_worker_runs;
          Alcotest.test_case "core pruning spares sat siblings" `Quick
            test_core_pruning_spares_sat_siblings;
          Alcotest.test_case "parallel respects budget" `Quick
            test_parallel_respects_run_budget;
        ] );
      ( "streams",
        [ Alcotest.test_case "stream bytes symbolic" `Quick test_stream_bytes_symbolic ]
      );
      ( "agreement",
        [
          Alcotest.test_case "concrete = concolic" `Quick
            test_concrete_concolic_agreement;
          Alcotest.test_case "constraints hold on own input" `Quick
            test_path_constraints_hold_on_own_input;
          Alcotest.test_case "both strategies find crashes" `Quick
            test_engine_strategies_explore_same_space;
        ] );
    ]
