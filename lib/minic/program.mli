(** Linked MiniC programs.

    {!link} combines an application unit with runtime-library units (the
    paper merges all C files into one before analysis, §4), normalises calls
    out of expressions, type checks, and numbers every branch location
    program-wide.  The result is the immutable artifact every later stage
    (static analysis, concolic execution, instrumentation, replay) works
    on. *)

exception Link_error of string

type t = {
  name : string;
  globals : Ast.var_decl list;
  funcs : Ast.func list;
  fun_tbl : (string, Ast.func) Hashtbl.t;
  branches : Number.info array;  (** indexed by branch id *)
}

(** Total number of branch locations. *)
val nbranches : t -> int

(** Metadata of a branch id; raises [Invalid_argument] if out of range. *)
val branch_info : t -> int -> Number.info

val find_func : t -> string -> Ast.func option
val app_branch_count : t -> int
val lib_branch_count : t -> int

(** Branch ids belonging to application (non-library) code, ascending. *)
val app_branch_ids : t -> int list

val lib_branch_ids : t -> int list

(** Link parsed units into a checked, normalised, branch-numbered program.
    Raises {!Link_error} on structural problems (a missing [main]) and
    {!Typecheck.Error} on type errors — duplicate names included — so
    callers can report the two distinctly. *)
val link : ?name:string -> app:Ast.unit_ -> libs:Ast.unit_ list -> unit -> t

(** Convenience: parse source strings and link. *)
val of_sources : ?name:string -> app:string -> libs:string list -> unit -> t
