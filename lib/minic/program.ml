(** Linked MiniC programs.

    [link] combines an application unit with runtime-library units (the
    paper merges all C files into one before analysis, §4), normalises calls
    out of expressions, type checks, and numbers every branch location
    program-wide.  The result is the immutable artifact every later stage
    (static analysis, concolic execution, instrumentation, replay) works
    on. *)

exception Link_error of string

type t = {
  name : string;
  globals : Ast.var_decl list;
  funcs : Ast.func list;
  fun_tbl : (string, Ast.func) Hashtbl.t;
  branches : Number.info array;
}

let nbranches p = Array.length p.branches

let branch_info p bid =
  if bid < 0 || bid >= Array.length p.branches then
    invalid_arg (Printf.sprintf "branch_info: bad branch id %d" bid)
  else p.branches.(bid)

let find_func p name = Hashtbl.find_opt p.fun_tbl name

let app_branch_count p =
  Array.fold_left (fun n (b : Number.info) -> if b.bis_lib then n else n + 1) 0 p.branches

let lib_branch_count p = nbranches p - app_branch_count p

(** Branch ids belonging to application (non-library) code. *)
let app_branch_ids p =
  Array.to_list p.branches
  |> List.filter_map (fun (b : Number.info) -> if b.bis_lib then None else Some b.bid)

let lib_branch_ids p =
  Array.to_list p.branches
  |> List.filter_map (fun (b : Number.info) -> if b.bis_lib then Some b.bid else None)

(* Deep-copy a function body so that linking never aliases parsed units
   (normalisation and numbering mutate the AST). *)
let rec copy_stmt (s : Ast.stmt) : Ast.stmt =
  let sdesc : Ast.stmt_desc =
    match s.sdesc with
    | Sassign (lv, e) -> Sassign (lv, e)
    | Scall (lvo, f, args) -> Scall (lvo, f, args)
    | Sif (br, c, t, e) ->
        Sif ({ br with bid = -1 }, c, copy_block t, copy_block e)
    | Swhile (br, c, b) -> Swhile ({ br with bid = -1 }, c, copy_block b)
    | Sreturn e -> Sreturn e
    | Sbreak -> Sbreak
    | Scontinue -> Scontinue
    | Sblock b -> Sblock (copy_block b)
  in
  { s with sdesc }

and copy_block b = List.map copy_stmt b

let copy_func (f : Ast.func) : Ast.func =
  { f with flocals = f.flocals; fbody = copy_block f.fbody }

(** Link [app] with the given library units into a checked, normalised,
    branch-numbered program.  Raises {!Link_error} on structural problems
    (missing [main], normalisation bugs) and lets {!Typecheck.Error}
    propagate so callers can distinguish type errors. *)
let link ?(name = "program") ~(app : Ast.unit_) ~(libs : Ast.unit_ list) () : t =
  let units = app :: libs in
  let globals = List.concat_map (fun (u : Ast.unit_) -> u.u_globals) units in
  let funcs =
    List.concat_map (fun (u : Ast.unit_) -> List.map copy_func u.u_funcs) units
  in
  if not (List.exists (fun (f : Ast.func) -> String.equal f.fname "main") funcs)
  then raise (Link_error "program has no 'main' function");
  List.iter Normalize.func funcs;
  List.iter
    (fun (f : Ast.func) ->
      if not (Normalize.block_is_normalised f.fbody) then
        raise
          (Link_error (Printf.sprintf "internal: '%s' not normalised" f.fname)))
    funcs;
  Typecheck.check ~globals ~funcs;
  let branches = Number.number funcs in
  let fun_tbl = Hashtbl.create 64 in
  List.iter (fun (f : Ast.func) -> Hashtbl.replace fun_tbl f.fname f) funcs;
  { name; globals; funcs; fun_tbl; branches }

(** Convenience: parse and link from source strings. *)
let of_sources ?(name = "program") ~app ~libs () : t =
  let app_unit = Parser.parse_unit ~file:(name ^ ".c") app in
  let lib_units =
    List.mapi
      (fun i src -> Parser.parse_unit ~is_lib:true ~file:(Printf.sprintf "lib%d.c" i) src)
      libs
  in
  link ~name ~app:app_unit ~libs:lib_units ()
