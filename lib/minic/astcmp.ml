(** Structural AST equality, ignoring source locations and branch ids.

    Used by the parser/pretty-printer round-trip property tests. *)

let rec equal_expr (a : Ast.expr) (b : Ast.expr) =
  match a, b with
  | Cint x, Cint y -> x = y
  | Cstr x, Cstr y -> String.equal x y
  | Lval x, Lval y | Addr x, Addr y -> equal_lval x y
  | Unop (o1, x), Unop (o2, y) -> o1 = o2 && equal_expr x y
  | Binop (o1, x1, y1), Binop (o2, x2, y2) ->
      o1 = o2 && equal_expr x1 x2 && equal_expr y1 y2
  | Ecall (f, xs), Ecall (g, ys) ->
      String.equal f g && List.length xs = List.length ys
      && List.for_all2 equal_expr xs ys
  | (Cint _ | Cstr _ | Lval _ | Addr _ | Unop _ | Binop _ | Ecall _), _ -> false

and equal_lval (a : Ast.lval) (b : Ast.lval) =
  match a, b with
  | Var x, Var y -> String.equal x y
  | Index (b1, i1), Index (b2, i2) -> equal_lval b1 b2 && equal_expr i1 i2
  | Star x, Star y -> equal_expr x y
  | (Var _ | Index _ | Star _), _ -> false

let rec equal_stmt (a : Ast.stmt) (b : Ast.stmt) =
  match a.sdesc, b.sdesc with
  | Sassign (l1, e1), Sassign (l2, e2) -> equal_lval l1 l2 && equal_expr e1 e2
  | Scall (lo1, f1, a1), Scall (lo2, f2, a2) ->
      Option.equal equal_lval lo1 lo2
      && String.equal f1 f2
      && List.length a1 = List.length a2
      && List.for_all2 equal_expr a1 a2
  | Sif (_, c1, t1, e1), Sif (_, c2, t2, e2) ->
      equal_expr c1 c2 && equal_block t1 t2 && equal_block e1 e2
  | Swhile (_, c1, b1), Swhile (_, c2, b2) -> equal_expr c1 c2 && equal_block b1 b2
  | Sreturn e1, Sreturn e2 -> Option.equal equal_expr e1 e2
  | Sbreak, Sbreak | Scontinue, Scontinue -> true
  | Sblock b1, Sblock b2 -> equal_block b1 b2
  | ( ( Sassign _ | Scall _ | Sif _ | Swhile _ | Sreturn _ | Sbreak | Scontinue
      | Sblock _ ),
      _ ) ->
      false

and equal_block a b =
  List.length a = List.length b && List.for_all2 equal_stmt a b

let equal_var_decl (a : Ast.var_decl) (b : Ast.var_decl) =
  String.equal a.vname b.vname
  && Types.equal a.vtyp b.vtyp
  && Option.equal equal_expr a.vinit b.vinit

let equal_func (a : Ast.func) (b : Ast.func) =
  String.equal a.fname b.fname
  && Types.equal a.fret b.fret
  && List.length a.fparams = List.length b.fparams
  && List.for_all2
       (fun (n1, t1) (n2, t2) -> String.equal n1 n2 && Types.equal t1 t2)
       a.fparams b.fparams
  && List.length a.flocals = List.length b.flocals
  && List.for_all2 equal_var_decl a.flocals b.flocals
  && equal_block a.fbody b.fbody

let equal_unit (a : Ast.unit_) (b : Ast.unit_) =
  List.length a.u_globals = List.length b.u_globals
  && List.for_all2 equal_var_decl a.u_globals b.u_globals
  && List.length a.u_funcs = List.length b.u_funcs
  && List.for_all2 equal_func a.u_funcs b.u_funcs

(* ------------------------------------------------------------------ *)
(* Node counting — the shrinker's progress metric.  Every expression,
   lvalue, statement, declaration and function counts as one node. *)

let rec size_expr (e : Ast.expr) =
  match e with
  | Cint _ | Cstr _ -> 1
  | Lval lv | Addr lv -> 1 + size_lval lv
  | Unop (_, a) -> 1 + size_expr a
  | Binop (_, a, b) -> 1 + size_expr a + size_expr b
  | Ecall (_, args) -> 1 + List.fold_left (fun n a -> n + size_expr a) 0 args

and size_lval (lv : Ast.lval) =
  match lv with
  | Var _ -> 1
  | Index (b, i) -> 1 + size_lval b + size_expr i
  | Star e -> 1 + size_expr e

let rec size_stmt (s : Ast.stmt) =
  match s.sdesc with
  | Sassign (lv, e) -> 1 + size_lval lv + size_expr e
  | Scall (lvo, _, args) ->
      1
      + (match lvo with Some lv -> size_lval lv | None -> 0)
      + List.fold_left (fun n a -> n + size_expr a) 0 args
  | Sif (_, c, t, e) -> 1 + size_expr c + size_block t + size_block e
  | Swhile (_, c, b) -> 1 + size_expr c + size_block b
  | Sreturn (Some e) -> 1 + size_expr e
  | Sreturn None | Sbreak | Scontinue -> 1
  | Sblock b -> 1 + size_block b

and size_block (b : Ast.block) =
  List.fold_left (fun n s -> n + size_stmt s) 0 b

let size_var_decl (d : Ast.var_decl) =
  1 + match d.vinit with Some e -> size_expr e | None -> 0

let size_func (f : Ast.func) =
  1
  + List.fold_left (fun n d -> n + size_var_decl d) 0 f.flocals
  + size_block f.fbody

let size_unit (u : Ast.unit_) =
  List.fold_left (fun n d -> n + size_var_decl d) 0 u.u_globals
  + List.fold_left (fun n f -> n + size_func f) 0 u.u_funcs
