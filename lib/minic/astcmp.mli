(** Structural AST equality, ignoring source locations and branch ids.
    Used by the parser/pretty-printer round-trip property tests. *)

val equal_expr : Ast.expr -> Ast.expr -> bool
val equal_lval : Ast.lval -> Ast.lval -> bool
val equal_stmt : Ast.stmt -> Ast.stmt -> bool
val equal_block : Ast.block -> Ast.block -> bool
val equal_var_decl : Ast.var_decl -> Ast.var_decl -> bool
val equal_func : Ast.func -> Ast.func -> bool
val equal_unit : Ast.unit_ -> Ast.unit_ -> bool

(** {1 Node counting}

    Structural size, ignoring locations and branch ids: every expression,
    lvalue, statement, declaration and function is one node.  The fuzzer's
    shrinker uses these as its progress metric. *)

val size_expr : Ast.expr -> int
val size_lval : Ast.lval -> int
val size_stmt : Ast.stmt -> int
val size_block : Ast.block -> int
val size_var_decl : Ast.var_decl -> int
val size_func : Ast.func -> int
val size_unit : Ast.unit_ -> int
