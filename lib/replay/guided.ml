(** Guided replay: reproduce a bug from a partial branch log (§3.1).

    Drives the concolic {!Concolic.Engine} with the report's bitvector.  At
    every executed branch the four cases of the paper apply:

    + symbolic, not instrumented — fork: assert the taken direction, leave
      the alternative on the pending list;
    + symbolic, instrumented — consume a bit; (a) if it matches, pin the
      direction (no fork); (b) if not, queue the constraint set that forces
      the logged direction and abort the run;
    + concrete, instrumented — consume a bit; on mismatch abort (only
      possible after an earlier wrong turn at an uninstrumented symbolic
      branch);
    + concrete, not instrumented — proceed.

    Reports produced under a suppression plan additionally ship a
    reconstruction table ({!Instrument.Report.t}[.suppression]).  Replay
    decodes and {!Staticanalysis.Suppression.verify}-checks the table
    before trusting it (fail-closed: a rejected proof aborts reproduction),
    then synthesizes the missing bits with
    {!Staticanalysis.Suppression.Recon}: an elided branch's reconstructed
    bit plays exactly the role a consumed log bit would in the four cases
    above, without advancing the log reader.

    A run reproduces the bug when it crashes at the recorded crash site.
    Pending-set selection is depth-first, as in the paper. *)

open Instrument

type case_stats = {
  mutable case1 : int;  (** symbolic, unlogged *)
  mutable case2a : int;  (** symbolic, logged, direction matches *)
  mutable case2b : int;  (** symbolic, logged, mismatch (abort + force) *)
  mutable case3a : int;  (** concrete, logged, matches *)
  mutable case3b : int;  (** concrete, logged, mismatch (abort) *)
  mutable case4 : int;  (** concrete, unlogged *)
  mutable log_exhausted : int;  (** bits missing (truncated log) *)
}

let new_case_stats () =
  { case1 = 0; case2a = 0; case2b = 0; case3a = 0; case3b = 0; case4 = 0;
    log_exhausted = 0 }

(* Fold [c] into [into].  Each run counts its cases locally and merges once
   at the end, so the hot per-branch path never contends on shared
   counters. *)
let merge_cases ~(into : case_stats) (c : case_stats) =
  into.case1 <- into.case1 + c.case1;
  into.case2a <- into.case2a + c.case2a;
  into.case2b <- into.case2b + c.case2b;
  into.case3a <- into.case3a + c.case3a;
  into.case3b <- into.case3b + c.case3b;
  into.case4 <- into.case4 + c.case4;
  into.log_exhausted <- into.log_exhausted + c.log_exhausted

(* Lock-free accumulator for the §3.1 counters.  With [jobs > 1] pool
   workers finish runs concurrently, so the once-per-run merge lands on
   shared state from several domains at once; plain mutable fields lose
   increments there (read-modify-write races) and the totals undercount
   vs the single-job run.  Atomic adds make the merge linearizable; the
   per-branch hot path still counts into a run-local [case_stats]. *)
type case_acc = {
  a1 : int Atomic.t;
  a2a : int Atomic.t;
  a2b : int Atomic.t;
  a3a : int Atomic.t;
  a3b : int Atomic.t;
  a4 : int Atomic.t;
  a_exhausted : int Atomic.t;
}

let new_case_acc () =
  {
    a1 = Atomic.make 0; a2a = Atomic.make 0; a2b = Atomic.make 0;
    a3a = Atomic.make 0; a3b = Atomic.make 0; a4 = Atomic.make 0;
    a_exhausted = Atomic.make 0;
  }

let acc_add (a : case_acc) (c : case_stats) =
  let add cell v = if v <> 0 then ignore (Atomic.fetch_and_add cell v) in
  add a.a1 c.case1;
  add a.a2a c.case2a;
  add a.a2b c.case2b;
  add a.a3a c.case3a;
  add a.a3b c.case3b;
  add a.a4 c.case4;
  add a.a_exhausted c.log_exhausted

(* Safe once the worker domains have joined (the engine returns only after
   its pool drains). *)
let acc_snapshot (a : case_acc) : case_stats =
  {
    case1 = Atomic.get a.a1;
    case2a = Atomic.get a.a2a;
    case2b = Atomic.get a.a2b;
    case3a = Atomic.get a.a3a;
    case3b = Atomic.get a.a3b;
    case4 = Atomic.get a.a4;
    log_exhausted = Atomic.get a.a_exhausted;
  }

type result =
  | Reproduced of {
      model : Solver.Model.t;
      crash : Interp.Crash.t;
      runs : int;
      elapsed_s : float;
    }
  | Not_reproduced of { runs : int; elapsed_s : float; timed_out : bool }

type stats = {
  engine : Concolic.Engine.stats;
  cases : case_stats;
  vars : Solver.Symvars.t;
  cache : Solver.Cache.snapshot option;
      (** solver-cache counters, when the memoizing cache was enabled *)
}

let reproduced = function Reproduced _ -> true | Not_reproduced _ -> false

(* §3.1 replay-case counters in the unified naming: forked = case 1
   (symbolic unlogged), completed = case 2a (logged match pins the
   direction), forced = case 2b (mismatch queues the forcing constraint),
   aborted_contradiction = case 3b (concrete mismatch kills the run). *)
let case_counters (c : case_stats) : (string * int) list =
  [
    ("forked", c.case1);
    ("completed", c.case2a);
    ("forced", c.case2b);
    ("pinned_concrete", c.case3a);
    ("aborted_contradiction", c.case3b);
    ("concrete_unlogged", c.case4);
    ("log_exhausted", c.log_exhausted);
  ]

(** [stats] in the unified counter view: the [engine] scope, the [replay]
    §3.1 case counters, and the [solver.cache] scope when the cache ran —
    flattened under scope [reproduce]. *)
let counters (s : stats) : Telemetry.Counters.snapshot =
  let parts =
    [
      Concolic.Engine.counters s.engine;
      Telemetry.Counters.make ~scope:"replay" (case_counters s.cases);
    ]
    @
    match s.cache with
    | Some c -> [ Solver.Cache.counters c ]
    | None -> []
  in
  Telemetry.Counters.union ~scope:"reproduce" parts

let elapsed = function
  | Reproduced r -> r.elapsed_s
  | Not_reproduced r -> r.elapsed_s

(** Checkpointed replay (§6): rewrites global state symbolically at the
    first [checkpoint()] the run executes.  Receives the run's variable
    registry, solver model and observation callback so restored cells
    integrate with the search like any other input. *)
type restore_fn =
  vars:Solver.Symvars.t ->
  model:Solver.Model.t ->
  observe:(int -> int -> unit) ->
  Interp.Eval.global_access ->
  unit

(* One guided replay run under input [model].  [record_cases] receives the
   run's own case counters once the run is over; with a parallel engine the
   callback must be thread-safe (reproduce merges with atomic adds).
   [sup_rules] is the decoded, verified suppression table; each run gets
   its own reconstruction cursor state. *)
let run_once ?(restore : restore_fn option)
    ?(sup_rules : Staticanalysis.Suppression.rule option array option)
    ~(prog : Minic.Program.t) ~(plan : Plan.t) ~(report : Report.t) ~vars
    ~seed ~max_steps ~(record_cases : case_stats -> unit)
    (model : Solver.Model.t) : Concolic.Engine.run_result =
  let cases = new_case_stats () in
  let observed = ref Solver.Model.empty in
  let observe id v = observed := Solver.Model.add id v !observed in
  (* with a checkpoint restore pending, the shipped logs describe only the
     post-checkpoint epoch: stay gated until the program checkpoints *)
  let gate = ref (restore = None) in
  let rk =
    Rkernel.create ~observe ~active:!gate ~vars ~model ~shape:report.shape
      ~syscall_log:report.syscall_log ~seed ()
  in
  let reader = Report.reader report in
  let recon = Option.map Staticanalysis.Suppression.Recon.create sup_rules in
  let trace = Concolic.Path.create () in
  let on_checkpoint access =
    match restore with
    | Some f when not !gate ->
        f ~vars ~model ~observe access;
        Rkernel.activate rk;
        gate := true
    | _ -> ()
  in
  let on_branch ~bid ~iter ~taken ~(cond : Interp.Value.t) =
    if not !gate then ()
    else begin
      (* the reconstruction cursor sees every executed branch: iteration 0
         of a loop resets the freshness of its invariant children even when
         this branch itself is logged normally *)
      let action =
        match recon with
        | None -> Staticanalysis.Suppression.Recon.Consume
        | Some rc -> Staticanalysis.Suppression.Recon.on_branch rc ~bid ~iter
      in
      let instrumented = Plan.is_instrumented plan bid in
      (* the bit the full log would carry for this execution: consumed from
         the wire (and fed back into the cursor state so dependent rules
         track the *consumed* stream, mirroring the field run) or
         synthesized by the branch's reconstruction rule; [None] = log
         exhausted, or the bit the rule references is unavailable *)
      let logged_bit () =
        match action with
        | Staticanalysis.Suppression.Recon.Consume -> (
            match Report.read_next reader with
            | None -> None
            | Some logged ->
                (match recon with
                | Some rc ->
                    Staticanalysis.Suppression.Recon.record rc ~bid logged
                | None -> ());
                Some logged)
        | Staticanalysis.Suppression.Recon.Elide pred -> Some pred
        | Staticanalysis.Suppression.Recon.Elide_unknown -> None
      in
      match cond.sym, instrumented with
      | Some sym, false ->
          cases.case1 <- cases.case1 + 1;
          Concolic.Path.record_branch trace ~bid ~taken sym
      | Some sym, true -> (
          match logged_bit () with
          | None ->
              cases.log_exhausted <- cases.log_exhausted + 1;
              Concolic.Path.record_branch trace ~bid ~taken sym
          | Some logged ->
              if logged = taken then begin
                cases.case2a <- cases.case2a + 1;
                Concolic.Path.record_branch ~negatable:false trace ~bid ~taken
                  sym
              end
              else begin
                (* record the (wrong) taken direction as negatable: the
                   engine turns it into a pending set forcing the logged
                   direction *)
                cases.case2b <- cases.case2b + 1;
                Concolic.Path.record_branch trace ~bid ~taken sym;
                raise
                  (Interp.Eval.Abort_run "2b: log contradicts symbolic branch")
              end)
      | None, true -> (
          match logged_bit () with
          | None -> cases.log_exhausted <- cases.log_exhausted + 1
          | Some logged ->
              if logged = taken then cases.case3a <- cases.case3a + 1
              else begin
                cases.case3b <- cases.case3b + 1;
                raise
                  (Interp.Eval.Abort_run "3b: log contradicts concrete branch")
              end)
      | None, false -> cases.case4 <- cases.case4 + 1
    end
  in
  let cfg =
    {
      Interp.Eval.inputs = Rkernel.symbolic_args rk;
      kernel = Rkernel.kernel rk;
      hooks =
        {
          Interp.Eval.on_branch;
          on_concretize =
            (fun sym v ->
              (* negatable: a pinned index may contradict a later log-forced
                 constraint (checkpoint-restored state especially); let the
                 engine revisit the pin *)
              if !gate then
                Concolic.Path.record_concretize ~negatable:true trace sym v);
          on_checkpoint;
        };
      max_steps;
      scheduler =
        (match report.schedule_log with
        | Some l when Instrument.Schedule_log.length l > 0 ->
            Some (Instrument.Schedule_log.replaying_scheduler l)
        | _ -> None);
    }
  in
  let r =
    try Interp.Eval.run prog cfg with
    | Rkernel.Log_mismatch msg ->
        {
          Interp.Eval.outcome = Interp.Crash.Aborted msg;
          cost = Interp.Cost.create ();
          output = "";
          steps = 0;
        }
  in
  record_cases cases;
  {
    Concolic.Engine.outcome = r.outcome;
    trace = Concolic.Path.entries trace;
    observed = !observed;
  }

(** Reproduce the bug described by [report].  [budget] is the developer's
    patience (the paper's one-hour limit, scaled).  [jobs] > 1 drains the
    pending frontier with a pool of worker domains; the forced-chain DFS
    order then becomes a priority hint (see DESIGN.md §"Parallel replay").
    [solver_cache] (default on) memoizes solver queries across pendings and
    across restarts — alpha-renaming makes the cache survive the fresh
    variable registry of a restart.  [cache] supplies an external cache to
    use instead (shared across a triage batch); [incr] likewise supplies an
    external incremental solver (one per triage cluster), while
    [incremental] (default true) just enables a private one; learned cores
    are registry-scoped, so a restart's fresh registry drops them but keeps
    the portfolio statistics.  [steal] (default true) picks the
    work-stealing frontier when [jobs] > 1.  [max_attempts] caps the
    restart count, after which a clean frontier exhaustion returns
    [Not_reproduced { timed_out = false; _ }]. *)
let reproduce ?(budget = Concolic.Engine.default_budget) ?(seed = 1)
    ?(max_steps = 5_000_000) ?restore ?(jobs = 1) ?(solver_cache = true)
    ?cache ?incr:ext_incr ?(incremental = true) ?(steal = true) ?max_attempts
    ?(telemetry = Telemetry.disabled) ~(prog : Minic.Program.t)
    ~(plan : Plan.t) (report : Report.t) : result * stats =
  Telemetry.Span.with_ telemetry ~name:"reproduce"
    ~attrs:
      [
        ("jobs", Telemetry.Event.Int jobs);
        ("solver_cache", Telemetry.Event.Bool solver_cache);
      ]
  @@ fun rsp ->
  (* §3.1 replay-case counters, bumped per run inside record_cases (each run
     counts locally, so this is one registry update per run, not per
     branch) *)
  let tel_cases =
    if Telemetry.enabled telemetry then
      Some
        (List.map
           (fun name ->
             Telemetry.Metrics.counter telemetry ("replay.case." ^ name))
           [ "forked"; "completed"; "forced"; "pinned_concrete";
             "aborted_contradiction"; "concrete_unlogged"; "log_exhausted" ])
    else None
  in
  let tel_record (c : case_stats) =
    match tel_cases with
    | None -> ()
    | Some cells ->
        List.iter2
          (fun cell (_, v) -> Telemetry.Metrics.incr ~by:v cell)
          cells (case_counters c)
  in
  (* A depth-first chain can die on a genuinely unsatisfiable forced
     pending (a concretisation pinned incompatibly early in the run).
     When the frontier exhausts with budget left, restart with a different
     seed: the initial random input changes and so do the pins — the
     paper's engine enjoys the same freedom in choosing fresh inputs. *)
  (* Fail-closed gate on the report's suppression table: decode it and
     re-derive every claimed proof against the program before any
     reconstructed bit is trusted.  A table that does not decode or does
     not verify aborts reproduction — replaying with unproven rules could
     silently pin wrong directions. *)
  let sup_rules =
    match report.suppression with
    | [] -> None
    | table -> (
        match
          Staticanalysis.Suppression.of_table
            ~nbranches:(Minic.Program.nbranches prog) table
        with
        | Error msg ->
            invalid_arg
              ("Replay.Guided.reproduce: suppression table rejected: " ^ msg)
        | Ok rules -> (
            match
              Staticanalysis.Suppression.verify
                ~instrumented:plan.Plan.instrumented prog table
            with
            | Error msg ->
                invalid_arg
                  ("Replay.Guided.reproduce: suppression proof rejected: "
                 ^ msg)
            | Ok () ->
                Telemetry.Span.addi rsp "suppressed_rules"
                  (List.length table);
                Some rules))
  in
  let started = Unix.gettimeofday () in
  let deadline = started +. budget.Concolic.Engine.max_time_s in
  let total_runs = ref 0 in
  let attempts = ref 0 in
  let cache =
    match cache with
    | Some c -> Some c
    | None -> if solver_cache then Some (Solver.Cache.create ()) else None
  in
  (* shared across restart attempts, like the cache: each attempt's fresh
     registry resets the learned cores but the portfolio keeps its
     cross-attempt strategy statistics *)
  let isolver =
    match ext_incr with
    | Some i -> Some i
    | None -> if incremental then Some (Solver.Incr.create ()) else None
  in
  let rec attempt attempt_seed acc_stats =
    incr attempts;
    let vars = Solver.Symvars.create () in
    let acc = new_case_acc () in
    let record_cases c =
      tel_record c;
      acc_add acc c
    in
    let run =
      run_once ?restore ?sup_rules ~prog ~plan ~report ~vars
        ~seed:attempt_seed ~max_steps ~record_cases
    in
    let should_stop _model (r : Concolic.Engine.run_result) =
      match r.outcome with
      | Interp.Crash.Crash c -> Interp.Crash.equal_site c report.crash
      | Interp.Crash.Exit _ | Interp.Crash.Budget_exhausted
      | Interp.Crash.Aborted _ ->
          false
    in
    let remaining_time = deadline -. Unix.gettimeofday () in
    let remaining_runs = budget.Concolic.Engine.max_runs - !total_runs in
    let engine_stats, found =
      Telemetry.Span.with_ telemetry ~parent:rsp ~name:"replay.attempt"
        ~attrs:[ ("seed", Telemetry.Event.Int attempt_seed) ]
        (fun asp ->
          let r, found =
            Concolic.Engine.explore ~vars
              ~budget:
                { Concolic.Engine.max_runs = max 1 remaining_runs;
                  max_time_s = max 0.1 remaining_time }
              ~jobs ?cache ?incr:isolver ~steal ~telemetry ~run ~should_stop ()
          in
          Telemetry.Span.addi asp "runs" r.Concolic.Engine.runs;
          (r, found))
    in
    total_runs := !total_runs + engine_stats.runs;
    let cases = acc_snapshot acc in
    let stats =
      { engine = engine_stats; cases; vars;
        cache = Option.map Solver.Cache.snapshot cache }
    in
    (match acc_stats with
    | Some (prev : stats) ->
        (* accumulate case counters across restarts for reporting *)
        merge_cases ~into:cases prev.cases;
        engine_stats.runs <- !total_runs
    | None -> ());
    match found with
    | Some (model, r) ->
        let crash =
          match r.outcome with Interp.Crash.Crash c -> c | _ -> assert false
        in
        ( Reproduced
            {
              model;
              crash;
              runs = !total_runs;
              elapsed_s = Unix.gettimeofday () -. started;
            },
          stats )
    | None ->
        let now = Unix.gettimeofday () in
        (* the budget is gone when the clock or the run count says so; a
           frontier that merely exhausted under [max_attempts] is NOT a
           timeout — reporting it as one used to make triage retry clean
           exhaustions at ever-larger budgets *)
        let budget_gone =
          now >= deadline || !total_runs >= budget.Concolic.Engine.max_runs
        in
        let attempts_left =
          match max_attempts with Some n -> !attempts < n | None -> true
        in
        if (not budget_gone) && attempts_left then
          attempt (attempt_seed + 1) (Some stats)
        else
          ( Not_reproduced
              {
                runs = !total_runs;
                elapsed_s = now -. started;
                timed_out = budget_gone;
              },
            stats )
  in
  let r, stats = attempt seed None in
  Telemetry.Span.adds rsp "outcome"
    (if reproduced r then "reproduced" else "not_reproduced");
  Telemetry.Span.addi rsp "runs" !total_runs;
  Telemetry.Span.addi rsp "attempts" !attempts;
  (r, stats)
