(** Guided replay: reproduce a bug from a partial branch log (§3.1).

    Drives the concolic engine with the report's bitvector.  At every
    executed branch the four cases of the paper apply:

    + symbolic, not instrumented — fork: assert the taken direction, leave
      the alternative on the pending list;
    + symbolic, instrumented — consume a bit; (a) match: pin the direction;
      (b) mismatch: queue the constraint set forcing the logged direction
      and abort the run;
    + concrete, instrumented — consume a bit; abort on mismatch (reachable
      after an earlier wrong turn at an uninstrumented symbolic branch, or
      — even under full instrumentation — when a store through a
      concretized symbolic index turns a branch that was symbolic in the
      field run concrete in this run; fuzzing found the second source, see
      test/corpus/known/);
    + concrete, not instrumented — proceed.

    A run reproduces the bug when it crashes at the recorded crash site.
    Pending-set selection is depth-first, as in the paper. *)

type case_stats = {
  mutable case1 : int;  (** symbolic, unlogged *)
  mutable case2a : int;  (** symbolic, logged, direction matches *)
  mutable case2b : int;  (** symbolic, logged, mismatch (abort + force) *)
  mutable case3a : int;  (** concrete, logged, matches *)
  mutable case3b : int;  (** concrete, logged, mismatch (abort) *)
  mutable case4 : int;  (** concrete, unlogged *)
  mutable log_exhausted : int;  (** bits missing (truncated log) *)
}

type result =
  | Reproduced of {
      model : Solver.Model.t;  (** the synthesised crashing input *)
      crash : Interp.Crash.t;
      runs : int;
      elapsed_s : float;
    }
  | Not_reproduced of { runs : int; elapsed_s : float; timed_out : bool }

type stats = {
  engine : Concolic.Engine.stats;
  cases : case_stats;
  vars : Solver.Symvars.t;  (** variable registry, for decoding the model *)
  cache : Solver.Cache.snapshot option;
      (** solver-cache counters, when the memoizing cache was enabled *)
}

val reproduced : result -> bool
val elapsed : result -> float

(** [stats] in the unified counter view (scope [reproduce]): the [engine]
    scope, the §3.1 case counters under [replay]
    ([forked]/[completed]/[forced]/[pinned_concrete]/
    [aborted_contradiction]/[concrete_unlogged]/[log_exhausted]) and the
    [solver.cache] scope when the memoizing cache ran.  The record types
    stay for the bench tables. *)
val counters : stats -> Telemetry.Counters.snapshot

(** Checkpointed replay (§6): rewrites global state symbolically at the
    first [checkpoint()] the run executes; until then the shipped logs are
    gated off.  See {!Checkpoint.Creplay}. *)
type restore_fn =
  vars:Solver.Symvars.t ->
  model:Solver.Model.t ->
  observe:(int -> int -> unit) ->
  Interp.Eval.global_access ->
  unit

(** Reproduce the bug described by [report].  [budget] is the developer's
    patience (the paper's one-hour limit, scaled); [seed] varies the random
    initial input.  [jobs] (default 1) sets the number of worker domains
    draining the pending frontier; [solver_cache] (default true) memoizes
    solver queries across pendings and restarts, and [cache] supplies an
    external {!Solver.Cache.t} to use instead — the triage batch scheduler
    shares one across a whole batch.  [incremental] (default true) solves
    pendings through a {!Solver.Incr.t} (scope reuse, learned-core pruning,
    strategy portfolio); [incr] supplies an external one instead — the
    triage scheduler opens one per cluster.  Learned cores are
    registry-scoped and reset on each restart's fresh registry; portfolio
    statistics survive.  [steal] (default true) selects the work-stealing
    frontier when [jobs] > 1.  [max_attempts] caps the
    restart-with-a-fresh-seed loop; once hit, a clean frontier exhaustion
    returns [Not_reproduced] with [timed_out = false] (a [true] there
    always means the clock or the run budget ran out, never mere
    exhaustion).  [elapsed_s] is wall-clock time inside this call; callers
    that retry with escalating budgets must accumulate it across calls
    (see {!Triage.Sched}).  The §3.1 case counters are accumulated with
    atomic adds, so totals are exact under any [jobs] value.  Whatever the
    worker count, a result of [Reproduced] carries a model that crashes at
    the reported site — scheduling can change *which* crashing input is
    found first, never whether one exists.

    [telemetry] wraps the search in a [reproduce] span with one
    [replay.attempt] child per restart (each wrapping its engine
    exploration), and accumulates the §3.1 [replay.case.*] counters — one
    registry update per run, so the per-branch hot path is untouched.

    When the report carries a suppression table, it is decoded and
    proof-checked ({!Staticanalysis.Suppression.verify}) once up front;
    elided branches then take their bit from the reconstruction rules
    instead of the log reader.  Raises [Invalid_argument] when the table
    fails to decode or a claimed proof is rejected (fail-closed: unproven
    rules must never steer replay). *)
val reproduce :
  ?budget:Concolic.Engine.budget ->
  ?seed:int ->
  ?max_steps:int ->
  ?restore:restore_fn ->
  ?jobs:int ->
  ?solver_cache:bool ->
  ?cache:Solver.Cache.t ->
  ?incr:Solver.Incr.t ->
  ?incremental:bool ->
  ?steal:bool ->
  ?max_attempts:int ->
  ?telemetry:Telemetry.t ->
  prog:Minic.Program.t ->
  plan:Instrument.Plan.t ->
  Instrument.Report.t ->
  result * stats
