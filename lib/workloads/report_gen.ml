(** Seeded crash-report load generator (see report_gen.mli). *)

module Methods = Instrument.Methods

type source = {
  s_key : string;  (** workload key ("mkdir", "userver") *)
  s_program : string;  (** program name the wire form will carry *)
  s_meth : Methods.t;
  s_prog : unit -> Minic.Program.t;
  s_scenario : unit -> Concolic.Scenario.t;
  s_analyze_lib : bool;
}

let coreutils_source util meth =
  let e = Coreutils.find util in
  {
    s_key = util;
    s_program = util;
    s_meth = meth;
    s_prog = (fun () -> Lazy.force e.Coreutils.prog);
    s_scenario = (fun () -> Coreutils.crash_scenario e);
    s_analyze_lib = true;
  }

(* µServer crashes arrive from simulated clients: the experiment's
   requests ride behind a benign Http_gen preamble-free stream (the
   experiment scenario itself), named "userver-expN" on the wire *)
let userver_source id meth =
  let e = Userver.experiment id in
  {
    s_key = "userver";
    s_program = Printf.sprintf "userver-exp%d" id;
    s_meth = meth;
    s_prog = (fun () -> Lazy.force Userver.prog);
    s_scenario = (fun () -> Userver.experiment_scenario e);
    s_analyze_lib = false;
  }

let quick_sources () =
  [
    coreutils_source "mkdir" Methods.All_branches;
    coreutils_source "paste" Methods.Static;
    userver_source 1 Methods.Static;
  ]

let full_sources () =
  [
    coreutils_source "mkdir" Methods.All_branches;
    coreutils_source "mknod" Methods.Static;
    coreutils_source "mkfifo" Methods.All_branches;
    coreutils_source "paste" Methods.Static;
    userver_source 1 Methods.Static;
    userver_source 3 Methods.Static;
  ]

type t = {
  config : Bugrepro.Pipeline.Config.t;
  sources : source list;
  analyses : (string, Bugrepro.Pipeline.analysis) Hashtbl.t;  (** by s_key *)
  plans :
    ( string * Methods.t,
      Minic.Program.t * Instrument.Plan.t )
    Hashtbl.t;  (** by (s_key, method) *)
  mutable wires : string array option;  (** one recorded wire per source *)
}

let make ?(quick = false) ~config () =
  {
    config;
    sources = (if quick then quick_sources () else full_sources ());
    analyses = Hashtbl.create 8;
    plans = Hashtbl.create 8;
    wires = None;
  }

let bases t = List.map (fun s -> (s.s_program, s.s_meth)) t.sources

let source_config t (s : source) =
  Bugrepro.Pipeline.Config.with_analyze_lib s.s_analyze_lib t.config

let analysis_of t (s : source) =
  match Hashtbl.find_opt t.analyses s.s_key with
  | Some a -> a
  | None ->
      let a = Bugrepro.Pipeline.Run.analyze (source_config t s) (s.s_prog ()) in
      Hashtbl.add t.analyses s.s_key a;
      a

let plan_of t (s : source) =
  match Hashtbl.find_opt t.plans (s.s_key, s.s_meth) with
  | Some pp -> pp
  | None ->
      let analysis = analysis_of t s in
      let plan =
        Bugrepro.Pipeline.Run.plan (source_config t s) analysis s.s_meth
      in
      let pp = (analysis.Bugrepro.Pipeline.prog, plan) in
      Hashtbl.add t.plans (s.s_key, s.s_meth) pp;
      pp

(* Program-name resolution, ignoring the method: exact scenario name,
   then workload key, then the prefix before the first '-'. *)
let find_source t ~program =
  let by key =
    List.find_opt (fun s -> String.equal s.s_key key) t.sources
  in
  match
    List.find_opt (fun s -> String.equal s.s_program program) t.sources
  with
  | Some s -> Some s
  | None -> (
      match by program with
      | Some s -> Some s
      | None -> (
          match String.index_opt program '-' with
          | None -> None
          | Some i -> by (String.sub program 0 i)))

(* The wire form names the program by its field-run scenario name; match
   exactly first, then by the prefix before the first '-' (the same
   convention the CLI's triage resolver uses for "userver-exp3"). *)
let source_for t ~program ~meth =
  let matches (s : source) key = String.equal s.s_key key && s.s_meth = meth in
  let by key = List.find_opt (fun s -> matches s key) t.sources in
  let found =
    match List.find_opt (fun s -> String.equal s.s_program program) t.sources with
    | Some s when s.s_meth = meth -> Some s
    | _ -> (
        match by program with
        | Some s -> Some s
        | None -> (
            match String.index_opt program '-' with
            | None -> None
            | Some i -> by (String.sub program 0 i)))
  in
  match found with
  | Some s -> Ok s
  | None ->
      Error
        (Printf.sprintf "report_gen: no base for %s (%s)" program
           (Methods.to_string meth))

let plan_for t ~program ~meth =
  Result.map (plan_of t) (source_for t ~program ~meth)

let crash_base t ~program ~meth =
  match find_source t ~program with
  | None ->
      Error
        (Printf.sprintf "report_gen: no base for %s (%s)" program
           (Methods.to_string meth))
  | Some s ->
      (* re-key the source on the requested method: [plan_of] memoizes by
         (workload, method), so any §2.3 plan can be compiled over a
         recorded base regardless of the method it was recorded with *)
      let s = { s with s_meth = meth } in
      let prog, plan = plan_of t s in
      Ok (prog, plan, s.s_scenario ())

let record_wires t =
  match t.wires with
  | Some w -> w
  | None ->
      let w =
        t.sources
        |> List.map (fun s ->
               let _prog, plan = plan_of t s in
               let _field, report =
                 Bugrepro.Pipeline.Run.field_run_report (source_config t s)
                   ~plan (s.s_scenario ())
               in
               match report with
               | Some r -> Instrument.Wire.serialize r
               | None ->
                   failwith
                     (s.s_program ^ ": crash scenario did not crash"))
        |> Array.of_list
      in
      t.wires <- Some w;
      w

(* ------------------------------------------------------------------ *)

type report = { client : int; path : string; wire : string; torn : bool }

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go 0

(* cut into the tail of the branch payload hex (wire-v4 [branch-enc]
   token stream, or [branch-log] on raw wires): strictly malformed,
   salvageable — the shape a crashing process tearing the tail of its
   own log buffer leaves behind.  Cuts land at one of three quantized
   depths (97..99% of the payload) so the torn variants stay few, cluster
   tightly, and replay cheaply — the missing tail is short enough that
   guided replay reliably reconstructs it whatever the worker count. *)
let tear ?cut_pct ?lost_hex rng wire =
  let key =
    match find_sub wire "branch-enc: " with
    | Some _ -> "branch-enc: "
    | None -> "branch-log: "
  in
  match find_sub wire key with
  | None -> wire
  | Some pos ->
      let start = pos + String.length key in
      let hex_end =
        match String.index_from_opt wire start '\n' with
        | Some e -> e
        | None -> String.length wire
      in
      let hex_len = hex_end - start in
      if hex_len <= 2 then String.sub wire 0 start
      else
        let cut =
          match lost_hex with
          | Some k ->
              (* absolute tail loss: the unflushed buffer tail a crashing
                 process drops is a fixed byte count, whatever the
                 instrumentation density — so denser plans lose a shorter
                 execution suffix *)
              max 1 (min (hex_len - 1) (hex_len - max 1 k))
          | None ->
              let pct =
                match cut_pct with
                | Some p -> max 1 (min 99 p)
                | None -> [| 97; 98; 99 |].(Osmodel.Rng.range rng 0 2)
              in
              max 1 (min (hex_len - 1) (hex_len * pct / 100))
        in
        String.sub wire 0 (start + cut)

let stream t ~seed ~clients ~torn_pct n : report list =
  if clients < 1 then invalid_arg "Report_gen.stream: clients must be >= 1";
  if n < 0 then invalid_arg "Report_gen.stream: n must be >= 0";
  let wires = record_wires t in
  let n_bases = Array.length wires in
  let rng = Osmodel.Rng.create seed in
  let torn_permille = int_of_float (torn_pct *. 1000.0) in
  List.init n (fun i ->
      (* duplicates dominate, as in a real fleet: a client's crash is a
         seeded pick over the recorded bases, biased towards the first
         (hot) bug by drawing twice and keeping the smaller index *)
      let a = Osmodel.Rng.int rng n_bases in
      let b = Osmodel.Rng.int rng n_bases in
      let base = min a b in
      let client = Osmodel.Rng.int rng clients in
      let torn = Osmodel.Rng.int rng 1000 < torn_permille in
      let wire = if torn then tear rng wires.(base) else wires.(base) in
      {
        client;
        path = Printf.sprintf "client-%04d/r%05d.report" client i;
        wire;
        torn;
      })
