(** Seeded crash-report load generator: a fleet of crashing clients.

    The streaming triage service ({!Triage.Service} — not a dependency
    of this library) ingests crash reports "from millions of users"; this
    module simulates that fleet deterministically.  A handful of genuine
    crash reports are recorded once — the coreutils demo bugs plus
    µServer request-stream crashes ({!Userver.experiments}, the clients'
    traffic shape coming from {!Http_gen}-style request streams) — and a
    seeded stream of [n] reports is synthesized over them: duplicates
    dominate (the WER premise), each report is attributed to one of
    [clients] simulated clients, and a seeded fraction arrives torn
    mid-branch-log, exactly as a crashing process tearing its own log
    buffer would leave it.  Same (seed, clients, torn_pct, n) — same
    byte-identical stream. *)

type t

(** [make ~config ()] prepares the generator lazily; nothing is analyzed
    or run until first use.  [quick] records 3 bases instead of 6. *)
val make : ?quick:bool -> config:Bugrepro.Pipeline.Config.t -> unit -> t

(** The (program, method) bases backing the stream, in recording order.
    Program names are wire-form names ("mkdir", "userver-exp1", ...). *)
val bases : t -> (string * Instrument.Methods.t) list

(** Resolve a report's (program, method) back to its analyzed program
    and instrumentation plan — exact program-name match first, then the
    prefix before the first ['-'] ("userver-exp3" → "userver").  Memoized
    (one analysis per workload, one plan per method); callers wrap this
    into a {!Triage.Sched.resolve}. *)
val plan_for :
  t ->
  program:string ->
  meth:Instrument.Methods.t ->
  (Minic.Program.t * Instrument.Plan.t, string) result

type report = {
  client : int;  (** simulated client id in [0, clients) *)
  path : string;  (** synthetic provenance, e.g. "client-0007/r00042.report" *)
  wire : string;  (** wire text; torn mid-hex when [torn] *)
  torn : bool;
}

(** [stream t ~seed ~clients ~torn_pct n] synthesizes [n] reports.
    Records the base crashes on first call (the expensive step: one
    analysis + field run per base); every subsequent call reuses them. *)
val stream :
  t -> seed:int -> clients:int -> torn_pct:float -> int -> report list

(** [tear rng wire] cuts a wire text inside the tail of its branch
    payload (97–99% of the hex, seeded): strictly malformed, always
    salvageable — the shape a crashing process tearing its own log
    buffer leaves.  [cut_pct] (clamped to 1..99) pins the cut depth as a
    fraction instead.  [lost_hex] (takes precedence) drops an {e
    absolute} tail of that many hex chars — the realistic model: a
    crashing process loses its fixed-size unflushed buffer tail whatever
    the instrumentation density, so a denser log loses a {e shorter}
    execution suffix.  Exposed for fleet simulations that tear their own
    streams (the adaptive deployment loop). *)
val tear : ?cut_pct:int -> ?lost_hex:int -> Osmodel.Rng.t -> string -> string

(** Resolve a program name (method-agnostic — exact scenario name, then
    workload key, then the prefix before the first ['-']) to its analyzed
    program, the plan compiled for [meth] over that base, and a {e fresh}
    crash scenario.  The adaptive deployment loop's entry point: it
    re-runs a cohort's field workload under successively refined plans,
    so unlike {!plan_for} the requested method need not be the one the
    base was recorded with.  Memoized like {!plan_for}. *)
val crash_base :
  t ->
  program:string ->
  meth:Instrument.Methods.t ->
  (Minic.Program.t * Instrument.Plan.t * Concolic.Scenario.t, string) result
