(** The end-to-end pipeline of the paper, as one API.

    Developer site, pre-deployment:
    {ol {- [analyze]: run dynamic (time-budgeted concolic) and/or static
           (dataflow + points-to) analysis on the program;}
        {- [plan]: choose an instrumentation method and compute the branch
           set to instrument (retained by the developer);}}

    User site:
    {ol {- [field_run]: execute the instrumented program on real input,
           logging one bit per instrumented branch (plus selected syscall
           results);}
        {- on a crash, [Instrument.Report.of_field_run] assembles the bug
           report — no input content included.}}

    Developer site, post-report:
    {ol {- [reproduce]: guided symbolic replay along the partial branch
           trace until an input crashing at the reported site is found.}} *)

open Minic

type analysis = {
  prog : Program.t;
  dynamic : Concolic.Dynamic.result option;
  static : Staticanalysis.Static.result option;
}

(** Pre-deployment analysis.  [test_scenario] is the developer's test
    environment for dynamic analysis (the paper leverages the testing
    effort); [dynamic_budget] is the symbolic-execution time knob (LC vs
    HC); [analyze_lib = false] reproduces the uServer setup where the
    merged source was too large for points-to analysis. *)
let analyze ?(dynamic_budget = Concolic.Engine.default_budget)
    ?(analyze_lib = true) ?(refine = true) ?(jobs = 1) ?test_scenario
    (prog : Program.t) : analysis =
  let dynamic =
    Option.map (Concolic.Dynamic.analyze ~budget:dynamic_budget ~jobs) test_scenario
  in
  let static = Some (Staticanalysis.Static.analyze ~analyze_lib ~refine prog) in
  { prog; dynamic; static }

(** Precision report of the static labels against the dynamic ground
    truth; [None] unless both analyses ran. *)
let precision (a : analysis) : Staticanalysis.Precision.report option =
  match a.static, a.dynamic with
  | Some s, Some d ->
      Some (Staticanalysis.Static.precision s a.prog ~dynamic:d.labels)
  | (Some _ | None), _ -> None

(** Instrumentation plan for a method, from the available analyses. *)
let plan (a : analysis) (meth : Instrument.Methods.t) : Instrument.Plan.t =
  Instrument.Plan.make
    ~nbranches:(Program.nbranches a.prog)
    ?dynamic:(Option.map (fun (d : Concolic.Dynamic.result) -> d.labels) a.dynamic)
    ?static:(Option.map (fun (s : Staticanalysis.Static.result) -> s.labels) a.static)
    meth

(** User-site execution (re-exported from {!Instrument.Field_run}). *)
let field_run = Instrument.Field_run.run

(** Full user-site step: run and, if it crashed, build the report. *)
let field_run_report ?log_syscalls ~plan:p (sc : Concolic.Scenario.t) :
    Instrument.Field_run.result * Instrument.Report.t option =
  let r = Instrument.Field_run.run ?log_syscalls ~plan:p sc in
  (r, Instrument.Report.of_field_run ~sc ~plan:p r)

(** Developer-site bug reproduction (re-exported from {!Replay}). *)
let reproduce = Replay.Guided.reproduce

(* ------------------------------------------------------------------ *)
(* Measurement oracle for Table 4 / Table 7 style statistics *)

type symbolic_logging_stats = {
  logged_locs : int;  (** symbolic branch locations that are instrumented *)
  logged_execs : int;  (** symbolic branch executions logged *)
  unlogged_locs : int;  (** symbolic branch locations not instrumented *)
  unlogged_execs : int;
}

(** Replay-difficulty oracle: execute [sc] once with symbolic inputs over
    the concrete simulated OS and count, among branch executions whose
    condition is actually input-dependent, how many hit instrumented
    locations.  The paper's Tables 4, 7 and 8 report exactly these four
    numbers, and shows they predict replay time.

    [syscall_results_symbolic] controls whether branches that test
    system-call *results* count as symbolic: false models replay with a
    syscall log (results are replayed verbatim — Tables 4 and 7), true
    models replay without one (results must be searched — Table 8). *)
let measure_symbolic_logging ?(syscall_results_symbolic = false)
    ~(plan : Instrument.Plan.t) (sc : Concolic.Scenario.t) :
    symbolic_logging_stats =
  let vars = Solver.Symvars.create () in
  let world, handle = Osmodel.World.kernel sc.world in
  let sk =
    Concolic.Sym_kernel.create ~vars ~model:Solver.Model.empty ~world ~handle
      ~sym_results:syscall_results_symbolic ()
  in
  let n = Program.nbranches sc.prog in
  let sym_execs = Array.make n 0 in
  let hooks =
    {
      Interp.Eval.no_hooks with
      Interp.Eval.on_branch =
        (fun ~bid ~taken:_ ~cond ->
          if Interp.Value.is_symbolic cond then sym_execs.(bid) <- sym_execs.(bid) + 1);
    }
  in
  let caps = (Concolic.Scenario.shape_of sc).arg_caps in
  let cfg =
    {
      Interp.Eval.inputs =
        Concolic.Sym_kernel.symbolic_args ~vars ~model:Solver.Model.empty sc ~caps;
      kernel = Concolic.Sym_kernel.kernel sk;
      hooks;
      max_steps = sc.max_steps;
      scheduler = None;
    }
  in
  let (_ : Interp.Eval.result) = Interp.Eval.run sc.prog cfg in
  let stats = ref { logged_locs = 0; logged_execs = 0; unlogged_locs = 0; unlogged_execs = 0 } in
  Array.iteri
    (fun bid execs ->
      if execs > 0 then
        if Instrument.Plan.is_instrumented plan bid then
          stats :=
            { !stats with logged_locs = !stats.logged_locs + 1;
              logged_execs = !stats.logged_execs + execs }
        else
          stats :=
            { !stats with unlogged_locs = !stats.unlogged_locs + 1;
              unlogged_execs = !stats.unlogged_execs + execs })
    sym_execs;
  !stats

(* ------------------------------------------------------------------ *)
(* Branch-behaviour measurement (Figure 1 / Figure 3 style) *)

type branch_exec_stats = {
  total_execs : int array;  (** executions per branch id *)
  symbolic_execs : int array;  (** executions with a symbolic condition *)
}

(** Run [sc] once with symbolic inputs and record per-branch-location
    execution counts, total and symbolic — the data behind the paper's
    Figures 1 and 3 and its two branch-behaviour observations. *)
let measure_branch_behaviour (sc : Concolic.Scenario.t) : branch_exec_stats =
  let vars = Solver.Symvars.create () in
  let world, handle = Osmodel.World.kernel sc.world in
  let sk =
    Concolic.Sym_kernel.create ~vars ~model:Solver.Model.empty ~world ~handle
      ~sym_results:true ()
  in
  let n = Program.nbranches sc.prog in
  let total = Array.make n 0 in
  let sym = Array.make n 0 in
  let hooks =
    {
      Interp.Eval.no_hooks with
      Interp.Eval.on_branch =
        (fun ~bid ~taken:_ ~cond ->
          total.(bid) <- total.(bid) + 1;
          if Interp.Value.is_symbolic cond then sym.(bid) <- sym.(bid) + 1);
    }
  in
  let caps = (Concolic.Scenario.shape_of sc).arg_caps in
  let cfg =
    {
      Interp.Eval.inputs =
        Concolic.Sym_kernel.symbolic_args ~vars ~model:Solver.Model.empty sc ~caps;
      kernel = Concolic.Sym_kernel.kernel sk;
      hooks;
      max_steps = sc.max_steps;
      scheduler = None;
    }
  in
  let (_ : Interp.Eval.result) = Interp.Eval.run sc.prog cfg in
  { total_execs = total; symbolic_execs = sym }
