(** The end-to-end pipeline of the paper, as one API.

    Developer site, pre-deployment:
    {ol {- [analyze]: run dynamic (time-budgeted concolic) and/or static
           (dataflow + points-to) analysis on the program;}
        {- [plan]: choose an instrumentation method and compute the branch
           set to instrument (retained by the developer);}}

    User site:
    {ol {- [field_run]: execute the instrumented program on real input,
           logging one bit per instrumented branch (plus selected syscall
           results);}
        {- on a crash, [Instrument.Report.of_field_run] assembles the bug
           report — no input content included.}}

    Developer site, post-report:
    {ol {- [reproduce]: guided symbolic replay along the partial branch
           trace until an input crashing at the reported site is found.}} *)

open Minic

type analysis = {
  prog : Program.t;
  dynamic : Concolic.Dynamic.result option;
  static : Staticanalysis.Static.result option;
}

(** One value carrying every pipeline knob.  Replaces the optional-argument
    sprawl of the stage functions: build one with {!Config.default} and the
    [with_*] setters, hand it to every {!Run} stage. *)
module Config = struct
  type t = {
    dynamic_budget : Concolic.Engine.budget;
        (** symbolic-execution time knob for {!Run.analyze} (LC vs HC) *)
    replay_budget : Concolic.Engine.budget;
        (** developer's patience for {!Run.reproduce} *)
    analyze_lib : bool;  (** false = the paper's uServer setup (§5.3) *)
    refine : bool;  (** false = seed (unrefined) static pipeline *)
    jobs : int;  (** worker domains for exploration and replay *)
    log_syscalls : bool;  (** ship a syscall log with the branch log *)
    encode : bool;
        (** field runs write branch bits through the streaming
            {!Instrument.Codec} and reports ship the encoded stream (wire
            v4); false is the A/B raw-log baseline *)
    suppression : bool;
        (** refine plans with the probe-elision analysis: statically
            redundant instrumented branches ship a reconstruction rule
            instead of log bits *)
    solver_cache : bool;  (** memoize solver queries during replay *)
    incremental : bool;
        (** solve pendings through a scoped incremental solver (core
            pruning, scope reuse, strategy portfolio) *)
    steal : bool;  (** work-stealing frontier when [jobs] > 1 *)
    seed : int;  (** replay's initial random input *)
    replay_max_steps : int;  (** interpreter step cap per replay run *)
    telemetry : Telemetry.t;
        (** handle threaded through every stage; {!Telemetry.disabled} by
            default, where every probe is a no-op *)
  }

  let default =
    {
      dynamic_budget = Concolic.Engine.default_budget;
      replay_budget = Concolic.Engine.default_budget;
      analyze_lib = true;
      refine = true;
      jobs = 1;
      log_syscalls = true;
      encode = true;
      suppression = false;
      solver_cache = true;
      incremental = true;
      steal = true;
      seed = 1;
      replay_max_steps = 5_000_000;
      telemetry = Telemetry.disabled;
    }

  (* setters take the config last so they chain with [|>] *)
  let with_jobs jobs c = { c with jobs }

  let with_budget ?dynamic ?replay c =
    let c =
      match dynamic with Some b -> { c with dynamic_budget = b } | None -> c
    in
    match replay with Some b -> { c with replay_budget = b } | None -> c

  let with_telemetry telemetry c = { c with telemetry }
  let with_analyze_lib analyze_lib c = { c with analyze_lib }
  let with_refine refine c = { c with refine }
  let with_log_syscalls log_syscalls c = { c with log_syscalls }
  let with_encode encode c = { c with encode }
  let with_suppression suppression c = { c with suppression }
  let with_solver_cache solver_cache c = { c with solver_cache }
  let with_incremental incremental c = { c with incremental }
  let with_steal steal c = { c with steal }
  let with_seed seed c = { c with seed }
  let with_replay_max_steps replay_max_steps c = { c with replay_max_steps }
end

(** The pipeline stages, each taking the {!Config.t} first.  Stages open
    telemetry spans on [config.telemetry]: [analyze] > [analyze.dynamic] /
    [analyze.static], [plan], [field_run], [reproduce]. *)
module Run = struct
  let analyze (c : Config.t) ?test_scenario (prog : Program.t) : analysis =
    Telemetry.Span.with_ c.telemetry ~name:"analyze" @@ fun sp ->
    let dynamic =
      Option.map
        (Concolic.Dynamic.analyze ~budget:c.dynamic_budget ~jobs:c.jobs
           ~incremental:c.incremental ~steal:c.steal ~telemetry:c.telemetry)
        test_scenario
    in
    let static =
      Some
        (Staticanalysis.Static.analyze ~analyze_lib:c.analyze_lib
           ~refine:c.refine ~telemetry:c.telemetry prog)
    in
    Telemetry.Span.addi sp "branches" (Program.nbranches prog);
    { prog; dynamic; static }

  let plan (c : Config.t) (a : analysis) (meth : Instrument.Methods.t) :
      Instrument.Plan.t =
    Telemetry.Span.with_ c.telemetry ~name:"plan"
      ~attrs:
        [ ("method", Telemetry.Event.Str (Instrument.Methods.to_string meth)) ]
    @@ fun sp ->
    let p =
      Instrument.Plan.make
        ~nbranches:(Program.nbranches a.prog)
        ?dynamic:
          (Option.map
             (fun (d : Concolic.Dynamic.result) -> d.labels)
             a.dynamic)
        ?static:
          (Option.map
             (fun (s : Staticanalysis.Static.result) -> s.labels)
             a.static)
        meth
    in
    let p =
      if not c.suppression then p
      else begin
        let sup =
          Staticanalysis.Suppression.analyze
            ~instrumented:p.Instrument.Plan.instrumented a.prog
        in
        (* the analysis is proof-producing; re-check its own output with
           the independent verifier before the plan is accepted, exactly
           as replay will for the shipped table *)
        (match
           Staticanalysis.Suppression.verify
             ~instrumented:p.Instrument.Plan.instrumented a.prog
             (Staticanalysis.Suppression.to_table sup)
         with
        | Ok () -> ()
        | Error msg -> failwith ("Pipeline.Run.plan: suppression proof rejected: " ^ msg));
        Telemetry.Span.addi sp "elided"
          (Staticanalysis.Suppression.n_elided sup);
        Instrument.Plan.with_suppression p sup
      end
    in
    Telemetry.Span.addi sp "instrumented" p.n_instrumented;
    p

  let field_run (c : Config.t) ~plan (sc : Concolic.Scenario.t) :
      Instrument.Field_run.result =
    Instrument.Field_run.run ~log_syscalls:c.log_syscalls ~encode:c.encode
      ~telemetry:c.telemetry ~plan sc

  let field_run_report (c : Config.t) ~plan:p (sc : Concolic.Scenario.t) :
      Instrument.Field_run.result * Instrument.Report.t option =
    let r = field_run c ~plan:p sc in
    (r, Instrument.Report.of_field_run ~sc ~plan:p r)

  let reproduce (c : Config.t) ?restore ~(prog : Program.t)
      ~(plan : Instrument.Plan.t) (report : Instrument.Report.t) :
      Replay.Guided.result * Replay.Guided.stats =
    Replay.Guided.reproduce ~budget:c.replay_budget ~seed:c.seed
      ~max_steps:c.replay_max_steps ?restore ~jobs:c.jobs
      ~solver_cache:c.solver_cache ~incremental:c.incremental ~steal:c.steal
      ~telemetry:c.telemetry ~prog ~plan report
end

(** Pre-deployment analysis.  [test_scenario] is the developer's test
    environment for dynamic analysis (the paper leverages the testing
    effort); [dynamic_budget] is the symbolic-execution time knob (LC vs
    HC); [analyze_lib = false] reproduces the uServer setup where the
    merged source was too large for points-to analysis.

    Deprecated entry point: thin wrapper over {!Run.analyze}, kept so
    pre-[Config] callers compile unchanged.  New code should build a
    {!Config.t}. *)
let analyze ?(dynamic_budget = Concolic.Engine.default_budget)
    ?(analyze_lib = true) ?(refine = true) ?(jobs = 1) ?test_scenario
    (prog : Program.t) : analysis =
  let c =
    Config.default
    |> Config.with_budget ~dynamic:dynamic_budget
    |> Config.with_analyze_lib analyze_lib
    |> Config.with_refine refine |> Config.with_jobs jobs
  in
  Run.analyze c ?test_scenario prog

(** Precision report of the static labels against the dynamic ground
    truth; [None] unless both analyses ran. *)
let precision (a : analysis) : Staticanalysis.Precision.report option =
  match a.static, a.dynamic with
  | Some s, Some d ->
      Some (Staticanalysis.Static.precision s a.prog ~dynamic:d.labels)
  | (Some _ | None), _ -> None

(** Instrumentation plan for a method, from the available analyses.
    Deprecated entry point: wrapper over {!Run.plan} with the default
    config (no telemetry). *)
let plan (a : analysis) (meth : Instrument.Methods.t) : Instrument.Plan.t =
  Run.plan Config.default a meth

(** User-site execution (re-exported from {!Instrument.Field_run}).
    Deprecated entry point: new code should use {!Run.field_run}. *)
let field_run ?log_syscalls ~plan sc =
  Instrument.Field_run.run ?log_syscalls ~plan sc

(** Full user-site step: run and, if it crashed, build the report.
    Deprecated entry point: wrapper over {!Run.field_run_report}. *)
let field_run_report ?(log_syscalls = true) ~plan:p
    (sc : Concolic.Scenario.t) :
    Instrument.Field_run.result * Instrument.Report.t option =
  Run.field_run_report
    (Config.default |> Config.with_log_syscalls log_syscalls)
    ~plan:p sc

(** Developer-site bug reproduction (re-exported from {!Replay}).
    Deprecated entry point: new code should use {!Run.reproduce}. *)
let reproduce ?budget ?seed ?max_steps ?restore ?jobs ?solver_cache ~prog
    ~plan report =
  Replay.Guided.reproduce ?budget ?seed ?max_steps ?restore ?jobs
    ?solver_cache ~prog ~plan report

(* ------------------------------------------------------------------ *)
(* Measurement oracle for Table 4 / Table 7 style statistics *)

type symbolic_logging_stats = {
  logged_locs : int;  (** symbolic branch locations that are instrumented *)
  logged_execs : int;  (** symbolic branch executions logged *)
  unlogged_locs : int;  (** symbolic branch locations not instrumented *)
  unlogged_execs : int;
}

(** Replay-difficulty oracle: execute [sc] once with symbolic inputs over
    the concrete simulated OS and count, among branch executions whose
    condition is actually input-dependent, how many hit instrumented
    locations.  The paper's Tables 4, 7 and 8 report exactly these four
    numbers, and shows they predict replay time.

    [syscall_results_symbolic] controls whether branches that test
    system-call *results* count as symbolic: false models replay with a
    syscall log (results are replayed verbatim — Tables 4 and 7), true
    models replay without one (results must be searched — Table 8). *)
let measure_symbolic_logging ?(syscall_results_symbolic = false)
    ~(plan : Instrument.Plan.t) (sc : Concolic.Scenario.t) :
    symbolic_logging_stats =
  let vars = Solver.Symvars.create () in
  let world, handle = Osmodel.World.kernel sc.world in
  let sk =
    Concolic.Sym_kernel.create ~vars ~model:Solver.Model.empty ~world ~handle
      ~sym_results:syscall_results_symbolic ()
  in
  let n = Program.nbranches sc.prog in
  let sym_execs = Array.make n 0 in
  let hooks =
    {
      Interp.Eval.no_hooks with
      Interp.Eval.on_branch =
        (fun ~bid ~iter:_ ~taken:_ ~cond ->
          if Interp.Value.is_symbolic cond then sym_execs.(bid) <- sym_execs.(bid) + 1);
    }
  in
  let caps = (Concolic.Scenario.shape_of sc).arg_caps in
  let cfg =
    {
      Interp.Eval.inputs =
        Concolic.Sym_kernel.symbolic_args ~vars ~model:Solver.Model.empty sc ~caps;
      kernel = Concolic.Sym_kernel.kernel sk;
      hooks;
      max_steps = sc.max_steps;
      scheduler = None;
    }
  in
  let (_ : Interp.Eval.result) = Interp.Eval.run sc.prog cfg in
  let stats = ref { logged_locs = 0; logged_execs = 0; unlogged_locs = 0; unlogged_execs = 0 } in
  Array.iteri
    (fun bid execs ->
      if execs > 0 then
        if Instrument.Plan.is_instrumented plan bid then
          stats :=
            { !stats with logged_locs = !stats.logged_locs + 1;
              logged_execs = !stats.logged_execs + execs }
        else
          stats :=
            { !stats with unlogged_locs = !stats.unlogged_locs + 1;
              unlogged_execs = !stats.unlogged_execs + execs })
    sym_execs;
  !stats

(* ------------------------------------------------------------------ *)
(* Branch-behaviour measurement (Figure 1 / Figure 3 style) *)

type branch_exec_stats = {
  total_execs : int array;  (** executions per branch id *)
  symbolic_execs : int array;  (** executions with a symbolic condition *)
}

(** Run [sc] once with symbolic inputs and record per-branch-location
    execution counts, total and symbolic — the data behind the paper's
    Figures 1 and 3 and its two branch-behaviour observations. *)
let measure_branch_behaviour (sc : Concolic.Scenario.t) : branch_exec_stats =
  let vars = Solver.Symvars.create () in
  let world, handle = Osmodel.World.kernel sc.world in
  let sk =
    Concolic.Sym_kernel.create ~vars ~model:Solver.Model.empty ~world ~handle
      ~sym_results:true ()
  in
  let n = Program.nbranches sc.prog in
  let total = Array.make n 0 in
  let sym = Array.make n 0 in
  let hooks =
    {
      Interp.Eval.no_hooks with
      Interp.Eval.on_branch =
        (fun ~bid ~iter:_ ~taken:_ ~cond ->
          total.(bid) <- total.(bid) + 1;
          if Interp.Value.is_symbolic cond then sym.(bid) <- sym.(bid) + 1);
    }
  in
  let caps = (Concolic.Scenario.shape_of sc).arg_caps in
  let cfg =
    {
      Interp.Eval.inputs =
        Concolic.Sym_kernel.symbolic_args ~vars ~model:Solver.Model.empty sc ~caps;
      kernel = Concolic.Sym_kernel.kernel sk;
      hooks;
      max_steps = sc.max_steps;
      scheduler = None;
    }
  in
  let (_ : Interp.Eval.result) = Interp.Eval.run sc.prog cfg in
  { total_execs = total; symbolic_execs = sym }
