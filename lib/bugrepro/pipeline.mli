(** The end-to-end pipeline of the paper, as one API.

    Developer site, pre-deployment: {!analyze} (dynamic and/or static
    branch labelling) then {!plan} (pick a §2.3 instrumentation method).
    User site: {!field_run} / {!field_run_report} (bit-per-branch logging;
    a crash yields a {!Instrument.Report.t}).  Developer site, post-report:
    {!reproduce} (guided symbolic replay). *)

type analysis = {
  prog : Minic.Program.t;
  dynamic : Concolic.Dynamic.result option;
  static : Staticanalysis.Static.result option;
}

(** One value carrying every pipeline knob, replacing the stage functions'
    optional-argument sprawl.  Build with {!Config.default} and chain the
    setters:
    {[
      Config.default |> Config.with_jobs 4 |> Config.with_telemetry tel
    ]} *)
module Config : sig
  type t = {
    dynamic_budget : Concolic.Engine.budget;
        (** symbolic-execution time knob for {!Run.analyze} (LC vs HC) *)
    replay_budget : Concolic.Engine.budget;
        (** developer's patience for {!Run.reproduce} *)
    analyze_lib : bool;  (** false = the paper's uServer setup (§5.3) *)
    refine : bool;  (** false = seed (unrefined) static pipeline *)
    jobs : int;  (** worker domains for exploration and replay *)
    log_syscalls : bool;  (** ship a syscall log with the branch log *)
    encode : bool;
        (** field runs write branch bits through the streaming
            {!Instrument.Codec} and reports ship the encoded stream (wire
            v4); false is the A/B raw-log baseline *)
    suppression : bool;
        (** refine plans with the probe-elision analysis
            ({!Staticanalysis.Suppression}): statically redundant
            instrumented branches ship a reconstruction rule instead of
            log bits.  Off by default (the paper's raw configuration). *)
    solver_cache : bool;  (** memoize solver queries during replay *)
    incremental : bool;
        (** solve pendings through a scoped incremental solver
            ({!Solver.Incr}): learned-core pruning, scope reuse, strategy
            portfolio.  On by default; verdicts match the from-scratch
            solver, found models may differ. *)
    steal : bool;
        (** work-stealing sharded frontier when [jobs] > 1 (ignored at
            [jobs = 1], which always runs the deterministic loop) *)
    seed : int;  (** replay's initial random input *)
    replay_max_steps : int;  (** interpreter step cap per replay run *)
    telemetry : Telemetry.t;
        (** handle threaded through every stage; {!Telemetry.disabled} by
            default, where every probe is a no-op *)
  }

  (** Paper defaults: sequential, refined static pipeline, syscall log,
      online log encoding, solver cache, incremental solving and stealing
      on, telemetry disabled. *)
  val default : t

  (** Setters take the config last so they chain with [|>]. *)

  val with_jobs : int -> t -> t
  val with_budget :
    ?dynamic:Concolic.Engine.budget ->
    ?replay:Concolic.Engine.budget ->
    t ->
    t
  val with_telemetry : Telemetry.t -> t -> t
  val with_analyze_lib : bool -> t -> t
  val with_refine : bool -> t -> t
  val with_log_syscalls : bool -> t -> t
  val with_encode : bool -> t -> t
  val with_suppression : bool -> t -> t
  val with_solver_cache : bool -> t -> t
  val with_incremental : bool -> t -> t
  val with_steal : bool -> t -> t
  val with_seed : int -> t -> t
  val with_replay_max_steps : int -> t -> t
end

(** The pipeline stages, each taking the {!Config.t} first.  Stages open
    telemetry spans on [config.telemetry]: [analyze] (with
    [analyze.dynamic] / [analyze.static] children), [plan], [field_run],
    [reproduce]. *)
module Run : sig
  (** Pre-deployment analysis; [test_scenario] is the developer's test
      environment for dynamic analysis. *)
  val analyze :
    Config.t -> ?test_scenario:Concolic.Scenario.t -> Minic.Program.t ->
    analysis

  (** Instrumentation plan for a method, from the available analyses.
      With [config.suppression] the plan is refined by the probe-elision
      analysis; the resulting table is proof-checked
      ({!Staticanalysis.Suppression.verify}) before the plan is accepted
      (raises [Failure] on rejection — an unproven table must never reach
      the field). *)
  val plan : Config.t -> analysis -> Instrument.Methods.t -> Instrument.Plan.t

  (** User-site execution. *)
  val field_run :
    Config.t ->
    plan:Instrument.Plan.t ->
    Concolic.Scenario.t ->
    Instrument.Field_run.result

  (** Full user-site step: run and, if it crashed, build the report. *)
  val field_run_report :
    Config.t ->
    plan:Instrument.Plan.t ->
    Concolic.Scenario.t ->
    Instrument.Field_run.result * Instrument.Report.t option

  (** Developer-site bug reproduction (guided replay). *)
  val reproduce :
    Config.t ->
    ?restore:Replay.Guided.restore_fn ->
    prog:Minic.Program.t ->
    plan:Instrument.Plan.t ->
    Instrument.Report.t ->
    Replay.Guided.result * Replay.Guided.stats
end

(** Pre-deployment analysis.  [test_scenario] is the developer's test
    environment for dynamic analysis; [dynamic_budget] is the
    symbolic-execution time knob (LC vs HC); [analyze_lib = false]
    reproduces the uServer setup where the merged source was too large for
    points-to analysis; [refine = false] runs the seed (unrefined) static
    pipeline; [jobs] > 1 runs the dynamic exploration on a parallel worker
    pool.

    Deprecated: thin wrapper over {!Run.analyze}, kept so pre-[Config]
    callers compile unchanged.  New code should build a {!Config.t}. *)
val analyze :
  ?dynamic_budget:Concolic.Engine.budget ->
  ?analyze_lib:bool ->
  ?refine:bool ->
  ?jobs:int ->
  ?test_scenario:Concolic.Scenario.t ->
  Minic.Program.t ->
  analysis

(** Precision report of the static labels against the dynamic ground
    truth; [None] unless both analyses ran. *)
val precision : analysis -> Staticanalysis.Precision.report option

(** Instrumentation plan for a method, from the available analyses.
    Deprecated: wrapper over {!Run.plan} with the default config. *)
val plan : analysis -> Instrument.Methods.t -> Instrument.Plan.t

(** Deprecated: wrapper over {!Run.field_run} (no telemetry). *)
val field_run :
  ?log_syscalls:bool ->
  plan:Instrument.Plan.t ->
  Concolic.Scenario.t ->
  Instrument.Field_run.result

(** Full user-site step: run and, if it crashed, build the report.
    Deprecated: wrapper over {!Run.field_run_report}. *)
val field_run_report :
  ?log_syscalls:bool ->
  plan:Instrument.Plan.t ->
  Concolic.Scenario.t ->
  Instrument.Field_run.result * Instrument.Report.t option

(** Developer-site bug reproduction.  [jobs] parallelizes the pending
    frontier; [solver_cache] (default on) memoizes solver queries — see
    {!Replay.Guided.reproduce}.  Deprecated: wrapper over {!Run.reproduce}
    (no telemetry). *)
val reproduce :
  ?budget:Concolic.Engine.budget ->
  ?seed:int ->
  ?max_steps:int ->
  ?restore:Replay.Guided.restore_fn ->
  ?jobs:int ->
  ?solver_cache:bool ->
  prog:Minic.Program.t ->
  plan:Instrument.Plan.t ->
  Instrument.Report.t ->
  Replay.Guided.result * Replay.Guided.stats

(** {1 Measurement oracles (benchmarks)} *)

type symbolic_logging_stats = {
  logged_locs : int;  (** symbolic branch locations that are instrumented *)
  logged_execs : int;
  unlogged_locs : int;
  unlogged_execs : int;
}

(** Replay-difficulty oracle (Tables 4, 7, 8): one symbolic-input execution
    over the concrete simulated OS, counting input-dependent branch
    executions at instrumented vs uninstrumented locations.
    [syscall_results_symbolic] (default false) additionally counts branches
    on system-call results as symbolic — the Table 8 setting, where no
    syscall log pins them. *)
val measure_symbolic_logging :
  ?syscall_results_symbolic:bool ->
  plan:Instrument.Plan.t ->
  Concolic.Scenario.t ->
  symbolic_logging_stats

type branch_exec_stats = {
  total_execs : int array;  (** executions per branch id *)
  symbolic_execs : int array;  (** executions with a symbolic condition *)
}

(** Per-branch-location execution counts (Figures 1 and 3). *)
val measure_branch_behaviour : Concolic.Scenario.t -> branch_exec_stats
