(** The end-to-end pipeline of the paper, as one API.

    Developer site, pre-deployment: {!analyze} (dynamic and/or static
    branch labelling) then {!plan} (pick a §2.3 instrumentation method).
    User site: {!field_run} / {!field_run_report} (bit-per-branch logging;
    a crash yields a {!Instrument.Report.t}).  Developer site, post-report:
    {!reproduce} (guided symbolic replay). *)

type analysis = {
  prog : Minic.Program.t;
  dynamic : Concolic.Dynamic.result option;
  static : Staticanalysis.Static.result option;
}

(** Pre-deployment analysis.  [test_scenario] is the developer's test
    environment for dynamic analysis; [dynamic_budget] is the
    symbolic-execution time knob (LC vs HC); [analyze_lib = false]
    reproduces the uServer setup where the merged source was too large for
    points-to analysis; [refine = false] runs the seed (unrefined) static
    pipeline; [jobs] > 1 runs the dynamic exploration on a parallel worker
    pool. *)
val analyze :
  ?dynamic_budget:Concolic.Engine.budget ->
  ?analyze_lib:bool ->
  ?refine:bool ->
  ?jobs:int ->
  ?test_scenario:Concolic.Scenario.t ->
  Minic.Program.t ->
  analysis

(** Precision report of the static labels against the dynamic ground
    truth; [None] unless both analyses ran. *)
val precision : analysis -> Staticanalysis.Precision.report option

(** Instrumentation plan for a method, from the available analyses. *)
val plan : analysis -> Instrument.Methods.t -> Instrument.Plan.t

val field_run :
  ?log_syscalls:bool ->
  plan:Instrument.Plan.t ->
  Concolic.Scenario.t ->
  Instrument.Field_run.result

(** Full user-site step: run and, if it crashed, build the report. *)
val field_run_report :
  ?log_syscalls:bool ->
  plan:Instrument.Plan.t ->
  Concolic.Scenario.t ->
  Instrument.Field_run.result * Instrument.Report.t option

(** Developer-site bug reproduction.  [jobs] parallelizes the pending
    frontier; [solver_cache] (default on) memoizes solver queries — see
    {!Replay.Guided.reproduce}. *)
val reproduce :
  ?budget:Concolic.Engine.budget ->
  ?seed:int ->
  ?max_steps:int ->
  ?restore:Replay.Guided.restore_fn ->
  ?jobs:int ->
  ?solver_cache:bool ->
  prog:Minic.Program.t ->
  plan:Instrument.Plan.t ->
  Instrument.Report.t ->
  Replay.Guided.result * Replay.Guided.stats

(** {1 Measurement oracles (benchmarks)} *)

type symbolic_logging_stats = {
  logged_locs : int;  (** symbolic branch locations that are instrumented *)
  logged_execs : int;
  unlogged_locs : int;
  unlogged_execs : int;
}

(** Replay-difficulty oracle (Tables 4, 7, 8): one symbolic-input execution
    over the concrete simulated OS, counting input-dependent branch
    executions at instrumented vs uninstrumented locations.
    [syscall_results_symbolic] (default false) additionally counts branches
    on system-call results as symbolic — the Table 8 setting, where no
    syscall log pins them. *)
val measure_symbolic_logging :
  ?syscall_results_symbolic:bool ->
  plan:Instrument.Plan.t ->
  Concolic.Scenario.t ->
  symbolic_logging_stats

type branch_exec_stats = {
  total_execs : int array;  (** executions per branch id *)
  symbolic_execs : int array;  (** executions with a symbolic condition *)
}

(** Per-branch-location execution counts (Figures 1 and 3). *)
val measure_branch_behaviour : Concolic.Scenario.t -> branch_exec_stats
