(** Memoizing solver cache.

    Concolic exploration re-solves heavily overlapping constraint sets:
    sibling pendings share their whole lineage prefix, loop-heavy traces
    repeat the same (deduplicated) conjunction for many negation positions,
    and guided replay restarts re-derive the same forced chains under a
    fresh variable registry.  Following the redundancy-suppression idea of
    time-aware DBI, the cache pays for each distinct conjunction once.

    Keys are *canonicalized* constraint sets: constraints are deduplicated
    (order-preserving) and variables alpha-renamed to 0, 1, 2, … in order of
    first occurrence, with each canonical variable's domain folded into the
    key.  Two alpha-equivalent queries — same structure, same domains,
    different variable ids — therefore hit the same entry, which is what
    makes the cache survive the fresh [Symvars] registry of a replay
    restart.

    Only [Sat] and [Unsat] are memoized.  Both are budget-independent
    ([Unsat] is only ever reported after a complete search), so a hit is
    valid under any budget; [Unknown] depends on the budget and the hint and
    is never cached.  Cached models are stored over canonical variables and
    renamed back on a hit, so a model computed for one sibling serves its
    alpha-equivalent twins.

    The table is bounded (FIFO eviction) and every operation is
    mutex-protected: the cache is shared by all domains of a parallel
    exploration. *)

type snapshot = {
  hits : int;
  misses : int;
  evictions : int;
  stores : int;
  uncacheable : int;  (** [Unknown] results, never memoized *)
}

(* Canonical form: constraints with variables renamed to first-occurrence
   order, plus the (lo, hi) domain of each canonical variable.  Structural
   equality/hashing of this pair is what the table keys on. *)
type key = { ccs : Expr.t list; cdoms : (int * int) list }

type entry =
  | Sat_c of (int * int) list  (** canonical variable -> value *)
  | Unsat_c

type t = {
  mu : Mutex.t;
  tbl : (key, entry) Hashtbl.t;
  fifo : key Queue.t;
  capacity : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable stores : int;
  mutable uncacheable : int;
}

let create ?(capacity = 8192) () =
  {
    mu = Mutex.create ();
    tbl = Hashtbl.create 256;
    fifo = Queue.create ();
    capacity = max 1 capacity;
    hits = 0;
    misses = 0;
    evictions = 0;
    stores = 0;
    uncacheable = 0;
  }

let locked t f =
  Mutex.lock t.mu;
  match f () with
  | v ->
      Mutex.unlock t.mu;
      v
  | exception e ->
      Mutex.unlock t.mu;
      raise e

let snapshot t : snapshot =
  locked t (fun () ->
      { hits = t.hits; misses = t.misses; evictions = t.evictions;
        stores = t.stores; uncacheable = t.uncacheable })

let hit_rate (s : snapshot) =
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total

let length t = locked t (fun () -> Hashtbl.length t.tbl)

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.tbl;
      Queue.clear t.fifo)

(* ------------------------------------------------------------------ *)
(* Canonicalization *)

(* Rename every variable of [cs] to its first-occurrence index.  Returns the
   canonical constraints, the canonical domains (in canonical order) and the
   inverse renaming (canonical index -> actual id). *)
let canonicalize ~(vars : Symvars.t) (cs : Expr.t list) :
    key * int array * (int, int) Hashtbl.t =
  (* order-preserving dedupe first: loop-heavy traces repeat constraints
     thousands of times, and the key must not depend on the multiplicity *)
  let cs =
    let seen = Hashtbl.create 64 in
    List.filter
      (fun c ->
        if Hashtbl.mem seen c then false
        else begin
          Hashtbl.replace seen c ();
          true
        end)
      cs
  in
  let fwd : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let rev_doms = ref [] in
  let canon v =
    match Hashtbl.find_opt fwd v with
    | Some c -> c
    | None ->
        let c = Hashtbl.length fwd in
        Hashtbl.replace fwd v c;
        let d = Symvars.domain vars v in
        rev_doms := (d.Symvars.lo, d.Symvars.hi) :: !rev_doms;
        c
  in
  let rec rename (e : Expr.t) : Expr.t =
    match e with
    | Expr.Var v -> Expr.Var (canon v)
    | Expr.Const _ -> e
    | Expr.Unop (op, a) -> Expr.Unop (op, rename a)
    | Expr.Binop (op, a, b) -> Expr.Binop (op, rename a, rename b)
  in
  let ccs = List.map rename cs in
  let n = Hashtbl.length fwd in
  let inv = Array.make n (-1) in
  Hashtbl.iter (fun actual c -> inv.(c) <- actual) fwd;
  ({ ccs; cdoms = List.rev !rev_doms }, inv, fwd)

(* ------------------------------------------------------------------ *)
(* Independence slicing *)

let rec vars_of_expr acc (e : Expr.t) =
  match e with
  | Expr.Var v -> v :: acc
  | Expr.Const _ -> acc
  | Expr.Unop (_, a) -> vars_of_expr acc a
  | Expr.Binop (_, a, b) -> vars_of_expr (vars_of_expr acc a) b

(* Keep only the constraints transitively connected to the *last* one (the
   focus — the negated / forced constraint of a pending) through shared
   variables.  Classic constraint-independence optimisation: the dropped
   components share no variable with the slice, so any model of the slice
   extends to the full set with values that already satisfied them. *)
let slice_focus (cs : Expr.t list) : Expr.t list =
  match cs with
  | [] | [ _ ] -> cs
  | _ ->
      let arr = Array.of_list cs in
      let n = Array.length arr in
      (* union-find over constraint indices, linked via shared variables *)
      let parent = Array.init n Fun.id in
      let rec find i =
        if parent.(i) = i then i
        else begin
          let r = find parent.(i) in
          parent.(i) <- r;
          r
        end
      in
      let union a b =
        let ra = find a and rb = find b in
        if ra <> rb then parent.(ra) <- rb
      in
      let owner : (int, int) Hashtbl.t = Hashtbl.create 64 in
      Array.iteri
        (fun i c ->
          List.iter
            (fun v ->
              match Hashtbl.find_opt owner v with
              | Some j -> union i j
              | None -> Hashtbl.replace owner v i)
            (vars_of_expr [] c))
        arr;
      let root = find (n - 1) in
      let out = ref [] in
      for i = n - 1 downto 0 do
        if find i = root then out := arr.(i) :: !out
      done;
      !out

(* ------------------------------------------------------------------ *)
(* Lookup / store *)

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some e ->
          t.hits <- t.hits + 1;
          Some e
      | None ->
          t.misses <- t.misses + 1;
          None)

let store t key entry =
  locked t (fun () ->
      (* a racing domain may have stored the same key while we solved: keep
         the existing entry and do not grow the FIFO twice *)
      if not (Hashtbl.mem t.tbl key) then begin
        while Hashtbl.length t.tbl >= t.capacity && not (Queue.is_empty t.fifo) do
          let victim = Queue.pop t.fifo in
          if Hashtbl.mem t.tbl victim then begin
            Hashtbl.remove t.tbl victim;
            t.evictions <- t.evictions + 1
          end
        done;
        Hashtbl.replace t.tbl key entry;
        Queue.push key t.fifo;
        t.stores <- t.stores + 1
      end)

(* ------------------------------------------------------------------ *)
(* Split lookup/store API: the incremental layer ({!Incr}) interposes its
   own solving strategy between the cache probe and the store, so the
   canonicalization work is shared across both halves. *)

type prepared = { pkey : key; pinv : int array; pfwd : (int, int) Hashtbl.t }

let prepare ~vars cs =
  let pkey, pinv, pfwd = canonicalize ~vars cs in
  { pkey; pinv; pfwd }

let lookup t (p : prepared) : Solve.outcome option =
  match find t p.pkey with
  | Some Unsat_c -> Some Solve.Unsat
  | Some (Sat_c pairs) ->
      let m =
        List.fold_left
          (fun m (c, v) -> Model.add p.pinv.(c) v m)
          Model.empty pairs
      in
      Some (Solve.Sat m)
  | None -> None

let remember t (p : prepared) (r : Solve.outcome) =
  match r with
  | Solve.Sat m ->
      let pairs =
        Hashtbl.fold
          (fun actual c acc ->
            match Model.find_opt actual m with
            | Some v -> (c, v) :: acc
            | None -> acc)
          p.pfwd []
      in
      store t p.pkey (Sat_c pairs)
  | Solve.Unsat -> store t p.pkey Unsat_c
  | Solve.Unknown -> locked t (fun () -> t.uncacheable <- t.uncacheable + 1)

(** Drop-in replacement for {!Solve.solve} that consults the cache first.
    On a [Sat] hit the cached model is renamed from canonical variables back
    to the query's variables; it satisfies the conjunction but may differ
    from the model a fresh hint-seeded search would have produced (any model
    is equally valid to the exploration engine, which re-executes with it).

    [slice] (default false) additionally restricts both the key and the
    solve to the focus slice (see {!slice_focus}).  Sound only under the
    engine's pending invariant: the hint model satisfies every constraint
    that shares no variable with the last (focus) constraint, and the caller
    merges the returned model over the hint ([Unsat] of a subset is
    unconditionally [Unsat] of the whole set). *)
let solve t ?budget ?(telemetry = Telemetry.disabled) ~(vars : Symvars.t)
    ?(hint : int -> int option = fun _ -> None) ?(slice = false)
    (cs : Expr.t list) : Solve.outcome =
  (* the paper's overhead axis also applies to the observation layer: the
     split below is recorded per call, but each record is two clock reads
     and an atomic add — nothing on the canonicalization path changes *)
  let t0 = if Telemetry.enabled telemetry then Telemetry.now telemetry else 0.0 in
  let record kind =
    if Telemetry.enabled telemetry then begin
      Telemetry.Metrics.incr_named telemetry ("solver.cache." ^ kind);
      Telemetry.Metrics.observe telemetry
        ("solver.cache." ^ kind ^ "_s")
        (Telemetry.now telemetry -. t0)
    end
  in
  let cs = if slice then slice_focus cs else cs in
  let key, inv, fwd = canonicalize ~vars cs in
  match find t key with
  | Some Unsat_c ->
      record "hit";
      Solve.Unsat
  | Some (Sat_c pairs) ->
      let m =
        List.fold_left
          (fun m (c, v) -> Model.add inv.(c) v m)
          Model.empty pairs
      in
      record "hit";
      Solve.Sat m
  | None -> (
      let r = Solve.solve ?budget ~vars ~hint cs in
      record "miss_solve";
      (match r with
      | Solve.Sat m ->
          let pairs =
            Hashtbl.fold
              (fun actual c acc ->
                match Model.find_opt actual m with
                | Some v -> (c, v) :: acc
                | None -> acc)
              fwd []
          in
          store t key (Sat_c pairs)
      | Solve.Unsat -> store t key Unsat_c
      | Solve.Unknown -> locked t (fun () -> t.uncacheable <- t.uncacheable + 1));
      r)

(* ------------------------------------------------------------------ *)

(** The {!snapshot} in the unified counter view (scope ["solver.cache"]).
    The record stays for the bench tables; generic consumers (CLI
    [--metrics], traces, tests) read this. *)
let counters (s : snapshot) : Telemetry.Counters.snapshot =
  Telemetry.Counters.make ~scope:"solver.cache"
    ~gauges:[ ("hit_rate", hit_rate s) ]
    [
      ("hits", s.hits); ("misses", s.misses); ("evictions", s.evictions);
      ("stores", s.stores); ("uncacheable", s.uncacheable);
    ]
