(** Memoizing solver cache.

    Memoizes {!Solve.solve} on a canonicalized constraint-set key:
    constraints are deduplicated and variables alpha-renamed by first
    occurrence (domains included in the key), so alpha-equivalent queries —
    e.g. the same forced chain re-derived under a fresh {!Symvars} registry
    after a replay restart — hit the same entry.  Only [Sat]/[Unsat] are
    cached (both are budget-independent); [Unknown] never is.  Thread-safe:
    shared by all domains of a parallel exploration.  Bounded, FIFO
    eviction. *)

type t

type snapshot = {
  hits : int;
  misses : int;
  evictions : int;
  stores : int;
  uncacheable : int;  (** [Unknown] results, never memoized *)
}

(** [create ?capacity ()] makes an empty cache holding at most [capacity]
    entries (default 8192). *)
val create : ?capacity:int -> unit -> t

(** Counters so far (consistent snapshot under the cache's lock). *)
val snapshot : t -> snapshot

(** [hits / (hits + misses)]; 0 when the cache was never queried. *)
val hit_rate : snapshot -> float

(** Entries currently stored. *)
val length : t -> int

val clear : t -> unit

(** [slice_focus cs] keeps only the constraints transitively connected to
    the last one (the pending's negated / forced constraint) through shared
    variables — the classic constraint-independence optimisation.  Dropping
    the other components is sound for the exploration engine because their
    variables are untouched by any model of the slice: the engine merges the
    solver's model over the pending's hint, which already satisfies them. *)
val slice_focus : Expr.t list -> Expr.t list

(** A canonicalized query: the key plus both variable renamings, shared by
    {!lookup} and {!remember} so the alpha-renaming work is paid once. *)
type prepared

val prepare : vars:Symvars.t -> Expr.t list -> prepared

(** Probe the cache; a [Sat] hit's model is renamed back to the query's
    variables.  Counts a hit or a miss. *)
val lookup : t -> prepared -> Solve.outcome option

(** Store the outcome computed for a {!prepare}d query ([Unknown] only
    bumps the uncacheable counter).  Lets the incremental layer ({!Incr})
    interpose its own solving strategy between probe and store. *)
val remember : t -> prepared -> Solve.outcome -> unit

(** Drop-in replacement for {!Solve.solve} that consults the cache first.
    On a [Sat] hit the cached model is renamed back to the query's
    variables; it satisfies the conjunction but may differ from the model a
    fresh hint-seeded search would produce.

    [slice] (default false) restricts the key and the solve to
    [slice_focus]; callers must guarantee the hint satisfies every
    constraint outside the slice and must merge the returned model over the
    hint (the exploration engine's pending invariant).

    [telemetry] records the solver-time split: counters
    [solver.cache.hit]/[solver.cache.miss_solve] and histograms
    [solver.cache.hit_s]/[solver.cache.miss_solve_s]. *)
val solve :
  t ->
  ?budget:Solve.budget ->
  ?telemetry:Telemetry.t ->
  vars:Symvars.t ->
  ?hint:(int -> int option) ->
  ?slice:bool ->
  Expr.t list ->
  Solve.outcome

(** The {!snapshot} in the unified counter view (scope ["solver.cache"],
    gauge [hit_rate]).  The record stays for the bench tables. *)
val counters : snapshot -> Telemetry.Counters.snapshot
