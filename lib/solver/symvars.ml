(** Registry of symbolic input variables.

    Variables are identified by a stable string name derived from the input
    source — e.g. ["arg1[3]"] for byte 3 of argument 1, ["net0[17]"] for byte
    17 of connection 0, ["sys:read#2"] for the result of the second [read]
    call.  Requesting the same name twice yields the same id, which is what
    makes solver models transferable across concolic runs.

    The registry is shared by every run of an exploration, so with a
    parallel engine ({!Concolic.Engine.explore} [~jobs]) it is read and
    extended from several domains at once: all access goes through an
    internal mutex. *)

type domain = { lo : int; hi : int }

let byte_domain = { lo = 0; hi = 255 }
let int_domain = { lo = -65536; hi = 65536 }

type info = { id : int; name : string; dom : domain }

type t = {
  mutable infos : info array;
  mutable count : int;
  by_name : (string, int) Hashtbl.t;
  mu : Mutex.t;
}

let create () = { infos = Array.make 64 { id = 0; name = ""; dom = byte_domain };
                  count = 0; by_name = Hashtbl.create 64; mu = Mutex.create () }

let locked t f =
  Mutex.lock t.mu;
  match f () with
  | v ->
      Mutex.unlock t.mu;
      v
  | exception e ->
      Mutex.unlock t.mu;
      raise e

let count t = locked t (fun () -> t.count)

(** [lookup t ~name ~dom] returns the id registered for [name], creating it
    with domain [dom] if new.  The domain of an existing variable is kept. *)
let lookup t ~name ~dom =
  locked t (fun () ->
      match Hashtbl.find_opt t.by_name name with
      | Some id -> id
      | None ->
          let id = t.count in
          if id = Array.length t.infos then begin
            let bigger = Array.make (2 * id) t.infos.(0) in
            Array.blit t.infos 0 bigger 0 id;
            t.infos <- bigger
          end;
          t.infos.(id) <- { id; name; dom };
          t.count <- id + 1;
          Hashtbl.replace t.by_name name id;
          id)

let info t id =
  locked t (fun () ->
      if id < 0 || id >= t.count then invalid_arg "Symvars.info: bad id"
      else t.infos.(id))

let name t id = (info t id).name
let domain t id = (info t id).dom

let find_by_name t name = locked t (fun () -> Hashtbl.find_opt t.by_name name)

let iter t f =
  (* snapshot under the lock, call back outside it: [f] may itself use [t] *)
  let snapshot = locked t (fun () -> Array.sub t.infos 0 t.count) in
  Array.iter f snapshot
