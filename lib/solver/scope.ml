(** Scoped incremental solving context.

    Concolic exploration solves a *stack* of constraint sets: a child
    pending's conjunction is its parent's plus one flipped branch condition,
    and sibling pendings share their whole lineage prefix.  A [Scope] keeps
    the interval-propagation state of that shared prefix alive between
    queries: each pushed constraint opens a frame that records how it
    narrowed the variable domains (a trail), and popping a frame undoes
    exactly those narrowings.  Re-solving a sibling then costs one push/pop
    of the divergent suffix instead of re-propagating the whole stack from
    scratch.

    Every domain stored here is *implied* by the pushed conjunction — the
    trail only ever records meets driven by pushed constraints — so the
    current domains are always a sound warm start ([Solve.solve ~init_dom])
    for any query over the pushed set or an independence slice of it.

    Contradictions are detected at push time three ways: a constraint that
    simplifies to [Const 0], a structural negation pair against an already
    pushed constraint, and a domain emptied by propagation.  A contradicted
    scope answers [Unsat] without any search.

    Not thread-safe: each worker owns its scope (lineage-affine scheduling
    in {!Concolic.Engine} preserves exactly this locality). *)

type frame = {
  orig : Expr.t;  (** the constraint as pushed, for prefix comparison *)
  cons : Expr.t list;  (** its simplified conjuncts, [] when trivial *)
  mutable trail : (int * Interval.t option) list;
      (** first-write-per-frame previous domains, innermost first *)
  contra_here : bool;  (** this frame made the conjunction unsat *)
  core : Expr.t list;
      (** certified unsat subset of the pushed constraints, when the
          contradiction has a cheap structural witness ([] otherwise) *)
}

type t = {
  vars : Symvars.t;
  doms : (int, Interval.t) Hashtbl.t;  (** current narrowed domains *)
  mutable frames : frame list;  (** innermost first *)
  present : (Expr.t, int) Hashtbl.t;  (** conjunct multiset, for negation pairs *)
  watch : (int, Expr.t list) Hashtbl.t;
      (** var -> live conjuncts mentioning it, for worklist propagation *)
  conj_memo : (Expr.t, Expr.t list option) Hashtbl.t;
      (** push-time simplification, memoized: re-syncing re-pushes the same
          constraints over and over *)
  neg_memo : (Expr.t, Expr.t) Hashtbl.t;  (** simplified negations, ditto *)
  scratch_trail : (int, unit) Hashtbl.t;
      (** per-push first-write set, reused across pushes — a scope is
          worker-private, so one scratch table is safe and keeps the hot
          push path allocation-free *)
  scratch_queue : Expr.t Queue.t;  (** propagation worklist, ditto *)
  mutable contra : int;  (** number of live contradiction frames *)
  mutable pushes : int;
  mutable pops : int;
}

let create ~vars () =
  {
    vars;
    doms = Hashtbl.create 64;
    frames = [];
    present = Hashtbl.create 64;
    watch = Hashtbl.create 64;
    conj_memo = Hashtbl.create 64;
    neg_memo = Hashtbl.create 64;
    scratch_trail = Hashtbl.create 16;
    scratch_queue = Queue.create ();
    contra = 0;
    pushes = 0;
    pops = 0;
  }

let vars t = t.vars
let depth t = List.length t.frames
let contradiction t = t.contra > 0
let pushes t = t.pushes
let pops t = t.pops

let base_dom t v : Interval.t =
  let d = Symvars.domain t.vars v in
  Interval.of_bounds d.Symvars.lo d.Symvars.hi

let dom_of t v =
  match Hashtbl.find_opt t.doms v with
  | Some i -> i
  | None -> base_dom t v

(* Warm-start view for {!Solve.solve}: only variables the scope actually
   narrowed — everything else falls back to the registry domain anyway. *)
let init_dom t v = Hashtbl.find_opt t.doms v

let constraints t = List.rev_map (fun f -> f.orig) t.frames

let multiset_add tbl c =
  Hashtbl.replace tbl c (1 + Option.value ~default:0 (Hashtbl.find_opt tbl c))

let multiset_remove tbl c =
  match Hashtbl.find_opt tbl c with
  | Some 1 -> Hashtbl.remove tbl c
  | Some n -> Hashtbl.replace tbl c (n - 1)
  | None -> ()

let watch_add t (c : Expr.t) =
  List.iter
    (fun v ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt t.watch v) in
      Hashtbl.replace t.watch v (c :: cur))
    (Expr.vars c)

let watch_remove t (c : Expr.t) =
  List.iter
    (fun v ->
      match Hashtbl.find_opt t.watch v with
      | None -> ()
      | Some l ->
          let rec drop = function
            | [] -> []
            | x :: r -> if x = c then r else x :: drop r
          in
          Hashtbl.replace t.watch v (drop l))
    (Expr.vars c)

(* Worklist propagation: the pre-push domains are already a fixpoint of the
   outer frames, so only the new conjuncts — and, transitively, the live
   conjuncts watching a domain they actually narrow — need a visit.  This
   keeps a push O(affected constraints) instead of O(scope depth), which is
   what makes re-syncing a deep sibling suffix cheaper than re-propagating
   the whole stack.  The visit cap bounds pathological chains; stopping
   early is sound (domains merely stay wider). *)
let max_visits = 200

let propagate t ~(seeds : Expr.t list) (frame_trail : (int, unit) Hashtbl.t)
    trail_acc =
  let contra = ref false in
  let dom_of v = dom_of t v in
  let queue = t.scratch_queue in
  Queue.clear queue;
  List.iter (fun c -> Queue.add c queue) seeds;
  let touched = ref [] in
  let set_dom v i =
    let old = dom_of v in
    if not (Interval.equal old i) then begin
      if not (Hashtbl.mem frame_trail v) then begin
        Hashtbl.replace frame_trail v ();
        trail_acc := (v, Hashtbl.find_opt t.doms v) :: !trail_acc
      end;
      Hashtbl.replace t.doms v i;
      if Interval.is_empty i then contra := true;
      touched := v :: !touched
    end
  in
  let visits = ref 0 in
  while (not !contra) && (not (Queue.is_empty queue)) && !visits < max_visits do
    incr visits;
    let c = Queue.pop queue in
    touched := [];
    Solve.narrow dom_of set_dom c;
    (match Interval.eval dom_of c with
    | i when Interval.is_empty i -> contra := true
    | i when i.lo = 0 && i.hi = 0 -> contra := true
    | _ -> ());
    if not !contra then
      List.iter
        (fun v ->
          match Hashtbl.find_opt t.watch v with
          | Some cs ->
              List.iter (fun c' -> if c' != c then Queue.add c' queue) cs
          | None -> ())
        !touched
  done;
  !contra

let push t (c : Expr.t) =
  t.pushes <- t.pushes + 1;
  let trail_acc = ref [] in
  let frame_trail = t.scratch_trail in
  Hashtbl.clear frame_trail;
  let finish ~cons ~contra_here ~core =
    List.iter (multiset_add t.present) cons;
    if contra_here then t.contra <- t.contra + 1;
    t.frames <-
      { orig = c; cons; trail = !trail_acc; contra_here; core } :: t.frames
  in
  if t.contra > 0 then
    (* already unsat: record the frame for pop symmetry, skip the work *)
    finish ~cons:[] ~contra_here:false ~core:[]
  else
    let conjuncts_of c =
      match Hashtbl.find_opt t.conj_memo c with
      | Some r -> r
      | None ->
          let r = Simplify.conjuncts [ c ] in
          Hashtbl.replace t.conj_memo c r;
          r
    in
    let negation_of cn =
      match Hashtbl.find_opt t.neg_memo cn with
      | Some n -> n
      | None ->
          let n = Simplify.simplify (Expr.negate cn) in
          Hashtbl.replace t.neg_memo cn n;
          n
    in
    match conjuncts_of c with
    | None ->
        (* [c] alone is false: a one-constraint core *)
        finish ~cons:[] ~contra_here:true ~core:[ c ]
    | Some [] -> finish ~cons:[] ~contra_here:false ~core:[]
    | Some cons ->
        (* structural negation pair: the partner frame plus this constraint
           form a certified two-constraint core *)
        let neg_partner =
          List.find_map
            (fun cn ->
              let neg = negation_of cn in
              if Hashtbl.mem t.present neg then
                List.find_map
                  (fun f -> if List.mem neg f.cons then Some f.orig else None)
                  t.frames
              else None)
            cons
        in
        match neg_partner with
        | Some partner ->
            List.iter (watch_add t) cons;
            finish ~cons ~contra_here:true ~core:[ partner; c ]
        | None ->
            (* watches first, so a new conjunct re-enters the worklist when
               a sibling seed narrows one of its variables *)
            List.iter (watch_add t) cons;
            let contra = propagate t ~seeds:cons frame_trail trail_acc in
            finish ~cons ~contra_here:contra ~core:[]

let pop t =
  match t.frames with
  | [] -> invalid_arg "Scope.pop: empty scope"
  | f :: rest ->
      t.pops <- t.pops + 1;
      t.frames <- rest;
      List.iter (multiset_remove t.present) f.cons;
      List.iter (watch_remove t) f.cons;
      if f.contra_here then t.contra <- t.contra - 1;
      List.iter
        (fun (v, prev) ->
          match prev with
          | Some i -> Hashtbl.replace t.doms v i
          | None -> Hashtbl.remove t.doms v)
        f.trail

let pop_all t =
  while t.frames <> [] do
    pop t
  done

(* A certified small unsat subset of the pushed constraints, when some live
   contradiction frame has a structural witness (trivially-false constraint
   or negation pair).  Propagation-detected contradictions carry no small
   witness; callers fall back to whole-set learning. *)
let contra_core t =
  List.find_map
    (fun f -> if f.contra_here && f.core <> [] then Some f.core else None)
    t.frames

(** Solve [cs] — the pushed conjunction or an independence slice of it —
    reusing the scope's propagated domains as a warm start.  A contradicted
    scope answers [Unsat] immediately.  Verdicts agree with a from-scratch
    {!Solve.solve} (enforced by fuzz oracle 8); models may differ. *)
let solve ?budget ?order ?prop_rounds ?hint t (cs : Expr.t list) :
    Solve.outcome =
  if contradiction t then Solve.Unsat
  else
    Solve.solve ?budget ~init_dom:(init_dom t) ?order ?prop_rounds
      ~vars:t.vars ?hint cs
