(** Constraint solving: satisfiability and model construction.

    A home-grown solver in the spirit of the paper's home-grown concolic
    engine [Crameri 2009].  Pipeline: structural simplification, interval
    propagation to a fixpoint, then backtracking search with forward
    checking.  The search tries the caller-supplied hint first — this is the
    concolic trick that makes most queries trivial, because the previous
    run's input already satisfies all but the negated constraint. *)

type outcome = Sat of Model.t | Unsat | Unknown

type budget = {
  max_nodes : int;  (** backtracking nodes before giving up *)
  max_enum : int;  (** largest domain enumerated exhaustively *)
}

let default_budget = { max_nodes = 400_000; max_enum = 4096 }

type stats = {
  mutable calls : int;
  mutable sat : int;
  mutable unsat : int;
  mutable unknown : int;
  mutable nodes : int;
}

let stats = { calls = 0; sat = 0; unsat = 0; unknown = 0; nodes = 0 }

(* The global counters are shared by every domain of a parallel exploration
   ({!Concolic.Engine.explore} [~jobs]); updates go through a mutex.  Node
   counts are accumulated locally during the search and added once per
   call, so the hot backtracking loop takes no lock. *)
let stats_mu = Mutex.create ()

let bump f =
  Mutex.lock stats_mu;
  f stats;
  Mutex.unlock stats_mu

let debug_unknown = ref false

let reset_stats () =
  bump (fun s ->
      s.calls <- 0;
      s.sat <- 0;
      s.unsat <- 0;
      s.unknown <- 0;
      s.nodes <- 0)

(* ------------------------------------------------------------------ *)
(* Interval propagation *)

(* Try to view [e] as [v + k]: returns (v, k). *)
let rec as_var_plus_const (e : Expr.t) : (int * int) option =
  match e with
  | Expr.Var v -> Some (v, 0)
  | Expr.Binop (Expr.Add, a, Expr.Const c) ->
      Option.map (fun (v, k) -> (v, k + c)) (as_var_plus_const a)
  | Expr.Binop (Expr.Add, Expr.Const c, a) ->
      Option.map (fun (v, k) -> (v, k + c)) (as_var_plus_const a)
  | Expr.Binop (Expr.Sub, a, Expr.Const c) ->
      Option.map (fun (v, k) -> (v, k - c)) (as_var_plus_const a)
  | _ -> None

(* Tighten [dom] for the constraint [e ≠ 0] (i.e. the constraint holds). *)
let narrow dom_of set_dom (c : Expr.t) =
  let tighten v (i : Interval.t) =
    let cur = dom_of v in
    set_dom v (Interval.meet cur i)
  in
  let exclude v n =
    let cur : Interval.t = dom_of v in
    if cur.lo = cur.hi && cur.lo = n then set_dom v Interval.empty
    else if cur.lo = n then set_dom v (Interval.of_bounds (n + 1) cur.hi)
    else if cur.hi = n then set_dom v (Interval.of_bounds cur.lo (n - 1))
  in
  let ienv v = dom_of v in
  let apply_cmp op lhs rhs =
    (* lhs op rhs must hold; refine a variable on either side. *)
    let ir = Interval.eval ienv rhs in
    let il = Interval.eval ienv lhs in
    (match as_var_plus_const lhs with
    | Some (v, k) when not (Interval.is_empty ir) -> (
        (* v + k op [ir.lo, ir.hi] *)
        match op with
        | Expr.Eq -> tighten v (Interval.of_bounds (ir.lo - k) (ir.hi - k))
        | Expr.Le -> tighten v (Interval.of_bounds Interval.clamp_lo (ir.hi - k))
        | Expr.Lt ->
            tighten v (Interval.of_bounds Interval.clamp_lo (ir.hi - 1 - k))
        | Expr.Ge -> tighten v (Interval.of_bounds (ir.lo - k) Interval.clamp_hi)
        | Expr.Gt ->
            tighten v (Interval.of_bounds (ir.lo + 1 - k) Interval.clamp_hi)
        | Expr.Ne -> if ir.lo = ir.hi then exclude v (ir.lo - k)
        | _ -> ())
    | _ -> ());
    match as_var_plus_const rhs with
    | Some (v, k) when not (Interval.is_empty il) -> (
        (* il op (v + k), flip the comparison *)
        match op with
        | Expr.Eq -> tighten v (Interval.of_bounds (il.lo - k) (il.hi - k))
        | Expr.Ge -> tighten v (Interval.of_bounds Interval.clamp_lo (il.hi - k))
        | Expr.Gt ->
            tighten v (Interval.of_bounds Interval.clamp_lo (il.hi - 1 - k))
        | Expr.Le -> tighten v (Interval.of_bounds (il.lo - k) Interval.clamp_hi)
        | Expr.Lt ->
            tighten v (Interval.of_bounds (il.lo + 1 - k) Interval.clamp_hi)
        | Expr.Ne -> if il.lo = il.hi then exclude v (il.lo - k)
        | _ -> ())
    | _ -> ()
  in
  match c with
  | Expr.Binop (((Expr.Eq | Expr.Ne | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge) as op), a, b)
    ->
      apply_cmp op a b
  | Expr.Var v -> exclude v 0
  | Expr.Unop (Expr.Lognot, Expr.Var v) -> tighten v (Interval.of_const 0)
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Equality propagation: var-var equalities (pervasive in byte-comparison
   chains like diff's line matching) are solved by union-find and
   substitution, so the backtracking search only sees representatives. *)

module Uf = struct
  type t = (int, int) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let rec find (t : t) v =
    match Hashtbl.find_opt t v with
    | None -> v
    | Some p ->
        let r = find t p in
        if r <> p then Hashtbl.replace t v r;
        r

  let union t a b =
    let ra = find t a and rb = find t b in
    if ra <> rb then Hashtbl.replace t (max ra rb) (min ra rb)
end

(* Substitute each variable by its representative. *)
let rec subst_repr uf (e : Expr.t) : Expr.t =
  match e with
  | Expr.Var v ->
      let r = Uf.find uf v in
      if r = v then e else Expr.Var r
  | Expr.Const _ -> e
  | Expr.Unop (op, a) -> Expr.Unop (op, subst_repr uf a)
  | Expr.Binop (op, a, b) -> Expr.Binop (op, subst_repr uf a, subst_repr uf b)

exception Found of Model.t

(* [init_dom] seeds per-variable starting intervals (met with the registry
   domain) — the incremental layer ({!Scope}) passes its already-propagated
   domains here so a child query does not re-derive the parent's fixpoint.
   [prop_rounds] bounds the propagation loop and [order] picks the search
   variable order; the defaults reproduce the historical behaviour exactly. *)
let solve ?(budget = default_budget) ?(init_dom : (int -> Interval.t option) option)
    ?(order : [ `Path | `Smallest_dom ] = `Path) ?(prop_rounds = 30)
    ~(vars : Symvars.t) ?(hint : int -> int option = fun _ -> None)
    (constraints : Expr.t list) : outcome =
  bump (fun s -> s.calls <- s.calls + 1);
  match Simplify.conjuncts constraints with
  | None ->
      bump (fun s -> s.unsat <- s.unsat + 1);
      Unsat
  | Some [] ->
      bump (fun s -> s.sat <- s.sat + 1);
      Sat Model.empty
  | Some cs -> (
      (* Loop-heavy traces repeat the same constraint thousands of times;
         dedupe — order-preserving, because path order groups the variables
         each constraint couples and the search order below relies on it. *)
      let cs =
        let seen = Hashtbl.create 256 in
        List.filter
          (fun c ->
            if Hashtbl.mem seen c then false
            else begin
              Hashtbl.replace seen c ();
              true
            end)
          cs
      in
      (* union-find over plain var-var equalities, then substitute
         representatives and re-simplify (Ne over a merged class becomes a
         trivial contradiction) *)
      let uf = Uf.create () in
      let eq_members = Hashtbl.create 32 in
      List.iter
        (fun c ->
          match c with
          | Expr.Binop (Expr.Eq, Expr.Var a, Expr.Var b) ->
              Hashtbl.replace eq_members a ();
              Hashtbl.replace eq_members b ();
              Uf.union uf a b
          | _ -> ())
        cs;
      let cs =
        if Hashtbl.length eq_members = 0 then cs
        else
          List.filter_map
            (fun c ->
              match Simplify.simplify (subst_repr uf c) with
              | Expr.Const 0 -> Some (Expr.Const 0) (* keep: contradiction *)
              | Expr.Const _ -> None
              | c -> Some c)
            cs
      in
      (* substitution can expose a contradiction (x == y with x != y) *)
      if List.exists (fun c -> c = Expr.Const 0) cs then begin
        bump (fun s -> s.unsat <- s.unsat + 1);
        Unsat
      end
      else if
        (* negation pairs: a loop re-checks the same condition with unchanged
           operands, so a conjunction often contains both [c] and [not c]
           verbatim (e.g. a log-forced direction against an earlier pinned
           occurrence).  The search cannot *prove* this unsat cheaply, so
           detect it structurally. *)
        let seen = Hashtbl.create 64 in
        List.iter (fun c -> Hashtbl.replace seen c ()) cs;
        List.exists (fun c -> Hashtbl.mem seen (Simplify.simplify (Expr.negate c))) cs
      then begin
        bump (fun s -> s.unsat <- s.unsat + 1);
        Unsat
      end
      else begin
      (* class representatives take the meet of their members' domains *)
      let class_dom = Hashtbl.create 32 in
      Hashtbl.iter
        (fun v () ->
          let r = Uf.find uf v in
          let d = Symvars.domain vars v in
          let i = Interval.of_bounds d.lo d.hi in
          let cur =
            match Hashtbl.find_opt class_dom r with
            | Some c -> Interval.meet c i
            | None -> i
          in
          Hashtbl.replace class_dom r cur)
        eq_members;
      (* variables in order of first occurrence along the path: coupled
         variables end up adjacent, so forward checking prunes early *)
      let var_ids =
        let seen = Hashtbl.create 256 in
        List.concat_map Expr.vars cs
        |> List.filter (fun v ->
               if Hashtbl.mem seen v then false
               else begin
                 Hashtbl.replace seen v ();
                 true
               end)
      in
      let doms = Hashtbl.create 64 in
      List.iter
        (fun v ->
          let base =
            match Hashtbl.find_opt class_dom v with
            | Some i -> i
            | None ->
                let d = Symvars.domain vars v in
                Interval.of_bounds d.lo d.hi
          in
          let seeded =
            match init_dom with
            | None -> base
            | Some f -> (
                match f v with
                | Some warm -> Interval.meet base warm
                | None -> base)
          in
          Hashtbl.replace doms v seeded)
        var_ids;
      let dom_of v =
        match Hashtbl.find_opt doms v with Some i -> i | None -> Interval.top
      in
      (* intervals for repeated complex subexpressions compared against
         constants: catches contradictions like [e <= 5] with [e > 9] that
         neither per-variable propagation nor structural negation-pairing
         sees (e.g. an atoi result checked in a loop) *)
      let edoms : (Expr.t, Interval.t) Hashtbl.t = Hashtbl.create 32 in
      let contradiction = ref false in
      (* a warm start may already be empty (the scope proved the conjunction
         unsat by propagation); the loop below only flags *changes* *)
      if Option.is_some init_dom then
        List.iter
          (fun v -> if Interval.is_empty (dom_of v) then contradiction := true)
          var_ids;
      let tighten_expr e (i : Interval.t) =
        match e with
        | Expr.Var _ | Expr.Const _ -> ()
        | _ ->
            let cur =
              match Hashtbl.find_opt edoms e with
              | Some c -> c
              | None -> Interval.top
            in
            let next = Interval.meet cur i in
            Hashtbl.replace edoms e next;
            if Interval.is_empty next then contradiction := true
      in
      List.iter
        (fun c ->
          match c with
          | Expr.Binop (op, e, Expr.Const k) -> (
              match op with
              | Expr.Eq -> tighten_expr e (Interval.of_const k)
              | Expr.Lt -> tighten_expr e (Interval.of_bounds Interval.clamp_lo (k - 1))
              | Expr.Le -> tighten_expr e (Interval.of_bounds Interval.clamp_lo k)
              | Expr.Gt -> tighten_expr e (Interval.of_bounds (k + 1) Interval.clamp_hi)
              | Expr.Ge -> tighten_expr e (Interval.of_bounds k Interval.clamp_hi)
              | _ -> ())
          | Expr.Binop (op, Expr.Const k, e) -> (
              match op with
              | Expr.Eq -> tighten_expr e (Interval.of_const k)
              | Expr.Gt -> tighten_expr e (Interval.of_bounds Interval.clamp_lo (k - 1))
              | Expr.Ge -> tighten_expr e (Interval.of_bounds Interval.clamp_lo k)
              | Expr.Lt -> tighten_expr e (Interval.of_bounds (k + 1) Interval.clamp_hi)
              | Expr.Le -> tighten_expr e (Interval.of_bounds k Interval.clamp_hi)
              | _ -> ())
          | _ -> ())
        cs;
      let changed = ref true in
      let set_dom v i =
        let old = dom_of v in
        if not (Interval.equal old i) then begin
          changed := true;
          Hashtbl.replace doms v i;
          if Interval.is_empty i then contradiction := true
        end
      in
      (* propagation to fixpoint (bounded rounds) *)
      let rounds = ref 0 in
      while !changed && (not !contradiction) && !rounds < prop_rounds do
        changed := false;
        incr rounds;
        List.iter
          (fun c ->
            narrow dom_of set_dom c;
            match Interval.eval dom_of c with
            | i when Interval.is_empty i -> contradiction := true
            | i when i.lo = 0 && i.hi = 0 -> contradiction := true
            | _ -> ())
          cs
      done;
      if !contradiction then begin
        bump (fun s -> s.unsat <- s.unsat + 1);
        Unsat
      end
      else begin
        (* variable order: singleton domains first (free), then first
           occurrence along the path (keeps coupled variables adjacent) *)
        let singles, rest =
          List.partition (fun v -> Interval.size (dom_of v) <= 1) var_ids
        in
        (* enumeration-first strategy: attack the tightest domains first so
           forward checking fails fast; `Path keeps the historical order *)
        let rest =
          match order with
          | `Path -> rest
          | `Smallest_dom ->
              List.stable_sort
                (fun a b ->
                  Int.compare (Interval.size (dom_of a)) (Interval.size (dom_of b)))
                rest
        in
        let order = Array.of_list (singles @ rest) in
        let nvars = Array.length order in
        let pos_of = Hashtbl.create 16 in
        Array.iteri (fun i v -> Hashtbl.replace pos_of v i) order;
        (* constraints indexed by the position of their last-assigned var *)
        let by_last = Array.make (max nvars 1) [] in
        List.iter
          (fun c ->
            match Expr.vars c with
            | [] -> () (* constant: already handled by simplify *)
            | vs ->
                let last =
                  List.fold_left (fun m v -> max m (Hashtbl.find pos_of v)) 0 vs
                in
                by_last.(last) <- c :: by_last.(last))
          cs;
        let assigned = Hashtbl.create 16 in
        let env v =
          match Hashtbl.find_opt assigned v with
          | Some x -> x
          | None -> raise Not_found
        in
        let check_at pos =
          List.for_all
            (fun c ->
              match Expr.eval env c with
              | n -> n <> 0
              | exception Expr.Undefined -> false)
            by_last.(pos)
        in
        (* conflict-directed backjumping: when no value works at a position,
           jump to the deepest *relevant* earlier position (a variable of
           some constraint checked here) instead of re-enumerating
           unconstrained intermediates *)
        let jump_of = Array.make (max nvars 1) (-1) in
        List.iter
          (fun c ->
            match Expr.vars c with
            | [] -> ()
            | vs ->
                let ps = List.map (fun v -> Hashtbl.find pos_of v) vs in
                let last = List.fold_left max 0 ps in
                let second =
                  List.fold_left (fun m p -> if p < last then max m p else m) (-1) ps
                in
                jump_of.(last) <- max jump_of.(last) second)
          cs;
        let nodes = ref 0 in
        let complete = ref true in
        let candidates v =
          let d = dom_of v in
          let base =
            if Interval.size d <= budget.max_enum then
              List.init (Interval.size d) (fun i -> d.lo + i)
            else begin
              complete := false;
              let mid = (d.lo + d.hi) / 2 in
              [ d.lo; 0; 1; mid; d.hi; d.lo + 1; d.hi - 1 ]
              |> List.filter (fun x -> Interval.mem x d)
              |> List.sort_uniq Int.compare
            end
          in
          match hint v with
          | Some h when Interval.mem h d ->
              h :: List.filter (fun x -> x <> h) base
          | _ -> base
        in
        let module Backjump = struct
          exception E of int
        end in
        let rec assign pos =
          if pos = nvars then begin
            let m =
              Array.fold_left
                (fun m v -> Model.add v (Hashtbl.find assigned v) m)
                Model.empty order
            in
            (* extend the model from representatives to all merged vars *)
            let m =
              Hashtbl.fold
                (fun v () m ->
                  let r = Uf.find uf v in
                  if r <> v then
                    match Model.find_opt r m with
                    | Some x -> Model.add v x m
                    | None -> m
                  else m)
                eq_members m
            in
            raise (Found m)
          end
          else begin
            let v = order.(pos) in
            let locally_ok = ref false in
            let rec try_cands = function
              | [] -> ()
              | x :: rest ->
                  incr nodes;
                  if !nodes > budget.max_nodes then begin
                    complete := false;
                    raise Exit
                  end;
                  Hashtbl.replace assigned v x;
                  if check_at pos then begin
                    locally_ok := true;
                    (try assign (pos + 1) with
                    | Backjump.E j when j >= pos -> ()
                    | Backjump.E j ->
                        Hashtbl.remove assigned v;
                        raise (Backjump.E j))
                  end;
                  try_cands rest
            in
            try_cands (candidates v);
            Hashtbl.remove assigned v;
            (* no candidate even passed the local constraints: jump straight
               to the deepest variable those constraints mention *)
            if not !locally_ok then raise (Backjump.E jump_of.(pos))
          end
        in
        let search () = try assign 0 with Backjump.E _ -> () in
        match search () with
        | () ->
            if !complete then begin
              bump (fun s -> s.unsat <- s.unsat + 1; s.nodes <- s.nodes + !nodes);
              Unsat
            end
            else begin
              if !debug_unknown then begin
                Printf.eprintf "UNKNOWN(search done, incomplete): nvars=%d nodes=%d ncs=%d\n"
                  nvars !nodes (List.length cs);
                List.iter (fun v ->
                  let d = dom_of v in
                  if Interval.size d > budget.max_enum then
                    Printf.eprintf "  sampled var v%d dom=%s (%s)\n" v
                      (Format.asprintf "%a" Interval.pp d) (Symvars.name vars v))
                  var_ids
              end;
              bump (fun s -> s.unknown <- s.unknown + 1; s.nodes <- s.nodes + !nodes);
              Unknown
            end
        | exception Found m ->
            bump (fun s -> s.sat <- s.sat + 1; s.nodes <- s.nodes + !nodes);
            Sat m
        | exception Exit ->
            if !debug_unknown then begin
              Printf.eprintf "UNKNOWN(node budget): nvars=%d nodes=%d ncs=%d\n" nvars
                !nodes (List.length cs);
              let oc = open_out "/tmp/unknown_cs.txt" in
              List.iter (fun c -> output_string oc (Expr.to_string c ^ "\n")) cs;
              close_out oc
            end;
            bump (fun s -> s.unknown <- s.unknown + 1; s.nodes <- s.nodes + !nodes);
            Unknown
      end
      end)
