(** Incremental solving façade: scoped contexts ({!Scope}), learned unsat
    cores and a two-strategy portfolio on top of {!Solve}/{!Cache}.

    One [t] is shared by all workers of an exploration (or all rungs of a
    triage cluster's escalation ladder); each worker opens a {!session}
    owning a private scope.  {!solve} prunes queries subsumed by a learned
    core without touching the solver, probes the shared cache on the
    independence slice, and only on a miss re-syncs the scope — so a
    sibling pending reuses the shared lineage prefix's propagation
    fixpoint — and picks the interval-first or enumeration-first strategy
    from per-signature outcome stats.  Every [Unsat] feeds core
    learning.

    Cores are registry-scoped (dropped when a session under a different
    {!Symvars} registry appears); portfolio statistics are keyed on a
    registry-independent signature and survive replay restarts.  Verdicts
    agree with the from-scratch solver (fuzz oracle 8); models may differ. *)

type t

type strategy = Interval_first | Enum_first

type snapshot = {
  solver_calls : int;  (** calls that were not core-pruned *)
  incremental : int;
      (** calls answered without a from-scratch solve: a shared-cache hit
          on the slice, or a solve that reused >= 1 scope frame *)
  core_pruned : int;  (** queries answered Unsat by core subsumption *)
  cores_learned : int;
  cores_live : int;  (** cores currently retained (bounded) *)
  enum_first : int;  (** portfolio picks of the enumeration-first strategy *)
  cache_hits : int;  (** slice probes answered by the shared cache *)
}

val create : unit -> t
val snapshot : t -> snapshot

(** Process-wide totals across every [t] (counter fields only; the
    per-instance fields [cores_live], [enum_first] and [cache_hits] read 0).
    Bench E15 reads these across a whole triage batch. *)
val totals : unit -> snapshot

val reset_totals : unit -> unit

(** A worker-private handle: owns a {!Scope} under [vars].  Opening a
    session under a different registry than the cores were learned from
    drops them (they are domain facts of that registry). *)
type session

val session : t -> vars:Symvars.t -> session
val scope : session -> Scope.t

(** [learn_core t ~vars core] retains [core] (a constraint set known
    unsatisfiable under [vars]' domains) for subsumption pruning.  Bounded
    size and count; silently ignored when stale or too large. *)
val learn_core : t -> vars:Symvars.t -> Expr.t list -> unit

(** Some learned core is a subset (structural membership) of [cs]. *)
val core_subsumes : t -> vars:Symvars.t -> Expr.t list -> bool

(** Solve the conjunction with the full incremental pipeline: core
    subsumption, cache probe on the independence slice ([slice], default
    [true] — same invariant as {!Cache.solve}), then on a miss scope
    re-sync, portfolio search and core learning.  Drop-in for the engine's
    solve path. *)
val solve :
  session ->
  ?budget:Solve.budget ->
  ?cache:Cache.t ->
  ?slice:bool ->
  ?hint:(int -> int option) ->
  Expr.t list ->
  Solve.outcome

(** A {!snapshot} in the unified counter view (scope ["solver.incr"],
    gauge [incremental_rate]). *)
val counters : snapshot -> Telemetry.Counters.snapshot
