(** Scoped incremental solving context: push/pop constraint frames that
    keep interval-propagation state alive between the heavily overlapping
    queries of a concolic exploration.

    A child pending's conjunction extends its parent's by one flipped
    branch; sibling pendings share their whole lineage prefix.  Pushing a
    constraint propagates it against the current domains and records the
    narrowings on a trail; popping undoes exactly them.  Re-solving a
    sibling therefore reuses the shared prefix's fixpoint instead of
    re-deriving it ({!Solve.solve}'s [init_dom] warm start).

    Not thread-safe — each exploration worker owns its scope. *)

type t

val create : vars:Symvars.t -> unit -> t
val vars : t -> Symvars.t

(** Number of live frames (pushed constraints). *)
val depth : t -> int

(** Push one constraint: simplify, detect contradictions ([Const 0],
    structural negation pair against a pushed constraint, domain emptied by
    propagation) and propagate domain narrowings, all undoable by {!pop}. *)
val push : t -> Expr.t -> unit

(** Undo the innermost {!push}.  @raise Invalid_argument on an empty scope. *)
val pop : t -> unit

val pop_all : t -> unit

(** The pushed conjunction is known unsatisfiable (detected at push time). *)
val contradiction : t -> bool

(** A certified small unsat subset of the pushed constraints (a trivially
    false constraint, or a negation pair with its partner), when the live
    contradiction has a structural witness.  [None] for propagation-detected
    contradictions — callers fall back to whole-set core learning. *)
val contra_core : t -> Expr.t list option

(** Pushed constraints, outermost first — the stack as the caller built it. *)
val constraints : t -> Expr.t list

(** The scope's narrowed domain for a variable, [None] if never narrowed.
    Exactly the warm start handed to {!Solve.solve} via [init_dom]. *)
val init_dom : t -> int -> Interval.t option

(** Lifetime push/pop counters (frame-reuse accounting in {!Incr}). *)
val pushes : t -> int

val pops : t -> int

(** Solve [cs] — the pushed conjunction or an independence slice of it —
    with the scope's domains as warm start.  A contradicted scope answers
    [Unsat] without searching.  Verdicts agree with a from-scratch
    {!Solve.solve} (fuzz-enforced); models may differ. *)
val solve :
  ?budget:Solve.budget ->
  ?order:[ `Path | `Smallest_dom ] ->
  ?prop_rounds:int ->
  ?hint:(int -> int option) ->
  t ->
  Expr.t list ->
  Solve.outcome
