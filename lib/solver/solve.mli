(** Constraint solving: satisfiability and model construction.

    Pipeline: structural simplification and deduplication, interval
    propagation to a fixpoint, then backtracking search with forward
    checking.  The search tries the caller-supplied hint first — the
    concolic trick that makes most queries trivial, because the previous
    run's input already satisfies all but the negated constraint. *)

type outcome = Sat of Model.t | Unsat | Unknown

type budget = {
  max_nodes : int;  (** backtracking nodes before giving up *)
  max_enum : int;  (** largest domain enumerated exhaustively *)
}

val default_budget : budget

type stats = {
  mutable calls : int;
  mutable sat : int;
  mutable unsat : int;
  mutable unknown : int;
  mutable nodes : int;
}

(** Global counters, for benchmark reporting. *)
val stats : stats

val reset_stats : unit -> unit

(** Print a diagnostic to stderr whenever a solve returns [Unknown]. *)
val debug_unknown : bool ref

(** One interval-narrowing step for a single constraint, parameterized over
    domain read/write — shared with {!Scope}'s incremental propagation.
    [narrow dom_of set_dom c] tightens the domains of variables of [c] so
    that [c <> 0] can still hold. *)
val narrow : (int -> Interval.t) -> (int -> Interval.t -> unit) -> Expr.t -> unit

(** Find a model of the conjunction, [Unsat] if provably none exists, or
    [Unknown] when the budget ran out or a domain was too large to
    enumerate.  [hint] supplies preferred values per variable.

    [init_dom] seeds warm starting intervals per variable (met with the
    registry domain) — used by {!Scope} to hand a child query the parent's
    already-propagated fixpoint.  Sound only when the supplied intervals are
    implied by the conjunction being solved.  [prop_rounds] bounds the
    propagation loop (default 30); [order] selects the search variable
    order: [`Path] (default, first occurrence along the path) or
    [`Smallest_dom] (enumeration-first: tightest domains first).  The
    defaults reproduce the historical solver behaviour bit for bit. *)
val solve :
  ?budget:budget ->
  ?init_dom:(int -> Interval.t option) ->
  ?order:[ `Path | `Smallest_dom ] ->
  ?prop_rounds:int ->
  vars:Symvars.t ->
  ?hint:(int -> int option) ->
  Expr.t list ->
  outcome
