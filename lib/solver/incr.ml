(** Incremental solving façade: scoped contexts, learned unsat cores and a
    two-strategy portfolio on top of {!Solve}/{!Scope}/{!Cache}.

    One [Incr.t] is shared by all workers of an exploration (or by every
    rung of a triage cluster's escalation ladder); each worker opens its own
    {!session}, which owns a private {!Scope}.  A call to {!solve}:

    + prunes the query outright when a learned unsat core is a subset of it
      (no solver call at all),
    + probes the shared {!Cache} on the independence slice — a hit needs no
      scope work at all,
    + on a miss, re-syncs the session scope to the query by popping the
      divergent suffix and pushing the new one — the shared lineage prefix
      keeps its propagation fixpoint — and solves with whichever of two
      strategies the per-signature outcome stats favour: *interval-first*
      (deep propagation, path variable order — the historical default) or
      *enumeration-first* (shallow propagation, smallest-domain-first
      search),
    + learns a core from every [Unsat]: the scope's certified structural
      witness when there is one, otherwise the whole (sliced) set when it
      is small.

    Learned cores are sound only against the variable registry and domains
    they were derived from, so they are tagged with the registry and
    dropped when a session under a different one appears (a guided-replay
    restart).  Portfolio statistics are keyed on a registry-independent
    query signature and survive restarts — that is what makes the triage
    ladder's repeated replays of one cluster progressively cheaper.

    Verdict equivalence with the from-scratch solver is enforced by fuzz
    oracle 8 (incremental-vs-fresh); models may legitimately differ. *)

type strategy = Interval_first | Enum_first

type sig_stats = {
  mutable a_runs : int;
  mutable a_time : float;
  mutable b_runs : int;
  mutable b_time : float;
  mutable seen : int;  (** calls with this signature, for re-exploration *)
}

type snapshot = {
  solver_calls : int;  (** calls that were not core-pruned *)
  incremental : int;
      (** calls answered without a from-scratch solve: a shared-cache hit
          on the slice, or a solve that reused >= 1 scope frame *)
  core_pruned : int;  (** queries answered Unsat by core subsumption *)
  cores_learned : int;
  cores_live : int;  (** cores currently retained (bounded) *)
  enum_first : int;  (** portfolio picks of the enumeration-first strategy *)
  cache_hits : int;  (** slice probes answered by the shared cache *)
}

type t = {
  mu : Mutex.t;
  sigs : (int * int * int, sig_stats) Hashtbl.t;
  mutable cores : (int * Expr.t list) list;
      (** newest first, bounded; each core carries a 63-bit member-hash
          mask so subsumption can reject most cores without building the
          per-query membership table *)
  core_set : (Expr.t list, unit) Hashtbl.t;  (** same cores, O(1) dedup *)
  mutable n_cores : int;
  mutable core_vars : Symvars.t option;  (** registry the cores belong to *)
  mutable solver_calls : int;
  mutable incremental : int;
  mutable core_pruned : int;
  mutable cores_learned : int;
  mutable enum_first : int;
  mutable cache_hits : int;
}

let max_cores = 128
let max_core_size = 6

(* Process-wide totals across every [Incr.t] (bench E15 reads these over a
   whole triage batch, where each cluster owns its instance). *)
let g_solver_calls = Atomic.make 0
let g_incremental = Atomic.make 0
let g_core_pruned = Atomic.make 0
let g_cores_learned = Atomic.make 0

let totals () =
  {
    solver_calls = Atomic.get g_solver_calls;
    incremental = Atomic.get g_incremental;
    core_pruned = Atomic.get g_core_pruned;
    cores_learned = Atomic.get g_cores_learned;
    cores_live = 0;
    enum_first = 0;
    cache_hits = 0;
  }

let reset_totals () =
  Atomic.set g_solver_calls 0;
  Atomic.set g_incremental 0;
  Atomic.set g_core_pruned 0;
  Atomic.set g_cores_learned 0

let create () =
  {
    mu = Mutex.create ();
    sigs = Hashtbl.create 32;
    cores = [];
    core_set = Hashtbl.create 64;
    n_cores = 0;
    core_vars = None;
    solver_calls = 0;
    incremental = 0;
    core_pruned = 0;
    cores_learned = 0;
    enum_first = 0;
    cache_hits = 0;
  }

let locked t f =
  Mutex.lock t.mu;
  match f () with
  | v ->
      Mutex.unlock t.mu;
      v
  | exception e ->
      Mutex.unlock t.mu;
      raise e

let snapshot t : snapshot =
  locked t (fun () ->
      {
        solver_calls = t.solver_calls;
        incremental = t.incremental;
        core_pruned = t.core_pruned;
        cores_learned = t.cores_learned;
        cores_live = t.n_cores;
        enum_first = t.enum_first;
        cache_hits = t.cache_hits;
      })

(* ------------------------------------------------------------------ *)
(* Sessions *)

type session = { incr : t; scope : Scope.t; mutable bypasses : int }

(* Cores are interval/domain facts over a specific registry; a session under
   a different registry (replay restart) invalidates them.  Portfolio stats
   are registry-independent and survive. *)
let session t ~vars =
  locked t (fun () ->
      (match t.core_vars with
      | Some v when v == vars -> ()
      | _ ->
          t.cores <- [];
          Hashtbl.reset t.core_set;
          t.n_cores <- 0;
          t.core_vars <- Some vars);
      { incr = t; scope = Scope.create ~vars (); bypasses = 0 })

let scope s = s.scope

(* ------------------------------------------------------------------ *)
(* Unsat cores *)

(* One bit per constraint, by structural hash.  A core can only be a
   subset of [cs] if its mask is covered by [cs]'s mask, so the precise
   (allocating) membership test runs only for plausible cores — on the
   cache-hit fast path, i.e. almost every call, no core survives the mask
   and subsumption costs a hash fold and nothing else. *)
let expr_bit (c : Expr.t) = 1 lsl (Hashtbl.hash c mod 62)

let mask_of (cs : Expr.t list) =
  List.fold_left (fun m c -> m lor expr_bit c) 0 cs

let learn_core t ~vars (core : Expr.t list) =
  if core <> [] && List.length core <= max_core_size then
    locked t (fun () ->
        match t.core_vars with
        | Some v when v == vars ->
            if not (Hashtbl.mem t.core_set core) then begin
              Hashtbl.replace t.core_set core ();
              t.cores <- (mask_of core, core) :: t.cores;
              t.n_cores <- t.n_cores + 1;
              t.cores_learned <- t.cores_learned + 1;
              Atomic.incr g_cores_learned;
              if t.n_cores > max_cores then begin
                (* drop the oldest *)
                let keep = List.filteri (fun i _ -> i < max_cores) t.cores in
                List.iteri
                  (fun i (_, c) ->
                    if i >= max_cores then Hashtbl.remove t.core_set c)
                  t.cores;
                t.cores <- keep;
                t.n_cores <- max_cores
              end
            end
        | _ -> () (* registry changed under us: stale, drop silently *))

(* Some learned core is a subset of [cs]: the query is Unsat for free.
   [cs] membership is structural on the raw path constraints — siblings
   share them verbatim, which is what makes subsumption fire. *)
let core_subsumes t ~vars (cs : Expr.t list) : bool =
  locked t (fun () ->
      match t.core_vars with
      | Some v when v == vars && t.cores <> [] ->
          let qmask = mask_of cs in
          if
            not
              (List.exists
                 (fun (m, _) -> m land qmask = m)
                 t.cores)
          then false
          else begin
            let members = Hashtbl.create 64 in
            List.iter (fun c -> Hashtbl.replace members c ()) cs;
            List.exists
              (fun (m, core) ->
                m land qmask = m
                && List.for_all (fun c -> Hashtbl.mem members c) core)
              t.cores
          end
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Portfolio *)

let bucket n =
  if n <= 2 then n
  else if n <= 4 then 4
  else if n <= 8 then 8
  else if n <= 16 then 16
  else if n <= 64 then 64
  else 256

let dom_bucket size = if size <= 2 then 2 else if size <= 16 then 16 else 256

let signature ~vars (cs : Expr.t list) =
  let seen = Hashtbl.create 32 in
  let maxd = ref 1 in
  List.iter
    (fun c ->
      List.iter
        (fun v ->
          if not (Hashtbl.mem seen v) then begin
            Hashtbl.replace seen v ();
            let d = Symvars.domain vars v in
            let sz = d.Symvars.hi - d.Symvars.lo + 1 in
            if sz > !maxd then maxd := sz
          end)
        (Expr.vars c))
    cs;
  (bucket (Hashtbl.length seen), dom_bucket !maxd, bucket (List.length cs))

let sig_stats_for t sg =
  match Hashtbl.find_opt t.sigs sg with
  | Some st -> st
  | None ->
      let st = { a_runs = 0; a_time = 0.0; b_runs = 0; b_time = 0.0; seen = 0 } in
      Hashtbl.replace t.sigs sg st;
      st

(* Alternate until both strategies have a couple of samples, then exploit
   the faster mean — with a 1-in-16 re-exploration of the loser so a phase
   change in the workload is eventually noticed. *)
let choose_strategy t sg =
  locked t (fun () ->
      let st = sig_stats_for t sg in
      st.seen <- st.seen + 1;
      if st.a_runs < 2 then Interval_first
      else if st.b_runs < 2 then Enum_first
      else
        let mean_a = st.a_time /. float_of_int st.a_runs in
        let mean_b = st.b_time /. float_of_int st.b_runs in
        let best = if mean_a <= mean_b then Interval_first else Enum_first in
        if st.seen land 15 = 0 then
          if best = Interval_first then Enum_first else Interval_first
        else best)

let record_strategy t sg strat dt =
  locked t (fun () ->
      let st = sig_stats_for t sg in
      match strat with
      | Interval_first ->
          st.a_runs <- st.a_runs + 1;
          st.a_time <- st.a_time +. dt
      | Enum_first ->
          st.b_runs <- st.b_runs + 1;
          st.b_time <- st.b_time +. dt)

(* ------------------------------------------------------------------ *)
(* Scope re-sync *)

(* A sync pays one {!Scope.push} (simplification, negation-pair scan,
   propagation) per divergent constraint.  Under lineage-affine scheduling
   the divergence is a handful of frames and the sync is the whole point;
   but when the search jumps to a far region (a BFS frontier, a steal), a
   full re-push of hundreds of frames costs more than solving the slice
   from scratch.  So a large divergence bypasses the scope — the query is
   solved hint-seeded without a warm start, exactly the cache-only path —
   unless the session has been bypassing for a while, in which case it
   re-anchors: the search has moved for good, pay one full sync so the new
   region becomes the cheap prefix. *)
let max_sync_pushes = 64

let reanchor_after = 16

(* Pop the divergent suffix, push the new one; [`Synced keep] reports the
   number of frames kept.  Frames are compared structurally on the original
   constraints, so the shared lineage prefix of sibling pendings is reused
   verbatim. *)
let sync_or_bypass (s : session) (cs : Expr.t list) : [ `Synced of int | `Bypass ] =
  let scope = s.scope in
  let cur = Scope.constraints scope in
  let rec common n (a : Expr.t list) (b : Expr.t list) =
    match (a, b) with
    | x :: a', y :: b' when x = y -> common (n + 1) a' b'
    | _ -> n
  in
  let keep = common 0 cur cs in
  let pushes = List.length cs - keep in
  if pushes > max_sync_pushes && s.bypasses < reanchor_after then begin
    s.bypasses <- s.bypasses + 1;
    `Bypass
  end
  else begin
    s.bypasses <- 0;
    for _ = 1 to Scope.depth scope - keep do
      Scope.pop scope
    done;
    List.iteri (fun i c -> if i >= keep then Scope.push scope c) cs;
    `Synced keep
  end

(* ------------------------------------------------------------------ *)
(* The solve pipeline *)

let solve (s : session) ?budget ?cache ?(slice = true)
    ?(hint : int -> int option = fun _ -> None) (cs : Expr.t list) :
    Solve.outcome =
  let t = s.incr in
  let vars = Scope.vars s.scope in
  if core_subsumes t ~vars cs then begin
    locked t (fun () -> t.core_pruned <- t.core_pruned + 1);
    Atomic.incr g_core_pruned;
    Solve.Unsat
  end
  else begin
    locked t (fun () -> t.solver_calls <- t.solver_calls + 1);
    Atomic.incr g_solver_calls;
    let scs = if slice then Cache.slice_focus cs else cs in
    let mark_incremental () =
      locked t (fun () -> t.incremental <- t.incremental + 1);
      Atomic.incr g_incremental
    in
    let finish_unsat () =
      (* the slice's Unsat proof is self-contained: it is a core *)
      learn_core t ~vars scs
    in
    (* Only a cache miss touches the scope: a hit needs no solving, and the
       re-sync (pop plus a propagation pass per pushed frame) is the
       expensive half of the call, so paying it on the 95%+ of calls the
       shared cache answers would cost more than the seed solver. *)
    let portfolio_solve ~scoped () =
      let sg = signature ~vars scs in
      let strat = choose_strategy t sg in
      let t0 = Unix.gettimeofday () in
      let r =
        match (strat, scoped) with
        | Interval_first, true -> Scope.solve ?budget ~hint s.scope scs
        | Interval_first, false -> Solve.solve ?budget ~vars ~hint scs
        | Enum_first, scoped ->
            locked t (fun () -> t.enum_first <- t.enum_first + 1);
            if scoped then
              Scope.solve ?budget ~order:`Smallest_dom ~prop_rounds:4 ~hint
                s.scope scs
            else
              Solve.solve ?budget ~order:`Smallest_dom ~prop_rounds:4 ~vars
                ~hint scs
      in
      record_strategy t sg strat (Unix.gettimeofday () -. t0);
      if r = Solve.Unsat then finish_unsat ();
      r
    in
    let solve_fresh () =
      match sync_or_bypass s cs with
      | `Bypass -> portfolio_solve ~scoped:false ()
      | `Synced kept ->
          if kept > 0 then mark_incremental ();
          if Scope.contradiction s.scope then begin
            (match Scope.contra_core s.scope with
            | Some core -> learn_core t ~vars core
            | None -> learn_core t ~vars cs);
            Solve.Unsat
          end
          else portfolio_solve ~scoped:true ()
    in
    match cache with
    | None -> solve_fresh ()
    | Some c -> (
        let p = Cache.prepare ~vars scs in
        match Cache.lookup c p with
        | Some r ->
            locked t (fun () -> t.cache_hits <- t.cache_hits + 1);
            mark_incremental ();
            if r = Solve.Unsat then finish_unsat ();
            r
        | None ->
            let r = solve_fresh () in
            Cache.remember c p r;
            r)
  end

(* ------------------------------------------------------------------ *)

let counters (s : snapshot) : Telemetry.Counters.snapshot =
  Telemetry.Counters.make ~scope:"solver.incr"
    ~gauges:
      [
        ( "incremental_rate",
          if s.solver_calls = 0 then 0.0
          else float_of_int s.incremental /. float_of_int s.solver_calls );
      ]
    [
      ("solver_calls", s.solver_calls);
      ("incremental", s.incremental);
      ("core_pruned", s.core_pruned);
      ("cores_learned", s.cores_learned);
      ("cores_live", s.cores_live);
      ("enum_first", s.enum_first);
      ("cache_hits", s.cache_hits);
    ]
