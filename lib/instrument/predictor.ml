(** The branch-prediction logging alternative the paper rejects (§4).

    Instead of one bit per executed instrumented branch, one could log only
    *mispredicted* branches.  But replay must then know which branch
    occurrence each log entry corresponds to, so every entry carries the
    branch location — "at least another 32 bits of storage per branch,
    probably ruining any savings obtained by the prediction algorithm".

    This module implements two classic predictors over a branch-execution
    stream and accounts for the resulting log size, so the bench harness can
    quantify the paper's argument instead of taking it on faith. *)

type scheme =
  | Last_direction  (** predict the direction taken last time (1-bit state) *)
  | Two_bit  (** 2-bit saturating counter per branch location *)

let scheme_to_string = function
  | Last_direction -> "last-direction"
  | Two_bit -> "2-bit saturating"

type t = {
  scheme : scheme;
  state : int array;  (** per-branch predictor state *)
  mutable executions : int;
  mutable mispredictions : int;
}

let create ~nbranches scheme =
  (* initial state: predict taken (counter = 2 on the weakly-taken side) *)
  { scheme; state = Array.make nbranches 2; executions = 0; mispredictions = 0 }

let predict t bid =
  match t.scheme with
  | Last_direction -> t.state.(bid) >= 2
  | Two_bit -> t.state.(bid) >= 2

let update t bid ~taken =
  match t.scheme with
  | Last_direction -> t.state.(bid) <- (if taken then 3 else 0)
  | Two_bit ->
      let s = t.state.(bid) in
      t.state.(bid) <- (if taken then min 3 (s + 1) else max 0 (s - 1))

(** Feed one branch execution; returns true if it was mispredicted (and
    would therefore be logged under this scheme). *)
let observe t bid ~taken =
  t.executions <- t.executions + 1;
  let predicted = predict t bid in
  update t bid ~taken;
  if predicted <> taken then begin
    t.mispredictions <- t.mispredictions + 1;
    true
  end
  else false

(** Log size in bytes under the misprediction scheme: each entry records the
    branch location (32 bits), as the paper argues is required. *)
let log_size_bytes t = t.mispredictions * 4

let misprediction_rate t =
  if t.executions = 0 then 0.0
  else float_of_int t.mispredictions /. float_of_int t.executions

(** Hooks wrapper: run a predictor alongside a field run (observation only;
    chains to [inner]). *)
let hooks ?(inner = Interp.Eval.no_hooks) (t : t) ~(plan : Plan.t) :
    Interp.Eval.hooks =
  {
    inner with
    Interp.Eval.on_branch =
      (fun ~bid ~iter ~taken ~cond ->
        inner.Interp.Eval.on_branch ~bid ~iter ~taken ~cond;
        if Plan.is_instrumented plan bid then ignore (observe t bid ~taken));
  }
