(** Wire format for bug reports.

    The report is the only artifact that crosses the user/developer
    boundary, so it gets a proper serialisation: a line-oriented text
    format with hex-encoded log bytes.  Everything in it is shippable by
    design — branch bits, numeric syscall results, schedule decisions, the
    crash site and the input shape; no input content exists to leak. *)

(* The header line is [magic_prefix ^ version]: the version integer is the
   format's version byte.  Writers always emit the current [version];
   readers accept every version in [1 .. version] and reject anything newer
   or older with [Unknown_version] (distinct from [Malformed], so callers
   can tell "upgrade your tool" apart from corruption).  v1 -> v2: added
   the [branch-flushes] field (v1 readers tolerate trailing unknown
   fields; v1 reports read back with [flushes = 0]).  v2 -> v3: added the
   optional [suppression] probe-elision table.  The table is serialized
   *before* the branch log so a prefix tear that loses the table also
   loses the log (a suppressed log read without its table would replay
   garbage), carries its own entry count so a tear on an entry boundary is
   still detected, and is strictly fail-closed: any damage to it makes
   even the salvage reader reject the whole report.  v3 -> v4: the branch
   payload may arrive online-encoded in a [branch-enc] line (hex of the
   {!Codec} token stream) instead of [branch-log]; exactly one of the two
   must be present, [branch-enc] is rejected below v4, and the strict
   reader validates that the token stream decodes to exactly the claimed
   bit count.  A v4 report with a raw payload is line-identical to v3
   modulo the header digit. *)
let magic_prefix = "bugrepro-report/"
let version = 4
let magic = magic_prefix ^ string_of_int version

type error = Unknown_version of int | Malformed of string

let error_to_string = function
  | Unknown_version v ->
      Printf.sprintf "unknown report format version %d (supported: 1-%d)" v
        version
  | Malformed msg -> msg

let hex_of_string s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let string_of_hex h =
  if String.length h mod 2 <> 0 then Error "odd hex length"
  else
    try
      Ok
        (String.init
           (String.length h / 2)
           (fun i -> Char.chr (int_of_string ("0x" ^ String.sub h (2 * i) 2))))
    with _ -> Error "bad hex"

let method_code = function
  | Methods.No_instrumentation -> "none"
  | Methods.Dynamic -> "dynamic"
  | Methods.Static -> "static"
  | Methods.Dynamic_static -> "dynamic+static"
  | Methods.All_branches -> "all"

let method_of_code = function
  | "none" -> Ok Methods.No_instrumentation
  | "dynamic" -> Ok Methods.Dynamic
  | "static" -> Ok Methods.Static
  | "dynamic+static" -> Ok Methods.Dynamic_static
  | "all" -> Ok Methods.All_branches
  | s -> Error ("unknown method " ^ s)

let crash_kind_code (k : Interp.Crash.kind) = Interp.Crash.kind_to_string k

let crash_kind_of_code s : (Interp.Crash.kind, string) result =
  let all : Interp.Crash.kind list =
    [
      Out_of_bounds; Null_deref; Use_after_free; Div_by_zero; Assert_failure;
      Explicit_crash; Stack_overflow; Invalid_pointer;
    ]
  in
  match List.find_opt (fun k -> Interp.Crash.kind_to_string k = s) all with
  | Some k -> Ok k
  | None -> Error ("unknown crash kind " ^ s)

(* [<count>;<bid>=<code>,...]: the leading entry count makes the table
   self-delimiting, so losing trailing entries to a tear is detectable
   even when the surviving prefix parses *)
let suppression_to_string tbl =
  Printf.sprintf "%d;%s" (List.length tbl)
    (Staticanalysis.Suppression.table_to_string tbl)

let suppression_of_string v :
    ((int * Staticanalysis.Suppression.rule) list, string) result =
  match String.index_opt v ';' with
  | None -> Error "bad suppression table (missing count)"
  | Some i -> (
      match int_of_string_opt (String.sub v 0 i) with
      | None -> Error "bad suppression table count"
      | Some n -> (
          match
            Staticanalysis.Suppression.table_of_string
              (String.sub v (i + 1) (String.length v - i - 1))
          with
          | Error e -> Error e
          | Ok tbl when List.length tbl <> n ->
              Error "suppression table count mismatch"
          | Ok tbl -> Ok tbl))

let ints_to_string l = String.concat "," (List.map string_of_int l)

let ints_of_string s =
  if String.trim s = "" then Ok []
  else
    try Ok (List.map int_of_string (String.split_on_char ',' s))
    with _ -> Error "bad integer list"

(** Serialize a report to its wire form. *)
let serialize (t : Report.t) : string =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "%s" magic;
  line "program: %s" t.program;
  (* optional within v4: readers of every supported version tolerate
     unknown trailing fields, and an absent line reads back as [None] *)
  (match t.cohort with Some c -> line "cohort: %s" c | None -> ());
  line "method: %s" (method_code t.method_used);
  line "crash: %s|%s|%d|%d|%s"
    (crash_kind_code t.crash.kind)
    t.crash.loc.file t.crash.loc.line t.crash.loc.col t.crash.in_func;
  line "shape-args: %s" (ints_to_string t.shape.arg_caps);
  line "shape-conns: %d,%d" t.shape.n_conns t.shape.conn_cap;
  line "shape-files: %s" (String.concat "," t.shape.file_names);
  line "shape-filecap: %d" t.shape.file_cap;
  (* before the branch log: a prefix tear must not keep a suppressed log
     while losing the table needed to interpret it *)
  if t.suppression <> [] then
    line "suppression: %s" (suppression_to_string t.suppression);
  (* the branch payload serializes LAST: it is the buffer the crashing
     process tears mid-write, so a tail tear must cost branch bits — not
     the syscall and schedule logs the salvage reader needs to keep
     replay guided.  Readers of every version parse by key, so the order
     change is invisible to them. *)
  (match t.syscall_log with
  | Some l ->
      line "syscalls: %s"
        (String.concat ","
           (Array.to_list
              (Array.map
                 (fun (e : Syscall_log.entry) -> Printf.sprintf "%s:%d" e.kind e.value)
                 l.entries)))
  | None -> ());
  (match t.schedule_log with
  | Some l when Schedule_log.length l > 0 ->
      line "schedule: %s" (ints_to_string (Array.to_list l.tids))
  | _ -> ());
  (match t.branch_log with
  | Report.Raw l ->
      line "branch-bits: %d" l.Branch_log.nbits;
      line "branch-flushes: %d" l.Branch_log.flushes;
      line "branch-log: %s" (hex_of_string l.Branch_log.bytes)
  | Report.Encoded e ->
      line "branch-bits: %d" e.Codec.nbits;
      line "branch-flushes: %d" e.Codec.flushes;
      line "branch-enc: %s" (hex_of_string e.Codec.data));
  Buffer.contents b

let ( let* ) = Result.bind

(* Parse the field lines of a report whose version was already checked;
   [ver] gates the fields newer versions introduced (branch-enc is v4+). *)
let parse_fields ~(ver : int) (rest : string list) : (Report.t, string) result =
  let fields =
        List.filter_map
          (fun l ->
            match String.index_opt l ':' with
            | Some i ->
                Some
                  ( String.sub l 0 i,
                    String.trim (String.sub l (i + 1) (String.length l - i - 1)) )
            | None -> None)
          rest
      in
      let get k =
        match List.assoc_opt k fields with
        | Some v -> Ok v
        | None -> Error ("missing field " ^ k)
      in
      let* program = get "program" in
      let cohort =
        match List.assoc_opt "cohort" fields with
        | Some "" | None -> None
        | Some c -> Some c
      in
      let* meth_s = get "method" in
      let* method_used = method_of_code meth_s in
      let* crash_s = get "crash" in
      let* crash =
        match String.split_on_char '|' crash_s with
        | [ kind; file; line; col; in_func ] -> (
            let* kind = crash_kind_of_code kind in
            try
              Ok
                {
                  Interp.Crash.kind;
                  loc =
                    Minic.Loc.make ~file ~line:(int_of_string line)
                      ~col:(int_of_string col);
                  in_func;
                }
            with _ -> Error "bad crash location")
        | _ -> Error "bad crash field"
      in
      let* arg_caps = Result.bind (get "shape-args") ints_of_string in
      let* conns_s = get "shape-conns" in
      let* n_conns, conn_cap =
        match String.split_on_char ',' conns_s with
        | [ a; b ] -> (
            try Ok (int_of_string a, int_of_string b) with _ -> Error "bad conns")
        | _ -> Error "bad shape-conns"
      in
      let* files_s = get "shape-files" in
      let file_names =
        if files_s = "" then [] else String.split_on_char ',' files_s
      in
      let* file_cap =
        Result.bind (get "shape-filecap") (fun v ->
            try Ok (int_of_string v) with _ -> Error "bad filecap")
      in
      let* nbits =
        Result.bind (get "branch-bits") (fun v ->
            try Ok (int_of_string v) with _ -> Error "bad bit count")
      in
      let* flushes =
          (* v2 field; absent from v1 reports *)
          match List.assoc_opt "branch-flushes" fields with
          | None -> Ok 0
          | Some v -> (
              try Ok (int_of_string v) with _ -> Error "bad flush count")
        in
        let* branch_log =
          match
            ( List.assoc_opt "branch-log" fields,
              List.assoc_opt "branch-enc" fields )
          with
          | Some _, Some _ -> Error "both branch-log and branch-enc present"
          | None, None -> Error "missing field branch-log"
          | Some log_hex, None ->
              let* bytes = string_of_hex log_hex in
              if nbits > 8 * String.length bytes then
                Error "bit count exceeds log bytes"
              else Ok (Report.Raw { Branch_log.bytes; nbits; flushes })
          | None, Some enc_hex -> (
              (* v4 field; fail-closed: the token stream must parse and
                 decode to exactly the claimed bit count *)
              if ver < 4 then Error "branch-enc requires format version 4"
              else
                let* data = string_of_hex enc_hex in
                match Codec.count_bits data with
                | Error m -> Error ("bad branch-enc: " ^ m)
                | Ok n when n <> nbits ->
                    Error
                      (Printf.sprintf
                         "branch-enc decodes to %d bit(s) but branch-bits \
                          claims %d"
                         n nbits)
                | Ok _ -> Ok (Report.Encoded { Codec.data; nbits; flushes }))
        in
        let syscall_log =
          match List.assoc_opt "syscalls" fields with
          | None -> Ok None
          | Some "" -> Ok (Some { Syscall_log.entries = [||] })
          | Some v -> (
              try
                Ok
                  (Some
                     {
                       Syscall_log.entries =
                         String.split_on_char ',' v
                         |> List.map (fun kv ->
                                match String.rindex_opt kv ':' with
                                | Some i ->
                                    {
                                      Syscall_log.kind = String.sub kv 0 i;
                                      value =
                                        int_of_string
                                          (String.sub kv (i + 1)
                                             (String.length kv - i - 1));
                                    }
                                | None -> failwith "bad")
                         |> Array.of_list;
                     })
              with _ -> Error "bad syscall log")
        in
        let* syscall_log = syscall_log in
        let* schedule_log =
          match List.assoc_opt "schedule" fields with
          | None -> Ok None
          | Some v ->
              let* tids = ints_of_string v in
              Ok (Some { Schedule_log.tids = Array.of_list tids })
        in
        let* suppression =
          (* v3 field; absent from v1/v2 reports.  Strict: a present but
             damaged table rejects the report (fail-closed) *)
          match List.assoc_opt "suppression" fields with
          | None -> Ok []
          | Some v -> suppression_of_string v
        in
        Ok
          {
            Report.program;
            method_used;
            cohort;
            branch_log;
            syscall_log;
            schedule_log;
            crash;
            shape =
              { Concolic.Scenario.arg_caps; n_conns; conn_cap; file_names; file_cap };
            suppression;
          }

(** Parse a wire-form report with a typed error.  Tolerates unknown
    trailing fields within a known version (forward compatibility inside a
    version); a well-formed header naming a version outside [1 ..
    {!version}] is [Unknown_version]; everything else malformed is
    [Malformed]. *)
let deserialize_v (s : string) : (Report.t, error) result =
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  match lines with
  | m :: rest
    when String.length m >= String.length magic_prefix
         && String.sub m 0 (String.length magic_prefix) = magic_prefix -> (
      let v_s =
        String.sub m (String.length magic_prefix)
          (String.length m - String.length magic_prefix)
      in
      match int_of_string_opt v_s with
      | None -> Error (Malformed "bad version in report header")
      | Some v when v < 1 || v > version -> Error (Unknown_version v)
      | Some v -> (
          match parse_fields ~ver:v rest with
          | Ok r -> Ok r
          | Error e -> Error (Malformed e)))
  | _ -> Error (Malformed "not a bugrepro report (bad magic)")

(** {!deserialize_v} with the error flattened to a string (the historical
    interface; kept for existing callers). *)
let deserialize (s : string) : (Report.t, string) result =
  Result.map_error error_to_string (deserialize_v s)

(* ------------------------------------------------------------------ *)
(* Salvage: the lenient sibling of the fail-closed reader.

   A crash that tears its own log is the most common field artifact: the
   process dies with a partly-written 4 KB buffer, so the wire form stops
   mid-line (or a relay corrupts a byte).  [deserialize_salvage] recovers
   the longest valid prefix — a well-formed header plus as many complete
   fields and complete hex log bytes as still parse — so replay can degrade
   into [log_exhausted] forking (§3.1 case 1) instead of rejecting the
   report outright.  [deserialize_v] stays fail-closed for callers that
   want corruption to be loud. *)

type salvage = {
  complete : bool;
      (** nothing was dropped: the strict reader would have accepted it *)
  dropped_lines : int;  (** field lines lost to the tear (or unparsable) *)
  lost_log_bits : int;  (** claimed branch bits minus salvaged bits *)
  dropped_syscalls : int;  (** syscall entries lost from the log's tail *)
  dropped_schedule : bool;  (** the schedule log did not survive *)
}

let salvage_to_string (s : salvage) =
  if s.complete then "intact"
  else
    Printf.sprintf
      "torn: %d line(s), %d branch bit(s), %d syscall entry(ies)%s lost"
      s.dropped_lines s.lost_log_bits s.dropped_syscalls
      (if s.dropped_schedule then ", schedule log" else "")

(* Longest prefix of [h] made of complete (two-digit) hex bytes. *)
let hex_prefix h =
  let is_hex c =
    (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
  in
  let n = String.length h in
  let ok = ref 0 in
  while !ok < n && is_hex h.[!ok] do
    incr ok
  done;
  let even = !ok - (!ok mod 2) in
  (String.sub h 0 even, even < n)

(* Longest prefix of complete [kind:value] syscall entries. *)
let syscall_prefix v =
  let parts = if v = "" then [] else String.split_on_char ',' v in
  let rec take acc dropped = function
    | [] -> (List.rev acc, dropped)
    | kv :: rest -> (
        match String.rindex_opt kv ':' with
        | Some i -> (
            match
              int_of_string_opt
                (String.sub kv (i + 1) (String.length kv - i - 1))
            with
            | Some value when i > 0 ->
                take ({ Syscall_log.kind = String.sub kv 0 i; value } :: acc)
                  dropped rest
            | _ -> (List.rev acc, dropped + 1 + List.length rest))
        | None -> (List.rev acc, dropped + 1 + List.length rest))
  in
  take [] 0 parts

(* Longest prefix of complete integers of a comma-separated list. *)
let ints_prefix v =
  let parts = if String.trim v = "" then [] else String.split_on_char ',' v in
  let rec take acc dropped = function
    | [] -> (List.rev acc, dropped)
    | p :: rest -> (
        match int_of_string_opt p with
        | Some n -> take (n :: acc) dropped rest
        | None -> (List.rev acc, dropped + 1 + List.length rest))
  in
  take [] 0 parts

(* Mutable accumulation state for the salvage walk. *)
type partial = {
  mutable p_program : string option;
  mutable p_cohort : string option;
  mutable p_method : Methods.t option;
  mutable p_crash : Interp.Crash.t option;
  mutable p_arg_caps : int list option;
  mutable p_conns : (int * int) option;
  mutable p_files : string list option;
  mutable p_filecap : int option;
  mutable p_nbits : int option;
  mutable p_bytes : string option;
  mutable p_enc : (string * int) option;
      (* encoded payload cut at the last complete token boundary, with the
         bit count that prefix decodes to *)
  mutable p_enc_ok : bool;
      (* the branch-enc line parsed completely (no tear, no trailing
         token damage): the encoded form can be kept verbatim *)
  mutable p_flushes : int option;
  mutable p_syscalls : Syscall_log.entry list option;
  mutable p_sys_dropped : int;
  mutable p_schedule : int list option;
  mutable p_sched_dropped : bool;
  mutable p_suppression : (int * Staticanalysis.Suppression.rule) list option;
  mutable p_sup_bad : bool;
      (* a suppression line was present but damaged: the whole salvage
         must fail (a suppressed log without its exact table is garbage) *)
}

let parse_crash crash_s : Interp.Crash.t option =
  match String.split_on_char '|' crash_s with
  | [ kind; file; line; col; in_func ] -> (
      match crash_kind_of_code kind with
      | Error _ -> None
      | Ok kind -> (
          match int_of_string_opt line, int_of_string_opt col with
          | Some line, Some col ->
              Some
                { Interp.Crash.kind;
                  loc = Minic.Loc.make ~file ~line ~col;
                  in_func }
          | _ -> None))
  | _ -> None

(** Salvage a torn or byte-corrupted wire form.  The header must be intact
    (and name a supported version — an unknown version is an upgrade
    problem, not a tear); field lines are then consumed in order until the
    first one that no longer parses, with the branch-log hex, the syscall
    list and the schedule list each salvaged down to their longest complete
    prefix.  Succeeds when the identity fields (program, method, crash
    site, input shape) survived; the branch log may come back shorter than
    recorded — or empty — with the loss accounted in the {!salvage}
    diagnosis.  Never raises. *)
let deserialize_salvage (s : string) : (Report.t * salvage, error) result =
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  match lines with
  | m :: rest
    when String.length m >= String.length magic_prefix
         && String.sub m 0 (String.length magic_prefix) = magic_prefix -> (
      let v_s =
        String.sub m (String.length magic_prefix)
          (String.length m - String.length magic_prefix)
      in
      match int_of_string_opt v_s with
      | None -> Error (Malformed "bad version in report header")
      | Some v when v < 1 || v > version -> Error (Unknown_version v)
      | Some ver ->
          let p =
            {
              p_program = None; p_cohort = None; p_method = None;
              p_crash = None;
              p_arg_caps = None; p_conns = None; p_files = None;
              p_filecap = None; p_nbits = None; p_bytes = None;
              p_enc = None; p_enc_ok = false;
              p_flushes = None; p_syscalls = None; p_sys_dropped = 0;
              p_schedule = None; p_sched_dropped = false;
              p_suppression = None; p_sup_bad = false;
            }
          in
          let dropped_lines = ref 0 in
          (* Consume one field line; [false] means the line is damaged and
             the scan must stop (prefix semantics: everything after a tear
             is untrusted). *)
          let consume l =
            match String.index_opt l ':' with
            | None -> false
            | Some i -> (
                let k = String.sub l 0 i in
                let v =
                  String.trim (String.sub l (i + 1) (String.length l - i - 1))
                in
                match k with
                | "program" ->
                    p.p_program <- Some v;
                    true
                | "cohort" ->
                    if v <> "" then p.p_cohort <- Some v;
                    true
                | "method" -> (
                    match method_of_code v with
                    | Ok m ->
                        p.p_method <- Some m;
                        true
                    | Error _ -> false)
                | "crash" -> (
                    match parse_crash v with
                    | Some c ->
                        p.p_crash <- Some c;
                        true
                    | None -> false)
                | "shape-args" -> (
                    match ints_of_string v with
                    | Ok caps ->
                        p.p_arg_caps <- Some caps;
                        true
                    | Error _ -> false)
                | "shape-conns" -> (
                    match String.split_on_char ',' v with
                    | [ a; b ] -> (
                        match int_of_string_opt a, int_of_string_opt b with
                        | Some a, Some b ->
                            p.p_conns <- Some (a, b);
                            true
                        | _ -> false)
                    | _ -> false)
                | "shape-files" ->
                    p.p_files <-
                      Some (if v = "" then [] else String.split_on_char ',' v);
                    true
                | "shape-filecap" -> (
                    match int_of_string_opt v with
                    | Some n ->
                        p.p_filecap <- Some n;
                        true
                    | None -> false)
                | "branch-bits" -> (
                    match int_of_string_opt v with
                    | Some n ->
                        p.p_nbits <- Some n;
                        true
                    | None -> false)
                | "branch-log" ->
                    let hex, torn = hex_prefix v in
                    (match string_of_hex hex with
                    | Ok bytes -> p.p_bytes <- Some bytes
                    | Error _ -> p.p_bytes <- Some "");
                    not torn
                | "branch-enc" when ver >= 4 ->
                    (* cut the encoded payload at the last complete token:
                       the surviving prefix decodes to exactly the bits it
                       carries (prefix-closed token grammar) *)
                    let hex, torn = hex_prefix v in
                    let bytes =
                      match string_of_hex hex with Ok b -> b | Error _ -> ""
                    in
                    let cut, cut_bits = Codec.cut_prefix bytes in
                    p.p_enc <- Some (cut, cut_bits);
                    let ok =
                      (not torn) && String.length cut = String.length bytes
                    in
                    p.p_enc_ok <- ok;
                    ok
                | "branch-flushes" -> (
                    match int_of_string_opt v with
                    | Some n ->
                        p.p_flushes <- Some n;
                        true
                    | None -> false)
                | "syscalls" ->
                    let entries, dropped = syscall_prefix v in
                    p.p_syscalls <- Some entries;
                    p.p_sys_dropped <- dropped;
                    dropped = 0
                | "suppression" -> (
                    (* fail-closed: no partial salvage of the elision
                       table — an unknown rule code or torn entry poisons
                       the whole report *)
                    match suppression_of_string v with
                    | Ok tbl ->
                        p.p_suppression <- Some tbl;
                        true
                    | Error _ ->
                        p.p_sup_bad <- true;
                        false)
                | "schedule" ->
                    let tids, dropped = ints_prefix v in
                    if dropped = 0 then (
                      p.p_schedule <- Some tids;
                      true)
                    else (
                      p.p_sched_dropped <- true;
                      false)
                | _ -> true (* unknown field: forward compatibility *))
          in
          let rec walk = function
            | [] -> ()
            | l :: ls ->
                if consume l then walk ls
                else begin
                  (* the tear: this line is damaged (its own salvageable
                     part, if any, was kept above); drop it and the rest *)
                  dropped_lines := 1 + List.length ls;
                  (* a damaged line's salvaged value still counts *)
                  if
                    (match String.index_opt l ':' with
                    | Some i -> String.sub l 0 i = "branch-log" && p.p_bytes <> None
                    | None -> false)
                    || (match String.index_opt l ':' with
                       | Some i -> String.sub l 0 i = "branch-enc" && p.p_enc <> None
                       | None -> false)
                    || (match String.index_opt l ':' with
                       | Some i -> String.sub l 0 i = "syscalls"
                       | None -> false)
                  then dropped_lines := !dropped_lines - 1
                end
          in
          walk rest;
          (* minimum viable report: identity + shape *)
          let missing k = Error (Malformed ("unsalvageable: lost field " ^ k)) in
          let ( let* ) = Result.bind in
          let req k = function Some v -> Ok v | None -> missing k in
          let* () =
            if p.p_sup_bad then
              Error (Malformed "suppression table damaged (fail-closed)")
            else Ok ()
          in
          let* program = req "program" p.p_program in
          let* method_used = req "method" p.p_method in
          let* crash = req "crash" p.p_crash in
          let* arg_caps = req "shape-args" p.p_arg_caps in
          let* n_conns, conn_cap = req "shape-conns" p.p_conns in
          let* file_names = req "shape-files" p.p_files in
          let* file_cap = req "shape-filecap" p.p_filecap in
          let log_flushes = Option.value p.p_flushes ~default:0 in
          (* [enc_degraded] marks an encoded payload that could not be
             kept verbatim (tear, trailing damage, or a bit-count mismatch
             the strict reader would reject): it decodes to a shorter raw
             log, so [complete] must come back false even when no whole
             line was dropped *)
          let branch_log, lost_log_bits, enc_degraded =
            match p.p_enc with
            | Some (cut, cut_bits) ->
                let claimed = Option.value p.p_nbits ~default:cut_bits in
                if p.p_enc_ok && claimed = cut_bits then
                  ( Report.Encoded
                      { Codec.data = cut; nbits = cut_bits;
                        flushes = log_flushes },
                    0, false )
                else
                  let full =
                    match
                      Codec.decode
                        { Codec.data = cut; nbits = cut_bits;
                          flushes = log_flushes }
                    with
                    | Ok l -> l
                    | Error _ ->
                        { Branch_log.bytes = ""; nbits = 0;
                          flushes = log_flushes }
                  in
                  let nbits = min claimed full.Branch_log.nbits in
                  let bytes =
                    String.sub full.Branch_log.bytes 0 ((nbits + 7) / 8)
                  in
                  ( Report.Raw
                      { Branch_log.bytes; nbits; flushes = log_flushes },
                    max 0 (claimed - nbits), true )
            | None ->
                let bytes = Option.value p.p_bytes ~default:"" in
                let claimed =
                  Option.value p.p_nbits ~default:(8 * String.length bytes)
                in
                let nbits = min claimed (8 * String.length bytes) in
                ( Report.Raw
                    { Branch_log.bytes; nbits; flushes = log_flushes },
                  max 0 (claimed - nbits), false )
          in
          let report =
            {
              Report.program;
              method_used;
              cohort = p.p_cohort;
              branch_log;
              syscall_log =
                Option.map (fun e -> { Syscall_log.entries = Array.of_list e })
                  p.p_syscalls;
              schedule_log =
                Option.map (fun t -> { Schedule_log.tids = Array.of_list t })
                  p.p_schedule;
              crash;
              shape =
                { Concolic.Scenario.arg_caps; n_conns; conn_cap; file_names;
                  file_cap };
              suppression = Option.value p.p_suppression ~default:[];
            }
          in
          let diag =
            {
              complete =
                !dropped_lines = 0 && lost_log_bits = 0
                && p.p_sys_dropped = 0
                && not p.p_sched_dropped
                && not enc_degraded
                && (p.p_bytes <> None || p.p_enc <> None);
              dropped_lines = !dropped_lines;
              lost_log_bits;
              dropped_syscalls = p.p_sys_dropped;
              dropped_schedule = p.p_sched_dropped;
            }
          in
          Ok (report, diag))
  | _ -> Error (Malformed "not a bugrepro report (bad magic)")
