(** The user-site (field) execution of an instrumented program.

    Runs the scenario concretely, recording one bit per executed
    instrumented branch and — optionally — the results of the loggable
    system calls.  Produces the {!Report.t} the user's machine would send to
    the developer when the run crashes, and the overhead figures (CPU cost,
    storage) the paper's Figures 2, 4 and 5 report. *)

type result = {
  outcome : Interp.Crash.outcome;
  cost : Interp.Cost.t;
  output : string;
  steps : int;
  branch_log : Branch_log.log;
      (** raw view of the logged bits (decoded once from the encoder when
          the run encoded online) *)
  encoded_log : Codec.encoded option;
      (** with [~encode:true] (the default): the online-encoded stream the
          probes actually wrote — the artifact a v4 report ships *)
  syscall_log : Syscall_log.log option;
  schedule_log : Schedule_log.log option;
      (** recorded thread-scheduling decisions; empty when single-threaded *)
  world : Osmodel.World.t;  (** final world (server responses, access log) *)
  n_elided : int;
      (** instrumented branch executions whose bit was suppressed *)
  shadow_log : Branch_log.log option;
      (** with [~shadow:true]: the full log a suppression-free run would
          have written, rebuilt from reconstruction rules at elided sites *)
  shadow_mismatches : int;
      (** elided sites whose reconstructed bit differed from the outcome
          actually taken — any non-zero count is a suppression soundness
          bug *)
}

(** Execute [sc] with instrumentation [plan].  [log_syscalls] defaults to
    true, the paper's recommended configuration.  When the plan carries a
    suppression table, elided probes skip both the log write and the
    logging charge (the probe compiles to nothing); [shadow] additionally
    rebuilds the suppression-free log from the reconstruction rules so
    callers can check bit-for-bit parity.  With [encode] (the default)
    probes write through the zero-allocation streaming {!Codec} and the
    result carries the encoded stream in [encoded_log]; [~encode:false]
    is the A/B baseline writing the raw packed log. *)
let run ?(log_syscalls = true) ?(shadow = false) ?(encode = true)
    ?(telemetry = Telemetry.disabled) ~(plan : Plan.t)
    (sc : Concolic.Scenario.t) : result =
  Telemetry.Span.with_ telemetry ~name:"field_run"
    ~attrs:
      [
        ("scenario", Telemetry.Event.Str sc.name);
        ("log_syscalls", Telemetry.Event.Bool log_syscalls);
      ]
  @@ fun sp ->
  let world, handle = Osmodel.World.kernel sc.world in
  (* exactly one log writer runs on the hot path *)
  let encoder = if encode then Some (Codec.Encoder.create ()) else None in
  let writer = if encode then None else Some (Branch_log.Writer.create ()) in
  let log_bit =
    match encoder, writer with
    | Some e, _ -> fun taken -> Codec.Encoder.add_bit e taken
    | None, Some w -> fun taken -> Branch_log.Writer.add_bit w taken
    | None, None -> assert false
  in
  let sys_log = if log_syscalls then Some (Syscall_log.create ()) else None in
  let cost_cell : Interp.Cost.t option ref = ref None in
  let recon =
    match plan.Plan.suppression with
    | Some sup -> Some (Staticanalysis.Suppression.Recon.create sup.rules)
    | None -> None
  in
  let shadow_writer = if shadow then Some (Branch_log.Writer.create ()) else None in
  let n_elided = ref 0 and shadow_mismatches = ref 0 in
  let hooks =
    {
      Interp.Eval.no_hooks with
      Interp.Eval.on_branch =
        (fun ~bid ~iter ~taken ~cond ->
          ignore cond;
          (* the reconstruction machine sees every branch (loop headers
             drive the invariance resets even when uninstrumented) *)
          let action =
            match recon with
            | None -> Staticanalysis.Suppression.Recon.Consume
            | Some rc ->
                Staticanalysis.Suppression.Recon.on_branch rc ~bid ~iter
          in
          if Plan.is_instrumented plan bid then begin
            let shadow_bit b =
              match shadow_writer with
              | Some w -> Branch_log.Writer.add_bit w b
              | None -> ()
            in
            match action with
            | Staticanalysis.Suppression.Recon.Consume ->
                log_bit taken;
                (match recon with
                | Some rc ->
                    Staticanalysis.Suppression.Recon.record rc ~bid taken
                | None -> ());
                shadow_bit taken;
                (match !cost_cell with
                | Some c -> Interp.Cost.charge_logged_branch c
                | None -> ())
            | Staticanalysis.Suppression.Recon.Elide pred ->
                incr n_elided;
                if pred <> taken then incr shadow_mismatches;
                shadow_bit pred
            | Staticanalysis.Suppression.Recon.Elide_unknown ->
                (* cannot happen on the field side (the referenced bit was
                   necessarily recorded earlier in this run); counted as a
                   mismatch so the parity oracle flags it *)
                incr n_elided;
                incr shadow_mismatches;
                shadow_bit taken
          end);
    }
  in
  let kernel req =
    let res = handle req in
    (match sys_log with
    | Some log when Osmodel.Sysreq.loggable req ->
        Syscall_log.record log ~kind:(Osmodel.Sysreq.req_name req)
          ~value:(Osmodel.Sysreq.res_int res);
        (match !cost_cell with
        | Some c -> Interp.Cost.charge_logged_syscall c
        | None -> ())
    | _ -> ());
    Interp.Kernel.concrete_reply res
  in
  (* the field scheduler picks pseudo-randomly (real kernels do not
     round-robin) and records every decision for replay *)
  let sched_log = Schedule_log.create () in
  let sched_rng = Osmodel.Rng.create (sc.world.seed + 7919) in
  let cfg =
    {
      Interp.Eval.inputs = Interp.Inputs.of_strings sc.args;
      kernel;
      hooks;
      max_steps = sc.max_steps;
      scheduler = Some (Schedule_log.recording_scheduler ~rng:sched_rng sched_log);
    }
  in
  (* The evaluator creates its own cost record; capture it via a wrapper so
     the logging hooks can charge instrumentation overhead to the same
     account.  We pre-create the state through Eval.run's result instead:
     simplest correct approach is to charge into a side cost record and add
     it afterwards. *)
  let side_cost = Interp.Cost.create () in
  cost_cell := Some side_cost;
  let r = Interp.Eval.run sc.prog cfg in
  let cost = r.cost in
  cost.instr <- cost.instr + side_cost.instr;
  cost.logged_branches <- side_cost.logged_branches;
  cost.logged_syscalls <- side_cost.logged_syscalls;
  let encoded_log = Option.map Codec.finish encoder in
  let branch_log =
    match encoded_log, writer with
    | Some e, _ -> (
        (* one decode at run end keeps the raw view available to every
           consumer; the hot path only ever touched the encoder *)
        match Codec.decode e with
        | Ok l -> l
        | Error m -> failwith ("Field_run: encoder self-check failed: " ^ m))
    | None, Some w -> Branch_log.finish w
    | None, None -> assert false
  in
  let syscall_log = Option.map Syscall_log.finish sys_log in
  let res =
    {
      outcome = r.outcome;
      cost;
      output = r.output;
      steps = r.steps;
      branch_log;
      encoded_log;
      syscall_log;
      schedule_log = Some (Schedule_log.finish sched_log);
      world;
      n_elided = !n_elided;
      shadow_log = Option.map Branch_log.finish shadow_writer;
      shadow_mismatches = !shadow_mismatches;
    }
  in
  if Telemetry.enabled telemetry then begin
    let branch_bytes =
      match encoded_log with
      | Some e -> Codec.size_bytes e
      | None -> Branch_log.size_bytes branch_log
    in
    let log_bytes =
      branch_bytes
      + match syscall_log with Some l -> Syscall_log.size_bytes l | None -> 0
    in
    Telemetry.Span.addi sp "branches_logged" cost.logged_branches;
    Telemetry.Span.addi sp "branches_elided" !n_elided;
    Telemetry.Span.addi sp "syscalls_logged" cost.logged_syscalls;
    Telemetry.Span.addi sp "flushes" branch_log.flushes;
    Telemetry.Span.addi sp "log_bytes" log_bytes;
    Telemetry.Span.addi sp "steps" r.steps;
    Telemetry.Metrics.incr_named telemetry "field.runs";
    Telemetry.Metrics.incr_named telemetry "field.branches_logged"
      ~by:cost.logged_branches;
    Telemetry.Metrics.incr_named telemetry "field.syscalls_logged"
      ~by:cost.logged_syscalls;
    Telemetry.Metrics.incr_named telemetry "field.flushes"
      ~by:branch_log.flushes;
    Telemetry.Metrics.incr_named telemetry "field.log_bytes" ~by:log_bytes
  end;
  res

(** Total shipped-log storage in bytes (the encoded stream when the run
    encoded online). *)
let storage_bytes (r : result) =
  (match r.encoded_log with
  | Some e -> Codec.size_bytes e
  | None -> Branch_log.size_bytes r.branch_log)
  + match r.syscall_log with Some l -> Syscall_log.size_bytes l | None -> 0
