(** Streaming branch-log codec: the wire-v4 native payload.

    The paper only ever compresses branch logs *after* the run (§5.3, gzip,
    10-20x) because naive online compression would blow the 17-instruction
    probe budget.  This codec closes that gap: bits are encoded as they are
    appended by the field run, with fixed preallocated state and no
    allocation on the per-probe path, and the output is flushable at any
    point so a torn log still decodes to a longest-complete-prefix.

    {2 Token grammar}

    The encoded stream is a sequence of byte-aligned, self-delimiting
    tokens.  The first (header) byte's top bit selects the kind:

    - [LITERAL] (bit7 = 1): bit6 must be 0 (reserved — a set bit6 makes the
      stream malformed, which the corruption negatives exploit); bits5..0
      hold the bit count n in 1..63 (0 is malformed).  ceil(n/8) payload
      bytes follow, bits packed LSB-first exactly like {!Branch_log}
      (padding bits in the last byte are ignored on decode).
    - [MATCH] (bit7 = 0): bits6..4 hold the period minus one (P in 1..8),
      bit3 is a continuation flag, bits2..0 the low three bits of the
      repeat length minus one (L >= 1).  While the continuation flag is
      set, further bytes follow: bit7 = continue, bits6..0 = the next seven
      bits of L-1, little-endian.  The token means "the next L bits each
      equal the bit P positions earlier in the decoded stream",
      sequentially (so a P=1 match is a plain run; P>1 captures the
      periodic patterns loop bodies emit).  A match token is malformed
      unless at least P bits precede it.

    A run of identical bits is a P=1 match: 4096 bits cost 3 bytes.  A
    loop body repeating the same 2-8 branch directions per iteration is a
    P=2..8 match and collapses just as flat — the case where offline RLE
    degenerates to one token per bit.  Worst case (adversarial bits) is
    the literal path at 72/63 ~ 1.14x of raw.

    {2 Torn-decode semantics}

    Tokens are self-delimiting and validated prefix-closed: any prefix of
    the byte stream cut at a token boundary decodes to exactly the bits
    those tokens carry, in order.  {!cut_prefix} finds that boundary for a
    torn payload — and when the tear lands inside a trailing LITERAL
    token it additionally keeps the payload bytes that arrived, since
    those are the decoded bits themselves; {!count_bits} is the strict
    validator (the whole stream
    must parse and the bit count must match the claimed count).

    {2 Zero-allocation argument}

    {!Encoder.add_bit} mutates only integer fields and a preallocated
    8-slot run table; bytes are appended into a geometrically grown
    [Bytes.t], so the amortized per-probe cost is a handful of integer
    ops and no GC allocation (the rare growth doubles a single flat
    buffer, the same amortization {!Buffer} relies on). *)

let default_buffer_bytes = Branch_log.default_buffer_bytes

(* A match must cover at least this many bits before it beats the literal
   path: a MATCH token for L in [9, 1024] costs 2 bytes where the literal
   path costs ~L*72/63 bits, so the break-even is near 14; 16 is
   conservative and keeps random streams from thrashing into matches. *)
let match_min = 16

(* Longest literal a single token carries; also lets the pending literal
   accumulator live in one 63-bit OCaml int. *)
let lit_max = 63

(** A finished encoded log: the artifact shipped in a v4 bug report.
    [flushes] counts 4 KB fills of the *encoded* stream (the storage the
    user site actually writes), mirroring {!Branch_log}'s accounting. *)
type encoded = { data : string; nbits : int; flushes : int }

let size_bytes (e : encoded) = String.length e.data

module Encoder = struct
  type t = {
    mutable out : Bytes.t;
    mutable len : int;
    mutable lit : int;  (** pending literal bits, LSB-first *)
    mutable lit_n : int;
    mutable m_active : bool;
    mutable m_period : int;  (** 1..8 while active *)
    mutable m_len : int;
    mrun : int array;
        (** [mrun.(p-1)]: length of the trailing stream suffix whose every
            bit equals the bit p positions before it *)
    mutable hist : int;  (** last 8 stream bits, bit0 = most recent *)
    mutable nbits : int;
    mutable flushes : int;
    mutable flushed_len : int;
    buffer_bytes : int;
  }

  let create ?(buffer_bytes = default_buffer_bytes) () =
    {
      out = Bytes.create 256;
      len = 0;
      lit = 0;
      lit_n = 0;
      m_active = false;
      m_period = 1;
      m_len = 0;
      mrun = Array.make 8 0;
      hist = 0;
      nbits = 0;
      flushes = 0;
      flushed_len = 0;
      buffer_bytes;
    }

  let emit_byte t c =
    if t.len = Bytes.length t.out then begin
      let bigger = Bytes.create (2 * Bytes.length t.out) in
      Bytes.blit t.out 0 bigger 0 t.len;
      t.out <- bigger
    end;
    Bytes.unsafe_set t.out t.len (Char.unsafe_chr c);
    t.len <- t.len + 1;
    if t.len - t.flushed_len >= t.buffer_bytes then begin
      t.flushes <- t.flushes + 1;
      t.flushed_len <- t.len
    end

  let emit_literal t =
    if t.lit_n > 0 then begin
      emit_byte t (0x80 lor t.lit_n);
      for i = 0 to ((t.lit_n + 7) / 8) - 1 do
        emit_byte t ((t.lit lsr (8 * i)) land 0xff)
      done;
      t.lit <- 0;
      t.lit_n <- 0
    end

  let emit_match t =
    if t.m_active then begin
      if t.m_len > 0 then begin
        let r = t.m_len - 1 in
        let rest = r lsr 3 in
        emit_byte t
          (((t.m_period - 1) lsl 4)
          lor (if rest > 0 then 0x08 else 0)
          lor (r land 0x7));
        let rest = ref rest in
        while !rest > 0 do
          let chunk = !rest land 0x7f in
          rest := !rest lsr 7;
          emit_byte t ((if !rest > 0 then 0x80 else 0) lor chunk)
        done
      end;
      t.m_active <- false;
      t.m_len <- 0
    end

  (* invariant: while a match is active the literal accumulator is empty
     (it was emitted when the match opened), so stream order is preserved *)
  let push_lit t bit =
    if bit <> 0 then t.lit <- t.lit lor (1 lsl t.lit_n);
    t.lit_n <- t.lit_n + 1;
    if t.lit_n = lit_max then emit_literal t

  (* The last [mrun.(p-1)] bits all match period p.  When one of those
     runs is long enough, retroactively convert the tail of the pending
     literal into the opening of a match token (the tail bits are exactly
     the most recent stream bits, so they are the matching ones). *)
  let maybe_open_match t =
    let best = ref 0 and best_p = ref 1 in
    for p = 8 downto 1 do
      if t.mrun.(p - 1) >= !best then begin
        best := t.mrun.(p - 1);
        best_p := p
      end
    done;
    if !best >= match_min then begin
      let m = min !best t.lit_n in
      t.lit <- t.lit land ((1 lsl (t.lit_n - m)) - 1);
      t.lit_n <- t.lit_n - m;
      emit_literal t;
      t.m_active <- true;
      t.m_period <- !best_p;
      t.m_len <- m
    end

  let add_bit t (b : bool) =
    let bit = if b then 1 else 0 in
    for p = 1 to 8 do
      if t.nbits >= p && (t.hist lsr (p - 1)) land 1 = bit then
        t.mrun.(p - 1) <- t.mrun.(p - 1) + 1
      else t.mrun.(p - 1) <- 0
    done;
    if t.m_active then begin
      if (t.hist lsr (t.m_period - 1)) land 1 = bit then
        t.m_len <- t.m_len + 1
      else begin
        emit_match t;
        push_lit t bit;
        maybe_open_match t
      end
    end
    else begin
      push_lit t bit;
      maybe_open_match t
    end;
    t.hist <- ((t.hist lsl 1) lor bit) land 0xff;
    t.nbits <- t.nbits + 1

  let nbits t = t.nbits

  (* Token-align: after a flush the encoded bytes so far decode to exactly
     the bits appended so far (the longest-complete-prefix guarantee a
     torn log needs).  Encoding continues afterwards; a split run costs
     one extra token, nothing more. *)
  let flush t =
    emit_match t;
    emit_literal t
end

let finish (t : Encoder.t) : encoded =
  Encoder.flush t;
  let flushes =
    t.Encoder.flushes + if t.Encoder.len > t.Encoder.flushed_len then 1 else 0
  in
  {
    data = Bytes.sub_string t.Encoder.out 0 t.Encoder.len;
    nbits = t.Encoder.nbits;
    flushes;
  }

(* ------------------------------------------------------------------ *)
(* Token walk shared by the strict validator and the salvage cutter. *)

(* Scan from the start; returns [(bits, pos, status)] where [pos] is the
   end of the last complete token, [bits] the count they decode to, and
   [status] whether the whole string was consumed ([`Complete]), stopped
   at an incomplete trailing token ([`Truncated]) or at an invalid one
   ([`Malformed]). *)
let scan (data : string) =
  let n = String.length data in
  let rec go pos bits =
    if pos >= n then (bits, pos, `Complete)
    else
      let c = Char.code (String.unsafe_get data pos) in
      if c land 0x80 <> 0 then
        if c land 0x40 <> 0 then
          (bits, pos, `Malformed "reserved literal header bit set")
        else
          let cnt = c land 0x3f in
          if cnt = 0 then (bits, pos, `Malformed "empty literal token")
          else
            let nbytes = (cnt + 7) / 8 in
            if pos + 1 + nbytes > n then (bits, pos, `Truncated)
            else go (pos + 1 + nbytes) (bits + cnt)
      else
        let period = ((c lsr 4) land 0x7) + 1 in
        if bits < period then
          (bits, pos, `Malformed "match token before enough history")
        else
          let rec cont p r shift =
            if shift > 52 then `Malformed "match length overflow"
            else if p >= n then `Truncated
            else
              let b = Char.code (String.unsafe_get data p) in
              let r = r lor ((b land 0x7f) lsl shift) in
              if b land 0x80 <> 0 then cont (p + 1) r (shift + 7)
              else `Done (p + 1, r)
          in
          let res =
            if c land 0x08 = 0 then `Done (pos + 1, c land 0x7)
            else cont (pos + 1) (c land 0x7) 3
          in
          (match res with
          | `Done (p, r) -> go p (bits + r + 1)
          | `Truncated -> (bits, pos, `Truncated)
          | `Malformed m -> (bits, pos, `Malformed m))
  in
  go 0 0

let count_bits (data : string) : (int, string) result =
  match scan data with
  | bits, _, `Complete -> Ok bits
  | _, _, `Truncated -> Error "truncated token stream"
  | _, _, `Malformed m -> Error m

let cut_prefix (data : string) : string * int =
  let bits, pos, status = scan data in
  let n = String.length data in
  match status with
  | `Truncated
    when Char.code data.[pos] land 0xc0 = 0x80 && n - pos - 1 >= 1 ->
      (* Torn trailing LITERAL: the payload bytes that did arrive are the
         decoded bits themselves (LSB-first), so rewrite the token into a
         complete shorter literal instead of dropping it — for a small log
         that encodes as one literal token this is the difference between
         salvaging most of the log and salvaging nothing.  A torn MATCH
         stays dropped: its missing high length chunks cannot be
         reconstructed conservatively without guessing. *)
      let cnt = Char.code data.[pos] land 0x3f in
      let have = n - pos - 1 in
      (* truncated implies have < ceil(cnt/8), hence 8*have < cnt <= 63 *)
      let m = min cnt (8 * have) in
      let b = Bytes.of_string (String.sub data 0 n) in
      Bytes.set b pos (Char.chr (0x80 lor m));
      (Bytes.unsafe_to_string b, bits + m)
  | _ -> (String.sub data 0 pos, bits)

(* ------------------------------------------------------------------ *)
(* Streaming reader *)

module Reader = struct
  type t = {
    data : string;
    nbits : int;
    mutable bytepos : int;
    mutable delivered : int;
    mutable hist : int;  (** last 8 decoded bits, bit0 = most recent *)
    mutable run_rem : int;
    mutable run_period : int;
    mutable lit_rem : int;
    mutable lit_base : int;
    mutable lit_idx : int;
    mutable lit_bytes : int;
  }

  let create (e : encoded) =
    {
      data = e.data;
      nbits = e.nbits;
      bytepos = 0;
      delivered = 0;
      hist = 0;
      run_rem = 0;
      run_period = 1;
      lit_rem = 0;
      lit_base = 0;
      lit_idx = 0;
      lit_bytes = 0;
    }

  let deliver t bit =
    t.hist <- ((t.hist lsl 1) lor bit) land 0xff;
    t.delivered <- t.delivered + 1;
    Some (bit = 1)

  (* Next bit, or [None] when [nbits] bits were delivered — or on a
     malformed stream, which cannot happen on a payload the wire reader
     validated with {!count_bits}. *)
  let rec next t =
    if t.delivered >= t.nbits then None
    else if t.run_rem > 0 then begin
      t.run_rem <- t.run_rem - 1;
      deliver t ((t.hist lsr (t.run_period - 1)) land 1)
    end
    else if t.lit_rem > 0 then begin
      let b =
        (Char.code t.data.[t.lit_base + (t.lit_idx / 8)] lsr (t.lit_idx mod 8))
        land 1
      in
      t.lit_idx <- t.lit_idx + 1;
      t.lit_rem <- t.lit_rem - 1;
      if t.lit_rem = 0 then t.bytepos <- t.lit_base + t.lit_bytes;
      deliver t b
    end
    else if t.bytepos >= String.length t.data then None
    else begin
      let c = Char.code t.data.[t.bytepos] in
      if c land 0x80 <> 0 then
        if c land 0x40 <> 0 then None
        else
          let cnt = c land 0x3f in
          let nbytes = (cnt + 7) / 8 in
          if cnt = 0 || t.bytepos + 1 + nbytes > String.length t.data then None
          else begin
            t.lit_rem <- cnt;
            t.lit_base <- t.bytepos + 1;
            t.lit_idx <- 0;
            t.lit_bytes <- nbytes;
            next t
          end
      else begin
        let period = ((c lsr 4) land 0x7) + 1 in
        if t.delivered < period then None
        else begin
          let ok = ref true in
          let pos = ref (t.bytepos + 1) in
          let r = ref (c land 0x7) in
          let shift = ref 3 in
          let more = ref (c land 0x08 <> 0) in
          while !more && !ok do
            if !pos >= String.length t.data || !shift > 52 then ok := false
            else begin
              let b = Char.code t.data.[!pos] in
              incr pos;
              r := !r lor ((b land 0x7f) lsl !shift);
              shift := !shift + 7;
              more := b land 0x80 <> 0
            end
          done;
          if not !ok then None
          else begin
            t.run_period <- period;
            t.run_rem <- !r + 1;
            t.bytepos <- !pos;
            next t
          end
        end
      end
    end

  let pos t = t.delivered
end

(* ------------------------------------------------------------------ *)
(* Whole-log conversions *)

(** Decode to the raw packed log.  Strict and fail-closed: the whole token
    stream must parse and decode to exactly [e.nbits] bits.  [flushes] is
    carried over verbatim (it describes the field run's encoded-stream
    writes, the only flushes that happened). *)
let decode (e : encoded) : (Branch_log.log, string) result =
  match count_bits e.data with
  | Error m -> Error m
  | Ok total when total <> e.nbits ->
      Error
        (Printf.sprintf "encoded payload decodes to %d bit(s) but claims %d"
           total e.nbits)
  | Ok _ ->
      let out = Bytes.make ((e.nbits + 7) / 8) '\000' in
      let r = Reader.create e in
      let i = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        match Reader.next r with
        | Some b ->
            if b then begin
              let j = !i / 8 in
              Bytes.unsafe_set out j
                (Char.unsafe_chr
                   (Char.code (Bytes.unsafe_get out j) lor (1 lsl (!i mod 8))))
            end;
            incr i
        | None -> continue_ := false
      done;
      Ok
        { Branch_log.bytes = Bytes.unsafe_to_string out;
          nbits = e.nbits;
          flushes = e.flushes }

(** Re-encode a finished raw log (offline path: benches, the salvage
    round-trip tests).  Produces exactly the bytes the online encoder
    would have for the same bit sequence with no intermediate flushes. *)
let encode ?buffer_bytes (log : Branch_log.log) : encoded =
  let e = Encoder.create ?buffer_bytes () in
  for i = 0 to log.Branch_log.nbits - 1 do
    Encoder.add_bit e (Branch_log.get_bit log i)
  done;
  finish e
