(** The bug report shipped from the user site to the developer.

    Deliberately excludes program input: it carries only the branch
    direction bits, optional system-call results, the crash site and the
    input *shape* (argument count and buffer capacities, stream counts) —
    never content. *)

(** The branch-direction bits in whichever form the field run shipped
    them: the raw packed log (wire v1-v3, or a run with encoding off) or
    the online-encoded stream (wire v4's native payload).  Consumers that
    only need the bits should go through {!reader}/{!read_next} and stay
    representation-agnostic. *)
type payload = Raw of Branch_log.log | Encoded of Codec.encoded

type t = {
  program : string;  (** program name, identifies the retained plan *)
  method_used : Methods.t;
  cohort : string option;
      (** adaptive-deployment cohort of the plan that instrumented this
          run; [None] for fleet-wide (non-adaptive) plans *)
  branch_log : payload;
  syscall_log : Syscall_log.log option;
  schedule_log : Schedule_log.log option;
      (** thread-scheduling decisions (§6 multithreading); [None] or empty
          for single-threaded programs *)
  crash : Interp.Crash.t;
  shape : Concolic.Scenario.shape;
  suppression : (int * Staticanalysis.Suppression.rule) list;
      (** probe-elision table the field run applied ([[]] when none);
          replay must reconstruct the elided bits with exactly these
          rules, and must verify them before trusting the log *)
}

(** Branch bits carried by the payload. *)
val nbits : t -> int

(** Log-buffer flushes the field run performed (over the encoded stream
    for an encoded payload). *)
val flushes : t -> int

(** Shipped size of the branch payload in bytes. *)
val payload_bytes : t -> int

(** The exact byte string the wire ships for the branch payload. *)
val payload_data : t -> string

(** The raw packed log, decoding an encoded payload.  Total on any payload
    that came through the wire reader; raises [Invalid_argument] on a
    hand-built invalid encoding. *)
val raw_log : t -> Branch_log.log

(** Streaming bit reader over either payload. *)
type reader

val reader : t -> reader

(** Next bit, or [None] when the log is exhausted. *)
val read_next : reader -> bool option

(** Bits delivered so far. *)
val read_pos : reader -> int

(** Assemble a report from a crashed field run; [None] if the run did not
    crash.  Ships the encoded stream when the run encoded online, the raw
    log otherwise. *)
val of_field_run :
  sc:Concolic.Scenario.t -> plan:Plan.t -> Field_run.result -> t option

val transfer_bytes : t -> int
val describe : t -> string
