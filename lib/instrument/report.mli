(** The bug report shipped from the user site to the developer.

    Deliberately excludes program input: it carries only the branch
    direction bits, optional system-call results, the crash site and the
    input *shape* (argument count and buffer capacities, stream counts) —
    never content. *)

type t = {
  program : string;  (** program name, identifies the retained plan *)
  method_used : Methods.t;
  branch_log : Branch_log.log;
  syscall_log : Syscall_log.log option;
  schedule_log : Schedule_log.log option;
      (** thread-scheduling decisions (§6 multithreading); [None] or empty
          for single-threaded programs *)
  crash : Interp.Crash.t;
  shape : Concolic.Scenario.shape;
  suppression : (int * Staticanalysis.Suppression.rule) list;
      (** probe-elision table the field run applied ([[]] when none);
          replay must reconstruct the elided bits with exactly these
          rules, and must verify them before trusting the log *)
}

(** Assemble a report from a crashed field run; [None] if the run did not
    crash. *)
val of_field_run :
  sc:Concolic.Scenario.t -> plan:Plan.t -> Field_run.result -> t option

val transfer_bytes : t -> int
val describe : t -> string
