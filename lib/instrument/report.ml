(** The bug report shipped from the user site to the developer.

    Deliberately excludes program input: it carries only the branch
    direction bits, optional system-call results, the crash site (the
    WER-style "where it died" datum) and the input *shape* (argument count
    and buffer capacities, stream counts) — never content. *)

(** The branch-direction bits in whichever form the field run shipped
    them: the raw packed log (wire v1-v3, or a run with encoding off) or
    the online-encoded stream (wire v4's native payload).  Consumers that
    only need the bits should go through {!reader}/{!read_next} and stay
    representation-agnostic. *)
type payload = Raw of Branch_log.log | Encoded of Codec.encoded

type t = {
  program : string;  (** program name, identifies the retained plan *)
  method_used : Methods.t;
  cohort : string option;
      (** adaptive-deployment cohort of the plan that instrumented this
          run; [None] for fleet-wide (non-adaptive) plans *)
  branch_log : payload;
  syscall_log : Syscall_log.log option;
  schedule_log : Schedule_log.log option;
      (** thread-scheduling decisions (§6 multithreading); [None] or empty
          for single-threaded programs *)
  crash : Interp.Crash.t;
  shape : Concolic.Scenario.shape;
  suppression : (int * Staticanalysis.Suppression.rule) list;
      (** probe-elision table the field run applied ([[]] when none);
          replay must reconstruct the elided bits with exactly these
          rules, and must verify them before trusting the log *)
}

let nbits t =
  match t.branch_log with
  | Raw l -> l.Branch_log.nbits
  | Encoded e -> e.Codec.nbits

let flushes t =
  match t.branch_log with
  | Raw l -> l.Branch_log.flushes
  | Encoded e -> e.Codec.flushes

(** Shipped size of the branch payload in bytes. *)
let payload_bytes t =
  match t.branch_log with
  | Raw l -> Branch_log.size_bytes l
  | Encoded e -> Codec.size_bytes e

(** The exact byte string the wire ships for the branch payload. *)
let payload_data t =
  match t.branch_log with
  | Raw l -> l.Branch_log.bytes
  | Encoded e -> e.Codec.data

(** The raw packed log, decoding an encoded payload.  Total on any payload
    that came through the wire reader (which validates the token stream);
    raises [Invalid_argument] on a hand-built invalid encoding. *)
let raw_log t =
  match t.branch_log with
  | Raw l -> l
  | Encoded e -> (
      match Codec.decode e with
      | Ok l -> l
      | Error m -> invalid_arg ("Report.raw_log: " ^ m))

(** Streaming bit reader over either payload: replay and fingerprinting
    consume bits in order without materializing the decoded log. *)
type reader = Raw_reader of Branch_log.Reader.t | Enc_reader of Codec.Reader.t

let reader t =
  match t.branch_log with
  | Raw l -> Raw_reader (Branch_log.Reader.create l)
  | Encoded e -> Enc_reader (Codec.Reader.create e)

let read_next = function
  | Raw_reader r -> Branch_log.Reader.next r
  | Enc_reader r -> Codec.Reader.next r

let read_pos = function
  | Raw_reader r -> Branch_log.Reader.pos r
  | Enc_reader r -> Codec.Reader.pos r

(** Assemble a report from a crashed field run.  Returns [None] if the run
    did not crash (nothing to report).  Ships the encoded stream when the
    run encoded online, the raw log otherwise. *)
let of_field_run ~(sc : Concolic.Scenario.t) ~(plan : Plan.t)
    (r : Field_run.result) : t option =
  match r.outcome with
  | Interp.Crash.Crash crash ->
      Some
        {
          program = sc.name;
          method_used = plan.meth;
          cohort = plan.Plan.cohort;
          branch_log =
            (match r.encoded_log with
            | Some e -> Encoded e
            | None -> Raw r.branch_log);
          syscall_log = r.syscall_log;
          schedule_log = r.schedule_log;
          crash;
          shape = Concolic.Scenario.shape_of sc;
          suppression = Plan.suppression_table plan;
        }
  | Interp.Crash.Exit _ | Interp.Crash.Budget_exhausted | Interp.Crash.Aborted _ ->
      None

let transfer_bytes t =
  payload_bytes t
  + (match t.syscall_log with Some l -> Syscall_log.size_bytes l | None -> 0)
  + match t.schedule_log with Some l -> Schedule_log.size_bytes l | None -> 0

let describe t =
  let sched =
    match t.schedule_log with
    | Some l when Schedule_log.length l > 0 ->
        Printf.sprintf ", %d schedule entries" (Schedule_log.length l)
    | _ -> ""
  in
  Printf.sprintf "%s: %s [%s; %d branch bits, %d syscall entries%s]" t.program
    (Interp.Crash.to_string t.crash)
    (Methods.to_string t.method_used)
    (nbits t)
    (match t.syscall_log with Some l -> Syscall_log.length l | None -> 0)
    sched
