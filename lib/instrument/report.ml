(** The bug report shipped from the user site to the developer.

    Deliberately excludes program input: it carries only the branch
    direction bits, optional system-call results, the crash site (the
    WER-style "where it died" datum) and the input *shape* (argument count
    and buffer capacities, stream counts) — never content. *)

type t = {
  program : string;  (** program name, identifies the retained plan *)
  method_used : Methods.t;
  branch_log : Branch_log.log;
  syscall_log : Syscall_log.log option;
  schedule_log : Schedule_log.log option;
      (** thread-scheduling decisions (§6 multithreading); [None] or empty
          for single-threaded programs *)
  crash : Interp.Crash.t;
  shape : Concolic.Scenario.shape;
  suppression : (int * Staticanalysis.Suppression.rule) list;
      (** probe-elision table the field run applied ([[]] when none);
          replay must reconstruct the elided bits with exactly these
          rules, and must verify them before trusting the log *)
}

(** Assemble a report from a crashed field run.  Returns [None] if the run
    did not crash (nothing to report). *)
let of_field_run ~(sc : Concolic.Scenario.t) ~(plan : Plan.t)
    (r : Field_run.result) : t option =
  match r.outcome with
  | Interp.Crash.Crash crash ->
      Some
        {
          program = sc.name;
          method_used = plan.meth;
          branch_log = r.branch_log;
          syscall_log = r.syscall_log;
          schedule_log = r.schedule_log;
          crash;
          shape = Concolic.Scenario.shape_of sc;
          suppression = Plan.suppression_table plan;
        }
  | Interp.Crash.Exit _ | Interp.Crash.Budget_exhausted | Interp.Crash.Aborted _ ->
      None

let transfer_bytes t =
  Branch_log.size_bytes t.branch_log
  + (match t.syscall_log with Some l -> Syscall_log.size_bytes l | None -> 0)
  + match t.schedule_log with Some l -> Schedule_log.size_bytes l | None -> 0

let describe t =
  let sched =
    match t.schedule_log with
    | Some l when Schedule_log.length l > 0 ->
        Printf.sprintf ", %d schedule entries" (Schedule_log.length l)
    | _ -> ""
  in
  Printf.sprintf "%s: %s [%s; %d branch bits, %d syscall entries%s]" t.program
    (Interp.Crash.to_string t.crash)
    (Methods.to_string t.method_used)
    t.branch_log.nbits
    (match t.syscall_log with Some l -> Syscall_log.length l | None -> 0)
    sched
