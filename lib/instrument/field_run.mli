(** The user-site (field) execution of an instrumented program.

    Runs the scenario concretely, recording one bit per executed
    instrumented branch and — optionally — the results of the loggable
    system calls.  Produces the overhead figures of Figures 2, 4 and 5 and
    the logs a {!Report.t} ships. *)

type result = {
  outcome : Interp.Crash.outcome;
  cost : Interp.Cost.t;
  output : string;
  steps : int;
  branch_log : Branch_log.log;
      (** raw view of the logged bits (decoded once from the encoder when
          the run encoded online) *)
  encoded_log : Codec.encoded option;
      (** with [~encode:true] (the default): the online-encoded stream the
          probes actually wrote — the artifact a v4 report ships *)
  syscall_log : Syscall_log.log option;
  schedule_log : Schedule_log.log option;
      (** recorded thread-scheduling decisions; empty when single-threaded *)
  world : Osmodel.World.t;  (** final world (server responses, access log) *)
  n_elided : int;
      (** instrumented branch executions whose bit was suppressed *)
  shadow_log : Branch_log.log option;
      (** with [~shadow:true]: the full log a suppression-free run would
          have written, rebuilt from reconstruction rules at elided sites *)
  shadow_mismatches : int;
      (** elided sites whose reconstructed bit differed from the outcome
          actually taken — any non-zero count is a suppression soundness
          bug *)
}

(** Execute [sc] with instrumentation [plan].  [log_syscalls] defaults to
    true, the paper's recommended configuration.  When the plan carries a
    suppression table, elided probes skip both the log write and the
    logging charge; [shadow] additionally rebuilds the suppression-free
    log from the reconstruction rules for parity checks.  With [encode]
    (the default) probes write through the zero-allocation streaming
    {!Codec} and the result carries the encoded stream in [encoded_log];
    [~encode:false] is the A/B baseline writing the raw packed log.
    [telemetry] wraps the run in a [field_run] span (branches/syscalls
    logged, buffer flushes, log bytes as end attributes) and accumulates
    the [field.*] counters. *)
val run :
  ?log_syscalls:bool ->
  ?shadow:bool ->
  ?encode:bool ->
  ?telemetry:Telemetry.t ->
  plan:Plan.t ->
  Concolic.Scenario.t ->
  result

(** Total shipped-log storage in bytes. *)
val storage_bytes : result -> int
