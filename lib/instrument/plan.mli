(** Instrumentation plans: which branch locations get a logging probe.

    The developer computes the plan before shipping and retains it — replay
    needs the exact instrumented set to know which branches consume a bit
    from the log (§3.1). *)

type t = {
  meth : Methods.t;
  instrumented : bool array;  (** indexed by branch id *)
  n_instrumented : int;
  suppression : Staticanalysis.Suppression.t option;
      (** probe-elision refinement; [None] logs every instrumented branch *)
  cohort : string option;
      (** adaptive-deployment cohort the plan was compiled for; rides the
          report so triage can resolve the exact per-cohort branch set *)
}

val is_instrumented : t -> int -> bool
val instrumented_ids : t -> int list

(** Tag a plan with the deployment cohort it was compiled for. *)
val with_cohort : t -> string -> t

(** Refine a plan with a suppression table.  The caller must have run
    {!Staticanalysis.Suppression.verify} first (the pipeline does); an
    unverified table must never reach the field. *)
val with_suppression : t -> Staticanalysis.Suppression.t -> t

(** The suppression table shipped with this plan ([[]] when none). *)
val suppression_table : t -> (int * Staticanalysis.Suppression.rule) list

(** Build a plan per §2.3:

    - [Dynamic]: exactly the branches dynamic analysis labelled symbolic;
    - [Static]: the branches static analysis labelled symbolic;
    - [Dynamic_static]: where dynamic analysis visited a branch its label
      wins (including overriding static's symbolic with dynamic's
      concrete); unvisited branches fall back to the static label;
    - [All_branches] / [No_instrumentation]: everything / nothing.

    Raises [Invalid_argument] when a required label map is missing or has
    the wrong size. *)
val make :
  nbranches:int ->
  ?dynamic:Minic.Label.map ->
  ?static:Minic.Label.map ->
  Methods.t ->
  t

(** Count instrumented branch locations within an id subset. *)
val count_in : t -> int list -> int
