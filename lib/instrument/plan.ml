(** Instrumentation plans: which branch locations get a logging probe.

    The developer computes the plan before shipping and retains it — replay
    needs the exact instrumented set to know which branches consume a bit
    from the log (§3.1). *)

open Minic

type t = {
  meth : Methods.t;
  instrumented : bool array;  (** indexed by branch id *)
  n_instrumented : int;
  suppression : Staticanalysis.Suppression.t option;
      (** probe-elision refinement; [None] logs every instrumented branch *)
  cohort : string option;
      (** adaptive-deployment cohort the plan was compiled for; rides the
          report so triage can resolve the exact per-cohort branch set *)
}

let is_instrumented t bid =
  bid >= 0 && bid < Array.length t.instrumented && t.instrumented.(bid)

let instrumented_ids t =
  let ids = ref [] in
  Array.iteri (fun i b -> if b then ids := i :: !ids) t.instrumented;
  List.rev !ids

(** Build a plan per §2.3:

    - [Dynamic]: instrument exactly the branches dynamic analysis labelled
      symbolic (concrete and unvisited are skipped);
    - [Static]: instrument the branches static analysis labelled symbolic;
    - [Dynamic_static]: where dynamic analysis visited a branch, its label
      wins (including overriding static's symbolic with dynamic's
      concrete); unvisited branches fall back to the static label;
    - [All_branches] / [No_instrumentation]: everything / nothing.

    [dynamic] may be omitted for [Static] and [All_branches]; [static] may
    be omitted for [Dynamic] and [All_branches]. *)
let make ~(nbranches : int) ?(dynamic : Label.map option)
    ?(static : Label.map option) (meth : Methods.t) : t =
  let get name = function
    | Some m ->
        if Array.length m <> nbranches then
          invalid_arg (Printf.sprintf "Plan.make: %s label map has wrong size" name);
        m
    | None -> invalid_arg (Printf.sprintf "Plan.make: %s labels required" name)
  in
  let instrumented =
    match meth with
    | Methods.No_instrumentation -> Array.make nbranches false
    | Methods.All_branches -> Array.make nbranches true
    | Methods.Dynamic ->
        let dyn = get "dynamic" dynamic in
        Array.map (fun l -> Label.equal l Label.Symbolic) dyn
    | Methods.Static ->
        let sta = get "static" static in
        Array.map (fun l -> Label.equal l Label.Symbolic) sta
    | Methods.Dynamic_static ->
        let dyn = get "dynamic" dynamic in
        let sta = get "static" static in
        Array.init nbranches (fun i ->
            match dyn.(i) with
            | Label.Symbolic -> true
            | Label.Concrete -> false (* overrides static's symbolic *)
            | Label.Unvisited -> Label.equal sta.(i) Label.Symbolic)
  in
  let n_instrumented = Array.fold_left (fun n b -> if b then n + 1 else n) 0 instrumented in
  { meth; instrumented; n_instrumented; suppression = None; cohort = None }

(** Refine a plan with a suppression table.  The caller is responsible for
    having run {!Staticanalysis.Suppression.verify} first (the pipeline
    does); an unverified table must never reach the field. *)
let with_suppression t (sup : Staticanalysis.Suppression.t) =
  { t with suppression = Some sup }

(** Tag a plan with the deployment cohort it was compiled for. *)
let with_cohort t cohort = { t with cohort = Some cohort }

(** The suppression table shipped with this plan ([[]] when none). *)
let suppression_table t =
  match t.suppression with
  | None -> []
  | Some sup -> Staticanalysis.Suppression.to_table sup

(** Count instrumented branch locations restricted to an id subset. *)
let count_in t ids = List.length (List.filter (is_instrumented t) ids)
