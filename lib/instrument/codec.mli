(** Streaming branch-log codec: the wire-v4 native payload.

    Encodes branch bits online, as the field run appends them, into a
    byte-aligned self-delimiting token stream — fixed preallocated state,
    no GC allocation on the per-probe path — and decodes them streamingly
    on the developer side.  Two token kinds: LITERAL (1..63 packed bits)
    and MATCH (period P in 1..8, length L: "the next L bits each equal the
    bit P positions earlier in the decoded stream"), so plain runs (P=1)
    and the periodic patterns loop bodies emit (P=2..8) both collapse to a
    few bytes while adversarial streams cost at most ~1.14x of raw.  Any
    prefix cut at a token boundary decodes to exactly the bits those
    tokens carry, which is what torn-log salvage needs.  See codec.ml for
    the full grammar and DESIGN.md §5j for the design discussion. *)

val default_buffer_bytes : int

(** Minimum trailing match length before the encoder opens a MATCH token
    (below it, bits ride the literal path). *)
val match_min : int

(** A finished encoded log: the artifact a v4 bug report ships.
    [flushes] counts 4 KB fills of the *encoded* stream, mirroring
    {!Branch_log}'s accounting of what the user site actually writes. *)
type encoded = { data : string; nbits : int; flushes : int }

val size_bytes : encoded -> int

module Encoder : sig
  type t

  val create : ?buffer_bytes:int -> unit -> t

  (** Append one branch bit.  Mutates only integer state; amortized O(1),
      no per-call allocation. *)
  val add_bit : t -> bool -> unit

  val nbits : t -> int

  (** Token-align the output: after [flush] the bytes emitted so far
      decode to exactly the bits appended so far.  Encoding continues
      afterwards (a split run costs one extra token). *)
  val flush : t -> unit
end

(** Close the encoder and take the encoded log (one-shot, like
    {!Branch_log.finish}). *)
val finish : Encoder.t -> encoded

(** Strict validation: number of bits the token stream decodes to, or
    [Error] if any token is truncated or invalid. *)
val count_bits : string -> (int, string) result

(** Longest salvageable head of a torn or corrupt stream, with the bit
    count it decodes to.  Usually the prefix ending on the last
    complete-token boundary; when the stream tears inside a trailing
    LITERAL token, the payload bytes that did arrive are recovered too
    (the token is rewritten as a complete shorter literal), so even a
    single-token payload salvages byte-granular.  Total: never an
    error, and the result always satisfies [count_bits]. *)
val cut_prefix : string -> string * int

module Reader : sig
  type t

  val create : encoded -> t

  (** Next bit, or [None] once [nbits] bits were delivered (or on a
      malformed stream — impossible for a payload validated with
      {!count_bits}). *)
  val next : t -> bool option

  (** Bits delivered so far. *)
  val pos : t -> int
end

(** Decode to the raw packed log; fail-closed (the whole stream must
    parse and match [nbits] exactly).  [flushes] carries over verbatim. *)
val decode : encoded -> (Branch_log.log, string) result

(** Re-encode a finished raw log (offline path: benches, tests). *)
val encode : ?buffer_bytes:int -> Branch_log.log -> encoded
