(** Wire format for bug reports.

    Line-oriented text with hex-encoded log bytes; everything in it is
    shippable by design (branch bits, numeric syscall results, schedule
    decisions, crash site, input shape — no input content exists to leak).
    Round-trip identity is property-tested.

    The header line is [magic_prefix ^ version] — the version integer is
    the format's version byte.  Writers emit the current {!version};
    readers accept [1 .. version] and reject anything else with
    {!Unknown_version}, distinct from {!Malformed} so callers can tell
    "upgrade your tool" apart from corruption.  v1 -> v2 added the
    [branch-flushes] field (v1 reports read back with [flushes = 0]). *)

val magic_prefix : string

(** Version written by {!serialize}; the newest {!deserialize_v} reads. *)
val version : int

(** The full current header line, [magic_prefix ^ string_of_int version]. *)
val magic : string

type error =
  | Unknown_version of int
      (** well-formed header naming an unsupported format version *)
  | Malformed of string  (** anything else wrong with the input *)

val error_to_string : error -> string
val serialize : Report.t -> string

(** Tolerates unknown trailing fields within a known version; fails with
    {!Unknown_version} on a version outside [1 .. version] and
    {!Malformed} on anything else (bad magic, bad hex, bit counts
    exceeding the log). *)
val deserialize_v : string -> (Report.t, error) result

(** {!deserialize_v} with the error flattened to a string (the historical
    interface). *)
val deserialize : string -> (Report.t, string) result
