(** Wire format for bug reports.

    Line-oriented text with hex-encoded log bytes; everything in it is
    shippable by design (branch bits, numeric syscall results, schedule
    decisions, crash site, input shape — no input content exists to leak).
    Round-trip identity is property-tested.

    The header line is [magic_prefix ^ version] — the version integer is
    the format's version byte.  Writers emit the current {!version};
    readers accept [1 .. version] and reject anything else with
    {!Unknown_version}, distinct from {!Malformed} so callers can tell
    "upgrade your tool" apart from corruption.  v1 -> v2 added the
    [branch-flushes] field (v1 reports read back with [flushes = 0]);
    v2 -> v3 the fail-closed [suppression] probe-elision table; v3 -> v4
    the online-encoded [branch-enc] payload (a {!Codec} token stream;
    exactly one of [branch-log]/[branch-enc] per report, strict readers
    validate the stream decodes to exactly the claimed bit count, salvage
    cuts it at the last complete token). *)

val magic_prefix : string

(** Version written by {!serialize}; the newest {!deserialize_v} reads. *)
val version : int

(** The full current header line, [magic_prefix ^ string_of_int version]. *)
val magic : string

type error =
  | Unknown_version of int
      (** well-formed header naming an unsupported format version *)
  | Malformed of string  (** anything else wrong with the input *)

val error_to_string : error -> string
val serialize : Report.t -> string

(** Tolerates unknown trailing fields within a known version; fails with
    {!Unknown_version} on a version outside [1 .. version] and
    {!Malformed} on anything else (bad magic, bad hex, bit counts
    exceeding the log). *)
val deserialize_v : string -> (Report.t, error) result

(** {!deserialize_v} with the error flattened to a string (the historical
    interface). *)
val deserialize : string -> (Report.t, string) result

(** {2 Salvage}

    {!deserialize_salvage} is the lenient sibling of the fail-closed
    reader above: where {!deserialize_v} rejects any torn or
    byte-corrupted input outright, salvage recovers the longest valid
    prefix — a well-formed header plus as many complete fields and
    complete hex log bytes as still parse — so a report whose tail was
    lost when the crashing process tore its own 4 KB log buffer can
    still be replayed, degrading into [log_exhausted] forking (§3.1
    case 1) instead of being dropped.  Use {!deserialize_v} when
    corruption should be loud; use salvage in ingestion tiers that would
    rather replay a shorter log than lose the report. *)

(** Diagnosis of what a salvage pass had to give up. *)
type salvage = {
  complete : bool;
      (** nothing was dropped: the strict reader would accept this input *)
  dropped_lines : int;  (** field lines lost to the tear (or unparsable) *)
  lost_log_bits : int;  (** claimed branch bits minus salvaged bits *)
  dropped_syscalls : int;  (** syscall entries lost from the log's tail *)
  dropped_schedule : bool;  (** the schedule log did not survive *)
}

val salvage_to_string : salvage -> string

(** Recover the longest valid prefix of a torn report.  The header must
    be intact and name a supported version ({!Unknown_version} stays
    fail-closed — that is an upgrade problem, not a tear); field lines
    are then consumed in order up to the first damage, with the
    branch-log hex, syscall list and schedule list each cut back to
    their longest complete prefix.  Fails {!Malformed} only when the
    identity fields (program, method, crash site, input shape) did not
    survive.  Never raises. *)
val deserialize_salvage : string -> (Report.t * salvage, error) result
