(** The MiniC evaluator.

    One evaluator serves every pipeline stage; stages differ only in the
    {!hooks}, the {!Kernel.t} and the symbolic shadows on inputs:

    - plain run / field run: concrete inputs, world kernel, logging hooks;
    - dynamic analysis: symbolic inputs, branch-labelling hooks;
    - replay: symbolic inputs, log-driven hooks that may abort the run.

    Using the same semantics for recording and replay is what guarantees
    that a fully-logged execution replays along the identical path. *)

open Minic

type loc_cell = { base : int; off : int; ty : Types.t }

(** Access to a running program's global variables, handed to the
    checkpoint hook so checkpoint/restore machinery can snapshot or rewrite
    global state without reaching into evaluator internals. *)
type global_access = {
  list_globals : unit -> (string * int) list;  (** name and cell count *)
  read_global : string -> int -> Value.t option;
  write_global : string -> int -> Value.t -> bool;
}

type hooks = {
  on_branch : bid:int -> iter:int -> taken:bool -> cond:Value.t -> unit;
      (** called at every executed branch, before entering the arm; may raise
          {!Abort_run}.  [iter] counts condition evaluations of the current
          execution of the enclosing statement: always [0] for [if], and
          [0, 1, 2, ...] across one run of a [while] (so [iter = 0] marks a
          fresh loop entry — the suppression reconstruction keys on it) *)
  on_concretize : Solver.Expr.t -> int -> unit;
      (** a symbolic value was forced to its concrete value (array index,
          pointer arithmetic, syscall argument) *)
  on_checkpoint : global_access -> unit;
      (** the program executed the [checkpoint()] builtin *)
}

let no_hooks =
  {
    on_branch = (fun ~bid:_ ~iter:_ ~taken:_ ~cond:_ -> ());
    on_concretize = (fun _ _ -> ());
    on_checkpoint = (fun _ -> ());
  }

exception Abort_run of string
(** Raised by hooks to abandon the current run (replay divergence). *)

(* Internal control-flow exceptions. *)
exception Return_exc of Value.t
exception Break_exc
exception Continue_exc
exception Crash_exc of Crash.t
exception Exit_exc of int
exception Budget_exc

(* Cooperative threads (§6 multithreading) are built on OCaml effects: each
   MiniC thread is a fiber; [spawn]/[yield]/[join] perform effects handled
   by the scheduler trampoline in {!run}.  System calls are implicit yield
   points (the blocking points of a real kernel). *)
type _ Effect.t +=
  | Yield_eff : unit Effect.t
  | Spawn_eff : (string * Value.t) -> int Effect.t
  | Join_eff : int -> Value.t Effect.t
  | My_tid_eff : int Effect.t

type frame = {
  fn : Ast.func;
  var_blocks : (string, int) Hashtbl.t;
  var_types : (string, Types.t) Hashtbl.t;
  mutable owned : int list;  (** blocks to kill on return *)
}

type state = {
  prog : Program.t;
  mem : Memory.t;
  globals : (string, int) Hashtbl.t;
  global_types : (string, Types.t) Hashtbl.t;
  string_lits : (string, int) Hashtbl.t;
  inputs : Inputs.t;
  kernel : Kernel.t;
  hooks : hooks;
  cost : Cost.t;
  max_steps : int;
  out : Buffer.t;
  mutable frames : frame list;
  mutable depth : int;
  mutable steps : int;
  mutable cur_loc : Loc.t;
  mutable cur_func : string;
}

let max_depth = 2000
let cstring_scan_limit = 65536

let crash st kind =
  raise (Crash_exc { Crash.kind; loc = st.cur_loc; in_func = st.cur_func })

let step st =
  st.steps <- st.steps + 1;
  Cost.charge st.cost Cost.stmt;
  if st.steps > st.max_steps then raise Budget_exc

(* ------------------------------------------------------------------ *)
(* Variable lookup *)

let var_block st x =
  match st.frames with
  | f :: _ when Hashtbl.mem f.var_blocks x -> Hashtbl.find f.var_blocks x
  | _ -> (
      match Hashtbl.find_opt st.globals x with
      | Some b -> b
      | None -> invalid_arg ("unbound variable " ^ x))

let var_type st x =
  match st.frames with
  | f :: _ when Hashtbl.mem f.var_types x -> Hashtbl.find f.var_types x
  | _ -> (
      match Hashtbl.find_opt st.global_types x with
      | Some t -> t
      | None -> invalid_arg ("unbound variable " ^ x))

let rec type_of_lval st (lv : Ast.lval) : Types.t =
  match lv with
  | Var x -> var_type st x
  | Index (b, _) -> (
      match Types.element (type_of_lval st b) with Some t -> t | None -> Types.Tint)
  | Star e -> (
      match Types.element (type_of_expr st e) with Some t -> t | None -> Types.Tint)

and type_of_expr st (e : Ast.expr) : Types.t =
  match e with
  | Cint _ -> Types.Tint
  | Cstr _ -> Types.Tptr Types.Tint
  | Lval lv -> Types.decay (type_of_lval st lv)
  | Addr lv -> Types.Tptr (type_of_lval st lv)
  | Unop _ -> Types.Tint
  | Binop ((Add | Sub), a, b) ->
      let ta = type_of_expr st a in
      if Types.is_pointer ta then ta
      else
        let tb = type_of_expr st b in
        if Types.is_pointer tb then tb else Types.Tint
  | Binop _ -> Types.Tint
  | Ecall _ -> Types.Tint

(* ------------------------------------------------------------------ *)
(* Concretization of symbolic values used in concrete positions *)

let concretize st (v : Value.t) : int =
  match v.conc with
  | Int n ->
      (match v.sym with Some e -> st.hooks.on_concretize e n | None -> ());
      n
  | Ptr _ -> crash st Crash.Invalid_pointer

(* ------------------------------------------------------------------ *)
(* String literals *)

let intern_string st s =
  match Hashtbl.find_opt st.string_lits s with
  | Some b -> Value.ptr ~base:b ~off:0
  | None ->
      let n = String.length s in
      let b = Memory.alloc st.mem ~name:(Printf.sprintf "%S" s) ~size:(n + 1) in
      String.iteri
        (fun i c ->
          match Memory.store st.mem ~base:b ~off:i (Value.int_ (Char.code c)) with
          | Ok () -> ()
          | Error _ -> assert false)
        s;
      Hashtbl.replace st.string_lits s b;
      Value.ptr ~base:b ~off:0

(* ------------------------------------------------------------------ *)
(* Expression evaluation *)

let op_to_expr : Ast.binop -> Solver.Expr.binop = function
  | Add -> Solver.Expr.Add
  | Sub -> Solver.Expr.Sub
  | Mul -> Solver.Expr.Mul
  | Div -> Solver.Expr.Div
  | Mod -> Solver.Expr.Mod
  | Eq -> Solver.Expr.Eq
  | Ne -> Solver.Expr.Ne
  | Lt -> Solver.Expr.Lt
  | Le -> Solver.Expr.Le
  | Gt -> Solver.Expr.Gt
  | Ge -> Solver.Expr.Ge
  | Land -> Solver.Expr.Land
  | Lor -> Solver.Expr.Lor
  | Band -> Solver.Expr.Band
  | Bor -> Solver.Expr.Bor
  | Bxor -> Solver.Expr.Bxor
  | Shl -> Solver.Expr.Shl
  | Shr -> Solver.Expr.Shr

let unop_to_expr : Ast.unop -> Solver.Expr.unop = function
  | Neg -> Solver.Expr.Neg
  | Lognot -> Solver.Expr.Lognot
  | Bitnot -> Solver.Expr.Bitnot

let shadow_binop op (a : Value.t) (b : Value.t) : Solver.Expr.t option =
  if not (Value.is_symbolic a || Value.is_symbolic b) then None
  else
    match Value.sym_or_const a, Value.sym_or_const b with
    | Some sa, Some sb -> Some (Solver.Expr.Binop (op_to_expr op, sa, sb))
    | _ -> None

let rec eval_expr st (e : Ast.expr) : Value.t =
  Cost.charge st.cost Cost.expr_node;
  match e with
  | Cint n -> Value.int_ n
  | Cstr s -> intern_string st s
  | Lval lv ->
      let l = resolve_lval st lv in
      load_loc st l
  | Addr lv ->
      let l = resolve_lval st lv in
      Value.ptr ~base:l.base ~off:l.off
  | Unop (op, a) -> (
      let va = eval_expr st a in
      match va.conc with
      | Int n ->
          let r =
            match op with
            | Neg -> -n
            | Lognot -> if n = 0 then 1 else 0
            | Bitnot -> lnot n
          in
          let sym =
            Option.map (fun s -> Solver.Expr.Unop (unop_to_expr op, s)) va.sym
          in
          { Value.conc = Int r; sym }
      | Ptr _ -> (
          (* only !p is meaningful on pointers *)
          match op with
          | Lognot -> Value.int_ 0
          | Neg | Bitnot -> crash st Crash.Invalid_pointer))
  | Binop (op, a, b) -> eval_binop st op a b
  | Ecall (f, _) -> invalid_arg ("call to " ^ f ^ " in expression position")

and eval_binop st op a_e b_e : Value.t =
  let a = eval_expr st a_e in
  let b = eval_expr st b_e in
  let shadow () = shadow_binop op a b in
  match a.conc, b.conc, op with
  (* pointer arithmetic *)
  | Ptr p, Int _, (Add | Sub) ->
      let n = concretize st b in
      let off = if op = Add then p.off + n else p.off - n in
      Value.ptr ~base:p.base ~off
  | Int _, Ptr p, Add ->
      let n = concretize st a in
      Value.ptr ~base:p.base ~off:(p.off + n)
  | Ptr p, Ptr q, Sub ->
      if p.base = q.base then Value.int_ (p.off - q.off)
      else crash st Crash.Invalid_pointer
  (* pointer comparisons; a null pointer is integer 0 *)
  | Ptr p, Ptr q, (Eq | Ne | Lt | Le | Gt | Ge) ->
      let r =
        if p.base = q.base then
          Solver.Expr.eval_binop (op_to_expr op) p.off q.off
        else
          match op with
          | Eq -> 0
          | Ne -> 1
          | _ -> crash st Crash.Invalid_pointer
      in
      Value.int_ r
  | Ptr _, Int n, (Eq | Ne) | Int n, Ptr _, (Eq | Ne) ->
      if n = 0 then Value.int_ (if op = Eq then 0 else 1)
      else crash st Crash.Invalid_pointer
  (* pointers as booleans *)
  | Ptr _, _, (Land | Lor) | _, Ptr _, (Land | Lor) ->
      let tr v = Value.truthy v in
      let r =
        match op with
        | Land -> tr a && tr b
        | Lor -> tr a || tr b
        | _ -> assert false
      in
      Value.int_ (if r then 1 else 0)
  | Int x, Int y, _ -> (
      match Solver.Expr.eval_binop (op_to_expr op) x y with
      | r -> { Value.conc = Int r; sym = shadow () }
      | exception Solver.Expr.Undefined -> crash st Crash.Div_by_zero)
  | _ -> crash st Crash.Invalid_pointer

and resolve_lval st (lv : Ast.lval) : loc_cell =
  match lv with
  | Var x -> { base = var_block st x; off = 0; ty = var_type st x }
  | Index (b, idx) -> (
      let l = resolve_lval st b in
      let iv = eval_expr st idx in
      let n = concretize st iv in
      match l.ty with
      | Types.Tarr (el, _) -> { base = l.base; off = l.off + n; ty = el }
      | Types.Tptr el -> (
          let pv = load_raw st l in
          match pv.conc with
          | Ptr p -> { base = p.base; off = p.off + n; ty = el }
          | Int 0 -> crash st Crash.Null_deref
          | Int _ -> crash st Crash.Invalid_pointer)
      | Types.Tvoid | Types.Tint -> crash st Crash.Invalid_pointer)
  | Star e -> (
      let ty =
        match Types.element (type_of_expr st e) with
        | Some t -> t
        | None -> Types.Tint
      in
      let v = eval_expr st e in
      match v.conc with
      | Ptr p -> { base = p.base; off = p.off; ty }
      | Int 0 -> crash st Crash.Null_deref
      | Int _ -> crash st Crash.Invalid_pointer)

and load_raw st (l : loc_cell) : Value.t =
  match Memory.load st.mem ~base:l.base ~off:l.off with
  | Ok v -> v
  | Error f -> crash st (Memory.fault_to_crash_kind f)

(* Load with array decay: an array-typed location evaluates to a pointer. *)
and load_loc st (l : loc_cell) : Value.t =
  match l.ty with
  | Types.Tarr _ -> Value.ptr ~base:l.base ~off:l.off
  | Types.Tvoid | Types.Tint | Types.Tptr _ -> load_raw st l

let store_loc st (l : loc_cell) v =
  match Memory.store st.mem ~base:l.base ~off:l.off v with
  | Ok () -> ()
  | Error f -> crash st (Memory.fault_to_crash_kind f)

(* Read a NUL-terminated concrete string at [v]. *)
let read_cstring st (v : Value.t) : string =
  match v.conc with
  | Int 0 -> crash st Crash.Null_deref
  | Int _ -> crash st Crash.Invalid_pointer
  | Ptr p ->
      let buf = Buffer.create 32 in
      let rec go off n =
        if n > cstring_scan_limit then crash st Crash.Out_of_bounds
        else
          match Memory.load st.mem ~base:p.base ~off with
          | Error f -> crash st (Memory.fault_to_crash_kind f)
          | Ok cell -> (
              match cell.conc with
              | Int 0 -> ()
              | Int c ->
                  Buffer.add_char buf (Char.chr (c land 0xff));
                  go (off + 1) (n + 1)
              | Ptr _ -> crash st Crash.Invalid_pointer)
      in
      go p.off 0;
      Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Builtins *)

let expect_ptr st (v : Value.t) : int * int =
  match v.conc with
  | Ptr { base; off } -> (base, off)
  | Int 0 -> crash st Crash.Null_deref
  | Int _ -> crash st Crash.Invalid_pointer

let do_syscall st (req : Osmodel.Sysreq.req) : Kernel.reply =
  (* system calls are scheduling points when other threads are ready *)
  Effect.perform Yield_eff;
  Cost.charge_syscall st.cost;
  st.kernel req

let builtin_call st name (args : Value.t list) : Value.t =
  match name, args with
  | "argc", [] -> Value.int_ (Inputs.arg_count st.inputs)
  | "arg", [ i; buf; cap ] ->
      let i = concretize st i in
      let cap = concretize st cap in
      let pbase, poff = expect_ptr st buf in
      if i < 0 || i >= Inputs.arg_count st.inputs || cap <= 0 then Value.int_ (-1)
      else begin
        let a = st.inputs.args.(i) in
        let n = min (Array.length a.bytes) (cap - 1) in
        for j = 0 to n - 1 do
          store_loc st
            { base = pbase; off = poff + j; ty = Types.Tint }
            { Value.conc = Int a.bytes.(j); sym = a.syms.(j) }
        done;
        store_loc st { base = pbase; off = poff + n; ty = Types.Tint } Value.zero;
        Value.int_ n
      end
  | "read", [ fd; buf; count ] ->
      let fd = concretize st fd in
      let count = concretize st count in
      let pbase, poff = expect_ptr st buf in
      let reply = do_syscall st (Osmodel.Sysreq.Read { fd; count }) in
      let ret =
        match reply.res with
        | Osmodel.Sysreq.R_read { count = n; data } ->
            for j = 0 to n - 1 do
              let sym =
                if j < Array.length reply.data_sym then reply.data_sym.(j)
                else None
              in
              store_loc st
                { base = pbase; off = poff + j; ty = Types.Tint }
                { Value.conc = Int data.(j); sym }
            done;
            n
        | Osmodel.Sysreq.R_int n -> n
      in
      { Value.conc = Int ret; sym = reply.ret_sym }
  | "write", [ fd; buf; count ] ->
      let fd = concretize st fd in
      let count = concretize st count in
      let pbase, poff = expect_ptr st buf in
      let data =
        Array.init (max count 0) (fun j ->
            let cell =
              load_raw st { base = pbase; off = poff + j; ty = Types.Tint }
            in
            match cell.conc with
            | Int n -> n land 0xff
            | Ptr _ -> crash st Crash.Invalid_pointer)
      in
      let reply = do_syscall st (Osmodel.Sysreq.Write { fd; data }) in
      { Value.conc = Int (Osmodel.Sysreq.res_int reply.res); sym = reply.ret_sym }
  | "open", [ path; flags ] ->
      let path = read_cstring st path in
      let flags = concretize st flags in
      let reply = do_syscall st (Osmodel.Sysreq.Open { path; flags }) in
      { Value.conc = Int (Osmodel.Sysreq.res_int reply.res); sym = reply.ret_sym }
  | "close", [ fd ] ->
      let fd = concretize st fd in
      let reply = do_syscall st (Osmodel.Sysreq.Close { fd }) in
      { Value.conc = Int (Osmodel.Sysreq.res_int reply.res); sym = reply.ret_sym }
  | "select", [] ->
      let reply = do_syscall st Osmodel.Sysreq.Select in
      { Value.conc = Int (Osmodel.Sysreq.res_int reply.res); sym = reply.ret_sym }
  | "ready_fd", [ index ] ->
      let index = concretize st index in
      let reply = do_syscall st (Osmodel.Sysreq.Ready_fd { index }) in
      { Value.conc = Int (Osmodel.Sysreq.res_int reply.res); sym = reply.ret_sym }
  | "accept", [] ->
      let reply = do_syscall st Osmodel.Sysreq.Accept in
      { Value.conc = Int (Osmodel.Sysreq.res_int reply.res); sym = reply.ret_sym }
  | "listen", [ port ] ->
      let port = concretize st port in
      let reply = do_syscall st (Osmodel.Sysreq.Listen { port }) in
      { Value.conc = Int (Osmodel.Sysreq.res_int reply.res); sym = reply.ret_sym }
  | "print_int", [ v ] ->
      Buffer.add_string st.out (string_of_int (concretize st v));
      Value.zero
  | "print_str", [ v ] ->
      Buffer.add_string st.out (read_cstring st v);
      Value.zero
  | "exit", [ code ] -> raise (Exit_exc (concretize st code))
  | "crash", [] -> crash st Crash.Explicit_crash
  | "checkpoint", [] ->
      let access =
        {
          list_globals =
            (fun () ->
              Hashtbl.fold
                (fun name b acc ->
                  match Memory.size st.mem b with
                  | Some n -> (name, n) :: acc
                  | None -> acc)
                st.globals []);
          read_global =
            (fun name off ->
              match Hashtbl.find_opt st.globals name with
              | None -> None
              | Some b -> (
                  match Memory.load st.mem ~base:b ~off with
                  | Ok v -> Some v
                  | Error _ -> None));
          write_global =
            (fun name off v ->
              match Hashtbl.find_opt st.globals name with
              | None -> false
              | Some b -> (
                  match Memory.store st.mem ~base:b ~off v with
                  | Ok () -> true
                  | Error _ -> false));
        }
      in
      st.hooks.on_checkpoint access;
      Value.zero
  | "assert", [ v ] ->
      if Value.truthy v then Value.zero else crash st Crash.Assert_failure
  | "spawn", [ name; arg ] ->
      let fname = read_cstring st name in
      Value.int_ (Effect.perform (Spawn_eff (fname, arg)))
  | "yield", [] ->
      Effect.perform Yield_eff;
      Value.zero
  | "join", [ tid ] -> Effect.perform (Join_eff (concretize st tid))
  | "my_tid", [] -> Value.int_ (Effect.perform My_tid_eff)
  | _ ->
      invalid_arg
        (Printf.sprintf "builtin %s: bad arity %d" name (List.length args))

(* ------------------------------------------------------------------ *)
(* Statements *)

let rec exec_stmt st (s : Ast.stmt) : unit =
  st.cur_loc <- s.sloc;
  step st;
  match s.sdesc with
  | Sassign (lv, e) ->
      let v = eval_expr st e in
      let l = resolve_lval st lv in
      store_loc st l v
  | Scall (lvo, f, args) -> (
      let vs = List.map (eval_expr st) args in
      let ret = call st f vs in
      st.cur_loc <- s.sloc;
      match lvo with
      | None -> ()
      | Some lv ->
          let l = resolve_lval st lv in
          store_loc st l ret)
  | Sif (br, cond, then_b, else_b) ->
      let v = eval_expr st cond in
      let taken = Value.truthy v in
      Cost.charge_branch st.cost;
      st.hooks.on_branch ~bid:br.bid ~iter:0 ~taken ~cond:v;
      exec_block st (if taken then then_b else else_b)
  | Swhile (br, cond, body) -> (
      let rec loop iter =
        st.cur_loc <- s.sloc;
        step st;
        let v = eval_expr st cond in
        let taken = Value.truthy v in
        Cost.charge_branch st.cost;
        st.hooks.on_branch ~bid:br.bid ~iter ~taken ~cond:v;
        if taken then begin
          (try exec_block st body with Continue_exc -> ());
          loop (iter + 1)
        end
      in
      try loop 0 with Break_exc -> ())
  | Sreturn None -> raise (Return_exc Value.zero)
  | Sreturn (Some e) -> raise (Return_exc (eval_expr st e))
  | Sbreak -> raise Break_exc
  | Scontinue -> raise Continue_exc
  | Sblock b -> exec_block st b

and exec_block st (b : Ast.block) = List.iter (exec_stmt st) b

and call st fname (args : Value.t list) : Value.t =
  Cost.charge st.cost Cost.call_overhead;
  if Minic.Builtin.is_builtin fname then builtin_call st fname args
  else
    match Program.find_func st.prog fname with
    | None -> invalid_arg ("call to unknown function " ^ fname)
    | Some fn ->
        st.depth <- st.depth + 1;
        if st.depth > max_depth then crash st Crash.Stack_overflow;
        let frame =
          {
            fn;
            var_blocks = Hashtbl.create 16;
            var_types = Hashtbl.create 16;
            owned = [];
          }
        in
        let alloc_var name ty init =
          let size = match ty with Types.Tarr (_, n) -> n | _ -> 1 in
          let b = Memory.alloc st.mem ~name:(fname ^ "." ^ name) ~size in
          frame.owned <- b :: frame.owned;
          Hashtbl.replace frame.var_blocks name b;
          Hashtbl.replace frame.var_types name ty;
          match init with
          | Some v -> (
              match Memory.store st.mem ~base:b ~off:0 v with
              | Ok () -> ()
              | Error _ -> assert false)
          | None -> ()
        in
        if List.length args <> List.length fn.fparams then
          invalid_arg (Printf.sprintf "arity mismatch calling %s" fname);
        List.iter2 (fun (pname, pty) v -> alloc_var pname pty (Some v)) fn.fparams args;
        List.iter
          (fun (d : Ast.var_decl) -> alloc_var d.vname d.vtyp None)
          fn.flocals;
        let saved_func = st.cur_func in
        st.frames <- frame :: st.frames;
        st.cur_func <- fname;
        let cleanup () =
          st.frames <- (match st.frames with _ :: r -> r | [] -> []);
          List.iter (Memory.kill st.mem) frame.owned;
          st.depth <- st.depth - 1;
          st.cur_func <- saved_func
        in
        (try
           exec_block st fn.fbody;
           cleanup ();
           Value.zero
         with
        | Return_exc v ->
            cleanup ();
            v
        | e ->
            cleanup ();
            raise e)

(* ------------------------------------------------------------------ *)
(* Program entry *)

type config = {
  inputs : Inputs.t;
  kernel : Kernel.t;
  hooks : hooks;
  max_steps : int;
  scheduler : (int list -> int) option;
      (** thread-scheduling policy: given the ready thread ids (in queue
          order), return the one to run.  Consulted only when two or more
          threads are ready; [None] = run the first (round-robin).  The
          field run logs these decisions; replay replays them.  May raise
          {!Abort_run} on schedule divergence. *)
}

let default_config =
  {
    inputs = Inputs.of_strings [];
    kernel = (fun _ -> Kernel.concrete_reply (Osmodel.Sysreq.R_int (-1)));
    hooks = no_hooks;
    max_steps = 10_000_000;
    scheduler = None;
  }

type result = {
  outcome : Crash.outcome;
  cost : Cost.t;
  output : string;  (** text printed via print_int / print_str *)
  steps : int;
}

let init_state prog (cfg : config) : state =
  let mem = Memory.create () in
  let globals = Hashtbl.create 32 in
  let global_types = Hashtbl.create 32 in
  let st =
    {
      prog;
      mem;
      globals;
      global_types;
      string_lits = Hashtbl.create 32;
      inputs = cfg.inputs;
      kernel = cfg.kernel;
      hooks = cfg.hooks;
      cost = Cost.create ();
      max_steps = cfg.max_steps;
      out = Buffer.create 256;
      frames = [];
      depth = 0;
      steps = 0;
      cur_loc = Loc.none;
      cur_func = "<toplevel>";
    }
  in
  List.iter
    (fun (d : Ast.var_decl) ->
      let size = match d.vtyp with Types.Tarr (_, n) -> n | _ -> 1 in
      let b = Memory.alloc mem ~name:d.vname ~size in
      Hashtbl.replace globals d.vname b;
      Hashtbl.replace global_types d.vname d.vtyp;
      match d.vinit with
      | None -> ()
      | Some (Ast.Cint n) -> ignore (Memory.store mem ~base:b ~off:0 (Value.int_ n))
      | Some (Ast.Unop (Ast.Neg, Ast.Cint n)) ->
          ignore (Memory.store mem ~base:b ~off:0 (Value.int_ (-n)))
      | Some (Ast.Cstr s) ->
          let v = intern_string st s in
          ignore (Memory.store mem ~base:b ~off:0 v)
      | Some _ -> invalid_arg ("unsupported global initialiser for " ^ d.vname))
    prog.globals;
  st

(* Saved per-thread execution context, swapped at scheduling points. *)
type saved_ctx = {
  s_frames : frame list;
  s_depth : int;
  s_func : string;
  s_loc : Loc.t;
}

let capture_ctx st =
  { s_frames = st.frames; s_depth = st.depth; s_func = st.cur_func; s_loc = st.cur_loc }

let restore_ctx st s =
  st.frames <- s.s_frames;
  st.depth <- s.s_depth;
  st.cur_func <- s.s_func;
  st.cur_loc <- s.s_loc

(** Run [prog]'s [main] under the given configuration.

    The scheduler trampoline below also hosts the cooperative threads of
    the §6 multithreading extension: [main] is thread 0; [spawn] adds
    fibers; [yield], [join] and every system call are scheduling points.  A
    crash in any thread crashes the program (as a signal would). *)
let run (prog : Program.t) (cfg : config) : result =
  let st = init_state prog cfg in
  let open Effect.Deep in
  let ready : (int * (unit -> unit)) list ref = ref [] in
  let results : (int, Value.t) Hashtbl.t = Hashtbl.create 8 in
  let waiters : (int, (int * (Value.t -> unit)) list) Hashtbl.t = Hashtbl.create 8 in
  let next_tid = ref 1 in
  let current_tid = ref 0 in
  let main_value = ref None in
  let enqueue tid f = ready := !ready @ [ (tid, f) ] in
  let rec remove_tid tid = function
    | [] -> []
    | (t, _) :: rest when t = tid -> rest
    | x :: rest -> x :: remove_tid tid rest
  in
  let pick () =
    match !ready with
    | [] -> None
    | [ (tid, f) ] ->
        ready := [];
        Some (tid, f)
    | l -> (
        let tids = List.map fst l in
        let chosen =
          match cfg.scheduler with Some policy -> policy tids | None -> List.hd tids
        in
        match List.assoc_opt chosen l with
        | Some f ->
            ready := remove_tid chosen l;
            Some (chosen, f)
        | None -> raise (Abort_run "scheduler chose a thread that is not ready"))
  in
  let wake tid v =
    match Hashtbl.find_opt waiters tid with
    | None -> ()
    | Some ws ->
        Hashtbl.remove waiters tid;
        List.iter (fun (wtid, resume) -> enqueue wtid (fun () -> resume v)) ws
  in
  let rec run_fiber tid (body : unit -> Value.t) : unit =
    match_with body ()
      {
        retc =
          (fun v ->
            Hashtbl.replace results tid v;
            if tid = 0 then main_value := Some v;
            wake tid v);
        exnc = (fun e -> raise e);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Yield_eff ->
                Some
                  (fun (k : (a, _) continuation) ->
                    if !ready = [] then continue k () (* nothing to switch to *)
                    else begin
                      let saved = capture_ctx st in
                      enqueue tid (fun () ->
                          restore_ctx st saved;
                          continue k ())
                    end)
            | Spawn_eff (fname, arg) ->
                Some
                  (fun (k : (a, _) continuation) ->
                    let tid' = !next_tid in
                    incr next_tid;
                    (match Program.find_func prog fname with
                    | Some f when List.length f.fparams = 1 ->
                        enqueue tid' (fun () ->
                            st.frames <- [];
                            st.depth <- 0;
                            st.cur_func <- fname;
                            st.cur_loc <- f.floc;
                            run_fiber tid' (fun () -> call st fname [ arg ]))
                    | Some _ ->
                        invalid_arg
                          (Printf.sprintf "spawn: %s must take one int argument"
                             fname)
                    | None -> invalid_arg ("spawn: unknown function " ^ fname));
                    continue k tid')
            | Join_eff t ->
                Some
                  (fun (k : (a, _) continuation) ->
                    match Hashtbl.find_opt results t with
                    | Some v -> continue k v
                    | None ->
                        let saved = capture_ctx st in
                        let ws =
                          match Hashtbl.find_opt waiters t with
                          | Some l -> l
                          | None -> []
                        in
                        Hashtbl.replace waiters t
                          (( tid,
                             fun v ->
                               restore_ctx st saved;
                               continue k v )
                          :: ws))
            | My_tid_eff ->
                Some (fun (k : (a, _) continuation) -> continue k !current_tid)
            | _ -> None);
      }
  in
  let rec spin () =
    if !main_value <> None then ()
    else
      match pick () with
      | None ->
          if !main_value = None then
            raise (Abort_run "deadlock: all threads blocked")
      | Some (tid, f) ->
          current_tid := tid;
          f ();
          spin ()
  in
  let outcome =
    match
      enqueue 0 (fun () -> run_fiber 0 (fun () -> call st "main" []));
      spin ()
    with
    | () -> (
        match !main_value with
        | Some v ->
            let code =
              match v.Value.conc with Value.Int n -> n | Value.Ptr _ -> 0
            in
            Crash.Exit code
        | None -> Crash.Aborted "main never completed")
    | exception Exit_exc code -> Crash.Exit code
    | exception Crash_exc c -> Crash.Crash c
    | exception Budget_exc -> Crash.Budget_exhausted
    | exception Abort_run why -> Crash.Aborted why
  in
  { outcome; cost = st.cost; output = Buffer.contents st.out; steps = st.steps }
