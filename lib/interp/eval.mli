(** The MiniC evaluator.

    One evaluator serves every pipeline stage; stages differ only in the
    {!hooks}, the {!Kernel.t} and the symbolic shadows on inputs.  Using
    the same semantics for recording and replay is what guarantees that a
    fully-logged execution replays along the identical path. *)

(** Access to a running program's global variables, handed to the
    checkpoint hook so checkpoint/restore machinery can snapshot or rewrite
    global state without reaching into evaluator internals. *)
type global_access = {
  list_globals : unit -> (string * int) list;  (** name and cell count *)
  read_global : string -> int -> Value.t option;
  write_global : string -> int -> Value.t -> bool;
}

type hooks = {
  on_branch : bid:int -> iter:int -> taken:bool -> cond:Value.t -> unit;
      (** called at every executed branch, before entering the arm; may
          raise {!Abort_run}.  [iter] is [0] for [if] branches and counts
          condition evaluations across one execution of a [while]
          statement ([0] marks a fresh loop entry) *)
  on_concretize : Solver.Expr.t -> int -> unit;
      (** a symbolic value was forced to its concrete value (array index,
          pointer arithmetic, syscall argument) *)
  on_checkpoint : global_access -> unit;
      (** the program executed the [checkpoint()] builtin *)
}

val no_hooks : hooks

exception Abort_run of string
(** Raised by hooks to abandon the current run (replay divergence). *)

type config = {
  inputs : Inputs.t;
  kernel : Kernel.t;
  hooks : hooks;
  max_steps : int;  (** statement budget; exceeding yields [Budget_exhausted] *)
  scheduler : (int list -> int) option;
      (** thread-scheduling policy (§6 multithreading): given the ready
          thread ids in queue order, return the one to run.  Consulted only
          when two or more threads are ready; [None] = round-robin.  The
          field run logs these decisions; replay replays them.  May raise
          {!Abort_run} on schedule divergence. *)
}

val default_config : config

type result = {
  outcome : Crash.outcome;
  cost : Cost.t;
  output : string;  (** text printed via print_int / print_str *)
  steps : int;
}

(** Run [prog]'s [main] under the given configuration. *)
val run : Minic.Program.t -> config -> result
