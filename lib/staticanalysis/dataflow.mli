(** Generic forward dataflow over structured MiniC ASTs.

    MiniC control flow is fully structured, so instead of a CFG the
    framework interprets the tree abstractly: branch arms are joined, loop
    bodies iterate to a fixpoint (the paper's "fixed-point dataflow
    algorithm"), and escaping paths (break/continue/return) are collected
    where they land.  Loop heads iterate with [join] for up to
    {!loop_fixpoint_cap} rounds, then finish with [widen] — termination is
    guaranteed for any client lattice whose [widen] stabilises, and the
    result is always an over-approximation (the framework never bails out
    of an unfinished climb). *)

(** Arm-pruning hint returned by the client at a branch: [Visit_then] /
    [Visit_else] skip the provably dead arm (for a [while], [Visit_then]
    exits only through [break]s and [Visit_else] skips the body);
    [Visit_both] is always sound. *)
type visit = Visit_both | Visit_then | Visit_else

(** Loop-head iteration budget under plain joins; past it the framework
    switches to the domain's [widen]. *)
val loop_fixpoint_cap : int

(** Per-analysis counters: number of loop fixpoints finished by widening
    (each one is a precision-loss warning the client should surface). *)
type stats = { mutable widened_loops : int }

val create_stats : unit -> stats

module type DOMAIN = sig
  type t

  val join : t -> t -> t

  val widen : t -> t -> t
  (** [widen prev next] over-approximates both arguments and must make
      repeated widening stabilise in finitely many steps.  For finite-height
      lattices [join] qualifies. *)

  val equal : t -> t -> bool
end

module Make (D : DOMAIN) : sig
  type client = {
    transfer : D.t -> Minic.Ast.stmt -> D.t;
        (** straight-line statements only ([Sassign] and [Scall]) *)
    on_branch : D.t -> Minic.Ast.branch -> Minic.Ast.expr -> visit;
        (** called with the state reaching a branch condition; the returned
            hint prunes provably dead arms *)
    on_return : D.t -> Minic.Ast.expr option -> unit;
  }

  (** Analyze a function body from an entry state; returns the fall-through
      exit state ([None] if no path falls through).  [stats] accumulates
      widening counts across calls. *)
  val func : ?stats:stats -> client -> D.t -> Minic.Ast.block -> D.t option
end
