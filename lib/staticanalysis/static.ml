(** Static branch labelling: the paper's "static analysis" instrumentation
    input (§2.2), refined by the precision pipeline.

    Pass order: {!Pointsto} (aliasing) -> {!Constprop} (constant branch
    conditions, dead code) -> {!Taint} with strong updates and dead-arm
    pruning -> labelling.  Branches whose condition is provably constant,
    and branches proved dead, are labelled [Concrete] regardless of taint;
    everything the taint analysis flags is [Symbolic].  Guarantee: every
    truly symbolic branch is labelled [Symbolic]; imprecision only ever
    adds spurious [Symbolic] labels.

    [refine = false] disables constprop and strong updates, restoring the
    seed's maximally conservative pipeline (used as the precision
    baseline). *)

open Minic

type result = {
  labels : Label.map;
  n_symbolic : int;
  n_concrete : int;
  contexts : int;  (** (function, context) pairs analysed by taint *)
  constprop : Constprop.result option;  (** present when [refine] *)
  provenance : Provenance.t;  (** witness chains for symbolic labels *)
  n_const_proved : int;  (** branches labelled Concrete via constancy *)
  n_dead_proved : int;  (** branches labelled Concrete via deadness *)
  widened_loops : int;  (** loop fixpoints finished by widening *)
}

(** Analyze [prog].  [analyze_lib = false] reproduces the paper's uServer
    setup: library code is not analysed and all its branches are
    conservatively labelled symbolic. *)
let analyze ?(analyze_lib = true) ?(refine = true)
    ?(telemetry = Telemetry.disabled) (prog : Program.t) : result =
  Telemetry.Span.with_ telemetry ~name:"analyze.static"
    ~attrs:
      [
        ("refine", Telemetry.Event.Bool refine);
        ("analyze_lib", Telemetry.Event.Bool analyze_lib);
      ]
  @@ fun sp ->
  let pass name f =
    Telemetry.Span.with_ telemetry ~parent:sp ~name (fun _ -> f ())
  in
  let pta = pass "static.pointsto" (fun () -> Pointsto.analyze prog) in
  (* constprop always analyses library code: constant reasoning is sound
     everywhere, and §5.3's conservative treatment only concerns the taint
     labels (library branches are never overridden below when
     [analyze_lib = false]) *)
  let constprop =
    if refine then
      Some (pass "static.constprop" (fun () -> Constprop.analyze prog pta))
    else None
  in
  let taint =
    pass "static.taint" (fun () ->
        Taint.analyze
          ~cfg:{ Taint.analyze_lib; strong_updates = refine }
          ?constprop prog pta)
  in
  let n = Program.nbranches prog in
  let labels = Label.make ~nbranches:n Label.Concrete in
  for bid = 0 to n - 1 do
    if Taint.is_branch_symbolic taint bid then labels.(bid) <- Label.Symbolic
  done;
  (* constant-condition and dead branches are Concrete regardless of
     taint, except library branches under the conservative mode *)
  let n_const = ref 0 and n_dead = ref 0 in
  (match constprop with
  | Some cp ->
      Array.iter
        (fun (b : Number.info) ->
          if analyze_lib || not b.bis_lib then
            match Constprop.branch_const_value cp b.bid with
            | Some _ ->
                incr n_const;
                labels.(b.bid) <- Label.Concrete
            | None ->
                if Constprop.is_dead cp b.bid then begin
                  incr n_dead;
                  labels.(b.bid) <- Label.Concrete
                end)
        prog.branches
  | None -> ());
  let widened_loops =
    Taint.widened_loops taint
    + match constprop with Some cp -> cp.Constprop.widened_loops | None -> 0
  in
  if widened_loops > 0 then
    Printf.eprintf
      "static: warning: %d loop fixpoint(s) finished by widening (precision \
       may be reduced)\n\
       %!"
      widened_loops;
  let r =
    {
      labels;
      n_symbolic = Label.count labels Label.Symbolic;
      n_concrete = Label.count labels Label.Concrete;
      contexts = Taint.contexts_analyzed taint;
      constprop;
      provenance = Taint.provenance taint;
      n_const_proved = !n_const;
      n_dead_proved = !n_dead;
      widened_loops;
    }
  in
  Telemetry.Span.addi sp "symbolic" r.n_symbolic;
  Telemetry.Span.addi sp "concrete" r.n_concrete;
  Telemetry.Span.addi sp "contexts" r.contexts;
  Telemetry.Metrics.incr_named telemetry "static.const_proved" ~by:r.n_const_proved;
  Telemetry.Metrics.incr_named telemetry "static.dead_proved" ~by:r.n_dead_proved;
  r

(** Precision report for a static result against dynamic ground-truth
    labels. *)
let precision (r : result) (prog : Program.t) ~(dynamic : Label.map) :
    Precision.report =
  Precision.make ?constprop:r.constprop ~provenance:r.provenance prog
    ~static:r.labels ~dynamic
