(** Taint provenance: witness chains for [Symbolic] labels.

    The taint analysis records, for every abstract location it taints, the
    *first* event that tainted it (input builtin, assignment, call return,
    argument binding, conservative library call) together with the source
    location and the upstream tainted location it copied from.  Following
    the [from] links yields a witness chain

      branch condition reads [aloc] <- assigned at [loc] from [aloc'] <-
      ... <- input from [arg()] at [loc'']

    explaining *why* the analysis considers a branch symbolic.  First-wins
    recording keeps chains acyclic-by-construction in the common case and
    cheap: the map only grows while the monotone tainted set grows.

    Witnesses are diagnostics, not proofs: they describe the analysis'
    reasoning and are meant for debugging spurious labels (which hop of the
    chain over-approximates, e.g. a collapsed array or a weak update). *)

open Minic

type step =
  | Source of string  (** input-returning / arg-tainting builtin *)
  | Assign  (** direct assignment of a tainted expression *)
  | Call_return of string  (** tainted return value of [callee] *)
  | Call_argument of string * int
      (** bound to parameter [i] at a call to [callee] *)
  | Library_call of string
      (** conservative un-analysed library call ([analyze_lib = false]) *)

type edge = { step : step; loc : Loc.t; from : Aloc.t option }

(** Why a branch was labelled symbolic. *)
type witness =
  | Reads of Aloc.t  (** condition reads this tainted location *)
  | Lib_forced  (** library branch forced symbolic (analyze-lib off) *)

type t = {
  mutable why : edge Aloc.Map.t;  (** first tainting event per location *)
  branch : witness option array;  (** by branch id *)
}

let create ~nbranches = { why = Aloc.Map.empty; branch = Array.make nbranches None }

(* First writer wins: the first event that tainted a location is its
   provenance; later re-taints don't rewrite history. *)
let record t a edge = if not (Aloc.Map.mem a t.why) then t.why <- Aloc.Map.add a edge t.why

let record_branch t bid w =
  if bid >= 0 && bid < Array.length t.branch && t.branch.(bid) = None then
    t.branch.(bid) <- Some w

let branch_witness t bid =
  if bid >= 0 && bid < Array.length t.branch then t.branch.(bid) else None

let chain_limit = 20

(** Witness chain for a tainted location: the recorded edges from [a] back
    toward an input source, cycle-guarded and capped at {!chain_limit}. *)
let chain t (a : Aloc.t) : (Aloc.t * edge) list =
  let rec follow seen acc a n =
    if n >= chain_limit || Aloc.Set.mem a seen then List.rev acc
    else
      match Aloc.Map.find_opt a t.why with
      | None -> List.rev acc
      | Some e -> (
          let acc = (a, e) :: acc in
          match e.from with
          | Some b -> follow (Aloc.Set.add a seen) acc b (n + 1)
          | None -> List.rev acc)
  in
  follow Aloc.Set.empty [] a 0

let step_to_string = function
  | Source b -> Printf.sprintf "input from %s()" b
  | Assign -> "assigned"
  | Call_return f -> Printf.sprintf "returned by %s()" f
  | Call_argument (f, i) -> Printf.sprintf "passed as arg %d to %s()" i f
  | Library_call f -> Printf.sprintf "written by un-analysed library call %s()" f

let edge_to_string (a, e) =
  let src = match e.from with Some b -> Printf.sprintf " from %s" (Aloc.to_string b) | None -> "" in
  Printf.sprintf "%s %s%s (%s:%d)" (Aloc.to_string a) (step_to_string e.step) src
    e.loc.Loc.file e.loc.Loc.line

(** One-line human-readable explanation of a symbolic branch, or [None] if
    the branch has no recorded witness. *)
let explain_branch t bid : string option =
  match branch_witness t bid with
  | None -> None
  | Some Lib_forced ->
      Some "library branch: forced symbolic (library analysis disabled)"
  | Some (Reads a) ->
      let hops = chain t a in
      let head = Printf.sprintf "condition reads %s" (Aloc.to_string a) in
      if hops = [] then Some head
      else
        Some (head ^ " <- " ^ String.concat " <- " (List.map edge_to_string hops))
