(** Taint provenance: witness chains for [Symbolic] labels.

    Populated by {!Taint} as it propagates: for every abstract location the
    first tainting event is recorded (first-wins), and for every branch
    labelled symbolic the location its condition reads.  Following the
    [from] links yields the chain input source -> hops -> branch condition
    shown by [minic analyze --report].  Witnesses are diagnostics for
    debugging spurious labels, not proofs. *)

type step =
  | Source of string  (** input-returning / arg-tainting builtin *)
  | Assign  (** direct assignment of a tainted expression *)
  | Call_return of string  (** tainted return value of [callee] *)
  | Call_argument of string * int
      (** bound to parameter [i] at a call to [callee] *)
  | Library_call of string
      (** conservative un-analysed library call ([analyze_lib = false]) *)

type edge = { step : step; loc : Minic.Loc.t; from : Aloc.t option }

(** Why a branch was labelled symbolic. *)
type witness = Reads of Aloc.t | Lib_forced

type t

val create : nbranches:int -> t

(** Record the first tainting event for a location (later calls no-op). *)
val record : t -> Aloc.t -> edge -> unit

(** Record why a branch is symbolic (first caller wins). *)
val record_branch : t -> int -> witness -> unit

val branch_witness : t -> int -> witness option

(** Witness chain from a tainted location back toward an input source;
    cycle-guarded, capped. *)
val chain : t -> Aloc.t -> (Aloc.t * edge) list

val step_to_string : step -> string
val edge_to_string : Aloc.t * edge -> string

(** One-line explanation of a symbolic branch ([None] when unwitnessed). *)
val explain_branch : t -> int -> string option
