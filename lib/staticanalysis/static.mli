(** Static branch labelling: the paper's "static analysis" instrumentation
    input (§2.2), refined by the precision pipeline.

    Pass order: {!Pointsto} -> {!Constprop} -> {!Taint} (strong updates,
    dead-arm pruning) -> labelling; constant-condition and provably dead
    branches are [Concrete] regardless of taint.  Guarantee: every truly
    symbolic branch is labelled [Symbolic]; imprecision only ever adds
    spurious [Symbolic] labels (the over-approximation is property-tested
    against dynamic analysis). *)

type result = {
  labels : Minic.Label.map;
  n_symbolic : int;
  n_concrete : int;
  contexts : int;  (** (function, context) pairs analysed by taint *)
  constprop : Constprop.result option;  (** present when [refine] *)
  provenance : Provenance.t;  (** witness chains for symbolic labels *)
  n_const_proved : int;  (** branches labelled Concrete via constancy *)
  n_dead_proved : int;  (** branches labelled Concrete via deadness *)
  widened_loops : int;  (** loop fixpoints finished by widening *)
}

(** Analyze [prog].  [analyze_lib = false] reproduces the paper's uServer
    setup (§5.3): library code is not analysed and all its branches are
    conservatively labelled symbolic.  [refine = false] disables constprop
    and strong updates (the seed pipeline, used as precision baseline).
    [telemetry] wraps the run in an [analyze.static] span with one child
    span per pass ([static.pointsto]/[static.constprop]/[static.taint]). *)
val analyze :
  ?analyze_lib:bool ->
  ?refine:bool ->
  ?telemetry:Telemetry.t ->
  Minic.Program.t ->
  result

(** Precision report against dynamic ground-truth labels. *)
val precision :
  result -> Minic.Program.t -> dynamic:Minic.Label.map -> Precision.report
