(** Interprocedural symbolic-variable propagation (the paper's Algorithms 1
    and 2), with strong-update refinement and provenance recording.

    A worklist of (function, context) pairs — a context records which
    parameters hold symbolic values (the paper's footnote about revisiting
    functions per combination of symbolic/concrete parameters) — with
    per-context return summaries; memory reached through pointers, arrays
    and globals is tracked in a monotone tainted-location set resolved with
    {!Pointsto} (weak updates: one of the paper's imprecision sources).

    With [strong_updates = true] (the default) scalar locals of the
    function under analysis are consulted flow-sensitively only, making
    kills ([x = concrete_expr]) and strong updates through provably
    singleton pointers sound; [strong_updates = false] restores the seed's
    maximally conservative behaviour.  Supplying a {!Constprop} result
    additionally prunes provably dead branch arms during the flow analysis.

    With [analyze_lib = false], library functions get a conservative
    summary and all their branches are labelled symbolic (§5.3). *)

type ctx = bool list  (** value-taint of each parameter *)

type config = { analyze_lib : bool; strong_updates : bool }

val default_config : config
(** [{ analyze_lib = true; strong_updates = true }] *)

type t

(** Run the whole-program analysis from [main] to a fixpoint.  [constprop]
    enables dead-arm pruning. *)
val analyze :
  ?cfg:config -> ?constprop:Constprop.result -> Minic.Program.t -> Pointsto.t -> t

(** May the branch's condition read input-derived data? *)
val is_branch_symbolic : t -> int -> bool

(** Number of (function, context) pairs analysed. *)
val contexts_analyzed : t -> int

(** Witness chains recorded during propagation. *)
val provenance : t -> Provenance.t

(** Loop fixpoints finished by widening (precision-loss warnings). *)
val widened_loops : t -> int
