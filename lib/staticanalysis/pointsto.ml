(** Andersen-style, flow- and context-insensitive points-to analysis.

    Computes, for every abstract location, the set of abstract locations its
    cell may point to.  Used by the taint analysis to resolve writes and
    reads through pointers ([*p = e], [p[i]], by-reference out-parameters) —
    the paper's "combination of dataflow and points-to analysis" (§2.2).

    The analysis is deliberately conservative: array cells are collapsed,
    assignments through pointers are weak updates, and calls are resolved by
    name over the whole program.  Its imprecision is what makes the paper's
    [static] instrumentation method over-approximate. *)

open Minic

type t = {
  prog : Program.t;
  mutable pts : Aloc.Set.t Aloc.Map.t;
  var_scope : (string, unit) Hashtbl.t;  (** names of globals *)
}

let find t a =
  match Aloc.Map.find_opt a t.pts with Some s -> s | None -> Aloc.Set.empty

(* Abstract location of a variable as seen from function [fn]. *)
let aloc_of_var t ~fn x : Aloc.t =
  let is_local =
    match Program.find_func t.prog fn with
    | Some f ->
        List.exists (fun (p, _) -> String.equal p x) f.fparams
        || List.exists (fun (d : Ast.var_decl) -> String.equal d.vname x) f.flocals
    | None -> false
  in
  if is_local then Aloc.Local (fn, x) else Aloc.Global x

let var_type t ~fn x : Types.t =
  let local_ty =
    match Program.find_func t.prog fn with
    | Some f -> (
        match List.assoc_opt x f.fparams with
        | Some ty -> Some ty
        | None ->
            List.find_map
              (fun (d : Ast.var_decl) ->
                if String.equal d.vname x then Some d.vtyp else None)
              f.flocals)
    | None -> None
  in
  match local_ty with
  | Some ty -> ty
  | None -> (
      match
        List.find_map
          (fun (d : Ast.var_decl) ->
            if String.equal d.vname x then Some d.vtyp else None)
          t.prog.globals
      with
      | Some ty -> ty
      | None -> Types.Tint)

let is_array_type = function Types.Tarr _ -> true | _ -> false

(** The abstract cells an lvalue may denote (the storage written by an
    assignment to it). *)
let rec denotes t ~fn (lv : Ast.lval) : Aloc.Set.t =
  match lv with
  | Var x -> Aloc.Set.singleton (aloc_of_var t ~fn x)
  | Index (base, _) ->
      (* indexing an array denotes the (collapsed) array cell itself;
         indexing a pointer denotes whatever the pointer may point to *)
      let rec base_type (l : Ast.lval) =
        match l with
        | Var x -> var_type t ~fn x
        | Index (b, _) -> (
            match Types.element (base_type b) with
            | Some ty -> ty
            | None -> Types.Tint)
        | Star _ -> Types.Tint
      in
      if is_array_type (base_type base) then denotes t ~fn base
      else
        Aloc.Set.fold
          (fun a acc -> Aloc.Set.union (find t a) acc)
          (denotes t ~fn base) Aloc.Set.empty
  | Star e -> points t ~fn e

(** The abstract locations a (pointer-valued) expression may point to. *)
and points t ~fn (e : Ast.expr) : Aloc.Set.t =
  match e with
  | Cint _ -> Aloc.Set.empty
  | Cstr s -> Aloc.Set.singleton (Aloc.Strlit s)
  | Addr lv -> denotes t ~fn lv
  | Lval (Var x) when is_array_type (var_type t ~fn x) ->
      (* array decay: the expression points to the array cell *)
      Aloc.Set.singleton (aloc_of_var t ~fn x)
  | Lval lv ->
      Aloc.Set.fold
        (fun a acc -> Aloc.Set.union (find t a) acc)
        (denotes t ~fn lv) Aloc.Set.empty
  | Unop (_, a) -> points t ~fn a
  | Binop (_, a, b) -> Aloc.Set.union (points t ~fn a) (points t ~fn b)
  | Ecall _ -> Aloc.Set.empty

let add_pts t a set changed =
  let cur = find t a in
  let next = Aloc.Set.union cur set in
  if not (Aloc.Set.equal cur next) then begin
    t.pts <- Aloc.Map.add a next t.pts;
    changed := true
  end

(* One pass over every statement of every function, accumulating points-to
   facts; repeated to a fixpoint by [analyze]. *)
let pass t changed =
  List.iter
    (fun (f : Ast.func) ->
      let fn = f.fname in
      Ast.iter_stmts
        (fun s ->
          match s.sdesc with
          | Sassign (lv, e) ->
              let rhs = points t ~fn e in
              if not (Aloc.Set.is_empty rhs) then
                Aloc.Set.iter (fun a -> add_pts t a rhs changed) (denotes t ~fn lv)
          | Scall (lvo, callee, args) -> (
              (* a spawned thread runs its target with the given argument:
                 bind it to the target's first parameter *)
              (match callee, args with
              | "spawn", [ Cstr target; arg ] -> (
                  match Program.find_func t.prog target with
                  | Some g -> (
                      match g.fparams with
                      | (pname, _) :: _ ->
                          let rhs = points t ~fn arg in
                          if not (Aloc.Set.is_empty rhs) then
                            add_pts t (Aloc.Local (target, pname)) rhs changed
                      | [] -> ())
                  | None -> ())
              | _ -> ());
              (match Program.find_func t.prog callee with
              | Some g ->
                  (* bind actuals to formal cells *)
                  List.iteri
                    (fun i arg ->
                      match List.nth_opt g.fparams i with
                      | Some (pname, _) ->
                          let rhs = points t ~fn arg in
                          if not (Aloc.Set.is_empty rhs) then
                            add_pts t (Aloc.Local (callee, pname)) rhs changed
                      | None -> ())
                    args
              | None -> ());
              match lvo with
              | Some lv ->
                  let rhs = find t (Aloc.Ret callee) in
                  if not (Aloc.Set.is_empty rhs) then
                    Aloc.Set.iter
                      (fun a -> add_pts t a rhs changed)
                      (denotes t ~fn lv)
              | None -> ())
          | Sreturn (Some e) ->
              let rhs = points t ~fn e in
              if not (Aloc.Set.is_empty rhs) then
                add_pts t (Aloc.Ret fn) rhs changed
          | Sreturn None | Sif _ | Swhile _ | Sbreak | Scontinue | Sblock _ -> ())
        f.fbody)
    t.prog.funcs

(** Run the analysis to a fixpoint. *)
let analyze (prog : Program.t) : t =
  let t = { prog; pts = Aloc.Map.empty; var_scope = Hashtbl.create 16 } in
  List.iter
    (fun (d : Ast.var_decl) -> Hashtbl.replace t.var_scope d.vname ())
    prog.globals;
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 100 do
    changed := false;
    incr rounds;
    pass t changed
  done;
  t

(** Points-to set of an expression in function [fn] (post-fixpoint query). *)
let points_of t ~fn e = points t ~fn e

(** Cells an lvalue in [fn] may write (post-fixpoint query). *)
let denotes_of t ~fn lv = denotes t ~fn lv

let aloc_of t ~fn x = aloc_of_var t ~fn x

(** Union of every points-to set: the cells some pointer may reach.  A cell
    absent from this set can only be accessed by name. *)
let pointed_cells t =
  Aloc.Map.fold (fun _ s acc -> Aloc.Set.union s acc) t.pts Aloc.Set.empty
