(** Precision report: static labels vs dynamic ground truth.

    Diffs a static labelling against the dynamic analysis' observed labels
    and issues per-branch verdicts; [Missed] (a dynamically-symbolic branch
    labelled [Concrete]) is a soundness violation and is reported loudly.
    The [spurious_rate] is the headline precision metric tracked by the
    bench tables.  Rendered as text ([to_text]) or dependency-free JSON
    ([to_json]). *)

type verdict =
  | Confirmed  (** static Symbolic, dynamic Symbolic *)
  | Spurious  (** static Symbolic, dynamic Concrete: over-approximation *)
  | Unknown  (** static Symbolic, branch never visited dynamically *)
  | Missed  (** static Concrete, dynamic Symbolic: SOUNDNESS VIOLATION *)
  | Agree_concrete  (** both Concrete *)
  | Unobserved  (** static Concrete, never visited dynamically *)

val verdict_to_string : verdict -> string
val classify : Minic.Label.t -> Minic.Label.t -> verdict

type entry = {
  bid : int;
  loc : Minic.Loc.t;
  func : string;
  is_lib : bool;
  static_label : Minic.Label.t;
  dynamic_label : Minic.Label.t;
  verdict : verdict;
  const_value : int option;  (** condition proved constant by constprop *)
  dead : bool;  (** branch proved dead by constprop *)
  witness : string option;  (** provenance chain for symbolic labels *)
}

type report = {
  entries : entry array;
  n_confirmed : int;
  n_spurious : int;
  n_unknown : int;
  n_missed : int;
  n_agree_concrete : int;
  n_unobserved : int;
  spurious_rate : float;
      (** spurious / (confirmed + spurious); 0 when nothing refutable *)
}

val make :
  ?constprop:Constprop.result ->
  ?provenance:Provenance.t ->
  Minic.Program.t ->
  static:Minic.Label.map ->
  dynamic:Minic.Label.map ->
  report

val n_static_symbolic : report -> int
val entry_to_string : entry -> string

(** Human-readable report; [all] lists every branch instead of only the
    symbolic-labelled and [Missed] ones. *)
val to_text : ?all:bool -> report -> string

val to_json : report -> string
