(** Generic forward dataflow over structured MiniC ASTs.

    MiniC control flow is fully structured (if / while / break / continue /
    return), so instead of a CFG the framework interprets the tree
    abstractly: branch arms are joined, loop bodies iterate to a fixpoint
    (the "fixed-point dataflow algorithm" of the paper's Algorithm 1), and
    escaping paths (break/continue/return) are collected and joined where
    they land.

    The state type is supplied by the client as a join-semilattice.  Loop
    heads iterate with [D.join] for up to {!loop_fixpoint_cap} rounds; past
    the cap the framework switches to [D.widen], whose contract (stabilise
    in finitely many steps) guarantees termination for any client lattice
    while keeping the result an over-approximation — the previous behaviour
    of silently bailing out mid-climb was unsound for slow lattices.  Each
    widened loop is counted in the optional {!stats} record so analyses can
    surface the precision loss. *)

open Minic

(** Arm-pruning hint returned by the client when it reaches a branch: which
    successors are feasible.  A client that proves the condition constant
    returns [Visit_then] / [Visit_else] and the framework skips the dead
    arm (for a [while], [Visit_then] means the loop never falls out of its
    condition — the exit state comes from [break]s only — and [Visit_else]
    means the body never runs).  [Visit_both] is always sound. *)
type visit = Visit_both | Visit_then | Visit_else

(** Loop-head iteration budget under plain joins; after this many rounds
    the framework joins with [D.widen] instead (it never bails out). *)
let loop_fixpoint_cap = 200

(** Per-analysis counters: [widened_loops] is the number of loop fixpoints
    that exceeded {!loop_fixpoint_cap} and were finished by widening. *)
type stats = { mutable widened_loops : int }

let create_stats () = { widened_loops = 0 }

module type DOMAIN = sig
  type t

  val join : t -> t -> t

  val widen : t -> t -> t
  (** [widen prev next] over-approximates both arguments and must make any
      chain [x, widen x y1, widen (widen x y1) y2, ...] stabilise in
      finitely many steps.  For finite-height lattices [join] qualifies. *)

  val equal : t -> t -> bool
end

module Make (D : DOMAIN) = struct
  type client = {
    transfer : D.t -> Ast.stmt -> D.t;
        (** straight-line statements only: [Sassign] and [Scall] *)
    on_branch : D.t -> Ast.branch -> Ast.expr -> visit;
        (** called with the state reaching a branch condition; the returned
            hint prunes provably dead arms ([Visit_both] when unknown) *)
    on_return : D.t -> Ast.expr option -> unit;
  }

  (* [None] = unreachable *)
  let join_opt a b =
    match a, b with
    | None, x | x, None -> x
    | Some a, Some b -> Some (D.join a b)

  let equal_opt a b =
    match a, b with
    | None, None -> true
    | Some a, Some b -> D.equal a b
    | None, Some _ | Some _, None -> false

  type loop_ctx = { mutable breaks : D.t option; mutable continues : D.t option }

  let rec stmt client ~stats (loop : loop_ctx option) (state : D.t option)
      (s : Ast.stmt) : D.t option =
    match state with
    | None -> None
    | Some st -> (
        match s.sdesc with
        | Sassign _ | Scall _ -> Some (client.transfer st s)
        | Sreturn e ->
            client.on_return st e;
            None
        | Sbreak ->
            (match loop with
            | Some l -> l.breaks <- join_opt l.breaks (Some st)
            | None -> ());
            None
        | Scontinue ->
            (match loop with
            | Some l -> l.continues <- join_opt l.continues (Some st)
            | None -> ());
            None
        | Sblock b -> block client ~stats loop state b
        | Sif (br, cond, then_b, else_b) -> (
            match client.on_branch st br cond with
            | Visit_both ->
                let t_out = block client ~stats loop (Some st) then_b in
                let e_out = block client ~stats loop (Some st) else_b in
                join_opt t_out e_out
            | Visit_then -> block client ~stats loop (Some st) then_b
            | Visit_else -> block client ~stats loop (Some st) else_b)
        | Swhile (br, cond, body) ->
            let widened = ref false in
            let rec fix head iters =
              let ctx = { breaks = None; continues = None } in
              match client.on_branch head br cond with
              | Visit_else ->
                  (* body provably never entered from this head *)
                  join_opt (Some head) ctx.breaks
              | (Visit_both | Visit_then) as v -> (
                  let body_out = block client ~stats (Some ctx) (Some head) body in
                  let next_head =
                    match join_opt (Some head) (join_opt body_out ctx.continues) with
                    | Some h -> h
                    | None -> head
                  in
                  let next_head =
                    if iters >= loop_fixpoint_cap then begin
                      if not !widened then begin
                        widened := true;
                        match stats with
                        | Some (s : stats) ->
                            s.widened_loops <- s.widened_loops + 1
                        | None -> ()
                      end;
                      D.widen head next_head
                    end
                    else next_head
                  in
                  if D.equal next_head head then
                    (* exit state: condition-false path from the stable head
                       (impossible when the condition is provably true),
                       joined with any break states *)
                    match v with
                    | Visit_then -> ctx.breaks
                    | Visit_both | Visit_else ->
                        join_opt (Some head) ctx.breaks
                  else fix next_head (iters + 1))
            in
            fix st 0)

  and block client ~stats loop state (b : Ast.block) : D.t option =
    List.fold_left (fun st s -> stmt client ~stats loop st s) state b

  (** Analyze a function body from an entry state; returns the fall-through
      exit state ([None] if all paths return).  [stats] accumulates widening
      counts across calls. *)
  let func ?stats client (entry : D.t) (body : Ast.block) : D.t option =
    block client ~stats None (Some entry) body

  let _ = equal_opt
end
