(** Andersen-style, flow- and context-insensitive points-to analysis.

    Computes, for every abstract location, the set of locations its cell may
    point to; used by the taint analysis to resolve reads and writes through
    pointers.  Deliberately conservative (collapsed arrays, weak updates):
    its imprecision is what makes the paper's [static] method
    over-approximate. *)

type t

(** Run the analysis to a fixpoint. *)
val analyze : Minic.Program.t -> t

(** Points-to set of an expression evaluated in function [fn]. *)
val points_of : t -> fn:string -> Minic.Ast.expr -> Aloc.Set.t

(** Abstract cells an lvalue in [fn] may denote (the storage an assignment
    to it writes). *)
val denotes_of : t -> fn:string -> Minic.Ast.lval -> Aloc.Set.t

(** Abstract location of variable [x] as seen from [fn]. *)
val aloc_of : t -> fn:string -> string -> Aloc.t

(** Static type of variable [x] as seen from [fn] ([Tint] if unknown). *)
val var_type : t -> fn:string -> string -> Minic.Types.t

(** Union of every points-to set: the cells some pointer may reach.  A cell
    absent from this set can only be accessed by name. *)
val pointed_cells : t -> Aloc.Set.t
