(** Per-function control-flow graphs over the structured MiniC AST.

    The dataflow analyses interpret the tree directly ({!Dataflow}), but the
    suppression proofs need genuinely graph-shaped questions — "does branch
    [d] dominate branch [b]?", "which statements lie on some [d]-to-[b]
    path?" — so this module lowers one function body to an explicit digraph
    with [Entry]/[Exit] nodes, one node per straight-line statement and one
    per branch condition evaluation, plus structural [Join] nodes that give
    every branch arm a distinct entry point.

    Edges over-approximate control flow (a [while (1)] still gets its
    condition-false exit edge): extra edges only ever enlarge path sets, so
    clients that treat "on some path" as a kill condition stay sound.

    Dominators and post-dominators use the iterative algorithm of Cooper,
    Harvey and Kennedy over a reverse post-order; MiniC functions are small
    enough that the simple O(n^2) worst case is irrelevant. *)

open Minic

type node_kind =
  | Entry
  | Exit
  | Stmt of Ast.stmt  (** [Sassign] or [Scall] only *)
  | Branch of { bid : int; cond : Ast.expr; kind : Number.kind }
  | Join  (** structural merge / arm-entry point *)

type t = {
  func : Ast.func;
  kinds : node_kind array;
  succ : int array array;
  pred : int array array;
  entry : int;
  exit_ : int;
  branch_node : (int, int) Hashtbl.t;  (** branch id -> node id *)
  true_succ : (int, int) Hashtbl.t;  (** branch node -> condition-true arm *)
  false_succ : (int, int) Hashtbl.t;  (** branch node -> condition-false arm *)
  idom : int array;
      (** immediate dominator per node; [entry] maps to itself and
          unreachable nodes to [-1] *)
  ipdom : int array;
      (** immediate post-dominator; [exit_] maps to itself, nodes that
          cannot reach [exit_] to [-1] *)
}

let nnodes t = Array.length t.kinds
let kind t n = t.kinds.(n)

let branch_node_of t ~bid = Hashtbl.find_opt t.branch_node bid

(* ------------------------------------------------------------------ *)
(* Dominators: Cooper/Harvey/Kennedy iteration over reverse post-order.
   [roots] seeds the DFS ([entry] for dominators, [exit_] for
   post-dominators on the reversed graph). *)

let compute_idom ~n ~(succ : int array array) ~(pred : int array array) ~root :
    int array =
  let order = Array.make n (-1) in
  (* iterative DFS: bench programs nest loops deep enough that the naive
     recursive walk is fine, but an explicit stack costs nothing *)
  let po = ref [] in
  let visited = Array.make n false in
  let rec dfs v =
    if not visited.(v) then begin
      visited.(v) <- true;
      Array.iter dfs succ.(v);
      po := v :: !po
    end
  in
  dfs root;
  let rpo = Array.of_list !po in
  Array.iteri (fun i v -> order.(v) <- i) rpo;
  let idom = Array.make n (-1) in
  idom.(root) <- root;
  let rec intersect a b =
    if a = b then a
    else if order.(a) > order.(b) then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun v ->
        if v <> root then begin
          let d = ref (-1) in
          Array.iter
            (fun p ->
              if order.(p) >= 0 && idom.(p) >= 0 then
                d := if !d < 0 then p else intersect !d p)
            pred.(v);
          if !d >= 0 && idom.(v) <> !d then begin
            idom.(v) <- !d;
            changed := true
          end
        end)
      rpo
  done;
  idom

(* ------------------------------------------------------------------ *)
(* Construction *)

let of_func (f : Ast.func) : t =
  let kinds = ref [] and n = ref 0 in
  let edges = ref [] in
  let new_node k =
    let id = !n in
    incr n;
    kinds := k :: !kinds;
    id
  in
  let edge a b = edges := (a, b) :: !edges in
  let entry = new_node Entry in
  let exit_ = new_node Exit in
  let branch_node = Hashtbl.create 16 in
  let true_succ = Hashtbl.create 16 in
  let false_succ = Hashtbl.create 16 in
  let connect cur nd = match cur with Some c -> edge c nd | None -> () in
  (* Wire [b] starting from optional fall-through source [cur]; [None]
     means the code is unreachable (after a return/break) — its nodes are
     still created so every branch id resolves, they just have no
     predecessors.  Returns the fall-through node. *)
  let rec go_block cur b ~brk ~cont =
    List.fold_left (fun cur s -> go_stmt cur s ~brk ~cont) cur b
  and go_stmt cur (s : Ast.stmt) ~brk ~cont : int option =
    match s.sdesc with
    | Sassign _ | Scall _ ->
        let nd = new_node (Stmt s) in
        connect cur nd;
        Some nd
    | Sreturn _ ->
        (match cur with Some c -> edge c exit_ | None -> ());
        None
    | Sbreak ->
        (match cur, brk with Some c, Some b -> edge c b | _ -> ());
        None
    | Scontinue ->
        (match cur, cont with Some c, Some k -> edge c k | _ -> ());
        None
    | Sblock b -> go_block cur b ~brk ~cont
    | Sif (br, cond, then_b, else_b) ->
        let bn =
          new_node (Branch { bid = br.bid; cond; kind = Number.If_branch })
        in
        connect cur bn;
        Hashtbl.replace branch_node br.bid bn;
        let t_entry = new_node Join in
        let f_entry = new_node Join in
        edge bn t_entry;
        edge bn f_entry;
        Hashtbl.replace true_succ bn t_entry;
        Hashtbl.replace false_succ bn f_entry;
        let t_out = go_block (Some t_entry) then_b ~brk ~cont in
        let f_out = go_block (Some f_entry) else_b ~brk ~cont in
        if t_out = None && f_out = None then None
        else begin
          let join = new_node Join in
          connect t_out join;
          connect f_out join;
          Some join
        end
    | Swhile (br, cond, body) ->
        let bn =
          new_node (Branch { bid = br.bid; cond; kind = Number.While_branch })
        in
        connect cur bn;
        Hashtbl.replace branch_node br.bid bn;
        let body_entry = new_node Join in
        let exit_join = new_node Join in
        edge bn body_entry;
        edge bn exit_join;
        Hashtbl.replace true_succ bn body_entry;
        Hashtbl.replace false_succ bn exit_join;
        let body_out =
          go_block (Some body_entry) body ~brk:(Some exit_join) ~cont:(Some bn)
        in
        connect body_out bn;
        Some exit_join
  in
  let out = go_block (Some entry) f.fbody ~brk:None ~cont:None in
  (match out with Some c -> edge c exit_ | None -> ());
  let n = !n in
  let kinds = Array.of_list (List.rev !kinds) in
  let succ_l = Array.make n [] and pred_l = Array.make n [] in
  List.iter
    (fun (a, b) ->
      if not (List.mem b succ_l.(a)) then begin
        succ_l.(a) <- b :: succ_l.(a);
        pred_l.(b) <- a :: pred_l.(b)
      end)
    !edges;
  let succ = Array.map Array.of_list succ_l in
  let pred = Array.map Array.of_list pred_l in
  let idom = compute_idom ~n ~succ ~pred ~root:entry in
  let ipdom = compute_idom ~n ~succ:pred ~pred:succ ~root:exit_ in
  {
    func = f;
    kinds;
    succ;
    pred;
    entry;
    exit_;
    branch_node;
    true_succ;
    false_succ;
    idom;
    ipdom;
  }

(* ------------------------------------------------------------------ *)
(* Queries *)

let reachable t n = t.idom.(n) >= 0 || n = t.entry

(* Walk the idom chain from [b] towards the root looking for [a]. *)
let chain_dominates (idom : int array) a b =
  if idom.(a) < 0 || idom.(b) < 0 then false
  else
    let rec up v = v = a || (idom.(v) <> v && up idom.(v)) in
    up b

(** [a] dominates [b] (reflexive: every reachable node dominates itself). *)
let dominates t a b = chain_dominates t.idom a b

(** [a] strictly dominates [b]. *)
let strictly_dominates t a b = a <> b && dominates t a b

let post_dominates t a b = chain_dominates t.ipdom a b

(* BFS over [next], never stepping onto [avoid]. *)
let flood ~(next : int array array) ~(avoid : int) ~n (seeds : int list) :
    bool array =
  let seen = Array.make n false in
  let q = Queue.create () in
  List.iter
    (fun s ->
      if s <> avoid && not seen.(s) then begin
        seen.(s) <- true;
        Queue.add s q
      end)
    seeds;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    Array.iter
      (fun w ->
        if w <> avoid && not seen.(w) then begin
          seen.(w) <- true;
          Queue.add w q
        end)
      next.(v)
  done;
  seen

(** Nodes lying on some path from a node of [srcs] to [dst] in the graph
    with node [avoid] deleted — the sources and [dst] itself included when
    they qualify.  This is the kill set the suppression proofs scan: any
    write between a dominating branch and its implied branch lives on such
    a path (including paths that loop, since reachability covers cycles). *)
let nodes_on_path t ~(avoid : int) ~(srcs : int list) ~(dst : int) : int list =
  let n = nnodes t in
  let fwd = flood ~next:t.succ ~avoid ~n srcs in
  let bwd = flood ~next:t.pred ~avoid ~n [ dst ] in
  let out = ref [] in
  for v = n - 1 downto 0 do
    if fwd.(v) && bwd.(v) then out := v :: !out
  done;
  !out

(** Can [src] reach [dst] without passing through [avoid]?  ([src] itself
    may equal [dst].) *)
let reaches t ~avoid ~src ~dst =
  if src = avoid || dst = avoid then false
  else (flood ~next:t.succ ~avoid ~n:(nnodes t) [ src ]).(dst)

(* ------------------------------------------------------------------ *)
(* Program-wide bundle: lazily one CFG per function that has branches. *)

type program_cfgs = {
  prog : Program.t;
  tbl : (string, t) Hashtbl.t;
}

let of_program (prog : Program.t) : program_cfgs =
  { prog; tbl = Hashtbl.create 16 }

let for_function (pc : program_cfgs) (fname : string) : t option =
  match Hashtbl.find_opt pc.tbl fname with
  | Some c -> Some c
  | None -> (
      match Program.find_func pc.prog fname with
      | None -> None
      | Some f ->
          let c = of_func f in
          Hashtbl.add pc.tbl fname c;
          Some c)

(** CFG and node id of branch [bid] ([None] for out-of-range ids). *)
let locate (pc : program_cfgs) ~(bid : int) : (t * int) option =
  if bid < 0 || bid >= Program.nbranches pc.prog then None
  else
    let info = Program.branch_info pc.prog bid in
    match for_function pc info.bfunc with
    | None -> None
    | Some c -> (
        match branch_node_of c ~bid with
        | Some nd -> Some (c, nd)
        | None -> None)
