(** Interprocedural symbolic-variable propagation (the paper's Algorithms 1
    and 2), with strong-update refinement and provenance recording.

    Identifies the sources of input (argv via [arg], I/O via [read], and
    the return values of input-returning builtins), propagates "symbolic"
    taint through assignments, calls and memory via the {!Pointsto} results,
    and labels every branch whose condition may read tainted data.

    Structure follows the paper:
    - a worklist of (function, context) pairs, where a context records which
      parameters hold symbolic *values* (the footnote's "particular
      combination of symbolic and concrete parameters");
    - per-(function, context) summaries recording whether the return value
      is symbolic;
    - memory reached through pointers/arrays and globals is tracked in a
      single monotone tainted-location set, resolved with points-to
      information (weak updates only — one of the imprecision sources the
      paper attributes to its static method).

    Precision refinements (on by default, [strong_updates = false] restores
    the seed behaviour):
    - *tracked cells*: scalar (non-array) locals of the function under
      analysis are consulted flow-sensitively only — the monotone global
      set is re-imported into the flow state at entry and after every call
      (calls are the only scheduling points, so this also covers
      cross-thread writes), which makes unconditional kills sound:
      [x = concrete] untaints [x] even if its address escapes;
    - *strong updates through singleton pointers*: [*p = concrete] kills
      the taint of the pointed-to cell when the points-to set is provably a
      single scalar local of the current, non-recursive function (a
      recursive function may alias another frame's local under our
      frame-collapsed abstraction);
    - when a {!Constprop} result is supplied, provably dead branch arms are
      pruned during the flow analysis (their writes never execute).

    Every tainting event is recorded in a {!Provenance} tracker so each
    [Symbolic] label carries a witness chain back to its input source.

    When [analyze_lib] is false, library functions are not analysed: calls
    into them get a conservative summary and all their branches are labelled
    symbolic, reproducing §5.3's treatment of uClibc. *)

open Minic

type ctx = bool list  (** value-taint of each parameter *)

module Summary_key = struct
  type t = string * ctx

  let compare = Stdlib.compare
end

module Smap = Map.Make (Summary_key)
module SSet = Set.Make (String)

type config = { analyze_lib : bool; strong_updates : bool }

let default_config = { analyze_lib = true; strong_updates = true }

type t = {
  prog : Program.t;
  pta : Pointsto.t;
  cfg : config;
  constprop : Constprop.result option;  (** dead-arm pruning hints *)
  prov : Provenance.t;
  recursive : SSet.t;  (** functions on a call-graph cycle *)
  mutable tainted : Aloc.Set.t;  (** monotone: arrays, pointees, globals *)
  mutable summaries : bool Smap.t;  (** (f, ctx) -> return value tainted *)
  mutable dependents : Summary_key.t list Smap.t;  (** callee -> callers *)
  mutable queued : Summary_key.t list;
  mutable in_queue : unit Smap.t;
  symbolic_branches : bool array;  (** by branch id *)
  stats : Dataflow.stats;
}

(* ------------------------------------------------------------------ *)
(* Local state domain: tainted scalar locals of the function under
   analysis.  Everything else lives in [t.tainted]. *)

module Dom = struct
  type t = Aloc.Set.t

  let join = Aloc.Set.union
  let widen = join
  let equal = Aloc.Set.equal
end

module Flow = Dataflow.Make (Dom)

let global_tainted t a = Aloc.Set.mem a t.tainted

let mark_global t a =
  if not (Aloc.Set.mem a t.tainted) then t.tainted <- Aloc.Set.add a t.tainted

let is_scalar t ~fn x =
  match Pointsto.var_type t.pta ~fn x with
  | Types.Tarr _ -> false
  | _ -> true

(* Tracked cells are consulted flow-sensitively *only*: scalar locals of
   the function under analysis, when strong updates are enabled.  Their
   global taint is re-imported at entry and after calls, so a kill between
   calls is sound even for address-taken locals. *)
let tracked t ~fn (a : Aloc.t) =
  t.cfg.strong_updates
  &&
  match a with
  | Aloc.Local (f, x) when String.equal f fn -> is_scalar t ~fn x
  | Aloc.Local _ | Aloc.Global _ | Aloc.Strlit _ | Aloc.Ret _ -> false

(* Taint cells reached through pointers, arrays or globals.  These must be
   visible to every function (a callee reads a caller's buffer through its
   points-to set), so they go into the monotone global set; tracked cells
   additionally enter the flow state, which is authoritative for them. *)
let taint_cells t ~fn ~edge (state : Dom.t) cells : Dom.t =
  Aloc.Set.fold
    (fun a st ->
      mark_global t a;
      Provenance.record t.prov a edge;
      if tracked t ~fn a then Aloc.Set.add a st else st)
    cells state

(* Taint the target of a direct assignment.  Only a scalar local of the
   current function stays in the flow-sensitive state; everything reached
   through memory goes global. *)
let taint_lval t ~fn ~edge (state : Dom.t) (lv : Ast.lval) : Dom.t =
  match lv with
  | Ast.Var x -> (
      match Pointsto.aloc_of t.pta ~fn x with
      | Aloc.Local (f, _) as a when String.equal f fn ->
          Provenance.record t.prov a edge;
          Aloc.Set.add a state
      | a ->
          mark_global t a;
          Provenance.record t.prov a edge;
          state)
  | Ast.Index _ | Ast.Star _ ->
      taint_cells t ~fn ~edge state (Pointsto.denotes_of t.pta ~fn lv)

let cell_tainted t ~fn state a =
  if tracked t ~fn a then Aloc.Set.mem a state
  else Aloc.Set.mem a state || global_tainted t a

(* Value-taint of an expression: true if evaluating it may read symbolic
   data.  Addresses themselves are never symbolic. *)
let rec expr_tainted t ~fn state (e : Ast.expr) : bool =
  match e with
  | Cint _ | Cstr _ | Addr _ -> false
  | Lval lv ->
      Aloc.Set.exists (cell_tainted t ~fn state) (Pointsto.denotes_of t.pta ~fn lv)
  | Unop (_, a) -> expr_tainted t ~fn state a
  | Binop (_, a, b) -> expr_tainted t ~fn state a || expr_tainted t ~fn state b
  | Ecall _ -> true (* normalised ASTs have no expression calls; be safe *)

(* Witness for provenance chains: some tainted location the expression
   reads (mirrors [expr_tainted]). *)
let rec first_tainted_aloc t ~fn state (e : Ast.expr) : Aloc.t option =
  match e with
  | Cint _ | Cstr _ | Addr _ | Ecall _ -> None
  | Lval lv ->
      Aloc.Set.fold
        (fun a acc ->
          match acc with
          | Some _ -> acc
          | None -> if cell_tainted t ~fn state a then Some a else None)
        (Pointsto.denotes_of t.pta ~fn lv)
        None
  | Unop (_, a) -> first_tainted_aloc t ~fn state a
  | Binop (_, a, b) -> (
      match first_tainted_aloc t ~fn state a with
      | Some _ as r -> r
      | None -> first_tainted_aloc t ~fn state b)

(* Argument taint as used for contexts: symbolic value. *)
let arg_bits t ~fn state args = List.map (expr_tainted t ~fn state) args

(* Does any argument carry taint either by value or through its pointees?
   Used for conservative (library / unknown) summaries. *)
let arg_reaches_taint t ~fn state arg =
  expr_tainted t ~fn state arg
  || Aloc.Set.exists (cell_tainted t ~fn state) (Pointsto.points_of t.pta ~fn arg)

(* Re-import globally tainted tracked cells into the flow state.  Done at
   entry and after every call: calls are the only points where another
   function (or thread — calls are the scheduling points) can write a
   local through an escaped pointer. *)
let reimport t (scalars : Aloc.t list) (state : Dom.t) : Dom.t =
  if not t.cfg.strong_updates then state
  else
    List.fold_left
      (fun st a -> if global_tainted t a then Aloc.Set.add a st else st)
      state scalars

(* ------------------------------------------------------------------ *)
(* Worklist *)

let enqueue t key =
  if not (Smap.mem key t.in_queue) then begin
    t.in_queue <- Smap.add key () t.in_queue;
    t.queued <- key :: t.queued
  end

let add_dependent t ~callee ~caller =
  let cur = match Smap.find_opt callee t.dependents with Some l -> l | None -> [] in
  if not (List.mem caller cur) then
    t.dependents <- Smap.add callee (caller :: cur) t.dependents

let summary t key = match Smap.find_opt key t.summaries with Some b -> b | None -> false

let set_summary t key v =
  let old = summary t key in
  if v && not old then begin
    t.summaries <- Smap.add key true t.summaries;
    (* return value became symbolic: recompute callers *)
    match Smap.find_opt key t.dependents with
    | Some callers -> List.iter (enqueue t) callers
    | None -> ()
  end
  else if not (Smap.mem key t.summaries) then
    t.summaries <- Smap.add key v t.summaries

let request t key =
  if not (Smap.mem key t.summaries) then begin
    t.summaries <- Smap.add key false t.summaries;
    enqueue t key
  end

(* ------------------------------------------------------------------ *)
(* Transfer functions *)

let record_param_taint t ~loc ~callee ~from i (g : Ast.func) =
  match List.nth_opt g.fparams i with
  | Some (p, _) ->
      Provenance.record t.prov
        (Aloc.Local (callee, p))
        { Provenance.step = Provenance.Call_argument (callee, i); loc; from }
  | None -> ()

(* A spawned thread runs its target with the given argument: analyse the
   target in the matching context even though no direct call edge exists. *)
let apply_spawn t ~fn ~loc state args =
  match args with
  | Ast.Cstr target :: arg :: _ -> (
      match Program.find_func t.prog target with
      | Some g when not (g.fis_lib && not t.cfg.analyze_lib) ->
          let bit = expr_tainted t ~fn state arg in
          let n = List.length g.fparams in
          let bits =
            if n = 0 then [] else bit :: List.init (n - 1) (fun _ -> false)
          in
          if bit then
            record_param_taint t ~loc ~callee:target
              ~from:(first_tainted_aloc t ~fn state arg)
              0 g;
          request t (target, bits)
      | Some _ | None -> ())
  | _ ->
      (* unknown spawn target: any function may run, with unknown input *)
      List.iter
        (fun (g : Ast.func) ->
          if not (g.fis_lib && not t.cfg.analyze_lib) then
            request t (g.fname, List.map (fun _ -> true) g.fparams))
        t.prog.funcs

let apply_builtin t ~fn ~loc state lvo name args =
  match Builtin.find name with
  | None -> state
  | Some b ->
      let edge = { Provenance.step = Provenance.Source name; loc; from = None } in
      (* pointer arguments receiving input: taint their pointees *)
      let state =
        List.fold_left
          (fun st i ->
            match List.nth_opt args i with
            | Some arg -> taint_cells t ~fn ~edge st (Pointsto.points_of t.pta ~fn arg)
            | None -> st)
          state b.taints_args
      in
      (* input-returning builtins taint their result *)
      match lvo, b.returns_input with
      | Some lv, true -> taint_lval t ~fn ~edge state lv
      | _ -> state

let conservative_lib_call t ~fn ~loc state lvo callee args =
  let any = List.exists (arg_reaches_taint t ~fn state) args in
  if not any then state
  else begin
    (* assume the callee may copy input anywhere reachable from its
       pointer arguments (strcpy-style) and return input *)
    let from =
      List.find_map (fun arg -> first_tainted_aloc t ~fn state arg) args
    in
    let edge = { Provenance.step = Provenance.Library_call callee; loc; from } in
    let state =
      List.fold_left
        (fun st arg -> taint_cells t ~fn ~edge st (Pointsto.points_of t.pta ~fn arg))
        state args
    in
    match lvo with
    | Some lv -> taint_lval t ~fn ~edge state lv
    | None -> state
  end

let apply_call t ~fn ~caller_key ~loc state lvo callee args =
  if String.equal callee "spawn" then begin
    apply_spawn t ~fn ~loc state args;
    state
  end
  else if Builtin.is_builtin callee then apply_builtin t ~fn ~loc state lvo callee args
  else
    match Program.find_func t.prog callee with
    | None -> state
    | Some g when g.fis_lib && not t.cfg.analyze_lib ->
        conservative_lib_call t ~fn ~loc state lvo callee args
    | Some g ->
        let bits = arg_bits t ~fn state args in
        List.iteri
          (fun i bit ->
            if bit then
              record_param_taint t ~loc ~callee
                ~from:(first_tainted_aloc t ~fn state (List.nth args i))
                i g)
          bits;
        let key = (callee, bits) in
        add_dependent t ~callee:key ~caller:caller_key;
        request t key;
        if summary t key then
          let edge =
            {
              Provenance.step = Provenance.Call_return callee;
              loc;
              from = Some (Aloc.Ret callee);
            }
          in
          match lvo with
          | Some lv -> taint_lval t ~fn ~edge state lv
          | None -> state
        else state

let transfer t ~fn ~caller_key ~scalars (state : Dom.t) (s : Ast.stmt) : Dom.t =
  match s.sdesc with
  | Sassign (lv, e) ->
      if expr_tainted t ~fn state e then
        let edge =
          {
            Provenance.step = Provenance.Assign;
            loc = s.sloc;
            from = first_tainted_aloc t ~fn state e;
          }
        in
        taint_lval t ~fn ~edge state lv
      else begin
        match lv with
        | Ast.Var x -> (
            match Pointsto.aloc_of t.pta ~fn x with
            | Aloc.Local (f, _) as a when String.equal f fn ->
                if tracked t ~fn a then
                  (* the flow state is authoritative for tracked cells:
                     kill unconditionally (re-imports cover aliasing) *)
                  Aloc.Set.remove a state
                else if not (global_tainted t a) then Aloc.Set.remove a state
                else state
            | _ -> state)
        | Ast.Index _ | Ast.Star _ -> (
            (* strong update through a provably-singleton pointer: sound
               only outside recursion (a recursive function may alias a
               parent frame's local under the collapsed abstraction) *)
            if not t.cfg.strong_updates || SSet.mem fn t.recursive then state
            else
              match Aloc.Set.elements (Pointsto.denotes_of t.pta ~fn lv) with
              | [ (Aloc.Local (f, x) as a) ]
                when String.equal f fn && is_scalar t ~fn x ->
                  Aloc.Set.remove a state
              | _ -> state)
      end
  | Scall (lvo, callee, args) ->
      let state = apply_call t ~fn ~caller_key ~loc:s.sloc state lvo callee args in
      (* a callee (or another thread — calls are the scheduling points) may
         have tainted a tracked local through an escaped pointer *)
      reimport t scalars state
  | Sif _ | Swhile _ | Sreturn _ | Sbreak | Scontinue | Sblock _ -> state

(* ------------------------------------------------------------------ *)
(* Per-(function, context) analysis *)

let scalar_locals (t : t) (f : Ast.func) : Aloc.t list =
  List.filter_map
    (fun (n, _) ->
      if is_scalar t ~fn:f.fname n then Some (Aloc.Local (f.fname, n)) else None)
    (f.fparams @ List.map (fun (d : Ast.var_decl) -> (d.vname, d.vtyp)) f.flocals)

let analyze_one t ((fname, bits) as key) =
  match Program.find_func t.prog fname with
  | None -> ()
  | Some f ->
      let entry =
        List.fold_left2
          (fun st (p, _) bit ->
            if bit then Aloc.Set.add (Aloc.Local (fname, p)) st else st)
          Aloc.Set.empty f.fparams
          (if List.length bits = List.length f.fparams then bits
           else List.map (fun _ -> false) f.fparams)
      in
      let scalars = scalar_locals t f in
      let entry = reimport t scalars entry in
      let ret_tainted = ref (summary t key) in
      let client =
        {
          Flow.transfer =
            (fun st s -> transfer t ~fn:fname ~caller_key:key ~scalars st s);
          on_branch =
            (fun st br cond ->
              (if br.bid >= 0 && expr_tainted t ~fn:fname st cond then begin
                 t.symbolic_branches.(br.bid) <- true;
                 match first_tainted_aloc t ~fn:fname st cond with
                 | Some a ->
                     Provenance.record_branch t.prov br.bid (Provenance.Reads a)
                 | None -> ()
               end);
              (* prune arms constprop proved dead: their writes never run *)
              match t.constprop with
              | Some cp when br.bid >= 0 -> Constprop.branch_visit cp br.bid
              | Some _ | None -> Dataflow.Visit_both);
          on_return =
            (fun st e ->
              match e with
              | Some e when expr_tainted t ~fn:fname st e ->
                  ret_tainted := true;
                  Provenance.record t.prov (Aloc.Ret fname)
                    {
                      Provenance.step = Provenance.Assign;
                      loc = Loc.none;
                      from = first_tainted_aloc t ~fn:fname st e;
                    }
              | _ -> ());
        }
      in
      ignore (Flow.func ~stats:t.stats client entry f.fbody);
      set_summary t key !ret_tainted

(* ------------------------------------------------------------------ *)
(* Call-graph recursion detection (for the singleton-pointer kill guard) *)

let recursive_functions (prog : Program.t) : SSet.t =
  let succs = Hashtbl.create 16 in
  let add_edge f g =
    let cur = match Hashtbl.find_opt succs f with Some s -> s | None -> SSet.empty in
    Hashtbl.replace succs f (SSet.add g cur)
  in
  List.iter
    (fun (f : Ast.func) ->
      Ast.iter_stmts
        (fun s ->
          match s.sdesc with
          | Scall (_, "spawn", Cstr target :: _) -> add_edge f.fname target
          | Scall (_, "spawn", _) ->
              (* unknown target: any function may run *)
              List.iter (fun (g : Ast.func) -> add_edge f.fname g.fname) prog.funcs
          | Scall (_, callee, _) when not (Builtin.is_builtin callee) ->
              add_edge f.fname callee
          | Scall _ | Sassign _ | Sif _ | Swhile _ | Sreturn _ | Sbreak
          | Scontinue | Sblock _ ->
              ())
        f.fbody)
    prog.funcs;
  let reaches_self root =
    let visited = Hashtbl.create 16 in
    let rec go f =
      match Hashtbl.find_opt succs f with
      | None -> false
      | Some s ->
          SSet.mem root s
          || SSet.exists
               (fun g ->
                 if Hashtbl.mem visited g then false
                 else begin
                   Hashtbl.replace visited g ();
                   go g
                 end)
               s
    in
    go root
  in
  List.fold_left
    (fun acc (f : Ast.func) ->
      if reaches_self f.fname then SSet.add f.fname acc else acc)
    SSet.empty prog.funcs

(** Run the whole-program taint analysis from [main].  A [constprop] result
    enables dead-arm pruning during the flow analysis. *)
let analyze ?(cfg = default_config) ?constprop (prog : Program.t)
    (pta : Pointsto.t) : t =
  let nbranches = Program.nbranches prog in
  let t =
    {
      prog;
      pta;
      cfg;
      constprop;
      prov = Provenance.create ~nbranches;
      recursive = recursive_functions prog;
      tainted = Aloc.Set.empty;
      summaries = Smap.empty;
      dependents = Smap.empty;
      queued = [];
      in_queue = Smap.empty;
      symbolic_branches = Array.make nbranches false;
      stats = Dataflow.create_stats ();
    }
  in
  let main_key = ("main", []) in
  t.summaries <- Smap.add main_key false t.summaries;
  enqueue t main_key;
  let iterations = ref 0 in
  let rec drain last_tainted =
    match t.queued with
    | [] ->
        (* the global tainted set may have grown during the last sweep;
           if so, re-analyse everything once more *)
        if
          not (Aloc.Set.equal last_tainted t.tainted)
          && !iterations < 10_000
        then begin
          let snapshot = t.tainted in
          Smap.iter (fun key _ -> enqueue t key) t.summaries;
          drain snapshot
        end
    | key :: rest ->
        t.queued <- rest;
        t.in_queue <- Smap.remove key t.in_queue;
        incr iterations;
        if !iterations < 10_000 then begin
          analyze_one t key;
          drain last_tainted
        end
  in
  drain t.tainted;
  (* §5.3: with analyze_lib = false every library branch is treated as
     symbolic by the static analysis *)
  if not t.cfg.analyze_lib then
    Array.iter
      (fun (b : Number.info) ->
        if b.bis_lib then begin
          t.symbolic_branches.(b.bid) <- true;
          Provenance.record_branch t.prov b.bid Provenance.Lib_forced
        end)
      prog.branches;
  t

let is_branch_symbolic t bid = t.symbolic_branches.(bid)

let contexts_analyzed t = Smap.cardinal t.summaries

let provenance t = t.prov

let widened_loops t = t.stats.Dataflow.widened_loops
